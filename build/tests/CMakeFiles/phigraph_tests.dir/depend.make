# Empty dependencies file for phigraph_tests.
# This may be replaced when dependencies are built.
