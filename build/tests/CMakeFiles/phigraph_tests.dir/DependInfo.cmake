
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/comm_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/comm_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/comm_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/csb_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/csb_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/csb_test.cpp.o.d"
  "/root/repo/tests/engine_counters_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/engine_counters_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/engine_counters_test.cpp.o.d"
  "/root/repo/tests/engine_edge_cases_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/engine_edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/engine_edge_cases_test.cpp.o.d"
  "/root/repo/tests/engine_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/engine_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/generators_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/generators_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/generators_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/io_test.cpp.o.d"
  "/root/repo/tests/local_graph_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/local_graph_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/local_graph_test.cpp.o.d"
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/partition_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/sched_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/sched_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/sched_test.cpp.o.d"
  "/root/repo/tests/semiclustering_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/semiclustering_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/semiclustering_test.cpp.o.d"
  "/root/repo/tests/sim_model_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/sim_model_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/sim_model_test.cpp.o.d"
  "/root/repo/tests/simd_vec_test.cpp" "tests/CMakeFiles/phigraph_tests.dir/simd_vec_test.cpp.o" "gcc" "tests/CMakeFiles/phigraph_tests.dir/simd_vec_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/phigraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
