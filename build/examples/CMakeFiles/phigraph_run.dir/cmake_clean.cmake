file(REMOVE_RECURSE
  "CMakeFiles/phigraph_run.dir/phigraph_run.cpp.o"
  "CMakeFiles/phigraph_run.dir/phigraph_run.cpp.o.d"
  "phigraph_run"
  "phigraph_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phigraph_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
