# Empty compiler generated dependencies file for phigraph_run.
# This may be replaced when dependencies are built.
