file(REMOVE_RECURSE
  "CMakeFiles/social_ranking.dir/social_ranking.cpp.o"
  "CMakeFiles/social_ranking.dir/social_ranking.cpp.o.d"
  "social_ranking"
  "social_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
