# Empty dependencies file for social_ranking.
# This may be replaced when dependencies are built.
