file(REMOVE_RECURSE
  "CMakeFiles/build_scheduler.dir/build_scheduler.cpp.o"
  "CMakeFiles/build_scheduler.dir/build_scheduler.cpp.o.d"
  "build_scheduler"
  "build_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
