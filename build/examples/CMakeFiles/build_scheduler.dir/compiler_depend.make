# Empty compiler generated dependencies file for build_scheduler.
# This may be replaced when dependencies are built.
