file(REMOVE_RECURSE
  "libphigraph.a"
)
