file(REMOVE_RECURSE
  "CMakeFiles/phigraph.dir/core/local_graph.cpp.o"
  "CMakeFiles/phigraph.dir/core/local_graph.cpp.o.d"
  "CMakeFiles/phigraph.dir/gen/generators.cpp.o"
  "CMakeFiles/phigraph.dir/gen/generators.cpp.o.d"
  "CMakeFiles/phigraph.dir/graph/csr.cpp.o"
  "CMakeFiles/phigraph.dir/graph/csr.cpp.o.d"
  "CMakeFiles/phigraph.dir/graph/io.cpp.o"
  "CMakeFiles/phigraph.dir/graph/io.cpp.o.d"
  "CMakeFiles/phigraph.dir/partition/partition.cpp.o"
  "CMakeFiles/phigraph.dir/partition/partition.cpp.o.d"
  "CMakeFiles/phigraph.dir/sim/model.cpp.o"
  "CMakeFiles/phigraph.dir/sim/model.cpp.o.d"
  "libphigraph.a"
  "libphigraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phigraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
