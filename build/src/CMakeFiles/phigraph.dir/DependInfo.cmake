
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/local_graph.cpp" "src/CMakeFiles/phigraph.dir/core/local_graph.cpp.o" "gcc" "src/CMakeFiles/phigraph.dir/core/local_graph.cpp.o.d"
  "/root/repo/src/gen/generators.cpp" "src/CMakeFiles/phigraph.dir/gen/generators.cpp.o" "gcc" "src/CMakeFiles/phigraph.dir/gen/generators.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/phigraph.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/phigraph.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/phigraph.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/phigraph.dir/graph/io.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/CMakeFiles/phigraph.dir/partition/partition.cpp.o" "gcc" "src/CMakeFiles/phigraph.dir/partition/partition.cpp.o.d"
  "/root/repo/src/sim/model.cpp" "src/CMakeFiles/phigraph.dir/sim/model.cpp.o" "gcc" "src/CMakeFiles/phigraph.dir/sim/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
