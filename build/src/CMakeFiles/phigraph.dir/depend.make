# Empty dependencies file for phigraph.
# This may be replaced when dependencies are built.
