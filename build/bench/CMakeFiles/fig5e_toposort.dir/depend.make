# Empty dependencies file for fig5e_toposort.
# This may be replaced when dependencies are built.
