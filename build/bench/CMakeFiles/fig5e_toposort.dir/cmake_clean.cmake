file(REMOVE_RECURSE
  "CMakeFiles/fig5e_toposort.dir/fig5e_toposort.cpp.o"
  "CMakeFiles/fig5e_toposort.dir/fig5e_toposort.cpp.o.d"
  "fig5e_toposort"
  "fig5e_toposort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5e_toposort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
