# Empty compiler generated dependencies file for table2_efficiency.
# This may be replaced when dependencies are built.
