# Empty compiler generated dependencies file for fig5c_semiclustering.
# This may be replaced when dependencies are built.
