file(REMOVE_RECURSE
  "CMakeFiles/fig5c_semiclustering.dir/fig5c_semiclustering.cpp.o"
  "CMakeFiles/fig5c_semiclustering.dir/fig5c_semiclustering.cpp.o.d"
  "fig5c_semiclustering"
  "fig5c_semiclustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_semiclustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
