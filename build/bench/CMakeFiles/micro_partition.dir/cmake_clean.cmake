file(REMOVE_RECURSE
  "CMakeFiles/micro_partition.dir/micro_partition.cpp.o"
  "CMakeFiles/micro_partition.dir/micro_partition.cpp.o.d"
  "micro_partition"
  "micro_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
