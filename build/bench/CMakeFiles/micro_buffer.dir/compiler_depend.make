# Empty compiler generated dependencies file for micro_buffer.
# This may be replaced when dependencies are built.
