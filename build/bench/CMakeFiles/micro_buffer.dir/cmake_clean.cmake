file(REMOVE_RECURSE
  "CMakeFiles/micro_buffer.dir/micro_buffer.cpp.o"
  "CMakeFiles/micro_buffer.dir/micro_buffer.cpp.o.d"
  "micro_buffer"
  "micro_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
