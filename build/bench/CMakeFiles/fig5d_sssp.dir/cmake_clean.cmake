file(REMOVE_RECURSE
  "CMakeFiles/fig5d_sssp.dir/fig5d_sssp.cpp.o"
  "CMakeFiles/fig5d_sssp.dir/fig5d_sssp.cpp.o.d"
  "fig5d_sssp"
  "fig5d_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5d_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
