# Empty compiler generated dependencies file for fig5d_sssp.
# This may be replaced when dependencies are built.
