# Empty compiler generated dependencies file for micro_autotune.
# This may be replaced when dependencies are built.
