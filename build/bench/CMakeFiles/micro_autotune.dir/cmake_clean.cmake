file(REMOVE_RECURSE
  "CMakeFiles/micro_autotune.dir/micro_autotune.cpp.o"
  "CMakeFiles/micro_autotune.dir/micro_autotune.cpp.o.d"
  "micro_autotune"
  "micro_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
