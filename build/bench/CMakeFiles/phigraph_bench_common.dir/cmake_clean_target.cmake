file(REMOVE_RECURSE
  "libphigraph_bench_common.a"
)
