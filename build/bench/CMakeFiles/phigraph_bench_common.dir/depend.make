# Empty dependencies file for phigraph_bench_common.
# This may be replaced when dependencies are built.
