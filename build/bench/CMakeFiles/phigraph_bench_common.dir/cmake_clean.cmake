file(REMOVE_RECURSE
  "CMakeFiles/phigraph_bench_common.dir/common/harness.cpp.o"
  "CMakeFiles/phigraph_bench_common.dir/common/harness.cpp.o.d"
  "libphigraph_bench_common.a"
  "libphigraph_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phigraph_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
