# Empty compiler generated dependencies file for micro_sched.
# This may be replaced when dependencies are built.
