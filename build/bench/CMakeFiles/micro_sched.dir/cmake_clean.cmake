file(REMOVE_RECURSE
  "CMakeFiles/micro_sched.dir/micro_sched.cpp.o"
  "CMakeFiles/micro_sched.dir/micro_sched.cpp.o.d"
  "micro_sched"
  "micro_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
