# Empty dependencies file for fig6_partitioning.
# This may be replaced when dependencies are built.
