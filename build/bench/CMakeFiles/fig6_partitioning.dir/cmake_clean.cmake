file(REMOVE_RECURSE
  "CMakeFiles/fig6_partitioning.dir/fig6_partitioning.cpp.o"
  "CMakeFiles/fig6_partitioning.dir/fig6_partitioning.cpp.o.d"
  "fig6_partitioning"
  "fig6_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
