file(REMOVE_RECURSE
  "CMakeFiles/fig5b_bfs.dir/fig5b_bfs.cpp.o"
  "CMakeFiles/fig5b_bfs.dir/fig5b_bfs.cpp.o.d"
  "fig5b_bfs"
  "fig5b_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
