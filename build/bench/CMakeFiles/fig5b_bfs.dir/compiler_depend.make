# Empty compiler generated dependencies file for fig5b_bfs.
# This may be replaced when dependencies are built.
