file(REMOVE_RECURSE
  "CMakeFiles/fig5a_pagerank.dir/fig5a_pagerank.cpp.o"
  "CMakeFiles/fig5a_pagerank.dir/fig5a_pagerank.cpp.o.d"
  "fig5a_pagerank"
  "fig5a_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
