# Empty dependencies file for fig5a_pagerank.
# This may be replaced when dependencies are built.
