# Empty dependencies file for fig5f_simd.
# This may be replaced when dependencies are built.
