file(REMOVE_RECURSE
  "CMakeFiles/fig5f_simd.dir/fig5f_simd.cpp.o"
  "CMakeFiles/fig5f_simd.dir/fig5f_simd.cpp.o.d"
  "fig5f_simd"
  "fig5f_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5f_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
