file(REMOVE_RECURSE
  "CMakeFiles/micro_simd.dir/micro_simd.cpp.o"
  "CMakeFiles/micro_simd.dir/micro_simd.cpp.o.d"
  "micro_simd"
  "micro_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
