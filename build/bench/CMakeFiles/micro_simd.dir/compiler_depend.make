# Empty compiler generated dependencies file for micro_simd.
# This may be replaced when dependencies are built.
