// Ablation: the blocked min-cut partitioner (the Metis substitute) — cut
// quality and runtime vs block count, and cut/balance of the three
// vertex->device schemes (the mechanics behind Fig. 6).
#include <benchmark/benchmark.h>

#include "src/gen/generators.hpp"
#include "src/partition/partition.hpp"

namespace {

using namespace phigraph;

const graph::Csr& social_graph() {
  static const graph::Csr g = gen::pokec_like(30'000, 500'000, 33);
  return g;
}

void bm_blocked_min_cut(benchmark::State& state) {
  const auto& g = social_graph();
  const int blocks = static_cast<int>(state.range(0));
  partition::BlockedPartition bp;
  for (auto _ : state) {
    bp = partition::blocked_min_cut(g, {.num_blocks = blocks, .seed = 3});
    benchmark::DoNotOptimize(bp.cut_edges);
  }
  state.counters["cut_ratio"] = static_cast<double>(bp.cut_edges) /
                                static_cast<double>(g.num_edges());
}

void bm_scheme_cut(benchmark::State& state) {
  const auto& g = social_graph();
  const partition::Ratio r{3, 5};
  const auto bp =
      partition::blocked_min_cut(g, {.num_blocks = 256, .seed = 3});
  partition::PartitionStats stats;
  for (auto _ : state) {
    std::vector<Device> owner;
    switch (state.range(0)) {
      case 0: owner = partition::continuous_partition(g, r); break;
      case 1: owner = partition::round_robin_partition(g, r); break;
      default: owner = partition::hybrid_partition(bp, r); break;
    }
    stats = partition::evaluate_partition(g, owner);
    benchmark::DoNotOptimize(stats.cross_edges);
  }
  static const char* names[] = {"continuous", "round-robin", "hybrid"};
  state.SetLabel(names[state.range(0)]);
  state.counters["cross_ratio"] = static_cast<double>(stats.cross_edges) /
                                  static_cast<double>(g.num_edges());
  state.counters["balance_err"] = stats.balance_error(r);
}

}  // namespace

BENCHMARK(bm_blocked_min_cut)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_scheme_cut)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
