// Fig. 5(d): SSSP (the paper's running example) on the weighted Pokec-like
// graph.
#include "bench/common/fig5.hpp"
#include "src/apps/sssp.hpp"

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  const auto g = bench::make_pokec(scale, /*weighted=*/true);
  bench::fig5_run("Fig 5(d)", "SSSP", g, apps::Sssp{g.num_vertices() / 16},
                  /*iters=*/1000,
                  partition::Ratio{1, 1},
                  /*mic_uses_pipe=*/true,
                  {.mic_pipe_vs_lock = "1.08x (Pipe 1.20x vs OMP, Lock 1.11x)",
                   .mic_best_vs_omp = "1.20x (Pipe vs OMP)",
                   .hetero_vs_best = "1.41x at ratio 1:1"});
  return 0;
}
