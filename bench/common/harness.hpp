// Shared bench harness: workload construction at a configurable scale, the
// paper's device/thread setups, engine runs that produce counter traces, and
// the modeled CPU / MIC / CPU-MIC timings printed by each figure bench.
//
// The engines execute for real on the host (with a modest host thread
// count); the *modeled* times price the measured traces for the paper's
// devices and thread configurations (16 threads on the Xeon E5-2680;
// 240 threads, or 180 workers + 60 movers, on the Xeon Phi SE10P).
//
// Environment knobs:
//   PHIGRAPH_SCALE        = tiny | small (default) | paper
//   PHIGRAPH_HOST_THREADS = engine worker threads on this host (default 4)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/metrics/counters.hpp"
#include "src/partition/partition.hpp"
#include "src/sim/device_spec.hpp"
#include "src/sim/model.hpp"

namespace phigraph::bench {

// ---- scale -----------------------------------------------------------------

struct Scale {
  std::string name;
  vid_t pokec_n;
  eid_t pokec_m;
  vid_t dblp_n;
  eid_t dblp_m;  // undirected edges (doubled when converted)
  vid_t dag_n;
  eid_t dag_m;
  int dag_levels;
  int pagerank_iters;
  int sc_iters;
};

/// Scale from PHIGRAPH_SCALE. "paper" reproduces the paper's dataset sizes
/// (Pokec 1.6M/31M, DBLP 436K/1.1M, DAG 40K/200M) — slow on small hosts.
[[nodiscard]] Scale get_scale();

[[nodiscard]] int host_threads();

// ---- workloads ----------------------------------------------------------------

/// Pokec stand-in (PageRank, BFS, SSSP; SSSP adds random weights).
[[nodiscard]] graph::Csr make_pokec(const Scale& s, bool weighted);
/// DBLP stand-in (SemiClustering).
[[nodiscard]] graph::Csr make_dblp(const Scale& s);
/// Dense random DAG (TopoSort).
[[nodiscard]] graph::Csr make_dag(const Scale& s);

// ---- device setups ----------------------------------------------------------------

/// Engine configuration (host-sized threads) plus the modeled device and
/// thread profile (paper-sized threads).
struct DeviceSetup {
  core::EngineConfig engine;
  sim::ExecProfile profile;
  sim::DeviceSpec spec;
};

[[nodiscard]] DeviceSetup cpu_setup(core::ExecMode mode, bool use_simd = true);
[[nodiscard]] DeviceSetup mic_setup(core::ExecMode mode, bool use_simd = true);

/// Whole-run summary of a serving bench (fig 7): throughput, the shared
/// scan's edge savings against the sequential baseline, and tail latency
/// from the QueryEngine's histograms. Mirrors metrics::FailoverStats' role
/// for the failover object — plain data the JSON gate can schema-check.
struct ServingSummary {
  std::uint64_t jobs = 0;
  std::uint64_t batches = 0;
  std::uint64_t lanes = 0;
  double jobs_per_sec = 0;
  std::uint64_t edge_scans_sequential = 0;
  std::uint64_t edge_scans_batched = 0;
  double scan_reduction = 0;  // sequential / batched edge scans
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;
  std::uint64_t max_queue_depth = 0;
};

/// Whole-run summary of the streaming vertex-cut comparison (fig 6, k-way
/// block): HDRF's partition quality and measured cross-rank traffic side by
/// side with round-robin's, the acceptance baseline. All-zero for benches
/// that never run the comparison — the JSON gate checks the schema of every
/// bench output, like the failover and serving objects.
struct PartitionSummary {
  std::uint64_t ranks = 0;
  double replication_factor = 0;   // HDRF vertex-cut RF
  double load_imbalance = 0;       // HDRF max normalized load / mean
  std::uint64_t cut_bytes = 0;     // cross-rank bytes of a BFS under HDRF
  double round_robin_replication_factor = 0;
  std::uint64_t round_robin_cut_bytes = 0;
};

/// Per-application cost weights for the performance model (see
/// sim::ExecProfile): 1/1/false for the arithmetic-reduction apps;
/// SemiClustering's merge/scoring is far heavier and branchy.
struct AppCost {
  double combine_weight = 1.0;
  double update_weight = 1.0;
  bool branchy = false;
};

inline DeviceSetup with_cost(DeviceSetup d, const AppCost& cost) {
  d.profile.combine_weight = cost.combine_weight;
  d.profile.update_weight = cost.update_weight;
  d.profile.branchy = cost.branchy;
  return d;
}

/// Same setup with a forced (or auto) traversal direction — used by the
/// direction benches to measure push vs pull vs hybrid on one config.
inline DeviceSetup with_direction(DeviceSetup d, core::DirectionMode dir) {
  d.engine.direction_mode = dir;
  return d;
}


// ---- runs ----------------------------------------------------------------------

template <core::VertexProgram Program>
struct DeviceRunResult {
  metrics::RunTrace trace;
  metrics::PhaseTrace phases;  // host phase seconds, parallel to trace
  sim::PhaseTimes modeled;
  double host_seconds = 0;
  int supersteps = 0;
};

template <core::VertexProgram Program>
DeviceRunResult<Program> run_device(const graph::Csr& g, const Program& prog,
                                    DeviceSetup setup, int max_supersteps) {
  setup.engine.max_supersteps = max_supersteps;
  setup.profile.msg_bytes = sizeof(typename Program::message_t);
  setup.profile.value_bytes = sizeof(typename Program::vertex_value_t);
  setup.profile.num_vertices = g.num_vertices();
  core::DeviceEngine<Program> engine(core::LocalGraph::whole(g), prog,
                                     setup.engine);
  auto run = engine.run();
  DeviceRunResult<Program> out;
  out.modeled = sim::model_run(run.trace, setup.spec, setup.profile);
  out.trace = std::move(run.trace);
  out.phases = std::move(run.phases);
  out.host_seconds = run.host_seconds;
  out.supersteps = run.supersteps;
  return out;
}

template <core::VertexProgram Program>
struct HeteroRunResult {
  metrics::RunTrace cpu_trace;
  metrics::RunTrace mic_trace;
  metrics::PhaseTrace cpu_phases;
  metrics::PhaseTrace mic_phases;
  metrics::RankIo cpu_io;  // per-peer exchange bytes, indexed by rank
  metrics::RankIo mic_io;
  sim::HeteroEstimate modeled;
  int supersteps = 0;
  bool completed = true;
  metrics::FailoverStats failover;
};

template <core::VertexProgram Program>
HeteroRunResult<Program> run_hetero(const graph::Csr& g, const Program& prog,
                                    std::vector<Device> owner,
                                    DeviceSetup cpu, DeviceSetup mic,
                                    int max_supersteps,
                                    const sim::LinkSpec& link = {}) {
  cpu.engine.max_supersteps = mic.engine.max_supersteps = max_supersteps;
  cpu.profile.msg_bytes = mic.profile.msg_bytes =
      sizeof(typename Program::message_t);
  cpu.profile.value_bytes = mic.profile.value_bytes =
      sizeof(typename Program::vertex_value_t);
  vid_t cpu_n = 0;
  for (Device d : owner)
    if (d == Device::Cpu) ++cpu_n;
  cpu.profile.num_vertices = std::max<vid_t>(1, cpu_n);
  mic.profile.num_vertices =
      std::max<vid_t>(1, g.num_vertices() - cpu_n);
  core::HeteroEngine<Program> he(g, std::move(owner), prog, cpu.engine,
                                 mic.engine);
  auto res = he.run();
  HeteroRunResult<Program> out;
  out.modeled =
      sim::model_hetero(res.cpu.trace, cpu.spec, cpu.profile, res.mic.trace,
                        mic.spec, mic.profile, link);
  out.supersteps = res.cpu.supersteps;
  out.cpu_trace = std::move(res.cpu.trace);
  out.mic_trace = std::move(res.mic.trace);
  out.cpu_phases = std::move(res.cpu.phases);
  out.mic_phases = std::move(res.mic.phases);
  out.cpu_io = std::move(res.cpu.io);
  out.mic_io = std::move(res.mic.io);
  out.completed = res.completed;
  out.failover = res.failover;
  return out;
}

// ---- printing --------------------------------------------------------------------

// ---- span tracing (trace builds) -------------------------------------------------

/// Reset the span collector so the coming runs start a fresh timeline.
/// No-op unless built with PHIGRAPH_TRACE.
void trace_run_begin();

/// Export the collected spans as Chrome-trace JSON when the
/// PHIGRAPH_TRACE_JSON environment variable is set ("1" for the working
/// directory, anything else is an output directory); the file is named
/// TRACE_<fig_slug>.json and loads in chrome://tracing. No-op unless built
/// with PHIGRAPH_TRACE.
void trace_run_end(const std::string& figure);

void print_header(const std::string& title, const graph::Csr& g,
                  const Scale& s);
void print_row(const std::string& version, double exec_s, double comm_s = 0);
void print_ratio(const std::string& label, double ratio,
                 const std::string& paper_band);
void print_footer();

// ---- machine-readable output -----------------------------------------------------

/// Per-run JSON emitter so the perf trajectory is machine-readable: when the
/// PHIGRAPH_BENCH_JSON environment variable is set ("1" for the working
/// directory, anything else is treated as an output directory), the
/// destructor writes BENCH_<fig>.json containing, per engine version, the
/// modeled times, whole-run counter totals, and per-superstep series of the
/// sparse-frontier counters (frontier_size, sparse flag, groups_dirty,
/// groups_skipped). Disabled, every call is a no-op.
class JsonEmitter {
 public:
  JsonEmitter(const std::string& figure, const std::string& app,
              const graph::Csr& g, const Scale& s);
  ~JsonEmitter();
  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;

  void add_version(const std::string& name, double exec_s, double comm_s,
                   const metrics::RunTrace& trace,
                   const metrics::PhaseTrace& phases = {});

  /// Record the heterogeneous run's failover counters (all-zero on a
  /// fault-free run); emitted as a top-level "failover" object.
  void set_failover(const metrics::FailoverStats& f);

  /// Record the serving bench's summary (all-zero for non-serving benches);
  /// emitted as a top-level "serving" object. Like the failover object, the
  /// destructor writes an all-zero default when this is never called, so
  /// every bench JSON carries the schema the compare gate checks.
  void set_serving(const ServingSummary& s);

  /// Record the streaming vertex-cut comparison (all-zero for benches that
  /// skip it); emitted as a top-level "partition" object. Like failover and
  /// serving, the destructor writes an all-zero default when never called,
  /// so every bench JSON carries the schema the compare gate checks.
  void set_partition(const PartitionSummary& p);

  /// Record per-rank exchange traffic (bytes to / from every peer rank) of
  /// a heterogeneous / cluster run; emitted as a top-level "ranks" array.
  /// ranks[r] is rank r's RankIo from its RunResult.
  void set_ranks(const std::vector<metrics::RankIo>& io);

  [[nodiscard]] static bool enabled();

 private:
  void append_phases(const metrics::PhaseTrace& phases);

  bool enabled_ = false;
  std::string path_;
  std::string body_;
  std::string failover_json_;
  std::string serving_json_;
  std::string partition_json_;
  std::string ranks_json_;
  bool first_version_ = true;
};

}  // namespace phigraph::bench
