#include "bench/common/harness.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/common/expect.hpp"
#include "src/metrics/chrome_trace.hpp"
#include "src/metrics/trace.hpp"

namespace phigraph::bench {

Scale get_scale() {
  const char* env = std::getenv("PHIGRAPH_SCALE");
  const std::string which = env ? env : "small";
  if (which == "paper") {
    // The paper's dataset sizes (§V-B). The TopoSort DAG is 200M edges —
    // expect long generation times on a small host.
    return {"paper", 1'600'000, 31'000'000, 436'000, 1'100'000,
            40'000,  200'000'000, 40, 15, 8};
  }
  if (which == "tiny") {
    return {"tiny", 20'000, 250'000, 8'000, 24'000, 600, 150'000, 12, 10, 5};
  }
  PG_CHECK_MSG(which == "small", "PHIGRAPH_SCALE must be tiny|small|paper");
  // Default: structure-preserving scale-down; runs in seconds. The DAG
  // keeps the paper's edges >> vertices density (its whole point).
  return {"small", 100'000, 1'800'000, 30'000, 90'000,
          1'200,   2'000'000, 16, 15, 6};
}

int host_threads() {
  if (const char* env = std::getenv("PHIGRAPH_HOST_THREADS"))
    return std::max(1, std::atoi(env));
  return 4;
}

graph::Csr make_pokec(const Scale& s, bool weighted) {
  auto g = gen::pokec_like(s.pokec_n, s.pokec_m, /*seed=*/0x90CEC);
  if (weighted) gen::add_random_weights(g, 0xED6E);
  return g;
}

graph::Csr make_dblp(const Scale& s) {
  return gen::dblp_like(s.dblp_n, s.dblp_m, /*seed=*/0xDB19);
}

graph::Csr make_dag(const Scale& s) {
  return gen::dag_like(s.dag_n, s.dag_m, /*seed=*/0xDA6, s.dag_levels);
}

DeviceSetup cpu_setup(core::ExecMode mode, bool use_simd) {
  DeviceSetup d;
  d.spec = sim::xeon_e5_2680();
  d.engine.mode = mode;
  d.engine.simd_bytes = simd::kCpuSimdBytes;
  d.engine.use_simd = use_simd && mode != core::ExecMode::kOmpStyle;
  d.engine.threads = host_threads();
  d.engine.movers = std::max(1, host_threads() / 2);
  // The paper's best CPU configuration: 16 threads total (1 per core);
  // for pipelining we model a 12 + 4 split of the same total.
  d.profile.mode = mode;
  d.profile.use_simd = d.engine.use_simd;
  d.profile.lanes = 4;
  if (mode == core::ExecMode::kPipelining) {
    d.profile.threads = 12;
    d.profile.movers = 4;
  } else {
    d.profile.threads = 16;
    d.profile.movers = 0;
  }
  return d;
}

DeviceSetup mic_setup(core::ExecMode mode, bool use_simd) {
  DeviceSetup d;
  d.spec = sim::xeon_phi_se10p();
  d.engine.mode = mode;
  d.engine.simd_bytes = simd::kMicSimdBytes;
  d.engine.use_simd = use_simd && mode != core::ExecMode::kOmpStyle;
  d.engine.threads = host_threads();
  d.engine.movers = std::max(1, host_threads() / 2);
  // The paper's best MIC configurations: 240 threads for OMP/locking,
  // 180 workers + 60 movers for pipelining.
  d.profile.mode = mode;
  d.profile.use_simd = d.engine.use_simd;
  d.profile.lanes = 16;
  if (mode == core::ExecMode::kPipelining) {
    d.profile.threads = 180;
    d.profile.movers = 60;
  } else {
    d.profile.threads = 240;
    d.profile.movers = 0;
  }
  return d;
}

void print_header(const std::string& title, const graph::Csr& g,
                  const Scale& s) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("   workload: %u vertices, %llu edges (scale: %s)\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), s.name.c_str());
  std::printf("   %-12s %12s %12s\n", "version", "exec (s)", "comm (s)");
}

void print_row(const std::string& version, double exec_s, double comm_s) {
  if (comm_s > 0)
    std::printf("   %-12s %12.4f %12.4f\n", version.c_str(), exec_s, comm_s);
  else
    std::printf("   %-12s %12.4f %12s\n", version.c_str(), exec_s, "-");
}

void print_ratio(const std::string& label, double ratio,
                 const std::string& paper_band) {
  std::printf("   -> %-38s %6.2fx   (paper: %s)\n", label.c_str(), ratio,
              paper_band.c_str());
}

void print_footer() { std::printf("\n"); }

// ---- span tracing ----------------------------------------------------------------

void trace_run_begin() {
#if PG_TRACE_ENABLED
  trace::Collector::instance().clear();
#endif
}

void trace_run_end(const std::string& figure) {
#if PG_TRACE_ENABLED
  const char* env = std::getenv("PHIGRAPH_TRACE_JSON");
  if (env == nullptr || *env == '\0' || std::string(env) == "0") return;
  std::string slug;
  for (char ch : figure)
    if (std::isalnum(static_cast<unsigned char>(ch)))
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  const std::string dir = std::string(env) == "1" ? "." : env;
  const std::string path =
      dir + "/TRACE_" + (slug.empty() ? "bench" : slug) + ".json";
  const auto snap = trace::Collector::instance().snapshot();
  if (trace::write_chrome_trace(path, snap))
    std::printf("   [trace] wrote %s (%zu threads)\n", path.c_str(),
                snap.size());
  else
    std::fprintf(stderr, "   [trace] could not write %s\n", path.c_str());
#else
  (void)figure;
#endif
}

// ---- JSON emitter ----------------------------------------------------------------

namespace {

/// "Fig 5(b)" -> "fig5b": lowercase alphanumerics only, filesystem-safe.
std::string fig_slug(const std::string& figure) {
  std::string slug;
  for (char ch : figure) {
    if (std::isalnum(static_cast<unsigned char>(ch)))
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return slug.empty() ? "bench" : slug;
}

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool last = false) {
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(v);
  if (!last) out += ", ";
}

}  // namespace

bool JsonEmitter::enabled() {
  const char* env = std::getenv("PHIGRAPH_BENCH_JSON");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

JsonEmitter::JsonEmitter(const std::string& figure, const std::string& app,
                         const graph::Csr& g, const Scale& s)
    : enabled_(enabled()) {
  if (!enabled_) return;
  const std::string env = std::getenv("PHIGRAPH_BENCH_JSON");
  std::string dir = env == "1" ? "." : env;
  path_ = dir + "/BENCH_" + fig_slug(figure) + ".json";
  char head[256];
  std::snprintf(head, sizeof(head),
                "{\n  \"figure\": \"%s\",\n  \"app\": \"%s\",\n"
                "  \"scale\": \"%s\",\n  \"vertices\": %u,\n"
                "  \"edges\": %llu,\n  \"versions\": [",
                figure.c_str(), app.c_str(), s.name.c_str(), g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));
  body_ = head;
}

void JsonEmitter::add_version(const std::string& name, double exec_s,
                              double comm_s, const metrics::RunTrace& trace,
                              const metrics::PhaseTrace& phases) {
  if (!enabled_) return;
  if (!first_version_) body_ += ',';
  first_version_ = false;
  const auto t = metrics::totals(trace);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\n    {\"name\": \"%s\", \"exec_s\": %.6f, \"comm_s\": %.6f, "
                "\"supersteps\": %zu,\n     \"totals\": {",
                name.c_str(), exec_s, comm_s, trace.size());
  body_ += buf;
  append_kv(body_, "active_vertices", t.active_vertices);
  append_kv(body_, "edges_scanned", t.edges_scanned);
  append_kv(body_, "msgs_local", t.msgs_local);
  append_kv(body_, "msgs_remote", t.msgs_remote);
  append_kv(body_, "msgs_received", t.msgs_received);
  append_kv(body_, "bytes_sent", t.bytes_sent);
  append_kv(body_, "bytes_received", t.bytes_received);
  append_kv(body_, "columns_allocated", t.columns_allocated);
  append_kv(body_, "sched_retrievals", t.sched_retrievals);
  append_kv(body_, "frontier_size", t.frontier_size);
  append_kv(body_, "dense_supersteps", t.dense_supersteps);
  append_kv(body_, "sparse_supersteps", t.sparse_supersteps);
  append_kv(body_, "groups_dirty", t.groups_dirty);
  append_kv(body_, "groups_skipped", t.groups_skipped);
  append_kv(body_, "push_supersteps", t.push_supersteps);
  append_kv(body_, "pull_supersteps", t.pull_supersteps);
  append_kv(body_, "direction_flips", t.direction_flips);
  append_kv(body_, "pull_edges_scanned", t.pull_edges_scanned);
  append_kv(body_, "pull_early_exits", t.pull_early_exits, /*last=*/true);
  body_ += "},\n     \"supersteps_detail\": [";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& c = trace[i];
    if (i > 0) body_ += ',';
    body_ += "\n       {";
    append_kv(body_, "frontier_size", c.frontier_size);
    append_kv(body_, "sparse", c.sparse_supersteps);
    append_kv(body_, "pull", c.pull_supersteps);
    append_kv(body_, "groups_dirty", c.groups_dirty);
    append_kv(body_, "groups_skipped", c.groups_skipped);
    append_kv(body_, "active", c.active_vertices);
    append_kv(body_, "verts_updated", c.verts_updated, /*last=*/true);
    body_ += '}';
  }
  body_ += ']';
  append_phases(phases);
  body_ += '}';
}

/// Per-superstep host phase seconds: a "phases" array (one row per
/// superstep, phase_sum + wall included so regressions and the sum≈wall
/// invariant are diffable from the JSON alone) plus a "phase_totals" rollup.
void JsonEmitter::append_phases(const metrics::PhaseTrace& phases) {
  if (phases.empty()) return;
  auto row = [](const metrics::PhaseSeconds& p, std::uint64_t superstep) {
    char buf[352];
    std::snprintf(
        buf, sizeof(buf),
        "{\"superstep\": %llu, \"prepare\": %.6f, \"generate\": %.6f, "
        "\"exchange\": %.6f, \"process\": %.6f, \"update\": %.6f, "
        "\"terminate\": %.6f, \"checkpoint\": %.6f, \"phase_sum\": %.6f, "
        "\"wall\": %.6f}",
        static_cast<unsigned long long>(superstep), p.prepare, p.generate,
        p.exchange, p.process, p.update, p.terminate, p.checkpoint,
        p.phase_sum(), p.wall);
    return std::string(buf);
  };
  body_ += ",\n     \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) body_ += ',';
    body_ += "\n       ";
    body_ += row(phases[i], i);
  }
  body_ += "],\n     \"phase_totals\": ";
  body_ += row(metrics::phase_totals(phases), phases.size());
}

void JsonEmitter::set_failover(const metrics::FailoverStats& f) {
  if (!enabled_) return;
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "\n  \"failover\": {\"failed_over\": %llu, "
                "\"attempts\": %llu, \"epochs\": %llu, \"rung\": %llu, "
                "\"lost_supersteps\": %llu, \"recovery_ms\": %.3f, "
                "\"epoch_recovery_ms\": [",
                static_cast<unsigned long long>(f.failed_over),
                static_cast<unsigned long long>(f.attempts),
                static_cast<unsigned long long>(f.epochs),
                static_cast<unsigned long long>(f.rung),
                static_cast<unsigned long long>(f.lost_supersteps),
                f.recovery_ms);
  failover_json_ = buf;
  for (std::size_t i = 0; i < f.epoch_recovery_ms.size(); ++i) {
    if (i > 0) failover_json_ += ", ";
    std::snprintf(buf, sizeof(buf), "%.3f", f.epoch_recovery_ms[i]);
    failover_json_ += buf;
  }
  failover_json_ += "]},";
}

void JsonEmitter::set_serving(const ServingSummary& s) {
  if (!enabled_) return;
  char buf[448];
  std::snprintf(
      buf, sizeof(buf),
      "\n  \"serving\": {\"jobs\": %llu, \"batches\": %llu, "
      "\"lanes\": %llu, \"jobs_per_sec\": %.3f, "
      "\"edge_scans_sequential\": %llu, \"edge_scans_batched\": %llu, "
      "\"scan_reduction\": %.3f, \"p50_latency_ms\": %.3f, "
      "\"p99_latency_ms\": %.3f, \"max_queue_depth\": %llu},",
      static_cast<unsigned long long>(s.jobs),
      static_cast<unsigned long long>(s.batches),
      static_cast<unsigned long long>(s.lanes), s.jobs_per_sec,
      static_cast<unsigned long long>(s.edge_scans_sequential),
      static_cast<unsigned long long>(s.edge_scans_batched), s.scan_reduction,
      s.p50_latency_ms, s.p99_latency_ms,
      static_cast<unsigned long long>(s.max_queue_depth));
  serving_json_ = buf;
}

void JsonEmitter::set_partition(const PartitionSummary& p) {
  if (!enabled_) return;
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "\n  \"partition\": {\"ranks\": %llu, "
      "\"replication_factor\": %.3f, \"load_imbalance\": %.3f, "
      "\"cut_bytes\": %llu, \"round_robin_replication_factor\": %.3f, "
      "\"round_robin_cut_bytes\": %llu},",
      static_cast<unsigned long long>(p.ranks), p.replication_factor,
      p.load_imbalance, static_cast<unsigned long long>(p.cut_bytes),
      p.round_robin_replication_factor,
      static_cast<unsigned long long>(p.round_robin_cut_bytes));
  partition_json_ = buf;
}

void JsonEmitter::set_ranks(const std::vector<metrics::RankIo>& io) {
  if (!enabled_) return;
  std::string out = "\n  \"ranks\": [";
  for (std::size_t r = 0; r < io.size(); ++r) {
    if (r > 0) out += ',';
    out += "\n    {\"rank\": " + std::to_string(r) + ", \"bytes_to\": [";
    for (std::size_t d = 0; d < io[r].bytes_to.size(); ++d) {
      if (d > 0) out += ", ";
      out += std::to_string(io[r].bytes_to[d]);
    }
    out += "], \"bytes_from\": [";
    for (std::size_t s = 0; s < io[r].bytes_from.size(); ++s) {
      if (s > 0) out += ", ";
      out += std::to_string(io[r].bytes_from[s]);
    }
    out += "]}";
  }
  out += "\n  ],";
  ranks_json_ = std::move(out);
}

JsonEmitter::~JsonEmitter() {
  if (!enabled_) return;
  body_ += "\n  ],";
  body_ += ranks_json_;
  body_ += failover_json_.empty()
               ? "\n  \"failover\": {\"failed_over\": 0, \"attempts\": 0, "
                 "\"epochs\": 0, \"rung\": 0, \"lost_supersteps\": 0, "
                 "\"recovery_ms\": 0.000, \"epoch_recovery_ms\": []},"
               : failover_json_.c_str();
  body_ += serving_json_.empty()
               ? "\n  \"serving\": {\"jobs\": 0, \"batches\": 0, "
                 "\"lanes\": 0, \"jobs_per_sec\": 0.000, "
                 "\"edge_scans_sequential\": 0, \"edge_scans_batched\": 0, "
                 "\"scan_reduction\": 0.000, \"p50_latency_ms\": 0.000, "
                 "\"p99_latency_ms\": 0.000, \"max_queue_depth\": 0},"
               : serving_json_.c_str();
  body_ += partition_json_.empty()
               ? "\n  \"partition\": {\"ranks\": 0, "
                 "\"replication_factor\": 0.000, \"load_imbalance\": 0.000, "
                 "\"cut_bytes\": 0, \"round_robin_replication_factor\": "
                 "0.000, \"round_robin_cut_bytes\": 0},"
               : partition_json_.c_str();
  body_.pop_back();  // drop the trailing comma after the last member
  body_ += "\n}\n";
  if (std::FILE* f = std::fopen(path_.c_str(), "w")) {
    std::fwrite(body_.data(), 1, body_.size(), f);
    std::fclose(f);
    std::printf("   [json] wrote %s\n", path_.c_str());
  } else {
    std::fprintf(stderr, "   [json] could not open %s\n", path_.c_str());
  }
}

}  // namespace phigraph::bench
