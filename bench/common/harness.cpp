#include "bench/common/harness.hpp"

#include <cstdlib>
#include <thread>

#include "src/common/expect.hpp"

namespace phigraph::bench {

Scale get_scale() {
  const char* env = std::getenv("PHIGRAPH_SCALE");
  const std::string which = env ? env : "small";
  if (which == "paper") {
    // The paper's dataset sizes (§V-B). The TopoSort DAG is 200M edges —
    // expect long generation times on a small host.
    return {"paper", 1'600'000, 31'000'000, 436'000, 1'100'000,
            40'000,  200'000'000, 40, 15, 8};
  }
  if (which == "tiny") {
    return {"tiny", 20'000, 250'000, 8'000, 24'000, 600, 150'000, 12, 10, 5};
  }
  PG_CHECK_MSG(which == "small", "PHIGRAPH_SCALE must be tiny|small|paper");
  // Default: structure-preserving scale-down; runs in seconds. The DAG
  // keeps the paper's edges >> vertices density (its whole point).
  return {"small", 100'000, 1'800'000, 30'000, 90'000,
          1'200,   2'000'000, 16, 15, 6};
}

int host_threads() {
  if (const char* env = std::getenv("PHIGRAPH_HOST_THREADS"))
    return std::max(1, std::atoi(env));
  return 4;
}

graph::Csr make_pokec(const Scale& s, bool weighted) {
  auto g = gen::pokec_like(s.pokec_n, s.pokec_m, /*seed=*/0x90CEC);
  if (weighted) gen::add_random_weights(g, 0xED6E);
  return g;
}

graph::Csr make_dblp(const Scale& s) {
  return gen::dblp_like(s.dblp_n, s.dblp_m, /*seed=*/0xDB19);
}

graph::Csr make_dag(const Scale& s) {
  return gen::dag_like(s.dag_n, s.dag_m, /*seed=*/0xDA6, s.dag_levels);
}

DeviceSetup cpu_setup(core::ExecMode mode, bool use_simd) {
  DeviceSetup d;
  d.spec = sim::xeon_e5_2680();
  d.engine.mode = mode;
  d.engine.simd_bytes = simd::kCpuSimdBytes;
  d.engine.use_simd = use_simd && mode != core::ExecMode::kOmpStyle;
  d.engine.threads = host_threads();
  d.engine.movers = std::max(1, host_threads() / 2);
  // The paper's best CPU configuration: 16 threads total (1 per core);
  // for pipelining we model a 12 + 4 split of the same total.
  d.profile.mode = mode;
  d.profile.use_simd = d.engine.use_simd;
  d.profile.lanes = 4;
  if (mode == core::ExecMode::kPipelining) {
    d.profile.threads = 12;
    d.profile.movers = 4;
  } else {
    d.profile.threads = 16;
    d.profile.movers = 0;
  }
  return d;
}

DeviceSetup mic_setup(core::ExecMode mode, bool use_simd) {
  DeviceSetup d;
  d.spec = sim::xeon_phi_se10p();
  d.engine.mode = mode;
  d.engine.simd_bytes = simd::kMicSimdBytes;
  d.engine.use_simd = use_simd && mode != core::ExecMode::kOmpStyle;
  d.engine.threads = host_threads();
  d.engine.movers = std::max(1, host_threads() / 2);
  // The paper's best MIC configurations: 240 threads for OMP/locking,
  // 180 workers + 60 movers for pipelining.
  d.profile.mode = mode;
  d.profile.use_simd = d.engine.use_simd;
  d.profile.lanes = 16;
  if (mode == core::ExecMode::kPipelining) {
    d.profile.threads = 180;
    d.profile.movers = 60;
  } else {
    d.profile.threads = 240;
    d.profile.movers = 0;
  }
  return d;
}

void print_header(const std::string& title, const graph::Csr& g,
                  const Scale& s) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("   workload: %u vertices, %llu edges (scale: %s)\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), s.name.c_str());
  std::printf("   %-12s %12s %12s\n", "version", "exec (s)", "comm (s)");
}

void print_row(const std::string& version, double exec_s, double comm_s) {
  if (comm_s > 0)
    std::printf("   %-12s %12.4f %12.4f\n", version.c_str(), exec_s, comm_s);
  else
    std::printf("   %-12s %12.4f %12s\n", version.c_str(), exec_s, "-");
}

void print_ratio(const std::string& label, double ratio,
                 const std::string& paper_band) {
  std::printf("   -> %-38s %6.2fx   (paper: %s)\n", label.c_str(), ratio,
              paper_band.c_str());
}

void print_footer() { std::printf("\n"); }

}  // namespace phigraph::bench
