// Shared driver for the Fig. 5(a)–(e) benches: one application, seven
// versions (CPU/MIC x OMP/Lock/Pipe + CPU-MIC), modeled execution and
// communication time, plus the headline ratios the paper reports.
#pragma once

#include <algorithm>
#include <string>
#include <type_traits>

#include "bench/common/harness.hpp"

namespace phigraph::bench {

struct Fig5Bands {
  std::string mic_pipe_vs_lock;   // paper's MIC Pipe / MIC Lock speedup
  std::string mic_best_vs_omp;    // best framework MIC version / MIC OMP
  std::string hetero_vs_best;     // CPU-MIC / best single-device framework run
};

/// `extra` (optional) is invoked with the JsonEmitter after the seven
/// standard versions are recorded and before the figure closes — figure
/// benches use it to append figure-specific versions (e.g. Fig 5(b)'s
/// traversal-direction rows) into the same table and JSON file.
template <core::VertexProgram Program, typename Extra = std::nullptr_t>
void fig5_run(const std::string& figure, const std::string& app,
              const graph::Csr& g, const Program& prog, int iters,
              partition::Ratio hetero_ratio, bool mic_uses_pipe,
              const Fig5Bands& bands, const AppCost& cost = {},
              Extra&& extra = nullptr) {
  const auto scale = get_scale();
  print_header(figure + ": " + app, g, scale);
  JsonEmitter json(figure, app, g, scale);
  trace_run_begin();

  using Mode = core::ExecMode;
  auto cpu = [&](Mode m) { return with_cost(cpu_setup(m), cost); };
  auto mic = [&](Mode m) { return with_cost(mic_setup(m), cost); };
  const auto cpu_omp = run_device(g, prog, cpu(Mode::kOmpStyle), iters);
  const auto cpu_lock = run_device(g, prog, cpu(Mode::kLocking), iters);
  const auto cpu_pipe = run_device(g, prog, cpu(Mode::kPipelining), iters);
  const auto mic_omp = run_device(g, prog, mic(Mode::kOmpStyle), iters);
  const auto mic_lock = run_device(g, prog, mic(Mode::kLocking), iters);
  const auto mic_pipe = run_device(g, prog, mic(Mode::kPipelining), iters);

  // Heterogeneous: hybrid partitioning at the per-app best ratio; CPU runs
  // locking (faster there), MIC runs pipelining except for BFS (paper §V-C).
  const auto owner = partition::hybrid_partition(
      g, hetero_ratio, {.num_blocks = 256, .seed = 42});
  const auto hetero = run_hetero(
      g, prog, owner, cpu(Mode::kLocking),
      mic(mic_uses_pipe ? Mode::kPipelining : Mode::kLocking), iters);

  print_row("CPU OMP", cpu_omp.modeled.execution());
  print_row("CPU Lock", cpu_lock.modeled.execution());
  print_row("CPU Pipe", cpu_pipe.modeled.execution());
  print_row("MIC OMP", mic_omp.modeled.execution());
  print_row("MIC Lock", mic_lock.modeled.execution());
  print_row("MIC Pipe", mic_pipe.modeled.execution());
  print_row("CPU-MIC", hetero.modeled.execution_seconds,
            hetero.modeled.comm_seconds);

  json.add_version("CPU OMP", cpu_omp.modeled.execution(), 0, cpu_omp.trace,
                   cpu_omp.phases);
  json.add_version("CPU Lock", cpu_lock.modeled.execution(), 0, cpu_lock.trace,
                   cpu_lock.phases);
  json.add_version("CPU Pipe", cpu_pipe.modeled.execution(), 0, cpu_pipe.trace,
                   cpu_pipe.phases);
  json.add_version("MIC OMP", mic_omp.modeled.execution(), 0, mic_omp.trace,
                   mic_omp.phases);
  json.add_version("MIC Lock", mic_lock.modeled.execution(), 0, mic_lock.trace,
                   mic_lock.phases);
  json.add_version("MIC Pipe", mic_pipe.modeled.execution(), 0, mic_pipe.trace,
                   mic_pipe.phases);
  json.add_version("CPU-MIC (cpu rank)", hetero.modeled.execution_seconds,
                   hetero.modeled.comm_seconds, hetero.cpu_trace,
                   hetero.cpu_phases);
  json.add_version("CPU-MIC (mic rank)", hetero.modeled.execution_seconds,
                   hetero.modeled.comm_seconds, hetero.mic_trace,
                   hetero.mic_phases);
  json.set_failover(hetero.failover);

  const double best_single =
      std::min({cpu_lock.modeled.execution(), cpu_pipe.modeled.execution(),
                mic_lock.modeled.execution(), mic_pipe.modeled.execution()});
  const double mic_best_fw =
      std::min(mic_lock.modeled.execution(), mic_pipe.modeled.execution());

  print_ratio("MIC Pipe speedup over MIC Lock",
              mic_lock.modeled.execution() / mic_pipe.modeled.execution(),
              bands.mic_pipe_vs_lock);
  print_ratio("MIC framework speedup over MIC OMP",
              mic_omp.modeled.execution() / mic_best_fw, bands.mic_best_vs_omp);
  print_ratio("CPU OMP vs CPU Lock",
              cpu_omp.modeled.execution() / cpu_lock.modeled.execution(),
              "~1.0 (OMP wins by ~2.5% on average)");
  print_ratio("CPU-MIC speedup over best single device",
              best_single / hetero.modeled.total(), bands.hetero_vs_best);
  if constexpr (!std::is_same_v<std::decay_t<Extra>, std::nullptr_t>)
    extra(json);
  print_footer();
  trace_run_end(figure);
}

}  // namespace phigraph::bench
