// Ablation: dynamic-scheduler chunk size (paper §IV-D: "a thread can obtain
// multiple tasks each time" to lower the retrieval frequency) and the
// spinlock primitive underpinning the runtime's fine-grained locking.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "src/sched/dynamic_scheduler.hpp"
#include "src/sched/spinlock.hpp"
#include "src/sched/thread_team.hpp"

namespace {

using namespace phigraph;

void bm_chunk_size(benchmark::State& state) {
  constexpr std::size_t kTasks = 1 << 18;
  const auto chunk = static_cast<std::size_t>(state.range(0));
  sched::DynamicScheduler scheduler;
  sched::ThreadTeam team(4);
  for (auto _ : state) {
    scheduler.reset(kTasks, chunk);
    team.run([&](int) {
      std::uint64_t acc = 0;
      while (auto r = scheduler.next_chunk())
        for (std::size_t i = r->begin; i < r->end; ++i) acc += i;
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTasks));
  state.counters["retrievals"] =
      static_cast<double>(scheduler.retrievals());
}

void bm_spinlock_uncontended(benchmark::State& state) {
  sched::SpinLock lock;
  std::uint64_t x = 0;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(++x);
    lock.unlock();
  }
}

void bm_spinlock_contended(benchmark::State& state) {
  static sched::SpinLock lock;
  static std::uint64_t shared = 0;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(++shared);
    lock.unlock();
  }
}

}  // namespace

BENCHMARK(bm_chunk_size)->Arg(1)->Arg(16)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_spinlock_uncontended);
BENCHMARK(bm_spinlock_contended)->Threads(1)->Threads(4);

BENCHMARK_MAIN();
