// Ablation: auto-tuning (the paper's §VII future work, implemented).
// Sweeps the MIC worker/mover split and the CPU:MIC partitioning ratio for
// each reducible application, printing the modeled cost curve and the
// tuner's pick — compare against the paper's hand-tuned 180+60 and per-app
// ratios (3:5 PageRank, 1:1 SSSP, 1:4 TopoSort).
#include <cstdio>

#include "bench/common/harness.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/sssp.hpp"
#include "src/apps/toposort.hpp"
#include "src/tune/autotune.hpp"

namespace {

using namespace phigraph;

template <core::VertexProgram Program>
void tune_app(const char* name, const graph::Csr& g, const Program& prog,
              int iters, const char* paper_ratio) {
  std::printf("\n-- %s --\n", name);

  // Probe run for the mover-split tuner.
  auto setup = bench::mic_setup(core::ExecMode::kPipelining);
  setup.engine.max_supersteps = iters;
  setup.profile.msg_bytes = sizeof(typename Program::message_t);
  setup.profile.value_bytes = sizeof(typename Program::vertex_value_t);
  setup.profile.num_vertices = g.num_vertices();
  core::DeviceEngine<Program> probe(core::LocalGraph::whole(g), prog,
                                    setup.engine);
  const auto run = probe.run();

  std::printf("   mover-split cost curve (240 MIC threads):\n");
  for (int movers : {20, 40, 60, 80, 120}) {
    auto p = setup.profile;
    p.threads = 240 - movers;
    p.movers = movers;
    std::printf("     %3d workers + %3d movers: %.4fs\n", p.threads, movers,
                sim::model_run(run.trace, setup.spec, p).execution());
  }
  const auto split = tune::tune_mover_split(run.trace, setup.spec,
                                            setup.profile, 240, /*step=*/5);
  std::printf("   -> tuner picks %d + %d (paper hand-tuned: 180 + 60)\n",
              split.workers, split.movers);

  // Ratio tuner.
  tune::TuneDevice cpu{bench::cpu_setup(core::ExecMode::kLocking).engine,
                       bench::cpu_setup(core::ExecMode::kLocking).profile,
                       sim::xeon_e5_2680()};
  tune::TuneDevice mic{setup.engine, setup.profile, setup.spec};
  cpu.engine.max_supersteps = mic.engine.max_supersteps = iters;
  const auto bp = partition::blocked_min_cut(g, {.num_blocks = 64, .seed = 5});
  const std::vector<partition::Ratio> candidates = {
      {1, 4}, {1, 2}, {3, 5}, {1, 1}, {4, 3}, {2, 1}, {4, 1}};
  const auto ratio = tune::tune_partition_ratio(g, prog, bp, candidates, cpu, mic);
  std::printf("   -> tuner picks ratio %d:%d at %.4fs (paper hand-tuned: %s)\n",
              ratio.ratio.cpu, ratio.ratio.mic, ratio.modeled_seconds,
              paper_ratio);
}

}  // namespace

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  std::printf("== Auto-tuning ablation (paper SVII future work; scale: %s) ==\n",
              scale.name.c_str());
  {
    const auto g = bench::make_pokec(scale, false);
    tune_app("PageRank", g, apps::PageRank{}, 8, "3:5");
  }
  {
    const auto g = bench::make_pokec(scale, true);
    tune_app("SSSP", g, apps::Sssp{g.num_vertices() / 16}, 1000, "1:1");
  }
  {
    const auto g = bench::make_dag(scale);
    tune_app("TopoSort", g, apps::TopoSort{}, 10000, "1:4");
  }
  std::printf("\n");
  return 0;
}
