// Ablation: direction-optimizing traversal (push vs pull vs auto hybrid).
//
// Runs BFS and SSSP under all three direction modes on a uniform
// (Erdős–Rényi) and a power-law (Pokec-like) graph, reporting per mode the
// measured host wall-clock, the modeled CPU and MIC times, and the direction
// counters (pull supersteps, probed in-edges, early exits). The power-law
// graph is where the hybrid pays off: its dense middle supersteps switch to
// the bitmap pull scan; the uniform graph's shallow plateau barely triggers.
// Also prints the threshold tuner's (alpha, beta) pick from a forced-push
// probe — compare against the literature defaults 14/24.
#include <cstdio>
#include <string>

#include "bench/common/harness.hpp"
#include "src/apps/bfs.hpp"
#include "src/apps/sssp.hpp"
#include "src/tune/autotune.hpp"

namespace {

using namespace phigraph;
using core::DirectionMode;

constexpr DirectionMode kModes[] = {DirectionMode::kForcePush,
                                    DirectionMode::kForcePull,
                                    DirectionMode::kAuto};

template <core::VertexProgram Program>
void direction_sweep(const char* graph_name, const graph::Csr& g,
                     const char* app_name, const Program& prog, int iters,
                     bench::JsonEmitter& json) {
  std::printf("\n-- %s / %s --\n", app_name, graph_name);
  std::printf("   %-6s %12s %12s %12s %6s %14s %12s\n", "dir", "host (s)",
              "cpu model", "mic model", "pulls", "pull edges", "early exit");

  metrics::RunTrace push_trace;
  for (DirectionMode mode : kModes) {
    const auto cpu = bench::with_direction(
        bench::cpu_setup(core::ExecMode::kLocking), mode);
    auto res = bench::run_device(g, prog, cpu, iters);
    const auto mic = bench::with_direction(
        bench::mic_setup(core::ExecMode::kLocking), mode);
    const double mic_model =
        sim::model_run(res.trace, mic.spec, mic.profile).execution();
    const auto t = metrics::totals(res.trace);
    std::printf("   %-6s %12.4f %12.4f %12.4f %6llu %14llu %12llu\n",
                core::direction_mode_name(mode), res.host_seconds,
                res.modeled.execution(), mic_model,
                static_cast<unsigned long long>(t.pull_supersteps),
                static_cast<unsigned long long>(t.pull_edges_scanned),
                static_cast<unsigned long long>(t.pull_early_exits));
    json.add_version(std::string(app_name) + " " + graph_name + " " +
                         core::direction_mode_name(mode),
                     res.modeled.execution(), 0, res.trace, res.phases);
    if (mode == DirectionMode::kForcePush) push_trace = std::move(res.trace);
  }

  const auto mic = bench::mic_setup(core::ExecMode::kLocking);
  auto prof = mic.profile;
  prof.msg_bytes = sizeof(typename Program::message_t);
  prof.value_bytes = sizeof(typename Program::vertex_value_t);
  prof.num_vertices = g.num_vertices();
  const auto choice = tune::tune_direction_thresholds(
      push_trace, g.num_vertices(), g.num_edges(), mic.spec, prof);
  if (choice.alpha > 0.0)
    std::printf(
        "   -> MIC threshold tuner picks alpha=%.0f beta=%.0f "
        "(%.4fs vs %.4fs all-push; defaults 14/24)\n",
        choice.alpha, choice.beta, choice.modeled_seconds,
        choice.push_only_seconds);
  else
    std::printf("   -> MIC threshold tuner keeps all-push (%.4fs)\n",
                choice.push_only_seconds);
}

}  // namespace

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  std::printf("== Direction-optimizing traversal ablation (scale: %s) ==\n",
              scale.name.c_str());

  auto power_law = bench::make_pokec(scale, /*weighted=*/true);
  auto uniform = gen::erdos_renyi(scale.pokec_n, scale.pokec_m, 0xD12EC);
  gen::add_random_weights(uniform, 0xD12ED);

  bench::JsonEmitter json("micro-direction", "bfs+sssp", power_law, scale);
  {
    const apps::Bfs bfs{power_law.num_vertices() / 16};
    direction_sweep("power-law", power_law, "BFS", bfs, 1000, json);
  }
  {
    const apps::Bfs bfs{uniform.num_vertices() / 16};
    direction_sweep("uniform", uniform, "BFS", bfs, 1000, json);
  }
  {
    const apps::Sssp sssp{power_law.num_vertices() / 16};
    direction_sweep("power-law", power_law, "SSSP", sssp, 1000, json);
  }
  {
    const apps::Sssp sssp{uniform.num_vertices() / 16};
    direction_sweep("uniform", uniform, "SSSP", sssp, 1000, json);
  }
  std::printf("\n");
  return 0;
}
