// Fig. 5(a): PageRank on the Pokec-like graph — seven execution versions.
#include "bench/common/fig5.hpp"
#include "src/apps/pagerank.hpp"

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  const auto g = bench::make_pokec(scale, /*weighted=*/false);
  bench::fig5_run("Fig 5(a)", "PageRank", g, apps::PageRank{},
                  scale.pagerank_iters, partition::Ratio{3, 5},
                  /*mic_uses_pipe=*/true,
                  {.mic_pipe_vs_lock = "2.33x",
                   .mic_best_vs_omp = "1.85x (Pipe vs OMP)",
                   .hetero_vs_best = "1.30x at ratio 3:5"});
  return 0;
}
