// Fig. 5(f): effect of SIMD processing (vectorization) on execution times.
//
// The three SIMD-reducible applications (PageRank, SSSP, TopoSort) are run
// with the message-processing sub-step vectorized and re-run "in a scalar
// way" (the paper's novec rewrite), for both device profiles. Reported:
// per-sub-step speedup (paper: 2.24/2.35/2.22 on CPU, 6.98/5.16/7.85 on
// MIC) and the whole-execution improvement (9/13/8% CPU, 18/23/21% MIC).
#include <cstdio>

#include "bench/common/harness.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/sssp.hpp"
#include "src/apps/toposort.hpp"

namespace {

using namespace phigraph;

struct Row {
  const char* device;
  double novec_proc, vec_proc;
  double novec_exec, vec_exec;
};

template <core::VertexProgram Program>
void run_app(const char* app, const graph::Csr& g, const Program& prog,
             int iters, const char* cpu_band, const char* mic_band) {
  std::printf("\n-- %s --\n", app);
  std::printf("   %-6s %14s %14s %12s %12s\n", "device", "proc novec(s)",
              "proc vec(s)", "proc spdup", "exec gain");
  Row rows[2];
  int i = 0;
  for (bool is_mic : {false, true}) {
    auto mk = [&](bool simd) {
      return is_mic ? bench::mic_setup(core::ExecMode::kLocking, simd)
                    : bench::cpu_setup(core::ExecMode::kLocking, simd);
    };
    const auto vec = bench::run_device(g, prog, mk(true), iters);
    const auto novec = bench::run_device(g, prog, mk(false), iters);
    rows[i] = {is_mic ? "MIC" : "CPU", novec.modeled.processing,
               vec.modeled.processing, novec.modeled.execution(),
               vec.modeled.execution()};
    const auto& r = rows[i];
    std::printf("   %-6s %14.5f %14.5f %11.2fx %11.1f%%\n", r.device,
                r.novec_proc, r.vec_proc, r.novec_proc / r.vec_proc,
                (1.0 - r.vec_exec / r.novec_exec) * 100.0);
    ++i;
  }
  std::printf("   paper: CPU %s, MIC %s\n", cpu_band, mic_band);
}

}  // namespace

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  std::printf("== Fig 5(f): Effect of SIMD Processing on Execution Times ==\n");
  std::printf("   (locking scheme, best thread configs, scale: %s)\n",
              scale.name.c_str());

  {
    const auto g = bench::make_pokec(scale, false);
    run_app("PageRank", g, apps::PageRank{}, scale.pagerank_iters,
            "2.24x proc / 9% overall", "6.98x proc / 18% overall");
  }
  {
    const auto g = bench::make_pokec(scale, true);
    run_app("SSSP", g, apps::Sssp{g.num_vertices() / 16}, 1000,
            "2.35x proc / 13% overall", "5.16x proc / 23% overall");
  }
  {
    const auto g = bench::make_dag(scale);
    run_app("TopoSort", g, apps::TopoSort{}, 10000,
            "2.22x proc / 8% overall", "7.85x proc / 21% overall");
  }
  std::printf("\n");
  return 0;
}
