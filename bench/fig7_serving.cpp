// Fig. 7 (paper-external): multi-query serving over one resident graph.
//
// The ROADMAP's north star is heavy concurrent query traffic; this bench
// measures the two numbers the serving layer exists for:
//
//   1. Edge-scan reduction — 64 seeded BFS queries run once each through the
//      ordinary single-source engine, then once as ONE 64-lane MsBfs batch
//      (one bit per query, shared CSB scan). Acceptance: the batch scans at
//      least 8x fewer edges than the 64 sequential runs combined.
//   2. Serving throughput and tail latency — the same queries streamed
//      through the QueryEngine admission queue: jobs/sec, p50/p99 per-job
//      latency from the engine's histograms, and the deepest the bounded
//      queue ever got.
//
// JSON: versions "sequential-64q" (the 64 traces concatenated, so totals are
// the true sums) and "batched-64q", plus a top-level "serving" object gated
// by tools/bench_compare.py.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common/harness.hpp"
#include "src/apps/bfs.hpp"
#include "src/apps/multi_source.hpp"
#include "src/common/rng.hpp"
#include "src/core/query_engine.hpp"

namespace {

/// Symmetrized (undirected) power-law graph: every edge in both directions.
/// Serving workloads are reachability/component/BFS point queries, which are
/// posed on undirected social graphs (and component membership is only
/// meaningful there); symmetry also concentrates the batch's arrival levels
/// — every source reaches the giant component in a few hops — which is
/// exactly the sharing regime the 64-lane batch exploits.
phigraph::graph::Csr symmetrize(const phigraph::graph::Csr& d) {
  using namespace phigraph;
  std::vector<std::pair<vid_t, vid_t>> edges;
  edges.reserve(2 * d.num_edges());
  for (vid_t u = 0; u < d.num_vertices(); ++u)
    for (vid_t v : d.out_neighbors(u)) {
      edges.emplace_back(u, v);
      edges.emplace_back(v, u);
    }
  return graph::Csr::from_edges(d.num_vertices(), edges);
}

}  // namespace

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  const auto g = symmetrize(bench::make_pokec(scale, /*weighted=*/false));
  bench::trace_run_begin();
  bench::print_header("Fig 7: multi-query serving (64-lane batches)", g,
                      scale);
  bench::JsonEmitter json("Fig 7", "BFS-serving", g, scale);

  // 64 seeded sources, spread over the degree range like fig5b's pick.
  Rng rng(0x5e4e);
  apps::SourceBatch batch;
  batch.count = apps::kMaxQueryLanes;
  for (int l = 0; l < batch.count; ++l)
    batch.source[static_cast<std::size_t>(l)] =
        static_cast<vid_t>(rng.below(g.num_vertices()));

  const auto setup = bench::cpu_setup(core::ExecMode::kLocking);
  const int iters = 1000;

  // ---- 1. shared scan vs 64 sequential runs -------------------------------
  // Push pinned on both sides: the scan-sharing argument is a push-direction
  // guarantee (an active vertex's out-edges are scanned once per *distinct*
  // arrival level instead of once per reaching query). Under pull the
  // 64-lane batch keeps any vertex with an unreached lane a candidate for
  // the batch's whole — longer — superstep span, which can scan MORE edges
  // than the sequential runs; direction choice is an orthogonal axis
  // (fig 5b), not part of the sharing claim.
  const auto push_setup =
      bench::with_direction(setup, core::DirectionMode::kForcePush);
  metrics::RunTrace seq_trace;
  double seq_exec = 0;
  std::uint64_t seq_scans = 0;
  for (int l = 0; l < batch.count; ++l) {
    const auto r = bench::run_device(
        g, apps::Bfs(batch.source[static_cast<std::size_t>(l)]), push_setup,
        iters);
    seq_exec += r.modeled.execution();
    const auto t = metrics::totals(r.trace);
    seq_scans += t.edges_scanned + t.pull_edges_scanned;
    seq_trace.insert(seq_trace.end(), r.trace.begin(), r.trace.end());
  }

  const auto batched =
      bench::run_device(g, apps::MsBfs(batch), push_setup, iters);
  const auto bt = metrics::totals(batched.trace);
  const std::uint64_t batched_scans = bt.edges_scanned + bt.pull_edges_scanned;

  bench::print_row("64x sequential", seq_exec);
  bench::print_row("1x 64-lane", batched.modeled.execution());
  json.add_version("sequential-64q", seq_exec, 0, seq_trace);
  json.add_version("batched-64q", batched.modeled.execution(), 0,
                   batched.trace, batched.phases);

  const double reduction =
      batched_scans > 0 ? static_cast<double>(seq_scans) /
                              static_cast<double>(batched_scans)
                        : 0.0;
  bench::print_ratio("edge scans, sequential over 64-lane batch", reduction,
                     ">= 8x acceptance floor");
  std::printf("   -> scan reduction %s the 8x floor (%llu -> %llu edges)\n",
              reduction >= 8.0 ? "clears" : "MISSES",
              static_cast<unsigned long long>(seq_scans),
              static_cast<unsigned long long>(batched_scans));

  // ---- 2. throughput / latency through the admission queue ----------------
  core::EngineConfig serve_cfg = setup.engine;
  serve_cfg.serve_batch_max = apps::kMaxQueryLanes;
  serve_cfg.serve_batch_wait_ms = 2;
  serve_cfg.serve_queue_capacity = 256;
  const int jobs = 256;
  double wall_s = 0;
  core::ServingStats stats;
  {
    core::QueryEngine qe(g, serve_cfg);
    std::vector<std::shared_ptr<core::QueryTicket>> tickets;
    tickets.reserve(static_cast<std::size_t>(jobs));
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < jobs; ++i)
      tickets.push_back(qe.submit(
          {core::QueryKind::kBfs,
           batch.source[static_cast<std::size_t>(i % batch.count)]}));
    for (const auto& t : tickets) (void)t->get();
    wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           begin)
                 .count();
    qe.shutdown();
    stats = qe.stats();
  }

  bench::ServingSummary summary;
  summary.jobs = stats.jobs;
  summary.batches = stats.batches;
  summary.lanes = stats.lanes;
  summary.jobs_per_sec = wall_s > 0 ? static_cast<double>(jobs) / wall_s : 0;
  summary.edge_scans_sequential = seq_scans;
  summary.edge_scans_batched = batched_scans;
  summary.scan_reduction = reduction;
  summary.p50_latency_ms =
      static_cast<double>(stats.latency_us.quantile_bound(0.5)) / 1000.0;
  summary.p99_latency_ms =
      static_cast<double>(stats.latency_us.quantile_bound(0.99)) / 1000.0;
  summary.max_queue_depth = stats.max_queue_depth;
  json.set_serving(summary);

  std::printf("   -> served %d jobs in %llu batches: %.0f jobs/s, "
              "p50 %.2f ms, p99 %.2f ms, max queue depth %llu\n",
              jobs, static_cast<unsigned long long>(stats.batches),
              summary.jobs_per_sec, summary.p50_latency_ms,
              summary.p99_latency_ms,
              static_cast<unsigned long long>(summary.max_queue_depth));
  bench::print_footer();
  bench::trace_run_end("Fig 7");
  return 0;
}
