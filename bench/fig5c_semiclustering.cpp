// Fig. 5(c): Semi-Clustering on the DBLP-like community graph. Fat message
// type -> scalar CSB path; pipelining still wins on MIC via reduced
// contention.
#include "bench/common/fig5.hpp"
#include "src/apps/semiclustering.hpp"

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  const auto g = bench::make_dblp(scale);
  bench::fig5_run("Fig 5(c)", "SemiClustering", g, apps::SemiClustering{},
                  scale.sc_iters, partition::Ratio{2, 1},
                  /*mic_uses_pipe=*/true,
                  {.mic_pipe_vs_lock = "1.25x",
                   .mic_best_vs_omp = "1.17x (Pipe vs OMP)",
                   .hetero_vs_best = "1.29x over CPU Lock at ratio 2:1"},
                  // Cluster-list merge and extension scoring are heavyweight
                  // branchy scalar code (the paper: "more complex conditional
                  // instructions involved, which CPU is better at").
                  bench::AppCost{.combine_weight = 20,
                                 .update_weight = 25,
                                 .branchy = true});
  return 0;
}
