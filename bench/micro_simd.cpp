// Ablation: throughput of the portable SIMD vector types at each width and
// backend (generic loop vs SSE vs AVX2 vs AVX-512), on the reduction kernel
// the runtime actually executes (a vertical min/add sweep over a message
// column block, paper Listing 1's process_messages loop).
#include <benchmark/benchmark.h>

#include "src/common/aligned.hpp"
#include "src/common/rng.hpp"
#include "src/simd/simd.hpp"

namespace {

using namespace phigraph;

template <typename T, int W>
void bm_vertical_min(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  aligned_vector<T> data(rows * W);
  Rng rng(7);
  for (auto& x : data) x = static_cast<T>(rng.below(1000));

  using V = simd::Vec<T, W>;
  const auto* vecs = reinterpret_cast<const V*>(data.data());
  for (auto _ : state) {
    V res = vecs[0];
    for (std::size_t i = 1; i < rows; ++i) res = min(res, vecs[i]);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows) * W);
  state.SetLabel(simd::backend_name(simd::backend_of<T, W>()));
}

template <typename T, int W>
void bm_vertical_add(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  aligned_vector<T> data(rows * W);
  Rng rng(9);
  for (auto& x : data) x = static_cast<T>(rng.below(100));

  using V = simd::Vec<T, W>;
  const auto* vecs = reinterpret_cast<const V*>(data.data());
  for (auto _ : state) {
    V res = V::zero();
    for (std::size_t i = 0; i < rows; ++i) res = res + vecs[i];
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows) * W);
  state.SetLabel(simd::backend_name(simd::backend_of<T, W>()));
}

// Scalar baseline for the same element count as the 16-wide block.
template <typename T>
void bm_scalar_min_baseline(benchmark::State& state) {
  const std::size_t elems = static_cast<std::size_t>(state.range(0)) * 16;
  aligned_vector<T> data(elems);
  Rng rng(7);
  for (auto& x : data) x = static_cast<T>(rng.below(1000));
  for (auto _ : state) {
    T res = data[0];
    for (std::size_t i = 1; i < elems; ++i) res = res < data[i] ? res : data[i];
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(elems));
}

}  // namespace

// "CPU profile" width (SSE, 4 floats) vs "MIC profile" width (AVX-512, 16).
BENCHMARK(bm_vertical_min<float, 4>)->Arg(1024);
BENCHMARK(bm_vertical_min<float, 8>)->Arg(1024);
BENCHMARK(bm_vertical_min<float, 16>)->Arg(1024);
BENCHMARK(bm_vertical_min<std::int32_t, 4>)->Arg(1024);
BENCHMARK(bm_vertical_min<std::int32_t, 16>)->Arg(1024);
BENCHMARK(bm_vertical_min<double, 8>)->Arg(1024);
BENCHMARK(bm_vertical_add<float, 4>)->Arg(1024);
BENCHMARK(bm_vertical_add<float, 16>)->Arg(1024);
// Generic (non-intrinsic) instantiations for comparison.
BENCHMARK(bm_vertical_min<float, 2>)->Arg(1024);
BENCHMARK(bm_scalar_min_baseline<float>)->Arg(1024);

BENCHMARK_MAIN();
