// Fig. 6: impact of the graph partitioning method on CPU-MIC execution.
//
// Each application runs heterogeneously under continuous, round-robin, and
// hybrid partitioning at its best ratio from Fig. 5; execution time (slower
// device) and communication time are reported separately, plus the paper's
// headline speedups of hybrid over the other two and the cross-edge ratio
// (round-robin cut 2.27x more edges than hybrid for PageRank).
//
// A k-way extension compares all five schemes — the paper's trio plus the
// streaming vertex-cut partitioners HDRF and DBH (DESIGN.md §14) — at four
// ranks on the power-law graph: replication factor, load imbalance, static
// cross edges, and the cross-rank bytes a real 4-rank BFS actually ships
// under each owner map. The HDRF-vs-round-robin pair is emitted in the
// schema-gated "partition" bench-JSON object.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/common/harness.hpp"
#include "src/apps/bfs.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/semiclustering.hpp"
#include "src/apps/sssp.hpp"
#include "src/apps/toposort.hpp"
#include "src/graph/edge_stream.hpp"
#include "src/partition/stream_partition.hpp"

namespace {

using namespace phigraph;
using core::ExecMode;

struct SchemeResult {
  double exec = 0;
  double comm = 0;
  eid_t cross_edges = 0;
};

template <core::VertexProgram Program>
void run_app(const char* app, const graph::Csr& g, const Program& prog,
             int iters, partition::Ratio ratio, bool mic_pipe,
             const bench::AppCost& cost, const char* paper_band,
             bench::JsonEmitter* json, bool emit_uncombined = false) {
  const auto cpu = with_cost(bench::cpu_setup(ExecMode::kLocking), cost);
  const auto mic = with_cost(
      bench::mic_setup(mic_pipe ? ExecMode::kPipelining : ExecMode::kLocking),
      cost);

  const auto bp = partition::blocked_min_cut(g, {.num_blocks = 256, .seed = 42});
  SchemeResult res[3];
  const char* names[3] = {"Continuous", "Round-robin", "Hybrid"};
  for (int i = 0; i < 3; ++i) {
    std::vector<Device> owner =
        i == 0   ? partition::continuous_partition(g, ratio)
        : i == 1 ? partition::round_robin_partition(g, ratio)
                 : partition::hybrid_partition(bp, ratio);
    res[i].cross_edges =
        partition::evaluate_partition(g, owner).cross_edges;
    const auto run = bench::run_hetero(g, prog, std::move(owner), cpu, mic, iters);
    res[i].exec = run.modeled.execution_seconds;
    res[i].comm = run.modeled.comm_seconds;
    if (json) {
      json->add_version(std::string(app) + "/" + names[i], res[i].exec,
                        res[i].comm, run.cpu_trace, run.cpu_phases);
      if (i == 2 && emit_uncombined) {
        // The combiner lever: same hybrid partition, sender-side combining
        // off. Workload counters stay identical; only the wire bytes grow.
        auto cpu_raw = cpu;
        auto mic_raw = mic;
        cpu_raw.engine.combine_remote = mic_raw.engine.combine_remote = false;
        std::vector<Device> owner2 = partition::hybrid_partition(bp, ratio);
        const auto raw = bench::run_hetero(g, prog, std::move(owner2), cpu_raw,
                                           mic_raw, iters);
        json->add_version(std::string(app) + "/Hybrid-uncombined",
                          raw.modeled.execution_seconds,
                          raw.modeled.comm_seconds, raw.cpu_trace,
                          raw.cpu_phases);
        json->set_ranks({run.cpu_io, run.mic_io});
        json->set_failover(run.failover);
      }
    }
  }

  std::printf("\n-- %s (ratio %d:%d) --\n", app, ratio.cpu, ratio.mic);
  std::printf("   %-12s %10s %10s %12s\n", "scheme", "exec (s)", "comm (s)",
              "cross edges");
  for (int i = 0; i < 3; ++i)
    std::printf("   %-12s %10.4f %10.4f %12llu\n", names[i], res[i].exec,
                res[i].comm,
                static_cast<unsigned long long>(res[i].cross_edges));
  const auto total = [&](int i) { return res[i].exec + res[i].comm; };
  std::printf("   -> hybrid speedup: %.2fx vs continuous, %.2fx vs "
              "round-robin; RR/hybrid cross edges %.2fx\n",
              total(0) / total(2), total(1) / total(2),
              static_cast<double>(res[1].cross_edges) /
                  static_cast<double>(res[2].cross_edges));
  std::printf("   paper: %s\n", paper_band);
}

// ---- k-way streaming vertex-cut comparison (DESIGN.md §14) -----------------

struct KwayRow {
  const char* name;
  partition::KwayStats stats;
  double rf = 0;            // replication factor (native VertexCut for hdrf/dbh)
  double imbalance = 0;     // load imbalance (native VertexCut for hdrf/dbh)
  std::uint64_t bytes = 0;  // cross-rank bytes of a real 4-rank BFS
};

/// Runs BFS on a 4-rank ClusterEngine under the given owner map and returns
/// the total cross-rank exchange bytes (sum of every rank's bytes_to).
std::uint64_t measure_cluster_bytes(const graph::Csr& g, std::vector<int> owner,
                                    int nranks) {
  std::vector<core::EngineConfig> cfgs(static_cast<std::size_t>(nranks));
  for (auto& c : cfgs) {
    c.mode = ExecMode::kLocking;
    c.threads = 2;
    c.max_supersteps = 1000;
  }
  core::ClusterEngine<apps::Bfs> ce(g, std::move(owner),
                                    apps::Bfs{g.num_vertices() / 16}, cfgs);
  const auto res = ce.run();
  std::uint64_t bytes = 0;
  for (const auto& r : res.ranks)
    for (std::uint64_t b : r.io.bytes_to) bytes += b;
  return bytes;
}

void run_kway_comparison(const graph::Csr& g, bench::JsonEmitter* json) {
  constexpr int k = 4;
  const partition::RankWeights w(static_cast<std::size_t>(k), 1);

  std::vector<KwayRow> rows;
  const auto add = [&](const char* name, std::vector<int> owner, double rf,
                       double imbalance) {
    KwayRow row{name, partition::evaluate_partition_k(g, owner, k)};
    row.rf = rf > 0 ? rf : row.stats.replication_factor;
    row.imbalance = imbalance > 0 ? imbalance : row.stats.load_imbalance;
    row.bytes = measure_cluster_bytes(g, std::move(owner), k);
    rows.push_back(std::move(row));
  };
  add("continuous", partition::continuous_partition_k(g, w), 0, 0);
  add("round-robin", partition::round_robin_partition_k(g, w), 0, 0);
  add("hybrid",
      partition::hybrid_partition_k(g, w, {.num_blocks = 256, .seed = 42}), 0,
      0);
  graph::CsrEdgeStream hdrf_stream(g);
  const auto hdrf_cut = partition::Hdrf::partition(hdrf_stream, w);
  add("hdrf", hdrf_cut.master, hdrf_cut.replication_factor(),
      hdrf_cut.load_imbalance());
  graph::CsrEdgeStream dbh_stream(g);
  const auto dbh_cut = partition::Dbh::partition(dbh_stream, w);
  add("dbh", dbh_cut.master, dbh_cut.replication_factor(),
      dbh_cut.load_imbalance());

  std::printf("\n-- k-way vertex-cut comparison (BFS, %d ranks) --\n", k);
  std::printf("   %-12s %8s %10s %12s %14s\n", "scheme", "repl", "imbalance",
              "cross edges", "cut bytes");
  for (const auto& r : rows)
    std::printf("   %-12s %8.3f %10.3f %12llu %14llu\n", r.name, r.rf,
                r.imbalance,
                static_cast<unsigned long long>(r.stats.cross_edges),
                static_cast<unsigned long long>(r.bytes));
  const auto& rr = rows[1];
  const auto& hdrf = rows[3];
  std::printf("   -> hdrf vs round-robin: %.2fx replication, %.2fx cut "
              "bytes\n",
              hdrf.rf / rr.rf,
              static_cast<double>(hdrf.bytes) /
                  static_cast<double>(rr.bytes ? rr.bytes : 1));

  if (json)
    json->set_partition({.ranks = k,
                         .replication_factor = hdrf.rf,
                         .load_imbalance = hdrf.imbalance,
                         .cut_bytes = hdrf.bytes,
                         .round_robin_replication_factor = rr.rf,
                         .round_robin_cut_bytes = rr.bytes});
}

}  // namespace

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  std::printf("== Fig 6: Impact of Graph Partitioning Methods (scale: %s) ==\n",
              scale.name.c_str());

  // One JSON file for the whole figure; versions are named "<App>/<Scheme>".
  // The header graph is the pokec stand-in (the figure's headline dataset).
  std::unique_ptr<bench::JsonEmitter> json;
  {
    const auto g = bench::make_pokec(scale, false);
    json = std::make_unique<bench::JsonEmitter>("Fig 6", "partitioning", g,
                                                scale);
    run_app("PageRank", g, apps::PageRank{}, scale.pagerank_iters, {3, 5},
            true, {}, "1.72x / 1.13x; RR cut 2.27x hybrid's", json.get(),
            /*emit_uncombined=*/true);
    run_app("BFS", g, apps::Bfs{g.num_vertices() / 16}, 1000, {4, 3}, false,
            {}, "1.31x / 1.09x", json.get());
    run_kway_comparison(g, json.get());
  }
  {
    const auto g = bench::make_pokec(scale, true);
    run_app("SSSP", g, apps::Sssp{g.num_vertices() / 16}, 1000, {1, 1}, true,
            {}, "1.50x / 1.10x", json.get());
  }
  {
    const auto g = bench::make_dblp(scale);
    run_app("SemiClustering", g, apps::SemiClustering{}, scale.sc_iters,
            {2, 1}, true,
            bench::AppCost{.combine_weight = 20, .update_weight = 25,
                           .branchy = true},
            "1.17x / 1.36x", json.get());
  }
  {
    const auto g = bench::make_dag(scale);
    run_app("TopoSort", g, apps::TopoSort{}, 10000, {1, 4}, true, {},
            "continuous much slower; RR ~= hybrid (no id locality in a "
            "random DAG)", json.get());
  }
  json.reset();
  std::printf("\n");
  return 0;
}
