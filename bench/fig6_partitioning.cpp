// Fig. 6: impact of the graph partitioning method on CPU-MIC execution.
//
// Each application runs heterogeneously under continuous, round-robin, and
// hybrid partitioning at its best ratio from Fig. 5; execution time (slower
// device) and communication time are reported separately, plus the paper's
// headline speedups of hybrid over the other two and the cross-edge ratio
// (round-robin cut 2.27x more edges than hybrid for PageRank).
#include <cstdio>
#include <string>

#include "bench/common/harness.hpp"
#include "src/apps/bfs.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/semiclustering.hpp"
#include "src/apps/sssp.hpp"
#include "src/apps/toposort.hpp"

namespace {

using namespace phigraph;
using core::ExecMode;

struct SchemeResult {
  double exec = 0;
  double comm = 0;
  eid_t cross_edges = 0;
};

template <core::VertexProgram Program>
void run_app(const char* app, const graph::Csr& g, const Program& prog,
             int iters, partition::Ratio ratio, bool mic_pipe,
             const bench::AppCost& cost, const char* paper_band) {
  const auto cpu = with_cost(bench::cpu_setup(ExecMode::kLocking), cost);
  const auto mic = with_cost(
      bench::mic_setup(mic_pipe ? ExecMode::kPipelining : ExecMode::kLocking),
      cost);

  const auto bp = partition::blocked_min_cut(g, {.num_blocks = 256, .seed = 42});
  SchemeResult res[3];
  const char* names[3] = {"Continuous", "Round-robin", "Hybrid"};
  for (int i = 0; i < 3; ++i) {
    std::vector<Device> owner =
        i == 0   ? partition::continuous_partition(g, ratio)
        : i == 1 ? partition::round_robin_partition(g, ratio)
                 : partition::hybrid_partition(bp, ratio);
    res[i].cross_edges =
        partition::evaluate_partition(g, owner).cross_edges;
    const auto run = bench::run_hetero(g, prog, std::move(owner), cpu, mic, iters);
    res[i].exec = run.modeled.execution_seconds;
    res[i].comm = run.modeled.comm_seconds;
  }

  std::printf("\n-- %s (ratio %d:%d) --\n", app, ratio.cpu, ratio.mic);
  std::printf("   %-12s %10s %10s %12s\n", "scheme", "exec (s)", "comm (s)",
              "cross edges");
  for (int i = 0; i < 3; ++i)
    std::printf("   %-12s %10.4f %10.4f %12llu\n", names[i], res[i].exec,
                res[i].comm,
                static_cast<unsigned long long>(res[i].cross_edges));
  const auto total = [&](int i) { return res[i].exec + res[i].comm; };
  std::printf("   -> hybrid speedup: %.2fx vs continuous, %.2fx vs "
              "round-robin; RR/hybrid cross edges %.2fx\n",
              total(0) / total(2), total(1) / total(2),
              static_cast<double>(res[1].cross_edges) /
                  static_cast<double>(res[2].cross_edges));
  std::printf("   paper: %s\n", paper_band);
}

}  // namespace

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  std::printf("== Fig 6: Impact of Graph Partitioning Methods (scale: %s) ==\n",
              scale.name.c_str());

  {
    const auto g = bench::make_pokec(scale, false);
    run_app("PageRank", g, apps::PageRank{}, scale.pagerank_iters, {3, 5},
            true, {}, "1.72x / 1.13x; RR cut 2.27x hybrid's");
    run_app("BFS", g, apps::Bfs{g.num_vertices() / 16}, 1000, {4, 3}, false,
            {}, "1.31x / 1.09x");
  }
  {
    const auto g = bench::make_pokec(scale, true);
    run_app("SSSP", g, apps::Sssp{g.num_vertices() / 16}, 1000, {1, 1}, true,
            {}, "1.50x / 1.10x");
  }
  {
    const auto g = bench::make_dblp(scale);
    run_app("SemiClustering", g, apps::SemiClustering{}, scale.sc_iters,
            {2, 1}, true,
            bench::AppCost{.combine_weight = 20, .update_weight = 25,
                           .branchy = true},
            "1.17x / 1.36x");
  }
  {
    const auto g = bench::make_dag(scale);
    run_app("TopoSort", g, apps::TopoSort{}, 10000, {1, 4}, true, {},
            "continuous much slower; RR ~= hybrid (no id locality in a "
            "random DAG)");
  }
  std::printf("\n");
  return 0;
}
