// Fig. 5(b): BFS on the Pokec-like graph. The paper's outlier: few messages
// per superstep, so locking beats pipelining even on the MIC.
#include "bench/common/fig5.hpp"
#include "src/apps/bfs.hpp"

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  const auto g = bench::make_pokec(scale, /*weighted=*/false);
  // Source a mid-degree vertex: traversals from a front hub blast most of
  // the graph in one superstep; a tail vertex barely traverses. Use a mean-degree
  // vertex (degrees are front-loaded, so ~n/16).
  bench::fig5_run("Fig 5(b)", "BFS", g, apps::Bfs{g.num_vertices() / 16},
                  /*iters=*/1000,
                  partition::Ratio{4, 3},
                  /*mic_uses_pipe=*/false,  // paper uses locking for BFS
                  {.mic_pipe_vs_lock = "0.84x (locking 1.19x faster)",
                   .mic_best_vs_omp = "1.54x (Lock vs OMP)",
                   .hetero_vs_best = "1.32x at ratio 4:3"});
  return 0;
}
