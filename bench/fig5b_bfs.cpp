// Fig. 5(b): BFS on the Pokec-like graph. The paper's outlier: few messages
// per superstep, so locking beats pipelining even on the MIC.
//
// Extra rows (beyond the paper): direction-optimizing traversal. The same
// BFS is run forced-push (the paper's scheme), forced-pull, and auto
// (alpha/beta hybrid) on the CPU Lock config; the table reports modeled
// times and the measured host wall-clock speedup of the hybrid over push.
#include <cstdio>

#include "bench/common/fig5.hpp"
#include "src/apps/bfs.hpp"

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  const auto g = bench::make_pokec(scale, /*weighted=*/false);
  // Source a mid-degree vertex: traversals from a front hub blast most of
  // the graph in one superstep; a tail vertex barely traverses. Use a mean-degree
  // vertex (degrees are front-loaded, so ~n/16).
  const apps::Bfs prog{g.num_vertices() / 16};
  const int iters = 1000;

  auto direction_rows = [&](bench::JsonEmitter& json) {
    using core::DirectionMode;
    auto lock = [&](DirectionMode d) {
      return bench::with_direction(
          bench::cpu_setup(core::ExecMode::kLocking), d);
    };
    // Best-of-3 host wall clock per direction: a scheduler hiccup on a
    // shared CI host must not masquerade as a direction-speedup regression.
    auto best_of = [&](DirectionMode d) {
      auto best = bench::run_device(g, prog, lock(d), iters);
      for (int rep = 1; rep < 3; ++rep) {
        auto r = bench::run_device(g, prog, lock(d), iters);
        if (r.host_seconds < best.host_seconds) best = std::move(r);
      }
      return best;
    };
    const auto push = best_of(DirectionMode::kForcePush);
    const auto pull = best_of(DirectionMode::kForcePull);
    const auto autod = best_of(DirectionMode::kAuto);
    bench::print_row("CPU Lock push", push.modeled.execution());
    bench::print_row("CPU Lock pull", pull.modeled.execution());
    bench::print_row("CPU Lock auto", autod.modeled.execution());
    json.add_version("CPU Lock push", push.modeled.execution(), 0, push.trace,
                     push.phases);
    json.add_version("CPU Lock pull", pull.modeled.execution(), 0, pull.trace,
                     pull.phases);
    json.add_version("CPU Lock auto", autod.modeled.execution(), 0,
                     autod.trace, autod.phases);
    bench::print_ratio("direction hybrid over push (modeled)",
                       push.modeled.execution() / autod.modeled.execution(),
                       "Beamer-style hybrid, not in the paper");
    bench::print_ratio("direction hybrid over push (host wall)",
                       push.host_seconds / autod.host_seconds,
                       "measured on this host");
  };

  bench::fig5_run("Fig 5(b)", "BFS", g, prog,
                  iters,
                  partition::Ratio{4, 3},
                  /*mic_uses_pipe=*/false,  // paper uses locking for BFS
                  {.mic_pipe_vs_lock = "0.84x (locking 1.19x faster)",
                   .mic_best_vs_omp = "1.54x (Lock vs OMP)",
                   .hetero_vs_best = "1.32x at ratio 4:3"},
                  /*cost=*/{}, direction_rows);
  return 0;
}
