// Fig. 5(e): Topological sorting on the dense random DAG — the paper's
// extreme contention case ("a large number of messages are sent to a single
// vertex"), where pipelining shines and OpenMP locking collapses.
#include "bench/common/fig5.hpp"
#include "src/apps/toposort.hpp"

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  const auto g = bench::make_dag(scale);
  bench::fig5_run("Fig 5(e)", "TopoSort", g, apps::TopoSort{}, /*iters=*/10000,
                  partition::Ratio{1, 4},
                  /*mic_uses_pipe=*/true,
                  {.mic_pipe_vs_lock = "3.36x",
                   .mic_best_vs_omp = "4.15x (Pipe vs OMP)",
                   .hetero_vs_best = "1.20x over MIC at ratio 1:4"});
  return 0;
}
