// Ablation: SPSC queue and pipeline throughput — the per-message cost of the
// worker/mover handoff that the pipelining scheme pays to avoid per-message
// locking.
#include <benchmark/benchmark.h>

#include <thread>

#include "src/pipeline/message_pipeline.hpp"
#include "src/pipeline/spsc_queue.hpp"

namespace {

using namespace phigraph;
using pipeline::Envelope;
using pipeline::MessagePipeline;
using pipeline::SpscQueue;

void bm_spsc_single_thread(benchmark::State& state) {
  SpscQueue<Envelope<float>> q(static_cast<std::size_t>(state.range(0)));
  const Envelope<float> env{42, 1.0f};
  for (auto _ : state) {
    // Fill half, drain half: steady-state ring behaviour without wrap stalls.
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(q.try_push(env));
    Envelope<float> out{};
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(q.try_pop(out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}

void bm_spsc_two_threads(benchmark::State& state) {
  SpscQueue<Envelope<float>> q(1024);
  constexpr std::int64_t kBatch = 1 << 16;
  for (auto _ : state) {
    std::thread consumer([&] {
      Envelope<float> out{};
      std::int64_t got = 0;
      while (got < kBatch)
        if (q.try_pop(out)) ++got;
    });
    const Envelope<float> env{7, 2.0f};
    for (std::int64_t i = 0; i < kBatch; ++i)
      while (!q.try_push(env)) std::this_thread::yield();
    consumer.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatch);
}

void bm_pipeline_routing(benchmark::State& state) {
  const int movers = static_cast<int>(state.range(0));
  MessagePipeline<float> pipe(1, movers, 4096);
  constexpr std::int64_t kBatch = 1 << 15;
  for (auto _ : state) {
    pipe.reset();
    std::vector<std::thread> mover_threads;
    for (int m = 0; m < movers; ++m)
      mover_threads.emplace_back([&pipe, m] {
        const auto moved = pipe.mover_loop(m, [](const Envelope<float>&) {});
        benchmark::DoNotOptimize(moved);
      });
    for (std::int64_t i = 0; i < kBatch; ++i)
      pipe.push(0, static_cast<vid_t>(i), 1.0f);
    pipe.worker_done();
    for (auto& t : mover_threads) t.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatch);
}

}  // namespace

BENCHMARK(bm_spsc_single_thread)->Arg(256)->Arg(4096);
BENCHMARK(bm_spsc_two_threads)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_pipeline_routing)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
