// Ablation: Condensed Static Buffer design choices.
//  * insertion cost: locking vs single-owner (mover) path
//  * column mapping: one-to-one vs dynamic allocation (lane efficiency)
//  * k sweep: vector arrays per vertex group (memory/pad trade-off)
//  * memory footprint vs a worst-case (max-degree-uniform) buffer
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "src/buffer/csb.hpp"
#include "src/common/rng.hpp"
#include "src/gen/generators.hpp"

namespace {

using namespace phigraph;
using buffer::ColumnMode;
using buffer::Csb;
using buffer::InsertStats;

struct Workload {
  std::vector<vid_t> in_degrees;
  std::vector<std::pair<vid_t, float>> messages;  // one per in-edge
};

Workload make_workload() {
  const auto g = gen::pokec_like(20'000, 300'000, 21);
  Workload w;
  w.in_degrees = g.in_degrees();
  w.messages.reserve(g.num_edges());
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u))
      w.messages.emplace_back(v, static_cast<float>(u));
  return w;
}

const Workload& workload() {
  static const Workload w = make_workload();
  return w;
}

void bm_insert_locking(benchmark::State& state) {
  const auto& w = workload();
  Csb<float> csb(w.in_degrees,
                 {static_cast<int>(state.range(0)), 2, ColumnMode::kDynamic});
  for (auto _ : state) {
    csb.reset_all();
    InsertStats st;
    for (const auto& [dst, val] : w.messages) csb.insert(dst, val, st);
    benchmark::DoNotOptimize(st.inserted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.messages.size()));
}

void bm_insert_owned(benchmark::State& state) {
  const auto& w = workload();
  Csb<float> csb(w.in_degrees,
                 {static_cast<int>(state.range(0)), 2, ColumnMode::kDynamic});
  for (auto _ : state) {
    csb.reset_all();
    InsertStats st;
    for (const auto& [dst, val] : w.messages) csb.insert_owned(dst, val, st);
    benchmark::DoNotOptimize(st.inserted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.messages.size()));
}

/// Lane efficiency: fraction of processed cells that held real messages.
void bm_lane_efficiency(benchmark::State& state) {
  const auto& w = workload();
  const auto mode = state.range(0) == 0 ? ColumnMode::kOneToOne
                                        : ColumnMode::kDynamic;
  Csb<float> csb(w.in_degrees, {16, 2, mode});
  std::uint64_t cells = 0, padded = 0;
  for (auto _ : state) {
    csb.reset_all();
    InsertStats st;
    // Sparse superstep: every 7th message (BFS-like activity).
    for (std::size_t i = 0; i < w.messages.size(); i += 7)
      csb.insert(w.messages[i].first, w.messages[i].second, st);
    cells = padded = 0;
    for (std::size_t g = 0; g < csb.num_groups(); ++g)
      for (int a = 0; a < csb.k(); ++a) {
        const auto rows = csb.array_rows(g, a);
        if (rows == 0) continue;
        padded += csb.pad_array(g, a, rows, 1e30f);
        cells += static_cast<std::uint64_t>(rows) * 16;
      }
    benchmark::DoNotOptimize(cells);
  }
  state.SetLabel(mode == ColumnMode::kOneToOne ? "one-to-one" : "dynamic");
  state.counters["lane_fill"] =
      cells == 0 ? 0.0
                 : static_cast<double>(cells - padded) /
                       static_cast<double>(cells);
}

/// Condensed footprint vs a max-degree-uniform buffer, over k.
void bm_memory_footprint(benchmark::State& state) {
  const auto& w = workload();
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Csb<float> csb(w.in_degrees, {16, k, ColumnMode::kDynamic});
    benchmark::DoNotOptimize(csb.storage_slots());
  }
  Csb<float> csb(w.in_degrees, {16, k, ColumnMode::kDynamic});
  vid_t max_deg = 0;
  for (vid_t d : w.in_degrees) max_deg = std::max(max_deg, d);
  const double worst = static_cast<double>(max_deg + 1) *
                       static_cast<double>(w.in_degrees.size());
  state.counters["slots"] = static_cast<double>(csb.storage_slots());
  state.counters["vs_worst_case"] =
      static_cast<double>(csb.storage_slots()) / worst;
}

}  // namespace

BENCHMARK(bm_insert_locking)->Arg(4)->Arg(16);   // lanes
BENCHMARK(bm_insert_owned)->Arg(4)->Arg(16);
BENCHMARK(bm_lane_efficiency)->Arg(0)->Arg(1);   // one-to-one vs dynamic
BENCHMARK(bm_memory_footprint)->Arg(1)->Arg(2)->Arg(4)->Arg(8);  // k sweep

BENCHMARK_MAIN();
