// Table II: parallel efficiency obtained from the framework.
//
// Per application: modeled sequential times on each device (clean C/C++
// loops, one core), the framework's CPU multi-core and MIC many-core
// executions, and the best CPU-MIC run; speedups match the paper's rows
// (CPU multicore 3.6–7.6x over CPU seq; MIC manycore 32–129x over MIC seq;
// CPU-MIC 6.7–15.3x over CPU seq; MIC seq ~11x slower than CPU seq).
#include <algorithm>
#include <cstdio>

#include "bench/common/harness.hpp"
#include "src/apps/bfs.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/semiclustering.hpp"
#include "src/apps/sssp.hpp"
#include "src/apps/toposort.hpp"

namespace {

using namespace phigraph;
using core::ExecMode;

template <core::VertexProgram Program>
void run_app(const char* app, const graph::Csr& g, const Program& prog,
             int iters, partition::Ratio ratio, bool mic_pipe,
             const bench::AppCost& cost, const char* paper_row) {
  const auto cpu_lock = with_cost(bench::cpu_setup(ExecMode::kLocking), cost);
  const auto mic_lock = with_cost(bench::mic_setup(ExecMode::kLocking), cost);
  const auto mic_pipe_s =
      with_cost(bench::mic_setup(ExecMode::kPipelining), cost);

  const auto cpu_run = bench::run_device(g, prog, cpu_lock, iters);
  const auto mic_run_lock = bench::run_device(g, prog, mic_lock, iters);
  const auto mic_run_pipe = bench::run_device(g, prog, mic_pipe_s, iters);

  // Sequential baselines share the locking run's structural counters.
  auto seq_prof = [&](bench::DeviceSetup s) {
    s.profile.threads = 1;
    s.profile.msg_bytes = sizeof(typename Program::message_t);
    s.profile.value_bytes = sizeof(typename Program::vertex_value_t);
    s.profile.num_vertices = g.num_vertices();
    return s.profile;
  };
  const double cpu_seq =
      sim::model_sequential(cpu_run.trace, cpu_lock.spec, seq_prof(cpu_lock));
  const double mic_seq = sim::model_sequential(mic_run_lock.trace,
                                               mic_lock.spec, seq_prof(mic_lock));

  const double cpu_multi = cpu_run.modeled.execution();
  const double mic_many = std::min(mic_run_lock.modeled.execution(),
                                   mic_run_pipe.modeled.execution());

  const auto owner = partition::hybrid_partition(
      g, ratio, {.num_blocks = 256, .seed = 42});
  const auto hetero = bench::run_hetero(
      g, prog, owner, cpu_lock,
      mic_pipe ? mic_pipe_s : mic_lock, iters);
  const double hetero_total = hetero.modeled.total();

  std::printf("\n-- %s --\n", app);
  std::printf("   CPU Seq          %9.3f s\n", cpu_seq);
  std::printf("   MIC Seq          %9.3f s   (%.1fx CPU Seq; paper ~8-16x)\n",
              mic_seq, mic_seq / cpu_seq);
  std::printf("   CPU Multi-core   %9.3f s   (%.1fx over CPU Seq)\n",
              cpu_multi, cpu_seq / cpu_multi);
  std::printf("   MIC Many-core    %9.3f s   (%.1fx over MIC Seq)\n", mic_many,
              mic_seq / mic_many);
  std::printf("   CPU-MIC Best     %9.3f s   (%.1fx over CPU Seq)\n",
              hetero_total, cpu_seq / hetero_total);
  std::printf("   paper row: %s\n", paper_row);
}

}  // namespace

int main() {
  using namespace phigraph;
  const auto scale = bench::get_scale();
  std::printf(
      "== Table II: Parallel Efficiency Obtained from the Framework "
      "(scale: %s) ==\n",
      scale.name.c_str());

  {
    const auto g = bench::make_pokec(scale, false);
    run_app("PageRank", g, apps::PageRank{}, scale.pagerank_iters, {3, 5},
            true,
            {}, "CPU 18.01s/5.01s (3.6x), MIC 181s/2.92s (62x), CPU-MIC 2.25s (8x)");
    run_app("BFS", g, apps::Bfs{g.num_vertices() / 16}, 1000, {4, 3}, false,
            {}, "CPU 1.46s/0.29s (5x), MIC 12.19s/0.38s (32x), CPU-MIC 0.22s (6.7x)");
  }
  {
    const auto g = bench::make_pokec(scale, true);
    run_app("SSSP", g, apps::Sssp{g.num_vertices() / 16}, 1000, {1, 1}, true,
            {}, "CPU 2.62s/0.52s (5x), MIC 24.07s/0.49s (49x), CPU-MIC 0.34s (7.7x)");
  }
  {
    const auto g = bench::make_dblp(scale);
    run_app("SemiClustering", g, apps::SemiClustering{}, scale.sc_iters,
            {2, 1}, true,
            bench::AppCost{.combine_weight = 20, .update_weight = 25,
                           .branchy = true},
            "CPU 8.29s/1.09s (7.6x), MIC 134s/2.56s (52x), CPU-MIC 0.81s (10.2x)");
  }
  {
    const auto g = bench::make_dag(scale);
    run_app("TopoSort", g, apps::TopoSort{}, 10000, {1, 4}, true, {},
            "CPU 8.42s/2.20s (3.8x), MIC 85.2s/0.66s (129x), CPU-MIC 0.55s (15.3x)");
  }
  std::printf("\n");
  return 0;
}
