// Compressed Sparse Row graph storage (paper §II-B, Fig. 1).
//
// Directed graph: offsets_ has num_vertices()+1 entries (the paper calls the
// last one the "dummy vertex, offset = num_edges"); targets_ lists out-edge
// destinations. Optional per-edge float values (SSSP weights, SC interaction
// frequencies) ride alongside in edge_values_.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "src/common/expect.hpp"
#include "src/common/types.hpp"

namespace phigraph::graph {

class Csr {
 public:
  Csr() = default;

  /// target_space: the id space edge targets live in. 0 (default) means
  /// targets are vertices of this graph; a device-local partition passes the
  /// GLOBAL vertex count because its edge targets stay global ids.
  Csr(std::vector<eid_t> offsets, std::vector<vid_t> targets,
      std::vector<float> edge_values = {}, vid_t target_space = 0);

  /// Build from an (unsorted) edge list; edges are counting-sorted by source.
  /// Parallel edges and self-loops are kept unless dedup is requested.
  static Csr from_edges(vid_t num_vertices,
                        std::span<const std::pair<vid_t, vid_t>> edges,
                        bool dedup = false);

  [[nodiscard]] vid_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<vid_t>(offsets_.size() - 1);
  }
  [[nodiscard]] eid_t num_edges() const noexcept {
    return offsets_.empty() ? 0 : offsets_.back();
  }
  [[nodiscard]] bool has_edge_values() const noexcept {
    return !edge_values_.empty();
  }

  [[nodiscard]] eid_t out_degree(vid_t u) const noexcept {
    PG_DCHECK(u < num_vertices());
    return offsets_[u + 1] - offsets_[u];
  }

  [[nodiscard]] std::span<const vid_t> out_neighbors(vid_t u) const noexcept {
    PG_DCHECK(u < num_vertices());
    return {targets_.data() + offsets_[u],
            static_cast<std::size_t>(out_degree(u))};
  }

  [[nodiscard]] std::span<const float> out_edge_values(vid_t u) const noexcept {
    PG_DCHECK(u < num_vertices() && has_edge_values());
    return {edge_values_.data() + offsets_[u],
            static_cast<std::size_t>(out_degree(u))};
  }

  // Raw arrays — the paper's user functions index g->vertices[] / g->edges[]
  // / g->edge_value[] directly, so we expose them.
  [[nodiscard]] const std::vector<eid_t>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<vid_t>& targets() const noexcept {
    return targets_;
  }
  [[nodiscard]] const std::vector<float>& edge_values() const noexcept {
    return edge_values_;
  }

  void set_edge_values(std::vector<float> values);

  /// In-degree of every vertex (one counting pass over targets_).
  [[nodiscard]] std::vector<vid_t> in_degrees() const;

  /// Transposed graph; edge values (if any) follow their edge.
  [[nodiscard]] Csr reversed() const;

  /// Structural checks: monotone offsets, targets in range, matching
  /// edge-value length. Aborts via PG_CHECK on violation.
  void validate() const;

  [[nodiscard]] bool operator==(const Csr& o) const noexcept = default;

 private:
  std::vector<eid_t> offsets_;
  std::vector<vid_t> targets_;
  std::vector<float> edge_values_;
  vid_t target_space_ = 0;  // 0 = targets are local vertices
};

/// Summary statistics used by generators' tests and the partitioner.
struct DegreeStats {
  eid_t min_out = 0;
  eid_t max_out = 0;
  double mean_out = 0;
  vid_t zero_in = 0;   // vertices with in-degree 0
  vid_t zero_out = 0;  // vertices with out-degree 0
};

[[nodiscard]] DegreeStats degree_stats(const Csr& g);

}  // namespace phigraph::graph
