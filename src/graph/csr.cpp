#include "src/graph/csr.hpp"

#include <algorithm>
#include <numeric>

namespace phigraph::graph {

Csr::Csr(std::vector<eid_t> offsets, std::vector<vid_t> targets,
         std::vector<float> edge_values, vid_t target_space)
    : offsets_(std::move(offsets)),
      targets_(std::move(targets)),
      edge_values_(std::move(edge_values)),
      target_space_(target_space) {
  validate();
}

Csr Csr::from_edges(vid_t num_vertices,
                    std::span<const std::pair<vid_t, vid_t>> edges,
                    bool dedup) {
  std::vector<eid_t> offsets(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& [u, v] : edges) {
    PG_CHECK_MSG(u < num_vertices && v < num_vertices,
                 "edge endpoint out of range");
    ++offsets[u + 1];
  }
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());

  std::vector<vid_t> targets(edges.size());
  std::vector<eid_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) targets[cursor[u]++] = v;

  if (dedup) {
    std::vector<vid_t> out;
    out.reserve(targets.size());
    std::vector<eid_t> new_offsets(offsets.size(), 0);
    for (vid_t u = 0; u < num_vertices; ++u) {
      auto first = targets.begin() + static_cast<std::ptrdiff_t>(offsets[u]);
      auto last = targets.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]);
      std::sort(first, last);
      auto uniq_end = std::unique(first, last);
      out.insert(out.end(), first, uniq_end);
      new_offsets[u + 1] = out.size();
    }
    return Csr(std::move(new_offsets), std::move(out));
  }
  return Csr(std::move(offsets), std::move(targets));
}

void Csr::set_edge_values(std::vector<float> values) {
  PG_CHECK_MSG(values.size() == targets_.size(),
               "edge value count must equal edge count");
  edge_values_ = std::move(values);
}

std::vector<vid_t> Csr::in_degrees() const {
  PG_CHECK_MSG(target_space_ == 0,
               "in_degrees() requires targets in the local vertex space");
  std::vector<vid_t> deg(num_vertices(), 0);
  for (vid_t t : targets_) ++deg[t];
  return deg;
}

Csr Csr::reversed() const {
  PG_CHECK_MSG(target_space_ == 0,
               "reversed() requires targets in the local vertex space");
  const vid_t n = num_vertices();
  std::vector<eid_t> roffsets(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t t : targets_) ++roffsets[t + 1];
  std::partial_sum(roffsets.begin(), roffsets.end(), roffsets.begin());

  std::vector<vid_t> rtargets(targets_.size());
  std::vector<float> rvalues(edge_values_.size());
  std::vector<eid_t> cursor(roffsets.begin(), roffsets.end() - 1);
  for (vid_t u = 0; u < n; ++u) {
    for (eid_t e = offsets_[u]; e < offsets_[u + 1]; ++e) {
      const vid_t v = targets_[e];
      const eid_t slot = cursor[v]++;
      rtargets[slot] = u;
      if (!edge_values_.empty()) rvalues[slot] = edge_values_[e];
    }
  }
  return Csr(std::move(roffsets), std::move(rtargets), std::move(rvalues));
}

void Csr::validate() const {
  PG_CHECK_MSG(!offsets_.empty(), "CSR must have an offsets array");
  PG_CHECK_MSG(offsets_.front() == 0, "CSR offsets must start at 0");
  PG_CHECK_MSG(std::is_sorted(offsets_.begin(), offsets_.end()),
               "CSR offsets must be non-decreasing");
  PG_CHECK_MSG(offsets_.back() == targets_.size(),
               "last CSR offset must equal the edge count");
  const vid_t bound = target_space_ == 0 ? num_vertices() : target_space_;
  for (vid_t t : targets_)
    PG_CHECK_MSG(t < bound, "CSR edge target out of range");
  PG_CHECK_MSG(edge_values_.empty() || edge_values_.size() == targets_.size(),
               "edge values, when present, must cover every edge");
}

DegreeStats degree_stats(const Csr& g) {
  DegreeStats s;
  const vid_t n = g.num_vertices();
  if (n == 0) return s;
  s.min_out = g.out_degree(0);
  auto in = g.in_degrees();
  for (vid_t u = 0; u < n; ++u) {
    const eid_t d = g.out_degree(u);
    s.min_out = std::min(s.min_out, d);
    s.max_out = std::max(s.max_out, d);
    if (d == 0) ++s.zero_out;
    if (in[u] == 0) ++s.zero_in;
  }
  s.mean_out = static_cast<double>(g.num_edges()) / static_cast<double>(n);
  return s;
}

}  // namespace phigraph::graph
