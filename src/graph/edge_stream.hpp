// Streaming edge readers for single-pass partitioning (DESIGN.md §14).
//
// An EdgeStream hands out the edge list in bounded chunks so a consumer
// (the HDRF/DBH streaming partitioners, an out-of-core loader) never needs
// the whole list resident. Three sources:
//   * MemoryEdgeStream — a span already in RAM (tests, generators);
//   * CsrEdgeStream    — re-streams an in-memory CSR in (source, slot) order;
//   * MmapEdgeStream   — a binary edge file ("PGE1"), mapped and advised for
//     sequential access, copied out one chunk at a time.
// All three deliver the identical edge sequence for the same graph, and the
// chunk size never changes *what* is streamed — only the batch granularity —
// so chunked and one-shot consumers agree bit-for-bit.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/graph/csr.hpp"

namespace phigraph::graph {

/// One streamed edge record. Fixed 8-byte wire layout: the PGE1 file body is
/// a raw array of these, so a chunk is one copy out of the mapping.
struct StreamEdge {
  vid_t u = 0;
  vid_t v = 0;

  [[nodiscard]] bool operator==(const StreamEdge&) const noexcept = default;
};
static_assert(sizeof(StreamEdge) == 8, "PGE1 records are 8 bytes on disk");

class EdgeStream {
 public:
  EdgeStream() = default;
  EdgeStream(const EdgeStream&) = delete;
  EdgeStream& operator=(const EdgeStream&) = delete;
  virtual ~EdgeStream() = default;

  [[nodiscard]] virtual vid_t num_vertices() const noexcept = 0;
  [[nodiscard]] virtual eid_t num_edges() const noexcept = 0;

  /// Next batch of at most chunk_edges() records; empty once exhausted.
  /// The span stays valid until the next next_chunk()/reset() call.
  [[nodiscard]] virtual std::span<const StreamEdge> next_chunk() = 0;

  /// Rewind to the first edge (DBH needs two passes: degrees, then assign).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::size_t chunk_edges() const noexcept = 0;
};

/// Stream over an edge list already in memory.
class MemoryEdgeStream final : public EdgeStream {
 public:
  MemoryEdgeStream(vid_t num_vertices, std::span<const StreamEdge> edges,
                   std::size_t chunk_edges = 65536);

  [[nodiscard]] vid_t num_vertices() const noexcept override { return n_; }
  [[nodiscard]] eid_t num_edges() const noexcept override {
    return static_cast<eid_t>(edges_.size());
  }
  [[nodiscard]] std::span<const StreamEdge> next_chunk() override;
  void reset() override { pos_ = 0; }
  [[nodiscard]] std::size_t chunk_edges() const noexcept override {
    return chunk_;
  }

 private:
  vid_t n_;
  std::span<const StreamEdge> edges_;
  std::size_t chunk_;
  std::size_t pos_ = 0;
};

/// Re-stream an in-memory CSR in (source ascending, slot ascending) order —
/// the order from_edges() stores, and the order save_edge_binary() writes.
class CsrEdgeStream final : public EdgeStream {
 public:
  explicit CsrEdgeStream(const Csr& g, std::size_t chunk_edges = 65536);

  [[nodiscard]] vid_t num_vertices() const noexcept override {
    return g_->num_vertices();
  }
  [[nodiscard]] eid_t num_edges() const noexcept override {
    return g_->num_edges();
  }
  [[nodiscard]] std::span<const StreamEdge> next_chunk() override;
  void reset() override {
    next_u_ = 0;
    next_slot_ = 0;
  }
  [[nodiscard]] std::size_t chunk_edges() const noexcept override {
    return buf_.capacity();
  }

 private:
  const Csr* g_;
  std::vector<StreamEdge> buf_;
  vid_t next_u_ = 0;
  eid_t next_slot_ = 0;  // absolute edge index of the next record
};

/// Binary edge file, memory-mapped and streamed in chunk-sized batches.
///
/// PGE1 layout (little-endian): u32 magic "PGE1", u64 num_vertices,
/// u64 num_edges, then num_edges raw StreamEdge records. The file size must
/// match the header exactly — a torn/truncated file is rejected up front
/// rather than silently yielding a short stream.
class MmapEdgeStream final : public EdgeStream {
 public:
  explicit MmapEdgeStream(const std::string& path,
                          std::size_t chunk_edges = 65536);
  ~MmapEdgeStream() override;

  [[nodiscard]] vid_t num_vertices() const noexcept override { return n_; }
  [[nodiscard]] eid_t num_edges() const noexcept override { return m_; }
  [[nodiscard]] std::span<const StreamEdge> next_chunk() override;
  void reset() override { pos_ = 0; }
  [[nodiscard]] std::size_t chunk_edges() const noexcept override {
    return buf_.capacity();
  }

 private:
  vid_t n_ = 0;
  eid_t m_ = 0;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  const unsigned char* records_ = nullptr;  // first StreamEdge in the mapping
  std::vector<StreamEdge> buf_;
  eid_t pos_ = 0;
};

/// Write a PGE1 binary edge file (MmapEdgeStream's input format).
void save_edge_binary(vid_t num_vertices, std::span<const StreamEdge> edges,
                      const std::string& path);
void save_edge_binary(const Csr& g, const std::string& path);

}  // namespace phigraph::graph
