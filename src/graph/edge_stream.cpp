#include "src/graph/edge_stream.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>

#include "src/common/expect.hpp"

namespace phigraph::graph {

namespace {

constexpr std::uint32_t kEdgeMagic = 0x50474531;  // "PGE1"
constexpr std::size_t kHeaderBytes =
    sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);

std::size_t checked_chunk(std::size_t chunk_edges) {
  PG_CHECK_MSG(chunk_edges > 0, "edge stream chunk size must be positive");
  return chunk_edges;
}

}  // namespace

// ---- MemoryEdgeStream --------------------------------------------------------

MemoryEdgeStream::MemoryEdgeStream(vid_t num_vertices,
                                   std::span<const StreamEdge> edges,
                                   std::size_t chunk_edges)
    : n_(num_vertices), edges_(edges), chunk_(checked_chunk(chunk_edges)) {
  for (const StreamEdge& e : edges_)
    PG_CHECK_FMT(e.u < n_ && e.v < n_,
                 "edge (%u, %u) out of range (graph has %u vertices)", e.u,
                 e.v, n_);
}

std::span<const StreamEdge> MemoryEdgeStream::next_chunk() {
  const std::size_t take = std::min(chunk_, edges_.size() - pos_);
  auto out = edges_.subspan(pos_, take);
  pos_ += take;
  return out;
}

// ---- CsrEdgeStream -----------------------------------------------------------

CsrEdgeStream::CsrEdgeStream(const Csr& g, std::size_t chunk_edges) : g_(&g) {
  buf_.reserve(checked_chunk(chunk_edges));
}

std::span<const StreamEdge> CsrEdgeStream::next_chunk() {
  buf_.clear();
  const vid_t n = g_->num_vertices();
  while (next_u_ < n && buf_.size() < buf_.capacity()) {
    const auto nbrs = g_->out_neighbors(next_u_);
    while (next_slot_ < g_->offsets()[next_u_ + 1] &&
           buf_.size() < buf_.capacity()) {
      const eid_t local = next_slot_ - g_->offsets()[next_u_];
      buf_.push_back({next_u_, nbrs[static_cast<std::size_t>(local)]});
      ++next_slot_;
    }
    if (next_slot_ == g_->offsets()[next_u_ + 1]) ++next_u_;
  }
  return {buf_.data(), buf_.size()};
}

// ---- MmapEdgeStream ----------------------------------------------------------

MmapEdgeStream::MmapEdgeStream(const std::string& path,
                               std::size_t chunk_edges) {
  buf_.reserve(checked_chunk(chunk_edges));

  const int fd = ::open(path.c_str(), O_RDONLY);
  PG_CHECK_FMT(fd >= 0, "failed to open edge file '%s': %s", path.c_str(),
               std::strerror(errno));
  struct stat st {};
  PG_CHECK_MSG(::fstat(fd, &st) == 0, "fstat on edge file failed");
  map_bytes_ = static_cast<std::size_t>(st.st_size);
  PG_CHECK_FMT(map_bytes_ >= kHeaderBytes,
               "edge file '%s' too small for a PGE1 header", path.c_str());

  map_ = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  PG_CHECK_FMT(map_ != MAP_FAILED, "mmap of edge file '%s' failed: %s",
               path.c_str(), std::strerror(errno));
  ::madvise(map_, map_bytes_, MADV_SEQUENTIAL);

  const auto* p = static_cast<const unsigned char*>(map_);
  std::uint32_t magic = 0;
  std::uint64_t n64 = 0, m64 = 0;
  std::memcpy(&magic, p, sizeof magic);
  std::memcpy(&n64, p + sizeof magic, sizeof n64);
  std::memcpy(&m64, p + sizeof magic + sizeof n64, sizeof m64);
  PG_CHECK_FMT(magic == kEdgeMagic, "edge file '%s' has bad magic 0x%08x",
               path.c_str(), magic);
  PG_CHECK_FMT(n64 <= std::numeric_limits<vid_t>::max(),
               "edge file '%s' vertex count does not fit vid_t", path.c_str());
  const std::size_t want =
      kHeaderBytes + static_cast<std::size_t>(m64) * sizeof(StreamEdge);
  PG_CHECK_FMT(map_bytes_ == want,
               "edge file '%s' truncated or padded: %zu bytes, header "
               "declares %zu",
               path.c_str(), map_bytes_, want);

  n_ = static_cast<vid_t>(n64);
  m_ = static_cast<eid_t>(m64);
  records_ = p + kHeaderBytes;
}

MmapEdgeStream::~MmapEdgeStream() {
  if (map_ != nullptr && map_ != MAP_FAILED) ::munmap(map_, map_bytes_);
}

std::span<const StreamEdge> MmapEdgeStream::next_chunk() {
  const std::size_t take = static_cast<std::size_t>(
      std::min<eid_t>(static_cast<eid_t>(buf_.capacity()), m_ - pos_));
  buf_.resize(take);
  // Copy out of the mapping instead of aliasing it: keeps the records
  // naturally aligned for the consumer regardless of header size.
  std::memcpy(buf_.data(), records_ + pos_ * sizeof(StreamEdge),
              take * sizeof(StreamEdge));
  pos_ += take;
  return {buf_.data(), buf_.size()};
}

// ---- PGE1 writer -------------------------------------------------------------

namespace {

void write_header(std::ofstream& out, vid_t n, std::uint64_t m) {
  const std::uint32_t magic = kEdgeMagic;
  const std::uint64_t n64 = n;
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&n64), sizeof n64);
  out.write(reinterpret_cast<const char*>(&m), sizeof m);
}

}  // namespace

void save_edge_binary(vid_t num_vertices, std::span<const StreamEdge> edges,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  PG_CHECK_FMT(out.good(), "failed to open edge file '%s' for writing",
               path.c_str());
  write_header(out, num_vertices, edges.size());
  for (const StreamEdge& e : edges)
    PG_CHECK_FMT(e.u < num_vertices && e.v < num_vertices,
                 "edge (%u, %u) out of range (graph has %u vertices)", e.u,
                 e.v, num_vertices);
  out.write(reinterpret_cast<const char*>(edges.data()),
            static_cast<std::streamsize>(edges.size() * sizeof(StreamEdge)));
  PG_CHECK_MSG(out.good(), "short write while saving edge file");
}

void save_edge_binary(const Csr& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  PG_CHECK_FMT(out.good(), "failed to open edge file '%s' for writing",
               path.c_str());
  write_header(out, g.num_vertices(), g.num_edges());
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u)) {
      const StreamEdge e{u, v};
      out.write(reinterpret_cast<const char*>(&e), sizeof e);
    }
  PG_CHECK_MSG(out.good(), "short write while saving edge file");
}

}  // namespace phigraph::graph
