// The 16-vertex example graph from the paper's Figure 1, used by tests to
// pin down CSB construction (Fig. 3) and the Table I message flow.
#pragma once

#include "src/graph/csr.hpp"

namespace phigraph::graph {

/// Exactly the CSR arrays printed in Fig. 1:
///   offsets: 0 2 5 8 8 11 12 13 14 15 19 20 22 24 26 27 28
///   edges:   4 5 0 2 5 3 5 7 5 8 9 2 2 2 0 4 5 6 8 11 6 9 8 13 9 12 10 7
inline Csr paper_example_graph() {
  return Csr(
      {0, 2, 5, 8, 8, 11, 12, 13, 14, 15, 19, 20, 22, 24, 26, 27, 28},
      {4, 5, 0, 2, 5, 3, 5, 7, 5, 8, 9, 2, 2, 2, 0, 4, 5, 6, 8, 11, 6, 9, 8,
       13, 9, 12, 10, 7});
}

}  // namespace phigraph::graph
