// Graph file IO — the "distributed graph loading API" substrate.
//
// Three formats:
//  * adjacency list text (the paper's input format): header "n m", then one
//    line per vertex: "<vertex id> <out degree> <t0> <t1> ..."; a weighted
//    variant interleaves "<target> <weight>" pairs.
//  * edge list text: one "u v [w]" per line (comments start with '#').
//  * binary: magic-tagged little-endian dump for fast reload of generated
//    inputs between bench runs.
#pragma once

#include <string>

#include "src/graph/csr.hpp"

namespace phigraph::graph {

/// Writes the adjacency-list text format. Includes weights if present.
void save_adjacency_list(const Csr& g, const std::string& path);

/// Reads the adjacency-list text format (auto-detects weights).
[[nodiscard]] Csr load_adjacency_list(const std::string& path);

/// Reads "u v [w]" lines; vertex count is 1 + max id unless given.
[[nodiscard]] Csr load_edge_list(const std::string& path,
                                 vid_t num_vertices = 0);

void save_edge_list(const Csr& g, const std::string& path);

void save_binary(const Csr& g, const std::string& path);
[[nodiscard]] Csr load_binary(const std::string& path);

}  // namespace phigraph::graph
