#include "src/graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "src/common/expect.hpp"

namespace phigraph::graph {

namespace {
constexpr std::uint32_t kBinaryMagic = 0x50474231;  // "PGB1"

std::ifstream open_in(const std::string& path, std::ios::openmode mode) {
  std::ifstream in(path, mode);
  PG_CHECK_MSG(in.good(), "failed to open input file");
  return in;
}

std::ofstream open_out(const std::string& path, std::ios::openmode mode) {
  std::ofstream out(path, mode);
  PG_CHECK_MSG(out.good(), "failed to open output file");
  return out;
}
}  // namespace

void save_adjacency_list(const Csr& g, const std::string& path) {
  auto out = open_out(path, std::ios::out);
  out << g.num_vertices() << ' ' << g.num_edges() << ' '
      << (g.has_edge_values() ? 1 : 0) << '\n';
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    out << u << ' ' << g.out_degree(u);
    const auto nbrs = g.out_neighbors(u);
    if (g.has_edge_values()) {
      const auto w = g.out_edge_values(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i)
        out << ' ' << nbrs[i] << ' ' << w[i];
    } else {
      for (vid_t v : nbrs) out << ' ' << v;
    }
    out << '\n';
  }
  PG_CHECK_MSG(out.good(), "write failure while saving adjacency list");
}

Csr load_adjacency_list(const std::string& path) {
  auto in = open_in(path, std::ios::in);
  vid_t n = 0;
  eid_t m = 0;
  int weighted = 0;
  in >> n >> m >> weighted;
  PG_CHECK_MSG(in.good(), "bad adjacency-list header");

  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<vid_t> targets;
  std::vector<float> weights;
  targets.reserve(m);
  if (weighted) weights.reserve(m);

  for (vid_t line = 0; line < n; ++line) {
    vid_t u = 0;
    eid_t deg = 0;
    in >> u >> deg;
    PG_CHECK_MSG(in.good() && u < n, "bad adjacency-list vertex line");
    PG_CHECK_MSG(u == line, "adjacency-list vertices must be in id order");
    offsets[u + 1] = offsets[u] + deg;
    for (eid_t i = 0; i < deg; ++i) {
      vid_t v = 0;
      in >> v;
      targets.push_back(v);
      if (weighted) {
        float w = 0;
        in >> w;
        weights.push_back(w);
      }
    }
  }
  PG_CHECK_MSG(targets.size() == m, "adjacency-list edge count mismatch");
  return Csr(std::move(offsets), std::move(targets), std::move(weights));
}

Csr load_edge_list(const std::string& path, vid_t num_vertices) {
  auto in = open_in(path, std::ios::in);
  std::vector<std::pair<vid_t, vid_t>> edges;
  std::vector<float> weights;
  bool weighted = false;
  vid_t max_id = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    vid_t u = 0, v = 0;
    ls >> u >> v;
    PG_CHECK_MSG(!ls.fail(), "bad edge-list line");
    float w = 0;
    if (ls >> w) {
      weighted = true;
      weights.push_back(w);
    } else if (weighted) {
      PG_CHECK_MSG(false, "mixed weighted/unweighted edge-list lines");
    }
    edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
  }
  const vid_t n =
      num_vertices != 0 ? num_vertices : (edges.empty() ? 0 : max_id + 1);

  // Rebuild weights in CSR order if needed: from_edges is a stable counting
  // sort by source, so replay the same placement for weights.
  Csr g = Csr::from_edges(n, edges);
  if (weighted) {
    std::vector<float> csr_weights(edges.size());
    std::vector<eid_t> cursor(g.offsets().begin(), g.offsets().end() - 1);
    for (std::size_t i = 0; i < edges.size(); ++i)
      csr_weights[cursor[edges[i].first]++] = weights[i];
    g.set_edge_values(std::move(csr_weights));
  }
  return g;
}

void save_edge_list(const Csr& g, const std::string& path) {
  auto out = open_out(path, std::ios::out);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.out_neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      out << u << ' ' << nbrs[i];
      if (g.has_edge_values()) out << ' ' << g.out_edge_values(u)[i];
      out << '\n';
    }
  }
  PG_CHECK_MSG(out.good(), "write failure while saving edge list");
}

void save_binary(const Csr& g, const std::string& path) {
  auto out = open_out(path, std::ios::out | std::ios::binary);
  auto put = [&out](const void* p, std::size_t bytes) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
  };
  const std::uint32_t magic = kBinaryMagic;
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  const std::uint32_t weighted = g.has_edge_values() ? 1 : 0;
  put(&magic, sizeof magic);
  put(&n, sizeof n);
  put(&m, sizeof m);
  put(&weighted, sizeof weighted);
  put(g.offsets().data(), g.offsets().size() * sizeof(eid_t));
  put(g.targets().data(), g.targets().size() * sizeof(vid_t));
  if (weighted) put(g.edge_values().data(), m * sizeof(float));
  PG_CHECK_MSG(out.good(), "write failure while saving binary graph");
}

Csr load_binary(const std::string& path) {
  auto in = open_in(path, std::ios::in | std::ios::binary);
  auto get = [&in](void* p, std::size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    PG_CHECK_MSG(in.good(), "truncated binary graph file");
  };
  std::uint32_t magic = 0;
  std::uint64_t n = 0, m = 0;
  std::uint32_t weighted = 0;
  get(&magic, sizeof magic);
  PG_CHECK_MSG(magic == kBinaryMagic, "not a PhiGraph binary graph file");
  get(&n, sizeof n);
  get(&m, sizeof m);
  get(&weighted, sizeof weighted);
  std::vector<eid_t> offsets(n + 1);
  std::vector<vid_t> targets(m);
  std::vector<float> weights(weighted ? m : 0);
  get(offsets.data(), offsets.size() * sizeof(eid_t));
  get(targets.data(), targets.size() * sizeof(vid_t));
  if (weighted) get(weights.data(), weights.size() * sizeof(float));
  return Csr(std::move(offsets), std::move(targets), std::move(weights));
}

}  // namespace phigraph::graph
