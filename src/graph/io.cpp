#include "src/graph/io.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>
#include <utility>
#include <vector>

#include "src/common/expect.hpp"

namespace phigraph::graph {

namespace {
constexpr std::uint32_t kBinaryMagic = 0x50474231;  // "PGB1"

std::ifstream open_in(const std::string& path, std::ios::openmode mode) {
  std::ifstream in(path, mode);
  PG_CHECK_MSG(in.good(), "failed to open input file");
  return in;
}

std::ofstream open_out(const std::string& path, std::ios::openmode mode) {
  std::ofstream out(path, mode);
  PG_CHECK_MSG(out.good(), "failed to open output file");
  return out;
}

// ---- strict text parsing ---------------------------------------------------
//
// The text loaders reject malformed input with a diagnostic naming the file,
// the 1-based line, and the offending token — `ls >> u` silently yielding 0
// for "abc" is how a typo becomes a self-loop on vertex 0. Every token must
// parse in full; vertex ids must fit vid_t and respect the declared vertex
// count; truncated files are called out as such rather than surfacing as a
// generic stream failure.

/// Whitespace-split tokens of one line.
std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream ls(line);
  for (std::string t; ls >> t;) toks.push_back(std::move(t));
  return toks;
}

/// Strict unsigned parse: the whole token must be a decimal integer.
std::uint64_t parse_u64(const std::string& tok, const std::string& path,
                        std::size_t line_no, const char* what) {
  std::uint64_t v = 0;
  const char* end = tok.data() + tok.size();
  auto [p, ec] = std::from_chars(tok.data(), end, v);
  PG_CHECK_FMT(ec == std::errc() && p == end,
               "%s:%zu: non-numeric %s token '%s'", path.c_str(), line_no,
               what, tok.c_str());
  return v;
}

/// Vertex-id parse with range checking: must fit vid_t, and stay below
/// `bound` when a vertex count is known (0 = unbounded).
vid_t parse_vertex(const std::string& tok, vid_t bound,
                   const std::string& path, std::size_t line_no,
                   const char* what) {
  const std::uint64_t v = parse_u64(tok, path, line_no, what);
  PG_CHECK_FMT(v <= std::numeric_limits<vid_t>::max(),
               "%s:%zu: %s id %llu does not fit a vertex id", path.c_str(),
               line_no, what, static_cast<unsigned long long>(v));
  PG_CHECK_FMT(bound == 0 || v < bound,
               "%s:%zu: %s id %llu out of range (graph has %llu vertices)",
               path.c_str(), line_no, what,
               static_cast<unsigned long long>(v),
               static_cast<unsigned long long>(bound));
  return static_cast<vid_t>(v);
}

/// Strict float parse for edge weights.
float parse_weight(const std::string& tok, const std::string& path,
                   std::size_t line_no) {
  float v = 0;
  const char* end = tok.data() + tok.size();
  auto [p, ec] = std::from_chars(tok.data(), end, v);
  PG_CHECK_FMT(ec == std::errc() && p == end,
               "%s:%zu: non-numeric weight token '%s'", path.c_str(), line_no,
               tok.c_str());
  return v;
}
}  // namespace

void save_adjacency_list(const Csr& g, const std::string& path) {
  auto out = open_out(path, std::ios::out);
  out << g.num_vertices() << ' ' << g.num_edges() << ' '
      << (g.has_edge_values() ? 1 : 0) << '\n';
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    out << u << ' ' << g.out_degree(u);
    const auto nbrs = g.out_neighbors(u);
    if (g.has_edge_values()) {
      const auto w = g.out_edge_values(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i)
        out << ' ' << nbrs[i] << ' ' << w[i];
    } else {
      for (vid_t v : nbrs) out << ' ' << v;
    }
    out << '\n';
  }
  PG_CHECK_MSG(out.good(), "write failure while saving adjacency list");
}

Csr load_adjacency_list(const std::string& path) {
  auto in = open_in(path, std::ios::in);
  std::size_t line_no = 0;
  std::string line;
  // Next non-blank, non-comment line as tokens; a missing line means the
  // file was cut short — say which line we ran out at and what was expected.
  auto next_line = [&](const char* expected) {
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      auto toks = split_tokens(line);
      if (!toks.empty()) return toks;
    }
    PG_CHECK_FMT(false, "%s: truncated after line %zu: expected %s",
                 path.c_str(), line_no, expected);
    return std::vector<std::string>{};  // unreachable
  };

  const auto header = next_line("the 'n m weighted' header");
  PG_CHECK_FMT(header.size() == 3,
               "%s:%zu: header must be 'n m weighted' (found %zu tokens)",
               path.c_str(), line_no, header.size());
  const vid_t n = parse_vertex(header[0], 0, path, line_no, "vertex-count");
  const eid_t m = parse_u64(header[1], path, line_no, "edge-count");
  const std::uint64_t weighted_flag =
      parse_u64(header[2], path, line_no, "weighted-flag");
  PG_CHECK_FMT(weighted_flag <= 1, "%s:%zu: weighted flag must be 0 or 1",
               path.c_str(), line_no);
  const bool weighted = weighted_flag == 1;

  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<vid_t> targets;
  std::vector<float> weights;
  targets.reserve(m);
  if (weighted) weights.reserve(m);

  for (vid_t expect = 0; expect < n; ++expect) {
    const auto toks = next_line("a vertex line");
    PG_CHECK_FMT(toks.size() >= 2,
                 "%s:%zu: vertex line must start with '<id> <degree>'",
                 path.c_str(), line_no);
    const vid_t u = parse_vertex(toks[0], n, path, line_no, "vertex");
    PG_CHECK_FMT(u == expect,
                 "%s:%zu: vertices must appear in id order (expected %llu, "
                 "found %llu)",
                 path.c_str(), line_no,
                 static_cast<unsigned long long>(expect),
                 static_cast<unsigned long long>(u));
    const eid_t deg = parse_u64(toks[1], path, line_no, "degree");
    PG_CHECK_FMT(deg <= m,
                 "%s:%zu: vertex %llu declares degree %llu but the graph has "
                 "only %llu edges",
                 path.c_str(), line_no, static_cast<unsigned long long>(u),
                 static_cast<unsigned long long>(deg),
                 static_cast<unsigned long long>(m));
    const std::size_t per_edge = weighted ? 2 : 1;
    PG_CHECK_FMT(toks.size() == 2 + static_cast<std::size_t>(deg) * per_edge,
                 "%s:%zu: vertex %llu declares degree %llu but the line "
                 "holds %zu edge tokens",
                 path.c_str(), line_no, static_cast<unsigned long long>(u),
                 static_cast<unsigned long long>(deg), toks.size() - 2);
    offsets[u + 1] = offsets[u] + deg;
    for (eid_t i = 0; i < deg; ++i) {
      const std::size_t base = 2 + static_cast<std::size_t>(i) * per_edge;
      targets.push_back(parse_vertex(toks[base], n, path, line_no, "target"));
      if (weighted)
        weights.push_back(parse_weight(toks[base + 1], path, line_no));
    }
  }
  PG_CHECK_FMT(targets.size() == m,
               "%s: edge count mismatch: header declares %llu edges but the "
               "vertex lines hold %zu",
               path.c_str(), static_cast<unsigned long long>(m),
               targets.size());
  return Csr(std::move(offsets), std::move(targets), std::move(weights));
}

Csr load_edge_list(const std::string& path, vid_t num_vertices) {
  auto in = open_in(path, std::ios::in);
  std::vector<std::pair<vid_t, vid_t>> edges;
  std::vector<float> weights;
  bool weighted = false;
  vid_t max_id = 0;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto toks = split_tokens(line);
    if (toks.empty()) continue;
    PG_CHECK_FMT(toks.size() == 2 || toks.size() == 3,
                 "%s:%zu: expected 'u v [w]' (found %zu tokens)",
                 path.c_str(), line_no, toks.size());
    const vid_t u =
        parse_vertex(toks[0], num_vertices, path, line_no, "source");
    const vid_t v =
        parse_vertex(toks[1], num_vertices, path, line_no, "target");
    if (toks.size() == 3) {
      PG_CHECK_FMT(weighted || edges.empty(),
                   "%s:%zu: weighted line in an unweighted edge list",
                   path.c_str(), line_no);
      weighted = true;
      weights.push_back(parse_weight(toks[2], path, line_no));
    } else {
      PG_CHECK_FMT(!weighted,
                   "%s:%zu: unweighted line in a weighted edge list",
                   path.c_str(), line_no);
    }
    edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
  }
  const vid_t n =
      num_vertices != 0 ? num_vertices : (edges.empty() ? 0 : max_id + 1);

  // Rebuild weights in CSR order if needed: from_edges is a stable counting
  // sort by source, so replay the same placement for weights.
  Csr g = Csr::from_edges(n, edges);
  if (weighted) {
    std::vector<float> csr_weights(edges.size());
    std::vector<eid_t> cursor(g.offsets().begin(), g.offsets().end() - 1);
    for (std::size_t i = 0; i < edges.size(); ++i)
      csr_weights[cursor[edges[i].first]++] = weights[i];
    g.set_edge_values(std::move(csr_weights));
  }
  return g;
}

void save_edge_list(const Csr& g, const std::string& path) {
  auto out = open_out(path, std::ios::out);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.out_neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      out << u << ' ' << nbrs[i];
      if (g.has_edge_values()) out << ' ' << g.out_edge_values(u)[i];
      out << '\n';
    }
  }
  PG_CHECK_MSG(out.good(), "write failure while saving edge list");
}

void save_binary(const Csr& g, const std::string& path) {
  auto out = open_out(path, std::ios::out | std::ios::binary);
  auto put = [&out](const void* p, std::size_t bytes) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
  };
  const std::uint32_t magic = kBinaryMagic;
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  const std::uint32_t weighted = g.has_edge_values() ? 1 : 0;
  put(&magic, sizeof magic);
  put(&n, sizeof n);
  put(&m, sizeof m);
  put(&weighted, sizeof weighted);
  put(g.offsets().data(), g.offsets().size() * sizeof(eid_t));
  put(g.targets().data(), g.targets().size() * sizeof(vid_t));
  if (weighted) put(g.edge_values().data(), m * sizeof(float));
  PG_CHECK_MSG(out.good(), "write failure while saving binary graph");
}

Csr load_binary(const std::string& path) {
  auto in = open_in(path, std::ios::in | std::ios::binary);
  auto get = [&in](void* p, std::size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    PG_CHECK_MSG(in.good(), "truncated binary graph file");
  };
  std::uint32_t magic = 0;
  std::uint64_t n = 0, m = 0;
  std::uint32_t weighted = 0;
  get(&magic, sizeof magic);
  PG_CHECK_MSG(magic == kBinaryMagic, "not a PhiGraph binary graph file");
  get(&n, sizeof n);
  get(&m, sizeof m);
  get(&weighted, sizeof weighted);
  std::vector<eid_t> offsets(n + 1);
  std::vector<vid_t> targets(m);
  std::vector<float> weights(weighted ? m : 0);
  get(offsets.data(), offsets.size() * sizeof(eid_t));
  get(targets.data(), targets.size() * sizeof(vid_t));
  if (weighted) get(weights.data(), weights.size() * sizeof(float));
  return Csr(std::move(offsets), std::move(targets), std::move(weights));
}

}  // namespace phigraph::graph
