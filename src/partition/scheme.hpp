// Partition scheme selection — a dependency-light header so EngineConfig can
// name a scheme without pulling in the graph/partitioner machinery.
//
// The static schemes (continuous / round-robin / hybrid) are the paper's
// Fig. 6 trio; kHdrf and kDbh are the streaming vertex-cut partitioners
// (DESIGN.md §14) that assign *edges* in a single pass and derive the
// vertex owner map from the resulting replica sets.
#pragma once

#include <cstddef>
#include <cstdint>

namespace phigraph::partition {

enum class Scheme : std::uint8_t {
  kContinuous = 0,
  kRoundRobin = 1,
  kHybrid = 2,
  kHdrf = 3,  // greedy streaming vertex-cut, replication-aware (λ balance knob)
  kDbh = 4,   // degree-based hashing: edge -> hash of its lower-degree endpoint
};

[[nodiscard]] constexpr const char* scheme_name(Scheme s) noexcept {
  switch (s) {
    case Scheme::kContinuous: return "continuous";
    case Scheme::kRoundRobin: return "round_robin";
    case Scheme::kHybrid: return "hybrid";
    case Scheme::kHdrf: return "hdrf";
    case Scheme::kDbh: return "dbh";
  }
  return "?";
}

/// Knobs for the streaming vertex-cut schemes. Ignored by the static trio.
struct StreamOptions {
  /// HDRF balance-term weight λ: 0 = pure replication greed, larger values
  /// trade replication factor for tighter edge balance.
  double lambda = 1.1;

  /// Hard per-rank load cap as a multiple of the rank's fair share:
  /// load[r] <= ceil(balance_slack * m * w[r] / Σw). Must be >= 1.
  double balance_slack = 1.1;

  /// Seed for the degree hash (DBH) and any tie-break salting.
  std::uint64_t seed = 1;

  /// Edges per streamed chunk (the mmap batch size). Assignments are
  /// chunk-size independent; this only sets I/O granularity.
  std::size_t chunk_edges = 65536;
};

}  // namespace phigraph::partition
