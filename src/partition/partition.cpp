#include "src/partition/partition.hpp"

#include <algorithm>
#include <bit>
#include <fstream>
#include <numeric>
#include <utility>

#include "src/common/expect.hpp"
#include "src/common/rng.hpp"

namespace phigraph::partition {

std::vector<Device> continuous_partition(const graph::Csr& g, Ratio r) {
  PG_CHECK(r.cpu >= 0 && r.mic >= 0 && r.cpu + r.mic > 0);
  const vid_t n = g.num_vertices();
  const vid_t split = static_cast<vid_t>(
      static_cast<std::uint64_t>(n) * r.cpu / (r.cpu + r.mic));
  std::vector<Device> owner(n);
  for (vid_t v = 0; v < n; ++v)
    owner[v] = v < split ? Device::Cpu : Device::Mic;
  return owner;
}

std::vector<Device> round_robin_partition(const graph::Csr& g, Ratio r) {
  PG_CHECK(r.cpu >= 0 && r.mic >= 0 && r.cpu + r.mic > 0);
  const vid_t n = g.num_vertices();
  const vid_t period = static_cast<vid_t>(r.cpu + r.mic);
  std::vector<Device> owner(n);
  for (vid_t v = 0; v < n; ++v)
    owner[v] = (v % period) < static_cast<vid_t>(r.cpu) ? Device::Cpu
                                                        : Device::Mic;
  return owner;
}

namespace {

/// Symmetric weighted graph used by the multilevel partitioner. Vertex
/// weights track how many original vertices a coarse vertex represents;
/// edge weights how many original (undirected) edges a coarse edge bundles.
struct WorkGraph {
  std::vector<eid_t> offsets;
  std::vector<vid_t> targets;
  std::vector<eid_t> eweights;
  std::vector<eid_t> vweights;

  [[nodiscard]] vid_t n() const noexcept {
    return static_cast<vid_t>(vweights.size());
  }
};

/// Build the symmetrized work graph from the input CSR (self-loops dropped,
/// parallel/bidirectional edges merged with accumulated weight).
WorkGraph symmetrize(const graph::Csr& g) {
  const vid_t n = g.num_vertices();
  std::vector<std::pair<vid_t, vid_t>> edges;
  edges.reserve(2 * g.num_edges());
  for (vid_t u = 0; u < n; ++u)
    for (vid_t v : g.out_neighbors(u))
      if (u != v) {
        edges.emplace_back(u, v);
        edges.emplace_back(v, u);
      }
  std::sort(edges.begin(), edges.end());

  WorkGraph wg;
  wg.vweights.assign(n, 1);
  wg.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  wg.targets.reserve(edges.size());
  wg.eweights.reserve(edges.size());
  std::size_t i = 0;
  for (vid_t u = 0; u < n; ++u) {
    while (i < edges.size() && edges[i].first == u) {
      const vid_t v = edges[i].second;
      eid_t w = 0;
      while (i < edges.size() && edges[i].first == u && edges[i].second == v) {
        ++w;
        ++i;
      }
      wg.targets.push_back(v);
      wg.eweights.push_back(w);
    }
    wg.offsets[u + 1] = wg.targets.size();
  }
  return wg;
}

/// Heavy-edge matching: visit vertices in random order, match each unmatched
/// vertex with its heaviest unmatched neighbor. Returns match[] (match[v] ==
/// v for unmatched) and the number of coarse vertices.
std::vector<vid_t> heavy_edge_matching(const WorkGraph& wg, Rng& rng,
                                       vid_t& coarse_n) {
  const vid_t n = wg.n();
  std::vector<vid_t> order(n);
  std::iota(order.begin(), order.end(), vid_t{0});
  for (vid_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);

  std::vector<vid_t> match(n, kInvalidVertex);
  coarse_n = 0;
  for (vid_t u : order) {
    if (match[u] != kInvalidVertex) continue;
    vid_t best = u;
    eid_t best_w = 0;
    for (eid_t e = wg.offsets[u]; e < wg.offsets[u + 1]; ++e) {
      const vid_t v = wg.targets[e];
      if (match[v] != kInvalidVertex || v == u) continue;
      if (wg.eweights[e] > best_w) {
        best_w = wg.eweights[e];
        best = v;
      }
    }
    match[u] = best;
    match[best] = u;
    ++coarse_n;
  }
  return match;
}

struct CoarseLevel {
  WorkGraph graph;
  std::vector<vid_t> coarse_of;  // fine vertex -> coarse vertex
};

CoarseLevel contract(const WorkGraph& wg, const std::vector<vid_t>& match,
                     vid_t coarse_n) {
  const vid_t n = wg.n();
  CoarseLevel lvl;
  lvl.coarse_of.assign(n, kInvalidVertex);
  vid_t next = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (lvl.coarse_of[v] != kInvalidVertex) continue;
    lvl.coarse_of[v] = next;
    const vid_t m = match[v];
    if (m != v) lvl.coarse_of[m] = next;
    ++next;
  }
  PG_CHECK(next == coarse_n);

  // Accumulate coarse edges via sort-merge of remapped endpoints.
  std::vector<std::pair<std::pair<vid_t, vid_t>, eid_t>> ce;
  ce.reserve(wg.targets.size());
  lvl.graph.vweights.assign(coarse_n, 0);
  for (vid_t u = 0; u < n; ++u) {
    lvl.graph.vweights[lvl.coarse_of[u]] += wg.vweights[u];
    for (eid_t e = wg.offsets[u]; e < wg.offsets[u + 1]; ++e) {
      const vid_t cu = lvl.coarse_of[u];
      const vid_t cv = lvl.coarse_of[wg.targets[e]];
      if (cu != cv) ce.push_back({{cu, cv}, wg.eweights[e]});
    }
  }
  std::sort(ce.begin(), ce.end());
  lvl.graph.offsets.assign(static_cast<std::size_t>(coarse_n) + 1, 0);
  std::size_t i = 0;
  for (vid_t u = 0; u < coarse_n; ++u) {
    while (i < ce.size() && ce[i].first.first == u) {
      const vid_t v = ce[i].first.second;
      eid_t w = 0;
      while (i < ce.size() && ce[i].first.first == u && ce[i].first.second == v) {
        w += ce[i].second;
        ++i;
      }
      lvl.graph.targets.push_back(v);
      lvl.graph.eweights.push_back(w);
    }
    lvl.graph.offsets[u + 1] = lvl.graph.targets.size();
  }
  return lvl;
}

/// Greedy BFS growing on the coarsest graph: grow blocks up to the average
/// vertex weight from random seeds; leftovers join their heaviest neighbor
/// block (or the lightest block if isolated).
std::vector<vid_t> initial_blocks(const WorkGraph& wg, int num_blocks, Rng& rng) {
  const vid_t n = wg.n();
  eid_t total_w = 0;
  for (auto w : wg.vweights) total_w += w;
  const double target = static_cast<double>(total_w) / num_blocks;

  std::vector<vid_t> block(n, kInvalidVertex);
  std::vector<eid_t> bw(static_cast<std::size_t>(num_blocks), 0);
  std::vector<vid_t> frontier;

  vid_t b = 0;
  vid_t scan = 0;
  std::vector<vid_t> order(n);
  std::iota(order.begin(), order.end(), vid_t{0});
  for (vid_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);

  while (b < static_cast<vid_t>(num_blocks) && scan < n) {
    // Seed a new block with the next unassigned vertex.
    while (scan < n && block[order[scan]] != kInvalidVertex) ++scan;
    if (scan >= n) break;
    frontier.clear();
    frontier.push_back(order[scan]);
    block[order[scan]] = b;
    bw[b] += wg.vweights[order[scan]];
    for (std::size_t f = 0; f < frontier.size() &&
                            static_cast<double>(bw[b]) < target;
         ++f) {
      const vid_t u = frontier[f];
      for (eid_t e = wg.offsets[u]; e < wg.offsets[u + 1]; ++e) {
        const vid_t v = wg.targets[e];
        if (block[v] != kInvalidVertex) continue;
        block[v] = b;
        bw[b] += wg.vweights[v];
        frontier.push_back(v);
        if (static_cast<double>(bw[b]) >= target) break;
      }
    }
    ++b;
  }

  // Assign any leftover vertex to its most-connected block, else lightest.
  for (vid_t v = 0; v < n; ++v) {
    if (block[v] != kInvalidVertex) continue;
    std::vector<eid_t> conn(static_cast<std::size_t>(num_blocks), 0);
    vid_t best = kInvalidVertex;
    eid_t best_w = 0;
    for (eid_t e = wg.offsets[v]; e < wg.offsets[v + 1]; ++e) {
      const vid_t u = wg.targets[e];
      if (block[u] == kInvalidVertex) continue;
      conn[block[u]] += wg.eweights[e];
      if (conn[block[u]] > best_w) {
        best_w = conn[block[u]];
        best = block[u];
      }
    }
    if (best == kInvalidVertex) {
      best = static_cast<vid_t>(
          std::min_element(bw.begin(), bw.end()) - bw.begin());
    }
    block[v] = best;
    bw[best] += wg.vweights[v];
  }
  return block;
}

/// One boundary-refinement sweep (greedy KL/FM flavor): move a vertex to the
/// neighboring block with the largest positive cut gain if the balance
/// tolerance allows. Returns the number of moves.
std::size_t refine_pass(const WorkGraph& wg, std::vector<vid_t>& block,
                        std::vector<eid_t>& bw, int num_blocks,
                        double max_bw) {
  const vid_t n = wg.n();
  std::size_t moves = 0;
  std::vector<eid_t> conn(static_cast<std::size_t>(num_blocks), 0);
  std::vector<vid_t> touched;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t mine = block[v];
    bool boundary = false;
    touched.clear();
    for (eid_t e = wg.offsets[v]; e < wg.offsets[v + 1]; ++e) {
      const vid_t b = block[wg.targets[e]];
      if (conn[b] == 0) touched.push_back(b);
      conn[b] += wg.eweights[e];
      if (b != mine) boundary = true;
    }
    if (boundary) {
      vid_t best = mine;
      eid_t best_conn = conn[mine];
      for (vid_t b : touched) {
        if (b == mine) continue;
        if (conn[b] > best_conn &&
            static_cast<double>(bw[b] + wg.vweights[v]) <= max_bw) {
          best_conn = conn[b];
          best = b;
        }
      }
      if (best != mine) {
        bw[mine] -= wg.vweights[v];
        bw[best] += wg.vweights[v];
        block[v] = best;
        ++moves;
      }
    }
    for (vid_t b : touched) conn[b] = 0;
  }
  return moves;
}

}  // namespace

BlockedPartition blocked_min_cut(const graph::Csr& g,
                                 const BlockedOptions& opt) {
  PG_CHECK(opt.num_blocks >= 1);
  const vid_t n = g.num_vertices();
  Rng rng(opt.seed);

  BlockedPartition bp;
  bp.num_blocks = opt.num_blocks;

  if (static_cast<int>(n) <= opt.num_blocks) {
    // Degenerate: one vertex per block.
    bp.block_of.resize(n);
    std::iota(bp.block_of.begin(), bp.block_of.end(), vid_t{0});
  } else {
    // ---- coarsening ----
    std::vector<CoarseLevel> levels;
    const WorkGraph finest = symmetrize(g);
    WorkGraph cur = finest;
    const vid_t coarse_target =
        std::max<vid_t>(static_cast<vid_t>(4 * opt.num_blocks), 64);
    while (cur.n() > coarse_target) {
      vid_t coarse_n = 0;
      const auto match = heavy_edge_matching(cur, rng, coarse_n);
      if (static_cast<double>(coarse_n) > 0.95 * static_cast<double>(cur.n()))
        break;  // matching stalled (e.g. star graphs)
      levels.push_back(contract(cur, match, coarse_n));
      cur = levels.back().graph;
    }

    // ---- initial partitioning on the coarsest graph ----
    std::vector<vid_t> block = initial_blocks(cur, opt.num_blocks, rng);

    // ---- uncoarsen with refinement ----
    auto refine = [&](const WorkGraph& wg, std::vector<vid_t>& blk) {
      eid_t total_w = 0;
      for (auto w : wg.vweights) total_w += w;
      std::vector<eid_t> bw(static_cast<std::size_t>(opt.num_blocks), 0);
      for (vid_t v = 0; v < wg.n(); ++v) bw[blk[v]] += wg.vweights[v];
      const double max_bw = (1.0 + opt.balance_tol) *
                            static_cast<double>(total_w) / opt.num_blocks;
      for (int p = 0; p < opt.refine_passes; ++p)
        if (refine_pass(wg, blk, bw, opt.num_blocks, max_bw) == 0) break;
    };

    refine(cur, block);
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      // Project to the finer level, then refine there.
      const auto& coarse_of = it->coarse_of;
      std::vector<vid_t> fine_block(coarse_of.size());
      for (std::size_t v = 0; v < coarse_of.size(); ++v)
        fine_block[v] = block[coarse_of[v]];
      block = std::move(fine_block);
      const WorkGraph& fine_graph =
          (it + 1 == levels.rend()) ? finest : (it + 1)->graph;
      refine(fine_graph, block);
    }
    bp.block_of = std::move(block);
  }

  // ---- statistics ----
  bp.block_edges.assign(static_cast<std::size_t>(bp.num_blocks), 0);
  bp.block_verts.assign(static_cast<std::size_t>(bp.num_blocks), 0);
  for (vid_t v = 0; v < n; ++v) {
    bp.block_edges[bp.block_of[v]] += g.out_degree(v);
    ++bp.block_verts[bp.block_of[v]];
  }
  for (vid_t u = 0; u < n; ++u)
    for (vid_t v : g.out_neighbors(u))
      if (bp.block_of[u] != bp.block_of[v]) ++bp.cut_edges;
  return bp;
}

std::vector<Device> hybrid_partition(const BlockedPartition& bp, Ratio r) {
  PG_CHECK(r.cpu >= 0 && r.mic >= 0 && r.cpu + r.mic > 0);
  // Deal blocks so cumulative edge counts track the requested ratio: assign
  // block b to whichever device is furthest below its target share.
  std::vector<Device> block_dev(static_cast<std::size_t>(bp.num_blocks));
  const double share_cpu = static_cast<double>(r.cpu) / (r.cpu + r.mic);
  const double share_mic = 1.0 - share_cpu;
  // Deal heaviest blocks first (LPT): keeps the cumulative ratio tight AND
  // spreads hub-heavy id regions over both devices, so a traversal frontier
  // sweeping an id range does not land entirely on one device.
  std::vector<int> order(static_cast<std::size_t>(bp.num_blocks));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b2) {
    return bp.block_edges[a] > bp.block_edges[b2];
  });
  double edges_cpu = 0, edges_mic = 0;
  for (int b : order) {
    const double w = static_cast<double>(bp.block_edges[b]) + 1e-9;
    // Weighted-load greedy: give the block to the device whose normalized
    // load (assigned edges / target share) is currently lower.
    const double load_cpu =
        share_cpu == 0 ? 1e300 : (edges_cpu + w) / share_cpu;
    const double load_mic =
        share_mic == 0 ? 1e300 : (edges_mic + w) / share_mic;
    if (load_cpu <= load_mic) {
      block_dev[b] = Device::Cpu;
      edges_cpu += w;
    } else {
      block_dev[b] = Device::Mic;
      edges_mic += w;
    }
  }
  std::vector<Device> owner(bp.block_of.size());
  for (std::size_t v = 0; v < owner.size(); ++v)
    owner[v] = block_dev[bp.block_of[v]];
  return owner;
}

std::vector<Device> hybrid_partition(const graph::Csr& g, Ratio r,
                                     const BlockedOptions& opt) {
  return hybrid_partition(blocked_min_cut(g, opt), r);
}

namespace {

int check_weights(const RankWeights& w) {
  PG_CHECK_MSG(!w.empty(), "k-way partition needs at least one rank weight");
  int sum = 0;
  for (int x : w) {
    PG_CHECK_MSG(x >= 0, "rank weights must be non-negative");
    sum += x;
  }
  PG_CHECK_MSG(sum > 0, "at least one rank weight must be positive");
  return sum;
}

}  // namespace

std::vector<int> continuous_partition_k(const graph::Csr& g,
                                        const RankWeights& w) {
  const int wsum = check_weights(w);
  const vid_t n = g.num_vertices();
  std::vector<int> owner(n);
  // Rank r owns the contiguous id range [n * prefix(r) / wsum, ...).
  vid_t begin = 0;
  int prefix = 0;
  for (std::size_t r = 0; r < w.size(); ++r) {
    prefix += w[r];
    const vid_t end = static_cast<vid_t>(static_cast<std::uint64_t>(n) *
                                         prefix / wsum);
    for (vid_t v = begin; v < end; ++v) owner[v] = static_cast<int>(r);
    begin = end;
  }
  return owner;
}

std::vector<int> round_robin_partition_k(const graph::Csr& g,
                                         const RankWeights& w) {
  const int wsum = check_weights(w);
  const vid_t n = g.num_vertices();
  // Position p in the period of length sum(w) belongs to the rank whose
  // weight segment covers p — the two-entry case is exactly
  // round_robin_partition.
  std::vector<int> slot(static_cast<std::size_t>(wsum));
  {
    std::size_t p = 0;
    for (std::size_t r = 0; r < w.size(); ++r)
      for (int i = 0; i < w[r]; ++i) slot[p++] = static_cast<int>(r);
  }
  std::vector<int> owner(n);
  for (vid_t v = 0; v < n; ++v)
    owner[v] = slot[v % static_cast<vid_t>(wsum)];
  return owner;
}

std::vector<int> hybrid_partition_k(const BlockedPartition& bp,
                                    const RankWeights& w) {
  const int wsum = check_weights(w);
  const std::size_t k = w.size();
  std::vector<int> block_rank(static_cast<std::size_t>(bp.num_blocks), 0);
  // Deal heaviest blocks first (LPT) to the rank whose normalized load
  // (assigned edges / weight share) is lowest — the k-way generalization of
  // the two-device weighted-load greedy above.
  std::vector<int> order(static_cast<std::size_t>(bp.num_blocks));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b2) {
    return bp.block_edges[a] > bp.block_edges[b2];
  });
  std::vector<double> share(k), assigned(k, 0.0);
  for (std::size_t r = 0; r < k; ++r)
    share[r] = static_cast<double>(w[r]) / wsum;
  for (int b : order) {
    const double bw = static_cast<double>(bp.block_edges[b]) + 1e-9;
    std::size_t best = 0;
    double best_load = 1e300;
    for (std::size_t r = 0; r < k; ++r) {
      const double load =
          share[r] == 0 ? 1e300 : (assigned[r] + bw) / share[r];
      if (load < best_load) {
        best_load = load;
        best = r;
      }
    }
    block_rank[b] = static_cast<int>(best);
    assigned[best] += bw;
  }
  std::vector<int> owner(bp.block_of.size());
  for (std::size_t v = 0; v < owner.size(); ++v)
    owner[v] = block_rank[bp.block_of[v]];
  return owner;
}

std::vector<int> hybrid_partition_k(const graph::Csr& g, const RankWeights& w,
                                    const BlockedOptions& opt) {
  return hybrid_partition_k(blocked_min_cut(g, opt), w);
}

std::vector<int> reassign_after_loss(const graph::Csr& g,
                                     std::span<const int> owner_rank,
                                     int nranks, int dead,
                                     const RankWeights& w) {
  PG_CHECK(owner_rank.size() == g.num_vertices());
  PG_CHECK_MSG(nranks >= 2, "reassign_after_loss needs a survivor");
  PG_CHECK_MSG(dead >= 0 && dead < nranks, "dead rank outside [0, nranks)");
  PG_CHECK_MSG(static_cast<int>(w.size()) == nranks - 1,
               "one weight per surviving rank is required");
  const int wsum = check_weights(w);
  const std::size_t k = w.size();
  // Compacted id of each surviving old rank, and the survivors' current
  // normalized edge loads (their vertices stay put — the checkpointed local
  // state must remain valid).
  std::vector<int> compact(static_cast<std::size_t>(nranks), -1);
  for (int r = 0, c = 0; r < nranks; ++r)
    if (r != dead) compact[static_cast<std::size_t>(r)] = c++;
  std::vector<double> share(k), assigned(k, 0.0);
  for (std::size_t r = 0; r < k; ++r)
    share[r] = static_cast<double>(w[r]) / wsum;
  const vid_t n = g.num_vertices();
  std::vector<int> owner(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> orphans;
  for (vid_t v = 0; v < n; ++v) {
    const int r = owner_rank[static_cast<std::size_t>(v)];
    PG_CHECK_MSG(r >= 0 && r < nranks, "owner rank outside [0, nranks)");
    if (r == dead) {
      orphans.push_back(v);
    } else {
      const std::size_t c = static_cast<std::size_t>(compact[r]);
      owner[static_cast<std::size_t>(v)] = static_cast<int>(c);
      assigned[c] += static_cast<double>(g.out_degree(v));
    }
  }
  // Deal the dead rank's vertices heaviest-first to the survivor with the
  // lowest normalized load — the same LPT rule hybrid_partition_k applies
  // to blocks.
  std::sort(orphans.begin(), orphans.end(), [&](vid_t a, vid_t b) {
    return g.out_degree(a) > g.out_degree(b);
  });
  for (vid_t v : orphans) {
    const double vw = static_cast<double>(g.out_degree(v)) + 1e-9;
    std::size_t best = 0;
    double best_load = 1e300;
    for (std::size_t r = 0; r < k; ++r) {
      const double load =
          share[r] == 0 ? 1e300 : (assigned[r] + vw) / share[r];
      if (load < best_load) {
        best_load = load;
        best = r;
      }
    }
    owner[static_cast<std::size_t>(v)] = static_cast<int>(best);
    assigned[best] += vw;
  }
  return owner;
}

KwayStats evaluate_partition_k(const graph::Csr& g,
                               std::span<const int> owner_rank, int nranks) {
  PG_CHECK(owner_rank.size() == g.num_vertices());
  PG_CHECK(nranks >= 1);
  KwayStats s;
  s.verts.assign(static_cast<std::size_t>(nranks), 0);
  s.edges.assign(static_cast<std::size_t>(nranks), 0);
  // Presence masks for the replication factor: placing edge (u,v) on u's
  // rank makes v present there too. Only tracked while ranks fit a mask word.
  std::vector<std::uint64_t> present;
  if (nranks <= 64) present.assign(g.num_vertices(), 0);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const int r = owner_rank[u];
    PG_CHECK_MSG(r >= 0 && r < nranks, "owner rank outside [0, nranks)");
    ++s.verts[static_cast<std::size_t>(r)];
    s.edges[static_cast<std::size_t>(r)] += g.out_degree(u);
    if (!present.empty()) present[u] |= 1ull << r;
    for (vid_t v : g.out_neighbors(u)) {
      if (owner_rank[u] != owner_rank[v]) ++s.cross_edges;
      if (!present.empty()) present[v] |= 1ull << r;
    }
  }
  if (!present.empty() && g.num_vertices() > 0) {
    std::uint64_t replicas = 0;
    for (std::uint64_t mask : present)
      replicas += static_cast<std::uint64_t>(std::popcount(mask));
    s.replication_factor =
        static_cast<double>(replicas) / static_cast<double>(g.num_vertices());
  }
  eid_t total = 0, worst = 0;
  for (eid_t e : s.edges) {
    total += e;
    worst = std::max(worst, e);
  }
  if (total > 0)
    s.load_imbalance = static_cast<double>(worst) * nranks /
                       static_cast<double>(total);
  return s;
}

PartitionStats evaluate_partition(const graph::Csr& g,
                                  std::span<const Device> owner) {
  PG_CHECK(owner.size() == g.num_vertices());
  PartitionStats s;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const int d = device_index(owner[u]);
    ++s.verts[d];
    s.edges[d] += g.out_degree(u);
    for (vid_t v : g.out_neighbors(u))
      if (owner[u] != owner[v]) ++s.cross_edges;
  }
  return s;
}

void save_partition(std::span<const Device> owner, const std::string& path) {
  std::ofstream out(path);
  PG_CHECK_MSG(out.good(), "failed to open partition file for writing");
  out << owner.size() << '\n';
  for (Device d : owner) out << device_index(d) << '\n';
  PG_CHECK_MSG(out.good(), "write failure while saving partition file");
}

std::vector<Device> load_partition(const std::string& path) {
  std::ifstream in(path);
  PG_CHECK_MSG(in.good(), "failed to open partition file");
  std::size_t n = 0;
  in >> n;
  std::vector<Device> owner(n);
  for (std::size_t v = 0; v < n; ++v) {
    int d = 0;
    in >> d;
    PG_CHECK_MSG(!in.fail() && (d == 0 || d == 1), "bad partition file entry");
    owner[v] = static_cast<Device>(d);
  }
  return owner;
}

}  // namespace phigraph::partition
