#include "src/partition/stream_partition.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "src/common/expect.hpp"
#include "src/common/rng.hpp"

namespace phigraph::partition {

namespace {

/// Validated weight sum: at least one rank, no negative weights, Σw > 0,
/// and k ≤ 64 so replica sets fit one bitmask word.
std::uint64_t checked_weight_sum(const RankWeights& w) {
  PG_CHECK_MSG(!w.empty(), "streaming partition needs at least one rank");
  PG_CHECK_MSG(w.size() <= 64,
               "streaming vertex-cut supports at most 64 ranks");
  std::uint64_t sum = 0;
  for (int x : w) {
    PG_CHECK_MSG(x >= 0, "rank weights must be non-negative");
    sum += static_cast<std::uint64_t>(x);
  }
  PG_CHECK_MSG(sum > 0, "rank weights must not all be zero");
  return sum;
}

VertexCut make_cut(vid_t n, eid_t m, const RankWeights& w) {
  VertexCut cut;
  cut.nranks = static_cast<int>(w.size());
  cut.weights = w;
  cut.edge_rank.reserve(static_cast<std::size_t>(m));
  cut.replicas.assign(n, 0);
  cut.master.assign(n, -1);
  cut.edge_load.assign(w.size(), 0);
  return cut;
}

void host_edge(VertexCut& cut, graph::StreamEdge e, int r) {
  cut.edge_rank.push_back(r);
  ++cut.edge_load[static_cast<std::size_t>(r)];
  const std::uint64_t bit = 1ull << r;
  for (vid_t v : {e.u, e.v}) {
    cut.replicas[v] |= bit;
    if (cut.master[v] < 0) cut.master[v] = r;  // first replica owns the vertex
  }
}

/// Deal masters to vertices no streamed edge ever touched: weighted
/// round-robin over the positive-weight ranks, deterministic in vertex id.
void assign_isolated_masters(VertexCut& cut, std::uint64_t wsum) {
  std::vector<int> slot;
  slot.reserve(static_cast<std::size_t>(wsum));
  for (int r = 0; r < cut.nranks; ++r)
    for (int i = 0; i < cut.weights[static_cast<std::size_t>(r)]; ++i)
      slot.push_back(r);
  std::uint64_t next = 0;
  for (std::size_t v = 0; v < cut.master.size(); ++v) {
    if (cut.master[v] < 0)
      cut.master[v] = slot[static_cast<std::size_t>(next++ % wsum)];
    cut.replicas[v] |= 1ull << cut.master[v];
  }
}

}  // namespace

// ---- VertexCut metrics -------------------------------------------------------

double VertexCut::replication_factor() const noexcept {
  if (replicas.empty()) return 1.0;
  std::uint64_t total = 0;
  for (std::uint64_t mask : replicas)
    total += static_cast<std::uint64_t>(std::popcount(mask));
  return static_cast<double>(total) / static_cast<double>(replicas.size());
}

double VertexCut::load_imbalance() const noexcept {
  double total = 0, wsum = 0;
  for (eid_t e : edge_load) total += static_cast<double>(e);
  for (int x : weights) wsum += x;
  if (total == 0 || wsum == 0) return 1.0;
  double worst = 0;
  for (std::size_t r = 0; r < edge_load.size(); ++r) {
    const double share = static_cast<double>(weights[r]) / wsum;
    if (share == 0) continue;
    worst = std::max(worst,
                     static_cast<double>(edge_load[r]) / (share * total));
  }
  return worst;
}

// ---- Hdrf --------------------------------------------------------------------

Hdrf::Hdrf(vid_t num_vertices, eid_t num_edges, const RankWeights& weights,
           const StreamOptions& opt)
    : opt_(opt), cut_(make_cut(num_vertices, num_edges, weights)) {
  PG_CHECK_MSG(opt_.lambda >= 0, "HDRF lambda must be non-negative");
  PG_CHECK_MSG(opt_.balance_slack >= 1.0,
               "HDRF balance_slack below 1 makes the cap infeasible");
  const std::uint64_t wsum = checked_weight_sum(weights);
  degree_.assign(num_vertices, 0);
  share_.resize(weights.size());
  cut_.load_cap.resize(weights.size());
  for (std::size_t r = 0; r < weights.size(); ++r) {
    share_[r] = static_cast<double>(weights[r]) / static_cast<double>(wsum);
    // Hard balance bound: a rank may exceed its fair share of the declared
    // edge count by at most the slack factor. Zero-weight ranks get cap 0,
    // so they can never be a candidate.
    cut_.load_cap[r] =
        weights[r] == 0
            ? 0
            : std::max<eid_t>(
                  1, static_cast<eid_t>(std::ceil(
                         opt_.balance_slack * static_cast<double>(num_edges) *
                         share_[r])));
  }
}

int Hdrf::place(graph::StreamEdge e) {
  // Partial degrees: HDRF sees degrees as they stand when the edge streams
  // by — no pre-pass over the list.
  ++degree_[e.u];
  ++degree_[e.v];
  const double du = static_cast<double>(degree_[e.u]);
  const double dv = static_cast<double>(degree_[e.v]);
  const double theta_u = du / (du + dv);  // 1 - theta_v

  // Normalized loads for the balance term (load / weight share), so a rank
  // with twice the weight looks half as loaded.
  double max_nload = 0, min_nload = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < share_.size(); ++r) {
    if (share_[r] == 0) continue;
    const double nload = static_cast<double>(cut_.edge_load[r]) / share_[r];
    max_nload = std::max(max_nload, nload);
    min_nload = std::min(min_nload, nload);
  }

  int best = -1;
  double best_score = 0, best_nload = 0;
  for (int r = 0; r < cut_.nranks; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    if (cut_.weights[ri] == 0) continue;
    if (cut_.edge_load[ri] >= cut_.load_cap[ri]) continue;  // balance bound

    // C_rep: reward ranks already hosting a replica, weighted toward the
    // lower-degree endpoint so the hub is the one that gets replicated.
    double score = 0;
    const std::uint64_t bit = 1ull << r;
    if ((cut_.replicas[e.u] & bit) != 0) score += 1.0 + (1.0 - theta_u);
    if ((cut_.replicas[e.v] & bit) != 0) score += 1.0 + theta_u;

    // C_bal: reward lightly loaded ranks (λ trades replication for balance).
    const double nload = static_cast<double>(cut_.edge_load[ri]) / share_[ri];
    score += opt_.lambda * (max_nload - nload) /
             (1.0 + max_nload - min_nload);

    // Deterministic tie-break: higher score, then lighter rank, then lower id.
    if (best < 0 || score > best_score ||
        (score == best_score && nload < best_nload)) {
      best = r;
      best_score = score;
      best_nload = nload;
    }
  }
  PG_CHECK_MSG(best >= 0,
               "HDRF ran out of capacity — stream longer than the declared "
               "edge count?");
  return best;
}

void Hdrf::consume(std::span<const graph::StreamEdge> chunk) {
  PG_CHECK_MSG(!finished_, "consume after finish");
  for (const graph::StreamEdge& e : chunk) {
    PG_CHECK_FMT(e.u < degree_.size() && e.v < degree_.size(),
                 "edge (%u, %u) out of range", e.u, e.v);
    host_edge(cut_, e, place(e));
    ++seen_;
  }
}

VertexCut Hdrf::finish() {
  PG_CHECK_MSG(!finished_, "finish called twice");
  finished_ = true;
  assign_isolated_masters(cut_, checked_weight_sum(cut_.weights));
  return std::move(cut_);
}

VertexCut Hdrf::partition(graph::EdgeStream& stream,
                          const RankWeights& weights,
                          const StreamOptions& opt) {
  Hdrf p(stream.num_vertices(), stream.num_edges(), weights, opt);
  stream.reset();
  for (auto chunk = stream.next_chunk(); !chunk.empty();
       chunk = stream.next_chunk())
    p.consume(chunk);
  return p.finish();
}

// ---- Dbh ---------------------------------------------------------------------

namespace {

std::uint64_t dbh_mix(std::uint64_t seed, vid_t v) {
  SplitMix64 sm(seed * 0x9e3779b97f4a7c15ull + v);
  return sm.next();
}

}  // namespace

Dbh::Dbh(vid_t num_vertices, eid_t num_edges, const RankWeights& weights,
         const StreamOptions& opt)
    : opt_(opt), cut_(make_cut(num_vertices, num_edges, weights)) {
  checked_weight_sum(weights);
  degree_.assign(num_vertices, 0);
}

void Dbh::count(std::span<const graph::StreamEdge> chunk) {
  PG_CHECK_MSG(!sealed_, "count after seal_degrees");
  for (const graph::StreamEdge& e : chunk) {
    PG_CHECK_FMT(e.u < degree_.size() && e.v < degree_.size(),
                 "edge (%u, %u) out of range", e.u, e.v);
    ++degree_[e.u];
    ++degree_[e.v];
    ++counted_;
  }
}

void Dbh::seal_degrees() {
  PG_CHECK_MSG(!sealed_, "seal_degrees called twice");
  sealed_ = true;
}

int Dbh::hash_rank(graph::StreamEdge e, std::span<const eid_t> degree,
                   const RankWeights& weights, std::uint64_t seed) {
  // The partitioned endpoint is the one with the smaller degree (ties break
  // to the smaller id): hubs stay cut, low-degree vertices stay whole.
  vid_t chosen = e.u;
  if (degree[e.v] < degree[e.u] ||
      (degree[e.v] == degree[e.u] && e.v < e.u))
    chosen = e.v;
  std::uint64_t wsum = 0;
  for (int x : weights) wsum += static_cast<std::uint64_t>(x);
  // Weighted slots: rank r owns w[r] of the wsum hash slots, so zero-weight
  // ranks own none and can never be hashed to.
  std::uint64_t slot = dbh_mix(seed, chosen) % wsum;
  for (std::size_t r = 0; r < weights.size(); ++r) {
    const auto w = static_cast<std::uint64_t>(weights[r]);
    if (slot < w) return static_cast<int>(r);
    slot -= w;
  }
  PG_CHECK_MSG(false, "unreachable: slot exceeds weight sum");
  return 0;
}

void Dbh::consume(std::span<const graph::StreamEdge> chunk) {
  PG_CHECK_MSG(sealed_, "consume before seal_degrees — DBH needs full degrees");
  PG_CHECK_MSG(!finished_, "consume after finish");
  for (const graph::StreamEdge& e : chunk) {
    PG_CHECK_FMT(e.u < degree_.size() && e.v < degree_.size(),
                 "edge (%u, %u) out of range", e.u, e.v);
    host_edge(cut_, e, hash_rank(e, degree_, cut_.weights, opt_.seed));
    ++seen_;
  }
}

VertexCut Dbh::finish() {
  PG_CHECK_MSG(sealed_, "finish before seal_degrees");
  PG_CHECK_MSG(!finished_, "finish called twice");
  PG_CHECK_MSG(seen_ == counted_,
               "assign pass saw a different edge count than the degree pass");
  finished_ = true;
  assign_isolated_masters(cut_, checked_weight_sum(cut_.weights));
  return std::move(cut_);
}

VertexCut Dbh::partition(graph::EdgeStream& stream, const RankWeights& weights,
                         const StreamOptions& opt) {
  Dbh p(stream.num_vertices(), stream.num_edges(), weights, opt);
  stream.reset();
  for (auto chunk = stream.next_chunk(); !chunk.empty();
       chunk = stream.next_chunk())
    p.count(chunk);
  p.seal_degrees();
  stream.reset();
  for (auto chunk = stream.next_chunk(); !chunk.empty();
       chunk = stream.next_chunk())
    p.consume(chunk);
  return p.finish();
}

// ---- scheme dispatcher -------------------------------------------------------

std::vector<int> make_partition_k(Scheme scheme, const graph::Csr& g,
                                  const RankWeights& weights,
                                  const StreamOptions& opt,
                                  const BlockedOptions& blocked) {
  switch (scheme) {
    case Scheme::kContinuous:
      return continuous_partition_k(g, weights);
    case Scheme::kRoundRobin:
      return round_robin_partition_k(g, weights);
    case Scheme::kHybrid:
      return hybrid_partition_k(g, weights, blocked);
    case Scheme::kHdrf: {
      graph::CsrEdgeStream stream(g, opt.chunk_edges);
      return Hdrf::partition(stream, weights, opt).master;
    }
    case Scheme::kDbh: {
      graph::CsrEdgeStream stream(g, opt.chunk_edges);
      return Dbh::partition(stream, weights, opt).master;
    }
  }
  PG_CHECK_MSG(false, "unknown partition scheme");
  return {};
}

}  // namespace phigraph::partition
