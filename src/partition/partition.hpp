// Graph partitioning between CPU and MIC (paper §IV-E).
//
// Three vertex→device schemes, compared in Fig. 6:
//   * continuous  — first a/(a+b) of the vertices go to the CPU. Cheap, but
//     power-law graphs concentrate hubs at the front, so edge workload is
//     imbalanced.
//   * round-robin — interleave vertices; balanced, but maximizes cross
//     edges (communication).
//   * hybrid      — partition the graph into many min-cut blocks (the paper
//     uses Metis' min-connectivity-volume mode with 256 partitions; we ship
//     our own multilevel partitioner) and deal the *blocks* to devices so
//     the cumulative edge counts track the requested ratio. Low cut AND
//     balanced. The blocked partition is computed once per graph and reused
//     for any ratio — the property the paper highlights over GPS.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/graph/csr.hpp"

namespace phigraph::partition {

/// Workload ratio CPU : MIC ("relative amounts of computation assigned to
/// devices" — user-specified, e.g. 3:5 for PageRank in the paper).
struct Ratio {
  int cpu = 1;
  int mic = 1;
};

// ---- vertex -> device schemes ------------------------------------------------

[[nodiscard]] std::vector<Device> continuous_partition(const graph::Csr& g,
                                                       Ratio r);
[[nodiscard]] std::vector<Device> round_robin_partition(const graph::Csr& g,
                                                        Ratio r);

// ---- blocked min-cut partitioning (the Metis substitute) ---------------------

struct BlockedPartition {
  int num_blocks = 0;
  std::vector<vid_t> block_of;     // vertex -> block
  std::vector<eid_t> block_edges;  // cumulative out-degree per block
  std::vector<vid_t> block_verts;  // vertices per block
  eid_t cut_edges = 0;             // directed edges crossing blocks
};

struct BlockedOptions {
  int num_blocks = 256;  // the paper's configuration
  std::uint64_t seed = 1;
  int refine_passes = 4;     // boundary refinement sweeps per level
  double balance_tol = 0.1;  // blocks may exceed average weight by 10%
};

/// Multilevel min-cut partitioner: heavy-edge-matching coarsening, greedy
/// BFS growing on the coarsest graph, boundary (KL/FM-style) refinement on
/// every uncoarsening level.
[[nodiscard]] BlockedPartition blocked_min_cut(const graph::Csr& g,
                                               const BlockedOptions& opt = {});

/// Hybrid scheme: deal blocks to devices, greedily keeping the cumulative
/// edge counts proportional to the ratio.
[[nodiscard]] std::vector<Device> hybrid_partition(const BlockedPartition& bp,
                                                   Ratio r);

/// Convenience: blocked_min_cut + hybrid assignment in one call.
[[nodiscard]] std::vector<Device> hybrid_partition(const graph::Csr& g, Ratio r,
                                                   const BlockedOptions& opt = {});

// ---- k-way (N-rank) schemes ---------------------------------------------------
//
// Rank-count-generalized forms of the schemes above: weights[r] is rank r's
// relative workload share (the two-entry case {cpu, mic} reproduces the
// Ratio-based schemes exactly, rank 0 = CPU). They return vertex -> rank
// assignments for ClusterEngine / LocalGraph::split_n.

using RankWeights = std::vector<int>;

[[nodiscard]] std::vector<int> continuous_partition_k(const graph::Csr& g,
                                                      const RankWeights& w);
[[nodiscard]] std::vector<int> round_robin_partition_k(const graph::Csr& g,
                                                       const RankWeights& w);

/// Hybrid scheme over k ranks: deal min-cut blocks heaviest-first to the
/// rank whose normalized load (assigned edges / weight share) is lowest.
[[nodiscard]] std::vector<int> hybrid_partition_k(const BlockedPartition& bp,
                                                  const RankWeights& w);

/// Convenience: blocked_min_cut + k-way hybrid assignment in one call.
[[nodiscard]] std::vector<int> hybrid_partition_k(
    const graph::Csr& g, const RankWeights& w, const BlockedOptions& opt = {});

struct KwayStats {
  std::vector<vid_t> verts;  // per rank
  std::vector<eid_t> edges;  // cumulative out-degree per rank
  eid_t cross_edges = 0;     // directed edges crossing rank boundaries

  /// Mean ranks hosting each vertex when edges are placed on their source's
  /// rank: a vertex is "present" on its own rank plus every rank that owns
  /// an in-neighbor. 1 = no replication, nranks = fully replicated. This is
  /// the same edge-placement metric VertexCut reports, so streaming and
  /// static schemes compare on one scale. 0 when nranks > 64 (mask width).
  double replication_factor = 0;

  /// Max per-rank edge load over the mean (unweighted): 1 = perfectly
  /// balanced, 2 = the worst rank carries twice the average. 0 if no edges.
  double load_imbalance = 0;

  /// Largest relative error of any rank's achieved edge share vs. its
  /// requested share: 0 = perfect. Ranks with zero requested share are
  /// skipped (they should also receive ~nothing, which cross-checks below).
  [[nodiscard]] double balance_error(const RankWeights& w) const noexcept {
    double total = 0, wsum = 0;
    for (eid_t e : edges) total += static_cast<double>(e);
    for (int x : w) wsum += x;
    if (total == 0 || wsum == 0) return 0;
    double worst = 0;
    for (std::size_t r = 0; r < edges.size() && r < w.size(); ++r) {
      const double want = static_cast<double>(w[r]) / wsum;
      if (want == 0) continue;
      const double got = static_cast<double>(edges[r]) / total;
      const double err = (got - want) / want;
      worst = std::max(worst, err < 0 ? -err : err);
    }
    return worst;
  }
};

[[nodiscard]] KwayStats evaluate_partition_k(const graph::Csr& g,
                                             std::span<const int> owner_rank,
                                             int nranks);

/// Survivor repartitioning (recovery ladder rung 2, DESIGN.md §12): rebuild
/// an owner map after rank `dead` is written off. Surviving ranks keep their
/// vertices — their checkpointed local state stays valid — with rank ids
/// compacted to [0, nranks-1), and the dead rank's vertices are dealt
/// heaviest-first to the survivor whose normalized load (assigned edges /
/// weight share) is lowest, the same LPT rule hybrid_partition_k uses for
/// blocks. `w` holds one weight per *surviving* rank, indexed by compacted
/// rank id.
[[nodiscard]] std::vector<int> reassign_after_loss(
    const graph::Csr& g, std::span<const int> owner_rank, int nranks, int dead,
    const RankWeights& w);

// ---- evaluation ---------------------------------------------------------------

struct PartitionStats {
  vid_t verts[kNumDevices] = {0, 0};
  eid_t edges[kNumDevices] = {0, 0};  // cumulative out-degree per device
  eid_t cross_edges = 0;              // the paper's communication-volume metric

  /// Signed relative error of the CPU's achieved edge share vs. requested:
  /// 0 = perfect, +x = CPU overloaded by x of its target.
  [[nodiscard]] double balance_error(Ratio r) const noexcept {
    const double want = static_cast<double>(r.cpu) / (r.cpu + r.mic);
    const double total = static_cast<double>(edges[0] + edges[1]);
    if (total == 0 || want == 0) return 0;
    const double got = static_cast<double>(edges[0]) / total;
    return (got - want) / want;
  }
};

[[nodiscard]] PartitionStats evaluate_partition(const graph::Csr& g,
                                                std::span<const Device> owner);

// ---- partition file IO (the paper's "graph partitioning file") ----------------

void save_partition(std::span<const Device> owner, const std::string& path);
[[nodiscard]] std::vector<Device> load_partition(const std::string& path);

}  // namespace phigraph::partition
