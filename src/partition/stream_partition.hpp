// Streaming vertex-cut partitioning: HDRF and DBH (DESIGN.md §14).
//
// Unlike the static schemes in partition.hpp — which assign *vertices* to
// ranks with the whole CSR resident — these consume the edge list as a
// stream of bounded chunks and assign each *edge* to a rank the moment it is
// seen. A vertex whose edges land on several ranks is *replicated*: one rank
// holds the master copy, the others hold mirrors. The quality metrics are
//   * replication factor — mean replicas per vertex (1 = vertex partition);
//   * load imbalance     — max normalized per-rank edge load over the mean.
//
//   Hdrf — High-Degree Replicated First (Petroni et al., CIKM'15): greedy
//     score C_rep + λ·C_bal per candidate rank, where C_rep favors ranks
//     already holding a replica of either endpoint (weighted toward the
//     *lower*-degree endpoint, so hubs are the ones replicated) and C_bal
//     favors lightly loaded ranks. A hard cap load[r] ≤ ⌈slack·m·w[r]/Σw⌉
//     makes the balance bound explicit rather than best-effort.
//   Dbh — Degree-Based Hashing (Xie et al., NIPS'14): edge (u,v) goes to
//     hash(endpoint with the smaller degree), cutting hubs. Needs exact
//     degrees, so it streams twice (count, then assign); both passes are
//     single sequential sweeps.
//
// The existing engine is vertex-partitioned, so VertexCut::master feeds
// ClusterEngine as the owner map: a vertex's master is the rank that first
// created a replica of it (the rank its first streamed edge landed on).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/edge_stream.hpp"
#include "src/partition/partition.hpp"
#include "src/partition/scheme.hpp"

namespace phigraph::partition {

/// Result of a streaming vertex-cut pass.
struct VertexCut {
  int nranks = 0;
  RankWeights weights;

  std::vector<int> edge_rank;  // per edge, in stream order
  std::vector<std::uint64_t> replicas;  // per vertex: bitmask of hosting ranks
  std::vector<int> master;     // per vertex: the owner map for ClusterEngine
  std::vector<eid_t> edge_load;  // per rank: edges assigned
  std::vector<eid_t> load_cap;   // per rank: HDRF's hard bound (empty for DBH)

  /// Mean replicas per vertex (masters count as one replica). In [1, k]
  /// whenever the graph has at least one vertex.
  [[nodiscard]] double replication_factor() const noexcept;

  /// Max per-rank normalized edge load (load / fair share) over the total:
  /// 1 = perfectly balanced, 2 = some rank carries twice its share.
  [[nodiscard]] double load_imbalance() const noexcept;
};

/// Greedy streaming HDRF. Feed chunks in stream order via consume(), then
/// finish() exactly once. partition() wraps the loop for an EdgeStream.
class Hdrf {
 public:
  Hdrf(vid_t num_vertices, eid_t num_edges, const RankWeights& weights,
       const StreamOptions& opt = {});

  void consume(std::span<const graph::StreamEdge> chunk);
  [[nodiscard]] VertexCut finish();

  [[nodiscard]] static VertexCut partition(graph::EdgeStream& stream,
                                           const RankWeights& weights,
                                           const StreamOptions& opt = {});

 private:
  [[nodiscard]] int place(graph::StreamEdge e);

  StreamOptions opt_;
  VertexCut cut_;
  std::vector<eid_t> degree_;  // partial degrees, grown as edges stream by
  std::vector<double> share_;  // per rank: weight / Σweights
  eid_t seen_ = 0;
  bool finished_ = false;
};

/// Two-pass streaming DBH: count() every chunk, seal_degrees(), then
/// consume() every chunk again (EdgeStream::reset() rewinds the source).
class Dbh {
 public:
  Dbh(vid_t num_vertices, eid_t num_edges, const RankWeights& weights,
      const StreamOptions& opt = {});

  void count(std::span<const graph::StreamEdge> chunk);
  void seal_degrees();
  void consume(std::span<const graph::StreamEdge> chunk);
  [[nodiscard]] VertexCut finish();

  [[nodiscard]] static VertexCut partition(graph::EdgeStream& stream,
                                           const RankWeights& weights,
                                           const StreamOptions& opt = {});

  /// The hashed rank for an edge given final degrees — exposed so tests can
  /// state the DBH property ("every edge goes to the hash of its
  /// lower-degree endpoint") against the same rule the partitioner uses.
  [[nodiscard]] static int hash_rank(graph::StreamEdge e,
                                     std::span<const eid_t> degree,
                                     const RankWeights& weights,
                                     std::uint64_t seed);

 private:
  StreamOptions opt_;
  VertexCut cut_;
  std::vector<eid_t> degree_;
  eid_t counted_ = 0;
  eid_t seen_ = 0;
  bool sealed_ = false;
  bool finished_ = false;
};

/// Scheme dispatcher: vertex→rank owner map for any Scheme. The static trio
/// calls straight into partition.hpp; kHdrf/kDbh stream the CSR's edges (in
/// chunks of opt.chunk_edges) and return the master map.
[[nodiscard]] std::vector<int> make_partition_k(Scheme scheme,
                                                const graph::Csr& g,
                                                const RankWeights& weights,
                                                const StreamOptions& opt = {},
                                                const BlockedOptions& blocked = {});

}  // namespace phigraph::partition
