// Bounded single-producer single-consumer ring queue.
//
// The pipelining scheme (paper §IV-C, Fig. 4) gives every (worker, mover)
// pair a private message queue: "each message queue is only written by only
// one thread, as well as read by only one thread". That is exactly the SPSC
// contract, so no locks are needed — just acquire/release on the two indices,
// with cached counterparts to keep the common case a single shared load.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "src/common/expect.hpp"

namespace phigraph::pipeline {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two (one slot is sacrificed to
  /// distinguish full from empty).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;
  SpscQueue(SpscQueue&&) = delete;

  /// Producer side. False when full.
  bool try_push(const T& item) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (next == tail_cache_) return false;
    }
    buf_[head] = item;
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when empty.
  bool try_pop(T& out) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    out = buf_[tail];
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer-side drain; returns number popped.
  template <typename F>
  std::size_t drain(F&& f) {
    std::size_t n = 0;
    T item;
    while (try_pop(item)) {
      f(item);
      ++n;
    }
    return n;
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_; }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer writes
  alignas(64) std::size_t tail_cache_ = 0;        // producer-private
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer writes
  alignas(64) std::size_t head_cache_ = 0;        // consumer-private
};

}  // namespace phigraph::pipeline
