// Bounded single-producer single-consumer ring queue.
//
// The pipelining scheme (paper §IV-C, Fig. 4) gives every (worker, mover)
// pair a private message queue: "each message queue is only written by only
// one thread, as well as read by only one thread". That is exactly the SPSC
// contract, so no locks are needed — just acquire/release on the two indices,
// with cached counterparts to keep the common case a single shared load.
//
// In audit builds (PHIGRAPH_AUDIT) the SPSC contract itself is enforced: the
// first try_push() binds the producer end to the calling thread and the first
// try_pop() binds the consumer end; any later call from a different thread
// aborts naming both thread ids.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/audit.hpp"
#include "src/common/expect.hpp"
#include "src/common/sync.hpp"

namespace phigraph::pipeline {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is the slot count and must be a power of two >= 2 (one slot
  /// is sacrificed to distinguish full from empty, so `capacity - 1` items
  /// fit). Non-power-of-two capacities are rejected rather than silently
  /// rounded — the caller sizes queues against a memory budget and should
  /// not get 2x what it asked for.
  explicit SpscQueue(std::size_t capacity) {
    PG_CHECK_FMT(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                 "SpscQueue capacity must be a power of two >= 2, got %zu",
                 capacity);
    buf_.resize(capacity);
    mask_ = capacity - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;
  SpscQueue(SpscQueue&&) = delete;

  ~SpscQueue() {
    PG_DCHECK_MSG(empty(),
                  "SpscQueue destroyed with undrained messages — a pipeline "
                  "phase ended before its movers finished");
  }

  /// Producer side. False when full.
  bool try_push(const T& item) noexcept {
    PG_AUDIT_AFFINITY(producer_aff_, "spsc-single-producer",
                      "SpscQueue producer end (try_push)");
    const std::size_t head = head_.load(sync::relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_cache_) {
      // HB edge "spsc-slot-reuse": pairs with the consumer's tail_ release
      // store (spsc.tail.free). The acquire orders the consumer's last read
      // of a slot before this producer's overwrite of it.
      tail_cache_ = tail_.load(PG_SYNC_ORDER("spsc.tail.acquire", sync::acquire));
      if (next == tail_cache_) return false;
    }
    sync::plain_write(&buf_[head], "SpscQueue slot");
    buf_[head] = item;
    // HB edge "spsc-publish": pairs with the consumer's head_ acquire load
    // (spsc.head.acquire). The release publishes buf_[head] to the consumer.
    head_.store(next, PG_SYNC_ORDER("spsc.head.publish", sync::release));
    return true;
  }

  /// Consumer side. False when empty.
  bool try_pop(T& out) noexcept {
    PG_AUDIT_AFFINITY(consumer_aff_, "spsc-single-consumer",
                      "SpscQueue consumer end (try_pop)");
    const std::size_t tail = tail_.load(sync::relaxed);
    if (tail == head_cache_) {
      // HB edge "spsc-publish" (consumer side): pairs with the producer's
      // head_ release store (spsc.head.publish); makes buf_[tail] visible.
      head_cache_ = head_.load(PG_SYNC_ORDER("spsc.head.acquire", sync::acquire));
      if (tail == head_cache_) return false;
    }
    sync::plain_read(&buf_[tail], "SpscQueue slot");
    out = buf_[tail];
    // HB edge "spsc-slot-reuse" (consumer side): pairs with the producer's
    // tail_ acquire load (spsc.tail.acquire); frees the slot for reuse only
    // after our read of it is ordered.
    tail_.store((tail + 1) & mask_, PG_SYNC_ORDER("spsc.tail.free", sync::release));
    return true;
  }

  /// Consumer-side drain; returns number popped.
  template <typename F>
  std::size_t drain(F&& f) {
    std::size_t n = 0;
    T item;
    while (try_pop(item)) {
      f(item);
      ++n;
    }
    return n;
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(sync::acquire) == tail_.load(sync::acquire);
  }

  /// Occupancy snapshot. Racy by nature (either end may move concurrently)
  /// but always in [0, capacity()]; exact when the queue is quiescent.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t head = head_.load(sync::acquire);
    const std::size_t tail = tail_.load(sync::acquire);
    return (head - tail) & mask_;
  }

  /// Items that fit (slot count minus the full/empty sentinel slot).
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_; }

#if PG_AUDIT_ENABLED
  /// Release both affinity bindings — legal only between phases, when the
  /// queue is empty and no thread holds an end.
  void audit_rebind_ends() noexcept {
    producer_aff_.rebind();
    consumer_aff_.rebind();
  }
#endif

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  alignas(64) sync::Atomic<std::size_t> head_{0};  // producer writes
  alignas(64) std::size_t tail_cache_ = 0;         // producer-private
  alignas(64) sync::Atomic<std::size_t> tail_{0};  // consumer writes
  alignas(64) std::size_t head_cache_ = 0;         // consumer-private
#if PG_AUDIT_ENABLED
  audit::ThreadAffinity producer_aff_;
  audit::ThreadAffinity consumer_aff_;
#endif
};

}  // namespace phigraph::pipeline
