// Worker/mover message-generation pipeline (paper §IV-C, Fig. 4).
//
// Workers compute and generate messages but never touch the message buffer;
// they append to private per-mover queues, routing each message by
// `queue_id = dst_id mod num_movers`. Mover `t` drains queue t of every
// worker and inserts into the CSB. Because the routing is a function of the
// destination id, each buffer column is only ever written by one mover, so
// movers lock only at column-allocation time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/audit.hpp"
#include "src/common/expect.hpp"
#include "src/common/sync.hpp"
#include "src/common/types.hpp"
#include "src/metrics/histogram.hpp"
#include "src/metrics/trace.hpp"
#include "src/pipeline/spsc_queue.hpp"

namespace phigraph::pipeline {

/// A message in flight: <dst id, msg value> (the paper's data unit).
template <typename Msg>
struct Envelope {
  vid_t dst;
  Msg value;
};

template <typename Msg>
class MessagePipeline {
 public:
  MessagePipeline(int num_workers, int num_movers, std::size_t queue_capacity)
      : num_workers_(num_workers), num_movers_(num_movers) {
    PG_CHECK(num_workers >= 1 && num_movers >= 1);
    queues_.reserve(static_cast<std::size_t>(num_workers) * num_movers);
    for (int i = 0; i < num_workers * num_movers; ++i)
      queues_.push_back(std::make_unique<SpscQueue<Envelope<Msg>>>(queue_capacity));
#if PG_AUDIT_ENABLED
    worker_aff_ = std::make_unique<audit::ThreadAffinity[]>(
        static_cast<std::size_t>(num_workers));
    mover_aff_ = std::make_unique<audit::ThreadAffinity[]>(
        static_cast<std::size_t>(num_movers));
#endif
  }

  [[nodiscard]] int num_workers() const noexcept { return num_workers_; }
  [[nodiscard]] int num_movers() const noexcept { return num_movers_; }

  /// Rearm for a new generation phase. A phase boundary is the only point
  /// where worker/mover roles may legally move to different threads, so the
  /// audit affinity bindings are released here (the queues are verified
  /// empty first — an undrained queue means the previous phase is still
  /// running and rebinding would mask a race).
  void reset() noexcept {
    workers_done_.store(0, sync::relaxed);
#ifndef NDEBUG
    for (const auto& q : queues_)
      PG_DCHECK_MSG(q->empty(),
                    "MessagePipeline::reset while a queue still holds "
                    "messages from the previous phase");
#endif
#if PG_AUDIT_ENABLED
    for (const auto& q : queues_) q->audit_rebind_ends();
    for (int w = 0; w < num_workers_; ++w) worker_aff_[w].rebind();
    for (int m = 0; m < num_movers_; ++m) mover_aff_[m].rebind();
#endif
  }

  /// Worker side: route by destination and push, spinning on backpressure.
  /// Returns the number of full-queue spin rounds (a contention signal for
  /// the performance model: the mover count was too low).
  std::uint64_t push(int worker, vid_t dst, const Msg& value) noexcept {
    PG_DCHECK_FMT(worker >= 0 && worker < num_workers_,
                  "MessagePipeline::push: worker index %d outside [0, %d)",
                  worker, num_workers_);
    PG_AUDIT_AFFINITY(worker_aff_[worker], "pipeline-worker-affinity",
                      "pipeline worker slot");
    const int qid = static_cast<int>(dst % static_cast<vid_t>(num_movers_));
    auto& q = *queues_[static_cast<std::size_t>(worker) * num_movers_ + qid];
    std::uint64_t spins = 0;
    const Envelope<Msg> env{dst, value};
    while (!q.try_push(env)) {
      ++spins;
      if constexpr (sync::kModelBuild) {
        // Cooperative scheduler: the consumer cannot drain while we hold
        // the baton — hand it over on every failed push.
        sync::thread_yield();
      } else {
        // Back off: on oversubscribed hosts the consumer needs CPU time to
        // drain; pure pause-spinning would livelock the timeslice away.
        if ((spins & 63) == 0)
          sync::thread_yield();
        else
          sync::cpu_relax();
      }
    }
    return spins;
  }

  /// Worker side: signal that this worker generated its last message.
  void worker_done() noexcept {
    // HB edge "pipeline-worker-done": pairs with the mover's acquire load in
    // mover_loop; orders a worker's final queue pushes before the mover's
    // conclusion that the queues are permanently empty.
    workers_done_.fetch_add(1, PG_SYNC_ORDER("pipeline.done.publish", sync::release));
  }

  /// Mover side: repeatedly sweep this mover's queues, calling
  /// consume(envelope) for each message, until every worker is done and the
  /// queues are drained. Returns messages moved.
  template <typename Consume>
  std::uint64_t mover_loop(int mover, Consume&& consume) {
    PG_DCHECK_FMT(mover >= 0 && mover < num_movers_,
                  "MessagePipeline::mover_loop: mover index %d outside "
                  "[0, %d)",
                  mover, num_movers_);
    PG_AUDIT_AFFINITY(mover_aff_[mover], "pipeline-mover-affinity",
                      "pipeline mover slot");
    std::uint64_t moved = 0;
    std::uint64_t idle_sweeps = 0;
    for (;;) {
      std::size_t got = 0;
      for (int w = 0; w < num_workers_; ++w) {
        auto& q = *queues_[static_cast<std::size_t>(w) * num_movers_ + mover];
        const std::size_t n = q.drain(consume);
        got += n;
#if PG_TRACE_ENABLED
        // A drain batch is the queue's occupancy at sweep time (a lower
        // bound — the worker may append while we pop). Idle sweeps are
        // skipped so the histogram reads as "depth when there was work".
        if (n > 0 && drain_hist_ != nullptr) drain_hist_->record(n);
#endif
      }
      moved += got;
      if (got == 0) {
        if (workers_done_.load(PG_SYNC_ORDER("pipeline.done.acquire",
                                              sync::acquire)) == num_workers_) {
          // All workers finished before our sweep started, and the sweep saw
          // nothing: queues are permanently empty.
          bool empty = true;
          for (int w = 0; w < num_workers_ && empty; ++w)
            empty = queues_[static_cast<std::size_t>(w) * num_movers_ + mover]
                        ->empty();
          if (empty) return moved;
        }
        if constexpr (sync::kModelBuild) {
          sync::thread_yield();
        } else {
          if (++idle_sweeps % 16 == 0)
            sync::thread_yield();
          else
            sync::cpu_relax();
        }
      } else {
        idle_sweeps = 0;
      }
    }
  }

#if PG_TRACE_ENABLED
  /// Trace builds: record every non-empty drain batch's size into `h`.
  void set_drain_histogram(metrics::Histogram* h) noexcept { drain_hist_ = h; }
#endif

 private:
  int num_workers_;
  int num_movers_;
#if PG_TRACE_ENABLED
  metrics::Histogram* drain_hist_ = nullptr;
#endif
  // queues_[worker * num_movers_ + mover]
  std::vector<std::unique_ptr<SpscQueue<Envelope<Msg>>>> queues_;
  sync::Atomic<int> workers_done_{0};
#if PG_AUDIT_ENABLED
  // Checked build only: each worker/mover slot is bound to one thread per
  // phase (released by reset()).
  std::unique_ptr<audit::ThreadAffinity[]> worker_aff_;
  std::unique_ptr<audit::ThreadAffinity[]> mover_aff_;
#endif
};

}  // namespace phigraph::pipeline
