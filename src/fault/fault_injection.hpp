// Deterministic fault injection ("fault build") — named fault points at every
// place the fault-tolerance layer must survive a failure, armed by a seeded
// FaultPlan so failure paths are exercised by replayable tests instead of
// luck.
//
// Everything is gated on the PHIGRAPH_FAULTS preprocessor definition (CMake
// option -DPHIGRAPH_FAULTS=ON, the `faults` preset). When the gate is off,
// PG_FAULT_POINT expands to `((void)0)` — the default build carries no extra
// state, loads, or branches, exactly like the audit layer.
//
// A fault point fires by throwing FaultInjected, which then travels the same
// road a real failure would: caught by the engine's guarded phase runner,
// converted into an Exchange poison, and surfaced to the peer as a
// structured FaultReport.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/expect.hpp"
#include "src/common/rng.hpp"
#include "src/common/sync.hpp"
#include "src/common/thread_safety.hpp"

#if defined(PHIGRAPH_FAULTS)
#define PG_FAULTS_ENABLED 1
#else
#define PG_FAULTS_ENABLED 0
#endif

namespace phigraph::fault {

/// Every named fault point in the runtime. The names mirror the code site:
/// `engine.*` fire around the three user callbacks, `exchange.deposit` at
/// the start of the data-exchange phase, `pipeline.mover_insert` in the
/// mover's CSB insertion, and `checkpoint.write` while a frame is written.
enum class Point : std::uint8_t {
  kExchangeDeposit = 0,
  kEngineGenerate,
  kEngineProcess,
  kEngineUpdate,
  kPipelineMoverInsert,
  kCheckpointWrite,
};

inline constexpr int kNumPoints = 6;

constexpr const char* point_name(Point p) noexcept {
  switch (p) {
    case Point::kExchangeDeposit: return "exchange.deposit";
    case Point::kEngineGenerate: return "engine.generate";
    case Point::kEngineProcess: return "engine.process";
    case Point::kEngineUpdate: return "engine.update";
    case Point::kPipelineMoverInsert: return "pipeline.mover_insert";
    case Point::kCheckpointWrite: return "checkpoint.write";
  }
  return "?";
}

/// The exception a fired fault point throws.
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected(Point p, int r, int s)
      : std::runtime_error(std::string("injected fault at ") + point_name(p) +
                           " (rank " + std::to_string(r) + ", superstep " +
                           std::to_string(s) + ")"),
        point(p),
        rank(r),
        superstep(s) {}

  Point point;
  int rank;
  int superstep;
};

/// One armed fault: fire on the `occurrence`-th time `point` is reached by
/// `rank` in `superstep` (occurrences count from 1).
struct FaultSpec {
  Point point = Point::kEngineGenerate;
  int rank = 0;
  int superstep = 0;
  int occurrence = 1;
};

/// A deterministic schedule of faults. Build explicitly via arm(), or derive
/// one from a seed: the same seed always yields the same schedule.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& arm(FaultSpec spec) {
    PG_CHECK_MSG(spec.rank == 0 || spec.rank == 1, "fault rank must be 0 or 1");
    PG_CHECK_MSG(spec.superstep >= 0 && spec.occurrence >= 1,
                 "fault superstep/occurrence out of range");
    specs_.push_back(spec);
    return *this;
  }

  /// Seeded single-fault plan: point, rank, and superstep are drawn from the
  /// seed (superstep uniform in [0, max_superstep]).
  static FaultPlan from_seed(std::uint64_t seed, int max_superstep) {
    PG_CHECK(max_superstep >= 0);
    Rng rng(seed);
    FaultSpec spec;
    spec.point = static_cast<Point>(rng.below(kNumPoints));
    spec.rank = static_cast<int>(rng.below(2));
    spec.superstep =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(max_superstep) + 1));
    spec.occurrence = 1;
    FaultPlan plan;
    plan.arm(spec);
    return plan;
  }

  [[nodiscard]] const std::vector<FaultSpec>& specs() const noexcept {
    return specs_;
  }
  [[nodiscard]] bool empty() const noexcept { return specs_.empty(); }

 private:
  std::vector<FaultSpec> specs_;
};

#if PG_FAULTS_ENABLED

/// Process-global injector (fault builds only). install() arms a plan and
/// resets its occurrence counters; check() is called from PG_FAULT_POINT
/// sites, possibly concurrently from team threads, and throws FaultInjected
/// when an armed spec's occurrence is reached. The armed list is guarded by
/// mu_ (annotated for -Wthread-safety) so an install racing a straggler
/// check() from a previous run cannot read a vector mid-mutation; within a
/// run, occurrence counting stays a relaxed fetch_add on a stable list.
class Injector {
 public:
  static Injector& instance() {
    static Injector inj;
    return inj;
  }

  void install(const FaultPlan& plan) {
    sync::LockGuard g(mu_);
    armed_.clear();
    for (const FaultSpec& s : plan.specs())
      armed_.push_back(std::make_unique<Armed>(s));
  }

  void clear() {
    sync::LockGuard g(mu_);
    armed_.clear();
  }

  void check(Point p, int rank, int superstep) {
    sync::LockGuard g(mu_);
    for (const auto& a : armed_) {
      if (a->spec.point != p || a->spec.rank != rank ||
          a->spec.superstep != superstep)
        continue;
      const int hit = a->hits.fetch_add(1, sync::relaxed) + 1;
      if (hit == a->spec.occurrence) throw FaultInjected(p, rank, superstep);
    }
  }

 private:
  struct Armed {
    explicit Armed(const FaultSpec& s) : spec(s) {}
    FaultSpec spec;
    sync::Atomic<int> hits{0};
  };
  mutable sync::Mutex mu_;
  std::vector<std::unique_ptr<Armed>> armed_ PG_GUARDED_BY(mu_);
};

/// RAII plan installation for tests: arms on construction, clears on exit.
class ScopedPlan {
 public:
  explicit ScopedPlan(const FaultPlan& plan) { Injector::instance().install(plan); }
  ~ScopedPlan() { Injector::instance().clear(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

#endif  // PG_FAULTS_ENABLED

}  // namespace phigraph::fault

#if PG_FAULTS_ENABLED
#define PG_FAULT_POINT(point, rank, superstep)                       \
  ::phigraph::fault::Injector::instance().check(                     \
      ::phigraph::fault::Point::point, (rank), (superstep))
#else
#define PG_FAULT_POINT(point, rank, superstep) ((void)0)
#endif
