// Deterministic fault injection ("fault build") — named fault points at every
// place the fault-tolerance layer must survive a failure, armed by a seeded
// FaultPlan so failure paths are exercised by replayable tests instead of
// luck.
//
// Everything is gated on the PHIGRAPH_FAULTS preprocessor definition (CMake
// option -DPHIGRAPH_FAULTS=ON, the `faults` preset). When the gate is off,
// PG_FAULT_POINT expands to `((void)0)` — the default build carries no extra
// state, loads, or branches, exactly like the audit layer.
//
// A fault point fires by throwing FaultInjected, which then travels the same
// road a real failure would: caught by the engine's guarded phase runner,
// converted into an Exchange poison, and surfaced to the peer as a
// structured FaultReport.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/expect.hpp"
#include "src/common/rng.hpp"
#include "src/common/sync.hpp"
#include "src/common/thread_safety.hpp"
#include "src/fault/fault.hpp"

#if defined(PHIGRAPH_FAULTS)
#define PG_FAULTS_ENABLED 1
#else
#define PG_FAULTS_ENABLED 0
#endif

namespace phigraph::fault {

/// Every named fault point in the runtime. The names mirror the code site:
/// `engine.*` fire around the three user callbacks, `exchange.deposit` at
/// the start of the data-exchange phase, `pipeline.mover_insert` in the
/// mover's CSB insertion, `checkpoint.write` while a frame is written, and
/// `checkpoint.rename` between a file-backed frame's fsynced temp write and
/// the atomic rename that publishes it (a crash there must leave both
/// existing slots intact).
enum class Point : std::uint8_t {
  kExchangeDeposit = 0,
  kEngineGenerate,
  kEngineProcess,
  kEngineUpdate,
  kPipelineMoverInsert,
  kCheckpointWrite,
  kCheckpointRename,
};

inline constexpr int kNumPoints = 7;

constexpr const char* point_name(Point p) noexcept {
  switch (p) {
    case Point::kExchangeDeposit: return "exchange.deposit";
    case Point::kEngineGenerate: return "engine.generate";
    case Point::kEngineProcess: return "engine.process";
    case Point::kEngineUpdate: return "engine.update";
    case Point::kPipelineMoverInsert: return "pipeline.mover_insert";
    case Point::kCheckpointWrite: return "checkpoint.write";
    case Point::kCheckpointRename: return "checkpoint.rename";
  }
  return "?";
}

/// The exception a fired fault point throws. Carries the armed spec's
/// FaultKind so the engine's classification (and therefore the recovery
/// ladder's rung choice) can be exercised deterministically by tests.
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected(Point p, int r, int s, FaultKind k = FaultKind::kPermanent)
      : std::runtime_error(std::string("injected ") + kind_name(k) +
                           " fault at " + point_name(p) + " (rank " +
                           std::to_string(r) + ", superstep " +
                           std::to_string(s) + ")"),
        point(p),
        rank(r),
        superstep(s),
        kind(k) {}

  Point point;
  int rank;
  int superstep;
  FaultKind kind;
};

/// One armed fault: fire on the `occurrence`-th time `point` is reached by
/// `rank` in `superstep` (occurrences count from 1), and keep firing for
/// `shots` consecutive reaches before going quiet. shots > 1 makes a
/// transient fault survive its first retry — the replayed superstep reaches
/// the point again and fires again — so tests can prove the retry budget is
/// honoured; once the shots are spent the retry genuinely succeeds.
struct FaultSpec {
  Point point = Point::kEngineGenerate;
  int rank = 0;
  int superstep = 0;
  int occurrence = 1;
  FaultKind kind = FaultKind::kPermanent;
  int shots = 1;
};

/// A deterministic schedule of faults. Build explicitly via arm(), or derive
/// one from a seed: the same seed always yields the same schedule.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& arm(FaultSpec spec) {
    PG_CHECK_MSG(spec.rank >= 0, "fault rank must be >= 0");
    PG_CHECK_MSG(spec.superstep >= 0 && spec.occurrence >= 1,
                 "fault superstep/occurrence out of range");
    PG_CHECK_MSG(spec.shots >= 1, "fault shots out of range");
    specs_.push_back(spec);
    return *this;
  }

  /// Seeded single-fault plan: point, rank, superstep, and kind are drawn
  /// from the seed (superstep uniform in [0, max_superstep], rank uniform in
  /// [0, nranks)).
  static FaultPlan from_seed(std::uint64_t seed, int max_superstep,
                             int nranks = 2) {
    PG_CHECK(max_superstep >= 0 && nranks >= 1);
    Rng rng(seed);
    FaultSpec spec;
    spec.point = static_cast<Point>(rng.below(kNumPoints));
    spec.rank = static_cast<int>(rng.below(static_cast<std::uint64_t>(nranks)));
    spec.superstep =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(max_superstep) + 1));
    spec.occurrence = 1;
    spec.kind =
        rng.below(2) == 0 ? FaultKind::kTransient : FaultKind::kPermanent;
    FaultPlan plan;
    plan.arm(spec);
    return plan;
  }

  /// Seeded multi-fault chaos plan for the soak test: 1–3 specs mixing
  /// transient and permanent kinds, 1–2 shots each, spread over ranks and
  /// supersteps. Same seed, same schedule.
  static FaultPlan chaos_from_seed(std::uint64_t seed, int max_superstep,
                                   int nranks) {
    PG_CHECK(max_superstep >= 0 && nranks >= 1);
    Rng rng(seed);
    FaultPlan plan;
    const int nspecs = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < nspecs; ++i) {
      FaultSpec spec;
      spec.point = static_cast<Point>(rng.below(kNumPoints));
      spec.rank = static_cast<int>(rng.below(static_cast<std::uint64_t>(nranks)));
      spec.superstep = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(max_superstep) + 1));
      spec.occurrence = 1 + static_cast<int>(rng.below(2));
      spec.kind =
          rng.below(2) == 0 ? FaultKind::kTransient : FaultKind::kPermanent;
      spec.shots = 1 + static_cast<int>(rng.below(2));
      plan.arm(spec);
    }
    return plan;
  }

  [[nodiscard]] const std::vector<FaultSpec>& specs() const noexcept {
    return specs_;
  }
  [[nodiscard]] bool empty() const noexcept { return specs_.empty(); }

 private:
  std::vector<FaultSpec> specs_;
};

#if PG_FAULTS_ENABLED

/// Process-global injector (fault builds only). install() arms a plan and
/// resets its occurrence counters; check() is called from PG_FAULT_POINT
/// sites, possibly concurrently from team threads, and throws FaultInjected
/// when an armed spec's occurrence is reached. The armed list is guarded by
/// mu_ (annotated for -Wthread-safety) so an install racing a straggler
/// check() from a previous run cannot read a vector mid-mutation; within a
/// run, occurrence counting stays a relaxed fetch_add on a stable list.
class Injector {
 public:
  static Injector& instance() {
    static Injector inj;
    return inj;
  }

  void install(const FaultPlan& plan) {
    sync::LockGuard g(mu_);
    armed_.clear();
    for (const FaultSpec& s : plan.specs())
      armed_.push_back(std::make_unique<Armed>(s));
  }

  void clear() {
    sync::LockGuard g(mu_);
    armed_.clear();
  }

  void check(Point p, int rank, int superstep) {
    sync::LockGuard g(mu_);
    for (const auto& a : armed_) {
      if (a->spec.point != p || a->spec.rank != rank ||
          a->spec.superstep != superstep)
        continue;
      const int hit = a->hits.fetch_add(1, sync::relaxed) + 1;
      // Fire for `shots` consecutive reaches starting at `occurrence`. Hits
      // accumulate across retries within one install, which is exactly what
      // k-times-then-stop means: a replayed superstep reaches the point
      // again, fires again, and after `shots` total firings the retry
      // finally succeeds.
      if (hit >= a->spec.occurrence && hit < a->spec.occurrence + a->spec.shots)
        throw FaultInjected(p, rank, superstep, a->spec.kind);
    }
  }

 private:
  struct Armed {
    explicit Armed(const FaultSpec& s) : spec(s) {}
    FaultSpec spec;
    sync::Atomic<int> hits{0};
  };
  mutable sync::Mutex mu_;
  std::vector<std::unique_ptr<Armed>> armed_ PG_GUARDED_BY(mu_);
};

/// RAII plan installation for tests: arms on construction, clears on exit.
class ScopedPlan {
 public:
  explicit ScopedPlan(const FaultPlan& plan) { Injector::instance().install(plan); }
  ~ScopedPlan() { Injector::instance().clear(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

#endif  // PG_FAULTS_ENABLED

}  // namespace phigraph::fault

#if PG_FAULTS_ENABLED
#define PG_FAULT_POINT(point, rank, superstep)                       \
  ::phigraph::fault::Injector::instance().check(                     \
      ::phigraph::fault::Point::point, (rank), (superstep))
#else
#define PG_FAULT_POINT(point, rank, superstep) ((void)0)
#endif
