// Superstep checkpointing — CRC32-validated snapshots of one device's BSP
// state (vertex values + active bitmap + compact frontier + resume
// superstep), taken at superstep boundaries where no messages are in flight.
//
// A CheckpointStore keeps the last two frames (current + previous) either in
// memory or file-backed. Reads always re-validate the CRC: a corrupted frame
// is rejected and the reader falls back to the previous frame (or superstep
// 0) rather than loading garbage. Both devices of a heterogeneous run
// checkpoint at the same superstep numbers (same interval), so the failover
// path resumes from the newest superstep that validates in *both* stores.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/common/expect.hpp"
#include "src/common/sync.hpp"
#include "src/common/thread_safety.hpp"
#include "src/common/types.hpp"
#include "src/fault/fault_injection.hpp"
#include "src/metrics/trace.hpp"

namespace phigraph::fault {

/// Checkpointing knobs (part of core::EngineConfig). interval == 0 disables
/// checkpointing entirely — the engine then carries no checkpoint state.
struct CheckpointConfig {
  /// Snapshot after every `interval` completed supersteps (k in the docs):
  /// frames land at resume supersteps k, 2k, 3k, ... 0 = off.
  int interval = 0;
  /// false: frames live in memory. true: frames are serialized to `dir`.
  bool file_backed = false;
  std::string dir;

  [[nodiscard]] bool enabled() const noexcept { return interval > 0; }
};

/// Plain table-based CRC-32 (IEEE 802.3 polynomial, zlib-compatible). Small
/// and dependency-free; checkpoint frames are written once per k supersteps,
/// so throughput is irrelevant next to integrity.
class Crc32 {
 public:
  void update(const void* data, std::size_t bytes) noexcept {
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < bytes; ++i)
      c = table()[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    state_ = c;
  }

  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

  static std::uint32_t of(const void* data, std::size_t bytes) noexcept {
    Crc32 crc;
    crc.update(data, bytes);
    return crc.value();
  }

 private:
  static const std::array<std::uint32_t, 256>& table() noexcept {
    static const std::array<std::uint32_t, 256> t = [] {
      std::array<std::uint32_t, 256> out{};
      for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
          c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        out[i] = c;
      }
      return out;
    }();
    return t;
  }

  std::uint32_t state_ = 0xffffffffu;
};

/// One snapshot. `values` holds the device's vertex values as raw bytes
/// (vertex value types are trivially copyable); `active` is the per-vertex
/// active bitmap; `frontier` the compact active list; `superstep` is the
/// superstep execution resumes at.
struct CheckpointFrame {
  int superstep = 0;
  std::vector<std::uint8_t> values;
  std::vector<std::uint8_t> active;
  std::vector<vid_t> frontier;
  std::uint32_t crc = 0;

  [[nodiscard]] std::uint32_t compute_crc() const noexcept {
    Crc32 c;
    const std::uint64_t header[4] = {
        static_cast<std::uint64_t>(superstep), values.size(), active.size(),
        frontier.size()};
    c.update(header, sizeof header);
    c.update(values.data(), values.size());
    c.update(active.data(), active.size());
    c.update(frontier.data(), frontier.size() * sizeof(vid_t));
    return c.value();
  }

  /// Stamp the CRC after filling the payload.
  void seal() noexcept { crc = compute_crc(); }

  [[nodiscard]] bool valid() const noexcept { return crc == compute_crc(); }
};

/// Holds the last two frames for one rank. write() alternates between two
/// slots so a failure *while writing* (torn file, fault injection) never
/// destroys the previous good frame.
///
/// Concurrency: one writer (the orchestrator, at superstep boundaries);
/// readers are quiescent in steady state but the failover boundary can
/// overlap a reader with the writer's last frame. In-memory slots therefore
/// use a seqlock-style publication word per slot — pub_[slot] holds
/// superstep+1 once the frame is fully assigned, 0 while it is being
/// (re)written — so a reader either sees a completely published frame or
/// skips the slot; supersteps are strictly monotonic, so a pub_ word never
/// repeats a value (no ABA). The model build drives a concurrent
/// writer/reader pair through this protocol and the race detector verifies
/// the publish/validate edges; file bookkeeping and the slot cursor are
/// guarded by mu_ (annotated for -Wthread-safety).
class CheckpointStore {
 public:
  CheckpointStore(CheckpointConfig cfg, int rank)
      : cfg_(std::move(cfg)), rank_(rank) {
    if (cfg_.file_backed)
      PG_CHECK_MSG(!cfg_.dir.empty(),
                   "file-backed checkpointing requires CheckpointConfig::dir");
  }

  [[nodiscard]] const CheckpointConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }

  /// Persist a sealed frame into the next slot. File-backed stores serialize
  /// to `<dir>/phigraph_ckpt_rank<R>_slot<K>.bin`; a write failure throws so
  /// the engine's fault path treats it like any other device fault.
  void write(const CheckpointFrame& frame) {
    // superstep -1: the engine's own kCheckpoint span (superstep-tagged)
    // already carries the phase time; this one isolates the store I/O.
    PG_TRACE_SCOPE(kCheckpoint, -1, rank_);
    const int slot = [&] {
      sync::LockGuard g(mu_);
      return next_slot_;
    }();
    if (cfg_.file_backed) {
      write_file(slot_path(slot), frame);
      sync::LockGuard g(mu_);
      file_superstep_[slot] = frame.superstep;
      file_present_[slot] = true;
      next_slot_ = 1 - slot;  // advance only after a successful write
    } else {
      auto& pub = pub_[static_cast<std::size_t>(slot)];
      // Invalidate before touching the payload: a concurrent reader that
      // loads 0 (or mismatched values around its copy) discards the copy.
      pub.store(0, sync::relaxed);
      sync::plain_write(&mem_[static_cast<std::size_t>(slot)],
                        "checkpoint frame slot");
      mem_[static_cast<std::size_t>(slot)] = frame;
      // HB edge "checkpoint-frame-publish": pairs with the reader's two
      // acquire loads (ckpt.read.acquire); the release orders the whole
      // frame assignment before the publication word readers validate.
      pub.store(static_cast<std::uint64_t>(frame.superstep) + 1,
                PG_SYNC_ORDER("ckpt.publish", sync::release));
      sync::LockGuard g(mu_);
      next_slot_ = 1 - slot;
    }
  }

  /// Supersteps of all stored frames whose CRC still validates, newest
  /// first. Corrupted frames are skipped (the fallback contract).
  [[nodiscard]] std::vector<int> valid_supersteps() const {
    std::vector<int> out;
    for (int slot = 0; slot < 2; ++slot) {
      auto f = read_slot(slot);
      if (f && f->valid()) out.push_back(f->superstep);
    }
    if (out.size() == 2 && out[0] < out[1]) std::swap(out[0], out[1]);
    return out;
  }

  /// The frame checkpointed at exactly `superstep`, if present and valid.
  [[nodiscard]] std::optional<CheckpointFrame> frame_at(int superstep) const {
    for (int slot = 0; slot < 2; ++slot) {
      auto f = read_slot(slot);
      if (f && f->superstep == superstep && f->valid()) return f;
    }
    return std::nullopt;
  }

  /// Newest frame that validates; corrupted latest frame falls back to the
  /// previous one.
  ///
  /// The in-memory path orders the two slot reads by *freshly loaded*
  /// publication words instead of scanning slot 0 then slot 1. The naive scan
  /// is not monotonic for a concurrent reader: it can copy slot 0's old frame,
  /// lose the CPU while the writer publishes two newer frames and starts
  /// overwriting slot 1, then find slot 1 mid-write and return the stale copy
  /// — an interleaving the model checker found (ModelCheckpoint). Reading the
  /// publication words first and trying the newest slot closes that window:
  /// if the newest slot's seqlock read fails, the writer is already
  /// overwriting it, which means the *other* slot holds an even newer frame.
  [[nodiscard]] std::optional<CheckpointFrame> latest_valid() const {
    if (cfg_.file_backed) {
      std::optional<CheckpointFrame> best;
      for (int slot = 0; slot < 2; ++slot) {
        auto f = read_slot(slot);
        if (f && f->valid() && (!best || f->superstep > best->superstep))
          best = std::move(f);
      }
      return best;
    }
    for (int attempt = 0; attempt < kMaxSeqlockRetries; ++attempt) {
      const std::uint64_t p0 = pub_[0].load(sync::acquire);
      const std::uint64_t p1 = pub_[1].load(sync::acquire);
      if (p0 == 0 && p1 == 0) return std::nullopt;  // empty store
      const int newest = p1 > p0 ? 1 : 0;
      for (int k = 0; k < 2; ++k) {
        auto f = read_slot(k == 0 ? newest : 1 - newest);
        if (f && f->valid()) return f;
      }
      // Both reads torn or invalidated mid-scan: the writer is ahead of us;
      // re-snapshot the publication words and try again.
    }
    return std::nullopt;
  }

  [[nodiscard]] std::string slot_path(int slot) const {
    return cfg_.dir + "/phigraph_ckpt_rank" + std::to_string(rank_) + "_slot" +
           std::to_string(slot) + ".bin";
  }

 private:
  static constexpr std::uint32_t kMagic = 0x5047434bu;  // "PGCK"

  [[nodiscard]] std::optional<CheckpointFrame> read_slot(int slot) const {
    if (cfg_.file_backed) {
      {
        sync::LockGuard g(mu_);
        if (!file_present_[slot]) return std::nullopt;
      }
      return read_file(slot_path(slot));
    }
    // Seqlock read: copy the frame between two acquire loads of the
    // publication word; equal non-zero values bracket a stable frame.
    const auto& pub = pub_[static_cast<std::size_t>(slot)];
    for (int attempt = 0; attempt < kMaxSeqlockRetries; ++attempt) {
      // HB edge "checkpoint-frame-publish" (reader side): pairs with the
      // writer's pub_ release store (ckpt.publish); a validated read saw
      // every byte of the frame the writer published.
      const std::uint64_t s1 =
          pub.load(PG_SYNC_ORDER("ckpt.read.acquire", sync::acquire));
      if (s1 == 0) return std::nullopt;  // empty or mid-write
      std::optional<CheckpointFrame> copy = mem_[static_cast<std::size_t>(slot)];
      const std::uint64_t s2 =
          pub.load(PG_SYNC_ORDER("ckpt.read.acquire", sync::acquire));
      if (s1 == s2) {
        // Only a *validated* copy counts as a read for the race detector;
        // an invalidated copy is discarded, so the writer overwriting it is
        // the protocol working, not a race.
        sync::plain_read_published(&mem_[static_cast<std::size_t>(slot)],
                                   "checkpoint frame slot");
        return copy;
      }
    }
    return std::nullopt;  // writer kept racing us; treat as not-yet-present
  }

  /// Crash-consistent slot write: serialize into `<path>.tmp`, fsync it, and
  /// only then rename over the slot file. rename(2) is atomic on POSIX, so a
  /// crash (or an injected checkpoint.rename fault) at any point leaves the
  /// slot file either wholly old or wholly new — a torn write can damage at
  /// most the temp file, never a published slot, and the *other* slot is
  /// untouched throughout.
  void write_file(const std::string& path, const CheckpointFrame& f) const {
    const std::string tmp = path + ".tmp";
    std::FILE* fp = std::fopen(tmp.c_str(), "wb");
    PG_CHECK_FMT(fp != nullptr, "cannot open checkpoint file %s for writing",
                 tmp.c_str());
    bool ok = true;
    auto put = [&](const void* p, std::size_t bytes) {
      ok = ok && std::fwrite(p, 1, bytes, fp) == bytes;
    };
    const std::uint32_t magic = kMagic;
    const std::uint64_t header[4] = {
        static_cast<std::uint64_t>(f.superstep), f.values.size(),
        f.active.size(), f.frontier.size()};
    put(&magic, sizeof magic);
    put(header, sizeof header);
    put(f.values.data(), f.values.size());
    put(f.active.data(), f.active.size());
    put(f.frontier.data(), f.frontier.size() * sizeof(vid_t));
    put(&f.crc, sizeof f.crc);
    // Flush userspace buffers and force the bytes to stable storage before
    // the rename: otherwise the rename could land while the data is still
    // only in the page cache, and a power loss would publish a torn frame.
    ok = ok && std::fflush(fp) == 0;
    ok = ok && ::fsync(::fileno(fp)) == 0;
    ok = std::fclose(fp) == 0 && ok;
    if (!ok) std::remove(tmp.c_str());
    PG_CHECK_FMT(ok, "write failure on checkpoint file %s", tmp.c_str());
    try {
      PG_FAULT_POINT(kCheckpointRename, rank_, f.superstep);
    } catch (...) {
      std::remove(tmp.c_str());  // a "crashed" write leaves no debris behind
      throw;
    }
    const bool renamed = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!renamed) std::remove(tmp.c_str());
    PG_CHECK_FMT(renamed, "cannot publish checkpoint file %s", path.c_str());
  }

  /// Returns nullopt on any structural damage (missing file, bad magic,
  /// truncation, implausible sizes); CRC mismatches are surfaced through
  /// CheckpointFrame::valid() by the callers above.
  [[nodiscard]] static std::optional<CheckpointFrame> read_file(
      const std::string& path) {
    std::FILE* fp = std::fopen(path.c_str(), "rb");
    if (fp == nullptr) return std::nullopt;
    bool ok = true;
    auto get = [&](void* p, std::size_t bytes) {
      ok = ok && std::fread(p, 1, bytes, fp) == bytes;
    };
    std::uint32_t magic = 0;
    std::uint64_t header[4] = {0, 0, 0, 0};
    get(&magic, sizeof magic);
    get(header, sizeof header);
    CheckpointFrame f;
    constexpr std::uint64_t kSane = 1ull << 40;  // reject absurd lengths
    if (!ok || magic != kMagic || header[1] > kSane || header[2] > kSane ||
        header[3] > kSane) {
      std::fclose(fp);
      return std::nullopt;
    }
    f.superstep = static_cast<int>(header[0]);
    f.values.resize(static_cast<std::size_t>(header[1]));
    f.active.resize(static_cast<std::size_t>(header[2]));
    f.frontier.resize(static_cast<std::size_t>(header[3]));
    get(f.values.data(), f.values.size());
    get(f.active.data(), f.active.size());
    get(f.frontier.data(), f.frontier.size() * sizeof(vid_t));
    get(&f.crc, sizeof f.crc);
    std::fclose(fp);
    if (!ok) return std::nullopt;
    return f;
  }

  static constexpr int kMaxSeqlockRetries = 64;

  CheckpointConfig cfg_;
  int rank_;
  mutable sync::Mutex mu_;
  int next_slot_ PG_GUARDED_BY(mu_) = 0;
  // In-memory slots: mem_ is published through pub_ (superstep+1 when slot
  // holds a complete frame, 0 while empty or being rewritten), not by mu_.
  std::array<std::optional<CheckpointFrame>, 2> mem_;
  std::array<sync::Atomic<std::uint64_t>, 2> pub_{};
  std::array<int, 2> file_superstep_ PG_GUARDED_BY(mu_) = {-1, -1};
  std::array<bool, 2> file_present_ PG_GUARDED_BY(mu_) = {false, false};
};

}  // namespace phigraph::fault
