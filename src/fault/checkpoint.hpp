// Superstep checkpointing — CRC32-validated snapshots of one device's BSP
// state (vertex values + active bitmap + compact frontier + resume
// superstep), taken at superstep boundaries where no messages are in flight.
//
// A CheckpointStore keeps the last two frames (current + previous) either in
// memory or file-backed. Reads always re-validate the CRC: a corrupted frame
// is rejected and the reader falls back to the previous frame (or superstep
// 0) rather than loading garbage. Both devices of a heterogeneous run
// checkpoint at the same superstep numbers (same interval), so the failover
// path resumes from the newest superstep that validates in *both* stores.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/common/expect.hpp"
#include "src/common/types.hpp"
#include "src/metrics/trace.hpp"

namespace phigraph::fault {

/// Checkpointing knobs (part of core::EngineConfig). interval == 0 disables
/// checkpointing entirely — the engine then carries no checkpoint state.
struct CheckpointConfig {
  /// Snapshot after every `interval` completed supersteps (k in the docs):
  /// frames land at resume supersteps k, 2k, 3k, ... 0 = off.
  int interval = 0;
  /// false: frames live in memory. true: frames are serialized to `dir`.
  bool file_backed = false;
  std::string dir;

  [[nodiscard]] bool enabled() const noexcept { return interval > 0; }
};

/// Plain table-based CRC-32 (IEEE 802.3 polynomial, zlib-compatible). Small
/// and dependency-free; checkpoint frames are written once per k supersteps,
/// so throughput is irrelevant next to integrity.
class Crc32 {
 public:
  void update(const void* data, std::size_t bytes) noexcept {
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < bytes; ++i)
      c = table()[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    state_ = c;
  }

  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

  static std::uint32_t of(const void* data, std::size_t bytes) noexcept {
    Crc32 crc;
    crc.update(data, bytes);
    return crc.value();
  }

 private:
  static const std::array<std::uint32_t, 256>& table() noexcept {
    static const std::array<std::uint32_t, 256> t = [] {
      std::array<std::uint32_t, 256> out{};
      for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
          c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        out[i] = c;
      }
      return out;
    }();
    return t;
  }

  std::uint32_t state_ = 0xffffffffu;
};

/// One snapshot. `values` holds the device's vertex values as raw bytes
/// (vertex value types are trivially copyable); `active` is the per-vertex
/// active bitmap; `frontier` the compact active list; `superstep` is the
/// superstep execution resumes at.
struct CheckpointFrame {
  int superstep = 0;
  std::vector<std::uint8_t> values;
  std::vector<std::uint8_t> active;
  std::vector<vid_t> frontier;
  std::uint32_t crc = 0;

  [[nodiscard]] std::uint32_t compute_crc() const noexcept {
    Crc32 c;
    const std::uint64_t header[4] = {
        static_cast<std::uint64_t>(superstep), values.size(), active.size(),
        frontier.size()};
    c.update(header, sizeof header);
    c.update(values.data(), values.size());
    c.update(active.data(), active.size());
    c.update(frontier.data(), frontier.size() * sizeof(vid_t));
    return c.value();
  }

  /// Stamp the CRC after filling the payload.
  void seal() noexcept { crc = compute_crc(); }

  [[nodiscard]] bool valid() const noexcept { return crc == compute_crc(); }
};

/// Holds the last two frames for one rank. write() alternates between two
/// slots so a failure *while writing* (torn file, fault injection) never
/// destroys the previous good frame.
class CheckpointStore {
 public:
  CheckpointStore(CheckpointConfig cfg, int rank)
      : cfg_(std::move(cfg)), rank_(rank) {
    if (cfg_.file_backed)
      PG_CHECK_MSG(!cfg_.dir.empty(),
                   "file-backed checkpointing requires CheckpointConfig::dir");
  }

  [[nodiscard]] const CheckpointConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }

  /// Persist a sealed frame into the next slot. File-backed stores serialize
  /// to `<dir>/phigraph_ckpt_rank<R>_slot<K>.bin`; a write failure throws so
  /// the engine's fault path treats it like any other device fault.
  void write(const CheckpointFrame& frame) {
    // superstep -1: the engine's own kCheckpoint span (superstep-tagged)
    // already carries the phase time; this one isolates the store I/O.
    PG_TRACE_SCOPE(kCheckpoint, -1, rank_);
    const int slot = next_slot_;
    if (cfg_.file_backed) {
      write_file(slot_path(slot), frame);
      file_superstep_[slot] = frame.superstep;
      file_present_[slot] = true;
    } else {
      mem_[slot] = frame;
    }
    next_slot_ = 1 - next_slot_;
  }

  /// Supersteps of all stored frames whose CRC still validates, newest
  /// first. Corrupted frames are skipped (the fallback contract).
  [[nodiscard]] std::vector<int> valid_supersteps() const {
    std::vector<int> out;
    for (int slot = 0; slot < 2; ++slot) {
      auto f = read_slot(slot);
      if (f && f->valid()) out.push_back(f->superstep);
    }
    if (out.size() == 2 && out[0] < out[1]) std::swap(out[0], out[1]);
    return out;
  }

  /// The frame checkpointed at exactly `superstep`, if present and valid.
  [[nodiscard]] std::optional<CheckpointFrame> frame_at(int superstep) const {
    for (int slot = 0; slot < 2; ++slot) {
      auto f = read_slot(slot);
      if (f && f->superstep == superstep && f->valid()) return f;
    }
    return std::nullopt;
  }

  /// Newest frame that validates; corrupted latest frame falls back to the
  /// previous one.
  [[nodiscard]] std::optional<CheckpointFrame> latest_valid() const {
    std::optional<CheckpointFrame> best;
    for (int slot = 0; slot < 2; ++slot) {
      auto f = read_slot(slot);
      if (f && f->valid() && (!best || f->superstep > best->superstep))
        best = std::move(f);
    }
    return best;
  }

  [[nodiscard]] std::string slot_path(int slot) const {
    return cfg_.dir + "/phigraph_ckpt_rank" + std::to_string(rank_) + "_slot" +
           std::to_string(slot) + ".bin";
  }

 private:
  static constexpr std::uint32_t kMagic = 0x5047434bu;  // "PGCK"

  [[nodiscard]] std::optional<CheckpointFrame> read_slot(int slot) const {
    if (cfg_.file_backed) {
      if (!file_present_[slot]) return std::nullopt;
      return read_file(slot_path(slot));
    }
    if (!mem_[slot]) return std::nullopt;
    return mem_[slot];
  }

  static void write_file(const std::string& path, const CheckpointFrame& f) {
    std::FILE* fp = std::fopen(path.c_str(), "wb");
    PG_CHECK_FMT(fp != nullptr, "cannot open checkpoint file %s for writing",
                 path.c_str());
    bool ok = true;
    auto put = [&](const void* p, std::size_t bytes) {
      ok = ok && std::fwrite(p, 1, bytes, fp) == bytes;
    };
    const std::uint32_t magic = kMagic;
    const std::uint64_t header[4] = {
        static_cast<std::uint64_t>(f.superstep), f.values.size(),
        f.active.size(), f.frontier.size()};
    put(&magic, sizeof magic);
    put(header, sizeof header);
    put(f.values.data(), f.values.size());
    put(f.active.data(), f.active.size());
    put(f.frontier.data(), f.frontier.size() * sizeof(vid_t));
    put(&f.crc, sizeof f.crc);
    ok = std::fclose(fp) == 0 && ok;
    PG_CHECK_FMT(ok, "write failure on checkpoint file %s", path.c_str());
  }

  /// Returns nullopt on any structural damage (missing file, bad magic,
  /// truncation, implausible sizes); CRC mismatches are surfaced through
  /// CheckpointFrame::valid() by the callers above.
  [[nodiscard]] static std::optional<CheckpointFrame> read_file(
      const std::string& path) {
    std::FILE* fp = std::fopen(path.c_str(), "rb");
    if (fp == nullptr) return std::nullopt;
    bool ok = true;
    auto get = [&](void* p, std::size_t bytes) {
      ok = ok && std::fread(p, 1, bytes, fp) == bytes;
    };
    std::uint32_t magic = 0;
    std::uint64_t header[4] = {0, 0, 0, 0};
    get(&magic, sizeof magic);
    get(header, sizeof header);
    CheckpointFrame f;
    constexpr std::uint64_t kSane = 1ull << 40;  // reject absurd lengths
    if (!ok || magic != kMagic || header[1] > kSane || header[2] > kSane ||
        header[3] > kSane) {
      std::fclose(fp);
      return std::nullopt;
    }
    f.superstep = static_cast<int>(header[0]);
    f.values.resize(static_cast<std::size_t>(header[1]));
    f.active.resize(static_cast<std::size_t>(header[2]));
    f.frontier.resize(static_cast<std::size_t>(header[3]));
    get(f.values.data(), f.values.size());
    get(f.active.data(), f.active.size());
    get(f.frontier.data(), f.frontier.size() * sizeof(vid_t));
    get(&f.crc, sizeof f.crc);
    std::fclose(fp);
    if (!ok) return std::nullopt;
    return f;
  }

  CheckpointConfig cfg_;
  int rank_;
  int next_slot_ = 0;
  std::array<std::optional<CheckpointFrame>, 2> mem_;
  std::array<int, 2> file_superstep_ = {-1, -1};
  std::array<bool, 2> file_present_ = {false, false};
};

}  // namespace phigraph::fault
