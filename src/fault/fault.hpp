// Structured fault descriptions shared by the comm poison protocol, the
// engine's failure paths, and the heterogeneous failover machinery.
//
// A FaultReport answers "which rank died, in which superstep, in which BSP
// phase, and why" — it is what a failing rank hands its peer through
// Exchange::poison() so the survivor wakes immediately with a diagnosis
// instead of timing out against a dead condition variable.
#pragma once

#include <string>

namespace phigraph::fault {

struct FaultReport {
  int rank = -1;       // failing rank (0 = CPU, 1 = MIC); -1 = no fault
  int superstep = -1;  // superstep the fault occurred in
  std::string phase;   // BSP phase or component ("generate", "exchange", ...)
  std::string what;    // exception message / diagnostic

  [[nodiscard]] bool valid() const noexcept { return rank >= 0; }

  [[nodiscard]] std::string to_string() const {
    if (!valid()) return "no fault";
    return "rank " + std::to_string(rank) + " failed in superstep " +
           std::to_string(superstep) + " (phase: " + phase + "): " + what;
  }
};

}  // namespace phigraph::fault
