// Structured fault descriptions shared by the comm poison protocol, the
// engine's failure paths, and the heterogeneous failover machinery.
//
// A FaultReport answers "which rank died, in which superstep, in which BSP
// phase, and why" — it is what a failing rank hands its peer through
// Exchange::poison() so the survivor wakes immediately with a diagnosis
// instead of timing out against a dead condition variable.
//
// Reports also carry a FaultKind so the recovery ladder in ClusterEngine can
// choose a rung: transient faults (timeouts, injected soft errors, anything
// throwing fault::TransientError) are worth retrying from a checkpoint with
// the full rank set; permanent faults (user-code exceptions, repeated
// failures past the RetryPolicy budget) write the rank off and repartition
// its vertices over the survivors.
#pragma once

#include <stdexcept>
#include <string>

namespace phigraph::fault {

/// Classification of a fault, driving the recovery-ladder rung choice.
enum class FaultKind : int {
  kUnknown = 0,    // legacy / unclassified — treated as permanent
  kTransient = 1,  // worth retrying with the same rank set
  kPermanent = 2,  // rank is written off; repartition over survivors
};

constexpr const char* kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kUnknown: return "unknown";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kPermanent: return "permanent";
  }
  return "?";
}

/// Marker exception: user programs (and the injector) throw this to signal a
/// fault that is expected to succeed on retry — a dropped message, a soft
/// ECC error, a flaky device. The engine classifies it kTransient; every
/// other exception type is classified kPermanent.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Retry budget for the transient rung of the recovery ladder: up to
/// max_attempts respawn-and-resume cycles, sleeping backoff_ms before the
/// first and growing by backoff_factor (capped at max_backoff_ms) between
/// attempts so a persistently sick device doesn't busy-loop the cluster.
struct RetryPolicy {
  int max_attempts = 2;
  int backoff_ms = 10;
  double backoff_factor = 2.0;
  int max_backoff_ms = 250;
};

struct FaultReport {
  int rank = -1;       // failing rank (0 = CPU, 1 = MIC); -1 = no fault
  int superstep = -1;  // superstep the fault occurred in
  std::string phase;   // BSP phase or component ("generate", "exchange", ...)
  std::string what;    // exception message / diagnostic
  FaultKind kind = FaultKind::kUnknown;  // transient vs permanent

  [[nodiscard]] bool valid() const noexcept { return rank >= 0; }

  [[nodiscard]] std::string to_string() const {
    if (!valid()) return "no fault";
    return "rank " + std::to_string(rank) + " failed in superstep " +
           std::to_string(superstep) + " (phase: " + phase +
           ", kind: " + kind_name(kind) + "): " + what;
  }
};

}  // namespace phigraph::fault
