// The performance model: measured counters -> modeled device seconds.
//
// The engine is real; only the clock is synthetic. For every superstep the
// engine records what happened (messages, conflicts, SIMD rows, padded
// cells, bytes exchanged, ...) and the model prices those events for a
// DeviceSpec under the execution scheme that produced them. Phase times are
// the max of a compute estimate and a memory-bandwidth estimate, mirroring
// the paper's observation that message processing "can become memory bound
// after a certain point".
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/config.hpp"
#include "src/metrics/counters.hpp"
#include "src/sim/device_spec.hpp"

namespace phigraph::sim {

/// Facts about the execution that produced a trace.
struct ExecProfile {
  core::ExecMode mode = core::ExecMode::kLocking;
  int threads = 1;      // workers (pipelining) or whole team
  int movers = 0;       // pipelining only
  bool use_simd = true;
  int lanes = 1;        // CSB lane count (w / msg_size)
  std::size_t msg_bytes = 4;
  std::size_t value_bytes = 4;

  /// Vertices hosted by this device — used to judge how saturated a
  /// generation phase is (messages per superstep relative to graph size).
  vid_t num_vertices = 1;

  /// Application cost weights relative to a basic arithmetic reduction:
  /// SemiClustering's cluster merge (combine) and extension scoring (update)
  /// are two orders of magnitude heavier than a float min, and branchy
  /// (which the in-order MIC core additionally dislikes).
  double combine_weight = 1.0;
  double update_weight = 1.0;
  bool branchy = false;

  [[nodiscard]] int total_threads() const noexcept {
    return mode == core::ExecMode::kPipelining ? threads + movers : threads;
  }
};

struct PhaseTimes {
  double generation = 0;
  double exchange = 0;   // PCIe transfer + received-message insertion
  double processing = 0;
  double update = 0;
  double overhead = 0;   // barriers, scheduler, buffer resets

  [[nodiscard]] double execution() const noexcept {
    return generation + processing + update + overhead;
  }
  [[nodiscard]] double total() const noexcept { return execution() + exchange; }

  PhaseTimes& operator+=(const PhaseTimes& o) noexcept {
    generation += o.generation;
    exchange += o.exchange;
    processing += o.processing;
    update += o.update;
    overhead += o.overhead;
    return *this;
  }
};

/// Model one superstep on one device.
[[nodiscard]] PhaseTimes model_superstep(const metrics::SuperstepCounters& c,
                                         const DeviceSpec& dev,
                                         const ExecProfile& prof,
                                         const LinkSpec* link = nullptr);

/// Model a whole single-device run.
[[nodiscard]] PhaseTimes model_run(const metrics::RunTrace& trace,
                                   const DeviceSpec& dev,
                                   const ExecProfile& prof,
                                   const LinkSpec* link = nullptr);

struct HeteroEstimate {
  double execution_seconds = 0;  // max over devices, superstep by superstep
  double comm_seconds = 0;       // PCIe exchange time
  [[nodiscard]] double total() const noexcept {
    return execution_seconds + comm_seconds;
  }
};

/// One rank's inputs to the N-rank cluster model: its measured trace plus
/// the device it is priced for.
struct RankModelInput {
  const metrics::RunTrace* trace = nullptr;
  DeviceSpec dev;
  ExecProfile prof;
};

/// Model an N-rank run: all ranks proceed in BSP lockstep, so each superstep
/// costs the slowest rank's execution time plus the slowest exchange.
/// model_hetero is the two-entry case.
[[nodiscard]] HeteroEstimate model_cluster(
    const std::vector<RankModelInput>& ranks, const LinkSpec& link);

/// Model a heterogeneous run: devices proceed in BSP lockstep, so each
/// superstep costs the slower device's execution time plus the exchange.
[[nodiscard]] HeteroEstimate model_hetero(const metrics::RunTrace& cpu_trace,
                                          const DeviceSpec& cpu_dev,
                                          const ExecProfile& cpu_prof,
                                          const metrics::RunTrace& mic_trace,
                                          const DeviceSpec& mic_dev,
                                          const ExecProfile& mic_prof,
                                          const LinkSpec& link);

/// Model the same workload executed by clean sequential code (one thread,
/// no framework machinery) — Table II's "CPU Seq" / "MIC Seq" baselines.
[[nodiscard]] double model_sequential(const metrics::RunTrace& trace,
                                      const DeviceSpec& dev,
                                      const ExecProfile& prof);

/// Per-superstep traversal-direction schedule replayed from a forced-push
/// probe trace (see core/direction.hpp).
struct DirectionMix {
  std::vector<core::Direction> directions;       // one entry per superstep
  std::vector<std::uint64_t> unexplored_edges;   // estimate fed to the policy
  std::size_t push_supersteps = 0;
  std::size_t pull_supersteps = 0;
  std::size_t flips = 0;
};

/// Replays the engine's hysteretic DirectionPolicy over a forced-push probe
/// trace. A push superstep scans exactly the frontier's out-edges, so the
/// probe's edges_scanned is the frontier edge mass the live engine feeds its
/// policy and its active_vertices is the frontier size — the replay predicts
/// the direction schedule an auto run of the same workload will take (the
/// frontier schedule itself is direction-independent because forced-push,
/// forced-pull and auto runs are bit-identical).
[[nodiscard]] DirectionMix predict_direction_mix(
    const metrics::RunTrace& push_trace, vid_t num_vertices,
    std::uint64_t num_edges, double alpha = 14.0, double beta = 24.0);

}  // namespace phigraph::sim
