#include "src/sim/model.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/expect.hpp"

namespace phigraph::sim {

namespace {

constexpr double kGiga = 1e9;

double mem_seconds(double bytes, const DeviceSpec& dev, int threads) {
  return bytes / (dev.effective_bandwidth(threads) * kGiga);
}

double stream_seconds(double bytes, const DeviceSpec& dev, int threads) {
  return bytes / (dev.effective_stream_bandwidth(threads) * kGiga);
}

/// Destination hotness: average messages per distinct destination this
/// superstep, counting remote-destined messages and their combined slots —
/// splitting a graph across devices does not cool its hubs down.
/// 1 = every receiver gets one message (BFS frontier); thousands = dense
/// convergence (TopoSort's DAG).
double hotness(const metrics::SuperstepCounters& c, double env_bytes) {
  const double sent_envelopes =
      static_cast<double>(c.bytes_sent) / env_bytes;
  const double dests = static_cast<double>(c.columns_allocated) + sent_envelopes;
  if (dests == 0) return 0.0;
  return static_cast<double>(c.msgs_local + c.msgs_remote) / dests;
}

/// Contention multiplier for a lock protecting per-destination state.
///
/// Two ingredients, both required for real queueing to build up:
///  * hotness excess — below ~3 messages per destination collisions are
///    rare; beyond that the penalty grows with log2(hotness);
///  * saturation s in [0,1] — how hard the phase hammers the memory system,
///    the max of volume pressure (messages per superstep relative to graph
///    size: PageRank sends along every edge every superstep, SSSP waves are
///    small) and hotness saturation (TopoSort funnels everything into a few
///    vertices regardless of volume).
double lock_factor(double h, double msgs, double n, double beta, double cap) {
  constexpr double kFreeHotness = 3.0;
  constexpr double kHotSat = 50.0;
  constexpr double kVolumePerVertex = 20.0;
  const double excess =
      std::max(0.0, std::log2(1.0 + h) - std::log2(1.0 + kFreeHotness));
  const double u = msgs / (msgs + kVolumePerVertex * n);
  const double sat = std::max(u, h / (h + kHotSat));
  return std::min(cap, 1.0 + beta * excess * sat);
}

}  // namespace

PhaseTimes model_superstep(const metrics::SuperstepCounters& c,
                           const DeviceSpec& dev, const ExecProfile& prof,
                           const LinkSpec* link) {
  PG_CHECK(prof.threads >= 1);
  PhaseTimes t;

  const double msgs = static_cast<double>(c.msgs_local);
  const double env_bytes =
      static_cast<double>(std::max<std::size_t>(8, 4 + prof.msg_bytes));
  const double h = hotness(c, env_bytes);
  // Volume pressure also counts remote-destined messages.
  const double gen_msgs =
      static_cast<double>(c.msgs_local + c.msgs_remote);
  const double n_local = static_cast<double>(prof.num_vertices);
  const double branch = prof.branchy ? dev.branch_penalty : 1.0;
  const double combine_cyc = dev.cyc_scalar_reduce * prof.combine_weight * branch;
  const double update_cyc = dev.cyc_update * prof.update_weight * branch;
  // Remote-destined messages are combined into the remote buffer under a
  // per-slot lock by the generating thread, in every execution mode; the
  // slots contend just like local columns do.
  const double remote_cyc =
      static_cast<double>(c.msgs_remote) *
      (dev.cyc_spinlock *
           lock_factor(h, gen_msgs, n_local, dev.spin_beta, dev.spin_cap) +
       combine_cyc);

  // ---- generation -----------------------------------------------------------
  if (c.pull_supersteps > 0) {
    // Bottom-up pull superstep: no message insertion of any kind — every
    // thread folds its own destinations' in-edges locally, so the lock, CSB
    // and queue terms vanish (and with them the processing sub-step: the
    // counters carry no rows or scalar messages on a pull superstep). What
    // remains: the candidate scan over every hosted vertex, the in-edge walk
    // with an inline combine per probed edge, and streaming the frontier
    // bitmap build (a byte read per vertex in, a bit written out).
    const double pull_edges = static_cast<double>(c.pull_edges_scanned);
    const double cyc = n_local * dev.cyc_vertex_gen +
                       pull_edges * (dev.cyc_edge_gen + combine_cyc);
    const double bytes =
        pull_edges * (sizeof(vid_t) + prof.msg_bytes) +
        n_local * (1.0 + 1.0 / 8.0);
    const int threads = prof.total_threads();
    const double p = dev.effective_parallelism(threads);
    t.generation = std::max(dev.cycles_to_seconds(cyc / p),
                            mem_seconds(bytes, dev, threads));
  } else {
  const double compute_cyc =
      static_cast<double>(c.active_vertices) * dev.cyc_vertex_gen +
      static_cast<double>(c.edges_scanned) * dev.cyc_edge_gen;
  // CSR walk streams; message insertion scatters (a cache line per message).
  // Finding the active vertices costs a full bitmap sweep (one flag byte per
  // hosted vertex) on dense supersteps, but only the compact active list
  // (one vid per active vertex) on sparse ones — the frontier win the
  // engine's active lists buy. Traces from before frontier tracking carry
  // neither flag and price as before.
  const double frontier_bytes =
      c.dense_supersteps > 0
          ? n_local
          : (c.sparse_supersteps > 0
                 ? static_cast<double>(c.frontier_size) * sizeof(vid_t)
                 : 0.0);
  const double gen_bytes =
      static_cast<double>(c.edges_scanned) * sizeof(vid_t) +
      msgs * dev.scatter_bytes + frontier_bytes;

  switch (prof.mode) {
    case core::ExecMode::kOmpStyle: {
      // Inline combine under a heavyweight per-vertex lock. The critical
      // section is long (lock + combine + unlock), so it queues badly when
      // destinations are hot.
      const double lock_cyc =
          dev.cyc_omp_lock *
          lock_factor(h, gen_msgs, n_local, dev.omp_beta, dev.omp_cap);
      const double cyc =
          compute_cyc + remote_cyc + msgs * (lock_cyc + combine_cyc);
      const double p = dev.effective_parallelism(prof.threads);
      t.generation = std::max(dev.cycles_to_seconds(cyc / p),
                              mem_seconds(gen_bytes, dev, prof.threads));
      break;
    }
    case core::ExecMode::kLocking: {
      // Direct CSB insertion: one atomic column lock per message (expensive
      // on the MIC ring even uncontended) + allocation locks.
      const double lock_cyc =
          dev.cyc_spinlock *
          lock_factor(h, gen_msgs, n_local, dev.spin_beta, dev.spin_cap);
      const double cyc =
          compute_cyc + remote_cyc + msgs * (lock_cyc + dev.cyc_insert) +
          static_cast<double>(c.columns_allocated) * dev.cyc_spinlock;
      const double p = dev.effective_parallelism(prof.threads);
      t.generation = std::max(dev.cycles_to_seconds(cyc / p),
                              mem_seconds(gen_bytes, dev, prof.threads));
      break;
    }
    case core::ExecMode::kPipelining: {
      // Workers compute + enqueue (plain SPSC stores, no atomics); movers
      // dequeue + insert without column locks. The two sides overlap, so
      // the phase costs the slower of the two; core throughput is shared in
      // proportion to the thread split.
      const int total = prof.total_threads();
      const double p_total = dev.effective_parallelism(total);
      const double p_work = p_total * prof.threads / total;
      const double p_move =
          std::max(0.25, p_total * prof.movers / std::max(1, total));
      // Note: measured queue_full_spins are a host-scheduling artifact (the
      // bench host may starve movers); backpressure on the modeled device is
      // already captured by the max() of the worker and mover sides.
      const double worker_cyc = compute_cyc + remote_cyc + msgs * dev.cyc_queue_op;
      const double mover_cyc =
          msgs * (dev.cyc_queue_op + dev.cyc_insert) +
          static_cast<double>(c.columns_allocated) * dev.cyc_spinlock;
      const double sec = std::max(dev.cycles_to_seconds(worker_cyc / p_work),
                                  dev.cycles_to_seconds(mover_cyc / p_move));
      t.generation = std::max(sec, mem_seconds(gen_bytes, dev, total)) +
                     dev.pipeline_overhead_us * 1e-6;
      break;
    }
  }
  }

  // ---- exchange --------------------------------------------------------------
  if (link != nullptr &&
      (c.bytes_sent + c.bytes_received + c.msgs_received) > 0) {
    const double wire_bytes =
        static_cast<double>(std::max(c.bytes_sent, c.bytes_received));
    const double wire = wire_bytes / (link->bandwidth_gbs * kGiga) +
                        link->latency_us * 1e-6;
    const double insert_cyc = static_cast<double>(c.msgs_received) *
                              (dev.cyc_insert + dev.cyc_spinlock);
    t.exchange = wire + dev.cycles_to_seconds(
                            insert_cyc /
                            dev.effective_parallelism(prof.total_threads()));
  }

  // ---- processing -------------------------------------------------------------
  {
    const int threads = prof.total_threads();
    const double p = dev.effective_parallelism(threads);
    const double cyc =
        static_cast<double>(c.vector_rows) * dev.cyc_vector_row +
        static_cast<double>(c.padded_cells) * dev.cyc_pad +
        static_cast<double>(c.scalar_msgs) * combine_cyc;
    // Vector arrays stream; scalar columns stride but stay within a group.
    const double bytes =
        static_cast<double>(c.vector_rows) * dev.simd_bytes +
        static_cast<double>(c.padded_cells + c.scalar_msgs) * prof.msg_bytes;
    t.processing = std::max(dev.cycles_to_seconds(cyc / p),
                            stream_seconds(bytes, dev, threads));
  }

  // ---- update -----------------------------------------------------------------
  {
    const int threads = prof.total_threads();
    const double p = dev.effective_parallelism(threads);
    const double cyc = static_cast<double>(c.verts_updated) * update_cyc;
    const double bytes = static_cast<double>(c.verts_updated) *
                         (prof.msg_bytes + prof.value_bytes + 2.0);
    t.update = std::max(dev.cycles_to_seconds(cyc / p),
                        stream_seconds(bytes, dev, threads));
  }

  // ---- fixed costs ---------------------------------------------------------------
  {
    const int threads = prof.total_threads();
    const double p = dev.effective_parallelism(threads);
    // Buffer reset (index arrays to -1) + scheduler chunk retrievals +
    // barrier/fork-join overhead per superstep.
    const double reset_cyc =
        prof.mode == core::ExecMode::kOmpStyle
            ? 0.0
            : static_cast<double>(c.columns_allocated) * dev.cyc_reset_column;
    const double sched_cyc =
        static_cast<double>(c.sched_retrievals) * dev.cyc_sched;
    t.overhead = dev.cycles_to_seconds((reset_cyc + sched_cyc) / p) +
                 dev.superstep_overhead_us * 1e-6;
  }

  return t;
}

PhaseTimes model_run(const metrics::RunTrace& trace, const DeviceSpec& dev,
                     const ExecProfile& prof, const LinkSpec* link) {
  PhaseTimes total;
  for (const auto& c : trace) total += model_superstep(c, dev, prof, link);
  return total;
}

HeteroEstimate model_cluster(const std::vector<RankModelInput>& ranks,
                             const LinkSpec& link) {
  PG_CHECK(!ranks.empty());
  const std::size_t steps = ranks[0].trace->size();
  for (const auto& r : ranks)
    PG_CHECK(r.trace != nullptr && r.trace->size() == steps);
  HeteroEstimate est;
  for (std::size_t s = 0; s < steps; ++s) {
    // BSP lockstep: every rank waits on the slowest one each superstep.
    double exec = 0, comm = 0;
    for (const auto& r : ranks) {
      const auto t = model_superstep((*r.trace)[s], r.dev, r.prof, &link);
      exec = std::max(exec, t.execution());
      comm = std::max(comm, t.exchange);
    }
    est.execution_seconds += exec;
    est.comm_seconds += comm;
  }
  return est;
}

HeteroEstimate model_hetero(const metrics::RunTrace& cpu_trace,
                            const DeviceSpec& cpu_dev,
                            const ExecProfile& cpu_prof,
                            const metrics::RunTrace& mic_trace,
                            const DeviceSpec& mic_dev,
                            const ExecProfile& mic_prof,
                            const LinkSpec& link) {
  return model_cluster({{&cpu_trace, cpu_dev, cpu_prof},
                        {&mic_trace, mic_dev, mic_prof}},
                       link);
}

double model_sequential(const metrics::RunTrace& trace, const DeviceSpec& dev,
                        const ExecProfile& prof) {
  // Clean sequential code: no locks, no buffers, no scheduler — per-vertex
  // scan, per-edge relaxation applied straight to a destination accumulator,
  // per-receiver update. One thread (smt_yield[0] of one core).
  const double branch = prof.branchy ? dev.branch_penalty : 1.0;
  const double combine_cyc = dev.cyc_scalar_reduce * prof.combine_weight * branch;
  const double update_cyc = dev.cyc_update * prof.update_weight * branch;
  double cyc = 0;
  double bytes = 0;
  for (const auto& c : trace) {
    cyc += static_cast<double>(c.active_vertices) * dev.cyc_vertex_gen +
           static_cast<double>(c.edges_scanned) * dev.cyc_edge_gen +
           static_cast<double>(c.msgs_local + c.msgs_remote) * combine_cyc +
           static_cast<double>(c.verts_updated) * update_cyc;
    bytes += static_cast<double>(c.edges_scanned) * sizeof(vid_t) +
             static_cast<double>(c.msgs_local + c.msgs_remote) *
                 dev.scatter_bytes +
             static_cast<double>(c.verts_updated) * prof.value_bytes;
  }
  const double p = dev.effective_parallelism(1);
  return std::max(dev.cycles_to_seconds(cyc / p), mem_seconds(bytes, dev, 1));
}

DirectionMix predict_direction_mix(const metrics::RunTrace& push_trace,
                                   vid_t num_vertices, std::uint64_t num_edges,
                                   double alpha, double beta) {
  DirectionMix mix;
  mix.directions.reserve(push_trace.size());
  mix.unexplored_edges.reserve(push_trace.size());
  core::DirectionPolicy policy;
  policy.alpha = alpha;
  policy.beta = beta;
  core::Direction prev = core::Direction::kPush;
  std::uint64_t explored = 0;
  for (const auto& c : push_trace) {
    // Mirror of DeviceEngine::decide_direction: the explored-edge estimate
    // accumulates the frontier's out-edge mass every superstep (capped at m),
    // and the policy sees the unexplored remainder *after* this frontier.
    const std::uint64_t frontier_edges = c.edges_scanned;
    const std::uint64_t cap = std::min(num_edges, explored + frontier_edges);
    const std::uint64_t unexplored = num_edges - cap;
    const core::Direction dir = policy.decide(
        c.active_vertices, frontier_edges, unexplored, num_vertices);
    explored = cap;
    mix.directions.push_back(dir);
    mix.unexplored_edges.push_back(unexplored);
    if (dir == core::Direction::kPull)
      ++mix.pull_supersteps;
    else
      ++mix.push_supersteps;
    if (dir != prev) ++mix.flips;
    prev = dir;
  }
  return mix;
}

}  // namespace phigraph::sim
