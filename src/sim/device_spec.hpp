// Device specifications for the performance model.
//
// The paper's testbed (§V-A): an Intel Xeon E5-2680 (16 cores @ 2.7 GHz,
// SSE4.2) plus an Intel Xeon Phi SE10P (61 cores @ 1.1 GHz, 4 hyper-threads
// per core, 512-bit KNC SIMD, 8 GB GDDR5). Neither is available here, so
// each phase's cost is modeled from the engine's *measured* event counters
// and the per-event cycle costs below.
//
// Calibration: the constants are tuned so the model lands inside the bands
// the paper reports (sequential MIC ≈ 11x slower than sequential CPU;
// per-message-processing SIMD speedups ≈ 2.2–2.4x CPU / 5–8x MIC; MIC
// pipelining vs locking between 0.8x and 3.4x depending on message volume;
// OpenMP lock overhead dominating TopoSort). EXPERIMENTS.md records
// paper-vs-modeled for every figure.
#pragma once

#include <algorithm>
#include <string>

namespace phigraph::sim {

struct DeviceSpec {
  std::string name;

  // -- hardware shape -------------------------------------------------------
  int cores = 1;
  int threads_per_core = 1;
  double freq_ghz = 1.0;
  int simd_bytes = 16;

  /// Core throughput achieved with 1..4 resident threads, relative to the
  /// core's peak. In-order MIC cores need several hyper-threads to fill the
  /// pipeline; the OOO Xeon is near-peak with one.
  double smt_yield[4] = {1.0, 1.0, 1.0, 1.0};

  /// Achievable memory bandwidth, GB/s: full parallel vs one thread.
  /// Scattered = random-destination cache-line traffic (message insertion);
  /// streaming = contiguous array walks (CSB processing — the aligned
  /// vector-array layout exists precisely to earn this rate).
  double mem_bw_gbs = 50;        // scattered
  double seq_mem_bw_gbs = 10;
  double stream_bw_gbs = 100;    // streaming
  double seq_stream_bw_gbs = 12;

  // -- per-event costs, in core cycles at peak throughput --------------------
  double cyc_vertex_gen = 14;    // per active vertex: activity check, setup
  double cyc_edge_gen = 10;      // per scanned edge: CSR walk + msg compute
  double cyc_insert = 14;        // CSB store + row bookkeeping
  double cyc_spinlock = 20;      // framework spinlock, uncontended
  double cyc_omp_lock = 90;      // omp_set_lock/omp_unset_lock pair
  double cyc_queue_op = 8;       // SPSC push or pop
  double cyc_scalar_reduce = 9;  // one scalar combine (incl. load)
  double cyc_vector_row = 14;    // one full-width SIMD row reduce
  double cyc_update = 22;        // update_vertex + active-flag write
  double cyc_sched = 60;         // dynamic-scheduler chunk retrieval
  double cyc_pad = 4;            // one identity fill (lane bubble)
  double cyc_reset_column = 3;   // per-column index/count reset

  /// Lock-contention scaling. Contention grows with destination "hotness"
  /// h = messages / distinct destinations (TopoSort's dense DAG: thousands;
  /// BFS frontiers: ~1). Effective lock cost is
  ///   cyc * min(cap, 1 + beta * log2(1 + h))
  /// with separate knobs for the framework spinlock and the heavyweight
  /// OpenMP lock (whose critical section is longer, so it queues worse).
  double spin_beta = 0.35;
  double spin_cap = 4.0;
  double omp_beta = 0.5;
  double omp_cap = 7.0;

  /// Fixed per-superstep overhead (barriers, fork/join), microseconds, and
  /// the extra cost of a pipelined generation phase (mover spin-up, queue
  /// polling/drain sweeps) — this is why locking wins the paper's BFS,
  /// whose many supersteps each carry few messages.
  double superstep_overhead_us = 12;
  double pipeline_overhead_us = 30;

  /// Bytes charged per scattered (random-destination) message write — a
  /// cache line, since each insert touches a distinct column region.
  double scatter_bytes = 64;

  /// Multiplier applied to branch-heavy application code (SemiClustering's
  /// cluster merging/scoring). ~1 on the OOO Xeon; the in-order MIC core
  /// has no branch-reordering slack, which is why the paper finds "CPU
  /// performs much faster than MIC for SC".
  double branch_penalty = 1.0;

  // ---------------------------------------------------------------------------
  /// Core-equivalents of compute throughput for a given thread count.
  [[nodiscard]] double effective_parallelism(int threads) const noexcept {
    if (threads <= 0) return 0;
    const int used_cores = std::min(threads, cores);
    int tpc = (threads + used_cores - 1) / used_cores;
    tpc = std::clamp(tpc, 1, threads_per_core);
    return used_cores * smt_yield[tpc - 1];
  }

  /// Achievable bandwidth at a given thread count (GB/s). A single thread
  /// cannot saturate the memory system; saturation is reached at about half
  /// the cores.
  [[nodiscard]] double effective_bandwidth(int threads) const noexcept {
    if (threads <= 1) return seq_mem_bw_gbs;
    const double sat = std::min(1.0, 2.0 * threads / cores);
    return std::max(seq_mem_bw_gbs, mem_bw_gbs * sat);
  }

  [[nodiscard]] double effective_stream_bandwidth(int threads) const noexcept {
    if (threads <= 1) return seq_stream_bw_gbs;
    const double sat = std::min(1.0, 2.0 * threads / cores);
    return std::max(seq_stream_bw_gbs, stream_bw_gbs * sat);
  }

  [[nodiscard]] double cycles_to_seconds(double cycles) const noexcept {
    return cycles / (freq_ghz * 1e9);
  }
};

/// The paper's CPU: Xeon E5-2680, 16 cores @ 2.70 GHz, SSE4.2, ~51 GB/s.
[[nodiscard]] inline DeviceSpec xeon_e5_2680() {
  DeviceSpec d;
  d.name = "Xeon E5-2680 (CPU)";
  d.cores = 16;
  d.threads_per_core = 2;
  d.freq_ghz = 2.7;
  d.simd_bytes = 16;
  d.smt_yield[0] = 1.0;   // OOO core: one thread ~saturates
  d.smt_yield[1] = 1.08;  // HT adds a little (the paper's best CPU config
                          // was 1 thread/core, i.e. 16 threads)
  // Effective bandwidth for the scattered-write-heavy access pattern of
  // message insertion; this is what caps the paper's CPU multicore PageRank
  // at a 3.6x speedup over sequential.
  d.mem_bw_gbs = 18;
  d.seq_mem_bw_gbs = 4;
  d.stream_bw_gbs = 40;
  d.seq_stream_bw_gbs = 12;
  d.cyc_omp_lock = 38;  // CPU atomics are cheap relative to MIC's
  d.cyc_spinlock = 24;
  d.cyc_vector_row = 8;  // SSE row reduce on an OOO core: ~load + op
  d.cyc_pad = 1;         // masked/unrolled identity fills
  // The Xeon tolerates moderate hotness but also collapses when thousands
  // of messages funnel into one destination (TopoSort: the paper's CPU is
  // 3.3x slower than the MIC there).
  d.spin_beta = 2.0;
  d.spin_cap = 12.0;
  d.omp_beta = 1.1;
  d.omp_cap = 10.0;
  d.superstep_overhead_us = 6;
  d.pipeline_overhead_us = 25;
  return d;
}

/// The paper's MIC: Xeon Phi SE10P, 61 cores (60 usable) @ 1.1 GHz, 4 HT,
/// 512-bit SIMD, GDDR5 (~150 GB/s achievable streaming).
[[nodiscard]] inline DeviceSpec xeon_phi_se10p() {
  DeviceSpec d;
  d.name = "Xeon Phi SE10P (MIC)";
  d.cores = 60;
  d.threads_per_core = 4;
  d.freq_ghz = 1.1;
  d.simd_bytes = 64;
  d.smt_yield[0] = 0.30;  // in-order core: one thread stalls constantly;
  d.smt_yield[1] = 0.75;  // the paper's best configs use 240 threads
  d.smt_yield[2] = 0.92;
  d.smt_yield[3] = 1.0;
  d.mem_bw_gbs = 60;  // scattered-access effective, not streaming peak
  d.seq_mem_bw_gbs = 2;
  d.stream_bw_gbs = 150;  // GDDR5 streaming with enough threads
  d.seq_stream_bw_gbs = 5;
  // In-order scalar pipeline: every per-event cost is steeper than the
  // CPU's. The 11x sequential gap the paper reports (2.45x clock * ~4.5x
  // per-clock) emerges from these plus smt_yield[0].
  d.cyc_vertex_gen = 26;
  d.cyc_edge_gen = 19;
  d.cyc_insert = 26;
  d.cyc_spinlock = 110;  // KNC atomics traverse the L2 ring: ~100+ cycles
  d.cyc_omp_lock = 220;  // the paper: "more expensive locking operations"
  d.cyc_queue_op = 13;   // SPSC: plain stores + fences, no atomics
  d.cyc_scalar_reduce = 17;
  d.cyc_vector_row = 18;  // one 512-bit row: load + op (in-order, no fusion)
  d.cyc_update = 40;
  d.cyc_sched = 120;
  d.cyc_pad = 2;  // 512-bit masked identity stores
  d.cyc_reset_column = 5;
  // Spinning on KNC is poisonous: a burning spinner steals issue slots from
  // its 3 hyperthread siblings, so the column spinlock degrades much faster
  // with destination hotness than the blocking OpenMP lock does.
  d.spin_beta = 1.30;
  d.spin_cap = 4.8;
  d.omp_beta = 0.37;
  d.omp_cap = 4.6;
  d.branch_penalty = 2.0;
  d.superstep_overhead_us = 40;
  d.pipeline_overhead_us = 80;
  return d;
}

/// PCIe link between host and coprocessor (gen2 x16: ~6 GB/s effective,
/// tens of microseconds per transfer through the MPI/SCIF stack).
struct LinkSpec {
  double bandwidth_gbs = 3.0;  // MPI-over-SCIF effective, not raw PCIe
  double latency_us = 60.0;
};

}  // namespace phigraph::sim
