// Memory-order mutant registry — the test-only hook that proves the checker
// can actually catch ordering bugs.
//
// Every load/store/RMW in the lock-free core whose memory order carries a
// verified happens-before edge is written as
//
//   head_.store(next, PG_SYNC_ORDER("spsc.head.publish", sync::release));
//
// In a normal build PG_SYNC_ORDER collapses to its second argument at
// compile time. In a model build it consults this registry: a mutant test
// arms a tag with a weakened order (release -> relaxed, acquire -> relaxed),
// re-runs the exploration, and asserts the race detector reports the now-
// missing edge. A mutant that survives the budget means the checker has a
// blind spot — the mutant suite is CI-gated for exactly that reason.
//
// The registry is set from the test's main thread between explorations, so
// it needs no synchronization of its own (arming while virtual threads run
// would race with the lookups; ScopedMutant's lifetime makes that misuse
// hard to write).
#pragma once

#include <atomic>
#include <cstring>
#include <vector>

namespace phigraph::model {

namespace detail {
struct MutantEntry {
  const char* tag;
  std::memory_order order;
};

inline std::vector<MutantEntry>& mutant_table() {
  static std::vector<MutantEntry> t;
  return t;
}
}  // namespace detail

/// Resolve the effective memory order for a tagged operation. The untagged
/// fast path (empty table) is a single size check.
inline std::memory_order mutant_order(const char* tag,
                                      std::memory_order normal) noexcept {
  const auto& t = detail::mutant_table();
  if (t.empty()) return normal;
  for (const auto& e : t)
    if (std::strcmp(e.tag, tag) == 0) return e.order;
  return normal;
}

inline void set_mutant(const char* tag, std::memory_order weakened) {
  detail::mutant_table().push_back({tag, weakened});
}

inline void clear_mutants() { detail::mutant_table().clear(); }

/// RAII mutant for tests: weakens one tag for the enclosing scope.
class ScopedMutant {
 public:
  ScopedMutant(const char* tag, std::memory_order weakened) {
    set_mutant(tag, weakened);
  }
  ~ScopedMutant() { clear_mutants(); }
  ScopedMutant(const ScopedMutant&) = delete;
  ScopedMutant& operator=(const ScopedMutant&) = delete;
};

}  // namespace phigraph::model
