// Schedule exploration driver: run a test case many times under seeded
// schedules and count distinct interleavings.
//
// The factory builds a *fresh* test case per execution (shared state
// included), so executions are independent; the per-execution seed is
// derived from the base seed, so a failing schedule is replayable by seed
// alone. `target_distinct` lets tests demand coverage ("explore at least
// 10,000 distinct schedules") without hard-coding an iteration count — the
// loop stops as soon as the distinct-schedule set is large enough.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>

#include "src/model/scheduler.hpp"

namespace phigraph::model {

struct Options {
  std::uint64_t seed = 0xC0FFEEull;
  /// Max executions (the budget). The explorer stops earlier once
  /// `target_distinct` schedules were seen or, with `stop_on_failure`, at
  /// the first failing execution.
  int iterations = 10000;
  std::size_t target_distinct = 0;  // 0 = run the full budget
  int preemption_bound = 3;
  long max_steps = 200000;
  bool stop_on_failure = false;  // mutant killing: first kill is enough
};

struct TestCase {
  std::vector<std::function<void()>> threads;
  /// Post-execution invariant check, run after all threads joined; returns
  /// an empty string when the outcome is correct. Kept out of the virtual
  /// threads so a violated invariant cannot deadlock the schedule.
  std::function<std::string()> finally;
};

struct ExploreStats {
  int executions = 0;
  std::size_t distinct_schedules = 0;
  int failures = 0;
  std::string first_failure;     // race report or finally() complaint
  std::uint64_t first_failure_seed = 0;  // replay handle
};

template <typename Factory>
ExploreStats explore(const Options& opt, Factory&& make) {
  Scheduler& sched = Scheduler::instance();
  std::unordered_set<std::uint64_t> hashes;
  ExploreStats st;
  for (int i = 0; i < opt.iterations; ++i) {
    if (opt.target_distinct != 0 && hashes.size() >= opt.target_distinct)
      break;
    const std::uint64_t seed =
        opt.seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(i);
    TestCase tc = make();
    Scheduler::ExecResult r =
        sched.run(tc.threads, seed, opt.preemption_bound, opt.max_steps);
    ++st.executions;
    hashes.insert(r.schedule_hash);
    std::string fail = std::move(r.failure);
    if (fail.empty() && tc.finally) fail = tc.finally();
    if (!fail.empty()) {
      ++st.failures;
      if (st.first_failure.empty()) {
        st.first_failure = std::move(fail);
        st.first_failure_seed = seed;
      }
      if (opt.stop_on_failure) break;
    }
  }
  st.distinct_schedules = hashes.size();
  return st;
}

}  // namespace phigraph::model
