// Cooperative model-checking scheduler (PHIGRAPH_MODEL build).
//
// The checker runs a test case's N virtual threads as real std::threads
// serialized by a baton: exactly one thread is `active_` at any instant, and
// control transfers only at *schedule points* — every instrumented atomic
// operation, mutex operation, condition wait/notify, and explicit spin
// yield. At each point the scheduler either lets the active thread continue
// or switches to another runnable thread, chosen by a seeded PRNG under a
// preemption bound (Musuvathi/Qadeer-style: most concurrency bugs need only
// a handful of preemptions, so bounding them keeps the search dense where it
// matters). The sequence of choices is hashed so the explorer can count
// *distinct* schedules, not just executions.
//
// Because execution is serialized, every run is sequentially consistent at
// the value level; weak-memory bugs are instead caught *relationally*: a
// vector-clock happens-before race detector checks every annotated plain
// access (sync::plain_read / plain_write) against the synchronization that
// the program's atomics actually established under their *declared* memory
// orders. Weaken a release store to relaxed (see mutant.hpp) and the
// publication edge disappears from the clocks — the very next dependent
// plain access on the other thread is reported as a data race, even though
// the serialized execution still computed the right values. That is the
// property that makes mutant-kill testing work without simulating stale
// loads.
//
// Blocking semantics: a thread that blocks (mutex, condition wait) leaves
// the runnable set. If no thread is runnable but some are in *timed*
// condition waits, model time "advances": all timed waiters wake with a
// timeout verdict (their predicates re-run, so a correct protocol is
// unaffected — a spurious-looking timeout surfacing a false predicate is a
// lost-wakeup bug). If no thread is runnable and none can time out, that is
// a real deadlock and the checker aborts with a thread-state dump.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/expect.hpp"
#include "src/model/vector_clock.hpp"

namespace phigraph::model {

/// Cooperative-mutex state, embedded in model::Mutex and mutated only by the
/// active thread / under the scheduler's baton lock. `release_clock` carries
/// the unlock→lock happens-before edge.
struct MutexState {
  bool locked = false;
  int owner = -1;
  VectorClock release_clock;
};

class Scheduler {
 public:
  static Scheduler& instance() {
    static Scheduler s;
    return s;
  }

  /// Result of one serialized execution.
  struct ExecResult {
    std::uint64_t schedule_hash = 0;  // FNV over the thread-choice sequence
    long steps = 0;                   // schedule points taken
    std::string failure;              // empty = clean run
  };

  /// True on a thread currently owned by a model run — instrumentation
  /// routes through the scheduler exactly when this holds; otherwise the
  /// wrappers fall back to plain std behavior (so ordinary tests still run
  /// in a model build).
  [[nodiscard]] static bool on_model_thread() noexcept {
    return tls_id_ >= 0;
  }

  /// Run one execution of `bodies` under (seed, preemption_bound,
  /// max_steps). Not reentrant.
  ExecResult run(const std::vector<std::function<void()>>& bodies,
                 std::uint64_t seed, int preemption_bound, long max_steps) {
    PG_CHECK_MSG(!running_, "model::Scheduler::run is not reentrant");
    PG_CHECK_FMT(!bodies.empty() &&
                     bodies.size() <= static_cast<std::size_t>(kMaxModelThreads),
                 "model test needs 1..%d threads, got %zu", kMaxModelThreads,
                 bodies.size());
    running_ = true;
    n_ = static_cast<int>(bodies.size());
    preemption_bound_ = preemption_bound;
    max_steps_ = max_steps;
    rng_ = seed ^ 0x9E3779B97F4A7C15ull;
    if (rng_ == 0) rng_ = 0x2545F4914F6CDD1Dull;
    hash_ = 1469598103934665603ull;  // FNV-1a offset basis
    steps_ = 0;
    preemptions_ = 0;
    failure_.clear();
    atomic_locs_.clear();
    plain_locs_.clear();
    fence_clock_.clear();
    finished_ = 0;
    for (int t = 0; t < n_; ++t) {
      ctxs_[static_cast<std::size_t>(t)] = ThreadCtx{};
      ctxs_[static_cast<std::size_t>(t)].id = t;
      // Seed each thread's own clock component so epoch 0 means "never".
      ctxs_[static_cast<std::size_t>(t)].clock.tick(t);
    }
    {
      std::lock_guard<std::mutex> l(gmu_);
      active_ = static_cast<int>(rng_below(static_cast<std::uint32_t>(n_)));
      record_choice(active_);
    }
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n_));
    for (int t = 0; t < n_; ++t)
      threads.emplace_back([this, t, &bodies] { thread_main(t, bodies[t]); });
    {
      std::unique_lock<std::mutex> l(gmu_);
      gcv_.wait(l, [&] { return finished_ == n_; });
    }
    for (auto& th : threads) th.join();
    running_ = false;
    return ExecResult{hash_, steps_, failure_};
  }

  // ---- instrumentation entry points (model threads only) -------------------

  void atomic_load(const void* addr, std::memory_order mo) {
    schedule_point(false);
    AtomicLoc& loc = atomic_locs_[addr];
    if (mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
        mo == std::memory_order_seq_cst)
      ctx().clock.join(loc.sync_clock);
  }

  void atomic_store(const void* addr, std::memory_order mo) {
    schedule_point(false);
    AtomicLoc& loc = atomic_locs_[addr];
    ThreadCtx& me = ctx();
    me.clock.tick(me.id);
    if (mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
        mo == std::memory_order_seq_cst) {
      // A (release) store heads a fresh release sequence: under the
      // serialized (SC-at-values) execution the next acquire load reads
      // *this* store, so it synchronizes with exactly this clock.
      loc.sync_clock = me.clock;
    } else {
      // A relaxed store publishes nothing — later acquire loads of this
      // value establish no happens-before. This is the edge the ordering
      // mutants sever.
      loc.sync_clock.clear();
    }
  }

  /// Read-modify-write (exchange, fetch_add, successful CAS): the acquire
  /// side joins the location clock in; the release side joins the thread
  /// clock out. A relaxed RMW leaves the location clock untouched — it
  /// continues the previous store's release sequence without contributing.
  void atomic_rmw(const void* addr, std::memory_order mo) {
    schedule_point(false);
    AtomicLoc& loc = atomic_locs_[addr];
    ThreadCtx& me = ctx();
    if (mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
        mo == std::memory_order_seq_cst)
      me.clock.join(loc.sync_clock);
    me.clock.tick(me.id);
    if (mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
        mo == std::memory_order_seq_cst)
      loc.sync_clock.join(me.clock);
  }

  /// Stand-alone fence, modeled conservatively through one global clock.
  void fence(std::memory_order mo) {
    schedule_point(false);
    ThreadCtx& me = ctx();
    if (mo != std::memory_order_release) me.clock.join(fence_clock_);
    me.clock.tick(me.id);
    if (mo != std::memory_order_acquire) fence_clock_.join(me.clock);
  }

  void plain_read(const void* addr, const char* what) {
    ThreadCtx& me = ctx();
    PlainLoc& loc = plain_locs_[addr];
    check_read_after_write(loc, me, what);
    loc.r_clk[static_cast<std::size_t>(me.id)] = me.clock.at(me.id);
    loc.what = what;
  }

  /// Validated publication read (seqlock pattern): checks that the last
  /// write happens-before this read, but records no read epoch — the
  /// protocol allows the writer to overwrite concurrently with *discarded*
  /// reads, so a write-after-read report here would be a false positive.
  void plain_read_published(const void* addr, const char* what) {
    check_read_after_write(plain_locs_[addr], ctx(), what);
  }

  void plain_write(const void* addr, const char* what) {
    ThreadCtx& me = ctx();
    PlainLoc& loc = plain_locs_[addr];
    if (loc.w_tid >= 0 && loc.w_tid != me.id &&
        !me.clock.covers(loc.w_tid, loc.w_clk))
      report_race("write", me.id, "write", loc.w_tid, what, loc.what);
    for (int u = 0; u < n_; ++u) {
      const std::uint32_t r = loc.r_clk[static_cast<std::size_t>(u)];
      if (u != me.id && r != 0 && !me.clock.covers(u, r))
        report_race("write", me.id, "read", u, what, loc.what);
    }
    me.clock.tick(me.id);
    loc.w_tid = me.id;
    loc.w_clk = me.clock.at(me.id);
    loc.what = what;
    loc.r_clk.fill(0);
  }

  /// Voluntary yield from a spin loop: hands the baton to another runnable
  /// thread if one exists (not charged against the preemption budget —
  /// without this, a cooperative spinner would starve the thread it waits
  /// on forever).
  void yield_spin() { schedule_point(true); }

  // ---- cooperative mutex / condition variable ------------------------------

  void mutex_lock(MutexState& m) {
    schedule_point(false);
    ThreadCtx& me = ctx();
    std::unique_lock<std::mutex> l(gmu_);
    while (m.locked) {
      me.state = ThreadState::kBlockedMutex;
      me.waiting_mutex = &m;
      switch_to_someone_locked(l, me);
      me.waiting_mutex = nullptr;
    }
    m.locked = true;
    m.owner = me.id;
    me.clock.join(m.release_clock);  // unlock -> lock edge
    me.clock.tick(me.id);
  }

  bool mutex_try_lock(MutexState& m) {
    schedule_point(false);
    ThreadCtx& me = ctx();
    std::lock_guard<std::mutex> l(gmu_);
    if (m.locked) return false;
    m.locked = true;
    m.owner = me.id;
    me.clock.join(m.release_clock);
    me.clock.tick(me.id);
    return true;
  }

  void mutex_unlock(MutexState& m) {
    schedule_point(false);
    ThreadCtx& me = ctx();
    std::lock_guard<std::mutex> l(gmu_);
    PG_CHECK_MSG(m.locked && m.owner == me.id,
                 "model::Mutex unlocked by a thread that does not hold it");
    me.clock.tick(me.id);
    m.release_clock.join(me.clock);  // publish to the next acquirer
    m.locked = false;
    m.owner = -1;
    for (int t = 0; t < n_; ++t) {
      ThreadCtx& u = ctxs_[static_cast<std::size_t>(t)];
      if (u.state == ThreadState::kBlockedMutex && u.waiting_mutex == &m)
        u.state = ThreadState::kRunnable;
    }
  }

  /// Declare intent to wait on `cv` *before* releasing the caller-held lock,
  /// so a notify landing between the unlock and cv_block() is not lost.
  void cv_arm(const void* cv) {
    std::lock_guard<std::mutex> l(gmu_);
    ThreadCtx& me = ctx();
    me.waiting_cv = cv;
    me.cv_notified = false;
  }

  /// Block until notified or (for timed waits) until model time advances
  /// because nothing else can run. Returns true on timeout.
  bool cv_block(const void* cv, bool timed) {
    ThreadCtx& me = ctx();
    std::unique_lock<std::mutex> l(gmu_);
    bump_step_locked();
    record_choice(me.id);
    if (me.cv_notified) {  // notify raced ahead during the unlock
      me.cv_notified = false;
      me.waiting_cv = nullptr;
      return false;
    }
    PG_CHECK(me.waiting_cv == cv);
    me.state = ThreadState::kBlockedCv;
    me.cv_timed = timed;
    me.cv_timed_out = false;
    switch_to_someone_locked(l, me);
    me.waiting_cv = nullptr;
    me.cv_notified = false;
    const bool timed_out = me.cv_timed_out;
    me.cv_timed_out = false;
    return timed_out;
  }

  void cv_notify(const void* cv, bool all) {
    schedule_point(false);
    std::lock_guard<std::mutex> l(gmu_);
    std::array<int, kMaxModelThreads> cand{};
    int ncand = 0;
    for (int t = 0; t < n_; ++t) {
      ThreadCtx& u = ctxs_[static_cast<std::size_t>(t)];
      if (u.waiting_cv == cv &&
          (u.state == ThreadState::kBlockedCv ||
           u.state == ThreadState::kRunnable))
        cand[static_cast<std::size_t>(ncand++)] = t;
    }
    if (ncand == 0) return;
    const int first =
        all ? 0 : static_cast<int>(rng_below(static_cast<std::uint32_t>(ncand)));
    const int last = all ? ncand - 1 : first;
    for (int i = first; i <= last; ++i) {
      ThreadCtx& u = ctxs_[static_cast<std::size_t>(cand[static_cast<std::size_t>(i)])];
      if (u.state == ThreadState::kBlockedCv) {
        u.state = ThreadState::kRunnable;
        u.cv_timed_out = false;
      }
      u.cv_notified = true;  // covers the armed-but-not-yet-blocked window
    }
  }

 private:
  enum class ThreadState : std::uint8_t {
    kRunnable = 0,
    kBlockedMutex,
    kBlockedCv,
    kFinished,
  };

  struct ThreadCtx {
    int id = -1;
    ThreadState state = ThreadState::kRunnable;
    VectorClock clock;
    MutexState* waiting_mutex = nullptr;
    const void* waiting_cv = nullptr;
    bool cv_timed = false;
    bool cv_notified = false;
    bool cv_timed_out = false;
  };

  struct AtomicLoc {
    VectorClock sync_clock;
  };

  struct PlainLoc {
    int w_tid = -1;
    std::uint32_t w_clk = 0;
    const char* what = nullptr;
    std::array<std::uint32_t, kMaxModelThreads> r_clk{};
  };

  Scheduler() = default;

  ThreadCtx& ctx() noexcept {
    return ctxs_[static_cast<std::size_t>(tls_id_)];
  }

  void thread_main(int tid, const std::function<void()>& body) {
    tls_id_ = tid;
    {
      std::unique_lock<std::mutex> l(gmu_);
      gcv_.wait(l, [&] { return active_ == tid; });
    }
    try {
      body();
    } catch (const std::exception& e) {
      record_failure(std::string("uncaught exception in model thread ") +
                     std::to_string(tid) + ": " + e.what());
    } catch (...) {
      record_failure("uncaught non-std exception in model thread " +
                     std::to_string(tid));
    }
    {
      std::unique_lock<std::mutex> l(gmu_);
      ctxs_[static_cast<std::size_t>(tid)].state = ThreadState::kFinished;
      ++finished_;
      if (finished_ == n_) {
        gcv_.notify_all();
      } else {
        const int next = pick_next_locked(-1);
        active_ = next;
        record_choice(next);
        gcv_.notify_all();
      }
    }
    tls_id_ = -1;
  }

  /// The heart: one schedule point. `force_switch` hands the baton over if
  /// any other thread is runnable (spin yields); otherwise the seeded PRNG
  /// decides, bounded by the preemption budget.
  void schedule_point(bool force_switch) {
    ThreadCtx& me = ctx();
    std::unique_lock<std::mutex> l(gmu_);
    bump_step_locked();
    bool preempt = false;
    if (!force_switch && preemptions_ < preemption_bound_ &&
        rng_below(100) < 25)
      preempt = true;
    if (force_switch || preempt) {
      const int next = pick_runnable_other_locked(me.id);
      if (next >= 0) {
        if (preempt) ++preemptions_;
        active_ = next;
        record_choice(next);
        gcv_.notify_all();
        gcv_.wait(l, [&] { return active_ == me.id; });
        return;
      }
    }
    record_choice(me.id);
  }

  /// Caller holds gmu_ and has already left the runnable set. Picks the next
  /// thread (firing condition-wait timeouts / detecting deadlock if nothing
  /// is runnable), then parks until the baton comes back.
  void switch_to_someone_locked(std::unique_lock<std::mutex>& l,
                                ThreadCtx& me) {
    const int next = pick_next_locked(-1);
    active_ = next;
    record_choice(next);
    gcv_.notify_all();
    gcv_.wait(l, [&] { return active_ == me.id; });
  }

  int pick_runnable_other_locked(int exclude) {
    std::array<int, kMaxModelThreads> r{};
    int nr = 0;
    for (int t = 0; t < n_; ++t)
      if (t != exclude &&
          ctxs_[static_cast<std::size_t>(t)].state == ThreadState::kRunnable)
        r[static_cast<std::size_t>(nr++)] = t;
    if (nr == 0) return -1;
    return r[rng_below(static_cast<std::uint32_t>(nr))];
  }

  int pick_next_locked(int exclude) {
    int next = pick_runnable_other_locked(exclude);
    if (next >= 0) return next;
    // Nothing runnable: advance model time — every *timed* condition waiter
    // wakes with a timeout verdict (predicates re-run on the other side).
    bool fired = false;
    for (int t = 0; t < n_; ++t) {
      ThreadCtx& u = ctxs_[static_cast<std::size_t>(t)];
      if (u.state == ThreadState::kBlockedCv && u.cv_timed) {
        u.state = ThreadState::kRunnable;
        u.cv_timed_out = true;
        fired = true;
      }
    }
    if (fired) {
      next = pick_runnable_other_locked(exclude);
      if (next >= 0) return next;
    }
    dump_and_abort("deadlock: no runnable thread and no timed waiter");
  }

  void bump_step_locked() {
    if (++steps_ > max_steps_)
      dump_and_abort("step budget exceeded — livelock in the modeled code?");
  }

  [[noreturn]] void dump_and_abort(const char* why) {
    std::fprintf(stderr, "phigraph model checker: %s\n", why);
    for (int t = 0; t < n_; ++t) {
      const ThreadCtx& u = ctxs_[static_cast<std::size_t>(t)];
      const char* s = u.state == ThreadState::kRunnable      ? "runnable"
                      : u.state == ThreadState::kBlockedMutex ? "blocked-mutex"
                      : u.state == ThreadState::kBlockedCv    ? "blocked-cv"
                                                              : "finished";
      std::fprintf(stderr, "  thread %d: %s%s\n", t, s,
                   u.cv_timed ? " (timed)" : "");
    }
    std::fprintf(stderr, "  steps=%ld hash=%llu\n", steps_,
                 static_cast<unsigned long long>(hash_));
    std::fflush(stderr);
    std::abort();
  }

  void check_read_after_write(PlainLoc& loc, ThreadCtx& me, const char* what) {
    if (loc.w_tid >= 0 && loc.w_tid != me.id &&
        !me.clock.covers(loc.w_tid, loc.w_clk))
      report_race("read", me.id, "write", loc.w_tid, what, loc.what);
  }

  void report_race(const char* op, int tid, const char* prior_op,
                   int prior_tid, const char* what, const char* prior_what) {
    std::string msg = "data race on '";
    msg += what != nullptr ? what : "?";
    msg += "': ";
    msg += op;
    msg += " by thread ";
    msg += std::to_string(tid);
    msg += " is not ordered after ";
    msg += prior_op;
    msg += " by thread ";
    msg += std::to_string(prior_tid);
    if (prior_what != nullptr && what != nullptr &&
        std::string(prior_what) != what) {
      msg += " (earlier access annotated '";
      msg += prior_what;
      msg += "')";
    }
    record_failure(std::move(msg));
  }

  void record_failure(std::string msg) {
    if (failure_.empty()) failure_ = std::move(msg);
  }

  std::uint64_t rng_next() noexcept {
    std::uint64_t x = rng_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rng_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  std::uint32_t rng_below(std::uint32_t n) noexcept {
    return static_cast<std::uint32_t>(rng_next() % n);
  }

  void record_choice(int tid) noexcept {
    hash_ = (hash_ ^ static_cast<std::uint64_t>(tid + 1)) * 1099511628211ull;
  }

  static thread_local int tls_id_;

  // Baton: gmu_/gcv_ serialize the virtual threads; every piece of scheduler
  // and race-detector state below is mutated only by the active thread (or
  // under gmu_ in the switch paths), so the baton hand-off orders it all.
  std::mutex gmu_;
  std::condition_variable gcv_;
  int active_ = -1;
  int n_ = 0;
  int finished_ = 0;
  bool running_ = false;
  std::array<ThreadCtx, kMaxModelThreads> ctxs_{};

  std::uint64_t rng_ = 1;
  std::uint64_t hash_ = 0;
  long steps_ = 0;
  long max_steps_ = 200000;
  int preemptions_ = 0;
  int preemption_bound_ = 3;
  std::string failure_;

  std::unordered_map<const void*, AtomicLoc> atomic_locs_;
  std::unordered_map<const void*, PlainLoc> plain_locs_;
  VectorClock fence_clock_;
};

inline thread_local int Scheduler::tls_id_ = -1;

}  // namespace phigraph::model
