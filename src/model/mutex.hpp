// Cooperative mutex + condition variable for the model build.
//
// sync::Mutex / sync::CondVar resolve to these under PHIGRAPH_MODEL, so the
// monitor-based rendezvous code (Exchange, AllToAll) runs under the model
// scheduler unchanged: lock/unlock are schedule points carrying the
// unlock->lock happens-before edge, waits block cooperatively, and *timed*
// waits time out exactly when model time advances — i.e. when no thread is
// runnable (see scheduler.hpp). Real wall-clock deadlines are ignored on
// model threads: model time is abstract, and because wait_until re-checks
// the predicate on timeout, a correct protocol returns the same result it
// would have produced with a real clock.
//
// Off a model thread both classes fall back to the plain std primitives, so
// a model build behaves like a default build everywhere except inside an
// exploration.
#pragma once

#include <condition_variable>
#include <mutex>

#include "src/model/scheduler.hpp"

namespace phigraph::model {

class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    if (Scheduler::on_model_thread())
      Scheduler::instance().mutex_lock(state_);
    else
      real_.lock();
  }

  bool try_lock() {
    if (Scheduler::on_model_thread())
      return Scheduler::instance().mutex_try_lock(state_);
    return real_.try_lock();
  }

  void unlock() {
    if (Scheduler::on_model_thread())
      Scheduler::instance().mutex_unlock(state_);
    else
      real_.unlock();
  }

 private:
  std::mutex real_;
  MutexState state_;
};

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() {
    if (Scheduler::on_model_thread())
      Scheduler::instance().cv_notify(this, /*all=*/false);
    else
      real_.notify_one();
  }

  void notify_all() {
    if (Scheduler::on_model_thread())
      Scheduler::instance().cv_notify(this, /*all=*/true);
    else
      real_.notify_all();
  }

  template <typename Lock, typename Pred>
  void wait(Lock& l, Pred pred) {
    if (!Scheduler::on_model_thread()) {
      real_.wait(l, pred);
      return;
    }
    while (!pred()) wait_core(l, /*timed=*/false);
  }

  /// Predicate-looped timed wait (the only timed form the runtime uses).
  /// Returns pred() after a timeout, true otherwise — std semantics.
  template <typename Lock, typename TimePoint, typename Pred>
  bool wait_until(Lock& l, const TimePoint& until, Pred pred) {
    if (!Scheduler::on_model_thread()) return real_.wait_until(l, until, pred);
    while (!pred()) {
      if (wait_core(l, /*timed=*/true)) return pred();  // model timeout
    }
    return true;
  }

 private:
  /// One blocking round on a model thread: arm, release the caller's lock,
  /// park, re-acquire. Arming *before* the unlock closes the lost-wakeup
  /// window — a notify landing during the unlock's schedule point marks
  /// this thread notified and cv_block returns immediately. Returns true on
  /// a model timeout.
  template <typename Lock>
  bool wait_core(Lock& l, bool timed) {
    Scheduler& s = Scheduler::instance();
    s.cv_arm(this);
    l.unlock();
    const bool timed_out = s.cv_block(this, timed);
    l.lock();
    return timed_out;
  }

  std::condition_variable_any real_;
};

}  // namespace phigraph::model
