// Umbrella header for the PHIGRAPH_MODEL concurrency model checker.
//
// Subsystem map (see DESIGN.md §11 for the full methodology):
//   vector_clock.hpp  happens-before clocks for the race detector
//   scheduler.hpp     cooperative baton scheduler + HB race detection
//   atomic.hpp        model::Atomic<T>, model::fence, plain-access hooks
//   mutex.hpp         cooperative model::Mutex / model::CondVar
//   mutant.hpp        tag-based memory-order mutants (PG_SYNC_ORDER hook)
//   explore.hpp       seeded, preemption-bounded schedule exploration
//
// Production code never includes this directly — it goes through
// src/common/sync.hpp, whose aliases resolve here only when PHIGRAPH_MODEL
// is defined.
#pragma once

#include "src/model/atomic.hpp"
#include "src/model/explore.hpp"
#include "src/model/mutant.hpp"
#include "src/model/mutex.hpp"
#include "src/model/scheduler.hpp"
#include "src/model/vector_clock.hpp"
