// model::Atomic<T> — the instrumented std::atomic drop-in the sync::Atomic
// alias resolves to under PHIGRAPH_MODEL.
//
// On a model thread every operation is a schedule point plus a happens-
// before clock update under the operation's *declared* memory order (see
// scheduler.hpp); the value operation itself then runs on the embedded
// std::atomic — trivially race-free because the scheduler serializes the
// virtual threads. Off a model thread (engine code running in a model build
// but outside an exploration) everything falls through to std::atomic
// directly, so the model build stays fully functional for ordinary tests.
#pragma once

#include <atomic>

#include "src/model/scheduler.hpp"

namespace phigraph::model {

template <typename T>
class Atomic {
 public:
  constexpr Atomic() noexcept : v_{} {}
  constexpr Atomic(T desired) noexcept : v_(desired) {}  // NOLINT(google-explicit-constructor): mirrors std::atomic
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const noexcept {
    if (Scheduler::on_model_thread()) Scheduler::instance().atomic_load(&v_, mo);
    return v_.load(mo);
  }

  void store(T desired,
             std::memory_order mo = std::memory_order_seq_cst) noexcept {
    if (Scheduler::on_model_thread())
      Scheduler::instance().atomic_store(&v_, mo);
    v_.store(desired, mo);
  }

  T exchange(T desired,
             std::memory_order mo = std::memory_order_seq_cst) noexcept {
    if (Scheduler::on_model_thread()) Scheduler::instance().atomic_rmw(&v_, mo);
    return v_.exchange(desired, mo);
  }

  T fetch_add(T arg, std::memory_order mo = std::memory_order_seq_cst) noexcept {
    if (Scheduler::on_model_thread()) Scheduler::instance().atomic_rmw(&v_, mo);
    return v_.fetch_add(arg, mo);
  }

  T fetch_sub(T arg, std::memory_order mo = std::memory_order_seq_cst) noexcept {
    if (Scheduler::on_model_thread()) Scheduler::instance().atomic_rmw(&v_, mo);
    return v_.fetch_sub(arg, mo);
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst) noexcept {
    // Instrumented as an RMW under `mo` whether it succeeds or fails; the
    // failure path then over-approximates an acquire load, which can only
    // add happens-before edges that the success order already implies.
    if (Scheduler::on_model_thread()) Scheduler::instance().atomic_rmw(&v_, mo);
    return v_.compare_exchange_strong(expected, desired, mo,
                                      failure_order(mo));
  }

  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst) noexcept {
    if (Scheduler::on_model_thread()) Scheduler::instance().atomic_rmw(&v_, mo);
    return v_.compare_exchange_weak(expected, desired, mo, failure_order(mo));
  }

 private:
  static constexpr std::memory_order failure_order(
      std::memory_order mo) noexcept {
    return mo == std::memory_order_acq_rel ? std::memory_order_acquire
           : mo == std::memory_order_release ? std::memory_order_relaxed
                                             : mo;
  }

  mutable std::atomic<T> v_;
};

/// Instrumented stand-alone fence (std::atomic_thread_fence drop-in).
inline void fence(std::memory_order mo) noexcept {
  if (Scheduler::on_model_thread()) Scheduler::instance().fence(mo);
  std::atomic_thread_fence(mo);
}

/// Annotate a plain (non-atomic) shared access for the race detector.
/// No-ops off a model thread.
inline void plain_read(const void* addr, const char* what) {
  if (Scheduler::on_model_thread())
    Scheduler::instance().plain_read(addr, what);
}

inline void plain_write(const void* addr, const char* what) {
  if (Scheduler::on_model_thread())
    Scheduler::instance().plain_write(addr, what);
}

inline void plain_read_published(const void* addr, const char* what) {
  if (Scheduler::on_model_thread())
    Scheduler::instance().plain_read_published(addr, what);
}

/// Spin-loop yield: on a model thread, hand the baton over (a cooperative
/// spinner would otherwise starve the thread it is waiting for); elsewhere,
/// yield the OS timeslice.
inline void yield_spin() {
  if (Scheduler::on_model_thread())
    Scheduler::instance().yield_spin();
  else
    std::this_thread::yield();
}

}  // namespace phigraph::model
