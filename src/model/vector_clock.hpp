// Vector clocks for the model checker's happens-before race detector.
//
// Each virtual thread carries a VectorClock; synchronization operations
// (release stores, acquire loads, mutex hand-offs) join clocks so that
// clock_a[t] >= clock_b[t] for all t exactly when everything thread b had
// done at the recorded point happens-before thread a's present. Plain
// (non-atomic) shared accesses are then checked FastTrack-style: a write
// must happen-after every prior access, a read must happen-after the last
// write.
#pragma once

#include <array>
#include <cstdint>

namespace phigraph::model {

/// Upper bound on virtual threads per explored test case. Model tests drive
/// 2-4 threads (more threads explode the schedule space far before this
/// limit constrains anyone).
inline constexpr int kMaxModelThreads = 8;

class VectorClock {
 public:
  constexpr VectorClock() = default;

  void clear() noexcept { c_.fill(0); }

  [[nodiscard]] std::uint32_t at(int tid) const noexcept {
    return c_[static_cast<std::size_t>(tid)];
  }

  void tick(int tid) noexcept { ++c_[static_cast<std::size_t>(tid)]; }

  /// Pointwise max: afterwards *this happens-after everything `o` recorded.
  void join(const VectorClock& o) noexcept {
    for (int i = 0; i < kMaxModelThreads; ++i)
      if (o.c_[static_cast<std::size_t>(i)] > c_[static_cast<std::size_t>(i)])
        c_[static_cast<std::size_t>(i)] = o.c_[static_cast<std::size_t>(i)];
  }

  /// True when the epoch (tid, clk) happens-before (or equals) this clock's
  /// view — i.e. this thread has synchronized with that point.
  [[nodiscard]] bool covers(int tid, std::uint32_t clk) const noexcept {
    return c_[static_cast<std::size_t>(tid)] >= clk;
  }

 private:
  std::array<std::uint32_t, kMaxModelThreads> c_{};
};

}  // namespace phigraph::model
