// Connected Components via label propagation — an extension application
// from the paper's motivating graph-mining class (its ref. [11] is HCS
// connected components). Demonstrates that new algorithms drop into the
// framework with just the three user-defined functions.
//
// Every vertex starts labeled with its own id and repeatedly adopts the
// minimum label among its neighbors' messages (SIMD min-reduction, like
// SSSP). On an undirected (or symmetrized) graph the labels converge to the
// minimum vertex id of each component.
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/common/types.hpp"
#include "src/core/program_traits.hpp"

namespace phigraph::apps {

class ConnectedComponents {
 public:
  using vertex_value_t = std::int32_t;  // component label (min vertex id)
  using message_t = std::int32_t;
  static constexpr bool kAllActive = false;
  static constexpr bool kNeedsReduction = true;
  static constexpr bool kSimdReduce = true;
  static constexpr core::CombinerKind kCombiner = core::CombinerKind::kMin;
  // Direction-optimizing pull: adopting the min label over frontier
  // in-neighbors is the same exact min-reduction the push path computes.
  static constexpr bool kPullable = true;

  [[nodiscard]] std::int32_t identity() const noexcept {
    return std::numeric_limits<std::int32_t>::max();
  }
  [[nodiscard]] std::int32_t combine(std::int32_t a,
                                     std::int32_t b) const noexcept {
    return std::min(a, b);
  }

  void init_vertex(vid_t global, std::int32_t& value, bool& active,
                   const core::InitInfo& /*info*/) const noexcept {
    value = static_cast<std::int32_t>(global);
    active = true;  // every vertex advertises its label once
  }

  template <typename View, typename Sink>
  void generate_messages(vid_t u, const View& g, Sink& sink) const {
    const std::int32_t label = g.vertex_value[u];
    for (eid_t i = g.vertices[u]; i < g.vertices[u + 1]; ++i)
      sink.send_messages(g.edges[i], label);
  }

  template <typename VArr>
  void process_messages(VArr& vmsgs) const {
    auto res = vmsgs[0];
    for (std::size_t i = 1; i < vmsgs.size(); ++i) res = min(res, vmsgs[i]);
    vmsgs[0] = res;
  }

  // Pull operators: a frontier in-neighbor offers exactly its label,
  // whatever the edge weight.
  [[nodiscard]] std::int32_t pull_message(std::int32_t src_label,
                                          float /*weight*/) const noexcept {
    return src_label;
  }
  template <typename V, typename VF>
  [[nodiscard]] V pull_message_vec(const V& src_label,
                                   const VF& /*weight*/) const noexcept {
    return src_label;
  }

  template <typename View>
  bool update_vertex(const std::int32_t& msg, View& g, vid_t u) const noexcept {
    if (msg < g.vertex_value[u]) {
      g.vertex_value[u] = msg;
      return true;
    }
    return false;
  }
};

}  // namespace phigraph::apps
