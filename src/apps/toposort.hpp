// Topological sorting vertex program (paper §V-B).
//
// "initially, vertices with zero in-degree are set as active ... In each
//  iteration, active vertices send messages containing value 1 to their
//  neighbors, and set themselves as inactive. Vertices receiving messages
//  sum up the messages, and decrease their in-degree value using the sum.
//  If a vertex's in-degree becomes 0 after the subtraction, it sets itself
//  as active."
//
// The linear ordering is recoverable from `order` (the superstep at which a
// vertex's remaining in-degree reached zero): sorting by order — ties broken
// arbitrarily — is a valid topological order, since every edge strictly
// increases it.
#pragma once

#include <cstdint>

#include "src/common/types.hpp"
#include "src/core/program_traits.hpp"

namespace phigraph::apps {

struct TopoValue {
  std::int32_t remaining = 0;  // in-degree not yet consumed
  std::int32_t order = -1;     // topological level; -1 = not yet ordered
};

class TopoSort {
 public:
  using vertex_value_t = TopoValue;
  using message_t = std::int32_t;
  static constexpr bool kAllActive = false;
  static constexpr bool kNeedsReduction = true;
  static constexpr bool kSimdReduce = true;

  [[nodiscard]] std::int32_t identity() const noexcept { return 0; }
  [[nodiscard]] std::int32_t combine(std::int32_t a, std::int32_t b) const noexcept {
    return a + b;
  }

  void init_vertex(vid_t /*global*/, TopoValue& value, bool& active,
                   const core::InitInfo& info) const noexcept {
    value.remaining = static_cast<std::int32_t>(info.in_degree);
    value.order = info.in_degree == 0 ? 0 : -1;
    active = info.in_degree == 0;
  }

  template <typename View, typename Sink>
  void generate_messages(vid_t u, const View& g, Sink& sink) const {
    for (eid_t i = g.vertices[u]; i < g.vertices[u + 1]; ++i)
      sink.send_messages(g.edges[i], std::int32_t{1});
    // The engine's BSP semantics deactivate every sender after generation,
    // which is exactly the "set themselves as inactive" step.
  }

  /// SIMD sum of in-degree decrements.
  template <typename VArr>
  void process_messages(VArr& vmsgs) const {
    auto res = vmsgs[0];
    for (std::size_t i = 1; i < vmsgs.size(); ++i) res = res + vmsgs[i];
    vmsgs[0] = res;
  }

  template <typename View>
  bool update_vertex(const std::int32_t& msg, View& g, vid_t u) const noexcept {
    auto& v = g.vertex_value[u];
    v.remaining -= msg;
    if (v.remaining == 0) {
      v.order = g.superstep + 1;
      return true;
    }
    return false;
  }
};

}  // namespace phigraph::apps
