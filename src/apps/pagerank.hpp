// PageRank vertex program (paper §V-B).
//
// "the message generation sub-step propagates the PageRank value of each
//  vertex to its neighbors, by dividing the value by the number of outbound
//  edges. The message reduction sub-step sums up the received PageRank
//  values from the neighbors, utilizing SIMD processing. The vertex update
//  sub-step updates each vertex's PageRank value using the sum."
#pragma once

#include "src/common/types.hpp"
#include "src/core/program_traits.hpp"

namespace phigraph::apps {

class PageRank {
 public:
  using vertex_value_t = float;
  using message_t = float;
  static constexpr bool kAllActive = true;  // every vertex sends, every round
  static constexpr bool kNeedsReduction = true;
  static constexpr bool kSimdReduce = true;
  static constexpr core::CombinerKind kCombiner = core::CombinerKind::kSum;

  explicit PageRank(float damping = 0.85f) : damping_(damping) {}

  [[nodiscard]] float identity() const noexcept { return 0.0f; }
  [[nodiscard]] float combine(float a, float b) const noexcept { return a + b; }

  void init_vertex(vid_t /*global*/, float& value, bool& active,
                   const core::InitInfo& /*info*/) const noexcept {
    value = 1.0f;
    active = true;
  }

  template <typename View, typename Sink>
  void generate_messages(vid_t u, const View& g, Sink& sink) const {
    const eid_t deg = g.vertices[u + 1] - g.vertices[u];
    if (deg == 0) return;
    const float share = g.vertex_value[u] / static_cast<float>(deg);
    for (eid_t i = g.vertices[u]; i < g.vertices[u + 1]; ++i)
      sink.send_messages(g.edges[i], share);
  }

  /// SIMD sum over the vector message array (paper Listing 1 structure).
  template <typename VArr>
  void process_messages(VArr& vmsgs) const {
    auto res = vmsgs[0];
    for (std::size_t i = 1; i < vmsgs.size(); ++i) res = res + vmsgs[i];
    vmsgs[0] = res;
  }

  template <typename View>
  bool update_vertex(const float& msg, View& g, vid_t u) const noexcept {
    g.vertex_value[u] = (1.0f - damping_) + damping_ * msg;
    return true;
  }

 private:
  float damping_;
};

}  // namespace phigraph::apps
