// Breadth-First Search vertex program (paper §V-B).
//
// "initially, the source vertex is set as active, and its vertex value,
//  level, is 0, while other vertices are inactive. In each iteration, active
//  vertices send their level value plus 1 as messages to neighbors.
//  Unvisited vertices which receive messages set their level, using any
//  message that is received ... message reduction is not needed."
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/common/types.hpp"
#include "src/core/program_traits.hpp"

namespace phigraph::apps {

class Bfs {
 public:
  using vertex_value_t = std::int32_t;  // level; -1 = unvisited
  using message_t = std::int32_t;
  static constexpr bool kAllActive = false;
  static constexpr bool kNeedsReduction = false;  // any message will do
  static constexpr bool kSimdReduce = false;
  static constexpr core::CombinerKind kCombiner = core::CombinerKind::kMin;
  // Direction-optimizing pull: an unvisited vertex adopts level + 1 from any
  // frontier in-neighbor ("using any message that is received") — the pull
  // kernel may stop at the first hit, and visited vertices are filtered out
  // before their in-edges are scanned.
  static constexpr bool kPullable = true;

  explicit Bfs(vid_t source) : source_(source) {}

  [[nodiscard]] std::int32_t identity() const noexcept {
    return std::numeric_limits<std::int32_t>::max();
  }
  // Used only for remote combining: all same-superstep BFS messages carry
  // the same level, but min keeps the semantics tight anyway.
  [[nodiscard]] std::int32_t combine(std::int32_t a, std::int32_t b) const noexcept {
    return std::min(a, b);
  }

  void init_vertex(vid_t global, std::int32_t& value, bool& active,
                   const core::InitInfo& /*info*/) const noexcept {
    value = global == source_ ? 0 : -1;
    active = global == source_;
  }

  template <typename View, typename Sink>
  void generate_messages(vid_t u, const View& g, Sink& sink) const {
    const std::int32_t next_level = g.vertex_value[u] + 1;
    for (eid_t i = g.vertices[u]; i < g.vertices[u + 1]; ++i)
      sink.send_messages(g.edges[i], next_level);
  }

  template <typename VArr>
  void process_messages(VArr& /*vmsgs*/) const {
    // No reduction sub-step for BFS.
  }

  // Pull operators: what generate_messages(src) would have sent along the
  // (unweighted) edge, plus the candidate filter that makes bottom-up scans
  // skip already-levelled vertices entirely.
  [[nodiscard]] std::int32_t pull_message(std::int32_t src_level,
                                          float /*weight*/) const noexcept {
    return src_level + 1;
  }
  [[nodiscard]] bool pull_candidate(std::int32_t value) const noexcept {
    return value < 0;  // unvisited
  }

  template <typename View>
  bool update_vertex(const std::int32_t& msg, View& g, vid_t u) const noexcept {
    if (g.vertex_value[u] >= 0) return false;  // already visited
    g.vertex_value[u] = msg;
    return true;
  }

 private:
  vid_t source_;
};

}  // namespace phigraph::apps
