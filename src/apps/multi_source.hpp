// Multi-source bit-parallel vertex programs for the serving layer
// (core/query_engine.hpp).
//
// The serving trick (after Then et al.'s MS-BFS and the BFS vectorization
// line of work): pack up to 64 concurrent point queries into the lanes of
// one machine word, so a whole admission batch rides a single CSB edge scan.
// MsBfs carries one frontier-membership bit per query; a vertex's message is
// the uint64_t OR of its in-edges' masks, and one BSP run answers all 64
// BFS/reachability queries. MsSssp and MsPpr batch by value lanes instead:
// 64 float distance (resp. rank) lanes share the edge scan, with lane-wise
// min (resp. sum) reduction.
//
// Lane-exactness contract (what tests/query_differential_test.cpp enforces):
// each lane of a batched run is bit-identical to the same query run
// single-source through the ordinary apps:: programs. The arguments:
//   * MsBfs: lane l's frontier evolves one hop per superstep exactly as the
//     single-source BFS frontier does; a lane's level is the superstep of
//     first arrival, which is the same in both runs.
//   * MsSssp: lane l improves at vertex v in superstep s iff single-source
//     SSSP improves v at s (induction over supersteps), and the improving
//     value is the same float expression d + w evaluated in the same order.
//     Batching adds only re-sends of already-propagated lane values, which
//     the lane-wise min absorbs without effect.
//   * MsPpr sums float lanes, so its results are fold-order-dependent like
//     PageRank's; batched-vs-batch-of-1 equality holds under a single
//     worker, and determinism (same batch twice) holds everywhere.
//
// Tail masking: when a batch has fewer than 64 queries, the unused high
// lanes must stay dead. MsBfs masks every message with the batch's lane
// mask, and the audit build aborts if an out-of-mask bit ever appears
// (a stale tail word would silently answer queries nobody asked).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>

#include "src/common/audit.hpp"
#include "src/common/types.hpp"
#include "src/core/program_traits.hpp"

namespace phigraph::apps {

/// Lanes per batch word: one uint64_t of frontier bits (MsBfs), or one
/// 64-float block of distance/rank lanes (MsSssp / MsPpr).
inline constexpr int kMaxQueryLanes = 64;

/// Bitmask selecting the low `lanes` lanes (all 64 when lanes == 64).
[[nodiscard]] constexpr std::uint64_t lane_mask(int lanes) noexcept {
  return lanes >= kMaxQueryLanes ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << lanes) - 1;
}

/// Fixed-size source list of a batch (lanes beyond `count` are unused).
struct SourceBatch {
  std::array<vid_t, kMaxQueryLanes> source{};
  int count = 0;

  [[nodiscard]] std::uint64_t mask() const noexcept {
    return lane_mask(count);
  }
};

// ---------------------------------------------------------------------------
// MsBfs: 64 BFS / reachability queries per uint64_t frontier word.
// ---------------------------------------------------------------------------

/// Per-vertex state of a 64-lane BFS batch. `seen` accumulates which lanes
/// have reached this vertex, `frontier` holds the lanes that arrived in the
/// previous superstep (what generate/pull advertises), and `level[l]` is the
/// arrival superstep of lane l (-1 while unreached) — exactly the
/// single-source BFS level.
struct MsBfsValue {
  std::uint64_t seen = 0;
  std::uint64_t frontier = 0;
  std::array<std::int32_t, kMaxQueryLanes> level{};
};

class MsBfs {
 public:
  using vertex_value_t = MsBfsValue;
  using message_t = std::uint64_t;  // lane bitmask: "these queries reach you"
  static constexpr bool kAllActive = false;
  static constexpr bool kNeedsReduction = true;  // OR over all parents
  static constexpr bool kSimdReduce = false;
  static constexpr core::CombinerKind kCombiner = core::CombinerKind::kOr;
  // Pull direction: a candidate vertex ORs the frontier words of its
  // in-neighbors — the same word the push path would have delivered. The
  // whole batch word is masked, so a short batch never resurrects tail
  // lanes from a bottom-up scan.
  static constexpr bool kPullable = true;

  explicit MsBfs(const SourceBatch& batch)
      : sources_(batch.source),
        count_(std::min(batch.count, kMaxQueryLanes)),
        mask_(lane_mask(batch.count)) {}

  [[nodiscard]] std::uint64_t identity() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t combine(std::uint64_t a,
                                      std::uint64_t b) const noexcept {
    return a | b;
  }

  void init_vertex(vid_t global, MsBfsValue& value, bool& active,
                   const core::InitInfo& /*info*/) const noexcept {
    value.seen = 0;
    value.frontier = 0;
    value.level.fill(-1);
    for (int l = 0; l < count_; ++l)
      if (sources_[static_cast<std::size_t>(l)] == global) {
        const std::uint64_t bit = std::uint64_t{1} << l;
        value.seen |= bit;
        value.frontier |= bit;
        value.level[static_cast<std::size_t>(l)] = 0;
      }
    active = value.frontier != 0;
  }

  template <typename View, typename Sink>
  void generate_messages(vid_t u, const View& g, Sink& sink) const {
    const std::uint64_t word = g.vertex_value[u].frontier & mask_;
    if (word == 0) return;
    for (eid_t i = g.vertices[u]; i < g.vertices[u + 1]; ++i)
      sink.send_messages(g.edges[i], word);
  }

  template <typename VArr>
  void process_messages(VArr& /*vmsgs*/) const {
    // Scalar combine path (kSimdReduce == false); nothing to do here.
  }

  [[nodiscard]] std::uint64_t pull_message(const MsBfsValue& src,
                                           float /*weight*/) const noexcept {
    return src.frontier & mask_;
  }
  [[nodiscard]] bool pull_candidate(const MsBfsValue& value) const noexcept {
    return (value.seen & mask_) != mask_;  // some lane still unreached
  }

  template <typename View>
  bool update_vertex(const std::uint64_t& msg, View& g, vid_t u) const {
    // Tail-word audit: a message bit outside the batch's lane mask means a
    // stale tail word leaked through the frontier machinery.
    PG_AUDIT_FMT((msg & ~mask_) == 0, "ms-lane-mask",
                 "MsBfs message carries lanes outside the %d-lane batch "
                 "(msg=%#llx mask=%#llx)",
                 count_, static_cast<unsigned long long>(msg),
                 static_cast<unsigned long long>(mask_));
    MsBfsValue& v = g.vertex_value[u];
    const std::uint64_t fresh = msg & ~v.seen & mask_;
    v.frontier = fresh;
    if (fresh == 0) return false;
    v.seen |= fresh;
    const std::int32_t lvl = g.superstep + 1;
    std::uint64_t bits = fresh;
    while (bits != 0) {
      const int l = std::countr_zero(bits);
      v.level[static_cast<std::size_t>(l)] = lvl;
      bits &= bits - 1;
    }
    return true;
  }

  [[nodiscard]] int lanes() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t mask() const noexcept { return mask_; }

 private:
  std::array<vid_t, kMaxQueryLanes> sources_;
  int count_;
  std::uint64_t mask_;
};

// ---------------------------------------------------------------------------
// MsSssp: 64 shortest-path queries per 64-float lane block.
// ---------------------------------------------------------------------------

/// One 64-float lane block, used as both vertex value and message. Unused
/// tail lanes sit at +infinity (the min identity) and can never improve, so
/// a short batch needs no explicit masking on this path — the audit build
/// still checks the invariant in update_vertex.
struct MsLanes {
  std::array<float, kMaxQueryLanes> v{};
};

class MsSssp {
 public:
  using vertex_value_t = MsLanes;
  using message_t = MsLanes;
  static constexpr bool kAllActive = false;
  static constexpr bool kNeedsReduction = true;
  static constexpr bool kSimdReduce = false;  // struct message: scalar combine
  static constexpr core::CombinerKind kCombiner = core::CombinerKind::kCustom;
  static constexpr bool kPullable = true;

  static constexpr float kInfinity = std::numeric_limits<float>::max();

  explicit MsSssp(const SourceBatch& batch)
      : sources_(batch.source),
        count_(std::min(batch.count, kMaxQueryLanes)) {}

  [[nodiscard]] MsLanes identity() const noexcept {
    MsLanes m;
    m.v.fill(kInfinity);
    return m;
  }
  [[nodiscard]] MsLanes combine(const MsLanes& a,
                                const MsLanes& b) const noexcept {
    MsLanes r;
    for (int l = 0; l < kMaxQueryLanes; ++l)
      r.v[static_cast<std::size_t>(l)] =
          std::min(a.v[static_cast<std::size_t>(l)],
                   b.v[static_cast<std::size_t>(l)]);
    return r;
  }

  void init_vertex(vid_t global, MsLanes& value, bool& active,
                   const core::InitInfo& /*info*/) const noexcept {
    value.v.fill(kInfinity);
    active = false;
    for (int l = 0; l < count_; ++l)
      if (sources_[static_cast<std::size_t>(l)] == global) {
        value.v[static_cast<std::size_t>(l)] = 0.0f;
        active = true;
      }
  }

  template <typename View, typename Sink>
  void generate_messages(vid_t u, const View& g, Sink& sink) const {
    const MsLanes& mine = g.vertex_value[u];
    for (eid_t i = g.vertices[u]; i < g.vertices[u + 1]; ++i) {
      const float w = g.edge_value[i];
      MsLanes m;
      // FLT_MAX + w rounds back to FLT_MAX for any graph-scale weight, so
      // unreached lanes keep offering the identity.
      for (int l = 0; l < kMaxQueryLanes; ++l)
        m.v[static_cast<std::size_t>(l)] =
            mine.v[static_cast<std::size_t>(l)] + w;
      sink.send_messages(g.edges[i], m);
    }
  }

  template <typename VArr>
  void process_messages(VArr& /*vmsgs*/) const {}

  [[nodiscard]] MsLanes pull_message(const MsLanes& src,
                                     float weight) const noexcept {
    MsLanes m;
    for (int l = 0; l < kMaxQueryLanes; ++l)
      m.v[static_cast<std::size_t>(l)] =
          src.v[static_cast<std::size_t>(l)] + weight;
    return m;
  }

  template <typename View>
  bool update_vertex(const MsLanes& msg, View& g, vid_t u) const {
#if PG_AUDIT_ENABLED
    for (int l = count_; l < kMaxQueryLanes; ++l)
      PG_AUDIT_FMT(msg.v[static_cast<std::size_t>(l)] >= kInfinity,
                   "ms-lane-mask",
                   "MsSssp message improved tail lane %d of a %d-lane batch",
                   l, count_);
#endif
    MsLanes& mine = g.vertex_value[u];
    bool improved = false;
    for (int l = 0; l < count_; ++l) {
      const auto i = static_cast<std::size_t>(l);
      if (msg.v[i] < mine.v[i]) {
        mine.v[i] = msg.v[i];
        improved = true;
      }
    }
    return improved;
  }

  [[nodiscard]] int lanes() const noexcept { return count_; }

 private:
  std::array<vid_t, kMaxQueryLanes> sources_;
  int count_;
};

// ---------------------------------------------------------------------------
// MsPpr: 64 personalized-PageRank queries per lane block (kAllActive, fixed
// superstep count like PageRank; float sums, so fold-order caveats apply).
// ---------------------------------------------------------------------------

/// Vertex state: rank lanes plus the teleport bitmask (bit l set when this
/// vertex is lane l's personalization source — the restart mass returns
/// there and only there).
struct MsPprValue {
  std::uint64_t teleport = 0;
  std::array<float, kMaxQueryLanes> rank{};
};

class MsPpr {
 public:
  using vertex_value_t = MsPprValue;
  using message_t = MsLanes;
  static constexpr bool kAllActive = true;
  static constexpr bool kNeedsReduction = true;
  static constexpr bool kSimdReduce = false;
  static constexpr core::CombinerKind kCombiner = core::CombinerKind::kCustom;

  explicit MsPpr(const SourceBatch& batch, float damping = 0.85f)
      : sources_(batch.source),
        count_(std::min(batch.count, kMaxQueryLanes)),
        damping_(damping) {}

  [[nodiscard]] MsLanes identity() const noexcept { return MsLanes{}; }
  [[nodiscard]] MsLanes combine(const MsLanes& a,
                                const MsLanes& b) const noexcept {
    MsLanes r;
    for (int l = 0; l < kMaxQueryLanes; ++l)
      r.v[static_cast<std::size_t>(l)] = a.v[static_cast<std::size_t>(l)] +
                                         b.v[static_cast<std::size_t>(l)];
    return r;
  }

  void init_vertex(vid_t global, MsPprValue& value, bool& active,
                   const core::InitInfo& /*info*/) const noexcept {
    value.teleport = 0;
    value.rank.fill(0.0f);
    for (int l = 0; l < count_; ++l)
      if (sources_[static_cast<std::size_t>(l)] == global) {
        value.teleport |= std::uint64_t{1} << l;
        value.rank[static_cast<std::size_t>(l)] = 1.0f;
      }
    active = true;
  }

  template <typename View, typename Sink>
  void generate_messages(vid_t u, const View& g, Sink& sink) const {
    const eid_t deg = g.vertices[u + 1] - g.vertices[u];
    if (deg == 0) return;
    const MsPprValue& mine = g.vertex_value[u];
    MsLanes share;
    for (int l = 0; l < count_; ++l)
      share.v[static_cast<std::size_t>(l)] =
          mine.rank[static_cast<std::size_t>(l)] / static_cast<float>(deg);
    for (eid_t i = g.vertices[u]; i < g.vertices[u + 1]; ++i)
      sink.send_messages(g.edges[i], share);
  }

  template <typename VArr>
  void process_messages(VArr& /*vmsgs*/) const {}

  template <typename View>
  bool update_vertex(const MsLanes& msg, View& g, vid_t u) const noexcept {
    MsPprValue& mine = g.vertex_value[u];
    for (int l = 0; l < count_; ++l) {
      const auto i = static_cast<std::size_t>(l);
      const float teleport =
          (mine.teleport >> l) & 1u ? (1.0f - damping_) : 0.0f;
      mine.rank[i] = teleport + damping_ * msg.v[i];
    }
    return true;
  }

  [[nodiscard]] int lanes() const noexcept { return count_; }

 private:
  std::array<vid_t, kMaxQueryLanes> sources_;
  int count_;
  float damping_;
};

}  // namespace phigraph::apps
