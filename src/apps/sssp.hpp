// Single Source Shortest Paths vertex program — the paper's running example
// (§III, Listing 1). Positive weighted directed graph, Bellman-Ford style
// relaxation over BSP supersteps, SIMD min-reduction of messages.
#pragma once

#include <limits>

#include "src/common/types.hpp"
#include "src/core/program_traits.hpp"

namespace phigraph::apps {

/// min() overload so the user-style process_messages body below works for
/// both the vectorized instantiation (simd::min via ADL) and a scalar one.
inline float min(float a, float b) noexcept { return a < b ? a : b; }

class Sssp {
 public:
  using vertex_value_t = float;  // tentative distance from the source
  using message_t = float;
  static constexpr bool kAllActive = false;
  static constexpr bool kNeedsReduction = true;
  static constexpr bool kSimdReduce = true;
  static constexpr core::CombinerKind kCombiner = core::CombinerKind::kMin;
  // Direction-optimizing pull: min over (frontier in-neighbor dist + weight)
  // is exact and order-independent, so pull supersteps are bit-identical to
  // push supersteps.
  static constexpr bool kPullable = true;

  /// The paper initializes distances to "a large constant".
  static constexpr float kInfinity = std::numeric_limits<float>::max();

  explicit Sssp(vid_t source) : source_(source) {}

  [[nodiscard]] float identity() const noexcept { return kInfinity; }
  [[nodiscard]] float combine(float a, float b) const noexcept {
    return a < b ? a : b;
  }

  void init_vertex(vid_t global, float& value, bool& active,
                   const core::InitInfo& /*info*/) const noexcept {
    value = global == source_ ? 0.0f : kInfinity;
    active = global == source_;
  }

  // Listing 1, generate_messages: propagate my distance plus edge weight.
  template <typename View, typename Sink>
  void generate_messages(vid_t u, const View& g, Sink& sink) const {
    const float my_dist = g.vertex_value[u];
    for (eid_t i = g.vertices[u]; i < g.vertices[u + 1]; ++i)
      sink.send_messages(g.edges[i], my_dist + g.edge_value[i]);
  }

  // Listing 1, process_messages: SIMD min-reduce into vmsgs[0].
  template <typename VArr>
  void process_messages(VArr& vmsgs) const {
    auto res = vmsgs[0];
    for (std::size_t i = 1; i < vmsgs.size(); ++i) res = min(res, vmsgs[i]);
    vmsgs[0] = res;
  }

  // Pull operators: the message generate_messages(src) would have pushed
  // along an edge of this weight, scalar and lane-parallel.
  [[nodiscard]] float pull_message(float src_dist, float weight) const noexcept {
    return src_dist + weight;
  }
  template <typename V, typename VF>
  [[nodiscard]] V pull_message_vec(const V& src_dist, const VF& weight) const noexcept {
    return src_dist + weight;
  }

  // Listing 1, update_vertex: adopt a shorter distance and reactivate.
  template <typename View>
  bool update_vertex(const float& msg, View& g, vid_t u) const noexcept {
    if (msg < g.vertex_value[u]) {
      g.vertex_value[u] = msg;
      return true;
    }
    return false;
  }

 private:
  vid_t source_;
};

}  // namespace phigraph::apps
