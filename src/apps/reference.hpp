// Sequential reference implementations used by tests.
//
// reference_run<Program> executes the exact BSP semantics of the engine —
// same user functions, trivial sequential message delivery — so any
// divergence from DeviceEngine isolates a runtime bug (CSB routing, lane
// padding, pipelining, partitioned exchange...), not an app bug.
//
// The classical single-threaded algorithms (Dijkstra, queue BFS, Kahn) are
// also provided as *independent* ground truth for the app logic itself.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <vector>

#include "src/common/expect.hpp"
#include "src/core/graph_view.hpp"
#include "src/core/program_traits.hpp"
#include "src/graph/csr.hpp"

namespace phigraph::apps {

/// Sequential BSP execution with the same semantics as DeviceEngine.
/// Returns the final vertex values; `supersteps_out`, if given, receives the
/// number of executed supersteps.
template <core::VertexProgram Program>
std::vector<typename Program::vertex_value_t> reference_run(
    const graph::Csr& g, const Program& prog, int max_supersteps = 1000,
    int* supersteps_out = nullptr) {
  using Msg = typename Program::message_t;
  using Value = typename Program::vertex_value_t;

  const vid_t n = g.num_vertices();
  std::vector<Value> values(n);
  std::vector<std::uint8_t> active(n, 0);
  const auto in_deg = g.in_degrees();

  const bool weighted = g.has_edge_values();
  for (vid_t u = 0; u < n; ++u) {
    core::InitInfo info{in_deg[u], g.out_degree(u), 0.f};
    if (weighted)
      for (float w : g.out_edge_values(u)) info.out_weight += w;
    bool act = false;
    prog.init_vertex(u, values[u], act, info);
    active[u] = act ? 1 : 0;
  }

  core::GraphView<Value> view;
  view.vertices = g.offsets();
  view.edges = g.targets();
  view.edge_value = g.edge_values();
  view.vertex_value = values;
  std::vector<vid_t> ident(n);
  for (vid_t v = 0; v < n; ++v) ident[v] = v;
  view.in_degree = in_deg;
  view.global_id = ident;

  struct Inbox {
    Msg acc;
    bool has = false;
  };
  std::vector<Inbox> inbox(n);
  std::vector<vid_t> touched;

  struct Sink {
    std::vector<Inbox>* inbox;
    std::vector<vid_t>* touched;
    const Program* prog;
    void send_messages(vid_t dst, const Msg& m) {
      auto& slot = (*inbox)[dst];
      if (slot.has) {
        slot.acc = prog->combine(slot.acc, m);
      } else {
        slot.acc = m;
        slot.has = true;
        touched->push_back(dst);
      }
    }
    void send(vid_t dst, const Msg& m) { send_messages(dst, m); }
  };

  int s = 0;
  for (; s < max_supersteps; ++s) {
    view.superstep = s;
    Sink sink{&inbox, &touched, &prog};
    for (vid_t u = 0; u < n; ++u)
      if (Program::kAllActive || active[u]) prog.generate_messages(u, view, sink);

    std::fill(active.begin(), active.end(), 0);
    std::uint64_t next = 0;
    for (vid_t dst : touched) {
      if (prog.update_vertex(inbox[dst].acc, view, dst)) {
        active[dst] = 1;
        ++next;
      }
      inbox[dst].has = false;
    }
    touched.clear();
    if (!Program::kAllActive && next == 0) {
      ++s;
      break;
    }
  }
  if (supersteps_out) *supersteps_out = s;
  return values;
}

// ---- independent classical algorithms ---------------------------------------

/// BFS levels by queue traversal; -1 = unreachable.
inline std::vector<std::int32_t> classic_bfs(const graph::Csr& g, vid_t src) {
  std::vector<std::int32_t> level(g.num_vertices(), -1);
  std::deque<vid_t> q{src};
  level[src] = 0;
  while (!q.empty()) {
    const vid_t u = q.front();
    q.pop_front();
    for (vid_t v : g.out_neighbors(u))
      if (level[v] < 0) {
        level[v] = level[u] + 1;
        q.push_back(v);
      }
  }
  return level;
}

/// Dijkstra distances (float weights, FLT_MAX = unreachable).
inline std::vector<float> classic_dijkstra(const graph::Csr& g, vid_t src) {
  constexpr float kInf = std::numeric_limits<float>::max();
  std::vector<float> dist(g.num_vertices(), kInf);
  using Entry = std::pair<float, vid_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[src] = 0;
  pq.emplace(0.0f, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    const auto nbrs = g.out_neighbors(u);
    const auto w = g.out_edge_values(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const float nd = d + w[i];
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        pq.emplace(nd, nbrs[i]);
      }
    }
  }
  return dist;
}

/// Kahn's algorithm levels: level[v] = longest-path depth from a source.
/// Matches TopoValue::order for our BSP TopoSort.
inline std::vector<std::int32_t> classic_topo_levels(const graph::Csr& g) {
  const vid_t n = g.num_vertices();
  auto remaining = g.in_degrees();
  std::vector<std::int32_t> level(n, -1);
  std::deque<vid_t> q;
  for (vid_t v = 0; v < n; ++v)
    if (remaining[v] == 0) {
      level[v] = 0;
      q.push_back(v);
    }
  while (!q.empty()) {
    const vid_t u = q.front();
    q.pop_front();
    for (vid_t v : g.out_neighbors(u)) {
      // Kahn with level propagation: v is ordered once all in-edges are
      // consumed; its level is one past the max of its predecessors' levels.
      level[v] = std::max(level[v], level[u] + 1);
      if (--remaining[v] == 0) q.push_back(v);
    }
  }
  return level;
}

/// Sequential power-iteration PageRank with the same damping semantics as
/// the PageRank program (dangling mass simply evaporates, as in the paper's
/// formulation).
inline std::vector<float> classic_pagerank(const graph::Csr& g, int iters,
                                           float damping = 0.85f) {
  const vid_t n = g.num_vertices();
  std::vector<float> rank(n, 1.0f), incoming(n, 0.0f);
  for (int it = 0; it < iters; ++it) {
    std::fill(incoming.begin(), incoming.end(), 0.0f);
    std::vector<std::uint8_t> got(n, 0);
    for (vid_t u = 0; u < n; ++u) {
      const eid_t deg = g.out_degree(u);
      if (deg == 0) continue;
      const float share = rank[u] / static_cast<float>(deg);
      for (vid_t v : g.out_neighbors(u)) {
        incoming[v] += share;
        got[v] = 1;
      }
    }
    for (vid_t v = 0; v < n; ++v)
      if (got[v]) rank[v] = (1.0f - damping) + damping * incoming[v];
  }
  return rank;
}

}  // namespace phigraph::apps
