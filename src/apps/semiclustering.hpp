// Semi-Clustering vertex program (paper §V-B; algorithm from Pregel §5.3).
//
// Each vertex maintains at most kScMaxClusters semi-clusters (vertex-id
// lists with a score). Per superstep a vertex sends its cluster list to all
// neighbors; received lists are merged (dedup by member set, keep the
// top-scoring few) and each received cluster not containing the vertex is
// also considered in extended form with the vertex added.
//
// Score of cluster c: S_c = (I_c − f_B · B_c) / (V_c (V_c − 1) / 2), where
// I_c is the sum of internal edge weights and B_c the sum of boundary edge
// weights. We carry I_c and Σ_m w_total(m) in the cluster; B_c follows as
// Σ w_total − 2 I_c (each internal edge is counted from both endpoints in
// the duplicated-undirected representation).
//
// The message type is a fat POD, not a basic type, and the merge is not a
// basic-arithmetic reduction, so this application uses the scalar CSB path —
// the same exception the paper makes ("SIMD reduction is not utilized").
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/common/types.hpp"
#include "src/core/program_traits.hpp"

namespace phigraph::apps {

inline constexpr int kScMaxClusterSize = 4;  // V_max
inline constexpr int kScMaxClusters = 2;     // C_max kept per vertex/message

struct SemiCluster {
  float score = 0;
  float inner = 0;  // I_c: sum of intra-cluster edge weights (per direction)
  float wsum = 0;   // Σ over members of their total incident weight
  std::uint32_t size = 0;
  vid_t members[kScMaxClusterSize] = {};  // sorted ascending

  [[nodiscard]] bool contains(vid_t v) const noexcept {
    for (std::uint32_t i = 0; i < size; ++i)
      if (members[i] == v) return true;
    return false;
  }

  [[nodiscard]] bool same_members(const SemiCluster& o) const noexcept {
    if (size != o.size) return false;
    for (std::uint32_t i = 0; i < size; ++i)
      if (members[i] != o.members[i]) return false;
    return true;
  }

  [[nodiscard]] float boundary() const noexcept { return wsum - 2.0f * inner; }

  /// Strict total order: score descending, then member list ascending —
  /// makes top-N merging associative and commutative (deterministic results
  /// under any parallel combine order).
  [[nodiscard]] bool better_than(const SemiCluster& o) const noexcept {
    if (score != o.score) return score > o.score;
    if (size != o.size) return size < o.size;
    for (std::uint32_t i = 0; i < size; ++i)
      if (members[i] != o.members[i]) return members[i] < o.members[i];
    return false;
  }
};

struct ClusterList {
  std::uint32_t count = 0;
  SemiCluster clusters[kScMaxClusters] = {};
};

class SemiClustering {
 public:
  using vertex_value_t = ClusterList;
  using message_t = ClusterList;
  static constexpr bool kAllActive = false;
  static constexpr bool kNeedsReduction = true;
  static constexpr bool kSimdReduce = false;  // non-basic message type

  explicit SemiClustering(float f_boundary = 0.2f) : f_boundary_(f_boundary) {}

  [[nodiscard]] ClusterList identity() const noexcept { return ClusterList{}; }

  /// Merge two lists: union, dedup by member set, keep the top kScMaxClusters
  /// under the total order. Associative and commutative.
  [[nodiscard]] ClusterList combine(const ClusterList& a,
                                    const ClusterList& b) const noexcept {
    ClusterList out;
    auto offer = [&out](const SemiCluster& c) {
      for (std::uint32_t i = 0; i < out.count; ++i)
        if (out.clusters[i].same_members(c)) return;
      if (out.count < kScMaxClusters) {
        out.clusters[out.count++] = c;
      } else {
        // Replace the worst entry if c beats it.
        int worst = 0;
        for (int i = 1; i < kScMaxClusters; ++i)
          if (out.clusters[worst].better_than(out.clusters[i])) worst = i;
        if (c.better_than(out.clusters[worst])) out.clusters[worst] = c;
      }
    };
    // Offer in merged total order so replacement decisions are order-free.
    SemiCluster all[2 * kScMaxClusters];
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < a.count; ++i) all[n++] = a.clusters[i];
    for (std::uint32_t i = 0; i < b.count; ++i) all[n++] = b.clusters[i];
    insertion_sort(all, n);
    for (std::uint32_t i = 0; i < n; ++i) offer(all[i]);
    sort_list(out);
    return out;
  }

  void init_vertex(vid_t global, ClusterList& value, bool& active,
                   const core::InitInfo& info) const noexcept {
    SemiCluster self;
    self.size = 1;
    self.members[0] = global;
    self.inner = 0;
    self.wsum = info.out_weight;
    self.score = 1.0f;  // Pregel: a lone vertex scores 1
    value.count = 1;
    value.clusters[0] = self;
    active = true;  // everyone advertises its singleton in superstep 0
  }

  template <typename View, typename Sink>
  void generate_messages(vid_t u, const View& g, Sink& sink) const {
    const ClusterList& mine = g.vertex_value[u];
    if (mine.count == 0) return;
    for (eid_t i = g.vertices[u]; i < g.vertices[u + 1]; ++i)
      sink.send_messages(g.edges[i], mine);
  }

  template <typename VArr>
  void process_messages(VArr& vmsgs) const {
    // Scalar path only (kSimdReduce == false): the engine reduces columns
    // with combine(); this SIMD hook is never instantiated.
    (void)vmsgs;
  }

  template <typename View>
  bool update_vertex(const ClusterList& msg, View& g, vid_t u) const {
    const vid_t me = g.global_id[u];

    // My total incident weight and a handle on my edges for I_add lookups.
    float my_wtotal = 0;
    for (eid_t i = g.vertices[u]; i < g.vertices[u + 1]; ++i)
      my_wtotal += g.edge_value[i];

    ClusterList candidates = msg;
    for (std::uint32_t ci = 0; ci < msg.count; ++ci) {
      const SemiCluster& c = msg.clusters[ci];
      if (c.contains(me) || c.size >= kScMaxClusterSize) continue;
      // Extend c with me: new internal weight = my edges into c's members.
      float i_add = 0;
      for (eid_t i = g.vertices[u]; i < g.vertices[u + 1]; ++i)
        if (c.contains(g.edges[i])) i_add += g.edge_value[i];
      SemiCluster ext = c;
      // Insert me keeping members sorted.
      std::uint32_t p = ext.size;
      while (p > 0 && ext.members[p - 1] > me) {
        ext.members[p] = ext.members[p - 1];
        --p;
      }
      ext.members[p] = me;
      ++ext.size;
      ext.inner = c.inner + i_add;
      ext.wsum = c.wsum + my_wtotal;
      const float pairs =
          static_cast<float>(ext.size) * static_cast<float>(ext.size - 1) / 2.0f;
      ext.score = (ext.inner - f_boundary_ * ext.boundary()) / pairs;
      ClusterList one;
      one.count = 1;
      one.clusters[0] = ext;
      candidates = combine(candidates, one);
    }

    const ClusterList merged = combine(g.vertex_value[u], candidates);
    const bool changed = !lists_equal(merged, g.vertex_value[u]);
    g.vertex_value[u] = merged;
    return changed;
  }

 private:
  /// Tiny fixed-capacity sort; avoids std::sort's introsort machinery (and
  /// GCC's spurious -Warray-bounds on it) for these <= 4-element arrays.
  static void insertion_sort(SemiCluster* c, std::uint32_t n) noexcept {
    for (std::uint32_t i = 1; i < n; ++i) {
      SemiCluster key = c[i];
      std::uint32_t j = i;
      while (j > 0 && key.better_than(c[j - 1])) {
        c[j] = c[j - 1];
        --j;
      }
      c[j] = key;
    }
  }

  static void sort_list(ClusterList& l) noexcept {
    insertion_sort(l.clusters, l.count);
  }

  static bool lists_equal(const ClusterList& a, const ClusterList& b) noexcept {
    if (a.count != b.count) return false;
    for (std::uint32_t i = 0; i < a.count; ++i)
      if (!a.clusters[i].same_members(b.clusters[i]) ||
          a.clusters[i].score != b.clusters[i].score)
        return false;
    return true;
  }

  float f_boundary_;
};

}  // namespace phigraph::apps
