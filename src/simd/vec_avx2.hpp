// AVX2 specializations (256-bit lanes).
//
// Not used by either device profile in the paper (CPU = SSE4.2, MIC = KNC
// 512-bit), but provided as the natural middle width for modern hosts and
// exercised by the ablation benches / property tests.
#pragma once

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "src/simd/mask.hpp"
#include "src/simd/vec.hpp"
#include "src/simd/vec_sse.hpp"  // reductions narrow through the 128-bit forms

namespace phigraph::simd {

// ---------------------------------------------------------------- float x8
template <>
struct Vec<float, 8> {
  using value_type = float;
  using mask_type = Mask<8>;
  static constexpr int width = 8;

  union {
    __m256 v;
    float lane[8];
  };

  Vec() = default;
  Vec(float s) noexcept : v(_mm256_set1_ps(s)) {}  // NOLINT
  explicit Vec(__m256 r) noexcept : v(r) {}
  static Vec zero() noexcept { return Vec(_mm256_setzero_ps()); }

  static Vec load(const float* p) noexcept { return Vec(_mm256_load_ps(p)); }
  static Vec loadu(const float* p) noexcept { return Vec(_mm256_loadu_ps(p)); }
  void store(float* p) const noexcept { _mm256_store_ps(p, v); }
  void storeu(float* p) const noexcept { _mm256_storeu_ps(p, v); }

  float operator[](int i) const noexcept { return lane[i]; }
  float& operator[](int i) noexcept { return lane[i]; }

  friend Vec operator+(Vec a, Vec b) noexcept { return Vec(_mm256_add_ps(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) noexcept { return Vec(_mm256_sub_ps(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) noexcept { return Vec(_mm256_mul_ps(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) noexcept { return Vec(_mm256_div_ps(a.v, b.v)); }
  Vec& operator+=(Vec o) noexcept { v = _mm256_add_ps(v, o.v); return *this; }
  Vec& operator-=(Vec o) noexcept { v = _mm256_sub_ps(v, o.v); return *this; }
  Vec& operator*=(Vec o) noexcept { v = _mm256_mul_ps(v, o.v); return *this; }
  Vec& operator/=(Vec o) noexcept { v = _mm256_div_ps(v, o.v); return *this; }
  Vec operator-() const noexcept {
    return Vec(_mm256_sub_ps(_mm256_setzero_ps(), v));
  }

  friend mask_type operator<(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ))));
  }
  friend mask_type operator<=(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(a.v, b.v, _CMP_LE_OQ))));
  }
  friend mask_type operator>(Vec a, Vec b) noexcept { return b < a; }
  friend mask_type operator>=(Vec a, Vec b) noexcept { return b <= a; }
  friend mask_type operator==(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(a.v, b.v, _CMP_EQ_OQ))));
  }
  friend mask_type operator!=(Vec a, Vec b) noexcept { return ~(a == b); }
};

inline Vec<float, 8> min(Vec<float, 8> a, Vec<float, 8> b) noexcept {
  return Vec<float, 8>(_mm256_min_ps(a.v, b.v));
}
inline Vec<float, 8> max(Vec<float, 8> a, Vec<float, 8> b) noexcept {
  return Vec<float, 8>(_mm256_max_ps(a.v, b.v));
}
inline Vec<float, 8> abs(Vec<float, 8> a) noexcept {
  return Vec<float, 8>(_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v));
}
inline Vec<float, 8> blend(Mask<8> m, Vec<float, 8> a, Vec<float, 8> b) noexcept {
  alignas(32) std::int32_t sel[8];
  for (int i = 0; i < 8; ++i) sel[i] = m[i] ? -1 : 0;
  __m256 selv = _mm256_castsi256_ps(
      _mm256_load_si256(reinterpret_cast<const __m256i*>(sel)));
  return Vec<float, 8>(_mm256_blendv_ps(b.v, a.v, selv));
}
inline float reduce_add(Vec<float, 8> v) noexcept {
  __m128 lo = _mm256_castps256_ps128(v.v);
  __m128 hi = _mm256_extractf128_ps(v.v, 1);
  return reduce_add(Vec<float, 4>(_mm_add_ps(lo, hi)));
}
inline float reduce_min(Vec<float, 8> v) noexcept {
  __m128 lo = _mm256_castps256_ps128(v.v);
  __m128 hi = _mm256_extractf128_ps(v.v, 1);
  return reduce_min(Vec<float, 4>(_mm_min_ps(lo, hi)));
}
inline float reduce_max(Vec<float, 8> v) noexcept {
  __m128 lo = _mm256_castps256_ps128(v.v);
  __m128 hi = _mm256_extractf128_ps(v.v, 1);
  return reduce_max(Vec<float, 4>(_mm_max_ps(lo, hi)));
}

// -------------------------------------------------------------- int32_t x8
template <>
struct Vec<std::int32_t, 8> {
  using value_type = std::int32_t;
  using mask_type = Mask<8>;
  static constexpr int width = 8;

  union {
    __m256i v;
    std::int32_t lane[8];
  };

  Vec() = default;
  Vec(std::int32_t s) noexcept : v(_mm256_set1_epi32(s)) {}  // NOLINT
  explicit Vec(__m256i r) noexcept : v(r) {}
  static Vec zero() noexcept { return Vec(_mm256_setzero_si256()); }

  static Vec load(const std::int32_t* p) noexcept {
    return Vec(_mm256_load_si256(reinterpret_cast<const __m256i*>(p)));
  }
  static Vec loadu(const std::int32_t* p) noexcept {
    return Vec(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
  }
  void store(std::int32_t* p) const noexcept {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), v);
  }
  void storeu(std::int32_t* p) const noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }

  std::int32_t operator[](int i) const noexcept { return lane[i]; }
  std::int32_t& operator[](int i) noexcept { return lane[i]; }

  friend Vec operator+(Vec a, Vec b) noexcept { return Vec(_mm256_add_epi32(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) noexcept { return Vec(_mm256_sub_epi32(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) noexcept { return Vec(_mm256_mullo_epi32(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) noexcept {
    Vec r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] / b.lane[i];
    return r;
  }
  Vec& operator+=(Vec o) noexcept { v = _mm256_add_epi32(v, o.v); return *this; }
  Vec& operator-=(Vec o) noexcept { v = _mm256_sub_epi32(v, o.v); return *this; }
  Vec& operator*=(Vec o) noexcept { v = _mm256_mullo_epi32(v, o.v); return *this; }
  Vec& operator/=(Vec o) noexcept { return *this = *this / o; }
  Vec operator-() const noexcept {
    return Vec(_mm256_sub_epi32(_mm256_setzero_si256(), v));
  }

  friend mask_type operator<(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(b.v, a.v)))));
  }
  friend mask_type operator==(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(a.v, b.v)))));
  }
  friend mask_type operator<=(Vec a, Vec b) noexcept { return (a < b) | (a == b); }
  friend mask_type operator>(Vec a, Vec b) noexcept { return b < a; }
  friend mask_type operator>=(Vec a, Vec b) noexcept { return b <= a; }
  friend mask_type operator!=(Vec a, Vec b) noexcept { return ~(a == b); }
};

inline Vec<std::int32_t, 8> min(Vec<std::int32_t, 8> a, Vec<std::int32_t, 8> b) noexcept {
  return Vec<std::int32_t, 8>(_mm256_min_epi32(a.v, b.v));
}
inline Vec<std::int32_t, 8> max(Vec<std::int32_t, 8> a, Vec<std::int32_t, 8> b) noexcept {
  return Vec<std::int32_t, 8>(_mm256_max_epi32(a.v, b.v));
}
inline Vec<std::int32_t, 8> abs(Vec<std::int32_t, 8> a) noexcept {
  return Vec<std::int32_t, 8>(_mm256_abs_epi32(a.v));
}
inline Vec<std::int32_t, 8> blend(Mask<8> m, Vec<std::int32_t, 8> a,
                                  Vec<std::int32_t, 8> b) noexcept {
  alignas(32) std::int32_t sel[8];
  for (int i = 0; i < 8; ++i) sel[i] = m[i] ? -1 : 0;
  __m256i selv = _mm256_load_si256(reinterpret_cast<const __m256i*>(sel));
  return Vec<std::int32_t, 8>(_mm256_blendv_epi8(b.v, a.v, selv));
}
inline std::int32_t reduce_add(Vec<std::int32_t, 8> v) noexcept {
  std::int32_t s = 0;
  for (int i = 0; i < 8; ++i) s += v.lane[i];
  return s;
}
inline std::int32_t reduce_min(Vec<std::int32_t, 8> v) noexcept {
  std::int32_t s = v.lane[0];
  for (int i = 1; i < 8; ++i) s = std::min(s, v.lane[i]);
  return s;
}
inline std::int32_t reduce_max(Vec<std::int32_t, 8> v) noexcept {
  std::int32_t s = v.lane[0];
  for (int i = 1; i < 8; ++i) s = std::max(s, v.lane[i]);
  return s;
}

// --------------------------------------------------------------- double x4
template <>
struct Vec<double, 4> {
  using value_type = double;
  using mask_type = Mask<4>;
  static constexpr int width = 4;

  union {
    __m256d v;
    double lane[4];
  };

  Vec() = default;
  Vec(double s) noexcept : v(_mm256_set1_pd(s)) {}  // NOLINT
  explicit Vec(__m256d r) noexcept : v(r) {}
  static Vec zero() noexcept { return Vec(_mm256_setzero_pd()); }

  static Vec load(const double* p) noexcept { return Vec(_mm256_load_pd(p)); }
  static Vec loadu(const double* p) noexcept { return Vec(_mm256_loadu_pd(p)); }
  void store(double* p) const noexcept { _mm256_store_pd(p, v); }
  void storeu(double* p) const noexcept { _mm256_storeu_pd(p, v); }

  double operator[](int i) const noexcept { return lane[i]; }
  double& operator[](int i) noexcept { return lane[i]; }

  friend Vec operator+(Vec a, Vec b) noexcept { return Vec(_mm256_add_pd(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) noexcept { return Vec(_mm256_sub_pd(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) noexcept { return Vec(_mm256_mul_pd(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) noexcept { return Vec(_mm256_div_pd(a.v, b.v)); }
  Vec& operator+=(Vec o) noexcept { v = _mm256_add_pd(v, o.v); return *this; }
  Vec& operator-=(Vec o) noexcept { v = _mm256_sub_pd(v, o.v); return *this; }
  Vec& operator*=(Vec o) noexcept { v = _mm256_mul_pd(v, o.v); return *this; }
  Vec& operator/=(Vec o) noexcept { v = _mm256_div_pd(v, o.v); return *this; }
  Vec operator-() const noexcept {
    return Vec(_mm256_sub_pd(_mm256_setzero_pd(), v));
  }

  friend mask_type operator<(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ))));
  }
  friend mask_type operator<=(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ))));
  }
  friend mask_type operator>(Vec a, Vec b) noexcept { return b < a; }
  friend mask_type operator>=(Vec a, Vec b) noexcept { return b <= a; }
  friend mask_type operator==(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ))));
  }
  friend mask_type operator!=(Vec a, Vec b) noexcept { return ~(a == b); }
};

inline Vec<double, 4> min(Vec<double, 4> a, Vec<double, 4> b) noexcept {
  return Vec<double, 4>(_mm256_min_pd(a.v, b.v));
}
inline Vec<double, 4> max(Vec<double, 4> a, Vec<double, 4> b) noexcept {
  return Vec<double, 4>(_mm256_max_pd(a.v, b.v));
}
inline Vec<double, 4> abs(Vec<double, 4> a) noexcept {
  return Vec<double, 4>(_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v));
}
inline Vec<double, 4> blend(Mask<4> m, Vec<double, 4> a, Vec<double, 4> b) noexcept {
  alignas(32) std::int64_t sel[4];
  for (int i = 0; i < 4; ++i) sel[i] = m[i] ? -1 : 0;
  __m256d selv = _mm256_castsi256_pd(
      _mm256_load_si256(reinterpret_cast<const __m256i*>(sel)));
  return Vec<double, 4>(_mm256_blendv_pd(b.v, a.v, selv));
}
inline double reduce_add(Vec<double, 4> v) noexcept {
  return (v.lane[0] + v.lane[1]) + (v.lane[2] + v.lane[3]);
}
inline double reduce_min(Vec<double, 4> v) noexcept {
  return std::min(std::min(v.lane[0], v.lane[1]), std::min(v.lane[2], v.lane[3]));
}
inline double reduce_max(Vec<double, 4> v) noexcept {
  return std::max(std::max(v.lane[0], v.lane[1]), std::max(v.lane[2], v.lane[3]));
}

}  // namespace phigraph::simd

#endif  // __AVX2__
