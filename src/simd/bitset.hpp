// Word-packed frontier bitmap for pull-direction supersteps.
//
// The engine's push path keeps the active set as one byte per vertex (fast
// unconditional stores from many threads). The pull kernel instead probes
// "is in-neighbor u on the frontier?" once per scanned edge, where a
// byte-per-vertex map wastes 7/8 of every cache line. DenseBitset packs the
// byte map into 64-bit words — 8x the frontier per cache line — and converts
// from the byte map with an AVX2 fast path (32 bytes -> 32 bits per
// iteration via movemask) when available.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/common/expect.hpp"

namespace phigraph::simd {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(std::size_t n) { resize(n); }

  void resize(std::size_t n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  std::size_t size() const { return size_; }

  /// Rebuild the bitmap from a byte-per-vertex map (nonzero byte => set bit).
  /// This is the bridge from the engine's push-side active_ array; it runs
  /// once per pull superstep over all n bytes, so it is vectorized.
  void assign_bytes(const std::uint8_t* bytes, std::size_t n) {
    PG_DCHECK(n == size_);
    std::size_t i = 0;
#if defined(__AVX2__)
    const __m256i zero = _mm256_setzero_si256();
    for (; i + 32 <= n; i += 32) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes + i));
      // movemask of (v > 0) for unsigned bytes: any nonzero byte compares
      // unequal to zero; cmpeq + invert keeps bytes >= 0x80 correct too.
      const std::uint32_t eq0 = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
      const std::uint64_t m = ~static_cast<std::uint64_t>(eq0) & 0xffffffffu;
      // i is a multiple of 32, so the 32-bit block never straddles a word.
      const std::size_t shift = i % 64;
      words_[i / 64] = (words_[i / 64] & ~(0xffffffffull << shift)) | (m << shift);
    }
#endif
    for (; i < n; ++i) {
      if (bytes[i])
        words_[i / 64] |= 1ull << (i % 64);
      else
        words_[i / 64] &= ~(1ull << (i % 64));
    }
    // Tail-word masking: bits >= size_ must stay dead. count() and the
    // 64-lane batch kernels consume whole words, so a stale tail bit would
    // count phantom frontier vertices (or resurrect unasked query lanes).
    // set()/resize() preserve this on their own; re-assert it here so a
    // caller handing an oversized byte map can never smuggle tail bits in.
    if (!words_.empty() && size_ % 64 != 0)
      words_.back() &= (1ull << (size_ % 64)) - 1;
  }

  /// Bits past size_ in the last word, which must always be zero (the
  /// tail-word invariant above). Exposed so the audit build and the frontier
  /// regression tests can assert it cheaply.
  [[nodiscard]] std::uint64_t tail_bits() const noexcept {
    if (words_.empty() || size_ % 64 == 0) return 0;
    return words_.back() & ~((1ull << (size_ % 64)) - 1);
  }

  bool test(std::size_t i) const {
    PG_DCHECK(i < size_);
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::size_t i) {
    PG_DCHECK(i < size_);
    words_[i / 64] |= 1ull << (i % 64);
  }

  void clear() { words_.assign(words_.size(), 0); }

  std::size_t count() const {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Write set bits back into a byte-per-vertex map (round-trip helper for
  /// tests and the active-list rebuild at the direction boundary).
  void to_bytes(std::uint8_t* bytes, std::size_t n) const {
    PG_DCHECK(n == size_);
    for (std::size_t i = 0; i < n; ++i)
      bytes[i] = test(i) ? std::uint8_t{1} : std::uint8_t{0};
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace phigraph::simd
