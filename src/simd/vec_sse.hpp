// SSE4.2 specializations (128-bit lanes) — the paper's CPU-side backend.
//
// "the same APIs are built on top of both KNC (for MIC), and SSE4.2 (for
//  CPU), wrapping corresponding architecture-specific intrinsics." (§III)
//
// Specializes Vec<float,4>, Vec<int32_t,4>, Vec<double,2>. Semantics must
// match the generic template in vec.hpp exactly (property-tested).
#pragma once

#if defined(__SSE4_2__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "src/simd/mask.hpp"
#include "src/simd/vec.hpp"

namespace phigraph::simd {

// ---------------------------------------------------------------- float x4
template <>
struct Vec<float, 4> {
  using value_type = float;
  using mask_type = Mask<4>;
  static constexpr int width = 4;

  union {
    __m128 v;
    float lane[4];
  };

  Vec() = default;
  Vec(float s) noexcept : v(_mm_set1_ps(s)) {}  // NOLINT
  explicit Vec(__m128 r) noexcept : v(r) {}
  static Vec zero() noexcept { return Vec(_mm_setzero_ps()); }

  static Vec load(const float* p) noexcept { return Vec(_mm_load_ps(p)); }
  static Vec loadu(const float* p) noexcept { return Vec(_mm_loadu_ps(p)); }
  void store(float* p) const noexcept { _mm_store_ps(p, v); }
  void storeu(float* p) const noexcept { _mm_storeu_ps(p, v); }

  float operator[](int i) const noexcept { return lane[i]; }
  float& operator[](int i) noexcept { return lane[i]; }

  friend Vec operator+(Vec a, Vec b) noexcept { return Vec(_mm_add_ps(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) noexcept { return Vec(_mm_sub_ps(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) noexcept { return Vec(_mm_mul_ps(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) noexcept { return Vec(_mm_div_ps(a.v, b.v)); }
  Vec& operator+=(Vec o) noexcept { v = _mm_add_ps(v, o.v); return *this; }
  Vec& operator-=(Vec o) noexcept { v = _mm_sub_ps(v, o.v); return *this; }
  Vec& operator*=(Vec o) noexcept { v = _mm_mul_ps(v, o.v); return *this; }
  Vec& operator/=(Vec o) noexcept { v = _mm_div_ps(v, o.v); return *this; }
  Vec operator-() const noexcept { return Vec(_mm_sub_ps(_mm_setzero_ps(), v)); }

  friend mask_type operator<(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(_mm_movemask_ps(_mm_cmplt_ps(a.v, b.v))));
  }
  friend mask_type operator<=(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(_mm_movemask_ps(_mm_cmple_ps(a.v, b.v))));
  }
  friend mask_type operator>(Vec a, Vec b) noexcept { return b < a; }
  friend mask_type operator>=(Vec a, Vec b) noexcept { return b <= a; }
  friend mask_type operator==(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(_mm_movemask_ps(_mm_cmpeq_ps(a.v, b.v))));
  }
  friend mask_type operator!=(Vec a, Vec b) noexcept { return ~(a == b); }
};

inline Vec<float, 4> min(Vec<float, 4> a, Vec<float, 4> b) noexcept {
  return Vec<float, 4>(_mm_min_ps(a.v, b.v));
}
inline Vec<float, 4> max(Vec<float, 4> a, Vec<float, 4> b) noexcept {
  return Vec<float, 4>(_mm_max_ps(a.v, b.v));
}
inline Vec<float, 4> abs(Vec<float, 4> a) noexcept {
  return Vec<float, 4>(_mm_andnot_ps(_mm_set1_ps(-0.0f), a.v));
}
inline Vec<float, 4> blend(Mask<4> m, Vec<float, 4> a, Vec<float, 4> b) noexcept {
  // _mm_blendv_ps selects from the SECOND operand where the mask is set.
  __m128 sel = _mm_castsi128_ps(_mm_set_epi32(
      (m.bits() & 8) ? -1 : 0, (m.bits() & 4) ? -1 : 0,
      (m.bits() & 2) ? -1 : 0, (m.bits() & 1) ? -1 : 0));
  return Vec<float, 4>(_mm_blendv_ps(b.v, a.v, sel));
}
inline float reduce_add(Vec<float, 4> v) noexcept {
  __m128 t = _mm_hadd_ps(v.v, v.v);
  t = _mm_hadd_ps(t, t);
  return _mm_cvtss_f32(t);
}
inline float reduce_min(Vec<float, 4> v) noexcept {
  __m128 t = _mm_min_ps(v.v, _mm_movehl_ps(v.v, v.v));
  t = _mm_min_ss(t, _mm_shuffle_ps(t, t, 1));
  return _mm_cvtss_f32(t);
}
inline float reduce_max(Vec<float, 4> v) noexcept {
  __m128 t = _mm_max_ps(v.v, _mm_movehl_ps(v.v, v.v));
  t = _mm_max_ss(t, _mm_shuffle_ps(t, t, 1));
  return _mm_cvtss_f32(t);
}

// -------------------------------------------------------------- int32_t x4
template <>
struct Vec<std::int32_t, 4> {
  using value_type = std::int32_t;
  using mask_type = Mask<4>;
  static constexpr int width = 4;

  union {
    __m128i v;
    std::int32_t lane[4];
  };

  Vec() = default;
  Vec(std::int32_t s) noexcept : v(_mm_set1_epi32(s)) {}  // NOLINT
  explicit Vec(__m128i r) noexcept : v(r) {}
  static Vec zero() noexcept { return Vec(_mm_setzero_si128()); }

  static Vec load(const std::int32_t* p) noexcept {
    return Vec(_mm_load_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static Vec loadu(const std::int32_t* p) noexcept {
    return Vec(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  void store(std::int32_t* p) const noexcept {
    _mm_store_si128(reinterpret_cast<__m128i*>(p), v);
  }
  void storeu(std::int32_t* p) const noexcept {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }

  std::int32_t operator[](int i) const noexcept { return lane[i]; }
  std::int32_t& operator[](int i) noexcept { return lane[i]; }

  friend Vec operator+(Vec a, Vec b) noexcept { return Vec(_mm_add_epi32(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) noexcept { return Vec(_mm_sub_epi32(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) noexcept { return Vec(_mm_mullo_epi32(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) noexcept {  // no SIMD integer divide
    Vec r;
    for (int i = 0; i < 4; ++i) r.lane[i] = a.lane[i] / b.lane[i];
    return r;
  }
  Vec& operator+=(Vec o) noexcept { v = _mm_add_epi32(v, o.v); return *this; }
  Vec& operator-=(Vec o) noexcept { v = _mm_sub_epi32(v, o.v); return *this; }
  Vec& operator*=(Vec o) noexcept { v = _mm_mullo_epi32(v, o.v); return *this; }
  Vec& operator/=(Vec o) noexcept { return *this = *this / o; }
  Vec operator-() const noexcept {
    return Vec(_mm_sub_epi32(_mm_setzero_si128(), v));
  }

  friend mask_type operator<(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(a.v, b.v)))));
  }
  friend mask_type operator==(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(a.v, b.v)))));
  }
  friend mask_type operator<=(Vec a, Vec b) noexcept { return (a < b) | (a == b); }
  friend mask_type operator>(Vec a, Vec b) noexcept { return b < a; }
  friend mask_type operator>=(Vec a, Vec b) noexcept { return b <= a; }
  friend mask_type operator!=(Vec a, Vec b) noexcept { return ~(a == b); }
};

inline Vec<std::int32_t, 4> min(Vec<std::int32_t, 4> a, Vec<std::int32_t, 4> b) noexcept {
  return Vec<std::int32_t, 4>(_mm_min_epi32(a.v, b.v));
}
inline Vec<std::int32_t, 4> max(Vec<std::int32_t, 4> a, Vec<std::int32_t, 4> b) noexcept {
  return Vec<std::int32_t, 4>(_mm_max_epi32(a.v, b.v));
}
inline Vec<std::int32_t, 4> abs(Vec<std::int32_t, 4> a) noexcept {
  return Vec<std::int32_t, 4>(_mm_abs_epi32(a.v));
}
inline Vec<std::int32_t, 4> blend(Mask<4> m, Vec<std::int32_t, 4> a,
                                  Vec<std::int32_t, 4> b) noexcept {
  __m128i sel = _mm_set_epi32((m.bits() & 8) ? -1 : 0, (m.bits() & 4) ? -1 : 0,
                              (m.bits() & 2) ? -1 : 0, (m.bits() & 1) ? -1 : 0);
  return Vec<std::int32_t, 4>(_mm_blendv_epi8(b.v, a.v, sel));
}
inline std::int32_t reduce_add(Vec<std::int32_t, 4> v) noexcept {
  __m128i t = _mm_hadd_epi32(v.v, v.v);
  t = _mm_hadd_epi32(t, t);
  return _mm_cvtsi128_si32(t);
}
inline std::int32_t reduce_min(Vec<std::int32_t, 4> v) noexcept {
  return std::min({v.lane[0], v.lane[1], v.lane[2], v.lane[3]});
}
inline std::int32_t reduce_max(Vec<std::int32_t, 4> v) noexcept {
  return std::max({v.lane[0], v.lane[1], v.lane[2], v.lane[3]});
}

// --------------------------------------------------------------- double x2
template <>
struct Vec<double, 2> {
  using value_type = double;
  using mask_type = Mask<2>;
  static constexpr int width = 2;

  union {
    __m128d v;
    double lane[2];
  };

  Vec() = default;
  Vec(double s) noexcept : v(_mm_set1_pd(s)) {}  // NOLINT
  explicit Vec(__m128d r) noexcept : v(r) {}
  static Vec zero() noexcept { return Vec(_mm_setzero_pd()); }

  static Vec load(const double* p) noexcept { return Vec(_mm_load_pd(p)); }
  static Vec loadu(const double* p) noexcept { return Vec(_mm_loadu_pd(p)); }
  void store(double* p) const noexcept { _mm_store_pd(p, v); }
  void storeu(double* p) const noexcept { _mm_storeu_pd(p, v); }

  double operator[](int i) const noexcept { return lane[i]; }
  double& operator[](int i) noexcept { return lane[i]; }

  friend Vec operator+(Vec a, Vec b) noexcept { return Vec(_mm_add_pd(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) noexcept { return Vec(_mm_sub_pd(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) noexcept { return Vec(_mm_mul_pd(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) noexcept { return Vec(_mm_div_pd(a.v, b.v)); }
  Vec& operator+=(Vec o) noexcept { v = _mm_add_pd(v, o.v); return *this; }
  Vec& operator-=(Vec o) noexcept { v = _mm_sub_pd(v, o.v); return *this; }
  Vec& operator*=(Vec o) noexcept { v = _mm_mul_pd(v, o.v); return *this; }
  Vec& operator/=(Vec o) noexcept { v = _mm_div_pd(v, o.v); return *this; }
  Vec operator-() const noexcept { return Vec(_mm_sub_pd(_mm_setzero_pd(), v)); }

  friend mask_type operator<(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(_mm_movemask_pd(_mm_cmplt_pd(a.v, b.v))));
  }
  friend mask_type operator<=(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(_mm_movemask_pd(_mm_cmple_pd(a.v, b.v))));
  }
  friend mask_type operator>(Vec a, Vec b) noexcept { return b < a; }
  friend mask_type operator>=(Vec a, Vec b) noexcept { return b <= a; }
  friend mask_type operator==(Vec a, Vec b) noexcept {
    return mask_type(static_cast<std::uint64_t>(_mm_movemask_pd(_mm_cmpeq_pd(a.v, b.v))));
  }
  friend mask_type operator!=(Vec a, Vec b) noexcept { return ~(a == b); }
};

inline Vec<double, 2> min(Vec<double, 2> a, Vec<double, 2> b) noexcept {
  return Vec<double, 2>(_mm_min_pd(a.v, b.v));
}
inline Vec<double, 2> max(Vec<double, 2> a, Vec<double, 2> b) noexcept {
  return Vec<double, 2>(_mm_max_pd(a.v, b.v));
}
inline Vec<double, 2> abs(Vec<double, 2> a) noexcept {
  return Vec<double, 2>(_mm_andnot_pd(_mm_set1_pd(-0.0), a.v));
}
inline Vec<double, 2> blend(Mask<2> m, Vec<double, 2> a, Vec<double, 2> b) noexcept {
  __m128d sel = _mm_castsi128_pd(_mm_set_epi64x((m.bits() & 2) ? -1 : 0,
                                                (m.bits() & 1) ? -1 : 0));
  return Vec<double, 2>(_mm_blendv_pd(b.v, a.v, sel));
}
inline double reduce_add(Vec<double, 2> v) noexcept { return v.lane[0] + v.lane[1]; }
inline double reduce_min(Vec<double, 2> v) noexcept {
  return std::min(v.lane[0], v.lane[1]);
}
inline double reduce_max(Vec<double, 2> v) noexcept {
  return std::max(v.lane[0], v.lane[1]);
}

}  // namespace phigraph::simd

#endif  // __SSE4_2__
