// AVX-512F specializations (512-bit lanes) — the "MIC mode" backend.
//
// The paper's Xeon Phi exposes 512-bit KNC (IMCI) lanes: 16 floats / ints,
// 8 doubles, with hardware mask registers. AVX-512F is the direct ISA
// descendant of IMCI with the same widths and mask model, so these wrappers
// use the same operations the paper names (e.g. the overloaded min() for
// vfloat "wraps the SSE intrinsic _mm512_min_ps for MIC", §IV-C).
#pragma once

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cstdint>

#include "src/simd/mask.hpp"
#include "src/simd/vec.hpp"

namespace phigraph::simd {

// --------------------------------------------------------------- float x16
template <>
struct Vec<float, 16> {
  using value_type = float;
  using mask_type = Mask<16>;
  static constexpr int width = 16;

  union {
    __m512 v;
    float lane[16];
  };

  Vec() = default;
  Vec(float s) noexcept : v(_mm512_set1_ps(s)) {}  // NOLINT
  explicit Vec(__m512 r) noexcept : v(r) {}
  static Vec zero() noexcept { return Vec(_mm512_setzero_ps()); }

  static Vec load(const float* p) noexcept { return Vec(_mm512_load_ps(p)); }
  static Vec loadu(const float* p) noexcept { return Vec(_mm512_loadu_ps(p)); }
  void store(float* p) const noexcept { _mm512_store_ps(p, v); }
  void storeu(float* p) const noexcept { _mm512_storeu_ps(p, v); }

  float operator[](int i) const noexcept { return lane[i]; }
  float& operator[](int i) noexcept { return lane[i]; }

  friend Vec operator+(Vec a, Vec b) noexcept { return Vec(_mm512_add_ps(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) noexcept { return Vec(_mm512_sub_ps(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) noexcept { return Vec(_mm512_mul_ps(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) noexcept { return Vec(_mm512_div_ps(a.v, b.v)); }
  Vec& operator+=(Vec o) noexcept { v = _mm512_add_ps(v, o.v); return *this; }
  Vec& operator-=(Vec o) noexcept { v = _mm512_sub_ps(v, o.v); return *this; }
  Vec& operator*=(Vec o) noexcept { v = _mm512_mul_ps(v, o.v); return *this; }
  Vec& operator/=(Vec o) noexcept { v = _mm512_div_ps(v, o.v); return *this; }
  Vec operator-() const noexcept {
    return Vec(_mm512_sub_ps(_mm512_setzero_ps(), v));
  }

  friend mask_type operator<(Vec a, Vec b) noexcept {
    return mask_type(_mm512_cmp_ps_mask(a.v, b.v, _CMP_LT_OQ));
  }
  friend mask_type operator<=(Vec a, Vec b) noexcept {
    return mask_type(_mm512_cmp_ps_mask(a.v, b.v, _CMP_LE_OQ));
  }
  friend mask_type operator>(Vec a, Vec b) noexcept { return b < a; }
  friend mask_type operator>=(Vec a, Vec b) noexcept { return b <= a; }
  friend mask_type operator==(Vec a, Vec b) noexcept {
    return mask_type(_mm512_cmp_ps_mask(a.v, b.v, _CMP_EQ_OQ));
  }
  friend mask_type operator!=(Vec a, Vec b) noexcept { return ~(a == b); }
};

inline Vec<float, 16> min(Vec<float, 16> a, Vec<float, 16> b) noexcept {
  return Vec<float, 16>(_mm512_min_ps(a.v, b.v));
}
inline Vec<float, 16> max(Vec<float, 16> a, Vec<float, 16> b) noexcept {
  return Vec<float, 16>(_mm512_max_ps(a.v, b.v));
}
inline Vec<float, 16> abs(Vec<float, 16> a) noexcept {
  return Vec<float, 16>(_mm512_abs_ps(a.v));
}
inline Vec<float, 16> blend(Mask<16> m, Vec<float, 16> a, Vec<float, 16> b) noexcept {
  // Native write-mask: lanes with the bit set come from a, others from b.
  return Vec<float, 16>(_mm512_mask_blend_ps(
      static_cast<__mmask16>(m.bits()), b.v, a.v));
}
inline float reduce_add(Vec<float, 16> v) noexcept { return _mm512_reduce_add_ps(v.v); }
inline float reduce_min(Vec<float, 16> v) noexcept { return _mm512_reduce_min_ps(v.v); }
inline float reduce_max(Vec<float, 16> v) noexcept { return _mm512_reduce_max_ps(v.v); }

// ------------------------------------------------------------- int32_t x16
template <>
struct Vec<std::int32_t, 16> {
  using value_type = std::int32_t;
  using mask_type = Mask<16>;
  static constexpr int width = 16;

  union {
    __m512i v;
    std::int32_t lane[16];
  };

  Vec() = default;
  Vec(std::int32_t s) noexcept : v(_mm512_set1_epi32(s)) {}  // NOLINT
  explicit Vec(__m512i r) noexcept : v(r) {}
  static Vec zero() noexcept { return Vec(_mm512_setzero_si512()); }

  static Vec load(const std::int32_t* p) noexcept {
    return Vec(_mm512_load_si512(p));
  }
  static Vec loadu(const std::int32_t* p) noexcept {
    return Vec(_mm512_loadu_si512(p));
  }
  void store(std::int32_t* p) const noexcept { _mm512_store_si512(p, v); }
  void storeu(std::int32_t* p) const noexcept { _mm512_storeu_si512(p, v); }

  std::int32_t operator[](int i) const noexcept { return lane[i]; }
  std::int32_t& operator[](int i) noexcept { return lane[i]; }

  friend Vec operator+(Vec a, Vec b) noexcept { return Vec(_mm512_add_epi32(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) noexcept { return Vec(_mm512_sub_epi32(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) noexcept { return Vec(_mm512_mullo_epi32(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) noexcept {
    Vec r;
    for (int i = 0; i < 16; ++i) r.lane[i] = a.lane[i] / b.lane[i];
    return r;
  }
  Vec& operator+=(Vec o) noexcept { v = _mm512_add_epi32(v, o.v); return *this; }
  Vec& operator-=(Vec o) noexcept { v = _mm512_sub_epi32(v, o.v); return *this; }
  Vec& operator*=(Vec o) noexcept { v = _mm512_mullo_epi32(v, o.v); return *this; }
  Vec& operator/=(Vec o) noexcept { return *this = *this / o; }
  Vec operator-() const noexcept {
    return Vec(_mm512_sub_epi32(_mm512_setzero_si512(), v));
  }

  friend mask_type operator<(Vec a, Vec b) noexcept {
    return mask_type(_mm512_cmplt_epi32_mask(a.v, b.v));
  }
  friend mask_type operator<=(Vec a, Vec b) noexcept {
    return mask_type(_mm512_cmple_epi32_mask(a.v, b.v));
  }
  friend mask_type operator>(Vec a, Vec b) noexcept { return b < a; }
  friend mask_type operator>=(Vec a, Vec b) noexcept { return b <= a; }
  friend mask_type operator==(Vec a, Vec b) noexcept {
    return mask_type(_mm512_cmpeq_epi32_mask(a.v, b.v));
  }
  friend mask_type operator!=(Vec a, Vec b) noexcept { return ~(a == b); }
};

inline Vec<std::int32_t, 16> min(Vec<std::int32_t, 16> a,
                                 Vec<std::int32_t, 16> b) noexcept {
  return Vec<std::int32_t, 16>(_mm512_min_epi32(a.v, b.v));
}
inline Vec<std::int32_t, 16> max(Vec<std::int32_t, 16> a,
                                 Vec<std::int32_t, 16> b) noexcept {
  return Vec<std::int32_t, 16>(_mm512_max_epi32(a.v, b.v));
}
inline Vec<std::int32_t, 16> abs(Vec<std::int32_t, 16> a) noexcept {
  return Vec<std::int32_t, 16>(_mm512_abs_epi32(a.v));
}
inline Vec<std::int32_t, 16> blend(Mask<16> m, Vec<std::int32_t, 16> a,
                                   Vec<std::int32_t, 16> b) noexcept {
  return Vec<std::int32_t, 16>(_mm512_mask_blend_epi32(
      static_cast<__mmask16>(m.bits()), b.v, a.v));
}
inline std::int32_t reduce_add(Vec<std::int32_t, 16> v) noexcept {
  return _mm512_reduce_add_epi32(v.v);
}
inline std::int32_t reduce_min(Vec<std::int32_t, 16> v) noexcept {
  return _mm512_reduce_min_epi32(v.v);
}
inline std::int32_t reduce_max(Vec<std::int32_t, 16> v) noexcept {
  return _mm512_reduce_max_epi32(v.v);
}

// --------------------------------------------------------------- double x8
template <>
struct Vec<double, 8> {
  using value_type = double;
  using mask_type = Mask<8>;
  static constexpr int width = 8;

  union {
    __m512d v;
    double lane[8];
  };

  Vec() = default;
  Vec(double s) noexcept : v(_mm512_set1_pd(s)) {}  // NOLINT
  explicit Vec(__m512d r) noexcept : v(r) {}
  static Vec zero() noexcept { return Vec(_mm512_setzero_pd()); }

  static Vec load(const double* p) noexcept { return Vec(_mm512_load_pd(p)); }
  static Vec loadu(const double* p) noexcept { return Vec(_mm512_loadu_pd(p)); }
  void store(double* p) const noexcept { _mm512_store_pd(p, v); }
  void storeu(double* p) const noexcept { _mm512_storeu_pd(p, v); }

  double operator[](int i) const noexcept { return lane[i]; }
  double& operator[](int i) noexcept { return lane[i]; }

  friend Vec operator+(Vec a, Vec b) noexcept { return Vec(_mm512_add_pd(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) noexcept { return Vec(_mm512_sub_pd(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) noexcept { return Vec(_mm512_mul_pd(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) noexcept { return Vec(_mm512_div_pd(a.v, b.v)); }
  Vec& operator+=(Vec o) noexcept { v = _mm512_add_pd(v, o.v); return *this; }
  Vec& operator-=(Vec o) noexcept { v = _mm512_sub_pd(v, o.v); return *this; }
  Vec& operator*=(Vec o) noexcept { v = _mm512_mul_pd(v, o.v); return *this; }
  Vec& operator/=(Vec o) noexcept { v = _mm512_div_pd(v, o.v); return *this; }
  Vec operator-() const noexcept {
    return Vec(_mm512_sub_pd(_mm512_setzero_pd(), v));
  }

  friend mask_type operator<(Vec a, Vec b) noexcept {
    return mask_type(_mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ));
  }
  friend mask_type operator<=(Vec a, Vec b) noexcept {
    return mask_type(_mm512_cmp_pd_mask(a.v, b.v, _CMP_LE_OQ));
  }
  friend mask_type operator>(Vec a, Vec b) noexcept { return b < a; }
  friend mask_type operator>=(Vec a, Vec b) noexcept { return b <= a; }
  friend mask_type operator==(Vec a, Vec b) noexcept {
    return mask_type(_mm512_cmp_pd_mask(a.v, b.v, _CMP_EQ_OQ));
  }
  friend mask_type operator!=(Vec a, Vec b) noexcept { return ~(a == b); }
};

inline Vec<double, 8> min(Vec<double, 8> a, Vec<double, 8> b) noexcept {
  return Vec<double, 8>(_mm512_min_pd(a.v, b.v));
}
inline Vec<double, 8> max(Vec<double, 8> a, Vec<double, 8> b) noexcept {
  return Vec<double, 8>(_mm512_max_pd(a.v, b.v));
}
inline Vec<double, 8> abs(Vec<double, 8> a) noexcept {
  return Vec<double, 8>(_mm512_abs_pd(a.v));
}
inline Vec<double, 8> blend(Mask<8> m, Vec<double, 8> a, Vec<double, 8> b) noexcept {
  return Vec<double, 8>(_mm512_mask_blend_pd(
      static_cast<__mmask8>(m.bits()), b.v, a.v));
}
inline double reduce_add(Vec<double, 8> v) noexcept { return _mm512_reduce_add_pd(v.v); }
inline double reduce_min(Vec<double, 8> v) noexcept { return _mm512_reduce_min_pd(v.v); }
inline double reduce_max(Vec<double, 8> v) noexcept { return _mm512_reduce_max_pd(v.v); }

}  // namespace phigraph::simd

#endif  // __AVX512F__
