// Generic (lane-loop) implementation of the portable vector types.
//
// This is the semantic reference for every architecture-specific
// specialization (vec_sse.hpp / vec_avx2.hpp / vec_avx512.hpp): any
// specialization must behave exactly like this template. The generic form is
// also the fallback on hosts without the matching ISA, and the form used for
// odd widths (e.g. W = 1 scalar columns for non-basic message types).
//
// Mirrors the paper's §III "Portable API for Exploiting SIMD Parallelism":
// vector types with overloaded arithmetic/assignment so user code reads like
// serial code while processing w/msg_size messages per operation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <type_traits>

#include "src/common/expect.hpp"
#include "src/simd/mask.hpp"

namespace phigraph::simd {

namespace detail {
/// Cap object alignment at 64 bytes (AVX-512 / cache line).
constexpr std::size_t vec_align(std::size_t bytes) {
  return bytes > 64 ? 64 : (bytes < 4 ? 4 : bytes);
}
}  // namespace detail

template <typename T, int W>
struct Vec {
  static_assert(std::is_arithmetic_v<T>);
  static_assert(W >= 1);

  using value_type = T;
  using mask_type = Mask<W>;
  static constexpr int width = W;

  alignas(detail::vec_align(sizeof(T) * W)) T lane[W];

  Vec() = default;

  /// Broadcast construction: Vec<float,16> v(0.0f) fills all lanes.
  constexpr Vec(T scalar) noexcept {  // NOLINT(google-explicit-constructor)
    for (int i = 0; i < W; ++i) lane[i] = scalar;
  }

  static constexpr Vec zero() noexcept { return Vec(T{0}); }

  // -- loads / stores -------------------------------------------------------
  static Vec load(const T* p) noexcept {  // aligned
    PG_DCHECK(reinterpret_cast<std::uintptr_t>(p) %
                  detail::vec_align(sizeof(T) * W) ==
              0);
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = p[i];
    return v;
  }
  static Vec loadu(const T* p) noexcept {  // unaligned
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = p[i];
    return v;
  }
  void store(T* p) const noexcept {  // aligned
    PG_DCHECK(reinterpret_cast<std::uintptr_t>(p) %
                  detail::vec_align(sizeof(T) * W) ==
              0);
    for (int i = 0; i < W; ++i) p[i] = lane[i];
  }
  void storeu(T* p) const noexcept {
    for (int i = 0; i < W; ++i) p[i] = lane[i];
  }

  // -- lane access (tests / scalar epilogues) -------------------------------
  constexpr T operator[](int i) const noexcept {
    PG_DCHECK(i >= 0 && i < W);
    return lane[i];
  }
  constexpr T& operator[](int i) noexcept {
    PG_DCHECK(i >= 0 && i < W);
    return lane[i];
  }

  // -- arithmetic ------------------------------------------------------------
  friend constexpr Vec operator+(Vec a, Vec b) noexcept {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend constexpr Vec operator-(Vec a, Vec b) noexcept {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  friend constexpr Vec operator*(Vec a, Vec b) noexcept {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }
  friend constexpr Vec operator/(Vec a, Vec b) noexcept {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] / b.lane[i];
    return r;
  }
  constexpr Vec& operator+=(Vec o) noexcept { return *this = *this + o; }
  constexpr Vec& operator-=(Vec o) noexcept { return *this = *this - o; }
  constexpr Vec& operator*=(Vec o) noexcept { return *this = *this * o; }
  constexpr Vec& operator/=(Vec o) noexcept { return *this = *this / o; }
  constexpr Vec operator-() const noexcept { return Vec(T{0}) - *this; }

  // -- comparisons -> masks --------------------------------------------------
  friend constexpr mask_type operator<(Vec a, Vec b) noexcept {
    mask_type m;
    for (int i = 0; i < W; ++i) m.set(i, a.lane[i] < b.lane[i]);
    return m;
  }
  friend constexpr mask_type operator<=(Vec a, Vec b) noexcept {
    mask_type m;
    for (int i = 0; i < W; ++i) m.set(i, a.lane[i] <= b.lane[i]);
    return m;
  }
  friend constexpr mask_type operator>(Vec a, Vec b) noexcept { return b < a; }
  friend constexpr mask_type operator>=(Vec a, Vec b) noexcept {
    return b <= a;
  }
  friend constexpr mask_type operator==(Vec a, Vec b) noexcept {
    mask_type m;
    for (int i = 0; i < W; ++i) m.set(i, a.lane[i] == b.lane[i]);
    return m;
  }
  friend constexpr mask_type operator!=(Vec a, Vec b) noexcept {
    return ~(a == b);
  }
};

// -- free functions mirroring the intrinsic set ------------------------------

template <typename T, int W>
constexpr Vec<T, W> min(Vec<T, W> a, Vec<T, W> b) noexcept {
  Vec<T, W> r;
  for (int i = 0; i < W; ++i) r.lane[i] = std::min(a.lane[i], b.lane[i]);
  return r;
}

template <typename T, int W>
constexpr Vec<T, W> max(Vec<T, W> a, Vec<T, W> b) noexcept {
  Vec<T, W> r;
  for (int i = 0; i < W; ++i) r.lane[i] = std::max(a.lane[i], b.lane[i]);
  return r;
}

template <typename T, int W>
constexpr Vec<T, W> abs(Vec<T, W> a) noexcept {
  Vec<T, W> r;
  for (int i = 0; i < W; ++i)
    r.lane[i] = a.lane[i] < T{0} ? static_cast<T>(-a.lane[i]) : a.lane[i];
  return r;
}

/// blend(m, a, b): lane i gets a[i] where m[i] is set, else b[i].
/// (AVX-512 write-mask semantics.)
template <typename T, int W>
constexpr Vec<T, W> blend(Mask<W> m, Vec<T, W> a, Vec<T, W> b) noexcept {
  Vec<T, W> r;
  for (int i = 0; i < W; ++i) r.lane[i] = m[i] ? a.lane[i] : b.lane[i];
  return r;
}

// -- horizontal reductions ----------------------------------------------------

template <typename T, int W>
constexpr T reduce_add(Vec<T, W> v) noexcept {
  T s = v.lane[0];
  for (int i = 1; i < W; ++i) s += v.lane[i];
  return s;
}

template <typename T, int W>
constexpr T reduce_min(Vec<T, W> v) noexcept {
  T s = v.lane[0];
  for (int i = 1; i < W; ++i) s = std::min(s, v.lane[i]);
  return s;
}

template <typename T, int W>
constexpr T reduce_max(Vec<T, W> v) noexcept {
  T s = v.lane[0];
  for (int i = 1; i < W; ++i) s = std::max(s, v.lane[i]);
  return s;
}

}  // namespace phigraph::simd
