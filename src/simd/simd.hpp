// Umbrella header for the portable SIMD layer (§III of the paper).
//
// Includes the generic vector types plus every intrinsic backend the host
// compiler enables, and defines the device-profile helpers that map a SIMD
// register width in bytes (16 = SSE/"CPU", 64 = KNC/"MIC") to lane counts.
#pragma once

#include <cstdint>
#include <type_traits>

#include "src/simd/mask.hpp"
#include "src/simd/vec.hpp"
#include "src/simd/vec_sse.hpp"
#include "src/simd/vec_avx2.hpp"
#include "src/simd/vec_avx512.hpp"

namespace phigraph::simd {

/// SIMD register widths of the paper's two devices, in bytes.
inline constexpr int kCpuSimdBytes = 16;  // SSE4.2 on the Xeon E5-2680
inline constexpr int kMicSimdBytes = 64;  // KNC / IMCI on the Xeon Phi SE10P

/// True if T is one of the basic types the paper's SIMD message reduction
/// supports ("such as int, float and double").
template <typename T>
inline constexpr bool is_simd_basic_v =
    std::is_same_v<T, float> || std::is_same_v<T, double> ||
    std::is_same_v<T, std::int32_t>;

/// Number of message lanes for message type Msg on a device whose SIMD
/// registers are `simd_bytes` wide: w / msg_size in the paper's notation.
/// Non-basic message types fall back to scalar columns (lanes = 1), matching
/// the paper's SemiClustering exception.
template <typename Msg>
constexpr int lanes_for(int simd_bytes) noexcept {
  if constexpr (is_simd_basic_v<Msg>) {
    int lanes = simd_bytes / static_cast<int>(sizeof(Msg));
    return lanes >= 1 ? lanes : 1;
  } else {
    return 1;
  }
}

/// Paper-style vtype aliases at a given lane count.
template <int W>
using vfloat = Vec<float, W>;
template <int W>
using vint = Vec<std::int32_t, W>;
template <int W>
using vdouble = Vec<double, W>;

/// Which backend a given Vec instantiation uses (for logging/tests).
enum class Backend { Generic, Sse, Avx2, Avx512 };

template <typename T, int W>
constexpr Backend backend_of() noexcept {
  constexpr int bytes = static_cast<int>(sizeof(T)) * W;
#if defined(__AVX512F__)
  if constexpr (bytes == 64 && is_simd_basic_v<T>) return Backend::Avx512;
#endif
#if defined(__AVX2__)
  if constexpr (bytes == 32 && is_simd_basic_v<T>) return Backend::Avx2;
#endif
#if defined(__SSE4_2__)
  if constexpr (bytes == 16 && is_simd_basic_v<T>) return Backend::Sse;
#endif
  return Backend::Generic;
}

constexpr const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::Sse: return "SSE4.2";
    case Backend::Avx2: return "AVX2";
    case Backend::Avx512: return "AVX-512F";
    default: return "generic";
  }
}

}  // namespace phigraph::simd
