// Lane masks for the vector types.
//
// The paper highlights the MIC's "hardware supported mask data type, and
// write-mask operations". We expose the same concept portably: a Mask<W> is
// a W-bit lane predicate produced by vector comparisons and consumed by
// blend() / masked stores. On AVX-512 it maps directly onto __mmask16.
#pragma once

#include <bit>
#include <cstdint>

#include "src/common/expect.hpp"

namespace phigraph::simd {

template <int W>
class Mask {
  static_assert(W >= 1 && W <= 64);

 public:
  static constexpr int width = W;
  using bits_type = std::uint64_t;

  constexpr Mask() noexcept = default;
  explicit constexpr Mask(bits_type bits) noexcept : bits_(bits & all_bits()) {}

  /// Mask with the first n lanes set — used to guard ragged tails.
  static constexpr Mask first_n(int n) noexcept {
    PG_DCHECK(n >= 0 && n <= W);
    return Mask(n == 64 ? ~bits_type{0} : ((bits_type{1} << n) - 1));
  }
  static constexpr Mask none() noexcept { return Mask(0); }
  static constexpr Mask all() noexcept { return Mask(all_bits()); }

  [[nodiscard]] constexpr bool operator[](int lane) const noexcept {
    PG_DCHECK(lane >= 0 && lane < W);
    return (bits_ >> lane) & 1u;
  }
  constexpr void set(int lane, bool v) noexcept {
    PG_DCHECK(lane >= 0 && lane < W);
    if (v)
      bits_ |= bits_type{1} << lane;
    else
      bits_ &= ~(bits_type{1} << lane);
  }

  [[nodiscard]] constexpr bool any() const noexcept { return bits_ != 0; }
  [[nodiscard]] constexpr bool all_set() const noexcept {
    return bits_ == all_bits();
  }
  [[nodiscard]] constexpr int count() const noexcept {
    return std::popcount(bits_);
  }
  [[nodiscard]] constexpr bits_type bits() const noexcept { return bits_; }

  friend constexpr Mask operator&(Mask a, Mask b) noexcept {
    return Mask(a.bits_ & b.bits_);
  }
  friend constexpr Mask operator|(Mask a, Mask b) noexcept {
    return Mask(a.bits_ | b.bits_);
  }
  friend constexpr Mask operator^(Mask a, Mask b) noexcept {
    return Mask(a.bits_ ^ b.bits_);
  }
  constexpr Mask operator~() const noexcept { return Mask(~bits_ & all_bits()); }
  friend constexpr bool operator==(Mask a, Mask b) noexcept {
    return a.bits_ == b.bits_;
  }

 private:
  static constexpr bits_type all_bits() noexcept {
    return W == 64 ? ~bits_type{0} : ((bits_type{1} << W) - 1);
  }
  bits_type bits_ = 0;
};

}  // namespace phigraph::simd
