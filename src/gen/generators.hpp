// Synthetic graph generators standing in for the paper's datasets.
//
// The paper evaluates on: Pokec (1.6M vertices / 31M directed edges, a
// power-law social network whose high-out-degree vertices cluster at low
// vertex ids — the property that makes *continuous* partitioning imbalanced
// in Fig. 6), DBLP (436K vertices / 1.1M undirected edges with community
// structure, converted to directed by duplicating edges), and a randomly
// generated dense DAG (40K vertices / 200M edges) for TopoSort. We generate
// structurally equivalent graphs at configurable scale; DESIGN.md records the
// substitution.
#pragma once

#include <cstdint>

#include "src/graph/csr.hpp"

namespace phigraph::gen {

using graph::Csr;

/// Pokec-like directed power-law social graph. Three structural properties
/// of the real dataset matter to the paper's experiments, and all three are
/// reproduced here:
///   1. skew: out-/in-degrees follow a truncated power law (exponent
///      `alpha`, head softened by `head_offset` so no single vertex owns a
///      macroscopic edge share — real Pokec's top vertex has <0.05%);
///   2. front-loading: high-out-degree vertices concentrate at low vertex
///      ids ("vertices with higher out-degrees are concentrated at the
///      front of the graph Pokec") — this is what breaks continuous
///      partitioning in Fig. 6;
///   3. id-locality: a fraction `p_local` of edges lands near the source's
///      id (friends get adjacent ids) — this is what lets min-cut blocking
///      beat round-robin on communication volume.
[[nodiscard]] Csr pokec_like(vid_t num_vertices, eid_t num_edges,
                             std::uint64_t seed, double alpha = 1.7,
                             vid_t head_offset = 50, double p_local = 0.6);

/// DBLP-like undirected community graph, returned in directed form with each
/// undirected edge duplicated (the paper's own conversion). Vertices are
/// grouped into communities of geometrically distributed size; a fraction
/// `p_intra` of edge endpoints stay inside the community. Edge values are
/// interaction frequencies in [0.1, 1.0).
[[nodiscard]] Csr dblp_like(vid_t num_vertices, eid_t num_undirected_edges,
                            std::uint64_t seed, double p_intra = 0.8);

/// Dense random DAG with a bounded level structure: vertices are spread over
/// `levels` ranks and every edge points from a lower to a strictly higher
/// rank. With edges >> vertices each superstep funnels a huge number of
/// messages into few destinations (the paper's "highly connected" input
/// where "a large number of messages are sent to a single vertex"), while
/// the level count bounds the superstep count.
[[nodiscard]] Csr dag_like(vid_t num_vertices, eid_t num_edges,
                           std::uint64_t seed, int levels = 64);

/// Classic R-MAT generator (scale-free, recursive quadrant sampling).
[[nodiscard]] Csr rmat(int scale, eid_t num_edges, std::uint64_t seed,
                       double a = 0.57, double b = 0.19, double c = 0.19);

/// Uniform random directed graph (Erdős–Rényi G(n, m)).
[[nodiscard]] Csr erdos_renyi(vid_t num_vertices, eid_t num_edges,
                              std::uint64_t seed);

/// Attach uniform random weights in [lo, hi) to every edge (the paper:
/// "we randomly generated weight value for each edge" for SSSP).
void add_random_weights(Csr& g, std::uint64_t seed, float lo = 1.0f,
                        float hi = 10.0f);

}  // namespace phigraph::gen
