#include "src/gen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "src/common/expect.hpp"
#include "src/common/rng.hpp"

namespace phigraph::gen {

namespace {

/// Samples ranks in [0, n) with P(rank = r) ∝ (r + 1 + offset)^-alpha via
/// the inverse CDF of the continuous relaxation — O(1) per sample. The
/// offset softens the head (offset 0 would give rank 0 a macroscopic share).
class PowerLawSampler {
 public:
  PowerLawSampler(vid_t n, double alpha, vid_t offset = 0)
      : n_(n), offset_(offset), one_minus_alpha_(1.0 - alpha) {
    PG_CHECK(n >= 1 && alpha > 1.0);
    lo_ = std::pow(static_cast<double>(offset) + 1.0, one_minus_alpha_);
    hi_ = std::pow(static_cast<double>(n) + offset + 1.0, one_minus_alpha_);
  }

  vid_t sample(Rng& rng) const {
    const double u = rng.uniform();
    const double t = std::pow(lo_ + u * (hi_ - lo_), 1.0 / one_minus_alpha_);
    const double r = t - 1.0 - static_cast<double>(offset_);
    if (r <= 0.0) return 0;
    auto rank = static_cast<vid_t>(r);
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  vid_t n_;
  vid_t offset_;
  double one_minus_alpha_;
  double lo_, hi_;
};

/// Fisher–Yates permutation of [0, n).
std::vector<vid_t> random_permutation(vid_t n, Rng& rng) {
  std::vector<vid_t> p(n);
  std::iota(p.begin(), p.end(), vid_t{0});
  for (vid_t i = n; i > 1; --i)
    std::swap(p[i - 1], p[rng.below(i)]);
  return p;
}

/// Power-law out-degree sequence summing to ~num_edges, largest first; the
/// head is softened by `offset` exactly like PowerLawSampler.
std::vector<eid_t> power_law_degrees(vid_t n, eid_t m, double alpha,
                                     vid_t offset) {
  std::vector<double> w(n);
  double sum = 0;
  for (vid_t i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i) + 1.0 + offset, -alpha);
    sum += w[i];
  }
  std::vector<eid_t> deg(n);
  eid_t assigned = 0;
  for (vid_t i = 0; i < n; ++i) {
    deg[i] = static_cast<eid_t>(
        std::llround(static_cast<double>(m) * w[i] / sum));
    assigned += deg[i];
  }
  // Fix rounding drift by trimming/padding the tail.
  vid_t i = n;
  while (assigned > m && i > 0) {
    --i;
    if (deg[i] > 0) {
      --deg[i];
      --assigned;
    }
    if (i == 0) i = n;
  }
  for (vid_t j = n; assigned < m; --j) {
    if (j == 0) j = n;
    ++deg[j - 1];
    ++assigned;
  }
  return deg;
}

}  // namespace

Csr pokec_like(vid_t n, eid_t m, std::uint64_t seed, double alpha,
               vid_t head_offset, double p_local) {
  PG_CHECK(n >= 2 && p_local >= 0.0 && p_local <= 1.0);
  Rng rng(seed);

  // Descending power-law out-degrees with jitter: swap nearby entries so the
  // front-loading is strong but not perfectly sorted (as in real Pokec).
  auto deg = power_law_degrees(n, m, alpha, head_offset);
  for (vid_t i = 0; i + 1 < n; ++i) {
    const vid_t window = 1 + static_cast<vid_t>(rng.below(16));
    const vid_t j = std::min<vid_t>(n - 1, i + window);
    if (rng.below(2) == 0) std::swap(deg[i], deg[j]);
  }

  // Global targets: power-law over a hidden permutation so in-hubs are
  // scattered across the id range. Local targets: uniform in an id window
  // around the source (friends have nearby ids in Pokec's crawl order).
  PowerLawSampler target_dist(n, alpha, head_offset);
  auto perm = random_permutation(n, rng);
  // Friend neighborhoods span tens of adjacent ids — far smaller than a
  // 1/256 min-cut block, so blocked partitioning keeps them intact.
  const vid_t window = std::max<vid_t>(8, n / 2048);

  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t u = 0; u < n; ++u) offsets[u + 1] = offsets[u] + deg[u];
  std::vector<vid_t> targets(offsets.back());
  for (vid_t u = 0; u < n; ++u) {
    for (eid_t e = offsets[u]; e < offsets[u + 1]; ++e) {
      vid_t v;
      if (rng.uniform() < p_local) {
        const vid_t span = 2 * window + 1;
        const vid_t lo = u >= window ? u - window : 0;
        const vid_t hi = std::min<vid_t>(n - 1, lo + span - 1);
        v = lo + static_cast<vid_t>(rng.below(hi - lo + 1));
      } else {
        v = perm[target_dist.sample(rng)];
      }
      if (v == u) v = perm[rng.below(n)];  // drop most self-loops
      targets[e] = v;
    }
  }
  return Csr(std::move(offsets), std::move(targets));
}

Csr dblp_like(vid_t n, eid_t m_undirected, std::uint64_t seed,
              double p_intra) {
  PG_CHECK(n >= 2 && p_intra >= 0.0 && p_intra <= 1.0);
  Rng rng(seed);

  // Communities of geometric size, mean ~ 12 (small dense author groups).
  std::vector<vid_t> community_of(n);
  std::vector<std::pair<vid_t, vid_t>> community_range;  // [first, last)
  {
    vid_t u = 0;
    while (u < n) {
      vid_t size = 3;
      while (size < 64 && rng.uniform() > 1.0 / 12.0) ++size;
      const vid_t last = std::min<vid_t>(n, u + size);
      for (vid_t v = u; v < last; ++v)
        community_of[v] = static_cast<vid_t>(community_range.size());
      community_range.emplace_back(u, last);
      u = last;
    }
  }

  std::vector<std::pair<vid_t, vid_t>> edges;
  edges.reserve(2 * m_undirected);
  std::vector<float> weights;
  weights.reserve(2 * m_undirected);
  for (eid_t e = 0; e < m_undirected; ++e) {
    // Front-biased endpoint choice: prolific authors concentrate at low ids,
    // so continuous partitioning misjudges the edge split.
    const vid_t u = static_cast<vid_t>(
        static_cast<double>(n) * std::pow(rng.uniform(), 1.8));
    vid_t v;
    if (rng.uniform() < p_intra) {
      const auto [first, last] = community_range[community_of[u]];
      v = first + static_cast<vid_t>(rng.below(last - first));
    } else {
      v = static_cast<vid_t>(rng.below(n));
    }
    if (v == u) v = (u + 1 == n) ? 0 : u + 1;
    const float w = rng.uniform(0.1f, 1.0f);  // interaction frequency
    // Undirected edge -> both directions (the paper duplicates each edge).
    edges.emplace_back(u, v);
    weights.push_back(w);
    edges.emplace_back(v, u);
    weights.push_back(w);
  }

  Csr g = Csr::from_edges(n, edges);
  std::vector<float> csr_weights(edges.size());
  std::vector<eid_t> cursor(g.offsets().begin(), g.offsets().end() - 1);
  for (std::size_t i = 0; i < edges.size(); ++i)
    csr_weights[cursor[edges[i].first]++] = weights[i];
  g.set_edge_values(std::move(csr_weights));
  return g;
}

Csr dag_like(vid_t n, eid_t m, std::uint64_t seed, int levels) {
  PG_CHECK(n >= 2 && levels >= 2);
  Rng rng(seed);
  // Vertex ids follow topological order (as generated DAG files do): vertex
  // v sits at level floor(v * levels / n). Early vertices can point at
  // nearly everything, so out-degree declines along the id range — exactly
  // the skew that makes *continuous* partitioning collapse in Fig. 6.
  std::vector<std::int32_t> level(n);
  for (vid_t v = 0; v < n; ++v)
    level[v] = static_cast<std::int32_t>(
        static_cast<std::uint64_t>(v) * static_cast<std::uint64_t>(levels) / n);

  std::vector<std::pair<vid_t, vid_t>> edges;
  edges.reserve(m);
  for (eid_t e = 0; e < m; ++e) {
    vid_t a = static_cast<vid_t>(rng.below(n));
    vid_t b = static_cast<vid_t>(rng.below(n));
    while (level[a] == level[b]) b = static_cast<vid_t>(rng.below(n));
    if (level[a] > level[b]) std::swap(a, b);
    edges.emplace_back(a, b);
  }
  return Csr::from_edges(n, edges);
}

Csr rmat(int scale, eid_t m, std::uint64_t seed, double a, double b,
         double c) {
  PG_CHECK(scale >= 1 && scale < 31);
  const double d = 1.0 - a - b - c;
  PG_CHECK(d >= 0.0);
  const vid_t n = vid_t{1} << scale;
  Rng rng(seed);
  std::vector<std::pair<vid_t, vid_t>> edges;
  edges.reserve(m);
  for (eid_t e = 0; e < m; ++e) {
    vid_t u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      const int quadrant = r < a ? 0 : (r < a + b ? 1 : (r < a + b + c ? 2 : 3));
      u = (u << 1) | (quadrant >> 1);
      v = (v << 1) | (quadrant & 1);
    }
    edges.emplace_back(u, v);
  }
  return Csr::from_edges(n, edges);
}

Csr erdos_renyi(vid_t n, eid_t m, std::uint64_t seed) {
  PG_CHECK(n >= 2);
  Rng rng(seed);
  std::vector<std::pair<vid_t, vid_t>> edges;
  edges.reserve(m);
  for (eid_t e = 0; e < m; ++e) {
    const vid_t u = static_cast<vid_t>(rng.below(n));
    vid_t v = static_cast<vid_t>(rng.below(n));
    while (v == u) v = static_cast<vid_t>(rng.below(n));
    edges.emplace_back(u, v);
  }
  return Csr::from_edges(n, edges);
}

void add_random_weights(Csr& g, std::uint64_t seed, float lo, float hi) {
  PG_CHECK(lo < hi && lo > 0.0f);  // SSSP needs positive weights
  Rng rng(seed);
  std::vector<float> w(g.num_edges());
  for (auto& x : w) x = rng.uniform(lo, hi);
  g.set_edge_values(std::move(w));
}

}  // namespace phigraph::gen
