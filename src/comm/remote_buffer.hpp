// Remote message buffer with combine-before-send (paper §IV-A).
//
// Messages destined for vertices owned by the other device are not shipped
// individually: "To reduce the communication overhead, a combination is
// conducted to the remote message buffer" using the application's reduction.
// We keep one dense slot per global vertex; the first deposit records the
// vertex in a touched list so draining and clearing are proportional to the
// number of distinct remote destinations, not the graph size.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/expect.hpp"
#include "src/common/types.hpp"
#include "src/sched/spinlock.hpp"

namespace phigraph::comm {

template <typename Msg>
class RemoteBuffer {
 public:
  explicit RemoteBuffer(vid_t num_global_vertices)
      : value_(num_global_vertices),
        has_(num_global_vertices, 0),
        locks_(std::make_unique<sched::SpinLock[]>(num_global_vertices)) {}

  /// Deposit a message for global vertex `dst`, combining with any message
  /// already buffered for it. Thread-safe. Combine is the application's
  /// scalar reduction (min for SSSP, + for PageRank, ...).
  template <typename Combine>
  void deposit(vid_t dst, const Msg& m, Combine&& combine) {
    locks_[dst].lock();
    if (has_[dst]) {
      value_[dst] = combine(value_[dst], m);
      locks_[dst].unlock();
    } else {
      value_[dst] = m;
      has_[dst] = 1;
      locks_[dst].unlock();
      sched::LockGuard<sched::SpinLock> g(touched_lock_);
      touched_.push_back(dst);
    }
  }

  /// Number of distinct destinations currently buffered.
  [[nodiscard]] std::size_t touched_count() const noexcept {
    return touched_.size();
  }

  /// Invoke f(dst, combined_value) for every buffered destination, then
  /// clear the buffer. Single-threaded (runs in the exchange step).
  template <typename F>
  void drain(F&& f) {
    for (vid_t dst : touched_) {
      f(dst, value_[dst]);
      has_[dst] = 0;
    }
    touched_.clear();
  }

 private:
  std::vector<Msg> value_;
  std::vector<std::uint8_t> has_;
  std::unique_ptr<sched::SpinLock[]> locks_;
  sched::SpinLock touched_lock_;
  std::vector<vid_t> touched_;
};

}  // namespace phigraph::comm
