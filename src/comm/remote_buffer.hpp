// Remote message buffer with combine-before-send (paper §IV-A).
//
// Messages destined for vertices owned by another device are not shipped
// individually: "To reduce the communication overhead, a combination is
// conducted to the remote message buffer" using the application's reduction.
// We keep one dense slot per global vertex; the first deposit records the
// vertex in a touched list so draining and clearing are proportional to the
// number of distinct remote destinations, not the graph size.
//
// The touched list is sharded by (destination rank, destination hash):
// deposits from many threads contend only within a shard, the drain /
// serialize step of the exchange phase parallelizes over shards (each shard
// is drained by exactly one thread), and because a destination rank owns a
// contiguous shard range, the per-peer batches of the N-rank all-to-all
// exchange fall out of the shard order for free.
//
// Combining is optional per deposit: programs whose combiner is disabled
// (CombinerKind::kNone, or a measurement run with combining switched off)
// use deposit_raw(), which appends the message verbatim to the shard — the
// drain then yields every individual message, in deposit order per shard.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/audit.hpp"
#include "src/common/expect.hpp"
#include "src/common/sync.hpp"
#include "src/common/types.hpp"
#include "src/sched/spinlock.hpp"

namespace phigraph::comm {

template <typename Msg>
class RemoteBuffer {
 public:
  static constexpr std::size_t kDefaultShards = 32;

  explicit RemoteBuffer(vid_t num_global_vertices,
                        std::size_t shards = kDefaultShards, int num_ranks = 1)
      : value_(num_global_vertices),
        has_(num_global_vertices, 0),
        locks_(std::make_unique<sched::SpinLock[]>(num_global_vertices)),
        shard_mask_(round_up_pow2(shards) - 1),
        num_ranks_(num_ranks < 1 ? 1 : num_ranks),
        shards_((shard_mask_ + 1) * static_cast<std::size_t>(num_ranks_)) {}

  /// Deposit a message for global vertex `dst` owned by `dst_rank`,
  /// combining with any message already buffered for it. Thread-safe.
  /// Combine is the application's scalar reduction (min for SSSP, + for
  /// PageRank, ...).
  template <typename Combine>
  void deposit(vid_t dst, int dst_rank, const Msg& m, Combine&& combine) {
    PG_DCHECK_FMT(static_cast<std::size_t>(dst) < value_.size(),
                  "RemoteBuffer::deposit: global vertex %u outside the %zu "
                  "vertex id space",
                  dst, value_.size());
    PG_AUDIT_FMT(!shards_[shard_of(dst, dst_rank)].draining.load(
                     sync::relaxed),
                 "remote-shard-quiescence",
                 "deposit for vertex %u raced with the drain of its shard "
                 "%zu (deposits must stop before the exchange phase drains)",
                 dst, shard_of(dst, dst_rank));
    locks_[dst].lock();
    // value_/has_ slots are plain shared state guarded by the per-vertex
    // spinlock during deposits and read lock-free by drain_shard, which the
    // phase contract orders after all deposits (the model RemoteBuffer test
    // drives exactly that contract through the race detector).
    sync::plain_read(&has_[dst], "RemoteBuffer has flag");
    if (has_[dst]) {
      sync::plain_write(&value_[dst], "RemoteBuffer value slot");
      value_[dst] = combine(value_[dst], m);
      locks_[dst].unlock();
    } else {
      sync::plain_write(&value_[dst], "RemoteBuffer value slot");
      value_[dst] = m;
      sync::plain_write(&has_[dst], "RemoteBuffer has flag");
      has_[dst] = 1;
      locks_[dst].unlock();
      Shard& s = shards_[shard_of(dst, dst_rank)];
      sched::LockGuard<sched::SpinLock> g(s.lock);
      sync::plain_write(&s.touched, "RemoteBuffer shard touched list");
      s.touched.push_back(dst);
    }
  }

  /// Single-destination-rank convenience (the historical two-rank API).
  template <typename Combine>
  void deposit(vid_t dst, const Msg& m, Combine&& combine) {
    deposit(dst, /*dst_rank=*/0, m, std::forward<Combine>(combine));
  }

  /// Deposit without combining: the message is appended verbatim to its
  /// shard and drained individually. A given buffer must not mix combined
  /// and raw deposits within one superstep (the engine picks one mode per
  /// run).
  void deposit_raw(vid_t dst, int dst_rank, const Msg& m) {
    PG_DCHECK_FMT(static_cast<std::size_t>(dst) < value_.size(),
                  "RemoteBuffer::deposit_raw: global vertex %u outside the "
                  "%zu vertex id space",
                  dst, value_.size());
    Shard& s = shards_[shard_of(dst, dst_rank)];
    PG_AUDIT_FMT(!s.draining.load(sync::relaxed),
                 "remote-shard-quiescence",
                 "raw deposit for vertex %u raced with the drain of its "
                 "shard %zu",
                 dst, shard_of(dst, dst_rank));
    sched::LockGuard<sched::SpinLock> g(s.lock);
    sync::plain_write(&s.raw, "RemoteBuffer shard raw list");
    s.raw.push_back({dst, m});
  }

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }

  /// Shards per destination rank (a power of two); destination rank r owns
  /// the contiguous shard range [r * shards_per_rank(), (r+1) * ...).
  [[nodiscard]] std::size_t shards_per_rank() const noexcept {
    return shard_mask_ + 1;
  }

  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }

  /// Messages buffered in shard `s`: distinct combined destinations plus raw
  /// appends. Not synchronized with concurrent deposits — call between
  /// phases.
  [[nodiscard]] std::size_t shard_touched_count(std::size_t s) const noexcept {
    return shards_[s].touched.size() + shards_[s].raw.size();
  }

  /// Number of buffered entries across all shards.
  [[nodiscard]] std::size_t touched_count() const noexcept {
    std::size_t n = 0;
    for (const Shard& s : shards_) n += s.touched.size() + s.raw.size();
    return n;
  }

  /// Invoke f(dst, value) for every entry buffered in shard `s` — combined
  /// destinations first (first-touch order), then raw messages (deposit
  /// order) — then clear that shard. Safe to run concurrently for
  /// *different* shards (each destination lives in exactly one shard), but
  /// must not race with deposits.
  template <typename F>
  void drain_shard(std::size_t s, F&& f) {
    PG_DCHECK_FMT(s < shards_.size(),
                  "RemoteBuffer::drain_shard: shard %zu outside [0, %zu)", s,
                  shards_.size());
    Shard& shard = shards_[s];
    PG_AUDIT_FMT(!shard.draining.exchange(true, sync::acq_rel),
                 "remote-shard-single-drainer",
                 "shard %zu drained by thread %d while another drain of the "
                 "same shard is in flight",
                 s, audit::thread_id());
    sync::plain_write(&shard.touched, "RemoteBuffer shard touched list");
    for (vid_t dst : shard.touched) {
      sync::plain_read(&value_[dst], "RemoteBuffer value slot");
      f(dst, value_[dst]);
      sync::plain_write(&has_[dst], "RemoteBuffer has flag");
      has_[dst] = 0;
    }
    shard.touched.clear();
    sync::plain_write(&shard.raw, "RemoteBuffer shard raw list");
    for (const RawEntry& e : shard.raw) f(e.dst, e.msg);
    shard.raw.clear();
    PG_AUDIT_ONLY(shard.draining.store(false, sync::release);)
  }

  /// Drain every shard on the calling thread (tests / non-parallel callers).
  template <typename F>
  void drain(F&& f) {
    for (std::size_t s = 0; s < shards_.size(); ++s) drain_shard(s, f);
  }

  /// Start a new recovery epoch: discard every buffered deposit (an aborted
  /// superstep's half-staged messages must not leak into the resumed run).
  /// Clears the has_ flags through the touched lists, so the cost is
  /// proportional to what was buffered, like drain(). The caller must be
  /// quiescent — no concurrent deposits or drains; the recovery ladder runs
  /// this after every rank thread of the aborted epoch has been joined.
  void advance_epoch() {
    for (Shard& s : shards_) {
      sync::plain_write(&s.touched, "RemoteBuffer shard touched list");
      for (vid_t dst : s.touched) {
        sync::plain_write(&has_[dst], "RemoteBuffer has flag");
        has_[dst] = 0;
      }
      s.touched.clear();
      sync::plain_write(&s.raw, "RemoteBuffer shard raw list");
      s.raw.clear();
    }
    ++epoch_;
  }

  /// The current recovery epoch (0 until the first advance_epoch()).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  struct RawEntry {
    vid_t dst;
    Msg msg;
  };

  struct alignas(64) Shard {
    sched::SpinLock lock;
    std::vector<vid_t> touched;
    std::vector<RawEntry> raw;
#if PG_AUDIT_ENABLED
    // Checked build only: set for the duration of drain_shard so concurrent
    // drains of one shard — and deposits racing a drain — are caught.
    sync::Atomic<bool> draining{false};
#endif
  };

  [[nodiscard]] std::size_t shard_of(vid_t dst, int dst_rank) const noexcept {
    // Multiplicative hash so contiguous destination ranges (continuous
    // partitions) spread across shards instead of hammering one; the
    // destination rank selects the shard block so one drain order yields
    // per-peer batches.
    return static_cast<std::size_t>(dst_rank) * (shard_mask_ + 1) +
           ((static_cast<std::size_t>(dst) * 0x9E3779B9u >> 16) & shard_mask_);
  }

  static std::size_t round_up_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::vector<Msg> value_;
  std::vector<std::uint8_t> has_;
  std::unique_ptr<sched::SpinLock[]> locks_;
  std::size_t shard_mask_;
  int num_ranks_;
  std::vector<Shard> shards_;
  std::uint64_t epoch_ = 0;  // recovery generation; bumped while quiescent
};

}  // namespace phigraph::comm
