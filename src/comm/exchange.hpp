// Two-rank rendezvous exchange — the in-process stand-in for the paper's
// MPI symmetric computing (CPU = rank 0, MIC = rank 1).
//
// Each superstep the devices swap exactly one combined message batch (the
// paper: "The combination result is sent to the other device as a single MPI
// message") plus one termination-control word. Exchange<T> implements the
// blocking pairwise swap both uses need.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#include "src/common/expect.hpp"

namespace phigraph::comm {

template <typename T>
class Exchange {
 public:
  /// Deposits `mine` as rank `rank`'s contribution and blocks until the
  /// other rank's contribution is available; returns it. Reusable across
  /// rounds: a slot is only refilled after its previous value was consumed.
  T exchange(int rank, T mine) {
    PG_CHECK(rank == 0 || rank == 1);
    const int peer = 1 - rank;
    std::unique_lock<std::mutex> l(mu_);
    cv_.wait(l, [&] { return !present_[rank]; });
    slot_[rank] = std::move(mine);
    present_[rank] = true;
    cv_.notify_all();
    cv_.wait(l, [&] { return present_[peer]; });
    T theirs = std::move(slot_[peer]);
    present_[peer] = false;
    cv_.notify_all();
    return theirs;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  T slot_[2];
  bool present_[2] = {false, false};
};

}  // namespace phigraph::comm
