// Two-rank rendezvous exchange — the in-process stand-in for the paper's
// MPI symmetric computing (CPU = rank 0, MIC = rank 1).
//
// Each superstep the devices swap exactly one combined message batch (the
// paper: "The combination result is sent to the other device as a single MPI
// message") plus one termination-control word. Exchange<T> implements the
// blocking pairwise swap both uses need.
//
// Fault tolerance (see DESIGN.md §6): the historical exchange() blocks
// forever, so a peer that dies mid-superstep deadlocks the survivor.
// exchange_for() bounds every wait by a deadline, and poison() lets a
// failing rank wake its peer *immediately* with a structured FaultReport.
// A poisoned exchange never re-arms: every later call from either rank
// returns kPeerFailed at once, so retries cannot resurrect a half-dead
// rendezvous.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "src/common/expect.hpp"
#include "src/fault/fault.hpp"
#include "src/metrics/trace.hpp"

namespace phigraph::comm {

/// Outcome of a deadline-bounded exchange.
enum class ExchangeStatus : std::uint8_t {
  kOk = 0,
  kTimeout,     // the peer did not show up before the deadline
  kPeerFailed,  // the channel is poisoned; `fault` names the failing rank
};

constexpr const char* exchange_status_name(ExchangeStatus s) noexcept {
  switch (s) {
    case ExchangeStatus::kOk: return "ok";
    case ExchangeStatus::kTimeout: return "timeout";
    case ExchangeStatus::kPeerFailed: return "peer-failed";
  }
  return "?";
}

template <typename T>
class Exchange {
 public:
  struct Result {
    ExchangeStatus status = ExchangeStatus::kOk;
    T value{};                  // the peer's contribution (kOk only)
    fault::FaultReport fault;   // the poison reason (kPeerFailed only)

    [[nodiscard]] explicit operator bool() const noexcept {
      return status == ExchangeStatus::kOk;
    }
  };

  /// Deposits `mine` as rank `rank`'s contribution and blocks until the
  /// other rank's contribution is available; returns it. Reusable across
  /// rounds: a slot is only refilled after its previous value was consumed.
  /// Aborts if the channel was poisoned — callers that must survive a peer
  /// failure use exchange_for().
  T exchange(int rank, T mine) {
    Result r = exchange_for(rank, std::move(mine), kForever);
    PG_CHECK_FMT(r.status == ExchangeStatus::kOk,
                 "Exchange::exchange on a dead channel (%s); use "
                 "exchange_for() on fault-tolerant paths",
                 exchange_status_name(r.status));
    return std::move(r.value);
  }

  /// Deadline-bounded exchange. Returns kOk with the peer's value, kTimeout
  /// if the peer did not arrive in time (the deposit is retracted if still
  /// unconsumed, so the channel is not left half-advanced), or kPeerFailed
  /// with the poisoning rank's FaultReport. Once poisoned, every call from
  /// either rank returns kPeerFailed immediately.
  Result exchange_for(int rank, T mine, std::chrono::milliseconds deadline) {
    PG_CHECK(rank == 0 || rank == 1);
    // The whole rendezvous (both waits) is the PCIe-latency stand-in; the
    // span has no superstep of its own — exchanges also carry control
    // traffic — so it is excluded from phase-time accounting.
    PG_TRACE_SCOPE(kExchangeWait, -1, rank);
    const int peer = 1 - rank;
    const auto until = std::chrono::steady_clock::now() + deadline;
    std::unique_lock<std::mutex> l(mu_);
    if (!cv_.wait_until(l, until, [&] { return poisoned_ || !present_[rank]; }))
      return Result{ExchangeStatus::kTimeout, T{}, {}};
    if (poisoned_) return poisoned_result();
    slot_[rank] = std::move(mine);
    present_[rank] = true;
    cv_.notify_all();
    if (!cv_.wait_until(l, until, [&] { return poisoned_ || present_[peer]; })) {
      if (present_[rank]) {  // peer never consumed it: retract
        slot_[rank] = T{};
        present_[rank] = false;
      }
      return Result{ExchangeStatus::kTimeout, T{}, {}};
    }
    if (poisoned_) return poisoned_result();
    Result r;
    r.value = std::move(slot_[peer]);
    present_[peer] = false;
    cv_.notify_all();
    return r;
  }

  /// Marks the channel dead on behalf of `rank` and wakes any waiter. The
  /// first report wins (a second poison from the other rank is dropped);
  /// there is no un-poison.
  void poison(int rank, fault::FaultReport reason) {
    PG_CHECK(rank == 0 || rank == 1);
    {
      std::lock_guard<std::mutex> l(mu_);
      if (!poisoned_) {
        poisoned_ = true;
        fault_ = std::move(reason);
      }
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool poisoned() const {
    std::lock_guard<std::mutex> l(mu_);
    return poisoned_;
  }

  /// The poison reason (default-constructed report if not poisoned).
  [[nodiscard]] fault::FaultReport fault() const {
    std::lock_guard<std::mutex> l(mu_);
    return fault_;
  }

 private:
  // "Forever" for the legacy blocking wrapper: one year, far past any
  // plausible run, without risking time_point overflow.
  static constexpr std::chrono::milliseconds kForever =
      std::chrono::hours(24 * 365);

  Result poisoned_result() const {
    return Result{ExchangeStatus::kPeerFailed, T{}, fault_};
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  T slot_[2];
  bool present_[2] = {false, false};
  bool poisoned_ = false;
  fault::FaultReport fault_;
};

}  // namespace phigraph::comm
