// Rendezvous exchanges — the in-process stand-in for the paper's MPI
// symmetric computing (CPU = rank 0, MIC = rank 1).
//
// Each superstep the devices swap exactly one combined message batch per
// peer (the paper: "The combination result is sent to the other device as a
// single MPI message") plus one termination-control word. Exchange<T>
// implements the blocking pairwise swap of the paper's two-rank
// configuration; AllToAll<T> generalizes it to N ranks with one staging slot
// per (source, destination) pair — the MPI_Alltoall analogue the cluster
// engine uses.
//
// Fault tolerance (see DESIGN.md §6): the historical exchange() blocks
// forever, so a peer that dies mid-superstep deadlocks the survivor.
// exchange_for() bounds every wait by a deadline, and poison() lets a
// failing rank wake its peers *immediately* with a structured FaultReport.
// A poisoned exchange never re-arms: every later call from any rank returns
// kPeerFailed at once, so retries cannot resurrect a half-dead rendezvous.
#pragma once

#include <chrono>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/expect.hpp"
#include "src/common/sync.hpp"
#include "src/fault/fault.hpp"
#include "src/metrics/trace.hpp"

namespace phigraph::comm {

/// Outcome of a deadline-bounded exchange.
enum class ExchangeStatus : std::uint8_t {
  kOk = 0,
  kTimeout,     // the peer did not show up before the deadline
  kPeerFailed,  // the channel is poisoned; `fault` names the failing rank
};

constexpr const char* exchange_status_name(ExchangeStatus s) noexcept {
  switch (s) {
    case ExchangeStatus::kOk: return "ok";
    case ExchangeStatus::kTimeout: return "timeout";
    case ExchangeStatus::kPeerFailed: return "peer-failed";
  }
  return "?";
}

template <typename T>
class Exchange {
 public:
  struct Result {
    ExchangeStatus status = ExchangeStatus::kOk;
    T value{};                  // the peer's contribution (kOk only)
    fault::FaultReport fault;   // the poison reason (kPeerFailed only)

    [[nodiscard]] explicit operator bool() const noexcept {
      return status == ExchangeStatus::kOk;
    }
  };

  /// Deposits `mine` as rank `rank`'s contribution and blocks until the
  /// other rank's contribution is available; returns it. Reusable across
  /// rounds: a slot is only refilled after its previous value was consumed.
  /// Aborts if the channel was poisoned — callers that must survive a peer
  /// failure use exchange_for().
  T exchange(int rank, T mine) {
    Result r = exchange_for(rank, std::move(mine), kForever);
    PG_CHECK_FMT(r.status == ExchangeStatus::kOk,
                 "Exchange::exchange on a dead channel (%s); use "
                 "exchange_for() on fault-tolerant paths",
                 exchange_status_name(r.status));
    return std::move(r.value);
  }

  /// Deadline-bounded exchange. Returns kOk with the peer's value, kTimeout
  /// if the peer did not arrive in time (the deposit is retracted if still
  /// unconsumed, so the channel is not left half-advanced), or kPeerFailed
  /// with the poisoning rank's FaultReport. Once poisoned, every call from
  /// either rank returns kPeerFailed immediately.
  Result exchange_for(int rank, T mine, std::chrono::milliseconds deadline) {
    PG_CHECK(rank == 0 || rank == 1);
    // The whole rendezvous (both waits) is the PCIe-latency stand-in; the
    // span has no superstep of its own — exchanges also carry control
    // traffic — so it is excluded from phase-time accounting.
    PG_TRACE_SCOPE(kExchangeWait, -1, rank);
    const int peer = 1 - rank;
    const auto until = std::chrono::steady_clock::now() + deadline;
    std::unique_lock<sync::Mutex> l(mu_);
    if (!cv_.wait_until(l, until, [&] { return poisoned_ || !present_[rank]; }))
      return Result{ExchangeStatus::kTimeout, T{}, {}};
    if (poisoned_) return poisoned_result();
    // slot_/present_ are plain shared state; every access is under mu_, so
    // the model race detector sees them ordered through the mutex clocks.
    sync::plain_write(&slot_[rank], "Exchange staging slot");
    slot_[rank] = std::move(mine);
    present_[rank] = true;
    cv_.notify_all();
    if (!cv_.wait_until(l, until, [&] { return poisoned_ || present_[peer]; })) {
      if (present_[rank]) {  // peer never consumed it: retract
        sync::plain_write(&slot_[rank], "Exchange staging slot");
        slot_[rank] = T{};
        present_[rank] = false;
      }
      return Result{ExchangeStatus::kTimeout, T{}, {}};
    }
    if (poisoned_) return poisoned_result();
    Result r;
    sync::plain_read(&slot_[peer], "Exchange staging slot");
    r.value = std::move(slot_[peer]);
    sync::plain_write(&slot_[peer], "Exchange staging slot");
    present_[peer] = false;
    cv_.notify_all();
    return r;
  }

  /// Marks the channel dead on behalf of `rank` and wakes any waiter. The
  /// first report wins (a second poison from the other rank is dropped);
  /// there is no un-poison.
  void poison(int rank, fault::FaultReport reason) {
    PG_CHECK(rank == 0 || rank == 1);
    {
      sync::LockGuard l(mu_);
      if (!poisoned_) {
        poisoned_ = true;
        fault_ = std::move(reason);
      }
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool poisoned() const {
    sync::LockGuard l(mu_);
    return poisoned_;
  }

  /// The poison reason (default-constructed report if not poisoned).
  [[nodiscard]] fault::FaultReport fault() const {
    sync::LockGuard l(mu_);
    return fault_;
  }

 private:
  // "Forever" for the legacy blocking wrapper: one year, far past any
  // plausible run, without risking time_point overflow.
  static constexpr std::chrono::milliseconds kForever =
      std::chrono::hours(24 * 365);

  Result poisoned_result() const {
    return Result{ExchangeStatus::kPeerFailed, T{}, fault_};
  }

  mutable sync::Mutex mu_;
  sync::CondVar cv_;
  T slot_[2];
  bool present_[2] = {false, false};
  bool poisoned_ = false;
  fault::FaultReport fault_;
};

/// N-rank all-to-all rendezvous over an N x N staging-slot matrix. Each round
/// every rank deposits one value per destination and blocks until every
/// peer's value for it has arrived. The two-phase protocol mirrors
/// Exchange<T>: a rank first waits for its *previous* deposits to be
/// consumed (so rounds cannot overtake each other), then deposits, then
/// waits for all inbound slots, consumes them, and wakes the depositors.
///
/// Fault semantics are identical to Exchange<T> *within an epoch*: poison()
/// is first-wins; a timeout retracts this rank's unconsumed deposits so the
/// matrix is not left half-advanced, and reports the first peer that had not
/// arrived (Result::fault.rank) so the caller can name the suspect.
///
/// Recovery epochs: the ladder in ClusterEngine aborts a round, restores
/// engines from a checkpoint, and reuses the same channel. advance_epoch()
/// bumps a generation counter, clears the poison, and wipes every staged
/// deposit and round count. Deposits are stamped with the epoch current when
/// their exchange_for() *entered*, and consumption only accepts
/// current-epoch stamps — so a straggler from an aborted round can neither
/// leak a stale value into the new epoch nor satisfy its rendezvous (it
/// returns kPeerFailed with an "epoch advanced" report instead).
template <typename T>
class AllToAll {
 public:
  struct Result {
    ExchangeStatus status = ExchangeStatus::kOk;
    std::vector<T> values;      // indexed by source rank (kOk only);
                                // values[self] is default-constructed
    fault::FaultReport fault;   // poison reason (kPeerFailed) or, on
                                // kTimeout, rank = first absent peer

    [[nodiscard]] explicit operator bool() const noexcept {
      return status == ExchangeStatus::kOk;
    }
  };

  explicit AllToAll(int num_ranks)
      : n_(num_ranks),
        slot_(static_cast<std::size_t>(num_ranks) *
              static_cast<std::size_t>(num_ranks)),
        present_(slot_.size(), 0),
        slot_epoch_(slot_.size(), 0),
        round_(static_cast<std::size_t>(num_ranks), 0) {
    PG_CHECK_MSG(num_ranks >= 1, "AllToAll needs at least one rank");
  }

  [[nodiscard]] int num_ranks() const noexcept { return n_; }

  /// Deposit `outgoing[dst]` for every destination rank (outgoing[rank]
  /// itself is ignored) and block until every peer's contribution for this
  /// rank is available. `outgoing` must hold exactly num_ranks() entries.
  Result exchange_for(int rank, std::vector<T> outgoing,
                      std::chrono::milliseconds deadline) {
    PG_CHECK(rank >= 0 && rank < n_);
    PG_CHECK_MSG(static_cast<int>(outgoing.size()) == n_,
                 "AllToAll: one outgoing value per rank is required");
    PG_TRACE_SCOPE(kExchangeWait, -1, rank);
    if (n_ == 1) {
      Result r;
      r.values.resize(1);
      return r;  // degenerate single-rank "cluster": nothing to swap
    }
    const auto until = std::chrono::steady_clock::now() + deadline;
    std::unique_lock<sync::Mutex> l(mu_);
    // Deposits made by this call belong to the epoch current at entry. If
    // recovery advances the epoch while this rank is blocked below, its
    // rendezvous is void: it bails out instead of consuming new-epoch slots.
    const std::uint64_t my_epoch = epoch_;
    // Phase 1: wait until this rank's previous deposits were all consumed.
    if (!cv_.wait_until(l, until, [&] {
          if (poisoned_ || epoch_ != my_epoch) return true;
          for (int dst = 0; dst < n_; ++dst)
            if (dst != rank && present_[idx(rank, dst)]) return false;
          return true;
        }))
      return timeout_result(rank);
    if (epoch_ != my_epoch) return stale_epoch_result(my_epoch);
    if (poisoned_) return poisoned_result();
    // Slot elements are plain shared state; every touch is under mu_ (the
    // model AllToAll test drives deposit/drain/retract through the race
    // detector to prove the monitor discipline is airtight).
    for (int dst = 0; dst < n_; ++dst) {
      if (dst == rank) continue;
      sync::plain_write(&slot_[idx(rank, dst)], "AllToAll staging slot");
      slot_[idx(rank, dst)] = std::move(outgoing[dst]);
      present_[idx(rank, dst)] = 1;
      slot_epoch_[idx(rank, dst)] = my_epoch;
    }
    // Round bookkeeping for timeout attribution: a retracted deposit leaves
    // the slot indistinguishable from "never deposited", but the depositor's
    // round count proves it showed up — so timeouts blame the peer that is
    // genuinely behind, not a peer that timed out moments earlier.
    ++round_[static_cast<std::size_t>(rank)];
    cv_.notify_all();
    // Phase 2: wait for every inbound slot, then consume them all at once.
    // A slot stamped with a different epoch counts as absent: it was staged
    // for a rendezvous that no longer exists.
    if (!cv_.wait_until(l, until, [&] {
          if (poisoned_ || epoch_ != my_epoch) return true;
          for (int src = 0; src < n_; ++src)
            if (src != rank && !(present_[idx(src, rank)] &&
                                 slot_epoch_[idx(src, rank)] == my_epoch))
              return false;
          return true;
        })) {
      // Retract whatever nobody consumed yet so the channel stays usable.
      for (int dst = 0; dst < n_; ++dst) {
        if (dst == rank) continue;
        if (present_[idx(rank, dst)]) {
          sync::plain_write(&slot_[idx(rank, dst)], "AllToAll staging slot");
          slot_[idx(rank, dst)] = T{};
          present_[idx(rank, dst)] = 0;
        }
      }
      return timeout_result(rank);
    }
    if (epoch_ != my_epoch) return stale_epoch_result(my_epoch);
    if (poisoned_) return poisoned_result();
    Result r;
    r.values.resize(static_cast<std::size_t>(n_));
    for (int src = 0; src < n_; ++src) {
      if (src == rank) continue;
      sync::plain_read(&slot_[idx(src, rank)], "AllToAll staging slot");
      r.values[static_cast<std::size_t>(src)] = std::move(slot_[idx(src, rank)]);
      present_[idx(src, rank)] = 0;
    }
    cv_.notify_all();
    return r;
  }

  /// Marks the channel dead on behalf of `rank` and wakes every waiter. The
  /// first report wins; only advance_epoch() can clear it.
  void poison(int rank, fault::FaultReport reason) {
    PG_CHECK(rank >= 0 && rank < n_);
    {
      sync::LockGuard l(mu_);
      if (!poisoned_) {
        poisoned_ = true;
        fault_ = std::move(reason);
      }
    }
    cv_.notify_all();
  }

  /// Start a new recovery epoch: clear the poison, wipe every staged deposit
  /// and round count, and wake any waiter (which will observe the epoch
  /// change and bail out with a stale-epoch report). Called by the recovery
  /// ladder after all rank threads of the aborted epoch have been joined —
  /// but the epoch stamps keep even an unjoined straggler harmless.
  void advance_epoch() {
    {
      sync::LockGuard l(mu_);
      ++epoch_;
      poisoned_ = false;
      fault_ = {};
      for (std::size_t i = 0; i < slot_.size(); ++i) {
        if (present_[i]) {
          sync::plain_write(&slot_[i], "AllToAll staging slot");
          slot_[i] = T{};
          present_[i] = 0;
        }
      }
      for (auto& r : round_) r = 0;
    }
    cv_.notify_all();
  }

  /// The current recovery epoch (0 until the first advance_epoch()).
  [[nodiscard]] std::uint64_t epoch() const {
    sync::LockGuard l(mu_);
    return epoch_;
  }

  [[nodiscard]] bool poisoned() const {
    sync::LockGuard l(mu_);
    return poisoned_;
  }

  /// The poison reason (default-constructed report if not poisoned).
  [[nodiscard]] fault::FaultReport fault() const {
    sync::LockGuard l(mu_);
    return fault_;
  }

 private:
  [[nodiscard]] std::size_t idx(int src, int dst) const noexcept {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  Result poisoned_result() const {
    return Result{ExchangeStatus::kPeerFailed, {}, fault_};
  }

  /// Caller holds mu_. The epoch advanced while this rank was inside its
  /// rendezvous: the round is void. Reported as kPeerFailed (the caller's
  /// run is over either way) with a self-describing reason; rank -1 keeps
  /// the report from being mistaken for a genuine peer diagnosis.
  Result stale_epoch_result(std::uint64_t entered) const {
    Result r;
    r.status = ExchangeStatus::kPeerFailed;
    r.fault.superstep = -1;
    r.fault.phase = "exchange";
    r.fault.kind = fault::FaultKind::kTransient;
    r.fault.what = "recovery epoch advanced mid-rendezvous (entered epoch " +
                   std::to_string(entered) + ", now " + std::to_string(epoch_) +
                   ")";
    return r;
  }

  /// Caller holds mu_. Names the likeliest dead rank so handle_peer_down can
  /// report a culprit: prefer a peer that never reached this rank's round (it
  /// is genuinely behind — probably dead), falling back to the first absent
  /// slot (a peer whose deposit was retracted after its own timeout looks
  /// absent but its round count proves it arrived).
  Result timeout_result(int rank) const {
    Result r;
    r.status = ExchangeStatus::kTimeout;
    const std::uint64_t my_round = round_[static_cast<std::size_t>(rank)];
    int first_absent = -1;
    for (int src = 0; src < n_; ++src) {
      if (src == rank) continue;
      if (!present_[idx(src, rank)]) {
        if (first_absent < 0) first_absent = src;
        if (round_[static_cast<std::size_t>(src)] < my_round) {
          r.fault.rank = src;
          return r;
        }
      }
    }
    if (first_absent >= 0) r.fault.rank = first_absent;
    return r;
  }

  int n_;
  mutable sync::Mutex mu_;
  sync::CondVar cv_;
  std::vector<T> slot_;                 // [src * n + dst]
  std::vector<std::uint8_t> present_;   // parallel to slot_
  std::vector<std::uint64_t> slot_epoch_;  // epoch each deposit was staged in
  std::vector<std::uint64_t> round_;    // deposits completed per epoch+rank
  std::uint64_t epoch_ = 0;             // recovery generation (guarded by mu_)
  bool poisoned_ = false;
  fault::FaultReport fault_;
};

}  // namespace phigraph::comm
