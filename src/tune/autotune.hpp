// Auto-tuning — the paper's named future work (§VII): "auto-tuning for
// deciding the optimal number of worker/mover threads, as well as the
// partitioning ratio between CPU and MIC".
//
// Both tuners exploit a property of the runtime: the engine's event
// counters are *structural* (messages, destinations, rows — functions of
// graph and algorithm, not of the thread layout), so a single probe run
// prices every candidate configuration through the performance model. The
// ratio tuner additionally reuses one blocked partition across all ratios,
// the same reuse the paper highlights over GPS.
#pragma once

#include <vector>

#include "src/common/expect.hpp"
#include "src/core/engine.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/metrics/counters.hpp"
#include "src/partition/partition.hpp"
#include "src/sim/model.hpp"

namespace phigraph::tune {

struct MoverChoice {
  int workers = 0;
  int movers = 0;
  double modeled_seconds = 0;
};

/// Picks the worker/mover split of a pipelined device: evaluates every split
/// of `total_threads` (movers in [1, total-1]) against a measured trace.
/// `profile` supplies everything but the thread split (device lanes, message
/// sizes, app weights).
[[nodiscard]] inline MoverChoice tune_mover_split(
    const metrics::RunTrace& trace, const sim::DeviceSpec& dev,
    sim::ExecProfile profile, int total_threads, int step = 1) {
  PG_CHECK(total_threads >= 2 && step >= 1);
  profile.mode = core::ExecMode::kPipelining;
  MoverChoice best;
  best.modeled_seconds = std::numeric_limits<double>::max();
  for (int movers = 1; movers < total_threads; movers += step) {
    profile.threads = total_threads - movers;
    profile.movers = movers;
    const double sec = sim::model_run(trace, dev, profile).execution();
    if (sec < best.modeled_seconds)
      best = {profile.threads, movers, sec};
  }
  return best;
}

struct RatioChoice {
  partition::Ratio ratio;
  double modeled_seconds = 0;  // execution + communication
};

/// Configuration of one device for ratio tuning.
struct TuneDevice {
  core::EngineConfig engine;
  sim::ExecProfile profile;
  sim::DeviceSpec spec;
};

/// Picks the CPU:MIC workload ratio: partitions the blocked decomposition at
/// each candidate ratio, runs the heterogeneous engine once per candidate
/// (probe runs on the host), and keeps the ratio whose modeled lockstep
/// time is lowest. The blocked partition is computed once and reused.
template <core::VertexProgram Program>
[[nodiscard]] RatioChoice tune_partition_ratio(
    const graph::Csr& g, const Program& prog,
    const partition::BlockedPartition& bp,
    std::span<const partition::Ratio> candidates, TuneDevice cpu,
    TuneDevice mic, const sim::LinkSpec& link = {}) {
  PG_CHECK(!candidates.empty());
  cpu.profile.msg_bytes = mic.profile.msg_bytes =
      sizeof(typename Program::message_t);
  cpu.profile.value_bytes = mic.profile.value_bytes =
      sizeof(typename Program::vertex_value_t);

  RatioChoice best;
  best.modeled_seconds = std::numeric_limits<double>::max();
  for (const auto ratio : candidates) {
    auto owner = partition::hybrid_partition(bp, ratio);
    vid_t cpu_n = 0;
    for (Device d : owner)
      if (d == Device::Cpu) ++cpu_n;
    cpu.profile.num_vertices = std::max<vid_t>(1, cpu_n);
    mic.profile.num_vertices = std::max<vid_t>(1, g.num_vertices() - cpu_n);

    core::HeteroEngine<Program> engine(g, std::move(owner), prog, cpu.engine,
                                       mic.engine);
    auto res = engine.run();
    const auto est =
        sim::model_hetero(res.cpu.trace, cpu.spec, cpu.profile, res.mic.trace,
                          mic.spec, mic.profile, link);
    if (est.total() < best.modeled_seconds)
      best = {ratio, est.total()};
  }
  return best;
}

}  // namespace phigraph::tune
