// Auto-tuning — the paper's named future work (§VII): "auto-tuning for
// deciding the optimal number of worker/mover threads, as well as the
// partitioning ratio between CPU and MIC".
//
// Both tuners exploit a property of the runtime: the engine's event
// counters are *structural* (messages, destinations, rows — functions of
// graph and algorithm, not of the thread layout), so a single probe run
// prices every candidate configuration through the performance model. The
// ratio tuner additionally reuses one blocked partition across all ratios,
// the same reuse the paper highlights over GPS.
#pragma once

#include <span>
#include <vector>

#include "src/common/expect.hpp"
#include "src/core/engine.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/metrics/counters.hpp"
#include "src/partition/partition.hpp"
#include "src/sim/model.hpp"

namespace phigraph::tune {

struct MoverChoice {
  int workers = 0;
  int movers = 0;
  double modeled_seconds = 0;
};

/// Picks the worker/mover split of a pipelined device: evaluates every split
/// of `total_threads` (movers in [1, total-1]) against a measured trace.
/// `profile` supplies everything but the thread split (device lanes, message
/// sizes, app weights).
[[nodiscard]] inline MoverChoice tune_mover_split(
    const metrics::RunTrace& trace, const sim::DeviceSpec& dev,
    sim::ExecProfile profile, int total_threads, int step = 1) {
  PG_CHECK(total_threads >= 2 && step >= 1);
  profile.mode = core::ExecMode::kPipelining;
  MoverChoice best;
  best.modeled_seconds = std::numeric_limits<double>::max();
  for (int movers = 1; movers < total_threads; movers += step) {
    profile.threads = total_threads - movers;
    profile.movers = movers;
    const double sec = sim::model_run(trace, dev, profile).execution();
    if (sec < best.modeled_seconds)
      best = {profile.threads, movers, sec};
  }
  return best;
}

struct DirectionChoice {
  double alpha = 0.0;  // 0 encodes "never pull" (the all-push baseline won)
  double beta = 0.0;
  double modeled_seconds = 0;
  double push_only_seconds = 0;
};

/// Picks the traversal-direction thresholds (core/direction.hpp) from one
/// forced-push probe run. For every candidate (alpha, beta) pair the probe's
/// frontier trace is replayed through the hysteretic DirectionPolicy
/// (sim::predict_direction_mix) and the resulting mixed schedule is priced
/// through the model: push supersteps keep their measured counters, pull
/// supersteps are re-priced from synthetic ones — the in-edge mass a pull
/// kernel scans is at most the still-unexplored edges plus the frontier's
/// own out-edge mass, and all push-side work (messages, columns, rows,
/// queues) vanishes. The result is never modeled slower than all-push:
/// alpha = beta = 0 keeps the push→pull trigger disabled and is the default
/// winner.
[[nodiscard]] inline DirectionChoice tune_direction_thresholds(
    const metrics::RunTrace& push_trace, vid_t num_vertices,
    std::uint64_t num_edges, const sim::DeviceSpec& dev,
    const sim::ExecProfile& profile, std::span<const double> alphas = {},
    std::span<const double> betas = {}) {
  static constexpr double kDefaultAlphas[] = {2, 6, 14, 24, 48};
  static constexpr double kDefaultBetas[] = {8, 16, 24, 48, 96};
  if (alphas.empty()) alphas = kDefaultAlphas;
  if (betas.empty()) betas = kDefaultBetas;

  const double push_only = sim::model_run(push_trace, dev, profile).execution();
  DirectionChoice best{0.0, 0.0, push_only, push_only};
  for (const double a : alphas)
    for (const double b : betas) {
      const auto mix =
          sim::predict_direction_mix(push_trace, num_vertices, num_edges, a, b);
      if (mix.pull_supersteps == 0) continue;  // indistinguishable from push
      double sec = 0;
      for (std::size_t s = 0; s < push_trace.size(); ++s) {
        metrics::SuperstepCounters c = push_trace[s];
        if (mix.directions[s] == core::Direction::kPull) {
          c.pull_supersteps = 1;
          c.push_supersteps = 0;
          c.pull_edges_scanned = std::min(
              num_edges, mix.unexplored_edges[s] + c.edges_scanned);
          c.edges_scanned = 0;
          c.msgs_local = 0;
          c.columns_allocated = 0;
          c.column_conflicts = 0;
          c.lock_acquisitions = 0;
          c.queue_pushes = 0;
          c.vector_rows = 0;
          c.padded_cells = 0;
          c.scalar_msgs = 0;
          c.dense_supersteps = 0;
          c.sparse_supersteps = 0;
          c.groups_dirty = 0;
        }
        sec += sim::model_superstep(c, dev, profile).execution();
      }
      if (sec < best.modeled_seconds) best = {a, b, sec, push_only};
    }
  return best;
}

struct RatioChoice {
  partition::Ratio ratio;
  double modeled_seconds = 0;  // execution + communication
};

/// Configuration of one device for ratio tuning.
struct TuneDevice {
  core::EngineConfig engine;
  sim::ExecProfile profile;
  sim::DeviceSpec spec;
};

/// Picks the CPU:MIC workload ratio: partitions the blocked decomposition at
/// each candidate ratio, runs the heterogeneous engine once per candidate
/// (probe runs on the host), and keeps the ratio whose modeled lockstep
/// time is lowest. The blocked partition is computed once and reused.
template <core::VertexProgram Program>
[[nodiscard]] RatioChoice tune_partition_ratio(
    const graph::Csr& g, const Program& prog,
    const partition::BlockedPartition& bp,
    std::span<const partition::Ratio> candidates, TuneDevice cpu,
    TuneDevice mic, const sim::LinkSpec& link = {}) {
  PG_CHECK(!candidates.empty());
  cpu.profile.msg_bytes = mic.profile.msg_bytes =
      sizeof(typename Program::message_t);
  cpu.profile.value_bytes = mic.profile.value_bytes =
      sizeof(typename Program::vertex_value_t);

  RatioChoice best;
  best.modeled_seconds = std::numeric_limits<double>::max();
  for (const auto ratio : candidates) {
    auto owner = partition::hybrid_partition(bp, ratio);
    vid_t cpu_n = 0;
    for (Device d : owner)
      if (d == Device::Cpu) ++cpu_n;
    cpu.profile.num_vertices = std::max<vid_t>(1, cpu_n);
    mic.profile.num_vertices = std::max<vid_t>(1, g.num_vertices() - cpu_n);

    core::HeteroEngine<Program> engine(g, std::move(owner), prog, cpu.engine,
                                       mic.engine);
    auto res = engine.run();
    const auto est =
        sim::model_hetero(res.cpu.trace, cpu.spec, cpu.profile, res.mic.trace,
                          mic.spec, mic.profile, link);
    if (est.total() < best.modeled_seconds)
      best = {ratio, est.total()};
  }
  return best;
}

}  // namespace phigraph::tune
