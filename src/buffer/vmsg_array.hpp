// vmsg_array — the view handed to the user's process_messages() (paper §III).
//
//   template <typename MessageValue>
//   void process_messages(vmsg_array<vfloat>& vmsgs) {
//     vfloat res = vmsgs[0];
//     for (int i = 1; i < vmsgs.size(); ++i) res = min(res, vmsgs[i]);
//     vmsgs[0] = res;
//   }
//
// Each element is one *row* of the vector array: W messages, one per buffer
// column, loaded into the same SIMD lanes. Element type V is either a
// simd::Vec<Msg, W> (vectorized path) or the scalar Msg itself (W = 1 /
// novec ablation).
#pragma once

#include <cstddef>

#include "src/common/expect.hpp"

namespace phigraph::buffer {

template <typename V>
class VMsgArray {
 public:
  VMsgArray(V* rows, std::size_t num_rows) noexcept
      : rows_(rows), num_rows_(num_rows) {}

  [[nodiscard]] std::size_t size() const noexcept { return num_rows_; }

  [[nodiscard]] V& operator[](std::size_t i) noexcept {
    PG_DCHECK(i < num_rows_);
    return rows_[i];
  }
  [[nodiscard]] const V& operator[](std::size_t i) const noexcept {
    PG_DCHECK(i < num_rows_);
    return rows_[i];
  }

 private:
  V* rows_;
  std::size_t num_rows_;
};

}  // namespace phigraph::buffer
