// Condensed Static Buffer (CSB) — the paper's core data structure (§IV-B/C).
//
// Construction (once per graph):
//   1. Sort vertices by in-degree, descending (ties by id — this reproduces
//      the paper's Fig. 3 ordering). A redirection map translates original
//      destination ids to sorted positions.
//   2. Group sorted vertices into vertex groups of k × lanes vertices.
//   3. Per group, allocate k aligned vector arrays sized by the group's max
//      in-degree.
//
// Per superstep:
//   * columns are assigned to destinations either one-to-one (slot order,
//     Fig. 3(a)) or by dynamic column allocation (index array + column
//     offset, Fig. 3(b)) which condenses occupied columns to the front;
//   * insert() is the locking scheme (per-column lock, group lock for
//     allocation); insert_owned() is the mover path (each column touched by
//     a single thread, lock only for allocation);
//   * pad_array() fills lane bubbles with the reduction identity so whole
//     rows can be reduced with SIMD;
//   * processing walks (group, array) task units.
//
// Lane count is a *runtime* parameter: the same buffer code serves the CPU
// profile (16-byte SSE rows), the MIC profile (64-byte KNC rows) and the
// scalar SemiClustering layout (lanes = 1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "src/common/aligned.hpp"
#include "src/common/audit.hpp"
#include "src/common/expect.hpp"
#include "src/common/sync.hpp"
#include "src/common/types.hpp"
#include "src/sched/spinlock.hpp"

namespace phigraph::buffer {

enum class ColumnMode : std::uint8_t {
  kOneToOne,  // predetermined slot == column mapping (Fig. 3(a))
  kDynamic,   // dynamic column allocation (Fig. 3(b))
};

/// Per-thread insertion statistics, aggregated into metrics counters.
struct InsertStats {
  std::uint64_t inserted = 0;
  std::uint64_t conflicts = 0;          // message landed in an occupied column
  std::uint64_t columns_allocated = 0;  // first message for a destination
  std::uint64_t lock_acquisitions = 0;  // column + group locks taken
};

template <typename Msg>
class Csb {
 public:
  struct Config {
    int lanes = 16;  // w / msg_size
    int k = 2;       // vector arrays per vertex group
    ColumnMode mode = ColumnMode::kDynamic;
  };

  /// in_degrees[v] = number of messages vertex v can receive per superstep
  /// (its in-degree in the full graph; +1 headroom is added internally for a
  /// combined remote message).
  Csb(std::span<const vid_t> in_degrees, const Config& cfg)
      : lanes_(cfg.lanes),
        k_(cfg.k),
        mode_(cfg.mode),
        num_vertices_(static_cast<vid_t>(in_degrees.size())) {
    PG_CHECK(lanes_ >= 1 && k_ >= 1);
    build(in_degrees);
  }

  Csb(const Csb&) = delete;
  Csb& operator=(const Csb&) = delete;

  // ---- layout accessors ----------------------------------------------------
  [[nodiscard]] vid_t num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] int lanes() const noexcept { return lanes_; }
  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] ColumnMode mode() const noexcept { return mode_; }
  [[nodiscard]] vid_t group_width() const noexcept {
    return static_cast<vid_t>(k_ * lanes_);
  }
  [[nodiscard]] std::size_t num_groups() const noexcept {
    return group_cap_rows_.size();
  }
  /// Task units for the message-processing step: every vector array.
  [[nodiscard]] std::size_t num_array_tasks() const noexcept {
    return num_groups() * static_cast<std::size_t>(k_);
  }
  /// Groups that received at least one message since the last clear_dirty()
  /// — the only groups process/update/reset need to visit.
  [[nodiscard]] std::size_t num_dirty_groups() const noexcept {
    return dirty_count_.load(sync::acquire);
  }
  [[nodiscard]] std::size_t dirty_group(std::size_t i) const noexcept {
    PG_DCHECK(i < num_dirty_groups());
    return dirty_groups_[i];
  }
  /// Task units restricted to dirty groups (dirty_count × k).
  [[nodiscard]] std::size_t num_dirty_array_tasks() const noexcept {
    return num_dirty_groups() * static_cast<std::size_t>(k_);
  }
  [[nodiscard]] vid_t sorted_vertex(vid_t pos) const noexcept {
    PG_DCHECK(pos < num_vertices_);
    return sorted_ids_[pos];
  }
  [[nodiscard]] vid_t redirection(vid_t v) const noexcept {
    PG_DCHECK(v < num_vertices_);
    return redirection_[v];
  }
  [[nodiscard]] vid_t group_max_degree(std::size_t g) const noexcept {
    PG_DCHECK(g < num_groups());
    // Stored with +1 headroom for a combined remote message; report the raw
    // group maximum for layout introspection.
    return group_cap_rows_[g] == 0 ? 0 : group_cap_rows_[g] - 1;
  }
  /// Total message slots allocated — the paper's memory-footprint metric.
  [[nodiscard]] std::size_t storage_slots() const noexcept {
    return storage_.size();
  }

  // ---- superstep lifecycle ---------------------------------------------------
  /// Reset bookkeeping for group g. Called (in parallel over groups) before
  /// each generation phase — the paper re-initializes index arrays to -1 and
  /// column offsets to 0 every iteration.
  void reset_group(std::size_t g) noexcept {
    const vid_t width = group_width();
    const std::size_t col0 = g * width;
    const vid_t limit = cols_in_group(g);
    for (vid_t c = 0; c < limit; ++c) {
      counts_[col0 + c] = 0;
      index_array_[col0 + c].store(-1, sync::relaxed);
      col_to_slot_[col0 + c] = -1;
      PG_AUDIT_ONLY(
          col_owner_[col0 + c].store(-1, sync::relaxed);)
    }
    col_offset_[g] = 0;
    group_dirty_[g].store(0, sync::relaxed);
  }

  void reset_all() noexcept {
    for (std::size_t g = 0; g < num_groups(); ++g) reset_group(g);
    clear_dirty();
  }

  /// Forget the dirty list. Call after resetting the dirty groups (their
  /// dirty flags are cleared by reset_group); must not race with insertions.
  void clear_dirty() noexcept {
    dirty_count_.store(0, sync::release);
  }

  // ---- insertion ---------------------------------------------------------------
  /// Locking scheme: safe from any thread. Locks the destination column for
  /// the duration of the store (paper: "the computing thread should lock the
  /// entire column"), and the group lock for first-touch column allocation.
  void insert(vid_t dst, const Msg& m, InsertStats& stats) {
    PG_DCHECK_FMT(dst < num_vertices_,
                  "Csb::insert: destination vertex %u is outside the "
                  "redirection map (%u local vertices)",
                  dst, num_vertices_);
    const vid_t pos = redirection_[dst];
    const std::size_t g = pos / group_width();
    mark_dirty(g);
    const vid_t col = locate_column<true>(g, pos % group_width(), stats);
    const std::size_t gcol = g * group_width() + col;
    column_locks_[gcol].lock();
    ++stats.lock_acquisitions;
    const std::uint32_t row = counts_[gcol]++;
    store(g, col, row, m);
    column_locks_[gcol].unlock();
    if (row > 0) ++stats.conflicts;
    ++stats.inserted;
  }

  /// Mover scheme: the caller guarantees it is the only thread inserting for
  /// this destination class, so the row counter needs no lock; only column
  /// allocation synchronizes (on the group lock).
  void insert_owned(vid_t dst, const Msg& m, InsertStats& stats) {
    PG_DCHECK_FMT(dst < num_vertices_,
                  "Csb::insert_owned: destination vertex %u is outside the "
                  "redirection map (%u local vertices)",
                  dst, num_vertices_);
    const vid_t pos = redirection_[dst];
    const std::size_t g = pos / group_width();
    mark_dirty(g);
    const vid_t col = locate_column<false>(g, pos % group_width(), stats);
    const std::size_t gcol = g * group_width() + col;
    PG_AUDIT_ONLY(claim_column(g, col, gcol, dst);)
    const std::uint32_t row = counts_[gcol]++;
    store(g, col, row, m);
    if (row > 0) ++stats.conflicts;
    ++stats.inserted;
  }

  // ---- processing ----------------------------------------------------------------
  /// Number of columns of array `a` in group `g` that may hold messages.
  [[nodiscard]] int array_cols(std::size_t g, int a) const noexcept {
    const vid_t limit = cols_in_group(g);
    const vid_t first = static_cast<vid_t>(a) * static_cast<vid_t>(lanes_);
    vid_t avail = first >= limit ? 0 : limit - first;
    if (mode_ == ColumnMode::kDynamic) {
      const std::uint32_t used = col_offset_[g];
      const vid_t live = used <= first ? 0 : static_cast<vid_t>(used) - first;
      avail = std::min(avail, live);
    }
    return static_cast<int>(std::min<vid_t>(avail, static_cast<vid_t>(lanes_)));
  }

  /// Max message count among the array's columns = rows to reduce.
  [[nodiscard]] std::uint32_t array_rows(std::size_t g, int a) const noexcept {
    const std::size_t col0 = g * group_width() + static_cast<std::size_t>(a) * lanes_;
    std::uint32_t rows = 0;
    const int cols = array_cols(g, a);
    for (int c = 0; c < cols; ++c) rows = std::max(rows, counts_[col0 + c]);
    return rows;
  }

  [[nodiscard]] std::uint32_t column_count(std::size_t g, vid_t col) const noexcept {
    return counts_[g * group_width() + col];
  }

  /// Local vertex id owning column `col` of group g, or kInvalidVertex if
  /// the column is unoccupied.
  [[nodiscard]] vid_t column_vertex(std::size_t g, vid_t col) const noexcept {
    const std::size_t gcol = g * group_width() + col;
    std::int32_t slot;
    if (mode_ == ColumnMode::kDynamic) {
      slot = col_to_slot_[gcol];
      if (slot < 0) return kInvalidVertex;
    } else {
      if (counts_[gcol] == 0) return kInvalidVertex;
      slot = static_cast<std::int32_t>(col);
    }
    const std::size_t pos = g * group_width() + static_cast<std::size_t>(slot);
    return pos < num_vertices_ ? sorted_ids_[pos] : kInvalidVertex;
  }

  /// Pointer to row 0 of array `a` of group g (lanes_ messages per row).
  [[nodiscard]] Msg* array_base(std::size_t g, int a) noexcept {
    return storage_.data() + group_base_[g] +
           static_cast<std::size_t>(a) * group_cap_rows_[g] * lanes_;
  }
  [[nodiscard]] const Msg* array_base(std::size_t g, int a) const noexcept {
    return storage_.data() + group_base_[g] +
           static_cast<std::size_t>(a) * group_cap_rows_[g] * lanes_;
  }

  /// Fill lane bubbles of rows [0, rows) with the reduction identity so the
  /// whole block can be processed with full-width SIMD. Returns the number
  /// of padded cells (the "bubbles" the paper cites as the SIMD-efficiency
  /// limiter).
  std::uint64_t pad_array(std::size_t g, int a, std::uint32_t rows,
                          const Msg& identity) noexcept {
    std::uint64_t padded = 0;
    Msg* base = array_base(g, a);
    const std::size_t col0 = g * group_width() + static_cast<std::size_t>(a) * lanes_;
    for (int lane = 0; lane < lanes_; ++lane) {
      // Columns beyond array_cols have count 0 and must be fully padded.
      const std::uint32_t have =
          (static_cast<vid_t>(a) * lanes_ + static_cast<vid_t>(lane) <
           cols_in_group(g))
              ? counts_[col0 + static_cast<std::size_t>(lane)]
              : 0;
      for (std::uint32_t r = have; r < rows; ++r) {
        base[static_cast<std::size_t>(r) * lanes_ + static_cast<std::size_t>(lane)] =
            identity;
        ++padded;
      }
    }
    return padded;
  }

  /// Direct cell access (row-major within an array) for tests and the
  /// scalar-processing path.
  [[nodiscard]] Msg& cell(std::size_t g, vid_t col, std::uint32_t row) noexcept {
    const int a = static_cast<int>(col) / lanes_;
    const int lane = static_cast<int>(col) % lanes_;
    return array_base(g, a)[static_cast<std::size_t>(row) * lanes_ +
                            static_cast<std::size_t>(lane)];
  }
  [[nodiscard]] const Msg& cell(std::size_t g, vid_t col,
                                std::uint32_t row) const noexcept {
    return const_cast<Csb*>(this)->cell(g, col, row);
  }

  [[nodiscard]] std::uint32_t columns_used(std::size_t g) const noexcept {
    if (mode_ == ColumnMode::kDynamic) return col_offset_[g];
    std::uint32_t used = 0;
    const std::size_t col0 = g * group_width();
    for (vid_t c = 0; c < cols_in_group(g); ++c)
      if (counts_[col0 + c] > 0) ++used;
    return used;
  }

 private:
  void build(std::span<const vid_t> in_degrees) {
    // 1. Sort vertex ids by in-degree descending, ties by id ascending.
    sorted_ids_.resize(num_vertices_);
    std::iota(sorted_ids_.begin(), sorted_ids_.end(), vid_t{0});
    std::stable_sort(sorted_ids_.begin(), sorted_ids_.end(),
                     [&](vid_t a, vid_t b) {
                       return in_degrees[a] > in_degrees[b];
                     });
    redirection_.resize(num_vertices_);
    for (vid_t pos = 0; pos < num_vertices_; ++pos)
      redirection_[sorted_ids_[pos]] = pos;

    // 2./3. Vertex groups and their vector arrays.
    const vid_t width = group_width();
    const std::size_t groups =
        (static_cast<std::size_t>(num_vertices_) + width - 1) / width;
    group_cap_rows_.resize(groups);
    group_base_.resize(groups);
    std::size_t total = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      // Sorted descending, so the group's max in-degree is its first member's.
      const vid_t first = static_cast<vid_t>(g) * width;
      const vid_t max_deg = in_degrees[sorted_ids_[first]];
      // +1 headroom: a combined remote message may arrive on top of local
      // ones only when some in-edges are remote, but the combined message
      // replaces those edges' individual messages, so max_deg+1 is a safe
      // upper bound in all cases.
      group_cap_rows_[g] = max_deg == 0 ? 0 : max_deg + 1;
      group_base_[g] = total;
      total += static_cast<std::size_t>(group_cap_rows_[g]) * width;
    }
    storage_.resize(total);

    const std::size_t ncols = groups * width;
    counts_.assign(ncols, 0);
    index_array_ = std::make_unique<sync::Atomic<std::int32_t>[]>(ncols);
    for (std::size_t i = 0; i < ncols; ++i)
      index_array_[i].store(-1, sync::relaxed);
    col_to_slot_.assign(ncols, -1);
    col_offset_.assign(groups, 0);
    group_locks_ = std::make_unique<sched::SpinLock[]>(groups);
    column_locks_ = std::make_unique<sched::SpinLock[]>(ncols);
    group_dirty_ = std::make_unique<sync::Atomic<std::uint8_t>[]>(groups);
    for (std::size_t g = 0; g < groups; ++g)
      group_dirty_[g].store(0, sync::relaxed);
    dirty_groups_.assign(groups, 0);

#if PG_AUDIT_ENABLED
    col_owner_ = std::make_unique<sync::Atomic<std::int32_t>[]>(ncols);
    for (std::size_t i = 0; i < ncols; ++i)
      col_owner_[i].store(-1, sync::relaxed);
    audit_validate_redirection(in_degrees);
#endif
  }

#if PG_AUDIT_ENABLED
  /// One-shot post-build check: the redirection map must be a bijection onto
  /// sorted positions, its inverse must agree with sorted_ids_, and the
  /// sorted order must be non-increasing by in-degree (the property group
  /// capacity sizing depends on).
  void audit_validate_redirection(std::span<const vid_t> in_degrees) const {
    std::vector<std::uint8_t> seen(num_vertices_, 0);
    for (vid_t v = 0; v < num_vertices_; ++v) {
      const vid_t pos = redirection_[v];
      PG_AUDIT_FMT(pos < num_vertices_, "csb-redirection-bijection",
                   "vertex %u redirects to position %u, outside [0, %u)", v,
                   pos, num_vertices_);
      PG_AUDIT_FMT(!seen[pos], "csb-redirection-bijection",
                   "position %u is the image of two vertices (second: %u)",
                   pos, v);
      seen[pos] = 1;
      PG_AUDIT_FMT(sorted_ids_[pos] == v, "csb-redirection-bijection",
                   "redirection/sorted_ids mismatch: vertex %u -> position "
                   "%u, but sorted_ids[%u] = %u",
                   v, pos, pos, sorted_ids_[pos]);
    }
    for (vid_t pos = 1; pos < num_vertices_; ++pos)
      PG_AUDIT_FMT(in_degrees[sorted_ids_[pos - 1]] >=
                       in_degrees[sorted_ids_[pos]],
                   "csb-degree-order",
                   "sorted positions %u,%u are out of degree order (%u < %u)",
                   pos - 1, pos, in_degrees[sorted_ids_[pos - 1]],
                   in_degrees[sorted_ids_[pos]]);
  }

  /// Column-ownership tracking (§IV-C): the first insert_owned() of the
  /// superstep claims the column for the calling thread; a second mover
  /// touching it aborts with both thread ids and the (group, column)
  /// coordinates. reset_group() releases claims for the next superstep.
  void claim_column(std::size_t g, vid_t col, std::size_t gcol, vid_t dst) {
    const auto me = static_cast<std::int32_t>(audit::thread_id());
    std::int32_t owner = -1;
    if (col_owner_[gcol].compare_exchange_strong(owner, me, sync::acq_rel))
      return;
    if (owner != me)
      audit::fail("csb-column-ownership", __FILE__, __LINE__,
                  "column %u of group %zu (destination vertex %u) moved by "
                  "thread %d after being owned by thread %d this superstep",
                  col, g, dst, static_cast<int>(me), static_cast<int>(owner));
  }
#endif

  /// Record group g in the dirty list on its first message of the superstep.
  /// The relaxed fast path adds one load per insertion; the exchange makes
  /// each group register exactly once. Readers only look at the list after a
  /// phase barrier, so relaxed ordering on the slot stores suffices.
  void mark_dirty(std::size_t g) noexcept {
    if (group_dirty_[g].load(sync::relaxed)) return;
    if (group_dirty_[g].exchange(1, sync::relaxed) == 0)
      dirty_groups_[dirty_count_.fetch_add(1, sync::acq_rel)] = g;
  }

  /// Columns that exist in group g (the last group may be ragged).
  [[nodiscard]] vid_t cols_in_group(std::size_t g) const noexcept {
    const vid_t width = group_width();
    const vid_t first = static_cast<vid_t>(g) * width;
    return std::min<vid_t>(width, num_vertices_ - first);
  }

  /// Map a slot (position within group) to its column, allocating on first
  /// touch in dynamic mode. Locked = take the group lock for allocation
  /// (always needed: multiple inserters may race in locking mode; movers
  /// race with other movers across destination classes in the same group).
  template <bool Locked>
  vid_t locate_column(std::size_t g, vid_t slot, InsertStats& stats) {
    if (mode_ == ColumnMode::kOneToOne) return slot;
    const std::size_t gslot = g * group_width() + slot;
    // HB edge "csb-column-publish" (acquire side): pairs with the release
    // store below, ordering the fast-path reader after the allocating
    // critical section it observed the column index from.
    std::int32_t col = index_array_[gslot].load(sync::acquire);
    if (col >= 0) return static_cast<vid_t>(col);
    group_locks_[g].lock();
    ++stats.lock_acquisitions;
    // Double-checked: another thread may have allocated while we waited.
    // Relaxed suffices — the group lock's own acquire already orders us
    // after the allocating critical section.
    col = index_array_[gslot].load(sync::relaxed);
    if (col < 0) {
      col = static_cast<std::int32_t>(col_offset_[g]++);
      // HB edge "csb-column-publish" (release side): publishes the column
      // allocation to lock-free fast-path readers (lock holders are already
      // ordered by the group lock). col_to_slot_ is filled in below and only
      // consumed after a phase barrier, so it needs no ordering here.
      index_array_[gslot].store(col, sync::release);
      col_to_slot_[g * group_width() + static_cast<std::size_t>(col)] =
          static_cast<std::int32_t>(slot);
      ++stats.columns_allocated;
    }
    group_locks_[g].unlock();
    (void)sizeof(Locked);  // same path for both schemes; kept for symmetry
    return static_cast<vid_t>(col);
  }

  void store(std::size_t g, vid_t col, std::uint32_t row, const Msg& m) noexcept {
    PG_DCHECK_FMT(row < group_cap_rows_[g],
                  "Csb::store: row %u exceeds the %u rows allocated for "
                  "group %zu (column %u received more messages than its "
                  "in-degree allows)",
                  row, group_cap_rows_[g], g, col);
    cell(g, col, row) = m;
  }

  int lanes_;
  int k_;
  ColumnMode mode_;
  vid_t num_vertices_;

  std::vector<vid_t> sorted_ids_;   // position -> vertex
  std::vector<vid_t> redirection_;  // vertex -> position

  std::vector<vid_t> group_cap_rows_;   // rows allocated per group (max deg + 1)
  std::vector<std::size_t> group_base_; // group -> offset into storage_

  aligned_vector<Msg> storage_;

  // Per-column state (group-major, group_width() entries per group).
  std::vector<std::uint32_t> counts_;
  // slot -> column (-1 = unassigned); atomic because the fast path reads it
  // without the group lock.
  std::unique_ptr<sync::Atomic<std::int32_t>[]> index_array_;
  std::vector<std::int32_t> col_to_slot_;  // column -> slot (-1 = unoccupied)
  std::vector<std::uint32_t> col_offset_;  // per group: next free column

  std::unique_ptr<sched::SpinLock[]> group_locks_;
  std::unique_ptr<sched::SpinLock[]> column_locks_;

  // Dirty-group tracking: per-group flag + compact list of groups touched
  // since the last clear_dirty(), so per-superstep work is proportional to
  // the groups that actually received messages.
  std::unique_ptr<sync::Atomic<std::uint8_t>[]> group_dirty_;
  std::vector<std::size_t> dirty_groups_;  // first dirty_count_ entries valid
  sync::Atomic<std::size_t> dirty_count_{0};

#if PG_AUDIT_ENABLED
  // Checked build only: per-column mover thread id (-1 = unclaimed), reset
  // with the group each superstep.
  std::unique_ptr<sync::Atomic<std::int32_t>[]> col_owner_;
#endif
};

}  // namespace phigraph::buffer
