// Intra-device dynamic load balancing (paper §IV-D).
//
// "All threads dynamically retrieve these task units through a
//  mutex-protected scheduling offset. To lower the task retrieving frequency
//  and thus the scheduling overhead, a thread can obtain multiple tasks each
//  time."
//
// We use an atomic offset (the modern equivalent of the mutex-protected
// counter) handing out chunks of task indices.
#pragma once

#include <cstddef>
#include <optional>

#include "src/common/expect.hpp"
#include "src/common/sync.hpp"
#include "src/metrics/histogram.hpp"
#include "src/metrics/trace.hpp"

namespace phigraph::sched {

/// Half-open index range [begin, end).
struct TaskRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

class DynamicScheduler {
 public:
  /// total: number of task units; chunk: tasks handed out per retrieval.
  explicit DynamicScheduler(std::size_t total = 0, std::size_t chunk = 64)
      : total_(total), chunk_(chunk) {
    PG_CHECK(chunk >= 1);
  }

  /// Rearm for a new phase. Must not race with next_chunk().
  void reset(std::size_t total, std::size_t chunk) noexcept {
    PG_CHECK(chunk >= 1);
    total_ = total;
    chunk_ = chunk;
    next_.store(0, sync::relaxed);
    retrievals_.store(0, sync::relaxed);
  }

  /// Grab the next chunk; empty optional when the phase is drained.
  [[nodiscard]] std::optional<TaskRange> next_chunk() noexcept {
    // Cheap early-out once the phase is drained: without it, idle threads
    // spinning on an exhausted scheduler keep fetch_add-ing, growing next_
    // without bound and bouncing the cache line between cores.
    if (next_.load(sync::relaxed) >= total_) return std::nullopt;
    const std::size_t begin =
        next_.fetch_add(chunk_, sync::relaxed);
    if (begin >= total_) return std::nullopt;
    retrievals_.fetch_add(1, sync::relaxed);
    const TaskRange r{begin,
                      begin + chunk_ < total_ ? begin + chunk_ : total_};
#if PG_TRACE_ENABLED
    if (chunk_hist_ != nullptr) chunk_hist_->record(r.size());
#endif
    return r;
  }

#if PG_TRACE_ENABLED
  /// Trace builds: record every handed-out chunk's size into `h` (the tail
  /// chunk of a phase is usually short — the histogram shows how often).
  void set_chunk_histogram(metrics::Histogram* h) noexcept { chunk_hist_ = h; }
#endif

  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Number of successful chunk retrievals — the scheduling-overhead proxy
  /// consumed by the performance model.
  [[nodiscard]] std::uint64_t retrievals() const noexcept {
    return retrievals_.load(sync::relaxed);
  }

 private:
#if PG_TRACE_ENABLED
  metrics::Histogram* chunk_hist_ = nullptr;
#endif
  std::size_t total_;
  std::size_t chunk_;
  alignas(64) sync::Atomic<std::size_t> next_{0};
  alignas(64) sync::Atomic<std::uint64_t> retrievals_{0};
};

}  // namespace phigraph::sched
