// Persistent thread team.
//
// The engine executes many supersteps, each with several parallel phases;
// spawning threads per phase would swamp the runtime. A ThreadTeam keeps its
// workers parked on a condition variable and replays a callable across all
// of them per run() call (fork/join, like an OpenMP parallel region).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/audit.hpp"
#include "src/common/expect.hpp"

namespace phigraph::sched {

class ThreadTeam {
 public:
  /// Creates `size` worker threads, parked until the first run().
  explicit ThreadTeam(int size);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  [[nodiscard]] int size() const noexcept { return static_cast<int>(threads_.size()); }

  /// Runs job(thread_id) on every worker; blocks until all return.
  /// Not reentrant: one run() at a time per team.
  void run(const std::function<void(int)>& job);

  /// Forgets the orchestrator binding (checked build only, no-op otherwise):
  /// a recovery epoch may legally resume this engine from a different
  /// driving thread, and the next run() re-binds to it.
  void rebind_orchestrator() noexcept {
#if PG_AUDIT_ENABLED
    orchestrator_.rebind();
#endif
  }

 private:
  void worker_loop(int tid);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;   // bumped per run()
  int remaining_ = 0;         // workers still executing the current job
  bool shutdown_ = false;
#if PG_AUDIT_ENABLED
  // Checked build only: the fork/join model has one orchestrator — the first
  // run() binds it, later run() calls from other threads abort.
  audit::ThreadAffinity orchestrator_;
#endif
};

inline ThreadTeam::ThreadTeam(int size) {
  PG_CHECK(size >= 1);
  threads_.reserve(static_cast<std::size_t>(size));
  for (int tid = 0; tid < size; ++tid)
    threads_.emplace_back([this, tid] { worker_loop(tid); });
}

inline ThreadTeam::~ThreadTeam() {
  {
    std::lock_guard<std::mutex> g(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

inline void ThreadTeam::run(const std::function<void(int)>& job) {
  PG_AUDIT_AFFINITY(orchestrator_, "thread-team-orchestrator",
                    "ThreadTeam::run");
  std::unique_lock<std::mutex> g(mu_);
  PG_CHECK_MSG(remaining_ == 0, "ThreadTeam::run is not reentrant");
  job_ = &job;
  remaining_ = size();
  ++epoch_;
  cv_start_.notify_all();
  cv_done_.wait(g, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

inline void ThreadTeam::worker_loop(int tid) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> g(mu_);
      cv_start_.wait(
          g, [&] { return shutdown_ || (job_ != nullptr && epoch_ != seen_epoch); });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    (*job)(tid);
    {
      std::lock_guard<std::mutex> g(mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace phigraph::sched
