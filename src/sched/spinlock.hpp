// Test-and-test-and-set spinlock.
//
// The paper's runtime locks are fine-grained and short (buffer column
// insertion, column allocation). A TTAS spinlock with exponential backoff is
// the appropriate primitive; std::mutex would dominate the critical section.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace phigraph::sched {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    int backoff = 1;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Test loop: spin on a plain load to avoid cache-line ping-pong.
      while (flag_.load(std::memory_order_relaxed)) {
        for (int i = 0; i < backoff; ++i) cpu_relax();
        if (backoff < 1024) {
          backoff <<= 1;
        } else {
          // Oversubscribed host: give the lock holder a timeslice.
          yield_thread();
        }
      }
    }
  }

  [[nodiscard]] bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  static void yield_thread() noexcept;
  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }
  std::atomic<bool> flag_{false};
};

inline void SpinLock::yield_thread() noexcept { std::this_thread::yield(); }

/// RAII guard (usable with any lock/unlock pair, including SpinLock).
template <typename Lock>
class LockGuard {
 public:
  explicit LockGuard(Lock& l) noexcept : lock_(l) { lock_.lock(); }
  ~LockGuard() { lock_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Lock& lock_;
};

}  // namespace phigraph::sched
