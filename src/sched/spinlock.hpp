// Test-and-test-and-set spinlock.
//
// The paper's runtime locks are fine-grained and short (buffer column
// insertion, column allocation). A TTAS spinlock with exponential backoff is
// the appropriate primitive; std::mutex would dominate the critical section.
#pragma once

#include <cstdint>

#include "src/common/sync.hpp"

namespace phigraph::sched {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    int backoff = 1;
    for (;;) {
      // HB edge "spinlock-critical-section": the acquire side of the
      // exchange pairs with the previous holder's release store
      // (spinlock.release), ordering its critical-section writes before
      // ours. The store half of the exchange needs no release — we publish
      // nothing by taking the lock.
      if (!flag_.exchange(true, PG_SYNC_ORDER("spinlock.acquire", sync::acquire)))
        return;
      // Test loop: spin on a plain load to avoid cache-line ping-pong.
      while (flag_.load(sync::relaxed)) {
        if constexpr (sync::kModelBuild) {
          // Cooperative scheduler: hand the baton over instead of burning
          // steps — the holder cannot progress while we monopolize it.
          sync::thread_yield();
        } else {
          for (int i = 0; i < backoff; ++i) sync::cpu_relax();
          if (backoff < 1024) {
            backoff <<= 1;
          } else {
            // Oversubscribed host: give the lock holder a timeslice.
            sync::thread_yield();
          }
        }
      }
    }
  }

  [[nodiscard]] bool try_lock() noexcept {
    return !flag_.load(sync::relaxed) &&
           !flag_.exchange(true, PG_SYNC_ORDER("spinlock.acquire", sync::acquire));
  }

  void unlock() noexcept {
    // HB edge "spinlock-critical-section": pairs with the next holder's
    // acquire exchange (spinlock.acquire); publishes this critical section.
    flag_.store(false, PG_SYNC_ORDER("spinlock.release", sync::release));
  }

 private:
  sync::Atomic<bool> flag_{false};
};

/// RAII guard (usable with any lock/unlock pair, including SpinLock).
template <typename Lock>
class LockGuard {
 public:
  explicit LockGuard(Lock& l) noexcept : lock_(l) { lock_.lock(); }
  ~LockGuard() { lock_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Lock& lock_;
};

}  // namespace phigraph::sched
