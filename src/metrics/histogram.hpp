// Power-of-two-bucket histograms for runtime shape statistics.
//
// The counters (counters.hpp) answer "how much"; the histograms answer "how
// distributed" — the difference between a pipeline whose queues hover near
// empty and one that rides the backpressure limit, or a CSB whose columns
// hold one message each and one funnelling thousands into a hub vertex.
// Three distributions matter to the paper's performance story and are
// recorded by the engine in trace builds: SPSC queue drain depth (§IV-C),
// CSB column message depth (§IV-B), and dynamic-scheduler chunk sizes
// (§IV-D).
//
// record() is a single relaxed atomic increment, safe from any number of
// threads concurrently; snapshot() is taken at phase barriers.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "src/common/sync.hpp"

namespace phigraph::metrics {

/// Bucket b holds values in [lower_bound(b), lower_bound(b+1)):
/// bucket 0 = {0}, bucket b>=1 = [2^(b-1), 2^b). 64-bit values fit in 65
/// buckets.
inline constexpr int kHistogramBuckets = 65;

[[nodiscard]] constexpr int histogram_bucket(std::uint64_t v) noexcept {
  return v == 0 ? 0 : std::bit_width(v);
}

[[nodiscard]] constexpr std::uint64_t histogram_lower_bound(int bucket) noexcept {
  return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

/// Immutable copy of a histogram's state, with the derived statistics tests
/// and exporters consume.
struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;  // total samples
  std::uint64_t sum = 0;    // sum of sample values
  std::uint64_t max = 0;    // largest sample seen

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Smallest bucket lower bound below which at least `p` (in [0,1]) of the
  /// samples fall — a bucket-resolution quantile (exact to the pow2 bucket).
  [[nodiscard]] std::uint64_t quantile_bound(double p) const noexcept {
    if (count == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(count));
    std::uint64_t seen = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      seen += buckets[b];
      if (seen > target) return histogram_lower_bound(b);
    }
    return histogram_lower_bound(kHistogramBuckets - 1);
  }

  /// Index past the last non-empty bucket (0 when empty).
  [[nodiscard]] int used_buckets() const noexcept {
    for (int b = kHistogramBuckets - 1; b >= 0; --b)
      if (buckets[b] != 0) return b + 1;
    return 0;
  }

  /// Compact JSON: {"count":N,"sum":S,"max":M,"buckets":[...]} with buckets
  /// truncated after the last non-empty one.
  [[nodiscard]] std::string to_json() const {
    std::string out = "{\"count\": " + std::to_string(count) +
                      ", \"sum\": " + std::to_string(sum) +
                      ", \"max\": " + std::to_string(max) + ", \"buckets\": [";
    const int used = used_buckets();
    for (int b = 0; b < used; ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(buckets[b]);
    }
    out += "]}";
    return out;
  }
};

/// Concurrent histogram: lock-free recording, barrier-time snapshots.
/// Not copyable (atomics); owners hand out HistogramData copies instead.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) noexcept {
    buckets_[static_cast<std::size_t>(histogram_bucket(v))].fetch_add(
        1, sync::relaxed);
    sum_.fetch_add(v, sync::relaxed);
    // Monotone max via CAS loop; contention is negligible (the loop runs
    // only while the max is actually advancing).
    std::uint64_t cur = max_.load(sync::relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v, sync::relaxed)) {
    }
  }

  /// Consistent-enough copy: taken at phase barriers when no thread records.
  [[nodiscard]] HistogramData snapshot() const noexcept {
    HistogramData d;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      d.buckets[static_cast<std::size_t>(b)] =
          buckets_[static_cast<std::size_t>(b)].load(sync::relaxed);
      d.count += d.buckets[static_cast<std::size_t>(b)];
    }
    d.sum = sum_.load(sync::relaxed);
    d.max = max_.load(sync::relaxed);
    return d;
  }

  void clear() noexcept {
    for (auto& b : buckets_) b.store(0, sync::relaxed);
    sum_.store(0, sync::relaxed);
    max_.store(0, sync::relaxed);
  }

 private:
  std::array<sync::Atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  sync::Atomic<std::uint64_t> sum_{0};
  sync::Atomic<std::uint64_t> max_{0};
};

}  // namespace phigraph::metrics
