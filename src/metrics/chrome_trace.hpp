// Chrome-trace exporter: Collector snapshots -> chrome://tracing JSON.
//
// Emits the Trace Event Format's JSON object form: complete ("X") events
// with microsecond timestamps, pid = device rank (0 = CPU, 1 = MIC),
// tid = collector thread index, plus process/thread metadata events so the
// timeline reads "rank 0 (CPU) / cpu-orchestrator" instead of bare numbers.
// The output loads directly in chrome://tracing and in Perfetto's legacy
// trace viewer.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/metrics/trace.hpp"

namespace phigraph::trace {

/// Serialize a snapshot to Trace Event Format JSON. Returns the JSON text.
inline std::string chrome_trace_json(
    const std::vector<Collector::ThreadTrace>& threads) {
  std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += "\n  ";
    out += event;
  };
  char buf[256];

  // Metadata: name every (pid, tid) pair that carries events.
  std::vector<std::pair<int, std::size_t>> named;  // (rank, thread index)
  std::vector<int> pids;
  for (std::size_t t = 0; t < threads.size(); ++t) {
    for (const Span& s : threads[t].spans) {
      const auto pair = std::make_pair(static_cast<int>(s.rank), t);
      bool seen = false;
      for (const auto& p : named) seen = seen || p == pair;
      if (!seen) named.push_back(pair);
      bool pid_seen = false;
      for (int p : pids) pid_seen = pid_seen || p == s.rank;
      if (!pid_seen) pids.push_back(s.rank);
    }
  }
  for (int pid : pids) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
                  "\"args\": {\"name\": \"rank %d (%s)\"}}",
                  pid, pid, pid == 0 ? "CPU" : "MIC");
    emit(buf);
  }
  for (const auto& [pid, t] : named) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, "
                  "\"tid\": %zu, \"args\": {\"name\": \"%s\"}}",
                  pid, t, threads[t].name.c_str());
    emit(buf);
  }

  for (std::size_t t = 0; t < threads.size(); ++t) {
    for (const Span& s : threads[t].spans) {
      std::snprintf(
          buf, sizeof(buf),
          "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %d, \"tid\": %zu, "
          "\"ts\": %.3f, \"dur\": %.3f, \"args\": {\"superstep\": %d}}",
          phase_name(s.phase), static_cast<int>(s.rank), t,
          static_cast<double>(s.begin_ns) * 1e-3,
          static_cast<double>(s.end_ns - s.begin_ns) * 1e-3,
          static_cast<int>(s.superstep));
      emit(buf);
    }
  }
  out += "\n]}\n";
  return out;
}

/// Write a snapshot to `path`. Returns false on IO failure.
inline bool write_chrome_trace(const std::string& path,
                               const std::vector<Collector::ThreadTrace>& threads) {
  const std::string json = chrome_trace_json(threads);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace phigraph::trace
