// Structured phase tracing — scoped spans into lock-free per-thread buffers.
//
// The paper's whole evaluation (§V, Figs. 5–7) is a story about where time
// goes: generation vs. processing vs. update, pipelining overlap, PCIe
// exchange. This header gives the runtime a span model for exactly those
// phases: a ScopedSpan records (phase, superstep, rank, begin, end) into a
// buffer owned by the calling thread, so recording is a clock read plus a
// push_back with no synchronization on the hot path. Buffers register once
// (mutex-protected) in a process-global Collector; snapshots are taken at
// run boundaries when no engine is executing.
//
// Call sites use the PG_TRACE_* macros, which compile to `((void)0)` unless
// the build defines PHIGRAPH_TRACE (CMake option, `trace` preset) — the
// default build carries no clock reads, no buffers, no branches, exactly
// like the audit and fault-injection layers. The Collector class itself is
// always compiled so its unit tests run in every preset.
//
// Two span kinds nest inside the orchestrator phases and are excluded from
// phase-time accounting: kPipelineDrain (a mover's whole drain loop, running
// *inside* the generate phase on a team thread — the overlap the paper's
// pipelining scheme exists to create) and kExchangeWait (the rendezvous wait
// inside Exchange::exchange_for, the PCIe-latency stand-in).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/sync.hpp"
#include "src/common/thread_safety.hpp"

#if defined(PHIGRAPH_TRACE)
#define PG_TRACE_ENABLED 1
#else
#define PG_TRACE_ENABLED 0
#endif

namespace phigraph::trace {

/// Every span kind the runtime records. The first seven partition a
/// superstep's orchestrator wall time (see is_exclusive_phase); kSuperstep
/// is the enclosing envelope; the rest annotate concurrency and recovery.
enum class Phase : std::uint8_t {
  kPrepare = 0,
  kGenerate,
  kExchange,
  kProcess,
  kUpdate,
  kTerminate,
  kCheckpoint,
  kSuperstep,      // whole-superstep envelope on the orchestrator
  kPipelineDrain,  // one mover's drain loop (inside generate, team thread)
  kExchangeWait,   // rendezvous wait inside Exchange::exchange_for
  kRecovery,       // CPU-only failover rebuild + rerun
  kPullScan,       // bottom-up pull kernel (inside generate, team threads)
  kServeBatch,     // one QueryEngine batch: formation through fulfillment
};

inline constexpr int kNumPhases = 13;

constexpr const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kPrepare: return "prepare";
    case Phase::kGenerate: return "generate";
    case Phase::kExchange: return "exchange";
    case Phase::kProcess: return "process";
    case Phase::kUpdate: return "update";
    case Phase::kTerminate: return "terminate";
    case Phase::kCheckpoint: return "checkpoint";
    case Phase::kSuperstep: return "superstep";
    case Phase::kPipelineDrain: return "pipeline-drain";
    case Phase::kExchangeWait: return "exchange-wait";
    case Phase::kRecovery: return "recovery";
    case Phase::kPullScan: return "pull-scan";
    case Phase::kServeBatch: return "serve-batch";
  }
  return "?";
}

/// True for the phases that tile a superstep without overlap on the
/// orchestrator thread — the set whose durations must sum to the kSuperstep
/// envelope (the invariant the phase-time tests assert).
constexpr bool is_exclusive_phase(Phase p) noexcept {
  return p == Phase::kPrepare || p == Phase::kGenerate ||
         p == Phase::kExchange || p == Phase::kProcess ||
         p == Phase::kUpdate || p == Phase::kTerminate ||
         p == Phase::kCheckpoint;
}

/// One recorded interval. Timestamps are nanoseconds since the Collector's
/// epoch (steady clock). superstep is -1 for spans outside a superstep
/// (exchange waits seen from inside comm, recovery).
struct Span {
  Phase phase = Phase::kSuperstep;
  std::int32_t superstep = -1;
  std::int32_t rank = 0;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;

  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(end_ns - begin_ns) * 1e-9;
  }
};

/// Process-global span sink. Threads get a private buffer on first record
/// (registration takes the registry mutex once per thread); recording is
/// then a plain push_back. snapshot()/clear() must only run while no thread
/// is recording — i.e. between engine runs; engines never call them.
class Collector {
 public:
  static Collector& instance() {
    static Collector c;
    return c;
  }

  /// Runtime master switch (meaningful when spans are compiled in; the
  /// direct API ignores it so unit tests exercise the buffers everywhere).
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Nanoseconds since this collector's construction (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  void record(Phase phase, int superstep, int rank, std::uint64_t begin_ns,
              std::uint64_t end_ns) {
    local_buffer().spans.push_back(
        Span{phase, static_cast<std::int32_t>(superstep),
             static_cast<std::int32_t>(rank), begin_ns, end_ns});
  }

  /// Label the calling thread's timeline ("cpu-orchestrator", ...). The name
  /// sticks to the thread's buffer and shows up in Chrome trace exports.
  void set_thread_name(std::string name) {
    local_buffer().name = std::move(name);
  }

  /// One thread's recorded timeline.
  struct ThreadTrace {
    std::string name;
    std::vector<Span> spans;
  };

  /// Copy of every thread's buffer. Quiescent-only (run boundaries).
  [[nodiscard]] std::vector<ThreadTrace> snapshot() const {
    sync::LockGuard g(mu_);
    std::vector<ThreadTrace> out;
    out.reserve(buffers_.size());
    for (const auto& b : buffers_) out.push_back({b->name, b->spans});
    return out;
  }

  /// Drop all spans, keeping thread registrations and names. Quiescent-only.
  void clear() {
    sync::LockGuard g(mu_);
    for (const auto& b : buffers_) b->spans.clear();
  }

  [[nodiscard]] std::size_t total_spans() const {
    sync::LockGuard g(mu_);
    std::size_t n = 0;
    for (const auto& b : buffers_) n += b->spans.size();
    return n;
  }

 private:
  struct ThreadBuffer {
    std::string name;
    std::vector<Span> spans;
  };

  Collector() : epoch_(std::chrono::steady_clock::now()) {}

  ThreadBuffer& local_buffer() {
    thread_local ThreadBuffer* tl = nullptr;
    if (tl == nullptr) {
      sync::LockGuard g(mu_);
      buffers_.push_back(std::make_unique<ThreadBuffer>());
      tl = buffers_.back().get();
      tl->name = "thread-" + std::to_string(buffers_.size() - 1);
    }
    return *tl;
  }

  std::chrono::steady_clock::time_point epoch_;
  mutable sync::Mutex mu_;
  // Buffers outlive their threads (a finished MIC thread's spans must still
  // be exportable), so the registry owns them. Guarded registry (annotated
  // for -Wthread-safety): each thread's buffer contents are private to it
  // after registration, but the vector itself is shared.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ PG_GUARDED_BY(mu_);
  bool enabled_ = true;
};

/// RAII span: clocks on construction, records on destruction. Respects the
/// collector's runtime switch at entry.
class ScopedSpan {
 public:
  ScopedSpan(Phase phase, int superstep, int rank) noexcept
      : phase_(phase), superstep_(superstep), rank_(rank) {
    Collector& c = Collector::instance();
    active_ = c.enabled();
    if (active_) begin_ = c.now_ns();
  }

  ~ScopedSpan() {
    if (!active_) return;
    Collector& c = Collector::instance();
    c.record(phase_, superstep_, rank_, begin_, c.now_ns());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Phase phase_;
  int superstep_;
  int rank_;
  std::uint64_t begin_ = 0;
  bool active_ = false;
};

// ---- phase-time aggregation -------------------------------------------------

/// Per-(rank, superstep) totals derived from a snapshot: seconds[] indexed
/// by Phase, superstep_wall from the kSuperstep envelope. Rows are sorted by
/// (rank, superstep).
struct PhaseTableRow {
  int rank = 0;
  int superstep = 0;
  double seconds[kNumPhases] = {};
  double superstep_wall = 0;

  /// Sum of the exclusive phases — the quantity that must track
  /// superstep_wall (tested to tolerance in trace builds).
  [[nodiscard]] double exclusive_sum() const noexcept {
    double s = 0;
    for (int p = 0; p < kNumPhases; ++p)
      if (is_exclusive_phase(static_cast<Phase>(p))) s += seconds[p];
    return s;
  }
};

inline std::vector<PhaseTableRow> phase_table(
    const std::vector<Collector::ThreadTrace>& threads) {
  std::vector<PhaseTableRow> rows;
  auto row_for = [&](int rank, int superstep) -> PhaseTableRow& {
    for (auto& r : rows)
      if (r.rank == rank && r.superstep == superstep) return r;
    rows.push_back({});
    rows.back().rank = rank;
    rows.back().superstep = superstep;
    return rows.back();
  };
  for (const auto& t : threads) {
    for (const Span& s : t.spans) {
      if (s.superstep < 0) continue;
      auto& row = row_for(s.rank, s.superstep);
      if (s.phase == Phase::kSuperstep)
        row.superstep_wall += s.seconds();
      else
        row.seconds[static_cast<int>(s.phase)] += s.seconds();
    }
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.rank != b.rank ? a.rank < b.rank : a.superstep < b.superstep;
  });
  return rows;
}

}  // namespace phigraph::trace

#if PG_TRACE_ENABLED
#define PG_TRACE_CONCAT_INNER(a, b) a##b
#define PG_TRACE_CONCAT(a, b) PG_TRACE_CONCAT_INNER(a, b)
/// Record a scoped span for this block. Multiple per scope are fine.
#define PG_TRACE_SCOPE(phase, superstep, rank)                        \
  ::phigraph::trace::ScopedSpan PG_TRACE_CONCAT(pg_trace_span_,       \
                                                __LINE__)(            \
      ::phigraph::trace::Phase::phase, (superstep), (rank))
/// Name the calling thread's timeline.
#define PG_TRACE_THREAD_NAME(name) \
  ::phigraph::trace::Collector::instance().set_thread_name(name)
#else
#define PG_TRACE_SCOPE(phase, superstep, rank) ((void)0)
#define PG_TRACE_THREAD_NAME(name) ((void)0)
#endif
