// Per-superstep event counters.
//
// The engine is the measurement instrument: every execution mode emits the
// same counter stream, and the performance model (src/sim) converts counters
// into device seconds for the paper's CPU / MIC specs. Counters are also
// asserted on directly by tests (e.g. message conservation: generated ==
// inserted + remote).
#pragma once

#include <cstdint>
#include <vector>

namespace phigraph::metrics {

struct SuperstepCounters {
  std::uint64_t superstep = 0;
  std::uint64_t active_vertices = 0;   // vertices that ran generate_messages
  std::uint64_t edges_scanned = 0;     // out-edges of active vertices
  std::uint64_t msgs_local = 0;        // inserted into the local CSB
  std::uint64_t msgs_remote = 0;       // destined for the other device
  std::uint64_t msgs_received = 0;     // arrived from the other device
  std::uint64_t columns_allocated = 0; // distinct destinations this superstep
  std::uint64_t column_conflicts = 0;  // insertions hitting an occupied column
  std::uint64_t lock_acquisitions = 0; // column/group locks taken (locking mode)
  std::uint64_t queue_pushes = 0;      // pipelining: worker -> queue
  std::uint64_t queue_full_spins = 0;  // pipelining backpressure events
  std::uint64_t vector_rows = 0;       // SIMD rows processed
  std::uint64_t padded_cells = 0;      // identity fills (lane bubbles)
  std::uint64_t scalar_msgs = 0;       // messages processed on the scalar path
  std::uint64_t verts_updated = 0;     // update_vertex invocations
  std::uint64_t sched_retrievals = 0;  // dynamic-scheduler chunk grabs
  std::uint64_t bytes_sent = 0;        // exchange traffic to the peer
  std::uint64_t bytes_received = 0;
  // Sparse-frontier execution (active lists + dirty-group CSB tracking).
  std::uint64_t frontier_size = 0;     // active vertices at generation start
  std::uint64_t dense_supersteps = 0;  // 1 if generate scanned the bitmap
  std::uint64_t sparse_supersteps = 0; // 1 if generate walked the active list
  std::uint64_t groups_dirty = 0;      // CSB groups that received messages
  std::uint64_t groups_skipped = 0;    // CSB groups process/update never visited
  // Direction-optimizing traversal (core/direction.hpp). Push counters above
  // (edges_scanned, msgs_local, dense/sparse_supersteps) stay push-only so
  // their invariants (e.g. edges_scanned == msgs_local for single-device
  // SSSP) are unchanged; pull work is counted separately. Per superstep:
  // push_supersteps + pull_supersteps == 1, and dense + sparse + pull == 1.
  std::uint64_t push_supersteps = 0;    // 1 if this superstep pushed
  std::uint64_t pull_supersteps = 0;    // 1 if this superstep pulled
  std::uint64_t direction_flips = 0;    // 1 if the direction changed here
  std::uint64_t pull_edges_scanned = 0; // in-edges probed by the pull kernel
  std::uint64_t pull_early_exits = 0;   // pull scans cut short at first hit

  SuperstepCounters& operator+=(const SuperstepCounters& o) noexcept {
    active_vertices += o.active_vertices;
    edges_scanned += o.edges_scanned;
    msgs_local += o.msgs_local;
    msgs_remote += o.msgs_remote;
    msgs_received += o.msgs_received;
    columns_allocated += o.columns_allocated;
    column_conflicts += o.column_conflicts;
    lock_acquisitions += o.lock_acquisitions;
    queue_pushes += o.queue_pushes;
    queue_full_spins += o.queue_full_spins;
    vector_rows += o.vector_rows;
    padded_cells += o.padded_cells;
    scalar_msgs += o.scalar_msgs;
    verts_updated += o.verts_updated;
    sched_retrievals += o.sched_retrievals;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    frontier_size += o.frontier_size;
    dense_supersteps += o.dense_supersteps;
    sparse_supersteps += o.sparse_supersteps;
    groups_dirty += o.groups_dirty;
    groups_skipped += o.groups_skipped;
    push_supersteps += o.push_supersteps;
    pull_supersteps += o.pull_supersteps;
    direction_flips += o.direction_flips;
    pull_edges_scanned += o.pull_edges_scanned;
    pull_early_exits += o.pull_early_exits;
    return *this;
  }
};

/// Fault-tolerance outcome of a cluster run (DESIGN.md §6/§12). All zero on
/// a fault-free run; filled by the recovery ladder in ClusterEngine when a
/// rank fault triggered recovery. Surfaced in the bench JSON next to the
/// superstep counters.
///
/// `rung` records how far down the ladder the run had to go:
///   0 = no fault; 1 = transient respawn (all N ranks resumed);
///   2 = survivor repartition (N-1 ranks finished the run);
///   3 = single-device rerun (the pre-ladder behaviour).
struct FailoverStats {
  std::uint64_t failed_over = 0;     // 1 if the run completed via recovery
  std::uint64_t attempts = 0;        // transient respawn attempts consumed
  std::uint64_t epochs = 0;          // recovery epochs entered (all rungs)
  std::uint64_t rung = 0;            // deepest ladder rung reached (0-3)
  std::uint64_t lost_supersteps = 0; // max over epochs: fault - resume
  double recovery_ms = 0;            // total rebuild + restore wall time
  std::vector<double> epoch_recovery_ms;  // per-epoch rebuild + restore time
};

/// Per-peer exchange traffic of one rank across a whole run, indexed by the
/// other rank's id (the self entry stays zero — a rank never ships bytes to
/// itself). Conservation across a fault-free N-rank run:
///   ranks[a].io.bytes_to[b] == ranks[b].io.bytes_from[a]  for every (a, b),
/// which the differential battery asserts pairwise.
struct RankIo {
  std::vector<std::uint64_t> bytes_to;    // [dst rank] -> bytes this rank sent
  std::vector<std::uint64_t> bytes_from;  // [src rank] -> bytes received

  explicit RankIo(std::size_t nranks = 0)
      : bytes_to(nranks, 0), bytes_from(nranks, 0) {}
};

/// Host-measured wall seconds of one superstep's phases, recorded by the
/// engine in every build (a handful of clock reads per superstep — the
/// *span-level* tracing is what the PHIGRAPH_TRACE gate controls). The
/// exclusive phases tile the superstep: their sum must track `wall` minus
/// loop bookkeeping (frontier swap, counter collection), an invariant the
/// differential tests check.
struct PhaseSeconds {
  double prepare = 0;
  double generate = 0;
  double exchange = 0;   // heterogeneous runs only (0 single-device)
  double process = 0;
  double update = 0;
  double terminate = 0;  // termination-control exchange (hetero only)
  double checkpoint = 0;
  double wall = 0;       // whole superstep on the orchestrator

  [[nodiscard]] double phase_sum() const noexcept {
    return prepare + generate + exchange + process + update + terminate +
           checkpoint;
  }

  PhaseSeconds& operator+=(const PhaseSeconds& o) noexcept {
    prepare += o.prepare;
    generate += o.generate;
    exchange += o.exchange;
    process += o.process;
    update += o.update;
    terminate += o.terminate;
    checkpoint += o.checkpoint;
    wall += o.wall;
    return *this;
  }
};

/// One entry per executed superstep, parallel to RunTrace.
using PhaseTrace = std::vector<PhaseSeconds>;

/// Sum of a phase trace.
inline PhaseSeconds phase_totals(const PhaseTrace& phases) noexcept {
  PhaseSeconds t;
  for (const auto& p : phases) t += p;
  return t;
}

/// Full run trace: one entry per executed superstep.
using RunTrace = std::vector<SuperstepCounters>;

/// Sum of a trace (superstep field meaningless in the result).
inline SuperstepCounters totals(const RunTrace& trace) noexcept {
  SuperstepCounters t;
  for (const auto& c : trace) t += c;
  return t;
}

}  // namespace phigraph::metrics
