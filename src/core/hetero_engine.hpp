// Multi-rank symmetric execution (paper §IV-A/E, generalized to N ranks).
//
// Symmetric DeviceEngine instances — "Symmetric runtime instances on the
// CPU and the Xeon Phi share the same source code and thus the same
// structure, though parameters such as numbers of threads running on each
// device are separately configured" — wired by an all-to-all data exchange
// and a termination-control exchange, rank 0 running on the calling thread
// and every other rank on its own host thread. The paper's CPU+MIC
// configuration is the two-rank case, exposed unchanged as HeteroEngine.
//
// Fault tolerance (DESIGN.md §6): the spawned rank threads are joined by a
// scope guard, so an exception on the rank-0 path can no longer
// std::terminate the process with a joinable thread in flight. When any rank
// faults, run() falls over to a single-device engine covering ALL
// partitions, seeded from the newest superstep checkpoint that CRC-validates
// in *every* rank's store (or restarted from superstep 0 when checkpointing
// is off / no common frame survives), and finishes the computation CPU-only.
// The outcome — origin FaultReport, lost supersteps, recovery wall time — is
// reported in Result::failover.
#pragma once

#include <array>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/comm/exchange.hpp"
#include "src/common/audit.hpp"
#include "src/common/timer.hpp"
#include "src/core/engine.hpp"
#include "src/core/local_graph.hpp"
#include "src/fault/checkpoint.hpp"
#include "src/fault/fault.hpp"
#include "src/metrics/counters.hpp"

namespace phigraph::core {

/// Joins the wrapped thread on scope exit. Keeps run() exception-safe:
/// std::thread's destructor calls std::terminate when the thread is still
/// joinable, so without the guard any throw between spawn and join
/// (user-program exception, PG_CHECK in a death test, ...) kills the whole
/// process instead of unwinding.
class ThreadJoiner {
 public:
  explicit ThreadJoiner(std::thread& t) noexcept : t_(t) {}
  ~ThreadJoiner() {
    if (t_.joinable()) t_.join();
  }
  ThreadJoiner(const ThreadJoiner&) = delete;
  ThreadJoiner& operator=(const ThreadJoiner&) = delete;

 private:
  std::thread& t_;
};

/// Joins every thread of a group on scope exit (the N-rank ThreadJoiner).
class ThreadGroupJoiner {
 public:
  explicit ThreadGroupJoiner(std::vector<std::thread>& ts) noexcept
      : ts_(ts) {}
  ~ThreadGroupJoiner() {
    for (auto& t : ts_)
      if (t.joinable()) t.join();
  }
  ThreadGroupJoiner(const ThreadGroupJoiner&) = delete;
  ThreadGroupJoiner& operator=(const ThreadGroupJoiner&) = delete;

 private:
  std::vector<std::thread>& ts_;
};

/// N symmetric runtime instances over one graph: rank r owns the vertices
/// with owner_rank[v] == r and runs under its own EngineConfig (the rank
/// count is cfgs.size()). nranks == 2 is exactly the paper's CPU+MIC
/// configuration; nranks == 1 degenerates to a single-device run behind the
/// same interface.
template <VertexProgram Program>
class ClusterEngine {
 public:
  using Msg = typename Program::message_t;
  using Value = typename Program::vertex_value_t;
  using Engine = DeviceEngine<Program>;

  struct Result {
    std::vector<RunResult> ranks;      // per-rank traces, indexed by rank
    std::vector<Value> global_values;  // gathered over every rank

    // Fault-tolerance outcome. On a fault-free run: completed == true,
    // failover all-zero, fault invalid, recovery empty. After a rank fault:
    // `fault` is the origin report, `recovery` the CPU-only rerun's
    // RunResult, and global_values holds the recovered values. completed is
    // false only if the recovery run itself failed.
    bool completed = true;
    fault::FaultReport fault;
    RunResult recovery;
    metrics::FailoverStats failover;
  };

  /// owner_rank[v] in [0, cfgs.size()) assigns each global vertex to a rank
  /// (from src/partition).
  ClusterEngine(const graph::Csr& g, std::vector<int> owner_rank, Program prog,
                std::vector<EngineConfig> cfgs)
      : graph_(&g),
        prog_(prog),
        nranks_(static_cast<int>(cfgs.size())),
        data_(static_cast<int>(cfgs.size())),
        control_(static_cast<int>(cfgs.size())),
        recovery_cfg_(cfgs.empty() ? EngineConfig{} : cfgs.front()) {
    PG_CHECK_MSG(!cfgs.empty(), "ClusterEngine needs at least one rank");
    for (const EngineConfig& c : cfgs)
      PG_CHECK_MSG(c.checkpoint.interval == cfgs.front().checkpoint.interval,
                   "all ranks must checkpoint at the same interval so their "
                   "frames land on the same superstep boundaries");
    // The recovery engine runs single-device after the fault; it must not
    // trip armed fault-injection specs at checkpoint.write or overwrite the
    // frames being recovered from.
    recovery_cfg_.checkpoint = {};
    auto parts = LocalGraph::split_n(g, std::move(owner_rank), nranks_);
    using PeerLink = typename Engine::PeerLink;
    engines_.reserve(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r)
      engines_.push_back(std::make_unique<Engine>(
          std::move(parts[static_cast<std::size_t>(r)]), prog,
          cfgs[static_cast<std::size_t>(r)], PeerLink{r, &data_, &control_}));
  }

  Result run() {
    Result res;
    res.ranks.resize(static_cast<std::size_t>(nranks_));
    {
      std::vector<std::thread> threads;
      ThreadGroupJoiner joiner(threads);
      threads.reserve(static_cast<std::size_t>(nranks_ - 1));
      for (int r = 1; r < nranks_; ++r)
        threads.emplace_back([this, r, &res] {
          res.ranks[static_cast<std::size_t>(r)] =
              engines_[static_cast<std::size_t>(r)]->run();
        });
      res.ranks[0] = engines_[0]->run();
    }
    bool failed = false;
    for (const RunResult& r : res.ranks) failed = failed || r.failed;
    if (failed) {
      fail_over(res);
      return res;
    }
    for (const RunResult& r : res.ranks)
      PG_CHECK_MSG(r.supersteps == res.ranks[0].supersteps,
                   "ranks must execute the same superstep count");
#if PG_AUDIT_ENABLED
    // Every per-rank phase machine must have come to rest before the gather
    // reads its vertex values (a rank mid-phase here would mean the control
    // exchange let one side run ahead).
    for (int r = 0; r < nranks_; ++r)
      PG_AUDIT_FMT(engines_[static_cast<std::size_t>(r)]->audit_phase() ==
                       audit::BspPhase::kIdle,
                   "hetero-devices-idle",
                   "gather started while rank %d is mid-superstep (phase: %s)",
                   r,
                   audit::phase_name(
                       engines_[static_cast<std::size_t>(r)]->audit_phase()));
#endif

    res.global_values.resize(graph_->num_vertices());
    for (const auto& e : engines_) gather(*e, res.global_values);
    return res;
  }

  [[nodiscard]] int num_ranks() const noexcept { return nranks_; }
  [[nodiscard]] const Engine& engine(int r) const {
    PG_CHECK(r >= 0 && r < nranks_);
    return *engines_[static_cast<std::size_t>(r)];
  }

 private:
  static void gather(const Engine& e, std::vector<Value>& out) {
    const auto& lg = e.local_graph();
    const auto vals = e.values();
    for (vid_t u = 0; u < lg.num_local_vertices(); ++u)
      out[lg.global_id[u]] = vals[u];
  }

  /// Single-device failover: rebuild one engine over ALL partitions, seed it
  /// from the newest checkpoint superstep that validates on every rank
  /// (falling back to superstep 0), and run it to completion.
  void fail_over(Result& res) {
    PG_TRACE_SCOPE(kRecovery, -1, 0);
    Timer rec;
    // The origin report: the first failed rank carrying a valid fault (a
    // rank that observed a peer failure carries the origin's report, so any
    // valid one names the true culprit); fall back to the first failure.
    for (const RunResult& r : res.ranks)
      if (r.failed && r.fault.valid()) {
        res.fault = r.fault;
        break;
      }
    if (!res.fault.valid())
      for (const RunResult& r : res.ranks)
        if (r.failed) {
          res.fault = r.fault;
          break;
        }

    // Newest resume superstep whose frame CRC-validates in EVERY store — a
    // frame corrupted on any rank (torn write, injected fault, bit flip)
    // drops that superstep and the search falls back to the previous one.
    int resume = 0;
    std::vector<fault::CheckpointFrame> frames;
    bool all_stores = true;
    for (const auto& e : engines_)
      all_stores = all_stores && e->checkpoint_store() != nullptr;
    if (all_stores) {
      for (int s : engines_[0]->checkpoint_store()->valid_supersteps()) {
        std::vector<fault::CheckpointFrame> cand;
        cand.reserve(engines_.size());
        for (const auto& e : engines_) {
          auto f = e->checkpoint_store()->frame_at(s);
          if (!f) break;
          cand.push_back(std::move(*f));
        }
        if (cand.size() == engines_.size()) {
          frames = std::move(cand);
          resume = s;
          break;
        }
      }
    }

    // LocalGraph::whole maps local == global, so scattering each partition's
    // snapshot through its global_id table lands directly on the recovery
    // engine's indices.
    Engine engine(LocalGraph::whole(*graph_), prog_, recovery_cfg_);
    if (!frames.empty()) {
      const vid_t n = graph_->num_vertices();
      std::vector<Value> vals(n);
      std::vector<std::uint8_t> act(n, 0);
      bool ok = true;
      for (std::size_t r = 0; r < frames.size(); ++r)
        ok = ok &&
             apply_frame(frames[r], engines_[r]->local_graph(), vals, act);
      if (!ok)
        resume = 0;  // frame shape mismatch: restart from scratch
      else
        engine.restore(vals, act, resume);
    }

    try {
      res.recovery = engine.run();
    } catch (const std::exception& e) {
      res.completed = false;
      res.fault.what += std::string("; recovery also failed: ") + e.what();
      res.failover.failed_over = 1;
      res.failover.recovery_ms = rec.millis();
      return;
    }
    res.global_values.assign(engine.values().begin(), engine.values().end());
    res.failover.failed_over = 1;
    res.failover.lost_supersteps = static_cast<std::uint64_t>(
        res.fault.superstep > resume ? res.fault.superstep - resume : 0);
    res.failover.recovery_ms = rec.millis();
  }

  /// Scatter one rank's checkpointed values/active bits into global-indexed
  /// arrays. Returns false if the frame does not match the partition shape
  /// (e.g. a structurally damaged but CRC-lucky file) — callers then restart
  /// from superstep 0 instead of loading garbage.
  static bool apply_frame(const fault::CheckpointFrame& f,
                          const LocalGraph& lg, std::vector<Value>& vals,
                          std::vector<std::uint8_t>& act) {
    const std::size_t n = static_cast<std::size_t>(lg.num_local_vertices());
    if (f.values.size() != n * sizeof(Value) || f.active.size() != n)
      return false;
    for (std::size_t u = 0; u < n; ++u) {
      const vid_t g = lg.global_id[u];
      std::memcpy(&vals[g], f.values.data() + u * sizeof(Value),
                  sizeof(Value));
      act[g] = f.active[u];
    }
    return true;
  }

  const graph::Csr* graph_;
  Program prog_;
  int nranks_;
  comm::AllToAll<typename Engine::Batch> data_;
  comm::AllToAll<std::uint64_t> control_;
  EngineConfig recovery_cfg_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

/// The paper's heterogeneous CPU+MIC configuration: a two-rank ClusterEngine
/// (CPU = rank 0, MIC = rank 1) with the historical Device-keyed interface
/// and result shape.
template <VertexProgram Program>
class HeteroEngine {
 public:
  using Msg = typename Program::message_t;
  using Value = typename Program::vertex_value_t;
  using Engine = DeviceEngine<Program>;

  struct Result {
    RunResult cpu;
    RunResult mic;
    std::vector<Value> global_values;  // gathered over both devices

    // Fault-tolerance outcome; see ClusterEngine::Result.
    bool completed = true;
    fault::FaultReport fault;
    RunResult recovery;
    metrics::FailoverStats failover;
  };

  /// owner[v] assigns each global vertex to a device (from src/partition).
  HeteroEngine(const graph::Csr& g, std::vector<Device> owner, Program prog,
               EngineConfig cpu_cfg, EngineConfig mic_cfg)
      : cluster_(g, to_ranks(owner), std::move(prog),
                 {std::move(cpu_cfg), std::move(mic_cfg)}) {}

  Result run() {
    auto cr = cluster_.run();
    Result res;
    res.cpu = std::move(cr.ranks[0]);
    res.mic = std::move(cr.ranks[1]);
    res.global_values = std::move(cr.global_values);
    res.completed = cr.completed;
    res.fault = std::move(cr.fault);
    res.recovery = std::move(cr.recovery);
    res.failover = cr.failover;
    return res;
  }

  [[nodiscard]] const Engine& cpu_engine() const noexcept {
    return cluster_.engine(0);
  }
  [[nodiscard]] const Engine& mic_engine() const noexcept {
    return cluster_.engine(1);
  }

 private:
  static std::vector<int> to_ranks(const std::vector<Device>& owner) {
    std::vector<int> ranks(owner.size());
    for (std::size_t v = 0; v < owner.size(); ++v)
      ranks[v] = device_index(owner[v]);
    return ranks;
  }

  ClusterEngine<Program> cluster_;
};

/// Convenience: run a program on the whole graph with one device config.
template <VertexProgram Program>
struct SingleDeviceResult {
  RunResult run;
  std::vector<typename Program::vertex_value_t> values;
};

template <VertexProgram Program>
SingleDeviceResult<Program> run_single(const graph::Csr& g, Program prog,
                                       const EngineConfig& cfg) {
  DeviceEngine<Program> engine(LocalGraph::whole(g), std::move(prog), cfg);
  SingleDeviceResult<Program> out;
  out.run = engine.run();
  out.values.assign(engine.values().begin(), engine.values().end());
  return out;
}

}  // namespace phigraph::core
