// Heterogeneous CPU+MIC execution (paper §IV-A/E).
//
// Two symmetric DeviceEngine instances — "Symmetric runtime instances on the
// CPU and the Xeon Phi share the same source code and thus the same
// structure, though parameters such as numbers of threads running on each
// device are separately configured" — wired by a data exchange and a
// termination-control exchange, each running on its own host thread.
#pragma once

#include <array>
#include <thread>
#include <utility>
#include <vector>

#include "src/comm/exchange.hpp"
#include "src/common/audit.hpp"
#include "src/core/engine.hpp"
#include "src/core/local_graph.hpp"

namespace phigraph::core {

template <VertexProgram Program>
class HeteroEngine {
 public:
  using Msg = typename Program::message_t;
  using Value = typename Program::vertex_value_t;
  using Engine = DeviceEngine<Program>;

  struct Result {
    RunResult cpu;
    RunResult mic;
    std::vector<Value> global_values;  // gathered over both devices
  };

  /// owner[v] assigns each global vertex to a device (from src/partition).
  HeteroEngine(const graph::Csr& g, std::vector<Device> owner, Program prog,
               EngineConfig cpu_cfg, EngineConfig mic_cfg) {
    auto parts = LocalGraph::split(g, std::move(owner));
    using PeerLink = typename Engine::PeerLink;
    cpu_.emplace(std::move(parts[0]), prog, cpu_cfg,
                 PeerLink{0, &data_, &control_});
    mic_.emplace(std::move(parts[1]), prog, mic_cfg,
                 PeerLink{1, &data_, &control_});
  }

  Result run() {
    Result res;
    std::thread mic_thread([&] { res.mic = mic_->run(); });
    res.cpu = cpu_->run();
    mic_thread.join();
    PG_CHECK_MSG(res.cpu.supersteps == res.mic.supersteps,
                 "devices must execute the same superstep count");
    // Both per-device phase machines must have come to rest before the
    // gather reads their vertex values (a device mid-phase here would mean
    // the control exchange let one side run ahead).
    PG_AUDIT_FMT(cpu_->audit_phase() == audit::BspPhase::kIdle &&
                     mic_->audit_phase() == audit::BspPhase::kIdle,
                 "hetero-devices-idle",
                 "gather started while a device is mid-superstep (CPU phase: "
                 "%s, MIC phase: %s)",
                 audit::phase_name(cpu_->audit_phase()),
                 audit::phase_name(mic_->audit_phase()));

    const auto& cg = cpu_->local_graph();
    res.global_values.resize(cg.global_num_vertices);
    gather(*cpu_, res.global_values);
    gather(*mic_, res.global_values);
    return res;
  }

  [[nodiscard]] const Engine& cpu_engine() const noexcept { return *cpu_; }
  [[nodiscard]] const Engine& mic_engine() const noexcept { return *mic_; }

 private:
  static void gather(const Engine& e, std::vector<Value>& out) {
    const auto& lg = e.local_graph();
    const auto vals = e.values();
    for (vid_t u = 0; u < lg.num_local_vertices(); ++u)
      out[lg.global_id[u]] = vals[u];
  }

  comm::Exchange<typename Engine::Batch> data_;
  comm::Exchange<std::uint64_t> control_;
  std::optional<Engine> cpu_;
  std::optional<Engine> mic_;
};

/// Convenience: run a program on the whole graph with one device config.
template <VertexProgram Program>
struct SingleDeviceResult {
  RunResult run;
  std::vector<typename Program::vertex_value_t> values;
};

template <VertexProgram Program>
SingleDeviceResult<Program> run_single(const graph::Csr& g, Program prog,
                                       const EngineConfig& cfg) {
  DeviceEngine<Program> engine(LocalGraph::whole(g), std::move(prog), cfg);
  SingleDeviceResult<Program> out;
  out.run = engine.run();
  out.values.assign(engine.values().begin(), engine.values().end());
  return out;
}

}  // namespace phigraph::core
