// Multi-rank symmetric execution (paper §IV-A/E, generalized to N ranks).
//
// Symmetric DeviceEngine instances — "Symmetric runtime instances on the
// CPU and the Xeon Phi share the same source code and thus the same
// structure, though parameters such as numbers of threads running on each
// device are separately configured" — wired by an all-to-all data exchange
// and a termination-control exchange, rank 0 running on the calling thread
// and every other rank on its own host thread. The paper's CPU+MIC
// configuration is the two-rank case, exposed unchanged as HeteroEngine.
//
// Fault tolerance (DESIGN.md §6/§12): the spawned rank threads are joined by
// a scope guard, so an exception on the rank-0 path can no longer
// std::terminate the process with a joinable thread in flight. When any rank
// faults, run() walks a graceful-degradation recovery ladder instead of
// collapsing straight to one device:
//
//   rung 1 — transient respawn: for a fault classified kTransient (timeouts,
//     fault::TransientError, injected transient specs), rebuild the failed
//     rank's engine, restore every rank from the newest checkpoint frame
//     that CRC-validates on ALL ranks, advance the channels' recovery epoch,
//     and resume all N ranks. Bounded by fault::RetryPolicy (max attempts,
//     exponential backoff).
//   rung 2 — survivor repartition: for a permanent fault (or an exhausted
//     retry budget) with a known culprit and at least two survivors, deal
//     the dead rank's vertices over the N-1 survivors (reweighted by their
//     thread budgets), rebuild fresh channels + engines, restore from the
//     same common frame, and finish on N-1 ranks.
//   rung 3 — single-device rerun: the pre-ladder behaviour; one engine over
//     ALL partitions, seeded from the newest common frame (or restarted from
//     superstep 0), finishes the computation CPU-only.
//
// The outcome — origin FaultReport, attempts, epochs, deepest rung, lost
// supersteps, per-epoch recovery wall time — is reported in
// Result::failover.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/comm/exchange.hpp"
#include "src/common/audit.hpp"
#include "src/common/timer.hpp"
#include "src/core/engine.hpp"
#include "src/core/local_graph.hpp"
#include "src/fault/checkpoint.hpp"
#include "src/fault/fault.hpp"
#include "src/metrics/counters.hpp"
#include "src/partition/partition.hpp"
#include "src/partition/stream_partition.hpp"

namespace phigraph::core {

/// Joins the wrapped thread on scope exit. Keeps run() exception-safe:
/// std::thread's destructor calls std::terminate when the thread is still
/// joinable, so without the guard any throw between spawn and join
/// (user-program exception, PG_CHECK in a death test, ...) kills the whole
/// process instead of unwinding.
class ThreadJoiner {
 public:
  explicit ThreadJoiner(std::thread& t) noexcept : t_(t) {}
  ~ThreadJoiner() {
    if (t_.joinable()) t_.join();
  }
  ThreadJoiner(const ThreadJoiner&) = delete;
  ThreadJoiner& operator=(const ThreadJoiner&) = delete;

 private:
  std::thread& t_;
};

/// Joins every thread of a group on scope exit (the N-rank ThreadJoiner).
class ThreadGroupJoiner {
 public:
  explicit ThreadGroupJoiner(std::vector<std::thread>& ts) noexcept
      : ts_(ts) {}
  ~ThreadGroupJoiner() {
    for (auto& t : ts_)
      if (t.joinable()) t.join();
  }
  ThreadGroupJoiner(const ThreadGroupJoiner&) = delete;
  ThreadGroupJoiner& operator=(const ThreadGroupJoiner&) = delete;

 private:
  std::vector<std::thread>& ts_;
};

/// N symmetric runtime instances over one graph: rank r owns the vertices
/// with owner_rank[v] == r and runs under its own EngineConfig (the rank
/// count is cfgs.size()). nranks == 2 is exactly the paper's CPU+MIC
/// configuration; nranks == 1 degenerates to a single-device run behind the
/// same interface.
template <VertexProgram Program>
class ClusterEngine {
 public:
  using Msg = typename Program::message_t;
  using Value = typename Program::vertex_value_t;
  using Engine = DeviceEngine<Program>;

  struct Result {
    std::vector<RunResult> ranks;      // per-rank traces, indexed by rank
    std::vector<Value> global_values;  // gathered over every rank

    // Fault-tolerance outcome. On a fault-free run: completed == true,
    // failover all-zero, fault invalid, recovery empty. After a rank fault:
    // `fault` is the origin report (the FIRST fault of the run),
    // `failover` records the ladder walk; `recovery_ranks` holds the
    // survivors' traces when rung 2 finished the run, `recovery` the
    // CPU-only rerun's trace when rung 3 did. After a successful rung-1
    // respawn, `ranks` holds the final (resumed) traces of all N ranks.
    // completed is false only if every rung failed.
    bool completed = true;
    fault::FaultReport fault;
    RunResult recovery;
    std::vector<RunResult> recovery_ranks;
    metrics::FailoverStats failover;
  };

  /// owner_rank[v] in [0, cfgs.size()) assigns each global vertex to a rank
  /// (from src/partition).
  ClusterEngine(const graph::Csr& g, std::vector<int> owner_rank, Program prog,
                std::vector<EngineConfig> cfgs)
      : graph_(&g),
        prog_(prog),
        nranks_(static_cast<int>(cfgs.size())),
        data_(static_cast<int>(cfgs.size())),
        control_(static_cast<int>(cfgs.size())),
        owner_rank_(std::move(owner_rank)),
        cfgs_(std::move(cfgs)),
        recovery_cfg_(cfgs_.empty() ? EngineConfig{} : cfgs_.front()),
        retry_(cfgs_.empty() ? fault::RetryPolicy{} : cfgs_.front().retry) {
    PG_CHECK_MSG(!cfgs_.empty(), "ClusterEngine needs at least one rank");
    for (const EngineConfig& c : cfgs_)
      PG_CHECK_MSG(c.checkpoint.interval == cfgs_.front().checkpoint.interval,
                   "all ranks must checkpoint at the same interval so their "
                   "frames land on the same superstep boundaries");
    // The recovery engine runs single-device after the fault; it must not
    // trip armed fault-injection specs at checkpoint.write or overwrite the
    // frames being recovered from.
    recovery_cfg_.checkpoint = {};
    // Size the rerun's team from the whole cluster's thread budget — the
    // dead cluster's full allotment is free, so the single-device fallback
    // should use the whole machine, not rank 0's slice of it. An explicit
    // recovery_threads pins the total instead (deterministic recoveries).
    {
      int combined = 0;
      for (const EngineConfig& c : cfgs_) combined += c.total_threads();
      const int budget = recovery_cfg_.recovery_threads > 0
                             ? recovery_cfg_.recovery_threads
                             : combined;
      recovery_cfg_.threads =
          recovery_cfg_.mode == ExecMode::kPipelining
              ? std::max(1, budget - recovery_cfg_.movers)
              : std::max(1, budget);
    }
    auto parts = LocalGraph::split_n(g, owner_rank_, nranks_);
    engines_.reserve(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r)
      engines_.push_back(std::make_unique<Engine>(
          std::move(parts[static_cast<std::size_t>(r)]), prog_,
          cfgs_[static_cast<std::size_t>(r)],
          typename Engine::PeerLink{r, &data_, &control_}));
  }

  /// Scheme-deriving constructor: no explicit owner map — vertices are
  /// assigned by rank 0's partition_scheme / stream_partition knobs, each
  /// rank weighted by its thread budget (the same weighting the recovery
  /// ladder's survivor repartition uses).
  ClusterEngine(const graph::Csr& g, Program prog,
                const std::vector<EngineConfig>& cfgs)
      : ClusterEngine(g, owner_from_scheme(g, cfgs), std::move(prog), cfgs) {}

  /// The owner map the scheme-deriving constructor would build — exposed so
  /// callers (tests, benches) can evaluate the same assignment they run.
  [[nodiscard]] static std::vector<int> owner_from_scheme(
      const graph::Csr& g, const std::vector<EngineConfig>& cfgs) {
    PG_CHECK_MSG(!cfgs.empty(), "ClusterEngine needs at least one rank");
    partition::RankWeights w;
    w.reserve(cfgs.size());
    for (const EngineConfig& c : cfgs) w.push_back(c.total_threads());
    return partition::make_partition_k(cfgs.front().partition_scheme, g, w,
                                       cfgs.front().stream_partition);
  }

  Result run() {
    Result res;
    int backoff_ms = retry_.backoff_ms;
    for (;;) {
      run_ranks(res);
      fault::FaultReport epoch_fault;
      if (!collect_failure(res, epoch_fault)) {
        finish_full_cluster(res);
        return res;
      }
      // The origin report of the whole run is the FIRST epoch's fault;
      // later epochs update only the ladder statistics.
      if (!res.fault.valid()) res.fault = epoch_fault;
      res.failover.failed_over = 1;
      // Rung 1: bounded transient respawn with exponential backoff.
      if (epoch_fault.kind == fault::FaultKind::kTransient &&
          static_cast<int>(res.failover.attempts) < retry_.max_attempts) {
        if (backoff_ms > 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(
            retry_.max_backoff_ms,
            std::max(backoff_ms + 1,
                     static_cast<int>(static_cast<double>(backoff_ms) *
                                      retry_.backoff_factor)));
        ++res.failover.attempts;
        if (try_respawn(epoch_fault, res)) continue;
        // Respawn itself failed (e.g. a fault point fired while restoring):
        // fall through the remaining rungs.
      }
      // Rung 2: repartition over the survivors. Finalizes res on its own
      // (including the rung-3 fallback from *its* checkpoints if the
      // survivor run faults again); returns false only when repartitioning
      // is impossible here.
      if (try_repartition(res, epoch_fault)) return res;
      // Rung 3: the single-device rerun, resuming from the old rank set's
      // checkpoint frames.
      fail_over(res, epoch_fault, engines_);
      return res;
    }
  }

  [[nodiscard]] int num_ranks() const noexcept { return nranks_; }
  [[nodiscard]] const Engine& engine(int r) const {
    PG_CHECK(r >= 0 && r < nranks_);
    return *engines_[static_cast<std::size_t>(r)];
  }

  /// The effective config of the rung-3 single-device recovery engine
  /// (checkpointing stripped, team sized from the combined rank budgets).
  [[nodiscard]] const EngineConfig& recovery_config() const noexcept {
    return recovery_cfg_;
  }

 private:
  static void gather(const Engine& e, std::vector<Value>& out) {
    const auto& lg = e.local_graph();
    const auto vals = e.values();
    for (vid_t u = 0; u < lg.num_local_vertices(); ++u)
      out[lg.global_id[u]] = vals[u];
  }

  /// One BSP epoch over the full rank set: rank 0 on the calling thread,
  /// every other rank on its own host thread, joined by a scope guard.
  void run_ranks(Result& res) {
    res.ranks.clear();
    res.ranks.resize(static_cast<std::size_t>(nranks_));
    std::vector<std::thread> threads;
    ThreadGroupJoiner joiner(threads);
    threads.reserve(static_cast<std::size_t>(nranks_ - 1));
    for (int r = 1; r < nranks_; ++r)
      threads.emplace_back([this, r, &res] {
        res.ranks[static_cast<std::size_t>(r)] =
            engines_[static_cast<std::size_t>(r)]->run();
      });
    res.ranks[0] = engines_[0]->run();
  }

  /// True if any rank failed; fills `out` with this epoch's origin report:
  /// the first failed rank carrying a valid fault (a rank that observed a
  /// peer failure carries the origin's report, so any valid one names the
  /// true culprit), falling back to the first failure.
  static bool collect_failure(const Result& res, fault::FaultReport& out) {
    bool failed = false;
    for (const RunResult& r : res.ranks) failed = failed || r.failed;
    if (!failed) return false;
    for (const RunResult& r : res.ranks)
      if (r.failed && r.fault.valid()) {
        out = r.fault;
        return true;
      }
    for (const RunResult& r : res.ranks)
      if (r.failed) {
        out = r.fault;
        break;
      }
    return true;
  }

  /// Success path for the full rank set (fault-free run or a completed
  /// rung-1 respawn): consistency checks + gather.
  void finish_full_cluster(Result& res) {
    for (const RunResult& r : res.ranks)
      PG_CHECK_MSG(r.supersteps == res.ranks[0].supersteps,
                   "ranks must execute the same superstep count");
#if PG_AUDIT_ENABLED
    // Every per-rank phase machine must have come to rest before the gather
    // reads its vertex values (a rank mid-phase here would mean the control
    // exchange let one side run ahead).
    for (int r = 0; r < nranks_; ++r)
      PG_AUDIT_FMT(engines_[static_cast<std::size_t>(r)]->audit_phase() ==
                       audit::BspPhase::kIdle,
                   "hetero-devices-idle",
                   "gather started while rank %d is mid-superstep (phase: %s)",
                   r,
                   audit::phase_name(
                       engines_[static_cast<std::size_t>(r)]->audit_phase()));
#endif
    res.global_values.resize(graph_->num_vertices());
    for (const auto& e : engines_) gather(*e, res.global_values);
  }

  /// Account one recovery epoch: bump the epoch count, track the deepest
  /// rung, and record its rebuild+restore wall time and superstep loss
  /// (epoch fault superstep minus the resume point it restored from).
  void record_epoch(Result& res, const fault::FaultReport& epoch_fault,
                    int resume, std::uint64_t rung, double ms) {
    ++res.failover.epochs;
    res.failover.rung = std::max(res.failover.rung, rung);
    res.failover.epoch_recovery_ms.push_back(ms);
    res.failover.recovery_ms += ms;
    const std::uint64_t lost = static_cast<std::uint64_t>(
        epoch_fault.superstep > resume ? epoch_fault.superstep - resume : 0);
    res.failover.lost_supersteps = std::max(res.failover.lost_supersteps, lost);
  }

  /// Newest resume superstep whose frame CRC-validates in EVERY store of
  /// `src` — a frame corrupted on any rank (torn write, injected fault, bit
  /// flip) drops that superstep and the search falls back to the previous
  /// one. Leaves `frames` empty (resume 0) when any store is missing or no
  /// superstep validates everywhere.
  static void find_common_frames(
      const std::vector<std::unique_ptr<Engine>>& src, int& resume,
      std::vector<fault::CheckpointFrame>& frames) {
    resume = 0;
    frames.clear();
    for (const auto& e : src)
      if (e->checkpoint_store() == nullptr) return;
    for (int s : src[0]->checkpoint_store()->valid_supersteps()) {
      std::vector<fault::CheckpointFrame> cand;
      cand.reserve(src.size());
      for (const auto& e : src) {
        auto f = e->checkpoint_store()->frame_at(s);
        if (!f) break;
        cand.push_back(std::move(*f));
      }
      if (cand.size() == src.size()) {
        frames = std::move(cand);
        resume = s;
        return;
      }
    }
  }

  /// Restore one engine in place from its own rank's frame. Returns false on
  /// a shape mismatch (e.g. a structurally damaged but CRC-lucky file).
  static bool restore_from_frame(Engine& e, const fault::CheckpointFrame& f,
                                 int resume) {
    const std::size_t n =
        static_cast<std::size_t>(e.local_graph().num_local_vertices());
    if (f.values.size() != n * sizeof(Value) || f.active.size() != n)
      return false;
    std::vector<Value> vals(n);
    if (n > 0) std::memcpy(vals.data(), f.values.data(), f.values.size());
    e.restore(vals, f.active, resume);
    return true;
  }

  /// Rebuild rank r's engine from scratch over its original partition (the
  /// channels are shared members, so the new engine rejoins the same
  /// rendezvous).
  void rebuild_engine(int r) {
    auto parts = LocalGraph::split_n(*graph_, owner_rank_, nranks_);
    engines_[static_cast<std::size_t>(r)] = std::make_unique<Engine>(
        std::move(parts[static_cast<std::size_t>(r)]), prog_,
        cfgs_[static_cast<std::size_t>(r)],
        typename Engine::PeerLink{r, &data_, &control_});
  }

  void rebuild_all_engines() {
    auto parts = LocalGraph::split_n(*graph_, owner_rank_, nranks_);
    for (int r = 0; r < nranks_; ++r)
      engines_[static_cast<std::size_t>(r)] = std::make_unique<Engine>(
          std::move(parts[static_cast<std::size_t>(r)]), prog_,
          cfgs_[static_cast<std::size_t>(r)],
          typename Engine::PeerLink{r, &data_, &control_});
  }

  /// Ladder rung 1: respawn the failed rank's engine, restore every rank
  /// from the newest common frame (surviving ranks restore in place; with no
  /// usable frame, or an unidentified culprit, everything is rebuilt and the
  /// run restarts from superstep 0), and open a fresh channel epoch so
  /// nothing staged in the aborted round can leak into the resumed one.
  /// Returns false when the respawn itself fails — the caller falls further
  /// down the ladder.
  bool try_respawn(const fault::FaultReport& epoch_fault, Result& res) {
    PG_TRACE_SCOPE(kRecovery, -1, 0);
    Timer rec;
    try {
      int resume = 0;
      std::vector<fault::CheckpointFrame> frames;
      find_common_frames(engines_, resume, frames);
      const int dead = epoch_fault.rank;
      if (frames.empty() || dead < 0 || dead >= nranks_) {
        rebuild_all_engines();
        if (!frames.empty()) {
          for (int r = 0; r < nranks_; ++r)
            if (!restore_from_frame(*engines_[static_cast<std::size_t>(r)],
                                    frames[static_cast<std::size_t>(r)],
                                    resume)) {
              rebuild_all_engines();  // shape mismatch: restart from scratch
              resume = 0;
              break;
            }
        } else {
          resume = 0;
        }
      } else {
        rebuild_engine(dead);
        for (int r = 0; r < nranks_; ++r)
          if (!restore_from_frame(*engines_[static_cast<std::size_t>(r)],
                                  frames[static_cast<std::size_t>(r)],
                                  resume)) {
            rebuild_all_engines();
            resume = 0;
            break;
          }
      }
      data_.advance_epoch();
      control_.advance_epoch();
      record_epoch(res, epoch_fault, resume, /*rung=*/1, rec.millis());
      return true;
    } catch (...) {
      return false;
    }
  }

  /// Ladder rung 2: write the dead rank off and finish on the N-1 survivors.
  /// The dead rank's vertices are dealt over the survivors weighted by their
  /// thread budgets (partition::reassign_after_loss), fresh channels and
  /// engines are built for the reduced rank set, and every survivor engine
  /// is seeded from the newest common frame of the OLD rank set scattered
  /// through global vertex ids (the repartition moves vertices between
  /// ranks, so per-rank frames cannot be restored in place).
  ///
  /// Finalizes `res` on success AND when the survivor run faults again (that
  /// falls to rung 3 using the survivors' own checkpoint stores, so progress
  /// made on N-1 ranks is not thrown away). Returns false only when
  /// repartitioning is impossible — fewer than two survivors, an
  /// unidentified culprit, or a failure while rebuilding — in which case
  /// `res` is untouched and the caller runs rung 3 from the old rank set.
  bool try_repartition(Result& res, const fault::FaultReport& epoch_fault) {
    const int dead = epoch_fault.rank;
    if (nranks_ < 3 || dead < 0 || dead >= nranks_) return false;
    PG_TRACE_SCOPE(kRecovery, -1, 0);
    Timer rec;
    const int m = nranks_ - 1;
    std::vector<std::unique_ptr<Engine>> survivors;
    comm::AllToAll<typename Engine::Batch> data2(m);
    comm::AllToAll<std::uint64_t> control2(m);
    int resume = 0;
    try {
      partition::RankWeights w;
      std::vector<EngineConfig> scfgs;
      w.reserve(static_cast<std::size_t>(m));
      scfgs.reserve(static_cast<std::size_t>(m));
      for (int r = 0; r < nranks_; ++r) {
        if (r == dead) continue;
        scfgs.push_back(cfgs_[static_cast<std::size_t>(r)]);
        w.push_back(
            std::max(1, cfgs_[static_cast<std::size_t>(r)].total_threads()));
      }
      auto owner2 =
          partition::reassign_after_loss(*graph_, owner_rank_, nranks_, dead, w);

      // Global restore state from the old rank set's newest common frame.
      std::vector<fault::CheckpointFrame> frames;
      find_common_frames(engines_, resume, frames);
      const vid_t n = graph_->num_vertices();
      std::vector<Value> vals;
      std::vector<std::uint8_t> act;
      bool have_state = false;
      if (!frames.empty()) {
        vals.assign(n, Value{});
        act.assign(n, 0);
        bool ok = true;
        for (std::size_t r = 0; r < frames.size(); ++r)
          ok = ok && apply_frame(frames[r], engines_[r]->local_graph(), vals,
                                 act);
        if (ok)
          have_state = true;
        else
          resume = 0;  // frame shape mismatch: restart from scratch
      }

      auto parts = LocalGraph::split_n(*graph_, std::move(owner2), m);
      survivors.reserve(static_cast<std::size_t>(m));
      for (int r = 0; r < m; ++r)
        survivors.push_back(std::make_unique<Engine>(
            std::move(parts[static_cast<std::size_t>(r)]),  prog_,
            scfgs[static_cast<std::size_t>(r)],
            typename Engine::PeerLink{r, &data2, &control2}));
      if (have_state) {
        for (auto& e : survivors) {
          const auto& lg = e->local_graph();
          const std::size_t ln =
              static_cast<std::size_t>(lg.num_local_vertices());
          std::vector<Value> lv(ln);
          std::vector<std::uint8_t> la(ln);
          for (std::size_t u = 0; u < ln; ++u) {
            lv[u] = vals[lg.global_id[u]];
            la[u] = act[lg.global_id[u]];
          }
          e->restore(lv, la, resume);
        }
      }
    } catch (...) {
      return false;  // rebuilding failed: rung 3 from the old rank set
    }
    record_epoch(res, epoch_fault, resume, /*rung=*/2, rec.millis());

    std::vector<RunResult> rr(static_cast<std::size_t>(m));
    {
      std::vector<std::thread> threads;
      ThreadGroupJoiner joiner(threads);
      threads.reserve(static_cast<std::size_t>(m - 1));
      for (int r = 1; r < m; ++r)
        threads.emplace_back([&rr, &survivors, r] {
          rr[static_cast<std::size_t>(r)] =
              survivors[static_cast<std::size_t>(r)]->run();
        });
      rr[0] = survivors[0]->run();
    }
    res.recovery_ranks = std::move(rr);
    fault::FaultReport f2;
    bool failed = false;
    for (const RunResult& r : res.recovery_ranks) failed = failed || r.failed;
    if (failed) {
      for (const RunResult& r : res.recovery_ranks)
        if (r.failed && r.fault.valid()) {
          f2 = r.fault;
          break;
        }
      if (!f2.valid())
        for (const RunResult& r : res.recovery_ranks)
          if (r.failed) {
            f2 = r.fault;
            break;
          }
      // The survivors checkpointed their own progress; rung 3 resumes from
      // THEIR newest common frame, not the pre-repartition one.
      fail_over(res, f2, survivors);
      return true;
    }
    res.global_values.resize(graph_->num_vertices());
    for (const auto& e : survivors) gather(*e, res.global_values);
    return true;
  }

  /// Ladder rung 3 — single-device failover: rebuild one engine over ALL
  /// partitions, seed it from the newest checkpoint superstep that validates
  /// on every rank of `src` (falling back to superstep 0), and run it to
  /// completion.
  void fail_over(Result& res, const fault::FaultReport& epoch_fault,
                 const std::vector<std::unique_ptr<Engine>>& src) {
    PG_TRACE_SCOPE(kRecovery, -1, 0);
    Timer rec;

    int resume = 0;
    std::vector<fault::CheckpointFrame> frames;
    find_common_frames(src, resume, frames);

    // LocalGraph::whole maps local == global, so scattering each partition's
    // snapshot through its global_id table lands directly on the recovery
    // engine's indices.
    Engine engine(LocalGraph::whole(*graph_), prog_, recovery_cfg_);
    if (!frames.empty()) {
      const vid_t n = graph_->num_vertices();
      std::vector<Value> vals(n);
      std::vector<std::uint8_t> act(n, 0);
      bool ok = true;
      for (std::size_t r = 0; r < frames.size(); ++r)
        ok = ok && apply_frame(frames[r], src[r]->local_graph(), vals, act);
      if (!ok)
        resume = 0;  // frame shape mismatch: restart from scratch
      else
        engine.restore(vals, act, resume);
    }
    record_epoch(res, epoch_fault, resume, /*rung=*/3, rec.millis());

    try {
      res.recovery = engine.run();
    } catch (const std::exception& e) {
      res.completed = false;
      res.fault.what += std::string("; recovery also failed: ") + e.what();
      return;
    }
    res.global_values.assign(engine.values().begin(), engine.values().end());
  }

  /// Scatter one rank's checkpointed values/active bits into global-indexed
  /// arrays. Returns false if the frame does not match the partition shape
  /// (e.g. a structurally damaged but CRC-lucky file) — callers then restart
  /// from superstep 0 instead of loading garbage.
  static bool apply_frame(const fault::CheckpointFrame& f,
                          const LocalGraph& lg, std::vector<Value>& vals,
                          std::vector<std::uint8_t>& act) {
    const std::size_t n = static_cast<std::size_t>(lg.num_local_vertices());
    if (f.values.size() != n * sizeof(Value) || f.active.size() != n)
      return false;
    for (std::size_t u = 0; u < n; ++u) {
      const vid_t g = lg.global_id[u];
      std::memcpy(&vals[g], f.values.data() + u * sizeof(Value),
                  sizeof(Value));
      act[g] = f.active[u];
    }
    return true;
  }

  const graph::Csr* graph_;
  Program prog_;
  int nranks_;
  comm::AllToAll<typename Engine::Batch> data_;
  comm::AllToAll<std::uint64_t> control_;
  std::vector<int> owner_rank_;      // kept for rebuilds and repartitioning
  std::vector<EngineConfig> cfgs_;   // per-rank configs, kept for rebuilds
  EngineConfig recovery_cfg_;
  fault::RetryPolicy retry_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

/// The paper's heterogeneous CPU+MIC configuration: a two-rank ClusterEngine
/// (CPU = rank 0, MIC = rank 1) with the historical Device-keyed interface
/// and result shape.
template <VertexProgram Program>
class HeteroEngine {
 public:
  using Msg = typename Program::message_t;
  using Value = typename Program::vertex_value_t;
  using Engine = DeviceEngine<Program>;

  struct Result {
    RunResult cpu;
    RunResult mic;
    std::vector<Value> global_values;  // gathered over both devices

    // Fault-tolerance outcome; see ClusterEngine::Result.
    bool completed = true;
    fault::FaultReport fault;
    RunResult recovery;
    metrics::FailoverStats failover;
  };

  /// owner[v] assigns each global vertex to a device (from src/partition).
  HeteroEngine(const graph::Csr& g, std::vector<Device> owner, Program prog,
               EngineConfig cpu_cfg, EngineConfig mic_cfg)
      : cluster_(g, to_ranks(owner), std::move(prog),
                 {std::move(cpu_cfg), std::move(mic_cfg)}) {}

  Result run() {
    auto cr = cluster_.run();
    Result res;
    res.cpu = std::move(cr.ranks[0]);
    res.mic = std::move(cr.ranks[1]);
    res.global_values = std::move(cr.global_values);
    res.completed = cr.completed;
    res.fault = std::move(cr.fault);
    res.recovery = std::move(cr.recovery);
    res.failover = cr.failover;
    return res;
  }

  [[nodiscard]] const Engine& cpu_engine() const noexcept {
    return cluster_.engine(0);
  }
  [[nodiscard]] const Engine& mic_engine() const noexcept {
    return cluster_.engine(1);
  }

 private:
  static std::vector<int> to_ranks(const std::vector<Device>& owner) {
    std::vector<int> ranks(owner.size());
    for (std::size_t v = 0; v < owner.size(); ++v)
      ranks[v] = device_index(owner[v]);
    return ranks;
  }

  ClusterEngine<Program> cluster_;
};

/// Convenience: run a program on the whole graph with one device config.
template <VertexProgram Program>
struct SingleDeviceResult {
  RunResult run;
  std::vector<typename Program::vertex_value_t> values;
};

template <VertexProgram Program>
SingleDeviceResult<Program> run_single(const graph::Csr& g, Program prog,
                                       const EngineConfig& cfg) {
  DeviceEngine<Program> engine(LocalGraph::whole(g), std::move(prog), cfg);
  SingleDeviceResult<Program> out;
  out.run = engine.run();
  out.values.assign(engine.values().begin(), engine.values().end());
  return out;
}

}  // namespace phigraph::core
