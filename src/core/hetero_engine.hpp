// Heterogeneous CPU+MIC execution (paper §IV-A/E).
//
// Two symmetric DeviceEngine instances — "Symmetric runtime instances on the
// CPU and the Xeon Phi share the same source code and thus the same
// structure, though parameters such as numbers of threads running on each
// device are separately configured" — wired by a data exchange and a
// termination-control exchange, each running on its own host thread.
//
// Fault tolerance (DESIGN.md §6): the MIC thread is joined by a scope guard,
// so an exception on the CPU path can no longer std::terminate the process
// with a joinable thread in flight. When either device faults, run() falls
// over to a single-device engine covering BOTH partitions, seeded from the
// newest superstep checkpoint that CRC-validates in *both* device stores
// (or restarted from superstep 0 when checkpointing is off / no common frame
// survives), and finishes the computation CPU-only. The outcome — origin
// FaultReport, lost supersteps, recovery wall time — is reported in
// Result::failover.
#pragma once

#include <array>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/comm/exchange.hpp"
#include "src/common/audit.hpp"
#include "src/common/timer.hpp"
#include "src/core/engine.hpp"
#include "src/core/local_graph.hpp"
#include "src/fault/checkpoint.hpp"
#include "src/fault/fault.hpp"
#include "src/metrics/counters.hpp"

namespace phigraph::core {

/// Joins the wrapped thread on scope exit. Keeps HeteroEngine::run()
/// exception-safe: std::thread's destructor calls std::terminate when the
/// thread is still joinable, so without the guard any throw between spawn
/// and join (user-program exception, PG_CHECK in a death test, ...) kills
/// the whole process instead of unwinding.
class ThreadJoiner {
 public:
  explicit ThreadJoiner(std::thread& t) noexcept : t_(t) {}
  ~ThreadJoiner() {
    if (t_.joinable()) t_.join();
  }
  ThreadJoiner(const ThreadJoiner&) = delete;
  ThreadJoiner& operator=(const ThreadJoiner&) = delete;

 private:
  std::thread& t_;
};

template <VertexProgram Program>
class HeteroEngine {
 public:
  using Msg = typename Program::message_t;
  using Value = typename Program::vertex_value_t;
  using Engine = DeviceEngine<Program>;

  struct Result {
    RunResult cpu;
    RunResult mic;
    std::vector<Value> global_values;  // gathered over both devices

    // Fault-tolerance outcome. On a fault-free run: completed == true,
    // failover all-zero, fault invalid, recovery empty. After a device
    // fault: `fault` is the origin report, `recovery` the CPU-only rerun's
    // RunResult, and global_values holds the recovered values. completed is
    // false only if the recovery run itself failed.
    bool completed = true;
    fault::FaultReport fault;
    RunResult recovery;
    metrics::FailoverStats failover;
  };

  /// owner[v] assigns each global vertex to a device (from src/partition).
  HeteroEngine(const graph::Csr& g, std::vector<Device> owner, Program prog,
               EngineConfig cpu_cfg, EngineConfig mic_cfg)
      : graph_(&g), prog_(prog), recovery_cfg_(cpu_cfg) {
    PG_CHECK_MSG(cpu_cfg.checkpoint.interval == mic_cfg.checkpoint.interval,
                 "both devices must checkpoint at the same interval so their "
                 "frames land on the same superstep boundaries");
    // The recovery engine runs CPU-only after the fault; it must not trip
    // armed fault-injection specs at checkpoint.write or overwrite the
    // frames being recovered from.
    recovery_cfg_.checkpoint = {};
    auto parts = LocalGraph::split(g, std::move(owner));
    using PeerLink = typename Engine::PeerLink;
    cpu_.emplace(std::move(parts[0]), prog, cpu_cfg,
                 PeerLink{0, &data_, &control_});
    mic_.emplace(std::move(parts[1]), prog, mic_cfg,
                 PeerLink{1, &data_, &control_});
  }

  Result run() {
    Result res;
    {
      std::thread mic_thread([&] { res.mic = mic_->run(); });
      ThreadJoiner joiner(mic_thread);
      res.cpu = cpu_->run();
    }
    if (res.cpu.failed || res.mic.failed) {
      fail_over(res);
      return res;
    }
    PG_CHECK_MSG(res.cpu.supersteps == res.mic.supersteps,
                 "devices must execute the same superstep count");
    // Both per-device phase machines must have come to rest before the
    // gather reads their vertex values (a device mid-phase here would mean
    // the control exchange let one side run ahead).
    PG_AUDIT_FMT(cpu_->audit_phase() == audit::BspPhase::kIdle &&
                     mic_->audit_phase() == audit::BspPhase::kIdle,
                 "hetero-devices-idle",
                 "gather started while a device is mid-superstep (CPU phase: "
                 "%s, MIC phase: %s)",
                 audit::phase_name(cpu_->audit_phase()),
                 audit::phase_name(mic_->audit_phase()));

    const auto& cg = cpu_->local_graph();
    res.global_values.resize(cg.global_num_vertices);
    gather(*cpu_, res.global_values);
    gather(*mic_, res.global_values);
    return res;
  }

  [[nodiscard]] const Engine& cpu_engine() const noexcept { return *cpu_; }
  [[nodiscard]] const Engine& mic_engine() const noexcept { return *mic_; }

 private:
  static void gather(const Engine& e, std::vector<Value>& out) {
    const auto& lg = e.local_graph();
    const auto vals = e.values();
    for (vid_t u = 0; u < lg.num_local_vertices(); ++u)
      out[lg.global_id[u]] = vals[u];
  }

  /// CPU-only failover: rebuild a single-device engine over BOTH partitions,
  /// seed it from the newest checkpoint superstep that validates on both
  /// devices (falling back to superstep 0), and run it to completion.
  void fail_over(Result& res) {
    PG_TRACE_SCOPE(kRecovery, -1, 0);
    Timer rec;
    res.fault = res.cpu.failed && res.cpu.fault.valid() ? res.cpu.fault
                                                        : res.mic.fault;

    // Newest resume superstep whose frame CRC-validates in BOTH stores — a
    // frame corrupted on either side (torn write, injected fault, bit flip)
    // drops that superstep and the search falls back to the previous one.
    int resume = 0;
    std::optional<fault::CheckpointFrame> cpu_frame, mic_frame;
    const auto* cs = cpu_->checkpoint_store();
    const auto* ms = mic_->checkpoint_store();
    if (cs && ms) {
      for (int s : cs->valid_supersteps()) {
        auto a = cs->frame_at(s);
        auto b = ms->frame_at(s);
        if (a && b) {
          cpu_frame = std::move(a);
          mic_frame = std::move(b);
          resume = s;
          break;
        }
      }
    }

    // LocalGraph::whole maps local == global, so scattering each partition's
    // snapshot through its global_id table lands directly on the recovery
    // engine's indices.
    Engine engine(LocalGraph::whole(*graph_), prog_, recovery_cfg_);
    if (cpu_frame && mic_frame) {
      const vid_t n = graph_->num_vertices();
      std::vector<Value> vals(n);
      std::vector<std::uint8_t> act(n, 0);
      if (!apply_frame(*cpu_frame, cpu_->local_graph(), vals, act) ||
          !apply_frame(*mic_frame, mic_->local_graph(), vals, act)) {
        resume = 0;  // frame shape mismatch: restart from scratch
      } else {
        engine.restore(vals, act, resume);
      }
    }

    try {
      res.recovery = engine.run();
    } catch (const std::exception& e) {
      res.completed = false;
      res.fault.what += std::string("; recovery also failed: ") + e.what();
      res.failover.failed_over = 1;
      res.failover.recovery_ms = rec.millis();
      return;
    }
    res.global_values.assign(engine.values().begin(), engine.values().end());
    res.failover.failed_over = 1;
    res.failover.lost_supersteps = static_cast<std::uint64_t>(
        res.fault.superstep > resume ? res.fault.superstep - resume : 0);
    res.failover.recovery_ms = rec.millis();
  }

  /// Scatter one device's checkpointed values/active bits into global-indexed
  /// arrays. Returns false if the frame does not match the partition shape
  /// (e.g. a structurally damaged but CRC-lucky file) — callers then restart
  /// from superstep 0 instead of loading garbage.
  static bool apply_frame(const fault::CheckpointFrame& f,
                          const LocalGraph& lg, std::vector<Value>& vals,
                          std::vector<std::uint8_t>& act) {
    const std::size_t n = static_cast<std::size_t>(lg.num_local_vertices());
    if (f.values.size() != n * sizeof(Value) || f.active.size() != n)
      return false;
    for (std::size_t u = 0; u < n; ++u) {
      const vid_t g = lg.global_id[u];
      std::memcpy(&vals[g], f.values.data() + u * sizeof(Value),
                  sizeof(Value));
      act[g] = f.active[u];
    }
    return true;
  }

  const graph::Csr* graph_;
  Program prog_;
  EngineConfig recovery_cfg_;
  comm::Exchange<typename Engine::Batch> data_;
  comm::Exchange<std::uint64_t> control_;
  std::optional<Engine> cpu_;
  std::optional<Engine> mic_;
};

/// Convenience: run a program on the whole graph with one device config.
template <VertexProgram Program>
struct SingleDeviceResult {
  RunResult run;
  std::vector<typename Program::vertex_value_t> values;
};

template <VertexProgram Program>
SingleDeviceResult<Program> run_single(const graph::Csr& g, Program prog,
                                       const EngineConfig& cfg) {
  DeviceEngine<Program> engine(LocalGraph::whole(g), std::move(prog), cfg);
  SingleDeviceResult<Program> out;
  out.run = engine.run();
  out.values.assign(engine.values().begin(), engine.values().end());
  return out;
}

}  // namespace phigraph::core
