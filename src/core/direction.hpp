// Traversal direction selection (top-down push vs bottom-up pull).
//
// Mirrors Beamer et al.'s direction-optimizing BFS: a superstep pushes
// messages from the active frontier (the paper's native scheme) until the
// frontier touches more edges than remain unexplored, at which point it is
// cheaper to pull — scan every undiscovered vertex's in-neighbors against a
// bitmap of the frontier and stop at the first hit. The decision is made
// per superstep from two signals the engine already tracks: the number of
// frontier vertices and the number of edges they would push.
//
// The rule is the classic alpha/beta hybrid:
//   push -> pull  when  frontier_edges > unexplored_edges / alpha
//   pull -> push  when  frontier_vertices < num_vertices / beta
// with alpha = 14, beta = 24 as the literature defaults; tune/autotune.hpp
// can learn machine-specific values by replaying a push probe trace through
// the performance model.
//
// This knob is orthogonal to EngineConfig::sparse_iteration_threshold,
// which only picks the iteration shape (compact list vs bitmap scan) for
// PUSH supersteps. Pull supersteps always scan the full vertex range.
#pragma once

#include <cstdint>

namespace phigraph::core {

/// Which way a superstep moves values along edges.
enum class Direction : std::uint8_t {
  kPush = 0,  ///< top-down: active vertices push messages along out-edges
  kPull = 1,  ///< bottom-up: candidate vertices pull from in-neighbors
};

/// How the engine chooses the direction each superstep.
enum class DirectionMode : std::uint8_t {
  kAuto = 0,       ///< alpha/beta rule per superstep (default)
  kForcePush = 1,  ///< always push (the pre-direction engine behaviour)
  kForcePull = 2,  ///< always pull when the program/topology allows it
};

inline const char* direction_name(Direction d) {
  return d == Direction::kPush ? "push" : "pull";
}

inline const char* direction_mode_name(DirectionMode m) {
  switch (m) {
    case DirectionMode::kAuto:
      return "auto";
    case DirectionMode::kForcePush:
      return "push";
    case DirectionMode::kForcePull:
      return "pull";
  }
  return "?";
}

/// Stateful per-run direction chooser. The switch rule is hysteretic (the
/// push->pull and pull->push conditions differ), so the policy remembers the
/// current direction; the engine and sim/model replay the same object so
/// predicted and actual direction mixes agree on matching frontier traces.
struct DirectionPolicy {
  double alpha = 14.0;  ///< push->pull when frontier_edges > unexplored/alpha
  double beta = 24.0;   ///< pull->push when frontier_vertices < n/beta
  Direction current = Direction::kPush;

  /// Decide the direction for the next superstep.
  ///
  /// @param frontier_vertices  active vertices entering the superstep
  /// @param frontier_edges     sum of out-degrees over the frontier
  /// @param unexplored_edges   edges not yet touched by any push superstep
  /// @param num_vertices       |V| of the local graph
  Direction decide(std::uint64_t frontier_vertices,
                   std::uint64_t frontier_edges,
                   std::uint64_t unexplored_edges,
                   std::uint64_t num_vertices) {
    if (current == Direction::kPush) {
      if (alpha > 0.0 &&
          static_cast<double>(frontier_edges) >
              static_cast<double>(unexplored_edges) / alpha) {
        current = Direction::kPull;
      }
    } else {
      if (beta > 0.0 &&
          static_cast<double>(frontier_vertices) <
              static_cast<double>(num_vertices) / beta) {
        current = Direction::kPush;
      }
    }
    return current;
  }

  void reset() { current = Direction::kPush; }
};

}  // namespace phigraph::core
