// Compile-time contract for vertex programs.
//
// A PhiGraph vertex program mirrors the paper's three user-defined functions
// plus the scalar reduction the runtime needs for remote-message combining
// and the novec ablation:
//
//   struct MyProgram {
//     using vertex_value_t = ...;   // per-vertex state
//     using message_t      = ...;   // what send_messages() carries
//
//     static constexpr bool kAllActive      = ...; // every vertex generates
//                                                  // every superstep (PageRank)
//     static constexpr bool kNeedsReduction = ...; // messages are reduced
//     static constexpr bool kSimdReduce     = ...; // reduction is associative,
//                                                  // commutative & basic-typed
//
//     message_t identity() const;                  // reduction identity
//     message_t combine(message_t, message_t) const;
//
//     void init_vertex(vid_t global, vertex_value_t&, bool& active,
//                      const InitInfo&) const;
//     template <class View, class Sink>
//     void generate_messages(vid_t u, const View& g, Sink& sink) const;
//     template <class VArr>
//     void process_messages(VArr& vmsgs) const;    // SIMD path (kSimdReduce)
//     template <class View>
//     bool update_vertex(const message_t&, View& g, vid_t u) const;
//   };
#pragma once

#include <concepts>
#include <type_traits>

#include "src/common/types.hpp"

namespace phigraph::core {

/// Static facts about a vertex handed to init_vertex.
struct InitInfo {
  vid_t in_degree = 0;     // in the full graph
  eid_t out_degree = 0;    // in the full graph
  float out_weight = 0.f;  // sum of incident edge values (0 if unweighted)
};

template <typename P>
concept VertexProgram = requires {
  typename P::vertex_value_t;
  typename P::message_t;
  { P::kAllActive } -> std::convertible_to<bool>;
  { P::kNeedsReduction } -> std::convertible_to<bool>;
  { P::kSimdReduce } -> std::convertible_to<bool>;
} && std::is_trivially_copyable_v<typename P::message_t>;

/// Pregel-style message-combiner declaration (iPregel's key traffic lever).
/// A program may announce what its combine() computes so the runtime can
/// apply it at the send-side remote buffer before anything crosses a rank
/// boundary:
///
///   * kSum / kMin / kOr — combine() is the commutative, associative sum /
///     minimum / bitwise OR; the audit build spot-checks commutativity on
///     real message pairs and aborts if the declaration lies. kOr is the
///     multi-source lane-merge (64 queries per uint64_t word, see
///     apps/multi_source.hpp): each set bit is one query's frontier
///     membership, and merging bitmasks from different in-edges is exactly
///     the word-wide OR.
///   * kCustom — combine() is an arbitrary program-defined reduction the
///     runtime trusts to be order-insensitive enough to pre-combine (the
///     historical default: every program's remote messages have always been
///     combined before the send).
///   * kNone — messages must be delivered individually; the engine ships
///     them uncombined.
///
/// Declared as `static constexpr CombinerKind kCombiner = ...;` — optional,
/// programs without it keep the historical kCustom behavior.
enum class CombinerKind : std::uint8_t { kNone = 0, kSum, kMin, kOr, kCustom };

constexpr const char* combiner_kind_name(CombinerKind k) noexcept {
  switch (k) {
    case CombinerKind::kNone: return "none";
    case CombinerKind::kSum: return "sum";
    case CombinerKind::kMin: return "min";
    case CombinerKind::kOr: return "or";
    case CombinerKind::kCustom: return "custom";
  }
  return "?";
}

template <typename P>
concept DeclaresCombiner = requires {
  { P::kCombiner } -> std::convertible_to<CombinerKind>;
};

/// The program's combiner declaration, defaulting to kCustom (combine-before
/// -send with the program's combine(), exactly the pre-combiner behavior).
template <typename P>
[[nodiscard]] consteval CombinerKind combiner_kind() noexcept {
  if constexpr (DeclaresCombiner<P>)
    return P::kCombiner;
  else
    return CombinerKind::kCustom;
}

/// Whether the declared combiner claims commutativity the runtime may check.
template <typename P>
[[nodiscard]] consteval bool combiner_claims_commutative() noexcept {
  return combiner_kind<P>() == CombinerKind::kSum ||
         combiner_kind<P>() == CombinerKind::kMin ||
         combiner_kind<P>() == CombinerKind::kOr;
}

/// Pull-direction opt-in (direction-optimizing traversal, core/direction.hpp).
/// A pullable program declares `static constexpr bool kPullable = true;` and
/// supplies the bottom-up operator: the message vertex u would receive from
/// in-neighbor src along an edge of weight w (0 when unweighted), i.e. the
/// same value generate_messages(src) would have pushed to u. The engine may
/// then run dense supersteps bottom-up: scan each candidate's in-neighbors
/// against a bitmap of the frontier and feed pull_message results into the
/// ordinary update_vertex. Programs whose update depends on message ORDER or
/// on receiving every message (kNeedsReduction with a non-exact combine)
/// must not declare this; BFS (first-parent-wins at equal level), SSSP and
/// CC (exact min-combine) qualify.
template <typename P>
concept PullableProgram = VertexProgram<P> && requires(
    const P p, const typename P::vertex_value_t v, float w) {
  { P::kPullable } -> std::convertible_to<bool>;
  { p.pull_message(v, w) } -> std::same_as<typename P::message_t>;
};

template <typename P>
[[nodiscard]] consteval bool is_pullable() noexcept {
  if constexpr (PullableProgram<P>)
    return P::kPullable;
  else
    return false;
}

/// Optional candidate filter: pull scans skip vertices for which
/// pull_candidate(value) is false (e.g. BFS vertices already levelled).
/// Without it every vertex is a candidate each pull superstep (CC/SSSP).
template <typename P>
concept HasPullCandidate = requires(const P p,
                                    const typename P::vertex_value_t v) {
  { p.pull_candidate(v) } -> std::convertible_to<bool>;
};

/// Optional SIMD pull operator: lane-parallel pull_message over a vector of
/// gathered in-neighbor values V and a vector of edge weights VF. Only
/// consulted when kSimdReduce holds and message_t == vertex_value_t.
template <typename P, typename V, typename VF>
concept HasVecPullMessage = requires(const P p, const V v, const VF w) {
  { p.pull_message_vec(v, w) } -> std::same_as<V>;
};

}  // namespace phigraph::core
