// Compile-time contract for vertex programs.
//
// A PhiGraph vertex program mirrors the paper's three user-defined functions
// plus the scalar reduction the runtime needs for remote-message combining
// and the novec ablation:
//
//   struct MyProgram {
//     using vertex_value_t = ...;   // per-vertex state
//     using message_t      = ...;   // what send_messages() carries
//
//     static constexpr bool kAllActive      = ...; // every vertex generates
//                                                  // every superstep (PageRank)
//     static constexpr bool kNeedsReduction = ...; // messages are reduced
//     static constexpr bool kSimdReduce     = ...; // reduction is associative,
//                                                  // commutative & basic-typed
//
//     message_t identity() const;                  // reduction identity
//     message_t combine(message_t, message_t) const;
//
//     void init_vertex(vid_t global, vertex_value_t&, bool& active,
//                      const InitInfo&) const;
//     template <class View, class Sink>
//     void generate_messages(vid_t u, const View& g, Sink& sink) const;
//     template <class VArr>
//     void process_messages(VArr& vmsgs) const;    // SIMD path (kSimdReduce)
//     template <class View>
//     bool update_vertex(const message_t&, View& g, vid_t u) const;
//   };
#pragma once

#include <concepts>
#include <type_traits>

#include "src/common/types.hpp"

namespace phigraph::core {

/// Static facts about a vertex handed to init_vertex.
struct InitInfo {
  vid_t in_degree = 0;     // in the full graph
  eid_t out_degree = 0;    // in the full graph
  float out_weight = 0.f;  // sum of incident edge values (0 if unweighted)
};

template <typename P>
concept VertexProgram = requires {
  typename P::vertex_value_t;
  typename P::message_t;
  { P::kAllActive } -> std::convertible_to<bool>;
  { P::kNeedsReduction } -> std::convertible_to<bool>;
  { P::kSimdReduce } -> std::convertible_to<bool>;
} && std::is_trivially_copyable_v<typename P::message_t>;

}  // namespace phigraph::core
