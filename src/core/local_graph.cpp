#include "src/core/local_graph.hpp"

#include <utility>

#include "src/common/expect.hpp"

namespace phigraph::core {

LocalGraph LocalGraph::whole(const graph::Csr& g, Device device) {
  LocalGraph lg;
  lg.device = device;
  lg.global_num_vertices = g.num_vertices();
  lg.local = g;
  lg.global_id.resize(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) lg.global_id[v] = v;
  lg.in_degree = g.in_degrees();
  lg.owner = std::make_shared<const std::vector<Device>>(
      g.num_vertices(), device);
  lg.local_of = std::make_shared<const std::vector<vid_t>>(lg.global_id);
  return lg;
}

std::array<LocalGraph, 2> LocalGraph::split(const graph::Csr& g,
                                            std::vector<Device> owner) {
  const vid_t n = g.num_vertices();
  PG_CHECK_MSG(owner.size() == n, "owner array must cover every vertex");

  auto local_of = std::vector<vid_t>(n, kInvalidVertex);
  std::array<std::vector<vid_t>, 2> members;
  for (vid_t v = 0; v < n; ++v) {
    auto& m = members[device_index(owner[v])];
    local_of[v] = static_cast<vid_t>(m.size());
    m.push_back(v);
  }

  const auto global_in = g.in_degrees();
  auto shared_owner = std::make_shared<const std::vector<Device>>(std::move(owner));
  auto shared_local_of =
      std::make_shared<const std::vector<vid_t>>(std::move(local_of));

  std::array<LocalGraph, 2> out;
  for (int d = 0; d < kNumDevices; ++d) {
    LocalGraph& lg = out[d];
    lg.device = static_cast<Device>(d);
    lg.global_num_vertices = n;
    lg.global_id = members[d];
    lg.owner = shared_owner;
    lg.local_of = shared_local_of;

    const vid_t n_local = static_cast<vid_t>(members[d].size());
    std::vector<eid_t> offsets(static_cast<std::size_t>(n_local) + 1, 0);
    eid_t m_local = 0;
    for (vid_t u = 0; u < n_local; ++u)
      m_local += g.out_degree(members[d][u]);
    std::vector<vid_t> targets;
    targets.reserve(m_local);
    std::vector<float> values;
    if (g.has_edge_values()) values.reserve(m_local);

    lg.in_degree.resize(n_local);
    for (vid_t u = 0; u < n_local; ++u) {
      const vid_t gu = members[d][u];
      lg.in_degree[u] = global_in[gu];
      const auto nbrs = g.out_neighbors(gu);
      targets.insert(targets.end(), nbrs.begin(), nbrs.end());
      if (g.has_edge_values()) {
        const auto w = g.out_edge_values(gu);
        values.insert(values.end(), w.begin(), w.end());
      }
      offsets[u + 1] = targets.size();
    }
    lg.local = graph::Csr(std::move(offsets), std::move(targets),
                          std::move(values), /*target_space=*/n);
  }
  return out;
}

eid_t LocalGraph::count_cross_edges(const graph::Csr& g,
                                    std::span<const Device> owner) {
  eid_t cross = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u))
      if (owner[u] != owner[v]) ++cross;
  return cross;
}

}  // namespace phigraph::core
