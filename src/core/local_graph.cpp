#include "src/core/local_graph.hpp"

#include <utility>

#include "src/common/expect.hpp"

namespace phigraph::core {

namespace {

Device device_label(int rank) noexcept {
  return rank >= 1 ? Device::Mic : Device::Cpu;
}

}  // namespace

LocalGraph LocalGraph::whole(const graph::Csr& g, Device device) {
  LocalGraph lg;
  lg.device = device;
  lg.rank = device_index(device);
  lg.nranks = 1;
  lg.global_num_vertices = g.num_vertices();
  lg.local = g;
  lg.global_id.resize(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) lg.global_id[v] = v;
  lg.in_degree = g.in_degrees();
  lg.owner = std::make_shared<const std::vector<Device>>(
      g.num_vertices(), device);
  lg.owner_rank = std::make_shared<const std::vector<int>>(
      g.num_vertices(), lg.rank);
  lg.local_of = std::make_shared<const std::vector<vid_t>>(lg.global_id);
  return lg;
}

std::vector<LocalGraph> LocalGraph::split_n(const graph::Csr& g,
                                            std::vector<int> owner_rank,
                                            int nranks) {
  const vid_t n = g.num_vertices();
  PG_CHECK_MSG(nranks >= 1, "split_n needs at least one rank");
  PG_CHECK_MSG(owner_rank.size() == n, "owner array must cover every vertex");
  for (const int r : owner_rank)
    PG_CHECK_MSG(r >= 0 && r < nranks, "owner rank outside [0, nranks)");

  auto local_of = std::vector<vid_t>(n, kInvalidVertex);
  std::vector<std::vector<vid_t>> members(static_cast<std::size_t>(nranks));
  for (vid_t v = 0; v < n; ++v) {
    auto& m = members[static_cast<std::size_t>(owner_rank[v])];
    local_of[v] = static_cast<vid_t>(m.size());
    m.push_back(v);
  }

  const auto global_in = g.in_degrees();
  auto shared_owner =
      std::make_shared<const std::vector<int>>(std::move(owner_rank));
  auto shared_local_of =
      std::make_shared<const std::vector<vid_t>>(std::move(local_of));

  std::vector<LocalGraph> out(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    LocalGraph& lg = out[static_cast<std::size_t>(r)];
    lg.device = device_label(r);
    lg.rank = r;
    lg.nranks = nranks;
    lg.global_num_vertices = n;
    lg.global_id = members[static_cast<std::size_t>(r)];
    lg.owner_rank = shared_owner;
    lg.local_of = shared_local_of;

    const auto& mem = members[static_cast<std::size_t>(r)];
    const vid_t n_local = static_cast<vid_t>(mem.size());
    std::vector<eid_t> offsets(static_cast<std::size_t>(n_local) + 1, 0);
    eid_t m_local = 0;
    for (vid_t u = 0; u < n_local; ++u) m_local += g.out_degree(mem[u]);
    std::vector<vid_t> targets;
    targets.reserve(m_local);
    std::vector<float> values;
    if (g.has_edge_values()) values.reserve(m_local);

    lg.in_degree.resize(n_local);
    for (vid_t u = 0; u < n_local; ++u) {
      const vid_t gu = mem[u];
      lg.in_degree[u] = global_in[gu];
      const auto nbrs = g.out_neighbors(gu);
      targets.insert(targets.end(), nbrs.begin(), nbrs.end());
      if (g.has_edge_values()) {
        const auto w = g.out_edge_values(gu);
        values.insert(values.end(), w.begin(), w.end());
      }
      offsets[u + 1] = targets.size();
    }
    lg.local = graph::Csr(std::move(offsets), std::move(targets),
                          std::move(values), /*target_space=*/n);
  }
  return out;
}

std::array<LocalGraph, 2> LocalGraph::split(const graph::Csr& g,
                                            std::vector<Device> owner) {
  std::vector<int> ranks(owner.size());
  for (std::size_t v = 0; v < owner.size(); ++v)
    ranks[v] = device_index(owner[v]);
  auto parts = split_n(g, std::move(ranks), kNumDevices);
  auto shared_owner =
      std::make_shared<const std::vector<Device>>(std::move(owner));
  std::array<LocalGraph, 2> out{std::move(parts[0]), std::move(parts[1])};
  for (LocalGraph& lg : out) lg.owner = shared_owner;
  return out;
}

eid_t LocalGraph::count_cross_edges(const graph::Csr& g,
                                    std::span<const Device> owner) {
  eid_t cross = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u))
      if (owner[u] != owner[v]) ++cross;
  return cross;
}

eid_t LocalGraph::count_cross_edges_n(const graph::Csr& g,
                                      std::span<const int> owner_rank) {
  eid_t cross = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u))
      if (owner_rank[u] != owner_rank[v]) ++cross;
  return cross;
}

}  // namespace phigraph::core
