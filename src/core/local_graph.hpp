// Device-local graph partition.
//
// The paper loads the graph distributed by a partitioning file "indicating
// which device each vertex belongs to". A LocalGraph holds one device's
// share: a CSR over local source vertices whose edge targets remain global
// ids, the local→global id map, shared global owner / global→local tables,
// and each local vertex's in-degree in the FULL graph (the CSB is sized by
// how many messages a vertex can receive from anywhere).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "src/common/types.hpp"
#include "src/graph/csr.hpp"

namespace phigraph::core {

struct LocalGraph {
  Device device = Device::Cpu;
  vid_t global_num_vertices = 0;

  graph::Csr local;                // local source id -> global targets
  std::vector<vid_t> global_id;    // local -> global
  std::vector<vid_t> in_degree;    // local vertex's in-degree in full graph

  // Shared between the two partitions of a heterogeneous run.
  std::shared_ptr<const std::vector<Device>> owner;   // global -> device
  std::shared_ptr<const std::vector<vid_t>> local_of; // global -> local id

  [[nodiscard]] vid_t num_local_vertices() const noexcept {
    return local.num_vertices();
  }

  /// Whole graph on a single device (single-device executions).
  static LocalGraph whole(const graph::Csr& g, Device device = Device::Cpu);

  /// Split by ownership: owner[v] gives each global vertex's device.
  static std::array<LocalGraph, 2> split(const graph::Csr& g,
                                         std::vector<Device> owner);

  /// Edges whose source and destination live on different devices — the
  /// communication-volume metric of §IV-E.
  static eid_t count_cross_edges(const graph::Csr& g,
                                 std::span<const Device> owner);
};

}  // namespace phigraph::core
