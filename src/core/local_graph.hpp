// Device-local graph partition.
//
// The paper loads the graph distributed by a partitioning file "indicating
// which device each vertex belongs to". A LocalGraph holds one rank's share:
// a CSR over local source vertices whose edge targets remain global ids, the
// local→global id map, shared global owner / global→local tables, and each
// local vertex's in-degree in the FULL graph (the CSB is sized by how many
// messages a vertex can receive from anywhere).
//
// Ownership is rank-based: the paper's two-rank configuration (CPU = rank 0,
// MIC = rank 1) is the nranks == 2 special case of split_n(); the Device
// enum survives as a convenience label on those two ranks.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "src/common/types.hpp"
#include "src/graph/csr.hpp"

namespace phigraph::core {

struct LocalGraph {
  Device device = Device::Cpu;  // label for ranks 0/1 (rank >= 1 -> Mic)
  int rank = 0;                 // this partition's rank
  int nranks = 1;               // ranks in the split this partition came from
  vid_t global_num_vertices = 0;

  graph::Csr local;                // local source id -> global targets
  std::vector<vid_t> global_id;    // local -> global
  std::vector<vid_t> in_degree;    // local vertex's in-degree in full graph

  // Shared between every partition of a cluster run.
  std::shared_ptr<const std::vector<int>> owner_rank;  // global -> rank
  std::shared_ptr<const std::vector<vid_t>> local_of;  // global -> local id

  // Two-rank compatibility view of owner_rank (set by whole() and the
  // Device-based split(); null for N-rank splits).
  std::shared_ptr<const std::vector<Device>> owner;    // global -> device

  [[nodiscard]] vid_t num_local_vertices() const noexcept {
    return local.num_vertices();
  }

  /// Whole graph on a single device (single-device executions).
  static LocalGraph whole(const graph::Csr& g, Device device = Device::Cpu);

  /// Split by ownership: owner[v] gives each global vertex's device. The
  /// paper's two-rank configuration; thin wrapper over split_n.
  static std::array<LocalGraph, 2> split(const graph::Csr& g,
                                         std::vector<Device> owner);

  /// N-rank split: owner_rank[v] in [0, nranks) gives each global vertex's
  /// rank. Every rank gets a partition (possibly empty).
  static std::vector<LocalGraph> split_n(const graph::Csr& g,
                                         std::vector<int> owner_rank,
                                         int nranks);

  /// Edges whose source and destination live on different devices — the
  /// communication-volume metric of §IV-E.
  static eid_t count_cross_edges(const graph::Csr& g,
                                 std::span<const Device> owner);

  /// Same metric over an N-rank assignment.
  static eid_t count_cross_edges_n(const graph::Csr& g,
                                   std::span<const int> owner_rank);
};

}  // namespace phigraph::core
