// Multi-query serving layer: a bounded admission queue in front of the BSP
// engine, executing batches of point queries as shared bit-parallel runs.
//
// The ROADMAP north star is serving heavy concurrent query traffic over one
// resident graph. The engine answers a *single* traversal per run; this
// layer multiplexes: jobs (BFS distances, SSSP distances, component
// membership, personalized PageRank) are admitted into a bounded queue, the
// dispatcher groups up to 64 compatible jobs into a batch, and the batch
// executes as ONE run of the matching multi-source program
// (apps/multi_source.hpp) — 64 sources per uint64_t frontier word for
// BFS/components, 64 float lanes for SSSP/PPR — so one CSB edge scan
// answers the whole batch. All of the existing machinery is reused
// unchanged: sparse frontiers and the CSB (PR 1), combiners and the
// AllToAll exchange when serving over N ranks (PR 5), and the
// direction-optimizing pull kernel, whose whole-word masking the batch
// programs rely on (PR 6).
//
// Admission semantics (the stress battery's contract):
//   * submit() BLOCKS when serve_queue_capacity jobs are waiting —
//     backpressure propagates to callers, nothing is ever dropped;
//   * a batch closes at serve_batch_max lanes or when the oldest waiting
//     job has aged serve_batch_wait_ms, whichever comes first;
//   * shutdown() (and the destructor) drains every admitted job before the
//     dispatcher exits — a ticket obtained from submit() is always
//     fulfilled; submit() after shutdown returns nullptr.
//
// Results are delivered through tickets: submit() returns a
// std::shared_ptr<QueryTicket> whose get() blocks until the batch that
// carried the job completes. Per-job latency and admission-queue depth are
// recorded in metrics:: histograms (p50/p99 via quantile_bound), and every
// batch is wrapped in a kServeBatch trace span in trace builds.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/apps/multi_source.hpp"
#include "src/common/expect.hpp"
#include "src/common/sync.hpp"
#include "src/core/config.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/metrics/histogram.hpp"
#include "src/metrics/trace.hpp"
#include "src/partition/partition.hpp"

namespace phigraph::core {

enum class QueryKind : std::uint8_t {
  kBfs = 0,    // BFS levels from the source (-1 unreached)
  kSssp,       // shortest-path distances (requires edge values)
  kComponent,  // membership bitmap: reachable-from-source; equals connected
               // component membership when the served graph is symmetrized
  kPpr,        // personalized PageRank mass (fixed superstep count)
};

constexpr const char* query_kind_name(QueryKind k) noexcept {
  switch (k) {
    case QueryKind::kBfs: return "bfs";
    case QueryKind::kSssp: return "sssp";
    case QueryKind::kComponent: return "component";
    case QueryKind::kPpr: return "ppr";
  }
  return "?";
}

struct QueryJob {
  QueryKind kind = QueryKind::kBfs;
  vid_t source = 0;
};

/// One job's answer. Exactly one of the per-kind vectors is filled (indexed
/// by global vertex id); the rest stay empty.
struct QueryResult {
  QueryKind kind = QueryKind::kBfs;
  vid_t source = 0;
  std::vector<std::int32_t> level;     // kBfs
  std::vector<float> dist;             // kSssp
  std::vector<std::uint8_t> member;    // kComponent (1 = reachable)
  std::vector<float> rank;             // kPpr

  int batch_lanes = 0;   // lanes in the batch that served this job
  int supersteps = 0;    // supersteps of the shared run
  double latency_ms = 0; // submit() -> fulfillment
};

/// Whole-engine serving statistics, snapshotted by stats().
struct ServingStats {
  std::uint64_t jobs = 0;           // jobs fulfilled
  std::uint64_t batches = 0;        // shared runs executed
  std::uint64_t lanes = 0;          // sum of batch lane counts (== jobs)
  std::uint64_t edges_scanned = 0;  // push + pull edge scans of all batches
  std::uint64_t max_queue_depth = 0;
  metrics::HistogramData latency_us;   // per-job submit->fulfill latency
  metrics::HistogramData queue_depth;  // queue length sampled at each submit
};

/// Handle to one submitted job. get() blocks until the batch completes;
/// tickets are fulfilled exactly once, shutdown included.
class QueryTicket {
 public:
  QueryTicket() = default;
  QueryTicket(const QueryTicket&) = delete;
  QueryTicket& operator=(const QueryTicket&) = delete;

  [[nodiscard]] const QueryResult& get() {
    std::unique_lock<sync::Mutex> lk(mu_);
    cv_.wait(lk, [&] { return done_; });
    return res_;
  }

  [[nodiscard]] bool ready() {
    std::unique_lock<sync::Mutex> lk(mu_);
    return done_;
  }

 private:
  friend class QueryEngine;

  void fulfill(QueryResult&& r) {
    {
      std::unique_lock<sync::Mutex> lk(mu_);
      PG_CHECK_MSG(!done_, "query ticket fulfilled twice");
      res_ = std::move(r);
      done_ = true;
    }
    cv_.notify_all();
  }

  sync::Mutex mu_;
  sync::CondVar cv_;
  bool done_ = false;
  QueryResult res_;
};

class QueryEngine {
 public:
  using Clock = std::chrono::steady_clock;

  /// Serve `g` with one engine per rank config (cfgs.size() == 1 runs
  /// single-device; larger rank sets execute each batch over a round-robin
  /// partitioned ClusterEngine, exactly like a standalone N-rank run). The
  /// admission knobs (serve_queue_capacity / serve_batch_max /
  /// serve_batch_wait_ms / serve_ppr_supersteps) are read from cfgs[0].
  QueryEngine(const graph::Csr& g, std::vector<EngineConfig> cfgs)
      : g_(&g), cfgs_(std::move(cfgs)) {
    PG_CHECK_MSG(!cfgs_.empty(), "QueryEngine needs at least one rank config");
    PG_CHECK_MSG(cfgs_.front().serve_batch_max >= 1 &&
                     cfgs_.front().serve_batch_max <= apps::kMaxQueryLanes,
                 "serve_batch_max must be in [1, 64]");
    PG_CHECK_MSG(cfgs_.front().serve_queue_capacity >= 1,
                 "serve_queue_capacity must be >= 1");
    if (cfgs_.size() > 1)
      owner_ = partition::round_robin_partition_k(
          g, partition::RankWeights(cfgs_.size(), 1));
    dispatcher_ = std::thread([this] { dispatch_loop(); });
  }

  QueryEngine(const graph::Csr& g, const EngineConfig& cfg)
      : QueryEngine(g, std::vector<EngineConfig>{cfg}) {}

  ~QueryEngine() { shutdown(); }
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Admit one job. Blocks while the queue is at capacity (backpressure —
  /// jobs are never dropped); returns nullptr iff the engine is shutting
  /// down. The returned ticket is always eventually fulfilled.
  std::shared_ptr<QueryTicket> submit(const QueryJob& job) {
    PG_CHECK_MSG(job.source < g_->num_vertices(),
                 "query source outside the served graph");
    PG_CHECK_MSG(job.kind != QueryKind::kSssp || g_->has_edge_values(),
                 "SSSP queries need an edge-weighted graph");
    auto ticket = std::make_shared<QueryTicket>();
    {
      std::unique_lock<sync::Mutex> lk(mu_);
      cv_space_.wait(lk, [&] {
        return stopping_ || queue_.size() < cfgs_.front().serve_queue_capacity;
      });
      if (stopping_) return nullptr;
      queue_.push_back(Pending{job, ticket, Clock::now()});
      const auto depth = static_cast<std::uint64_t>(queue_.size());
      if (depth > max_depth_) max_depth_ = depth;
      hist_depth_.record(depth);
    }
    cv_nonempty_.notify_all();
    return ticket;
  }

  /// Stop admitting, drain every queued job through the dispatcher, join it.
  /// Idempotent; called by the destructor.
  void shutdown() {
    {
      std::unique_lock<sync::Mutex> lk(mu_);
      stopping_ = true;
    }
    cv_nonempty_.notify_all();
    cv_space_.notify_all();
    if (dispatcher_.joinable()) dispatcher_.join();
  }

  [[nodiscard]] ServingStats stats() const {
    ServingStats s;
    {
      std::unique_lock<sync::Mutex> lk(mu_);
      s.jobs = jobs_;
      s.batches = batches_;
      s.lanes = lanes_;
      s.edges_scanned = edges_scanned_;
      s.max_queue_depth = max_depth_;
    }
    s.latency_us = hist_latency_.snapshot();
    s.queue_depth = hist_depth_.snapshot();
    return s;
  }

  [[nodiscard]] int num_ranks() const noexcept {
    return static_cast<int>(cfgs_.size());
  }

 private:
  struct Pending {
    QueryJob job;
    std::shared_ptr<QueryTicket> ticket;
    Clock::time_point enqueue;
  };

  void dispatch_loop() {
    std::unique_lock<sync::Mutex> lk(mu_);
    for (;;) {
      cv_nonempty_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      const auto want =
          static_cast<std::size_t>(cfgs_.front().serve_batch_max);
      if (!stopping_) {
        // Batch formation: hold the batch open until it fills or the oldest
        // job ages out. During shutdown the wait is skipped — drain fast.
        const auto deadline =
            queue_.front().enqueue +
            std::chrono::milliseconds(cfgs_.front().serve_batch_wait_ms);
        cv_nonempty_.wait_until(lk, deadline, [&] {
          return stopping_ || queue_.size() >= want;
        });
      }
      // Group compatible jobs: the oldest job picks the kind, and up to
      // `want` jobs of that kind leave the queue in admission order (other
      // kinds keep their relative order for the next batch).
      std::vector<Pending> batch;
      batch.reserve(want);
      const QueryKind kind = queue_.front().job.kind;
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < want;) {
        if (it->job.kind == kind) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      cv_space_.notify_all();
      lk.unlock();
      run_batch(kind, batch);
      lk.lock();
      jobs_ += batch.size();
      lanes_ += batch.size();
      ++batches_;
    }
  }

  /// Execute `prog` over the served graph: single-device for one rank
  /// config, a fresh round-robin ClusterEngine otherwise. Returns the
  /// global values; accumulates edge scans and supersteps.
  template <VertexProgram Program>
  std::vector<typename Program::vertex_value_t> execute(
      const Program& prog, int max_supersteps, int& supersteps_out,
      std::uint64_t& scans_out) {
    if (cfgs_.size() == 1) {
      EngineConfig cfg = cfgs_.front();
      cfg.max_supersteps = max_supersteps;
      auto res = run_single(*g_, prog, cfg);
      PG_CHECK_MSG(!res.run.failed, "serving batch run failed");
      const auto t = metrics::totals(res.run.trace);
      scans_out = t.edges_scanned + t.pull_edges_scanned;
      supersteps_out = res.run.supersteps;
      return std::move(res.values);
    }
    std::vector<EngineConfig> cfgs = cfgs_;
    for (EngineConfig& c : cfgs) c.max_supersteps = max_supersteps;
    ClusterEngine<Program> ce(*g_, owner_, prog, std::move(cfgs));
    auto res = ce.run();
    PG_CHECK_MSG(res.completed, "serving batch cluster run failed");
    scans_out = 0;
    for (const RunResult& r : res.ranks) {
      const auto t = metrics::totals(r.trace);
      scans_out += t.edges_scanned + t.pull_edges_scanned;
    }
    supersteps_out = res.ranks.empty() ? 0 : res.ranks.front().supersteps;
    return std::move(res.global_values);
  }

  void run_batch(QueryKind kind, std::vector<Pending>& batch) {
    PG_TRACE_SCOPE(kServeBatch, -1, 0);
    apps::SourceBatch sources;
    sources.count = static_cast<int>(batch.size());
    for (std::size_t l = 0; l < batch.size(); ++l)
      sources.source[l] = batch[l].job.source;

    const vid_t n = g_->num_vertices();
    int supersteps = 0;
    std::uint64_t scans = 0;
    std::vector<QueryResult> results(batch.size());
    switch (kind) {
      case QueryKind::kBfs:
      case QueryKind::kComponent: {
        const auto values = execute(apps::MsBfs(sources),
                                    cfgs_.front().max_supersteps, supersteps,
                                    scans);
        for (std::size_t l = 0; l < batch.size(); ++l) {
          if (kind == QueryKind::kBfs) {
            results[l].level.resize(n);
            for (vid_t v = 0; v < n; ++v)
              results[l].level[v] = values[v].level[l];
          } else {
            results[l].member.resize(n);
            for (vid_t v = 0; v < n; ++v)
              results[l].member[v] =
                  static_cast<std::uint8_t>((values[v].seen >> l) & 1u);
          }
        }
        break;
      }
      case QueryKind::kSssp: {
        const auto values = execute(apps::MsSssp(sources),
                                    cfgs_.front().max_supersteps, supersteps,
                                    scans);
        for (std::size_t l = 0; l < batch.size(); ++l) {
          results[l].dist.resize(n);
          for (vid_t v = 0; v < n; ++v) results[l].dist[v] = values[v].v[l];
        }
        break;
      }
      case QueryKind::kPpr: {
        const auto values =
            execute(apps::MsPpr(sources), cfgs_.front().serve_ppr_supersteps,
                    supersteps, scans);
        for (std::size_t l = 0; l < batch.size(); ++l) {
          results[l].rank.resize(n);
          for (vid_t v = 0; v < n; ++v) results[l].rank[v] = values[v].rank[l];
        }
        break;
      }
    }
    {
      std::unique_lock<sync::Mutex> lk(mu_);
      edges_scanned_ += scans;
    }
    const auto done = Clock::now();
    for (std::size_t l = 0; l < batch.size(); ++l) {
      QueryResult& r = results[l];
      r.kind = kind;
      r.source = batch[l].job.source;
      r.batch_lanes = static_cast<int>(batch.size());
      r.supersteps = supersteps;
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          done - batch[l].enqueue)
                          .count();
      r.latency_ms = static_cast<double>(us) / 1000.0;
      hist_latency_.record(static_cast<std::uint64_t>(us));
      batch[l].ticket->fulfill(std::move(r));
    }
  }

  const graph::Csr* g_;
  std::vector<EngineConfig> cfgs_;
  std::vector<int> owner_;  // round-robin rank owner (multi-rank serving)

  mutable sync::Mutex mu_;
  sync::CondVar cv_nonempty_;  // queue gained a job (or stopping)
  sync::CondVar cv_space_;     // queue lost a job (or stopping)
  std::deque<Pending> queue_;
  bool stopping_ = false;

  // Serving statistics (guarded by mu_ except the concurrent histograms).
  std::uint64_t jobs_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t lanes_ = 0;
  std::uint64_t edges_scanned_ = 0;
  std::uint64_t max_depth_ = 0;
  metrics::Histogram hist_latency_;
  metrics::Histogram hist_depth_;

  std::thread dispatcher_;
};

}  // namespace phigraph::core
