// Engine configuration: execution scheme, thread layout, device SIMD profile.
#pragma once

#include <cstddef>

#include "src/buffer/csb.hpp"
#include "src/core/direction.hpp"
#include "src/fault/checkpoint.hpp"
#include "src/fault/fault.hpp"
#include "src/partition/scheme.hpp"
#include "src/simd/simd.hpp"

namespace phigraph::core {

/// The three execution schemes compared throughout the paper's Fig. 5.
enum class ExecMode {
  kOmpStyle,    // "OMP": scalar accumulators + per-vertex heavyweight locks,
                //        no CSB, no SIMD — what OpenMP-on-sequential-code does
  kLocking,     // "Lock": direct CSB insertion with per-column locking
  kPipelining,  // "Pipe": worker/mover pipelined CSB insertion
};

constexpr const char* exec_mode_name(ExecMode m) noexcept {
  switch (m) {
    case ExecMode::kOmpStyle: return "OMP";
    case ExecMode::kLocking: return "Lock";
    case ExecMode::kPipelining: return "Pipe";
  }
  return "?";
}

struct EngineConfig {
  ExecMode mode = ExecMode::kLocking;

  /// Computation threads. In pipelining mode these are the workers and
  /// `movers` more threads are added (paper's MIC sweet spot: 180 workers +
  /// 60 movers); in the other modes this is the whole team.
  int threads = 4;
  int movers = 2;

  /// SIMD register width in bytes: 16 = CPU profile (SSE4.2),
  /// 64 = MIC profile (KNC). Determines CSB lane count per message type.
  int simd_bytes = simd::kMicSimdBytes;

  /// false = the Fig. 5(f) "novec" ablation: scalar message processing.
  bool use_simd = true;

  /// CSB geometry: vector arrays per vertex group (the paper's k).
  int csb_k = 2;
  buffer::ColumnMode column_mode = buffer::ColumnMode::kDynamic;

  /// Dynamic-scheduler chunk: "a thread can obtain multiple tasks each time".
  std::size_t sched_chunk = 64;

  /// SPSC queue capacity per (worker, mover) pair, in messages.
  std::size_t queue_capacity = 1024;

  /// Superstep cap (PageRank runs exactly this many; traversals usually
  /// terminate earlier on their own).
  int max_supersteps = 1000;

  /// Sparse-ITERATION switch (push supersteps only): generation walks the
  /// compact active list when frontier_size < sparse_iteration_threshold *
  /// num_vertices, and falls back to the dense bitmap scan above that
  /// density. This picks the iteration SHAPE of a push superstep — it does
  /// NOT choose traversal direction (see direction_mode below). 0.0 forces
  /// the dense path every superstep; 1.0 forces the sparse path. Ignored by
  /// kAllActive programs (PageRank), which are always dense.
  double sparse_iteration_threshold = 0.05;

  /// Traversal direction (push vs pull) for programs that declare
  /// kPullable (BFS/SSSP/CC). kAuto applies the alpha/beta rule per
  /// superstep; kForcePush reproduces the pre-direction engine exactly;
  /// kForcePull pulls every superstep. Non-pullable programs and
  /// multi-device partitions (which lack in-neighbor values locally)
  /// always push.
  DirectionMode direction_mode = DirectionMode::kAuto;

  /// Direction-switch thresholds (see core/direction.hpp). Autotunable via
  /// tune::tune_direction_thresholds.
  double direction_alpha = 14.0;
  double direction_beta = 24.0;

  /// Shards for the remote buffer's touched lists: deposits contend per
  /// shard and the exchange drain parallelizes over shards. Rounded up to a
  /// power of two (per destination rank on N-rank runs).
  std::size_t remote_shards = 32;

  /// Send-side message combining (paper §IV-A / Pregel combiners). true =
  /// remote messages are reduced per destination in the remote buffer before
  /// the exchange (the paper's behavior, and the default); false = messages
  /// ship individually and the receiver reduces them on arrival — the
  /// combiner-off ablation the cross-rank byte counters are measured
  /// against. Programs declaring CombinerKind::kNone always ship
  /// individually regardless of this flag.
  bool combine_remote = true;

  /// Deadline for each peer exchange (data and termination control) in
  /// heterogeneous runs. A peer that misses the deadline is declared dead:
  /// the waiting rank poisons the channels and fails over (see DESIGN.md
  /// §6). Generous by default — failing ranks poison their peer *immediately*
  /// via Exchange::poison, so the deadline only catches wedged (not crashed)
  /// devices.
  int exchange_deadline_ms = 30000;

  /// Superstep checkpointing (fault tolerance): interval 0 disables it.
  /// In a heterogeneous run both devices must use the same interval so their
  /// frames land on the same superstep boundaries.
  fault::CheckpointConfig checkpoint;

  /// Transient-fault retry budget for the recovery ladder (DESIGN.md §12).
  /// Read from rank 0's config by ClusterEngine; per-rank values are
  /// meaningless (recovery is a cluster-level decision).
  fault::RetryPolicy retry;

  /// Multi-query serving (core/query_engine.hpp). The admission queue is
  /// bounded: submit() blocks — never drops — once serve_queue_capacity jobs
  /// are waiting (backpressure propagates to the callers). The dispatcher
  /// closes a batch at serve_batch_max lanes (<= 64, one bit / float lane
  /// per query) or when the oldest waiting job has aged
  /// serve_batch_wait_ms, whichever comes first — the classic
  /// throughput-vs-latency knob pair.
  std::size_t serve_queue_capacity = 256;
  int serve_batch_max = 64;
  int serve_batch_wait_ms = 2;

  /// Fixed superstep count for personalized-PageRank jobs (PPR terminates by
  /// iteration count, like PageRank).
  int serve_ppr_supersteps = 10;

  /// Partition scheme for ClusterEngine's owner-deriving constructor (the
  /// one that takes no explicit owner map): vertex→rank assignments come
  /// from this scheme with each rank weighted by its thread budget. Read
  /// from rank 0's config, like `retry` — partitioning is a cluster-level
  /// decision. Engines given an explicit owner map ignore it.
  partition::Scheme partition_scheme = partition::Scheme::kRoundRobin;

  /// Knobs for the streaming vertex-cut schemes (kHdrf / kDbh): λ, the hard
  /// balance slack, the hash seed, and the streamed chunk granularity.
  partition::StreamOptions stream_partition;

  /// Worker threads for the single-device recovery engine (ladder rung 3).
  /// 0 = size it from the combined thread budgets of every rank — the dead
  /// cluster's whole allotment is free, so the rerun should use the whole
  /// machine. Tests that need a deterministic recovery pin this to 1.
  int recovery_threads = 0;

  [[nodiscard]] int total_threads() const noexcept {
    return mode == ExecMode::kPipelining ? threads + movers : threads;
  }
};

}  // namespace phigraph::core
