// The graph view handed to user-defined functions.
//
// Field names follow the paper's Listing 1 (g->vertices, g->edges,
// g->edge_value, g->vertex_value): users index the raw CSR arrays of their
// device-local partition. Edge targets are GLOBAL vertex ids (what
// send_messages expects); every other array is indexed by LOCAL id.
#pragma once

#include <span>

#include "src/common/types.hpp"

namespace phigraph::core {

template <typename VertexValue>
struct GraphView {
  std::span<const eid_t> vertices;      // local CSR offsets (n_local + 1)
  std::span<const vid_t> edges;         // out-edge targets, global ids
  std::span<const float> edge_value;    // optional per-edge values
  std::span<VertexValue> vertex_value;  // local vertex values (mutable)
  std::span<const vid_t> in_degree;     // in-degree in the FULL graph
  std::span<const vid_t> global_id;     // local id -> global id
  int superstep = 0;                    // current BSP iteration (0-based)

  [[nodiscard]] vid_t num_local_vertices() const noexcept {
    return static_cast<vid_t>(vertex_value.size());
  }
  [[nodiscard]] eid_t out_degree(vid_t u) const noexcept {
    return vertices[u + 1] - vertices[u];
  }
};

}  // namespace phigraph::core
