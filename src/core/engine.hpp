// DeviceEngine — one device's BSP superstep loop (paper §IV-A, Fig. 2).
//
// Per superstep:
//   1. prepare   — reset CSB bookkeeping and the next-active flags
//   2. generate  — user generate_messages() for each active vertex; messages
//                  are routed to the local CSB (locking or pipelined) or to
//                  the remote buffer (combined)
//   3. exchange  — all-to-all swap of per-peer remote batches (combined at
//                  the send side unless the program's combiner is kNone or
//                  combining is switched off) and insertion of received
//                  messages into the local CSB
//   4. process   — SIMD (or scalar) reduction of each vector array
//   5. update    — user update_vertex() per message-receiving vertex
//   6. terminate — exchange next-active counts; stop when globally idle
//
// The same code runs as the paper's "CPU" and "MIC" instances — only the
// EngineConfig (thread layout, SIMD profile, execution scheme) differs —
// and generalizes to any rank count: the peer wiring is an N-rank AllToAll
// channel pair, with the paper's two-rank configuration as nranks == 2.
// Every phase runs under dynamic chunk scheduling (§IV-D) on a persistent
// thread team, and every phase streams event counters into the run trace
// consumed by the performance model.
//
// Fault tolerance (DESIGN.md §6): exceptions escaping the three user
// callbacks on team threads are captured and rethrown on the orchestrator
// (a team thread letting one escape would std::terminate). On heterogeneous
// runs the orchestrator converts any such fault into an Exchange poison —
// the peer wakes immediately with a structured FaultReport — and run()
// returns with RunResult::failed set instead of crashing. Peer exchanges
// are deadline-bounded, and an optional checkpoint store snapshots
// values + frontier + superstep at BSP boundaries for CPU-only failover.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/buffer/csb.hpp"
#include "src/buffer/vmsg_array.hpp"
#include "src/comm/exchange.hpp"
#include "src/comm/remote_buffer.hpp"
#include "src/common/audit.hpp"
#include "src/common/expect.hpp"
#include "src/common/timer.hpp"
#include "src/common/types.hpp"
#include "src/core/config.hpp"
#include "src/core/direction.hpp"
#include "src/core/graph_view.hpp"
#include "src/core/local_graph.hpp"
#include "src/core/program_traits.hpp"
#include "src/fault/checkpoint.hpp"
#include "src/fault/fault.hpp"
#include "src/fault/fault_injection.hpp"
#include "src/metrics/counters.hpp"
#include "src/metrics/histogram.hpp"
#include "src/metrics/trace.hpp"
#include "src/pipeline/message_pipeline.hpp"
#include "src/sched/dynamic_scheduler.hpp"
#include "src/sched/thread_team.hpp"
#include "src/simd/bitset.hpp"
#include "src/simd/simd.hpp"

namespace phigraph::core {

/// Outcome of a run: superstep count, the counter trace, and host-side phase
/// times (the *modeled* device times come from src/sim, not from here).
struct RunResult {
  int supersteps = 0;
  metrics::RunTrace trace;
  /// Host wall seconds per superstep, phase-resolved; parallel to `trace`
  /// (same length, same superstep order). Always collected — it costs a few
  /// clock reads per superstep; the span-level tracing is what PHIGRAPH_TRACE
  /// gates.
  metrics::PhaseTrace phases;
  double host_seconds = 0;
  double gen_seconds = 0;
  double exchange_seconds = 0;
  double process_seconds = 0;
  double update_seconds = 0;
  /// Per-peer exchange traffic (bytes to / from each other rank), sized by
  /// the run's rank count. Single-device runs carry one all-zero entry.
  metrics::RankIo io;
  /// Heterogeneous runs only: a device fault — this rank's own (converted to
  /// a peer poison) or the peer's (observed through the exchange) — ended
  /// the run early. `fault` names the origin rank either way.
  bool failed = false;
  fault::FaultReport fault;
};

template <VertexProgram Program>
class DeviceEngine {
 public:
  using Msg = typename Program::message_t;
  using Value = typename Program::vertex_value_t;
  using Batch = std::vector<pipeline::Envelope<Msg>>;

  /// Wiring to the other ranks of a heterogeneous / cluster run: this
  /// engine's rank plus the run-wide all-to-all channels (data batches and
  /// termination-control words). The paper's CPU+MIC configuration is the
  /// num_ranks() == 2 case with rank 0 = CPU, rank 1 = MIC.
  struct PeerLink {
    int rank = 0;
    comm::AllToAll<Batch>* data = nullptr;
    comm::AllToAll<std::uint64_t>* control = nullptr;
  };

  DeviceEngine(LocalGraph lg, Program prog, EngineConfig cfg,
               std::optional<PeerLink> peer = std::nullopt)
      : lg_(std::move(lg)),
        prog_(std::move(prog)),
        cfg_(cfg),
        peer_(peer),
        lanes_(simd::lanes_for<Msg>(cfg.simd_bytes)),
        nranks_(peer ? peer->data->num_ranks() : 1),
        combine_enabled_(cfg.combine_remote &&
                         combiner_kind<Program>() != CombinerKind::kNone),
        bytes_to_(static_cast<std::size_t>(nranks_), 0),
        bytes_from_(static_cast<std::size_t>(nranks_), 0) {
    PG_CHECK_MSG(cfg_.mode != ExecMode::kOmpStyle || !peer_,
                 "the OMP baseline is single-device only (as in the paper)");
    if (peer_) {
      PG_CHECK_MSG(peer_->rank >= 0 && peer_->rank < nranks_,
                   "PeerLink rank outside the channel's rank count");
      PG_CHECK_MSG(peer_->control->num_ranks() == nranks_,
                   "data and control channels disagree on the rank count");
    }
    const vid_t n = lg_.num_local_vertices();
    values_.resize(n);
    active_.assign(n, 0);
    next_active_.assign(n, 0);
    if (cfg_.mode == ExecMode::kOmpStyle) {
      acc_.resize(n);
      has_msg_.assign(n, 0);
      vertex_locks_ = std::make_unique<sched::SpinLock[]>(n);
    } else {
      typename buffer::Csb<Msg>::Config bc;
      bc.lanes = lanes_;
      bc.k = cfg_.csb_k;
      bc.mode = cfg_.column_mode;
      csb_.emplace(std::span<const vid_t>(lg_.in_degree), bc);
    }
    if (peer_)
      remote_.emplace(lg_.global_num_vertices, cfg_.remote_shards, nranks_);
    if (cfg_.checkpoint.enabled())
      ckpt_.emplace(cfg_.checkpoint, peer_ ? peer_->rank : 0);
    if (cfg_.mode == ExecMode::kPipelining)
      pipe_.emplace(cfg_.threads, cfg_.movers, cfg_.queue_capacity);
    team_.emplace(cfg_.total_threads());
#if PG_TRACE_ENABLED
    sched_.set_chunk_histogram(&hist_chunk_);
    if (pipe_) pipe_->set_drain_histogram(&hist_drain_);
#endif
    tstats_.resize(static_cast<std::size_t>(cfg_.total_threads()));
    if constexpr (!Program::kAllActive)
      tl_frontier_.resize(static_cast<std::size_t>(cfg_.total_threads()));
    // Direction-optimizing pull path: engaged only for pullable programs on
    // a single-device partition (a split partition keeps global edge targets
    // and lacks in-neighbor values locally, so Csr::reversed() cannot apply).
    // kForcePull with a peer therefore degrades to push.
    if constexpr (is_pullable<Program>() && !Program::kAllActive) {
      if (!peer_ && cfg_.direction_mode != DirectionMode::kForcePush) {
        in_csr_.emplace(lg_.local.reversed());
        pull_frontier_.resize(static_cast<std::size_t>(n));
        pull_acc_.resize(n);
        pull_has_.assign(n, 0);
        pull_ready_ = true;
      }
    }
    dir_policy_.alpha = cfg_.direction_alpha;
    dir_policy_.beta = cfg_.direction_beta;
    init_vertices();
  }

  [[nodiscard]] std::span<const Value> values() const noexcept {
    return values_;
  }
  [[nodiscard]] const LocalGraph& local_graph() const noexcept { return lg_; }
  [[nodiscard]] int lanes() const noexcept { return lanes_; }
  [[nodiscard]] const buffer::Csb<Msg>& csb() const noexcept { return *csb_; }

  /// This device's MPI-style rank (0 when running single-device).
  [[nodiscard]] int rank() const noexcept { return peer_ ? peer_->rank : 0; }

  /// Ranks participating in this run (1 when running single-device).
  [[nodiscard]] int num_ranks() const noexcept { return nranks_; }

  /// Whether remote messages are combined before the send for this run
  /// (program combiner kind x EngineConfig::combine_remote).
  [[nodiscard]] bool combining_remote() const noexcept {
    return combine_enabled_;
  }

  /// The checkpoint store, or nullptr when checkpointing is disabled.
  [[nodiscard]] const fault::CheckpointStore* checkpoint_store() const noexcept {
    return ckpt_ ? &*ckpt_ : nullptr;
  }

  /// Reload state from a checkpoint snapshot (local-indexed values + active
  /// bitmap) and arrange for run() to resume at `superstep`. Valid on a
  /// freshly constructed engine (the single-device failover path) and on an
  /// engine whose previous run() already returned — the recovery ladder
  /// restores the surviving ranks in place, so every trace of the aborted
  /// epoch is discarded here: buffered remote deposits, accumulated traffic
  /// counters, and (via the next prepare()) the dirtied CSB groups. If a
  /// checkpoint store is attached, the restored state is written back as a
  /// frame at `superstep`, so the cluster keeps a common resume point for
  /// any *subsequent* fault.
  void restore(std::span<const Value> values,
               std::span<const std::uint8_t> active, int superstep) {
    PG_CHECK_MSG(values.size() == values_.size() &&
                     active.size() == active_.size(),
                 "checkpoint snapshot does not match this engine's partition");
    PG_CHECK(superstep >= 0);
    std::copy(values.begin(), values.end(), values_.begin());
    std::copy(active.begin(), active.end(), active_.begin());
    std::fill(next_active_.begin(), next_active_.end(), 0);
    if constexpr (!Program::kAllActive) {
      frontier_.clear();
      prev_frontier_.clear();
      for (auto& b : tl_frontier_) b.clear();
      for (vid_t u = 0; u < static_cast<vid_t>(active_.size()); ++u)
        if (active_[u]) frontier_.push_back(u);
    }
    // Direction state restarts conservatively: the policy resumes in push
    // with a cold unexplored-edge estimate (correctness is direction-
    // independent; only the first post-resume decisions may differ).
    dir_policy_.reset();
    last_direction_ = Direction::kPush;
    explored_edges_est_ = 0;
    // Epoch hygiene for in-place restores: half-staged remote messages from
    // the aborted superstep must not leak into the resumed run, and traffic
    // accounting restarts (the aborted epoch's RunResult already reported
    // its bytes).
    if (remote_) remote_->advance_epoch();
    std::fill(bytes_to_.begin(), bytes_to_.end(), 0);
    std::fill(bytes_from_.begin(), bytes_from_.end(), 0);
    // The resumed run may be driven by a freshly spawned cluster thread;
    // let the checked build re-bind its one-orchestrator invariant to it.
    if (team_) team_->rebind_orchestrator();
    start_superstep_ = superstep;
    if (ckpt_) ckpt_->write(make_frame(superstep));
  }

#if PG_AUDIT_ENABLED
  /// Current BSP phase (audit builds only; kIdle outside run()).
  [[nodiscard]] audit::BspPhase audit_phase() const noexcept {
    return bsp_phase_.current();
  }
#endif

  /// Executes supersteps to completion and returns the run trace.
  ///
  /// Heterogeneous runs never throw from here: a fault in this rank poisons
  /// the peer and returns with `failed` set; a fault in the peer is observed
  /// through the exchange and likewise returns with `failed` set (carrying
  /// the peer's FaultReport). Single-device runs rethrow user-program
  /// exceptions on the calling thread.
  RunResult run() {
    PG_TRACE_THREAD_NAME(rank() == 0   ? "cpu-orchestrator"
                         : rank() == 1 ? "mic-orchestrator"
                                       : "rank-orchestrator");
    Timer total;
    RunResult res;

    int s = start_superstep_;
    for (; s < cfg_.max_supersteps; ++s) {
      StepOutcome out;
      // Classification (DESIGN.md §12): injected faults carry their armed
      // kind; fault::TransientError marks retryable failures; every other
      // exception is permanent. Catch order matters — both special types
      // derive from std::exception.
      try {
        out = superstep(s, res);
      } catch (const fault::FaultInjected& e) {
        if (!peer_) throw;
        fail_run(res, s, e.what(), e.kind);
        break;
      } catch (const fault::TransientError& e) {
        if (!peer_) throw;
        fail_run(res, s, e.what(), fault::FaultKind::kTransient);
        break;
      } catch (const std::exception& e) {
        if (!peer_) throw;
        fail_run(res, s, e.what(), fault::FaultKind::kPermanent);
        break;
      } catch (...) {
        if (!peer_) throw;
        fail_run(res, s, "unknown exception", fault::FaultKind::kPermanent);
        break;
      }
      if (out == StepOutcome::kPeerFailed) break;
      if (out == StepOutcome::kTerminated) {
        ++s;
        break;
      }
    }

#if PG_AUDIT_ENABLED
    // A faulted run is torn down mid-phase; the ordinary update -> idle edge
    // never fires, so force the machine to rest before anyone inspects it.
    if (res.failed)
      bsp_phase_.abort_to_idle();
    else
      PG_AUDIT_PHASE_ENTER(bsp_phase_, kIdle);
#else
    PG_AUDIT_PHASE_ENTER(bsp_phase_, kIdle);
#endif
    res.supersteps = s;
    res.host_seconds = total.seconds();
    res.io.bytes_to = bytes_to_;
    res.io.bytes_from = bytes_from_;
    const metrics::PhaseSeconds tot = metrics::phase_totals(res.phases);
    res.gen_seconds = tot.generate;
    res.exchange_seconds = tot.exchange;
    res.process_seconds = tot.process;
    res.update_seconds = tot.update;
    return res;
  }

#if PG_TRACE_ENABLED
  /// Shape statistics, trace builds only: dynamic-scheduler chunk sizes,
  /// mover drain-batch depths, and CSB column message depths. Cumulative
  /// over the engine's lifetime.
  [[nodiscard]] metrics::HistogramData chunk_histogram() const noexcept {
    return hist_chunk_.snapshot();
  }
  [[nodiscard]] metrics::HistogramData drain_histogram() const noexcept {
    return hist_drain_.snapshot();
  }
  [[nodiscard]] metrics::HistogramData column_depth_histogram() const noexcept {
    return hist_col_depth_.snapshot();
  }
  /// Edges probed per pull superstep (empty for push-only runs).
  [[nodiscard]] metrics::HistogramData pull_scan_histogram() const noexcept {
    return hist_pull_scan_.snapshot();
  }
#endif

 private:
  enum class StepOutcome { kContinue, kTerminated, kPeerFailed };

  StepOutcome superstep(int s, RunResult& res) {
    for (auto& t : tstats_) t = ThreadStats{};
    cur_superstep_ = s;
    Timer wall;
    metrics::PhaseSeconds ps;
    PG_TRACE_SCOPE(kSuperstep, s, rank());

    {
      phase_ = "prepare";
      PG_AUDIT_PHASE_ENTER(bsp_phase_, kPrepare);
      PG_TRACE_SCOPE(kPrepare, s, rank());
      Timer t;
      prepare();
      ps.prepare = t.seconds();
    }

    {
      phase_ = "generate";
      PG_AUDIT_PHASE_ENTER(bsp_phase_, kGenerate);
      PG_TRACE_SCOPE(kGenerate, s, rank());
      Timer t;
      generate(s);
      ps.generate = t.seconds();
    }

    if (peer_) {
      phase_ = "exchange";
      PG_AUDIT_PHASE_ENTER(bsp_phase_, kExchange);
      Timer t;
      bool ok;
      {
        PG_TRACE_SCOPE(kExchange, s, rank());
        ok = exchange_messages(s, res);
      }
      ps.exchange = t.seconds();
      if (!ok) return StepOutcome::kPeerFailed;
    }

    if (cfg_.mode != ExecMode::kOmpStyle && Program::kNeedsReduction) {
      phase_ = "process";
      PG_AUDIT_PHASE_ENTER(bsp_phase_, kProcess);
      PG_TRACE_SCOPE(kProcess, s, rank());
      Timer t;
      process(s);
      ps.process = t.seconds();
    }

    {
      phase_ = "update";
      PG_AUDIT_PHASE_ENTER(bsp_phase_, kUpdate);
      PG_TRACE_SCOPE(kUpdate, s, rank());
      Timer t;
      update(s);
      ps.update = t.seconds();
    }

#if PG_TRACE_ENABLED
    record_csb_depths();
#endif
    res.trace.push_back(collect_counters(s));
    // Terminate / checkpoint seconds are patched into the entry below; the
    // invariant is phases.size() == trace.size() on every exit path that
    // pushed a trace entry.
    ps.wall = wall.seconds();
    res.phases.push_back(ps);

    std::swap(active_, next_active_);
    advance_frontier();
#if PG_AUDIT_ENABLED
    audit_validate_frontier();
#endif

    std::uint64_t next = 0;
    for (const auto& t : tstats_) next += t.next_active;
    if (peer_) {
      phase_ = "terminate";
      Timer t;
      typename comm::AllToAll<std::uint64_t>::Result r;
      {
        PG_TRACE_SCOPE(kTerminate, s, rank());
        // Broadcast this rank's next-active count to every peer; the global
        // count is the sum over all ranks, so all of them agree on
        // termination within the same superstep.
        r = peer_->control->exchange_for(
            rank(),
            std::vector<std::uint64_t>(static_cast<std::size_t>(nranks_),
                                       next),
            exchange_deadline());
      }
      res.phases.back().terminate = t.seconds();
      res.phases.back().wall = wall.seconds();
      if (r.status != comm::ExchangeStatus::kOk)
        return handle_peer_down(r.status, r.fault, s, res);
      for (int src = 0; src < nranks_; ++src)
        if (src != rank()) next += r.values[static_cast<std::size_t>(src)];
    }
    if (!Program::kAllActive && next == 0) {
      res.phases.back().wall = wall.seconds();
      return StepOutcome::kTerminated;
    }

    {
      Timer t;
      maybe_checkpoint(s);
      res.phases.back().checkpoint = t.seconds();
    }
    res.phases.back().wall = wall.seconds();
    return StepOutcome::kContinue;
  }

#if PG_TRACE_ENABLED
  /// Record this superstep's CSB column message depths (the per-destination
  /// load distribution) before the counters reset them. Dirty groups only —
  /// clean groups hold no messages.
  void record_csb_depths() {
    if (!csb_) return;
    const vid_t width = static_cast<vid_t>(csb_->group_width());
    const vid_t n = lg_.num_local_vertices();
    const std::size_t dirty = csb_->num_dirty_groups();
    for (std::size_t i = 0; i < dirty; ++i) {
      const std::size_t g = csb_->dirty_group(i);
      const vid_t base = static_cast<vid_t>(g) * width;
      const vid_t cols = std::min(width, n - base);
      for (vid_t c = 0; c < cols; ++c) {
        const std::uint32_t cnt = csb_->column_count(g, c);
        if (cnt > 0) hist_col_depth_.record(cnt);
      }
    }
  }
#endif

  /// Convert a fault on this rank into a peer poison + failed RunResult.
  void fail_run(RunResult& res, int s, const char* what,
                fault::FaultKind kind) {
    fault::FaultReport rep;
    rep.rank = rank();
    rep.superstep = s;
    rep.phase = phase_;
    rep.what = what;
    rep.kind = kind;
    peer_->data->poison(rank(), rep);
    peer_->control->poison(rank(), rep);
    res.failed = true;
    res.fault = std::move(rep);
  }

  /// A peer poisoned the channel (we carry its report onward) or missed the
  /// exchange deadline (we declare it dead and poison on its behalf so a
  /// merely-wedged peer also wakes to a structured failure). On a timeout
  /// the channel names the first peer whose contribution was missing; the
  /// two-rank fallback is the only other rank.
  StepOutcome handle_peer_down(comm::ExchangeStatus status,
                               const fault::FaultReport& fault, int s,
                               RunResult& res) {
    if (status == comm::ExchangeStatus::kPeerFailed) {
      res.fault = fault;
    } else {
      fault::FaultReport rep;
      rep.rank = fault.rank >= 0          ? fault.rank
                 : nranks_ == 2           ? 1 - rank()
                                          : -1;
      rep.superstep = s;
      rep.phase = phase_;
      rep.what = "exchange deadline exceeded: peer did not arrive within " +
                 std::to_string(cfg_.exchange_deadline_ms) + " ms";
      // A missed deadline says nothing definitive about the peer — it may be
      // wedged, slow, or dead. Classify transient so the ladder gives it a
      // bounded second chance before writing the rank off.
      rep.kind = fault::FaultKind::kTransient;
      peer_->data->poison(rank(), rep);
      peer_->control->poison(rank(), rep);
      res.fault = std::move(rep);
    }
    res.failed = true;
    return StepOutcome::kPeerFailed;
  }

  [[nodiscard]] std::chrono::milliseconds exchange_deadline() const noexcept {
    return std::chrono::milliseconds(cfg_.exchange_deadline_ms);
  }

  /// Snapshot values + active bitmap + frontier at the BSP boundary after
  /// superstep `s` completed (resume point s + 1). No messages are in
  /// flight here, so the snapshot is the device's complete state.
  void maybe_checkpoint(int s) {
    if (!ckpt_) return;
    if ((s + 1) % cfg_.checkpoint.interval != 0) return;
    phase_ = "checkpoint";
    PG_TRACE_SCOPE(kCheckpoint, s, rank());
    PG_FAULT_POINT(kCheckpointWrite, rank(), s);
    ckpt_->write(make_frame(s + 1));
  }

  /// A sealed frame of the engine's current state, resuming at
  /// `resume_superstep`.
  [[nodiscard]] fault::CheckpointFrame make_frame(int resume_superstep) const {
    static_assert(std::is_trivially_copyable_v<Value>,
                  "checkpointing snapshots vertex values bytewise");
    fault::CheckpointFrame f;
    f.superstep = resume_superstep;
    f.values.resize(values_.size() * sizeof(Value));
    if (!values_.empty())
      std::memcpy(f.values.data(), values_.data(), f.values.size());
    f.active = active_;
    f.frontier = frontier_;
    f.seal();
    return f;
  }

  /// Run a job on the team, capturing the first exception any worker throws
  /// and rethrowing it on the orchestrator after the join — a team thread
  /// letting an exception escape would std::terminate the process.
  template <typename Job>
  void team_run_guarded(Job&& job) {
    std::exception_ptr first;
    std::mutex emu;
    team_->run([&](int tid) {
      try {
        job(tid);
      } catch (...) {
        std::lock_guard<std::mutex> g(emu);
        if (!first) first = std::current_exception();
      }
    });
    if (first) std::rethrow_exception(first);
  }
  // Per-thread counters, cache-line separated.
  struct alignas(64) ThreadStats {
    buffer::InsertStats ins;
    std::uint64_t active = 0;
    std::uint64_t edges = 0;
    std::uint64_t msgs_remote = 0;
    std::uint64_t msgs_received = 0;
    std::uint64_t queue_pushes = 0;
    std::uint64_t queue_full_spins = 0;
    std::uint64_t vector_rows = 0;
    std::uint64_t padded_cells = 0;
    std::uint64_t scalar_msgs = 0;
    std::uint64_t updated = 0;
    std::uint64_t next_active = 0;
    std::uint64_t sched_retrievals = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t pull_edges = 0;  // in-edges probed by the pull kernel
    std::uint64_t pull_early = 0;  // pull scans cut short at first hit
  };

  // ---- message sinks ---------------------------------------------------------

  /// send_messages() backend for the locking scheme: direct CSB insertion.
  struct LockingSink {
    DeviceEngine* e;
    ThreadStats* ts;
    void send(vid_t global_dst, const Msg& m) {
      if (e->is_local(global_dst)) {
        e->csb_->insert(e->local_id(global_dst), m, ts->ins);
      } else {
        e->deposit_remote(global_dst, m, *ts);
      }
    }
    void send_messages(vid_t dst, const Msg& m) { send(dst, m); }  // paper name
  };

  /// send_messages() backend for the pipelining scheme: workers enqueue;
  /// movers (elsewhere) perform the insertion.
  struct PipelineSink {
    DeviceEngine* e;
    ThreadStats* ts;
    int worker;
    void send(vid_t global_dst, const Msg& m) {
      if (e->is_local(global_dst)) {
        ts->queue_full_spins += e->pipe_->push(worker, e->local_id(global_dst), m);
        ++ts->queue_pushes;
      } else {
        e->deposit_remote(global_dst, m, *ts);
      }
    }
    void send_messages(vid_t dst, const Msg& m) { send(dst, m); }
  };

  /// send_messages() backend for the OMP baseline: combine directly into a
  /// per-vertex accumulator under a per-vertex lock — the synchronization
  /// structure of the paper's "OpenMP directives on sequential code".
  struct OmpSink {
    DeviceEngine* e;
    ThreadStats* ts;
    void send(vid_t global_dst, const Msg& m) {
      const vid_t u = e->local_id(global_dst);
      e->vertex_locks_[u].lock();
      ++ts->ins.lock_acquisitions;
      if (e->has_msg_[u]) {
        e->acc_[u] = e->prog_.combine(e->acc_[u], m);
        ++ts->ins.conflicts;
      } else {
        e->acc_[u] = m;
        e->has_msg_[u] = 1;
        ++ts->ins.columns_allocated;
      }
      e->vertex_locks_[u].unlock();
      ++ts->ins.inserted;
      ++ts->scalar_msgs;  // reduction work happens inline, scalar
    }
    void send_messages(vid_t dst, const Msg& m) { send(dst, m); }
  };

  // ---- helpers -------------------------------------------------------------------

  [[nodiscard]] bool is_local(vid_t global) const noexcept {
    return !peer_ || (*lg_.owner_rank)[global] == lg_.rank;
  }
  [[nodiscard]] int owner_rank_of(vid_t global) const noexcept {
    return (*lg_.owner_rank)[global];
  }
  [[nodiscard]] vid_t local_id(vid_t global) const noexcept {
    return (*lg_.local_of)[global];
  }

  void deposit_remote(vid_t global_dst, const Msg& m, ThreadStats& ts) {
    const int dst_rank = owner_rank_of(global_dst);
    if (combine_enabled_) {
      remote_->deposit(global_dst, dst_rank, m,
                       [this](const Msg& a, const Msg& b) {
#if PG_AUDIT_ENABLED
                         // The audit build spot-checks a declared
                         // commutative combiner on the real message pairs it
                         // reduces: a lying kSum/kMin declaration would make
                         // results depend on arrival order.
                         if constexpr (combiner_claims_commutative<Program>()) {
                           const Msg ab = prog_.combine(a, b);
                           const Msg ba = prog_.combine(b, a);
                           PG_AUDIT_FMT(
                               std::memcmp(&ab, &ba, sizeof(Msg)) == 0,
                               "combiner-commutativity",
                               "program declares a %s combiner but "
                               "combine(a,b) != combine(b,a) on a real "
                               "message pair",
                               combiner_kind_name(combiner_kind<Program>()));
                           return ab;
                         }
#endif
                         return prog_.combine(a, b);
                       });
    } else {
      remote_->deposit_raw(global_dst, dst_rank, m);
    }
    ++ts.msgs_remote;
  }

  GraphView<Value> view(int superstep) noexcept {
    GraphView<Value> v;
    v.vertices = lg_.local.offsets();
    v.edges = lg_.local.targets();
    v.edge_value = lg_.local.edge_values();
    v.vertex_value = values_;
    v.in_degree = lg_.in_degree;
    v.global_id = lg_.global_id;
    v.superstep = superstep;
    return v;
  }

  void init_vertices() {
    const bool weighted = lg_.local.has_edge_values();
    for (vid_t u = 0; u < lg_.num_local_vertices(); ++u) {
      InitInfo info{lg_.in_degree[u], lg_.local.out_degree(u), 0.f};
      if (weighted)
        for (float w : lg_.local.out_edge_values(u)) info.out_weight += w;
      bool act = false;
      prog_.init_vertex(lg_.global_id[u], values_[u], act, info);
      active_[u] = act ? 1 : 0;
      if constexpr (!Program::kAllActive)
        if (act) frontier_.push_back(u);
    }
  }

  /// After the active/next-active swap: remember the frontier that just ran
  /// (its bits now live in next_active_ and must be cleared by the next
  /// prepare()), and assemble the next frontier from the per-thread buffers
  /// filled by update(). kAllActive programs never consult the frontier.
  void advance_frontier() {
    if constexpr (!Program::kAllActive) {
      prev_frontier_.swap(frontier_);
      frontier_.clear();
      for (auto& buf : tl_frontier_) {
        frontier_.insert(frontier_.end(), buf.begin(), buf.end());
        buf.clear();
      }
    }
  }

#if PG_AUDIT_ENABLED
  /// Post-superstep check (after the active/next-active swap and
  /// advance_frontier): the compact active list must mirror the active
  /// bitmap exactly — the sparse-frontier fast paths from the active-list
  /// work assume each vertex appears at most once and only with its bit set.
  void audit_validate_frontier() const {
    if constexpr (!Program::kAllActive) {
      std::vector<std::uint8_t> seen(active_.size(), 0);
      for (const vid_t u : frontier_) {
        PG_AUDIT_FMT(static_cast<std::size_t>(u) < active_.size(),
                     "frontier-bitmap-consistency",
                     "active list holds out-of-range vertex %u (%zu local "
                     "vertices)",
                     u, active_.size());
        PG_AUDIT_FMT(!seen[u], "frontier-bitmap-consistency",
                     "vertex %u appears twice in the active list", u);
        seen[u] = 1;
        PG_AUDIT_FMT(active_[u] == 1, "frontier-bitmap-consistency",
                     "vertex %u is on the active list but its bitmap bit is "
                     "clear",
                     u);
      }
      std::size_t bits = 0;
      for (const std::uint8_t b : active_) bits += b;
      PG_AUDIT_FMT(bits == frontier_.size(), "frontier-bitmap-consistency",
                   "active bitmap has %zu set bits but the active list holds "
                   "%zu vertices",
                   bits, frontier_.size());
    }
  }
#endif

  /// Sparse-frontier rule: walk the compact active list when it is small
  /// relative to the vertex count; scan the dense bitmap otherwise.
  [[nodiscard]] bool use_sparse_frontier() const noexcept {
    if constexpr (Program::kAllActive) return false;
    const double n = static_cast<double>(lg_.num_local_vertices());
    return static_cast<double>(frontier_.size()) <
           cfg_.sparse_iteration_threshold * n;
  }

  /// Pick this superstep's traversal direction. Push-only engines (non-
  /// pullable program, peer present, or kForcePush) always push; kAuto
  /// feeds the frontier's vertex/edge mass and the unexplored-edge estimate
  /// into the alpha/beta policy. The explored-edge estimate accumulates the
  /// frontier's out-edge mass every superstep regardless of the chosen
  /// direction — exactly what sim::predict_direction_mix replays from a
  /// forced-push probe trace (where edges_scanned == frontier edge mass).
  [[nodiscard]] Direction decide_direction() {
    if (!pull_ready_) return Direction::kPush;
    if (cfg_.direction_mode == DirectionMode::kForcePull)
      return Direction::kPull;
    if constexpr (is_pullable<Program>() && !Program::kAllActive) {
      std::uint64_t frontier_edges = 0;
      for (const vid_t u : frontier_)
        frontier_edges += lg_.local.out_degree(u);
      const std::uint64_t m = lg_.local.num_edges();
      const std::uint64_t cap =
          std::min(m, explored_edges_est_ + frontier_edges);
      const Direction d = dir_policy_.decide(
          frontier_.size(), frontier_edges, m - cap,
          static_cast<std::uint64_t>(lg_.num_local_vertices()));
      explored_edges_est_ = cap;
      return d;
    }
    return Direction::kPush;
  }

  // ---- phases -------------------------------------------------------------------

  void prepare() {
    // Cost proportional to last superstep's work, not graph size: reset only
    // the CSB groups dirtied by the previous generation/exchange and clear
    // only the next-active bits the previous update actually set (their
    // owners are exactly prev_frontier_; has_msg_ is cleared inline by the
    // OMP-mode update).
    const std::size_t dirty = csb_ ? csb_->num_dirty_groups() : 0;
    const std::size_t nverts =
        Program::kAllActive ? 0 : prev_frontier_.size();
    sched_.reset(dirty + nverts, cfg_.sched_chunk);
    team_run_guarded([&](int) {
      while (auto r = sched_.next_chunk()) {
        for (std::size_t i = r->begin; i < r->end; ++i) {
          if (i < dirty) {
            csb_->reset_group(csb_->dirty_group(i));
          } else {
            next_active_[prev_frontier_[i - dirty]] = 0;
          }
        }
      }
    });
    if (csb_) csb_->clear_dirty();
  }

  void generate(int superstep) {
    const Direction dir = decide_direction();
    direction_flipped_ = dir != last_direction_;
    last_direction_ = dir;
    superstep_direction_ = dir;
    if (dir == Direction::kPull) {
      generate_pull(superstep);
      return;
    }
    const vid_t n = lg_.num_local_vertices();
    const bool sparse = use_sparse_frontier();
    superstep_sparse_ = sparse;
    superstep_frontier_size_ =
        Program::kAllActive ? static_cast<std::uint64_t>(n)
                            : static_cast<std::uint64_t>(frontier_.size());
    sched_.reset(sparse ? frontier_.size() : static_cast<std::size_t>(n),
                 cfg_.sched_chunk);
    auto v = view(superstep);

    auto worker_body = [&](int tid, auto&& sink) {
      auto& ts = tstats_[static_cast<std::size_t>(tid)];
      while (auto r = sched_.next_chunk()) {
        for (std::size_t i = r->begin; i < r->end; ++i) {
          vid_t u;
          if (!Program::kAllActive && sparse) {
            u = frontier_[i];  // active by construction
          } else {
            u = static_cast<vid_t>(i);
            if (!Program::kAllActive && !active_[u]) continue;
          }
          ++ts.active;
          ts.edges += lg_.local.out_degree(u);
          PG_AUDIT_PHASE_EXPECT(bsp_phase_, kGenerate, "generate_messages()");
          PG_FAULT_POINT(kEngineGenerate, rank(), superstep);
          prog_.generate_messages(u, v, sink);
        }
      }
    };

    switch (cfg_.mode) {
      case ExecMode::kLocking:
        team_run_guarded([&](int tid) {
          LockingSink sink{this, &tstats_[static_cast<std::size_t>(tid)]};
          worker_body(tid, sink);
        });
        break;
      case ExecMode::kPipelining:
        pipe_->reset();
        team_run_guarded([&](int tid) {
          auto& ts = tstats_[static_cast<std::size_t>(tid)];
          if (tid < cfg_.threads) {
            PipelineSink sink{this, &ts, tid};
            // A worker dying without worker_done() would spin the movers
            // forever inside this very team run — always signal completion,
            // then let the guard surface the fault.
            try {
              worker_body(tid, sink);
            } catch (...) {
              pipe_->worker_done();
              throw;
            }
            pipe_->worker_done();
          } else {
            const int mover = tid - cfg_.threads;
            // The drain loop runs for the whole generate phase on this team
            // thread — the worker/mover overlap the pipelining scheme buys.
            PG_TRACE_SCOPE(kPipelineDrain, cur_superstep_, rank());
            try {
              pipe_->mover_loop(mover, [&](const pipeline::Envelope<Msg>& env) {
                PG_FAULT_POINT(kPipelineMoverInsert, rank(), cur_superstep_);
                csb_->insert_owned(env.dst, env.value, ts.ins);
              });
            } catch (...) {
              // A dead mover means workers block on its full queues; keep
              // draining (discarding — the run is aborting anyway) until the
              // workers finish, then surface the fault.
              pipe_->mover_loop(mover, [](const pipeline::Envelope<Msg>&) {});
              throw;
            }
          }
        });
        break;
      case ExecMode::kOmpStyle:
        team_run_guarded([&](int tid) {
          OmpSink sink{this, &tstats_[static_cast<std::size_t>(tid)]};
          worker_body(tid, sink);
        });
        break;
    }
    tstats_[0].sched_retrievals += sched_.retrievals();
  }

  /// Bottom-up generation (paper-external: Beamer-style direction switch).
  /// Every vertex still lacking a result scans its in-neighbors against a
  /// word-packed bitmap of the frontier, feeding pull_message() results into
  /// a private accumulator slot — the owning thread is the only writer, so
  /// there are no locks, no CSB traffic and no queue traffic. process()
  /// naturally no-ops afterwards (no CSB group is dirtied) and update()
  /// takes its pull branch.
  void generate_pull(int superstep) {
    if constexpr (is_pullable<Program>() && !Program::kAllActive) {
      const vid_t n = lg_.num_local_vertices();
      superstep_sparse_ = false;
      superstep_frontier_size_ = static_cast<std::uint64_t>(frontier_.size());
      pull_frontier_.assign_bytes(active_.data(), active_.size());
      // Tail-word audit: when |V| is not a multiple of 64, the bits past n
      // in the bitmap's last word must be dead — a stale tail bit would let
      // the pull kernel treat a nonexistent vertex as frontier (and, for the
      // 64-lane batch programs, answer query lanes nobody submitted).
      PG_AUDIT_FMT(pull_frontier_.tail_bits() == 0, "frontier-tail-word",
                   "pull frontier bitmap carries %llu stale tail bit(s) past "
                   "|V|=%u",
                   static_cast<unsigned long long>(
                       __builtin_popcountll(pull_frontier_.tail_bits())),
                   static_cast<unsigned>(n));
      const bool weighted = in_csr_->has_edge_values();
      sched_.reset(static_cast<std::size_t>(n), cfg_.sched_chunk);
      team_run_guarded([&](int tid) {
        auto& ts = tstats_[static_cast<std::size_t>(tid)];
        PG_TRACE_SCOPE(kPullScan, superstep, rank());
        while (auto r = sched_.next_chunk()) {
          for (std::size_t i = r->begin; i < r->end; ++i)
            pull_vertex(static_cast<vid_t>(i), weighted, superstep, ts);
        }
      });
      tstats_[0].sched_retrievals += sched_.retrievals();
#if PG_TRACE_ENABLED
      std::uint64_t scanned = 0;
      for (const auto& t : tstats_) scanned += t.pull_edges;
      hist_pull_scan_.record(scanned);
#endif
    } else {
      (void)superstep;
      PG_CHECK_MSG(false, "pull superstep on a non-pullable program");
    }
  }

  /// One candidate's bottom-up scan. Non-reducing programs (BFS: every
  /// frontier neighbor offers the same level) stop at the first frontier
  /// in-neighbor; reducing programs (SSSP/CC: exact min-combine, order-
  /// independent) fold every frontier in-neighbor, vectorized when the
  /// program supplies pull_message_vec and the profile enables SIMD.
  void pull_vertex(vid_t u, bool weighted, int superstep, ThreadStats& ts) {
    (void)superstep;  // only consumed by the audit/fault macros
    if constexpr (is_pullable<Program>() && !Program::kAllActive) {
      if constexpr (HasPullCandidate<Program>) {
        if (!prog_.pull_candidate(values_[u])) return;
      }
      const eid_t lo = in_csr_->offsets()[u];
      const eid_t hi = in_csr_->offsets()[u + 1];
      if (lo == hi) return;
      PG_AUDIT_PHASE_EXPECT(bsp_phase_, kGenerate, "pull_message()");
      PG_FAULT_POINT(kEngineGenerate, rank(), superstep);
      if constexpr (Program::kNeedsReduction && Program::kSimdReduce &&
                    simd::is_simd_basic_v<Msg> &&
                    std::is_same_v<Msg, Value>) {
        if constexpr (HasVecPullMessage<Program, simd::Vec<Msg, 8>,
                                        simd::Vec<float, 8>>) {
          if (cfg_.use_simd && lanes_ > 1) {
            switch (lanes_) {
              case 4:  pull_vertex_vec<4>(u, lo, hi, weighted, ts);  return;
              case 8:  pull_vertex_vec<8>(u, lo, hi, weighted, ts);  return;
              case 16: pull_vertex_vec<16>(u, lo, hi, weighted, ts); return;
              default: break;  // unusual profile: scalar below
            }
          }
        }
      }
      pull_vertex_scalar(u, lo, hi, weighted, ts);
    }
  }

  void pull_vertex_scalar(vid_t u, eid_t lo, eid_t hi, bool weighted,
                          ThreadStats& ts) {
    if constexpr (is_pullable<Program>() && !Program::kAllActive) {
      const vid_t* srcs = in_csr_->targets().data();
      const float* wv = weighted ? in_csr_->edge_values().data() : nullptr;
      Msg acc{};
      bool found = false;
      std::uint64_t scanned = 0;
      for (eid_t e = lo; e < hi; ++e) {
        ++scanned;
        const vid_t src = srcs[e];
        if (!pull_frontier_.test(src)) continue;
        const Msg m = prog_.pull_message(values_[src], wv ? wv[e] : 0.0f);
        if (found)
          acc = prog_.combine(acc, m);
        else {
          acc = m;
          found = true;
        }
        if constexpr (!Program::kNeedsReduction) {
          // Any frontier parent yields the same result — stop scanning.
          if (e + 1 < hi) ++ts.pull_early;
          break;
        }
      }
      ts.pull_edges += scanned;
      if (found) {
        pull_acc_[u] = acc;
        pull_has_[u] = 1;
      }
    }
  }

  /// Lane-parallel pull scan: gather W in-neighbor values + edge weights,
  /// build the frontier mask from the bitmap, evaluate pull_message_vec on
  /// all lanes and blend non-frontier lanes to the reduction identity
  /// (neutral by the kSimdReduce contract — the same padding trick the CSB
  /// process path uses), then fold through the program's own SIMD
  /// process_messages.
  template <int W>
  void pull_vertex_vec(vid_t u, eid_t lo, eid_t hi, bool weighted,
                       ThreadStats& ts) {
    if constexpr (is_pullable<Program>() && !Program::kAllActive &&
                  Program::kNeedsReduction && Program::kSimdReduce &&
                  simd::is_simd_basic_v<Msg> && std::is_same_v<Msg, Value>) {
      using V = simd::Vec<Msg, W>;
      using VF = simd::Vec<float, W>;
      const vid_t* srcs = in_csr_->targets().data();
      const float* wv = weighted ? in_csr_->edge_values().data() : nullptr;
      const Msg ident = prog_.identity();
      V vacc(ident);
      bool found = false;
      eid_t e = lo;
      for (; e + W <= hi; e += W) {
        typename simd::Mask<W>::bits_type bits = 0;
        V vsrc;
        VF vweights;
        for (int l = 0; l < W; ++l) {
          const vid_t src = srcs[e + static_cast<eid_t>(l)];
          vsrc[l] = values_[src];
          vweights[l] = wv ? wv[e + static_cast<eid_t>(l)] : 0.0f;
          if (pull_frontier_.test(src))
            bits |= typename simd::Mask<W>::bits_type{1} << l;
        }
        if (bits == 0) continue;
        found = true;
        const V vm = prog_.pull_message_vec(vsrc, vweights);
        V folded[2] = {vacc, simd::blend(simd::Mask<W>(bits), vm, V(ident))};
        buffer::VMsgArray<V> varr(folded, 2);
        prog_.process_messages(varr);
        vacc = folded[0];
      }
      // Horizontal fold + scalar tail.
      Msg acc = vacc[0];
      for (int l = 1; l < W; ++l) acc = prog_.combine(acc, vacc[l]);
      for (; e < hi; ++e) {
        const vid_t src = srcs[e];
        if (!pull_frontier_.test(src)) continue;
        found = true;
        acc = prog_.combine(acc,
                            prog_.pull_message(values_[src], wv ? wv[e] : 0.0f));
      }
      ts.pull_edges += hi - lo;
      if (found) {
        pull_acc_[u] = acc;
        pull_has_[u] = 1;
      }
    }
  }

  /// Returns false when a peer is down (RunResult filled via
  /// handle_peer_down); true on a completed exchange.
  bool exchange_messages(int superstep, RunResult& res) {
    PG_FAULT_POINT(kExchangeDeposit, rank(), superstep);
    // Serialize the buffered remote messages in parallel: shard sizes are
    // known up front, so each shard drains into its own slice of its
    // destination rank's batch. Destination rank r owns the contiguous
    // shard range [r * spr, (r + 1) * spr), so the per-peer batches fall
    // out of the global shard order with no extra routing pass.
    const std::size_t nshards = remote_->num_shards();
    const std::size_t spr = remote_->shards_per_rank();
    std::vector<std::size_t> offset(nshards + 1, 0);
    for (std::size_t s = 0; s < nshards; ++s)
      offset[s + 1] = offset[s] + remote_->shard_touched_count(s);
    std::vector<Batch> outgoing(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r) {
      const std::size_t lo = static_cast<std::size_t>(r) * spr;
      outgoing[static_cast<std::size_t>(r)].resize(offset[lo + spr] -
                                                   offset[lo]);
    }
    sched_.reset(nshards, 1);
    team_run_guarded([&](int) {
      while (auto r = sched_.next_chunk()) {
        for (std::size_t s = r->begin; s < r->end; ++s) {
          const std::size_t dst_rank = s / spr;
          Batch& out = outgoing[dst_rank];
          std::size_t i = offset[s] - offset[dst_rank * spr];
          remote_->drain_shard(s, [&](vid_t dst, const Msg& m) {
            out[i++] = {dst, m};
          });
        }
      }
    });
    for (int r = 0; r < nranks_; ++r) {
      const std::uint64_t b =
          outgoing[static_cast<std::size_t>(r)].size() *
          sizeof(pipeline::Envelope<Msg>);
      tstats_[0].bytes_sent += b;
      bytes_to_[static_cast<std::size_t>(r)] += b;
    }

    auto ex = peer_->data->exchange_for(rank(), std::move(outgoing),
                                        exchange_deadline());
    if (ex.status != comm::ExchangeStatus::kOk) {
      handle_peer_down(ex.status, ex.fault, superstep, res);
      return false;
    }
    for (int src = 0; src < nranks_; ++src) {
      if (src == rank()) continue;
      insert_incoming(ex.values[static_cast<std::size_t>(src)], src);
    }
    return true;
  }

  /// Insert one source rank's batch into the local CSB (or the OMP
  /// accumulators). When send-side combining is off but the program does
  /// declare a combiner, the batch is first pre-combined per destination —
  /// sequentially, folding in arrival order, which reproduces the sender's
  /// combine exactly — so a combined and an uncombined run insert identical
  /// message sets and differ only in wire bytes / received-message counts.
  void insert_incoming(Batch& incoming, int src) {
    const std::uint64_t b =
        static_cast<std::uint64_t>(incoming.size()) *
        sizeof(pipeline::Envelope<Msg>);
    tstats_[0].bytes_received += b;
    bytes_from_[static_cast<std::size_t>(src)] += b;
    tstats_[0].msgs_received += incoming.size();
    if (!combine_enabled_ && combiner_kind<Program>() != CombinerKind::kNone)
      precombine(incoming);

    sched_.reset(incoming.size(), cfg_.sched_chunk);
    team_run_guarded([&](int tid) {
      auto& ts = tstats_[static_cast<std::size_t>(tid)];
      while (auto r = sched_.next_chunk()) {
        for (std::size_t i = r->begin; i < r->end; ++i) {
          const auto& env = incoming[i];
          if (cfg_.mode == ExecMode::kOmpStyle) {
            OmpSink sink{this, &ts};
            sink.send(env.dst, env.value);
            --ts.ins.inserted;  // counted as received, not locally generated
          } else {
            buffer::InsertStats dummy;
            csb_->insert(local_id(env.dst), env.value, dummy);
            ts.ins.conflicts += dummy.conflicts;
            ts.ins.columns_allocated += dummy.columns_allocated;
            ts.ins.lock_acquisitions += dummy.lock_acquisitions;
          }
        }
      }
    });
  }

  /// Reduce a raw (uncombined) batch per destination in place. Destination
  /// order is first-touch order and each destination folds left in arrival
  /// order — with a single sending thread this is byte-for-byte the batch
  /// the sender-side combiner would have produced.
  void precombine(Batch& b) {
    std::unordered_map<vid_t, std::size_t> at;
    at.reserve(b.size());
    std::size_t n = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      auto [it, fresh] = at.emplace(b[i].dst, n);
      if (fresh)
        b[n++] = b[i];
      else
        b[it->second].value = prog_.combine(b[it->second].value, b[i].value);
    }
    b.resize(n);
  }

  void process(int superstep) {
    (void)superstep;
    // Only groups that received messages this superstep hold work.
    const std::size_t tasks = csb_->num_dirty_array_tasks();
    sched_.reset(tasks, cfg_.sched_chunk);
    team_run_guarded([&](int tid) {
      auto& ts = tstats_[static_cast<std::size_t>(tid)];
      while (auto r = sched_.next_chunk()) {
        for (std::size_t t = r->begin; t < r->end; ++t) {
          const std::size_t g =
              csb_->dirty_group(t / static_cast<std::size_t>(cfg_.csb_k));
          const int a = static_cast<int>(t % static_cast<std::size_t>(cfg_.csb_k));
          process_array(g, a, ts);
        }
      }
    });
    tstats_[0].sched_retrievals += sched_.retrievals();
  }

  void process_array(std::size_t g, int a, ThreadStats& ts) {
    const int cols = csb_->array_cols(g, a);
    if (cols == 0) return;
    const std::uint32_t rows = csb_->array_rows(g, a);
    if (rows <= 1) return;  // 0 or 1 message per column: nothing to reduce

    if (cfg_.use_simd && lanes_ > 1) {
      if constexpr (simd::is_simd_basic_v<Msg>) {
        ts.padded_cells += csb_->pad_array(g, a, rows, prog_.identity());
        switch (lanes_) {
          case 4:  vec_reduce<4>(g, a, rows, ts);  return;
          case 8:  vec_reduce<8>(g, a, rows, ts);  return;
          case 16: vec_reduce<16>(g, a, rows, ts); return;
          default: break;  // unusual profile: fall through to scalar
        }
      }
    }
    scalar_reduce(g, a, cols, ts);
  }

  template <int W>
  void vec_reduce(std::size_t g, int a, std::uint32_t rows, ThreadStats& ts) {
    using V = simd::Vec<Msg, W>;
    auto* base = reinterpret_cast<V*>(csb_->array_base(g, a));
    buffer::VMsgArray<V> vmsgs(base, rows);
    PG_AUDIT_PHASE_EXPECT(bsp_phase_, kProcess, "process_messages()");
    PG_FAULT_POINT(kEngineProcess, rank(), cur_superstep_);
    prog_.process_messages(vmsgs);
    ts.vector_rows += rows;
  }

  void scalar_reduce(std::size_t g, int a, int cols, ThreadStats& ts) {
    PG_AUDIT_PHASE_EXPECT(bsp_phase_, kProcess,
                          "combine() (scalar message reduction)");
    PG_FAULT_POINT(kEngineProcess, rank(), cur_superstep_);
    for (int c = 0; c < cols; ++c) {
      const vid_t col = static_cast<vid_t>(a * lanes_ + c);
      const std::uint32_t cnt = csb_->column_count(g, col);
      if (cnt <= 1) continue;
      Msg res = csb_->cell(g, col, 0);
      for (std::uint32_t rrow = 1; rrow < cnt; ++rrow)
        res = prog_.combine(res, csb_->cell(g, col, rrow));
      csb_->cell(g, col, 0) = res;
      ts.scalar_msgs += cnt;
    }
  }

  /// Flag u for the next superstep: set its bit and append it to the
  /// calling thread's next-frontier buffer (each receiver is visited at most
  /// once per update phase, so no duplicates arise).
  void activate(vid_t u, int tid, ThreadStats& ts) {
    next_active_[u] = 1;
    ++ts.next_active;
    if constexpr (!Program::kAllActive)
      tl_frontier_[static_cast<std::size_t>(tid)].push_back(u);
  }

  void update(int superstep) {
    auto v = view(superstep);
    if (superstep_direction_ == Direction::kPull) {
      // Pull results live in the per-vertex accumulator slots, not the CSB
      // (nor the OMP acc_), whatever the execution scheme. Same shape as the
      // OMP update: scan all n, skip slots without a result, clear inline.
      const vid_t n = lg_.num_local_vertices();
      sched_.reset(n, cfg_.sched_chunk);
      team_run_guarded([&](int tid) {
        auto& ts = tstats_[static_cast<std::size_t>(tid)];
        while (auto r = sched_.next_chunk()) {
          for (std::size_t i = r->begin; i < r->end; ++i) {
            const vid_t u = static_cast<vid_t>(i);
            if (!pull_has_[u]) continue;
            pull_has_[u] = 0;
            ++ts.updated;
            PG_AUDIT_PHASE_EXPECT(bsp_phase_, kUpdate, "update_vertex()");
            PG_FAULT_POINT(kEngineUpdate, rank(), superstep);
            if (prog_.update_vertex(pull_acc_[u], v, u)) activate(u, tid, ts);
          }
        }
      });
      tstats_[0].sched_retrievals += sched_.retrievals();
      return;
    }
    if (cfg_.mode == ExecMode::kOmpStyle) {
      const vid_t n = lg_.num_local_vertices();
      sched_.reset(n, cfg_.sched_chunk);
      team_run_guarded([&](int tid) {
        auto& ts = tstats_[static_cast<std::size_t>(tid)];
        while (auto r = sched_.next_chunk()) {
          for (std::size_t i = r->begin; i < r->end; ++i) {
            const vid_t u = static_cast<vid_t>(i);
            if (!has_msg_[u]) continue;
            has_msg_[u] = 0;  // cleared here so prepare() need not scan all n
            ++ts.updated;
            PG_AUDIT_PHASE_EXPECT(bsp_phase_, kUpdate, "update_vertex()");
            PG_FAULT_POINT(kEngineUpdate, rank(), superstep);
            if (prog_.update_vertex(acc_[u], v, u)) activate(u, tid, ts);
          }
        }
      });
    } else {
      const std::size_t tasks = csb_->num_dirty_array_tasks();
      sched_.reset(tasks, cfg_.sched_chunk);
      team_run_guarded([&](int tid) {
        auto& ts = tstats_[static_cast<std::size_t>(tid)];
        while (auto r = sched_.next_chunk()) {
          for (std::size_t t = r->begin; t < r->end; ++t) {
            const std::size_t g =
                csb_->dirty_group(t / static_cast<std::size_t>(cfg_.csb_k));
            const int a = static_cast<int>(t % static_cast<std::size_t>(cfg_.csb_k));
            const int cols = csb_->array_cols(g, a);
            for (int c = 0; c < cols; ++c) {
              const vid_t col = static_cast<vid_t>(a * lanes_ + c);
              if (csb_->column_count(g, col) == 0) continue;
              const vid_t u = csb_->column_vertex(g, col);
              PG_DCHECK(u != kInvalidVertex);
              ++ts.updated;
              PG_AUDIT_PHASE_EXPECT(bsp_phase_, kUpdate, "update_vertex()");
              PG_FAULT_POINT(kEngineUpdate, rank(), superstep);
              if (prog_.update_vertex(csb_->cell(g, col, 0), v, u))
                activate(u, tid, ts);
            }
          }
        }
      });
    }
    tstats_[0].sched_retrievals += sched_.retrievals();
  }

  metrics::SuperstepCounters collect_counters(int superstep) const {
    metrics::SuperstepCounters c;
    c.superstep = static_cast<std::uint64_t>(superstep);
    for (const auto& t : tstats_) {
      c.active_vertices += t.active;
      c.edges_scanned += t.edges;
      c.msgs_local += t.ins.inserted;
      c.msgs_remote += t.msgs_remote;
      c.msgs_received += t.msgs_received;
      c.columns_allocated += t.ins.columns_allocated;
      c.column_conflicts += t.ins.conflicts;
      c.lock_acquisitions += t.ins.lock_acquisitions;
      c.queue_pushes += t.queue_pushes;
      c.queue_full_spins += t.queue_full_spins;
      c.vector_rows += t.vector_rows;
      c.padded_cells += t.padded_cells;
      c.scalar_msgs += t.scalar_msgs;
      c.verts_updated += t.updated;
      c.sched_retrievals += t.sched_retrievals;
      c.bytes_sent += t.bytes_sent;
      c.bytes_received += t.bytes_received;
      c.pull_edges_scanned += t.pull_edges;
      c.pull_early_exits += t.pull_early;
    }
    c.frontier_size = superstep_frontier_size_;
    const bool pulled = superstep_direction_ == Direction::kPull;
    c.push_supersteps = pulled ? 0 : 1;
    c.pull_supersteps = pulled ? 1 : 0;
    c.direction_flips = direction_flipped_ ? 1 : 0;
    if (pulled) {
      // No push worker ran, so ts.active stayed zero; the frontier that
      // drove the pull is the active set. Dense/sparse classify only push
      // iteration shapes: a pull superstep is neither.
      c.active_vertices = superstep_frontier_size_;
      c.dense_supersteps = 0;
      c.sparse_supersteps = 0;
    } else {
      c.dense_supersteps = superstep_sparse_ ? 0 : 1;
      c.sparse_supersteps = superstep_sparse_ ? 1 : 0;
    }
    if (csb_) {
      c.groups_dirty = csb_->num_dirty_groups();
      c.groups_skipped = csb_->num_groups() - c.groups_dirty;
    }
    return c;
  }

  LocalGraph lg_;
  Program prog_;
  EngineConfig cfg_;
  std::optional<PeerLink> peer_;
  int lanes_;
  int nranks_;
  bool combine_enabled_;
  // Per-peer exchange traffic, accumulated across the run (see RankIo).
  std::vector<std::uint64_t> bytes_to_;
  std::vector<std::uint64_t> bytes_from_;

  std::vector<Value> values_;
  std::vector<std::uint8_t> active_;
  std::vector<std::uint8_t> next_active_;

  // Compact active lists mirroring the bitmaps (unused for kAllActive
  // programs): frontier_ holds the vertices whose bits are set in active_;
  // prev_frontier_ holds the bits still set in next_active_ (cleared by the
  // next prepare()); tl_frontier_ are per-thread append buffers merged by
  // advance_frontier() after each update phase.
  std::vector<vid_t> frontier_;
  std::vector<vid_t> prev_frontier_;
  std::vector<std::vector<vid_t>> tl_frontier_;
  std::uint64_t superstep_frontier_size_ = 0;
  bool superstep_sparse_ = false;

  // Direction-optimizing pull state (engaged only when pull_ready_): the
  // transposed local graph, the word-packed frontier bitmap rebuilt from
  // active_ each pull superstep, and per-vertex result slots written
  // owner-thread-only by the pull kernel and drained by update()'s pull
  // branch. The policy/estimate pair drives the kAuto decision.
  bool pull_ready_ = false;
  std::optional<graph::Csr> in_csr_;
  simd::DenseBitset pull_frontier_;
  std::vector<Msg> pull_acc_;
  std::vector<std::uint8_t> pull_has_;
  DirectionPolicy dir_policy_;
  Direction superstep_direction_ = Direction::kPush;
  Direction last_direction_ = Direction::kPush;
  bool direction_flipped_ = false;
  std::uint64_t explored_edges_est_ = 0;

  std::optional<buffer::Csb<Msg>> csb_;
  std::optional<comm::RemoteBuffer<Msg>> remote_;
  std::optional<pipeline::MessagePipeline<Msg>> pipe_;
  std::optional<sched::ThreadTeam> team_;
  sched::DynamicScheduler sched_;

  // OMP-baseline state.
  std::vector<Msg> acc_;
  std::vector<std::uint8_t> has_msg_;
  std::unique_ptr<sched::SpinLock[]> vertex_locks_;

  std::vector<ThreadStats> tstats_;

  // Fault tolerance: optional checkpoint store (engaged when
  // cfg_.checkpoint.enabled()), the superstep run() resumes at after
  // restore(), and bookkeeping for FaultReports — the superstep and BSP
  // phase currently executing, read when an exception or fault-injection
  // point tears the run down.
#if PG_TRACE_ENABLED
  // Shape statistics (trace builds only); see the accessors next to run().
  metrics::Histogram hist_chunk_;
  metrics::Histogram hist_drain_;
  metrics::Histogram hist_col_depth_;
  metrics::Histogram hist_pull_scan_;
#endif

  std::optional<fault::CheckpointStore> ckpt_;
  int start_superstep_ = 0;
  int cur_superstep_ = -1;
  const char* phase_ = "idle";

#if PG_AUDIT_ENABLED
  // Checked build only: asserts the prepare -> generate -> [exchange] ->
  // [process] -> update superstep order and guards every user-callback site.
  audit::PhaseMachine bsp_phase_;
#endif
};

}  // namespace phigraph::core
