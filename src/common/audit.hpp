// Concurrency-audit layer ("checked build") — executable versions of the
// structural invariants the paper's correctness argument rests on but never
// mechanically checks:
//
//   * each CSB column is touched by exactly one mover per superstep (§IV-C:
//     only column *allocation* needs a lock) — column-ownership tracking;
//   * each pipeline queue is strictly single-producer/single-consumer
//     (§IV-C, Fig. 4: "each message queue is only written by only one
//     thread, as well as read by only one thread") — thread-affinity
//     contracts;
//   * the three BSP user functions run in a fixed superstep order (§III/IV-A:
//     prepare → generate → exchange → process → update) — a phase state
//     machine that also guards every user-callback invocation site.
//
// Everything here is gated on the PHIGRAPH_AUDIT preprocessor definition
// (CMake option -DPHIGRAPH_AUDIT=ON, the `audit` preset). When the gate is
// off, the PG_AUDIT_* macros expand to `((void)0)` / nothing, so the default
// build carries no extra state, loads, or branches — audited classes keep
// their exact release-layout and the fig5 numbers are unchanged.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "src/common/expect.hpp"
#include "src/common/sync.hpp"

#if defined(PHIGRAPH_AUDIT)
#define PG_AUDIT_ENABLED 1
#else
#define PG_AUDIT_ENABLED 0
#endif

namespace phigraph::audit {

/// Abort naming the violated invariant — the audit analogue of
/// detail::check_failed. Every audit diagnostic leads with `invariant:` so
/// death tests (and humans grepping a CI log) can match on the contract name.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 4, 5)))
#endif
[[noreturn]] inline void
fail(const char* invariant, const char* file, int line, const char* fmt, ...) {
  char msg[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);
  std::fprintf(stderr,
               "phigraph: audit invariant violated: %s\n  at %s:%d\n  %s\n",
               invariant, file, line, msg);
  std::fflush(stderr);
  std::abort();
}

/// Small dense id for the calling thread (assigned on first use). std::thread
/// ids are opaque; audit diagnostics want short numbers that can be matched
/// against the engine's worker/mover layout.
inline int thread_id() noexcept {
  static sync::Atomic<int> next{0};
  thread_local int id = next.fetch_add(1, sync::relaxed);
  return id;
}

/// Thread-affinity contract: the first check() binds the calling thread to a
/// role; any later check() from a different thread aborts naming both thread
/// ids. Used for the SPSC producer/consumer ends, the pipeline's per-worker /
/// per-mover slots, and the ThreadTeam orchestrator.
class ThreadAffinity {
 public:
  void check(const char* invariant, const char* role, const char* file,
             int line) noexcept {
    const int me = thread_id();
    std::int32_t bound = -1;
    if (bound_.compare_exchange_strong(bound, me, sync::acq_rel))
      return;  // first touch: this thread now owns the role
    if (bound != me)
      fail(invariant, file, line,
           "%s is bound to thread %d but was entered by thread %d", role,
           bound, me);
  }

  /// Forget the binding (e.g. when a new phase may legally re-assign roles).
  void rebind() noexcept { bound_.store(-1, sync::release); }

  [[nodiscard]] bool is_bound() const noexcept {
    return bound_.load(sync::acquire) >= 0;
  }

 private:
  sync::Atomic<std::int32_t> bound_{-1};
};

// ---- BSP phase state machine -----------------------------------------------

enum class BspPhase : std::uint8_t {
  kIdle = 0,
  kPrepare,
  kGenerate,
  kExchange,
  kProcess,
  kUpdate,
};

constexpr const char* phase_name(BspPhase p) noexcept {
  switch (p) {
    case BspPhase::kIdle: return "idle";
    case BspPhase::kPrepare: return "prepare";
    case BspPhase::kGenerate: return "generate";
    case BspPhase::kExchange: return "exchange";
    case BspPhase::kProcess: return "process";
    case BspPhase::kUpdate: return "update";
  }
  return "?";
}

/// Asserts the superstep ordering prepare → generate → [exchange] →
/// [process] → update → (prepare | idle). exchange is skipped on
/// single-device runs and process on OMP-mode / reduction-free programs, so
/// those two phases are optional edges. Transitions happen only on the
/// orchestrator thread (between team barriers); user-callback guards read the
/// phase concurrently from team threads, hence the atomic.
class PhaseMachine {
 public:
  void enter(BspPhase next, const char* file, int line) noexcept {
    const auto cur = static_cast<BspPhase>(state_.load(sync::acquire));
    if (!legal(cur, next))
      fail("bsp-phase-order", file, line,
           "illegal superstep transition %s -> %s (required order: prepare -> "
           "generate -> [exchange] -> [process] -> update)",
           phase_name(cur), phase_name(next));
    state_.store(static_cast<std::uint8_t>(next), sync::release);
  }

  /// Guard for a user-callback invocation site: aborts unless the machine is
  /// in `required`. Called from team threads while the phase is stable.
  void expect(BspPhase required, const char* what, const char* file,
              int line) const noexcept {
    const auto cur = static_cast<BspPhase>(state_.load(sync::acquire));
    if (cur != required)
      fail("bsp-phase-callback", file, line,
           "%s invoked during the %s phase; it may only run in the %s phase",
           what, phase_name(cur), phase_name(required));
  }

  [[nodiscard]] BspPhase current() const noexcept {
    return static_cast<BspPhase>(state_.load(sync::acquire));
  }

  /// Fault path only: a device fault tore the run down mid-superstep, so the
  /// ordinary update -> idle edge never happens. Jump straight to idle
  /// without legality checking so the failed engine can be joined and
  /// inspected. Never call this on a healthy run — it would mask a real
  /// phase-order violation.
  void abort_to_idle() noexcept {
    state_.store(static_cast<std::uint8_t>(BspPhase::kIdle), sync::release);
  }

 private:
  static constexpr bool legal(BspPhase from, BspPhase to) noexcept {
    switch (to) {
      case BspPhase::kIdle:      // run() may end before any superstep starts
        return from == BspPhase::kUpdate || from == BspPhase::kIdle;
      case BspPhase::kPrepare:
        return from == BspPhase::kIdle || from == BspPhase::kUpdate;
      case BspPhase::kGenerate:
        return from == BspPhase::kPrepare;
      case BspPhase::kExchange:
        return from == BspPhase::kGenerate;
      case BspPhase::kProcess:
        return from == BspPhase::kGenerate || from == BspPhase::kExchange;
      case BspPhase::kUpdate:
        return from == BspPhase::kGenerate || from == BspPhase::kExchange ||
               from == BspPhase::kProcess;
    }
    return false;
  }

  sync::Atomic<std::uint8_t> state_{static_cast<std::uint8_t>(BspPhase::kIdle)};
};

}  // namespace phigraph::audit

// ---- audit macros -----------------------------------------------------------
//
// PG_AUDIT_FMT(expr, invariant, fmt, ...) — checked-build assertion; aborts
//   naming `invariant` with a printf-style diagnostic when `expr` is false.
// PG_AUDIT_ONLY(...) — splices its arguments into the program only in audit
//   builds (member declarations, bookkeeping statements).
// PG_AUDIT_PHASE_ENTER / PG_AUDIT_PHASE_EXPECT — sugar for the state machine
//   so call sites stay one line.
#if PG_AUDIT_ENABLED
#define PG_AUDIT_FMT(expr, invariant, ...)                             \
  do {                                                                 \
    if (!(expr)) [[unlikely]]                                          \
      ::phigraph::audit::fail(invariant, __FILE__, __LINE__,           \
                              __VA_ARGS__);                            \
  } while (0)
#define PG_AUDIT_ONLY(...) __VA_ARGS__
#define PG_AUDIT_AFFINITY(aff, invariant, role) \
  (aff).check(invariant, role, __FILE__, __LINE__)
#define PG_AUDIT_PHASE_ENTER(machine, phase) \
  (machine).enter(::phigraph::audit::BspPhase::phase, __FILE__, __LINE__)
#define PG_AUDIT_PHASE_EXPECT(machine, phase, what) \
  (machine).expect(::phigraph::audit::BspPhase::phase, what, __FILE__, __LINE__)
#else
#define PG_AUDIT_FMT(expr, invariant, ...) ((void)0)
#define PG_AUDIT_ONLY(...)
#define PG_AUDIT_AFFINITY(aff, invariant, role) ((void)0)
#define PG_AUDIT_PHASE_ENTER(machine, phase) ((void)0)
#define PG_AUDIT_PHASE_EXPECT(machine, phase, what) ((void)0)
#endif
