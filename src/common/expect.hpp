// Lightweight contract-checking macros (CppCoreGuidelines I.6/I.8 style).
//
// PG_CHECK   — always-on invariant check; aborts with a message on failure.
// PG_DCHECK  — debug-only check, compiled out in NDEBUG builds; use on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace phigraph::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "phigraph: check failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace phigraph::detail

#define PG_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr)) [[unlikely]]                                              \
      ::phigraph::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PG_CHECK_MSG(expr, msg)                                         \
  do {                                                                  \
    if (!(expr)) [[unlikely]]                                           \
      ::phigraph::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define PG_DCHECK(expr) ((void)0)
#else
#define PG_DCHECK(expr) PG_CHECK(expr)
#endif
