// Lightweight contract-checking macros (CppCoreGuidelines I.6/I.8 style).
//
// PG_CHECK       — always-on invariant check; aborts with a message on failure.
// PG_CHECK_FMT   — always-on check with a printf-style diagnostic (use when
//                  the message must name the offending value, e.g. a vertex
//                  id; the format arguments are only evaluated on failure).
// PG_DCHECK      — debug-only check, compiled out in NDEBUG builds; use on
//                  hot paths.
// PG_DCHECK_MSG / PG_DCHECK_FMT — debug-only variants with diagnostics.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace phigraph::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "phigraph: check failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 4, 5)))
#endif
[[noreturn]] inline void
check_failed_fmt(const char* expr, const char* file, int line, const char* fmt,
                 ...) {
  char msg[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);
  check_failed(expr, file, line, msg);
}

}  // namespace phigraph::detail

#define PG_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr)) [[unlikely]]                                              \
      ::phigraph::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PG_CHECK_MSG(expr, msg)                                         \
  do {                                                                  \
    if (!(expr)) [[unlikely]]                                           \
      ::phigraph::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#define PG_CHECK_FMT(expr, ...)                                        \
  do {                                                                 \
    if (!(expr)) [[unlikely]]                                          \
      ::phigraph::detail::check_failed_fmt(#expr, __FILE__, __LINE__,  \
                                           __VA_ARGS__);               \
  } while (0)

#ifdef NDEBUG
#define PG_DCHECK(expr) ((void)0)
#define PG_DCHECK_MSG(expr, msg) ((void)0)
#define PG_DCHECK_FMT(expr, ...) ((void)0)
#else
#define PG_DCHECK(expr) PG_CHECK(expr)
#define PG_DCHECK_MSG(expr, msg) PG_CHECK_MSG(expr, msg)
#define PG_DCHECK_FMT(expr, ...) PG_CHECK_FMT(expr, __VA_ARGS__)
#endif
