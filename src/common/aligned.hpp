// Aligned allocation support for SIMD-resident buffers.
//
// The condensed static buffer stores messages as aligned vector types; on
// the paper's MIC that means 64-byte alignment (512-bit lanes). We align
// everything to kSimdAlign so any lane width up to AVX-512 can load/store
// with aligned instructions.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace phigraph {

/// Strictest SIMD alignment we target (AVX-512 / KNC: 64 bytes). Also a
/// cache line, so independently-written buffer columns never false-share
/// at vector-array granularity.
inline constexpr std::size_t kSimdAlign = 64;

/// Minimal std::allocator replacement with fixed alignment.
template <typename T, std::size_t Align = kSimdAlign>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Align >= alignof(T));
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    // Round the byte count up to a multiple of Align, as required by
    // std::aligned_alloc.
    std::size_t bytes = (n * sizeof(T) + Align - 1) / Align * Align;
    void* p = std::aligned_alloc(Align, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// Vector whose data() is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace phigraph
