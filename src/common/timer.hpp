// Wall-clock timing helpers for benches and the runtime's phase breakdown.
#pragma once

#include <chrono>

namespace phigraph {

class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across many start/stop intervals (per-phase totals).
class StopWatch {
 public:
  void start() noexcept { t_.reset(); }
  void stop() noexcept { total_ += t_.seconds(); }
  [[nodiscard]] double total_seconds() const noexcept { return total_; }
  void clear() noexcept { total_ = 0; }

 private:
  Timer t_;
  double total_ = 0;
};

}  // namespace phigraph
