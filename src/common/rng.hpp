// Deterministic, fast pseudo-random number generation for graph generators
// and tests. SplitMix64 for seeding, xoshiro256** as the workhorse.
// (std::mt19937_64 is ~4x slower and its state hampers per-thread replication.)
#pragma once

#include <cstdint>

namespace phigraph {

/// SplitMix64: used to expand a single user seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: public-domain generator by Blackman & Vigna.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  constexpr result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). Lemire's multiply-shift reduction
  /// (slightly biased for huge bounds; irrelevant for our use).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  constexpr float uniform(float lo, float hi) noexcept {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace phigraph
