// Fundamental identifier and size types shared across PhiGraph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace phigraph {

/// Vertex identifier. 32 bits covers every graph in the paper's evaluation
/// (largest: Pokec, 1.6M vertices) with room to spare.
using vid_t = std::uint32_t;

/// Edge identifier / edge-array index. 64 bits: the TopoSort input in the
/// paper has 200M edges, and generated full-scale inputs may exceed 2^32.
using eid_t = std::uint64_t;

/// Sentinel for "no vertex".
inline constexpr vid_t kInvalidVertex = std::numeric_limits<vid_t>::max();

/// Which device of the heterogeneous node a vertex/rank lives on.
/// The paper runs MPI symmetric computing with CPU = rank 0, MIC = rank 1.
enum class Device : std::uint8_t { Cpu = 0, Mic = 1 };

inline constexpr int kNumDevices = 2;

constexpr Device other_device(Device d) noexcept {
  return d == Device::Cpu ? Device::Mic : Device::Cpu;
}

constexpr const char* device_name(Device d) noexcept {
  return d == Device::Cpu ? "CPU" : "MIC";
}

constexpr int device_index(Device d) noexcept { return static_cast<int>(d); }

}  // namespace phigraph
