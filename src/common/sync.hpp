// phigraph::sync — the one place production code touches atomics, memory
// orders, mutexes, and spin hints.
//
// Normal builds: zero-cost aliases onto the std primitives (sync::Atomic is
// std::atomic, the plain-access annotations are empty inlines, PG_SYNC_ORDER
// collapses to its order argument). Model builds (PHIGRAPH_MODEL, the
// `model` preset): the same names resolve to the instrumented model::
// versions, so the *production* lock-free code runs under the cooperative
// model checker without copies or #ifdef forks at call sites.
//
// tools/lint.sh bans raw std::atomic / std::memory_order outside src/model/
// and this header, which is what makes the routing exhaustive: an atomic
// that bypasses sync:: is invisible to the checker, and the lint gate turns
// that silent blind spot into a build failure.
//
// Tagged orders: PG_SYNC_ORDER("tag", sync::release) names an operation for
// the mutant registry (model/mutant.hpp). Tag every load/store/RMW whose
// order carries a verified happens-before edge; the mutant-kill suite weakens
// tags one at a time and asserts the checker notices.
//
// sync::Mutex is capability-annotated for clang -Wthread-safety (see
// thread_safety.hpp); sync::LockGuard / sync::UniqueLock are the annotated
// guards. std::unique_lock<sync::Mutex> also works (BasicLockable) where no
// annotation coverage is needed — e.g. as the lock handed to CondVar.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/common/thread_safety.hpp"

#if defined(PHIGRAPH_MODEL)
#define PG_MODEL_ENABLED 1
#include "src/model/model.hpp"
#else
#define PG_MODEL_ENABLED 0
#endif

namespace phigraph::sync {

inline constexpr bool kModelBuild = PG_MODEL_ENABLED != 0;

// Short order names so call sites never spell std::memory_order (banned by
// lint outside this header and src/model/).
inline constexpr std::memory_order relaxed = std::memory_order_relaxed;
inline constexpr std::memory_order acquire = std::memory_order_acquire;
inline constexpr std::memory_order release = std::memory_order_release;
inline constexpr std::memory_order acq_rel = std::memory_order_acq_rel;
inline constexpr std::memory_order seq_cst = std::memory_order_seq_cst;

#if PG_MODEL_ENABLED

template <typename T>
using Atomic = model::Atomic<T>;

using CondVar = model::CondVar;
namespace detail {
using MutexImpl = model::Mutex;
}

inline void fence(std::memory_order mo) noexcept { model::fence(mo); }

inline void plain_read(const void* addr, const char* what) {
  model::plain_read(addr, what);
}
inline void plain_write(const void* addr, const char* what) {
  model::plain_write(addr, what);
}
inline void plain_read_published(const void* addr, const char* what) {
  model::plain_read_published(addr, what);
}

inline void cpu_relax() { model::yield_spin(); }
inline void thread_yield() { model::yield_spin(); }

#else  // !PG_MODEL_ENABLED

template <typename T>
using Atomic = std::atomic<T>;

using CondVar = std::condition_variable_any;
namespace detail {
using MutexImpl = std::mutex;
}

inline void fence(std::memory_order mo) noexcept {
  std::atomic_thread_fence(mo);
}

// Plain-access annotations for the model race detector; free in real builds.
inline void plain_read(const void*, const char*) noexcept {}
inline void plain_write(const void*, const char*) noexcept {}
inline void plain_read_published(const void*, const char*) noexcept {}

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

inline void thread_yield() { std::this_thread::yield(); }

#endif  // PG_MODEL_ENABLED

/// Compiler-only barrier (non-x86 cpu_relax fallback and similar).
inline void compiler_fence() noexcept {
  std::atomic_signal_fence(std::memory_order_seq_cst);
}

/// Capability-annotated mutex. std::mutex in normal builds, the cooperative
/// model::Mutex under PHIGRAPH_MODEL; always annotated so -Wthread-safety
/// can verify PG_GUARDED_BY members in every configuration clang compiles.
class PG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PG_ACQUIRE() { m_.lock(); }
  void unlock() PG_RELEASE() { m_.unlock(); }
  bool try_lock() PG_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  detail::MutexImpl m_;
};

/// Annotated scope lock (std::lock_guard shape).
class PG_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) PG_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() PG_RELEASE() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

}  // namespace phigraph::sync

/// Memory order of a tagged operation: the declared order normally, the
/// mutant registry's substitution in model builds. The tag doubles as the
/// operation's name in DESIGN.md's verified-edge table.
#if PG_MODEL_ENABLED
#define PG_SYNC_ORDER(tag, order) ::phigraph::model::mutant_order((tag), (order))
#else
#define PG_SYNC_ORDER(tag, order) (order)
#endif
