// Clang thread-safety-analysis attribute macros (-Wthread-safety).
//
// The analysis statically proves that every access to a PG_GUARDED_BY(mu)
// member happens while `mu` is held, that PG_REQUIRES(mu) functions are only
// called under the lock, and that scoped guards release what they acquire.
// It needs a *capability-annotated* mutex type — std::mutex carries no
// attributes — which is why sync.hpp wraps the platform mutex in
// phigraph::sync::Mutex and ships annotated guard classes.
//
// The macros expand to clang attributes under clang and to nothing under
// other compilers, so annotated headers build identically everywhere; the
// analysis itself runs in the `lint` preset (PHIGRAPH_THREAD_SAFETY=ON adds
// -Wthread-safety when the compiler is clang).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PG_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#if !defined(PG_THREAD_ANNOTATION)
#define PG_THREAD_ANNOTATION(x)
#endif

/// Class attribute: instances are lockable capabilities (mutexes).
#define PG_CAPABILITY(name) PG_THREAD_ANNOTATION(capability(name))

/// Class attribute: RAII objects that hold a capability for their lifetime.
#define PG_SCOPED_CAPABILITY PG_THREAD_ANNOTATION(scoped_lockable)

/// Member attribute: reads/writes require holding `mu`.
#define PG_GUARDED_BY(mu) PG_THREAD_ANNOTATION(guarded_by(mu))

/// Member attribute: the *pointee* is protected by `mu`.
#define PG_PT_GUARDED_BY(mu) PG_THREAD_ANNOTATION(pt_guarded_by(mu))

/// Function attribute: caller must hold `mu` (exclusively).
#define PG_REQUIRES(...) \
  PG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: acquires `mu` and returns holding it.
#define PG_ACQUIRE(...) \
  PG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function attribute: releases `mu`.
#define PG_RELEASE(...) \
  PG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attribute: acquires `mu` when returning `ret`.
#define PG_TRY_ACQUIRE(ret, ...) \
  PG_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function attribute: caller must NOT hold `mu` (deadlock prevention).
#define PG_EXCLUDES(...) PG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: opt a function out of the analysis (init/destroy
/// paths the checker cannot follow).
#define PG_NO_THREAD_SAFETY_ANALYSIS \
  PG_THREAD_ANNOTATION(no_thread_safety_analysis)
