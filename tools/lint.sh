#!/usr/bin/env bash
# PhiGraph lint gate: grep-based allocation/concurrency bans + clang-tidy.
#
# Usage: tools/lint.sh [--no-tidy]
#
# The grep checks always run and need no toolchain. The clang-tidy pass runs
# when clang-tidy is on PATH (CI installs it; locally it is optional — pass
# --no-tidy to silence the warning). Exit status is non-zero on any
# violation, so CI can use this script directly as a required job.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
violation() {
  echo "lint: $1" >&2
  fail=1
}

# --- grep-based checks -------------------------------------------------------
# 1. No raw array-new anywhere in src/: message storage and per-column state
#    must use aligned_vector / std::make_unique so alignment and ownership
#    are explicit (raw new[] in a SIMD path silently loses the 64-byte
#    alignment the KNC/AVX-512 loads require).
if grep -rnE 'new[[:space:]]+[A-Za-z_][A-Za-z0-9_:<>, ]*\[' \
    --include='*.hpp' --include='*.cpp' src; then
  violation "raw array new[] found; use aligned_vector or std::make_unique"
fi

# 2. No unaligned heap allocation in src/: malloc/calloc/realloc give no
#    alignment guarantee beyond max_align_t — SIMD-resident buffers must go
#    through AlignedAllocator.
if grep -rnE '\b(malloc|calloc|realloc)[[:space:]]*\(' \
    --include='*.hpp' --include='*.cpp' src; then
  violation "raw malloc/calloc/realloc found; use aligned_vector (AlignedAllocator)"
fi

# 3. std::aligned_alloc only inside the allocator that wraps it.
if grep -rn 'aligned_alloc' --include='*.hpp' --include='*.cpp' src \
    | grep -v 'src/common/aligned.hpp'; then
  violation "aligned_alloc outside src/common/aligned.hpp; use aligned_vector"
fi

# 4. No volatile-as-synchronization: cross-thread state must be sync::Atomic
#    (volatile neither orders nor atomicizes accesses).
if grep -rnE '\bvolatile\b' --include='*.hpp' --include='*.cpp' src; then
  violation "volatile found; use sync::Atomic for cross-thread state"
fi

# 5. No raw atomics outside the sync facade: every atomic in production code
#    must go through phigraph::sync (src/common/sync.hpp), which is what lets
#    the PHIGRAPH_MODEL build route it through the model checker. A raw
#    std::atomic or spelled-out std::memory_order is a synchronization point
#    the checker cannot see — a silent verification blind spot.
if grep -rnE 'std::atomic|std::memory_order|#include <atomic>' \
    --include='*.hpp' --include='*.cpp' src \
    | grep -vE '^src/(model/|common/sync\.hpp)'; then
  violation "raw std::atomic / std::memory_order outside src/model/ and src/common/sync.hpp; route it through phigraph::sync so the model checker sees it"
fi

# --- clang-tidy --------------------------------------------------------------
run_tidy=1
for arg in "$@"; do
  [ "$arg" = "--no-tidy" ] && run_tidy=0
done

if [ "$run_tidy" = 1 ]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f build-lint/compile_commands.json ]; then
      cmake --preset lint >/dev/null
    fi
    mapfile -t sources < <(find src -name '*.cpp' | sort)
    echo "lint: clang-tidy over ${#sources[@]} translation units (config: .clang-tidy)"
    if ! clang-tidy -p build-lint --quiet "${sources[@]}"; then
      violation "clang-tidy reported errors"
    fi
  else
    echo "lint: clang-tidy not found on PATH; skipping the static-analysis pass" >&2
    echo "lint: (install clang-tidy or pass --no-tidy to silence this warning)" >&2
  fi
fi

if [ "$fail" = 0 ]; then
  echo "lint: OK"
fi
exit "$fail"
