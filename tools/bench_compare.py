#!/usr/bin/env python3
"""Diff two PhiGraph bench JSON files and fail on perf regressions.

Compares the per-version modeled times (exec_s, comm_s) of a candidate
BENCH_*.json against a baseline, plus — when both files carry per-superstep
"phases" tables (emitted by every bench) — the per-phase host-seconds totals.
Exits non-zero when any version regressed by more than the threshold, so CI
can gate on it; use --warn-only while baselines are still host-dependent.

Usage:
    bench_compare.py baseline.json candidate.json [--threshold PCT]
                     [--phase-threshold PCT] [--min-seconds S] [--warn-only]

Semantics:
  * versions are matched by name; versions present on only one side are
    reported but never fail the comparison (the benches, not this tool,
    decide the version set),
  * a regression is candidate > baseline * (1 + threshold/100),
  * times below --min-seconds are skipped (pure noise at tiny scales),
  * counter totals (msgs_local, edges_scanned, ...) are compared exactly:
    the engines are deterministic given a scale, so a drifting counter means
    the workload changed and the timing comparison is meaningless — that is
    reported as an error, not a regression,
  * a workload counter present on only one side is an error too ("renamed or
    dropped"): silently skipping it would let a counter rename disarm the
    drift check without anyone noticing.
"""

from __future__ import annotations

import argparse
import json
import sys

# Counters that must match exactly for the timing diff to mean anything.
WORKLOAD_COUNTERS = ("active_vertices", "edges_scanned", "msgs_local")

# Host-phase fields totalled per version from the "phases" table.
PHASE_FIELDS = (
    "prepare",
    "generate",
    "exchange",
    "process",
    "update",
    "terminate",
    "checkpoint",
)

# Numeric fields every top-level "failover" object must carry (the recovery
# ladder's outcome: attempts/epochs/rung/lost_supersteps plus wall time). A
# missing or renamed field is a schema error — the emitter and this gate must
# move in lockstep, or a rename would silently disarm the failover check.
FAILOVER_FIELDS = (
    "failed_over",
    "attempts",
    "epochs",
    "rung",
    "lost_supersteps",
    "recovery_ms",
)

# Numeric fields every top-level "serving" object must carry (the multi-query
# serving layer's outcome: batching effectiveness, the edge-scan savings of
# the shared run, and tail latency). Same lockstep rule as FAILOVER_FIELDS:
# a missing or renamed field is a schema error, not a silent skip. The values
# themselves are NOT compared across files — throughput and latency are
# host-noise; only the schema is gated here.
SERVING_FIELDS = (
    "jobs",
    "batches",
    "lanes",
    "jobs_per_sec",
    "edge_scans_sequential",
    "edge_scans_batched",
    "scan_reduction",
    "p50_latency_ms",
    "p99_latency_ms",
    "max_queue_depth",
)

# Numeric fields every top-level "partition" object must carry (the k-way
# streaming vertex-cut comparison: HDRF's replication factor, load imbalance
# and measured cut bytes against the round-robin baseline). Same lockstep
# rule as the failover and serving objects: a missing or renamed field is a
# schema error, not a silent skip. Values are not compared across files —
# partition quality is a property of the scheme, gated by the bench's own
# acceptance checks; only the schema is gated here.
PARTITION_FIELDS = (
    "ranks",
    "replication_factor",
    "load_imbalance",
    "cut_bytes",
    "round_robin_replication_factor",
    "round_robin_cut_bytes",
)


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot load {path}: {e}")


def versions_by_name(doc: dict, path: str) -> dict[str, dict]:
    versions = doc.get("versions")
    if not isinstance(versions, list):
        sys.exit(f"bench_compare: {path} has no 'versions' array")
    out = {}
    for v in versions:
        name = v.get("name")
        if not isinstance(name, str):
            sys.exit(f"bench_compare: {path} has a version without a name")
        out[name] = v
    return out


def check_failover(doc: dict, path: str, rep: "Report") -> None:
    """Validate the top-level "failover" object against FAILOVER_FIELDS.

    Every bench emits the object (all-zero on fault-free runs), so a missing
    object or a missing/non-numeric field is a hard schema error.
    """
    fo = doc.get("failover")
    if not isinstance(fo, dict):
        rep.errors.append(
            f"{path}: top-level 'failover' object is missing or not an "
            f"object (the bench emitter always writes one)"
        )
        return
    for field in FAILOVER_FIELDS:
        if field not in fo:
            rep.errors.append(
                f"{path}: failover field '{field}' is missing — renamed or "
                f"dropped? The failover-schema gate cannot run without it."
            )
        elif not isinstance(fo[field], (int, float)) or isinstance(
            fo[field], bool
        ):
            rep.errors.append(
                f"{path}: failover field '{field}' is {fo[field]!r}, "
                f"not a number"
            )
    erm = fo.get("epoch_recovery_ms")
    if not isinstance(erm, list) or not all(
        isinstance(x, (int, float)) and not isinstance(x, bool) for x in erm
    ):
        rep.errors.append(
            f"{path}: failover field 'epoch_recovery_ms' must be a list of "
            f"numbers (got {erm!r})"
        )


def check_serving(doc: dict, path: str, rep: "Report") -> None:
    """Validate the top-level "serving" object against SERVING_FIELDS.

    Every bench emits the object (all-zero for non-serving benches), so a
    missing object or a missing/non-numeric field is a hard schema error.
    """
    sv = doc.get("serving")
    if not isinstance(sv, dict):
        rep.errors.append(
            f"{path}: top-level 'serving' object is missing or not an "
            f"object (the bench emitter always writes one)"
        )
        return
    for field in SERVING_FIELDS:
        if field not in sv:
            rep.errors.append(
                f"{path}: serving field '{field}' is missing — renamed or "
                f"dropped? The serving-schema gate cannot run without it."
            )
        elif not isinstance(sv[field], (int, float)) or isinstance(
            sv[field], bool
        ):
            rep.errors.append(
                f"{path}: serving field '{field}' is {sv[field]!r}, "
                f"not a number"
            )


def check_partition(doc: dict, path: str, rep: "Report") -> None:
    """Validate the top-level "partition" object against PARTITION_FIELDS.

    Every bench emits the object (all-zero for benches that skip the k-way
    comparison), so a missing object or a missing/non-numeric field is a
    hard schema error.
    """
    pt = doc.get("partition")
    if not isinstance(pt, dict):
        rep.errors.append(
            f"{path}: top-level 'partition' object is missing or not an "
            f"object (the bench emitter always writes one)"
        )
        return
    for field in PARTITION_FIELDS:
        if field not in pt:
            rep.errors.append(
                f"{path}: partition field '{field}' is missing — renamed or "
                f"dropped? The partition-schema gate cannot run without it."
            )
        elif not isinstance(pt[field], (int, float)) or isinstance(
            pt[field], bool
        ):
            rep.errors.append(
                f"{path}: partition field '{field}' is {pt[field]!r}, "
                f"not a number"
            )


def phase_totals(version: dict) -> dict[str, float] | None:
    rows = version.get("phases")
    if not isinstance(rows, list) or not rows:
        return None
    return {f: sum(float(r.get(f, 0.0)) for r in rows) for f in PHASE_FIELDS}


class Report:
    def __init__(self) -> None:
        self.regressions: list[str] = []
        self.errors: list[str] = []
        self.notes: list[str] = []

    def compare_time(
        self,
        label: str,
        base: float,
        cand: float,
        threshold_pct: float,
        min_seconds: float,
    ) -> None:
        if base < min_seconds and cand < min_seconds:
            return
        limit = base * (1.0 + threshold_pct / 100.0)
        delta_pct = 100.0 * (cand - base) / base if base > 0 else float("inf")
        line = f"{label}: {base:.6f}s -> {cand:.6f}s ({delta_pct:+.1f}%)"
        if cand > limit:
            self.regressions.append(line + f"  [> +{threshold_pct:g}% limit]")
        elif cand < base:
            self.notes.append(line + "  [improved]")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="max allowed exec_s/comm_s growth in percent (default 10)",
    )
    ap.add_argument(
        "--phase-threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="max allowed per-phase host-seconds growth in percent "
        "(default 25; host phase times are noisier than modeled times)",
    )
    ap.add_argument(
        "--min-seconds",
        type=float,
        default=1e-4,
        metavar="S",
        help="ignore times where both sides are below S (default 1e-4)",
    )
    ap.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (for noisy/shared CI hosts)",
    )
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    base_vs = versions_by_name(base_doc, args.baseline)
    cand_vs = versions_by_name(cand_doc, args.candidate)

    rep = Report()
    check_failover(base_doc, args.baseline, rep)
    check_failover(cand_doc, args.candidate, rep)
    check_serving(base_doc, args.baseline, rep)
    check_serving(cand_doc, args.candidate, rep)
    check_partition(base_doc, args.baseline, rep)
    check_partition(cand_doc, args.candidate, rep)
    for key in ("figure", "app", "scale"):
        if base_doc.get(key) != cand_doc.get(key):
            rep.errors.append(
                f"{key} mismatch: baseline={base_doc.get(key)!r} "
                f"candidate={cand_doc.get(key)!r}"
            )

    for name in base_vs:
        if name not in cand_vs:
            rep.notes.append(f"version only in baseline: {name}")
    for name in cand_vs:
        if name not in base_vs:
            rep.notes.append(f"version only in candidate: {name}")

    for name in sorted(set(base_vs) & set(cand_vs)):
        b, c = base_vs[name], cand_vs[name]

        bt, ct = b.get("totals", {}), c.get("totals", {})
        for side, totals, path in (
            ("baseline", bt, args.baseline),
            ("candidate", ct, args.candidate),
        ):
            if not isinstance(totals, dict):
                rep.errors.append(
                    f"{name}: 'totals' in the {side} ({path}) is "
                    f"{type(totals).__name__}, not an object"
                )
        if isinstance(bt, dict) and isinstance(ct, dict):
            for counter in WORKLOAD_COUNTERS:
                in_b, in_c = counter in bt, counter in ct
                if in_b != in_c:
                    present = "baseline" if in_b else "candidate"
                    absent = "candidate" if in_b else "baseline"
                    rep.errors.append(
                        f"{name}: counter '{counter}' exists in the {present} "
                        f"but not the {absent} — renamed or dropped? The "
                        f"workload-drift check cannot run without it."
                    )
                elif in_b and bt[counter] != ct[counter]:
                    rep.errors.append(
                        f"{name}: workload drift — {counter} "
                        f"{bt[counter]} -> {ct[counter]} (same scale should "
                        f"give identical counters; timings are not comparable)"
                    )

        def time_field(version: dict, side: str, field: str) -> float:
            raw = version.get(field, 0.0)
            try:
                return float(raw)
            except (TypeError, ValueError):
                rep.errors.append(
                    f"{name}: '{field}' in the {side} is {raw!r}, not a number"
                )
                return 0.0

        rep.compare_time(
            f"{name} exec_s",
            time_field(b, "baseline", "exec_s"),
            time_field(c, "candidate", "exec_s"),
            args.threshold,
            args.min_seconds,
        )
        rep.compare_time(
            f"{name} comm_s",
            time_field(b, "baseline", "comm_s"),
            time_field(c, "candidate", "comm_s"),
            args.threshold,
            args.min_seconds,
        )

        bp, cp = phase_totals(b), phase_totals(c)
        if bp is not None and cp is not None:
            for field in PHASE_FIELDS:
                rep.compare_time(
                    f"{name} phase:{field}",
                    bp[field],
                    cp[field],
                    args.phase_threshold,
                    args.min_seconds,
                )

    for line in rep.notes:
        print(f"  note: {line}")
    for line in rep.errors:
        print(f"  ERROR: {line}")
    for line in rep.regressions:
        print(f"  REGRESSION: {line}")

    if rep.errors:
        print(f"bench_compare: {len(rep.errors)} error(s)")
        return 2
    if rep.regressions:
        print(f"bench_compare: {len(rep.regressions)} regression(s)")
        if args.warn_only:
            print("bench_compare: --warn-only set; exiting 0")
            return 0
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
