// End-to-end engine tests: every application, every execution scheme, both
// device SIMD profiles, single-device and heterogeneous — all validated
// against the sequential reference (same BSP semantics) and, where one
// exists, against an independent classical algorithm.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/apps/bfs.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/reference.hpp"
#include "src/apps/semiclustering.hpp"
#include "src/apps/sssp.hpp"
#include "src/apps/toposort.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/graph/paper_example.hpp"

namespace {

using namespace phigraph;
using core::EngineConfig;
using core::ExecMode;

struct ModeParam {
  ExecMode mode;
  int simd_bytes;
  bool use_simd;
};

std::string mode_name(const ::testing::TestParamInfo<ModeParam>& info) {
  const auto& p = info.param;
  std::string s = core::exec_mode_name(p.mode);
  s += p.simd_bytes == 64 ? "_MIC" : "_CPU";
  if (!p.use_simd) s += "_novec";
  return s;
}

EngineConfig make_config(const ModeParam& p) {
  EngineConfig cfg;
  cfg.mode = p.mode;
  cfg.simd_bytes = p.simd_bytes;
  cfg.use_simd = p.use_simd;
  cfg.threads = 4;
  cfg.movers = 2;
  cfg.sched_chunk = 16;
  cfg.queue_capacity = 256;
  return cfg;
}

graph::Csr test_graph() {
  auto g = gen::pokec_like(/*n=*/3000, /*m=*/30000, /*seed=*/7);
  gen::add_random_weights(g, 11);
  return g;
}

class EngineModes : public ::testing::TestWithParam<ModeParam> {};

TEST_P(EngineModes, SsspMatchesReferenceAndDijkstra) {
  const auto g = test_graph();
  const apps::Sssp prog(0);
  auto res = core::run_single(g, prog, make_config(GetParam()));

  const auto ref = apps::reference_run(g, prog);
  const auto dij = apps::classic_dijkstra(g, 0);
  ASSERT_EQ(res.values.size(), ref.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(res.values[v], ref[v]) << "vertex " << v;
    if (dij[v] == apps::Sssp::kInfinity) {
      EXPECT_EQ(res.values[v], apps::Sssp::kInfinity);
    } else {
      EXPECT_NEAR(res.values[v], dij[v], 1e-3f * (1.0f + dij[v]));
    }
  }
}

TEST_P(EngineModes, BfsMatchesClassic) {
  const auto g = test_graph();
  const apps::Bfs prog(0);
  auto res = core::run_single(g, prog, make_config(GetParam()));
  const auto classic = apps::classic_bfs(g, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.values[v], classic[v]) << "vertex " << v;
}

TEST_P(EngineModes, PageRankMatchesClassic) {
  const auto g = test_graph();
  const apps::PageRank prog;
  auto cfg = make_config(GetParam());
  cfg.max_supersteps = 15;
  auto res = core::run_single(g, prog, cfg);
  const auto classic = apps::classic_pagerank(g, 15);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(res.values[v], classic[v], 1e-3f * (1.0f + classic[v]))
        << "vertex " << v;
}

TEST_P(EngineModes, TopoSortMatchesKahnLevels) {
  const auto g = gen::dag_like(/*n=*/2000, /*m=*/20000, /*seed=*/3);
  const apps::TopoSort prog;
  auto res = core::run_single(g, prog, make_config(GetParam()));
  const auto levels = apps::classic_topo_levels(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(res.values[v].remaining, 0) << "vertex " << v;
    EXPECT_EQ(res.values[v].order, levels[v]) << "vertex " << v;
  }
  // The orders form a valid topological order: every edge increases it.
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u))
      EXPECT_LT(res.values[u].order, res.values[v].order);
}

TEST_P(EngineModes, SemiClusteringMatchesReference) {
  const auto g = gen::dblp_like(/*n=*/400, /*m=*/1200, /*seed=*/5);
  const apps::SemiClustering prog;
  auto cfg = make_config(GetParam());
  cfg.max_supersteps = 6;
  auto res = core::run_single(g, prog, cfg);
  const auto ref = apps::reference_run(g, prog, 6);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(res.values[v].count, ref[v].count) << "vertex " << v;
    for (std::uint32_t c = 0; c < ref[v].count; ++c) {
      EXPECT_TRUE(res.values[v].clusters[c].same_members(ref[v].clusters[c]))
          << "vertex " << v << " cluster " << c;
      EXPECT_FLOAT_EQ(res.values[v].clusters[c].score, ref[v].clusters[c].score);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, EngineModes,
    ::testing::Values(ModeParam{ExecMode::kOmpStyle, 16, false},
                      ModeParam{ExecMode::kLocking, 16, true},
                      ModeParam{ExecMode::kLocking, 64, true},
                      ModeParam{ExecMode::kLocking, 64, false},
                      ModeParam{ExecMode::kPipelining, 16, true},
                      ModeParam{ExecMode::kPipelining, 64, true}),
    mode_name);

// ---------------------------------------------------------------------------
// Heterogeneous CPU+MIC runs.
// ---------------------------------------------------------------------------

std::vector<Device> round_robin_owner(vid_t n, int a, int b) {
  std::vector<Device> owner(n);
  for (vid_t v = 0; v < n; ++v)
    owner[v] = (static_cast<int>(v % static_cast<vid_t>(a + b)) < a)
                   ? Device::Cpu
                   : Device::Mic;
  return owner;
}

EngineConfig cpu_cfg() {
  EngineConfig c;
  c.mode = ExecMode::kLocking;
  c.simd_bytes = simd::kCpuSimdBytes;
  c.threads = 3;
  c.sched_chunk = 16;
  return c;
}
EngineConfig mic_cfg() {
  EngineConfig c;
  c.mode = ExecMode::kPipelining;
  c.simd_bytes = simd::kMicSimdBytes;
  c.threads = 3;
  c.movers = 2;
  c.sched_chunk = 16;
  return c;
}

TEST(HeteroEngine, SsspMatchesReference) {
  const auto g = test_graph();
  const apps::Sssp prog(0);
  core::HeteroEngine<apps::Sssp> he(g, round_robin_owner(g.num_vertices(), 1, 1),
                                    prog, cpu_cfg(), mic_cfg());
  auto res = he.run();
  const auto ref = apps::reference_run(g, prog);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.global_values[v], ref[v]) << "vertex " << v;
}

TEST(HeteroEngine, PageRankMatchesClassic) {
  const auto g = test_graph();
  const apps::PageRank prog;
  auto cc = cpu_cfg();
  auto mc = mic_cfg();
  cc.max_supersteps = mc.max_supersteps = 10;
  core::HeteroEngine<apps::PageRank> he(
      g, round_robin_owner(g.num_vertices(), 3, 5), prog, cc, mc);
  auto res = he.run();
  EXPECT_EQ(res.cpu.supersteps, 10);
  EXPECT_EQ(res.mic.supersteps, 10);
  const auto classic = apps::classic_pagerank(g, 10);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(res.global_values[v], classic[v], 1e-3f * (1.0f + classic[v]));
}

TEST(HeteroEngine, BfsMatchesClassicUnderSkewedPartition) {
  const auto g = test_graph();
  const apps::Bfs prog(5);
  core::HeteroEngine<apps::Bfs> he(g, round_robin_owner(g.num_vertices(), 1, 4),
                                   prog, cpu_cfg(), mic_cfg());
  auto res = he.run();
  const auto classic = apps::classic_bfs(g, 5);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.global_values[v], classic[v]) << "vertex " << v;
}

TEST(HeteroEngine, TopoSortMatchesKahn) {
  const auto g = gen::dag_like(1500, 15000, 9);
  const apps::TopoSort prog;
  core::HeteroEngine<apps::TopoSort> he(
      g, round_robin_owner(g.num_vertices(), 1, 1), prog, cpu_cfg(), mic_cfg());
  auto res = he.run();
  const auto levels = apps::classic_topo_levels(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.global_values[v].order, levels[v]);
}

TEST(HeteroEngine, CommunicationCountersAreConsistent) {
  const auto g = test_graph();
  const apps::Sssp prog(0);
  core::HeteroEngine<apps::Sssp> he(g, round_robin_owner(g.num_vertices(), 1, 1),
                                    prog, cpu_cfg(), mic_cfg());
  auto res = he.run();
  // What one device sends, the other receives, superstep by superstep.
  ASSERT_EQ(res.cpu.trace.size(), res.mic.trace.size());
  for (std::size_t s = 0; s < res.cpu.trace.size(); ++s) {
    EXPECT_EQ(res.cpu.trace[s].bytes_sent, res.mic.trace[s].bytes_received);
    EXPECT_EQ(res.mic.trace[s].bytes_sent, res.cpu.trace[s].bytes_received);
  }
}

// ---------------------------------------------------------------------------
// Counter invariants on single-device runs.
// ---------------------------------------------------------------------------

TEST(EngineCounters, MessageConservationAndSimdWork) {
  const auto g = test_graph();
  const apps::Sssp prog(0);
  EngineConfig cfg = make_config({ExecMode::kLocking, 64, true});
  // Push pinned: these are the push path's CSB conservation laws (a pull
  // superstep updates vertices without allocating columns).
  cfg.direction_mode = core::DirectionMode::kForcePush;
  core::DeviceEngine<apps::Sssp> engine(core::LocalGraph::whole(g), prog, cfg);
  auto run = engine.run();

  const auto t = metrics::totals(run.trace);
  // Every scanned edge produced exactly one message, all of them local.
  EXPECT_EQ(t.edges_scanned, t.msgs_local);
  EXPECT_EQ(t.msgs_remote, 0u);
  EXPECT_EQ(t.msgs_received, 0u);
  // Each distinct destination was updated exactly once per superstep.
  EXPECT_EQ(t.columns_allocated, t.verts_updated);
  // Conflicts + allocations account for every local message.
  EXPECT_EQ(t.column_conflicts + t.columns_allocated, t.msgs_local);
  // SIMD work happened (MIC profile, reducible app).
  EXPECT_GT(t.vector_rows, 0u);
  EXPECT_EQ(t.scalar_msgs, 0u);
}

TEST(EngineCounters, PipeliningMovesEveryLocalMessageThroughQueues) {
  const auto g = test_graph();
  const apps::Sssp prog(0);
  EngineConfig cfg = make_config({ExecMode::kPipelining, 64, true});
  core::DeviceEngine<apps::Sssp> engine(core::LocalGraph::whole(g), prog, cfg);
  auto run = engine.run();
  const auto t = metrics::totals(run.trace);
  EXPECT_EQ(t.queue_pushes, t.msgs_local);
  EXPECT_EQ(t.edges_scanned, t.msgs_local);
}

TEST(EngineCounters, NovecUsesScalarPathOnly) {
  const auto g = test_graph();
  const apps::Sssp prog(0);
  EngineConfig cfg = make_config({ExecMode::kLocking, 64, false});
  core::DeviceEngine<apps::Sssp> engine(core::LocalGraph::whole(g), prog, cfg);
  auto run = engine.run();
  const auto t = metrics::totals(run.trace);
  EXPECT_EQ(t.vector_rows, 0u);
  EXPECT_GT(t.scalar_msgs, 0u);
}

TEST(EngineCounters, PaperExampleSuperstepTrace) {
  // Run SSSP from vertex 6 on the paper's 16-vertex graph and check the
  // first superstep's counters by hand: vertex 6 has one out-edge (to 2).
  auto g = graph::paper_example_graph();
  std::vector<float> w(g.num_edges(), 1.0f);
  g.set_edge_values(std::move(w));
  const apps::Sssp prog(6);
  EngineConfig cfg = make_config({ExecMode::kLocking, 16, true});
  core::DeviceEngine<apps::Sssp> engine(core::LocalGraph::whole(g), prog, cfg);
  auto run = engine.run();
  ASSERT_GE(run.trace.size(), 1u);
  EXPECT_EQ(run.trace[0].active_vertices, 1u);
  EXPECT_EQ(run.trace[0].msgs_local, 1u);
  EXPECT_EQ(run.trace[0].columns_allocated, 1u);
  EXPECT_EQ(run.trace[0].verts_updated, 1u);
}

}  // namespace
