// Inter-device communication tests: pairwise exchange (including the
// deadline/poison fault-tolerance protocol) and the combining remote
// message buffer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <numeric>
#include <thread>
#include <vector>

#include "src/comm/exchange.hpp"
#include "src/comm/remote_buffer.hpp"
#include "src/common/rng.hpp"
#include "src/fault/fault.hpp"
#include "tests/watchdog.hpp"

namespace {

using namespace phigraph;

TEST(Exchange, SwapsValuesBothWays) {
  comm::Exchange<int> ex;
  int got0 = 0, got1 = 0;
  std::thread t1([&] { got1 = ex.exchange(1, 111); });
  got0 = ex.exchange(0, 222);
  t1.join();
  EXPECT_EQ(got0, 111);
  EXPECT_EQ(got1, 222);
}

TEST(Exchange, ManyRoundsStayPaired) {
  comm::Exchange<int> ex;
  constexpr int kRounds = 2000;
  std::thread t1([&] {
    for (int r = 0; r < kRounds; ++r)
      ASSERT_EQ(ex.exchange(1, r * 2 + 1), r * 2);  // receives rank 0's value
  });
  for (int r = 0; r < kRounds; ++r)
    ASSERT_EQ(ex.exchange(0, r * 2), r * 2 + 1);  // receives rank 1's value
  t1.join();
}

TEST(Exchange, MovesLargePayloadsWithoutLoss) {
  comm::Exchange<std::vector<int>> ex;
  std::vector<int> a(10000);
  std::vector<int> b(5000);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 100000);
  std::vector<int> got0, got1;
  std::thread t1([&] { got1 = ex.exchange(1, std::move(b)); });
  got0 = ex.exchange(0, std::move(a));
  t1.join();
  EXPECT_EQ(got0.size(), 5000u);
  EXPECT_EQ(got0.front(), 100000);
  EXPECT_EQ(got1.size(), 10000u);
  EXPECT_EQ(got1.back(), 9999);
}

// ---- deadline + poison protocol ---------------------------------------------

using comm::ExchangeStatus;
using std::chrono::milliseconds;

fault::FaultReport test_report(int rank) {
  fault::FaultReport r;
  r.rank = rank;
  r.superstep = 3;
  r.phase = "generate";
  r.what = "boom";
  return r;
}

TEST(ExchangeFault, PoisonBeforeDepositFailsImmediately) {
  comm::Exchange<int> ex;
  ex.poison(1, test_report(1));
  // A long deadline must not matter: the poison check precedes the deposit.
  const auto r = ex.exchange_for(0, 7, milliseconds(60000));
  EXPECT_EQ(r.status, ExchangeStatus::kPeerFailed);
  EXPECT_EQ(r.fault.rank, 1);
  EXPECT_EQ(r.fault.superstep, 3);
  EXPECT_EQ(r.fault.what, "boom");
}

TEST(ExchangeFault, PoisonWakesARankWaitingForItsPeer) {
  comm::Exchange<int> ex;
  std::thread failer([&] {
    std::this_thread::sleep_for(milliseconds(50));
    ex.poison(1, test_report(1));
  });
  // Deposits, then blocks waiting for rank 1 — which dies instead of
  // arriving. The waiter must wake on the poison, well before the deadline.
  const auto r = ex.exchange_for(0, 7, milliseconds(60000));
  failer.join();
  EXPECT_EQ(r.status, ExchangeStatus::kPeerFailed);
  EXPECT_EQ(r.fault.rank, 1);
}

TEST(ExchangeFault, PoisonAfterConsumedRoundNeverReArms) {
  comm::Exchange<int> ex;
  // One healthy round completes...
  std::thread peer([&] {
    const auto r = ex.exchange_for(1, 11, milliseconds(60000));
    ASSERT_EQ(r.status, ExchangeStatus::kOk);
    EXPECT_EQ(r.value, 22);
  });
  const auto r0 = ex.exchange_for(0, 22, milliseconds(60000));
  peer.join();
  ASSERT_EQ(r0.status, ExchangeStatus::kOk);
  EXPECT_EQ(r0.value, 11);
  // ...then rank 0 dies. Every later call, from either rank, fails fast —
  // retries cannot resurrect the channel.
  ex.poison(0, test_report(0));
  for (int round = 0; round < 3; ++round) {
    const auto r1 = ex.exchange_for(1, 33, milliseconds(60000));
    EXPECT_EQ(r1.status, ExchangeStatus::kPeerFailed);
    EXPECT_EQ(r1.fault.rank, 0);
    const auto r2 = ex.exchange_for(0, 44, milliseconds(60000));
    EXPECT_EQ(r2.status, ExchangeStatus::kPeerFailed);
  }
}

TEST(ExchangeFault, FirstPoisonReportWins) {
  comm::Exchange<int> ex;
  ex.poison(0, test_report(0));
  ex.poison(1, test_report(1));
  EXPECT_TRUE(ex.poisoned());
  EXPECT_EQ(ex.fault().rank, 0);
}

TEST(ExchangeFault, TimeoutRetractsTheDepositAndTheChannelStaysUsable) {
  comm::Exchange<int> ex;
  // Nobody shows up: rank 0 times out and its deposit is retracted.
  const auto r = ex.exchange_for(0, 5, milliseconds(20));
  EXPECT_EQ(r.status, ExchangeStatus::kTimeout);
  EXPECT_FALSE(ex.poisoned());
  // A later healthy round pairs the fresh values, not the stale deposit.
  std::thread peer([&] {
    const auto rr = ex.exchange_for(1, 2, milliseconds(60000));
    ASSERT_EQ(rr.status, ExchangeStatus::kOk);
    EXPECT_EQ(rr.value, 1);
  });
  const auto rr = ex.exchange_for(0, 1, milliseconds(60000));
  peer.join();
  ASSERT_EQ(rr.status, ExchangeStatus::kOk);
  EXPECT_EQ(rr.value, 2);
}

TEST(ExchangeFault, LegacyBlockingExchangeDiesOnAPoisonedChannel) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  comm::Exchange<int> ex;
  ex.poison(1, test_report(1));
  EXPECT_DEATH(ex.exchange(0, 1), "dead channel");
}

TEST(RemoteBuffer, CombinesPerDestination) {
  comm::RemoteBuffer<float> buf(100);
  auto min_combine = [](float a, float b) { return std::min(a, b); };
  buf.deposit(7, 3.0f, min_combine);
  buf.deposit(7, 1.0f, min_combine);
  buf.deposit(7, 2.0f, min_combine);
  buf.deposit(42, 9.0f, min_combine);
  EXPECT_EQ(buf.touched_count(), 2u);

  std::map<vid_t, float> got;
  buf.drain([&](vid_t dst, float v) { got[dst] = v; });
  EXPECT_EQ(got.size(), 2u);
  EXPECT_FLOAT_EQ(got[7], 1.0f);
  EXPECT_FLOAT_EQ(got[42], 9.0f);

  // Drained: buffer is empty and reusable.
  EXPECT_EQ(buf.touched_count(), 0u);
  buf.deposit(7, 5.0f, min_combine);
  buf.drain([&](vid_t dst, float v) {
    EXPECT_EQ(dst, 7u);
    EXPECT_FLOAT_EQ(v, 5.0f);  // no stale combine with the previous round
  });
}

TEST(RemoteBuffer, ConcurrentDepositsAreExact) {
  constexpr vid_t kVerts = 64;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  comm::RemoteBuffer<std::uint64_t> buf(kVerts);
  auto sum = [](std::uint64_t a, std::uint64_t b) { return a + b; };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i)
        buf.deposit(static_cast<vid_t>(rng.below(kVerts)), 1u, sum);
    });
  for (auto& th : threads) th.join();

  std::uint64_t total = 0;
  buf.drain([&](vid_t, std::uint64_t v) { total += v; });
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(RemoteBuffer, ConcurrentOverlappingDepositsAreExactPerDestination) {
  // Stress the sharded touched lists: many threads hammer a small hot set of
  // overlapping destinations plus a cold tail. Per-destination combined sums
  // and the distinct-destination count must both be exact.
  constexpr vid_t kVerts = 4096;
  constexpr vid_t kHot = 16;  // every thread hits all of these
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  comm::RemoteBuffer<std::uint64_t> buf(kVerts, /*shards=*/8);
  auto sum = [](std::uint64_t a, std::uint64_t b) { return a + b; };

  std::vector<std::map<vid_t, std::uint64_t>> expected(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) * 97 + 13);
      for (int i = 0; i < kPerThread; ++i) {
        // 50% of traffic funnels into the hot set (overlapping across all
        // threads); the rest scatters — both shard-list paths get exercised.
        const vid_t dst = (i % 2 == 0)
                              ? static_cast<vid_t>(rng.below(kHot))
                              : static_cast<vid_t>(rng.below(kVerts));
        const std::uint64_t val = rng.below(1000) + 1;
        buf.deposit(dst, val, sum);
        expected[t][dst] += val;
      }
    });
  for (auto& th : threads) th.join();

  std::map<vid_t, std::uint64_t> want;
  for (const auto& m : expected)
    for (const auto& [dst, v] : m) want[dst] += v;

  // touched_count is exact: one entry per distinct destination, no dupes.
  EXPECT_EQ(buf.touched_count(), want.size());
  std::size_t per_shard_total = 0;
  for (std::size_t s = 0; s < buf.num_shards(); ++s)
    per_shard_total += buf.shard_touched_count(s);
  EXPECT_EQ(per_shard_total, want.size());

  std::map<vid_t, std::uint64_t> got;
  buf.drain([&](vid_t dst, std::uint64_t v) {
    EXPECT_TRUE(got.emplace(dst, v).second) << "duplicate drain of " << dst;
  });
  EXPECT_EQ(got, want);

  // Fully drained and reusable.
  EXPECT_EQ(buf.touched_count(), 0u);
  buf.deposit(3, 7u, sum);
  buf.drain([&](vid_t dst, std::uint64_t v) {
    EXPECT_EQ(dst, 3u);
    EXPECT_EQ(v, 7u);
  });
}

// ---- AllToAll timeout / retraction ------------------------------------------

namespace {
// One rank (the laggard) sits out while the others run a deadline-bounded
// round. The laggard only moves once both prompt ranks have observed their
// timeout, so the scenario is deterministic: at the moment a prompt rank
// times out, the laggard's deposit round is provably behind and the timeout
// must blame it — not a peer whose deposit was merely retracted.
struct LaggardRound {
  static constexpr int kRanks = 3;
  static constexpr int kLaggard = 2;

  comm::AllToAll<int> x{kRanks};
  std::atomic<int> prompt_timeouts{0};
  std::array<comm::AllToAll<int>::Result, kRanks> results;

  static std::vector<int> payload(int rank, int salt) {
    std::vector<int> out(kRanks, 0);
    for (int dst = 0; dst < kRanks; ++dst) out[dst] = salt + 10 * rank + dst;
    return out;
  }

  void run(std::uint64_t seed) {
    Rng rng(seed);
    const auto jitter0 = std::chrono::milliseconds(rng.below(8));
    const auto jitter1 = std::chrono::milliseconds(rng.below(8));
    std::vector<std::thread> threads;
    for (int rank = 0; rank < kRanks - 1; ++rank) {
      const auto jitter = rank == 0 ? jitter0 : jitter1;
      threads.emplace_back([this, rank, jitter] {
        std::this_thread::sleep_for(jitter);
        results[rank] = x.exchange_for(rank, payload(rank, 100),
                                       std::chrono::milliseconds(300));
        prompt_timeouts.fetch_add(1, std::memory_order_release);
      });
    }
    threads.emplace_back([this] {
      while (prompt_timeouts.load(std::memory_order_acquire) <
             kRanks - 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      // Every prompt deposit was retracted by now; this late round finds an
      // empty matrix and must itself time out rather than hang.
      results[kLaggard] = x.exchange_for(kLaggard, payload(kLaggard, 100),
                                         std::chrono::milliseconds(50));
    });
    for (auto& th : threads) th.join();
  }
};
}  // namespace

TEST(AllToAllTimeout, RetractionLeavesMatrixReusableAndBlamesTheLaggard) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    LaggardRound round;
    round.run(seed);

    // Both prompt ranks timed out and named the laggard — not each other,
    // even though each other's deposits were retracted and look absent.
    for (int rank = 0; rank < LaggardRound::kRanks - 1; ++rank) {
      EXPECT_EQ(round.results[rank].status, comm::ExchangeStatus::kTimeout)
          << "rank " << rank;
      EXPECT_EQ(round.results[rank].fault.rank, LaggardRound::kLaggard)
          << "rank " << rank << " blamed the wrong peer";
    }
    EXPECT_EQ(round.results[LaggardRound::kLaggard].status,
              comm::ExchangeStatus::kTimeout);

    // The retracted matrix is fully reusable: a clean round with every rank
    // present must succeed and deliver exactly the fresh values.
    std::vector<std::thread> threads;
    std::array<comm::AllToAll<int>::Result, LaggardRound::kRanks> clean;
    for (int rank = 0; rank < LaggardRound::kRanks; ++rank)
      threads.emplace_back([&, rank] {
        clean[rank] = round.x.exchange_for(rank,
                                           LaggardRound::payload(rank, 500),
                                           std::chrono::seconds(30));
      });
    for (auto& th : threads) th.join();
    for (int rank = 0; rank < LaggardRound::kRanks; ++rank) {
      ASSERT_EQ(clean[rank].status, comm::ExchangeStatus::kOk)
          << "rank " << rank << " after retraction";
      for (int src = 0; src < LaggardRound::kRanks; ++src) {
        if (src == rank) continue;
        EXPECT_EQ(clean[rank].values[src], 500 + 10 * src + rank)
            << "stale or lost slot " << src << " -> " << rank;
      }
    }
  }
}

TEST(AllToAllTimeout, PoisonAfterTimeoutNamesTheLaggardEverywhere) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    LaggardRound round;
    round.run(seed);
    ASSERT_EQ(round.results[0].status, comm::ExchangeStatus::kTimeout);

    // Rank 0 escalates its timeout verdict into poison. The report carries
    // the culprit its own timeout_result named — the laggard.
    fault::FaultReport report;
    report.rank = round.results[0].fault.rank;
    report.superstep = 7;
    report.phase = "exchange";
    report.what = "peer missed the all-to-all deadline";
    round.x.poison(0, report);
    EXPECT_TRUE(round.x.poisoned());

    // Every later call from any rank — including the laggard itself — fails
    // fast with the same diagnosis; the channel never re-arms.
    for (int rank = 0; rank < LaggardRound::kRanks; ++rank) {
      auto r = round.x.exchange_for(rank, LaggardRound::payload(rank, 900),
                                    std::chrono::seconds(30));
      EXPECT_EQ(r.status, comm::ExchangeStatus::kPeerFailed) << "rank " << rank;
      EXPECT_EQ(r.fault.rank, LaggardRound::kLaggard) << "rank " << rank;
      EXPECT_EQ(r.fault.superstep, 7) << "rank " << rank;
    }
  }
}

TEST(RemoteBuffer, ParallelShardDrainsPartitionTheDestinations) {
  // drain_shard is safe to run concurrently for different shards: drain all
  // shards from distinct threads and verify the union is exact and disjoint.
  constexpr vid_t kVerts = 2048;
  comm::RemoteBuffer<std::uint64_t> buf(kVerts, /*shards=*/16);
  auto sum = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  std::uint64_t want_total = 0;
  for (vid_t v = 0; v < kVerts; v += 3) {
    buf.deposit(v, v + 1, sum);
    buf.deposit(v, 1, sum);
    want_total += v + 2;
  }

  std::vector<std::vector<std::pair<vid_t, std::uint64_t>>> per_shard(
      buf.num_shards());
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < buf.num_shards(); ++s)
    threads.emplace_back([&, s] {
      buf.drain_shard(s, [&](vid_t dst, std::uint64_t v) {
        per_shard[s].emplace_back(dst, v);
      });
    });
  for (auto& th : threads) th.join();

  std::map<vid_t, std::uint64_t> got;
  for (const auto& shard : per_shard)
    for (const auto& [dst, v] : shard)
      EXPECT_TRUE(got.emplace(dst, v).second) << "dst in two shards: " << dst;
  std::uint64_t got_total = 0;
  for (const auto& [dst, v] : got) {
    EXPECT_EQ(v, static_cast<std::uint64_t>(dst) + 2);
    got_total += v;
  }
  EXPECT_EQ(got.size(), (kVerts + 2) / 3);
  EXPECT_EQ(got_total, want_total);
}

}  // namespace
