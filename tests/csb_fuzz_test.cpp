// CSB fuzz: randomized insert/reset cycles checked against a dense mirror.
//
// The structured csb_test pins the paper's worked example and a handful of
// property cases; this battery instead drives the buffer with hundreds of
// random layouts (lanes, k, column mode, skewed in-degrees with zero-degree
// holes) and random insertion bursts, and after every burst rebuilds the
// full vertex -> message multiset from the raw storage. Any lost, duplicated
// or misrouted message — or a broken redirection/condensation map — shows up
// as a mirror mismatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/buffer/csb.hpp"
#include "src/common/rng.hpp"

namespace {

using namespace phigraph;
using buffer::ColumnMode;
using buffer::Csb;
using buffer::InsertStats;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr int kLayouts = 12;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr int kLayouts = 12;
#else
constexpr int kLayouts = 40;
#endif
#else
constexpr int kLayouts = 40;
#endif

// Random in-degree vector: mostly small degrees, some zero-degree holes and
// a few heavy hitters, so groups condense to very different column counts.
std::vector<vid_t> random_degrees(Rng& rng, vid_t n) {
  std::vector<vid_t> deg(n);
  for (vid_t v = 0; v < n; ++v) {
    const auto roll = rng.below(10);
    if (roll == 0) {
      deg[v] = 0;
    } else if (roll == 1) {
      deg[v] = 20 + static_cast<vid_t>(rng.below(60));  // heavy hitter
    } else {
      deg[v] = 1 + static_cast<vid_t>(rng.below(6));
    }
  }
  return deg;
}

// Message value encoding a unique sequence number: multiset comparison then
// detects loss, duplication and misrouting, not just count drift.
using Mirror = std::vector<std::vector<std::int64_t>>;

// Rebuild the vertex -> messages map from the buffer's raw storage.
Mirror drain(const Csb<std::int64_t>& csb) {
  Mirror out(csb.num_vertices());
  const vid_t width = csb.group_width();
  for (std::size_t g = 0; g < csb.num_groups(); ++g) {
    for (vid_t col = 0; col < width; ++col) {
      const vid_t v = csb.column_vertex(g, col);
      if (v == kInvalidVertex) continue;
      const std::uint32_t rows = csb.column_count(g, col);
      const int a = static_cast<int>(col) / csb.lanes();
      const int lane = static_cast<int>(col) % csb.lanes();
      const std::int64_t* base = csb.array_base(g, a);
      for (std::uint32_t r = 0; r < rows; ++r)
        out[v].push_back(base[static_cast<std::size_t>(r) * csb.lanes() + lane]);
    }
  }
  for (auto& msgs : out) std::sort(msgs.begin(), msgs.end());
  return out;
}

void expect_equal(const Mirror& got, const Mirror& want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v)
    ASSERT_EQ(got[v], want[v]) << what << " vertex " << v;
}

TEST(CsbFuzz, RandomInsertsMatchDenseMirrorAcrossResetCycles) {
  Rng rng(0xc5bf);
  for (int layout = 0; layout < kLayouts; ++layout) {
    const vid_t n = 16 + static_cast<vid_t>(rng.below(500));
    const auto deg = random_degrees(rng, n);
    Csb<std::int64_t>::Config cfg;
    cfg.lanes = 1 << rng.below(5);                       // 1..16
    cfg.k = 1 + static_cast<int>(rng.below(3));          // 1..3
    cfg.mode = rng.below(2) ? ColumnMode::kDynamic : ColumnMode::kOneToOne;
    Csb<std::int64_t> csb(deg, cfg);

    // Redirection is a bijection onto the degree-sorted positions.
    std::vector<bool> hit(n, false);
    for (vid_t v = 0; v < n; ++v) {
      const vid_t pos = csb.redirection(v);
      ASSERT_LT(pos, n);
      ASSERT_FALSE(hit[pos]) << "two vertices share position " << pos;
      hit[pos] = true;
      ASSERT_EQ(csb.sorted_vertex(pos), v);
    }
    // ...and positions are sorted by descending degree (the paper's
    // condensation order), so group capacities shrink monotonically.
    for (vid_t p = 1; p < n; ++p)
      ASSERT_GE(deg[csb.sorted_vertex(p - 1)], deg[csb.sorted_vertex(p)]);

    std::int64_t seq = 0;
    const int cycles = 1 + static_cast<int>(rng.below(4));
    for (int cycle = 0; cycle < cycles; ++cycle) {
      // Every superstep the engine resets only the dirty groups; mimic that
      // exactly — resetting clean groups too would hide a stale-count bug.
      for (std::size_t i = 0; i < csb.num_dirty_groups(); ++i)
        csb.reset_group(csb.dirty_group(i));
      csb.clear_dirty();

      Mirror want(n);
      InsertStats stats;
      std::uint64_t inserted = 0;
      // Insert up to each destination's declared capacity (in-degree plus
      // the +1 remote-combine headroom the buffer allocates). Degree-0
      // vertices have no storage at all — the engine never sends to them.
      for (vid_t v = 0; v < n; ++v) {
        const std::uint64_t burst =
            deg[v] == 0 ? 0 : rng.below(deg[v] + 2u);
        for (std::uint64_t i = 0; i < burst; ++i) {
          if (rng.below(2)) {
            csb.insert(v, seq, stats);
          } else {
            csb.insert_owned(v, seq, stats);  // single-threaded: always safe
          }
          want[v].push_back(seq++);
          ++inserted;
        }
      }
      ASSERT_EQ(stats.inserted, inserted);

      expect_equal(drain(csb), want, "cycle drain");

      // Dirty groups are exactly the groups of touched destinations.
      std::vector<bool> want_dirty(csb.num_groups(), false);
      for (vid_t v = 0; v < n; ++v)
        if (!want[v].empty())
          want_dirty[csb.redirection(v) / csb.group_width()] = true;
      std::vector<bool> got_dirty(csb.num_groups(), false);
      for (std::size_t i = 0; i < csb.num_dirty_groups(); ++i) {
        ASSERT_FALSE(got_dirty[csb.dirty_group(i)]) << "group listed twice";
        got_dirty[csb.dirty_group(i)] = true;
      }
      ASSERT_EQ(got_dirty, want_dirty);

      // Conservation: occupied column counts sum to the insert count.
      std::uint64_t occupied = 0;
      for (std::size_t g = 0; g < csb.num_groups(); ++g)
        for (vid_t col = 0; col < csb.group_width(); ++col)
          if (csb.column_vertex(g, col) != kInvalidVertex)
            occupied += csb.column_count(g, col);
      ASSERT_EQ(occupied, inserted);
    }

    // A full reset leaves no messages and no dirty groups behind.
    csb.reset_all();
    ASSERT_EQ(csb.num_dirty_groups(), 0u);
    expect_equal(drain(csb), Mirror(n), "post-reset drain");
  }
}

// Dynamic column allocation must keep columns packed: within a group the
// first col_offset columns are occupied and everything after is untouched.
TEST(CsbFuzz, DynamicModePacksColumnsLeft) {
  Rng rng(0xdc01);
  for (int layout = 0; layout < kLayouts / 4; ++layout) {
    const vid_t n = 32 + static_cast<vid_t>(rng.below(200));
    const auto deg = random_degrees(rng, n);
    Csb<std::int64_t>::Config cfg;
    cfg.lanes = 4;
    cfg.k = 2;
    cfg.mode = ColumnMode::kDynamic;
    Csb<std::int64_t> csb(deg, cfg);

    InsertStats stats;
    std::int64_t seq = 0;
    for (vid_t v = 0; v < n; ++v)
      if (deg[v] > 0 && rng.below(2)) csb.insert(v, seq++, stats);

    for (std::size_t g = 0; g < csb.num_groups(); ++g) {
      bool gap_seen = false;
      for (vid_t col = 0; col < csb.group_width(); ++col) {
        const bool used = csb.column_vertex(g, col) != kInvalidVertex;
        if (!used) gap_seen = true;
        ASSERT_FALSE(used && gap_seen)
            << "group " << g << " column " << col << " used after a gap";
      }
    }
  }
}

}  // namespace
