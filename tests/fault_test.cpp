// Fault-tolerance layer tests: CRC-validated checkpoint frames and stores,
// the seeded fault-plan machinery, and — in fault builds (PHIGRAPH_FAULTS)
// — the end-to-end injection matrix: every named fault point, both ranks,
// first/middle/last supersteps, each run under a watchdog that turns a
// deadlocked fault path into an abort instead of a hung suite.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/apps/pagerank.hpp"
#include "src/apps/reference.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/fault/checkpoint.hpp"
#include "src/fault/fault_injection.hpp"
#include "src/gen/generators.hpp"
#include "tests/watchdog.hpp"

namespace {

using namespace phigraph;
using fault::CheckpointConfig;
using fault::CheckpointFrame;
using fault::CheckpointStore;
using fault::FaultPlan;
using fault::FaultSpec;
using fault::Point;

// ---- CRC32 ------------------------------------------------------------------

TEST(Crc32, MatchesTheStandardCheckVector) {
  // The canonical CRC-32/IEEE check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(fault::Crc32::of("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, IncrementalUpdatesMatchOneShot) {
  fault::Crc32 c;
  c.update("12345", 5);
  c.update("6789", 4);
  EXPECT_EQ(c.value(), fault::Crc32::of("123456789", 9));
}

// ---- checkpoint frames ------------------------------------------------------

CheckpointFrame make_frame(int superstep) {
  CheckpointFrame f;
  f.superstep = superstep;
  f.values = {1, 2, 3, 4, 5, 6, 7, 8};
  f.active = {1, 0};
  f.frontier = {0};
  f.seal();
  return f;
}

TEST(CheckpointFrame, SealedFrameValidatesAndCorruptionIsDetected) {
  auto f = make_frame(4);
  EXPECT_TRUE(f.valid());
  f.values[3] ^= 0x40;  // single bit flip in the payload
  EXPECT_FALSE(f.valid());
  f.values[3] ^= 0x40;
  EXPECT_TRUE(f.valid());
  f.superstep = 5;  // header tampering is caught too
  EXPECT_FALSE(f.valid());
}

TEST(CheckpointStore, KeepsTheLastTwoFramesNewestFirst) {
  CheckpointConfig cfg;
  cfg.interval = 2;
  CheckpointStore store(cfg, /*rank=*/0);
  store.write(make_frame(2));
  store.write(make_frame(4));
  store.write(make_frame(6));  // overwrites the superstep-2 slot
  EXPECT_EQ(store.valid_supersteps(), (std::vector<int>{6, 4}));
  EXPECT_TRUE(store.frame_at(4).has_value());
  EXPECT_FALSE(store.frame_at(2).has_value());
  ASSERT_TRUE(store.latest_valid().has_value());
  EXPECT_EQ(store.latest_valid()->superstep, 6);
}

class FileCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("pg_ckpt_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed())))
               .string() +
           "_" + ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(FileCheckpointTest, RoundTripsFramesThroughDisk) {
  CheckpointConfig cfg;
  cfg.interval = 2;
  cfg.file_backed = true;
  cfg.dir = dir_;
  CheckpointStore store(cfg, /*rank=*/1);
  const auto f = make_frame(2);
  store.write(f);
  const auto back = store.latest_valid();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->superstep, f.superstep);
  EXPECT_EQ(back->values, f.values);
  EXPECT_EQ(back->active, f.active);
  EXPECT_EQ(back->frontier, f.frontier);
  EXPECT_EQ(back->crc, f.crc);
}

TEST_F(FileCheckpointTest, CorruptedLatestFrameFallsBackToPrevious) {
  CheckpointConfig cfg;
  cfg.interval = 2;
  cfg.file_backed = true;
  cfg.dir = dir_;
  CheckpointStore store(cfg, /*rank=*/0);
  store.write(make_frame(2));  // slot 0
  store.write(make_frame(4));  // slot 1 — the newest
  {
    // Flip one payload byte of the newest frame on disk (past the 4-byte
    // magic and 32-byte header): its CRC no longer validates.
    std::fstream f(store.slot_path(1),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(4 + 32 + 2);
    char b = 0;
    f.read(&b, 1);
    b ^= 0x10;
    f.seekp(4 + 32 + 2);
    f.write(&b, 1);
  }
  // The corrupted frame is rejected; readers fall back to superstep 2.
  EXPECT_EQ(store.valid_supersteps(), (std::vector<int>{2}));
  EXPECT_FALSE(store.frame_at(4).has_value());
  ASSERT_TRUE(store.latest_valid().has_value());
  EXPECT_EQ(store.latest_valid()->superstep, 2);
}

TEST_F(FileCheckpointTest, TruncatedFrameFileIsRejected) {
  CheckpointConfig cfg;
  cfg.interval = 2;
  cfg.file_backed = true;
  cfg.dir = dir_;
  CheckpointStore store(cfg, /*rank=*/0);
  store.write(make_frame(2));
  std::filesystem::resize_file(store.slot_path(0), 10);  // torn write
  EXPECT_TRUE(store.valid_supersteps().empty());
  EXPECT_FALSE(store.latest_valid().has_value());
}

TEST_F(FileCheckpointTest, WritesLeaveNoTempFilesAndBothSlotsValidate) {
  // Crash-consistent write path: each frame goes to a .tmp sibling, is
  // fsynced, and only then renamed over the slot — so after any number of
  // completed writes no .tmp residue may remain and both slots validate.
  CheckpointConfig cfg;
  cfg.interval = 2;
  cfg.file_backed = true;
  cfg.dir = dir_;
  CheckpointStore store(cfg, /*rank=*/0);
  store.write(make_frame(2));
  store.write(make_frame(4));
  store.write(make_frame(6));
  for (const auto& entry : std::filesystem::directory_iterator(dir_))
    EXPECT_NE(entry.path().extension(), ".tmp")
        << "stray temp file: " << entry.path();
  EXPECT_EQ(store.valid_supersteps(), (std::vector<int>{6, 4}));
}

// ---- fault plans ------------------------------------------------------------

TEST(FaultPlan, FromSeedIsDeterministic) {
  const auto a = FaultPlan::from_seed(42, /*max_superstep=*/9);
  const auto b = FaultPlan::from_seed(42, /*max_superstep=*/9);
  ASSERT_EQ(a.specs().size(), 1u);
  ASSERT_EQ(b.specs().size(), 1u);
  EXPECT_EQ(a.specs()[0].point, b.specs()[0].point);
  EXPECT_EQ(a.specs()[0].rank, b.specs()[0].rank);
  EXPECT_EQ(a.specs()[0].superstep, b.specs()[0].superstep);
  // Different seeds should (for these two) differ somewhere.
  const auto c = FaultPlan::from_seed(43, 9);
  EXPECT_TRUE(a.specs()[0].point != c.specs()[0].point ||
              a.specs()[0].rank != c.specs()[0].rank ||
              a.specs()[0].superstep != c.specs()[0].superstep);
}

TEST(FaultPlan, ArmRejectsInvalidSpecs) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FaultPlan plan;
  // Rank 2+ is legal now (N-rank clusters); negative ranks still are not.
  EXPECT_DEATH(plan.arm({Point::kEngineGenerate, /*rank=*/-1, 0, 1}),
               "rank must be >= 0");
  EXPECT_DEATH(plan.arm({Point::kEngineGenerate, 0, /*superstep=*/-1, 1}),
               "out of range");
  EXPECT_DEATH(plan.arm({Point::kEngineGenerate, 0, 0, /*occurrence=*/0}),
               "out of range");
  EXPECT_DEATH(plan.arm({Point::kEngineGenerate, 0, 0, 1,
                         fault::FaultKind::kTransient, /*shots=*/0}),
               "shots out of range");
}

TEST(FaultPlan, ChaosFromSeedIsDeterministicAndBounded) {
  const auto a = FaultPlan::chaos_from_seed(7, /*max_superstep=*/9, /*nranks=*/4);
  const auto b = FaultPlan::chaos_from_seed(7, 9, 4);
  ASSERT_EQ(a.specs().size(), b.specs().size());
  ASSERT_GE(a.specs().size(), 1u);
  ASSERT_LE(a.specs().size(), 3u);
  for (std::size_t i = 0; i < a.specs().size(); ++i) {
    EXPECT_EQ(a.specs()[i].point, b.specs()[i].point);
    EXPECT_EQ(a.specs()[i].rank, b.specs()[i].rank);
    EXPECT_EQ(a.specs()[i].superstep, b.specs()[i].superstep);
    EXPECT_EQ(a.specs()[i].kind, b.specs()[i].kind);
    EXPECT_EQ(a.specs()[i].shots, b.specs()[i].shots);
    EXPECT_GE(a.specs()[i].rank, 0);
    EXPECT_LT(a.specs()[i].rank, 4);
    EXPECT_LE(a.specs()[i].superstep, 9);
    EXPECT_GE(a.specs()[i].shots, 1);
    EXPECT_LE(a.specs()[i].shots, 2);
  }
}

TEST(FaultPoints, EveryPointHasAName) {
  for (int p = 0; p < fault::kNumPoints; ++p)
    EXPECT_STRNE(fault::point_name(static_cast<Point>(p)), "?");
}

// ---- end-to-end injection matrix (fault builds only) ------------------------

#if !PG_FAULTS_ENABLED

TEST(FaultInjection, SkippedWithoutFaultBuild) {
  GTEST_SKIP() << "fault injection requires -DPHIGRAPH_FAULTS=ON "
                  "(the `faults` preset)";
}

#else

constexpr int kSupersteps = 8;     // PageRank runs exactly this many
constexpr int kCkptInterval = 3;   // checkpoints at resume supersteps 3, 6

core::EngineConfig fault_cfg(int simd_bytes) {
  core::EngineConfig c;
  // Pipelining on BOTH ranks so pipeline.mover_insert can fire on either.
  c.mode = core::ExecMode::kPipelining;
  c.simd_bytes = simd_bytes;
  c.threads = 3;
  c.movers = 2;
  c.sched_chunk = 16;
  c.queue_capacity = 256;
  c.max_supersteps = kSupersteps;
  c.checkpoint.interval = kCkptInterval;
  return c;
}

/// Runs hetero PageRank with `plan` armed and asserts the fault-tolerance
/// contract: no deadlock (watchdog), no std::terminate, CPU-only failover
/// completes with correct values and fewer than kCkptInterval lost
/// supersteps. When the plan happens not to fire (a seeded plan can land on
/// a site the schedule never reaches), the run must simply be correct.
void run_injected(const FaultPlan& plan, bool expect_fire,
                  int expected_rank = -1) {
  const auto g = gen::pokec_like(/*n=*/1000, /*m=*/8000, /*seed=*/17);
  const apps::PageRank prog;
  fault::ScopedPlan armed(plan);
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));

  std::vector<Device> owner(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    owner[v] = v % 2 == 0 ? Device::Cpu : Device::Mic;
  core::HeteroEngine<apps::PageRank> he(
      g, owner, prog, fault_cfg(simd::kCpuSimdBytes),
      fault_cfg(simd::kMicSimdBytes));
  const auto res = he.run();

  ASSERT_TRUE(res.completed) << res.fault.to_string();
  if (expect_fire) {
    EXPECT_EQ(res.failover.failed_over, 1u) << "plan did not fire";
    EXPECT_TRUE(res.fault.valid());
    if (expected_rank >= 0) EXPECT_EQ(res.fault.rank, expected_rank);
    EXPECT_LT(res.failover.lost_supersteps,
              static_cast<std::uint64_t>(kCkptInterval));
    EXPECT_GE(res.failover.recovery_ms, 0.0);
  }
  if (res.failover.failed_over) {
    EXPECT_LT(res.failover.lost_supersteps,
              static_cast<std::uint64_t>(kCkptInterval));
  }
  const auto classic = apps::classic_pagerank(g, kSupersteps);
  ASSERT_EQ(res.global_values.size(), classic.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(res.global_values[v], classic[v], 1e-3f * (1.0f + classic[v]))
        << "vertex " << v;
}

struct MatrixCase {
  const char* name;
  FaultSpec spec;
};

class FaultMatrix : public ::testing::TestWithParam<MatrixCase> {};

// Every fault point, on both ranks, spread over first / middle / last
// supersteps. checkpoint.write only executes where (s + 1) % interval == 0,
// so its cases sit on those boundaries.
const MatrixCase kMatrix[] = {
    {"ExchangeDeposit_Cpu_First", {Point::kExchangeDeposit, 0, 0, 1}},
    {"ExchangeDeposit_Mic_Last", {Point::kExchangeDeposit, 1, 7, 1}},
    {"Generate_Cpu_Middle", {Point::kEngineGenerate, 0, 4, 1}},
    {"Generate_Mic_First", {Point::kEngineGenerate, 1, 0, 1}},
    {"Process_Cpu_Last", {Point::kEngineProcess, 0, 7, 1}},
    {"Process_Mic_Middle", {Point::kEngineProcess, 1, 4, 1}},
    {"Update_Cpu_First", {Point::kEngineUpdate, 0, 0, 1}},
    {"Update_Mic_Last", {Point::kEngineUpdate, 1, 7, 1}},
    {"MoverInsert_Cpu_Middle", {Point::kPipelineMoverInsert, 0, 4, 1}},
    {"MoverInsert_Mic_Early", {Point::kPipelineMoverInsert, 1, 2, 1}},
    {"CheckpointWrite_Cpu_Early", {Point::kCheckpointWrite, 0, 2, 1}},
    {"CheckpointWrite_Mic_Late", {Point::kCheckpointWrite, 1, 5, 1}},
    // Occurrence > 1: the Nth reach fires, not the first.
    {"Generate_Cpu_ThirdHit", {Point::kEngineGenerate, 0, 4, 3}},
};

TEST_P(FaultMatrix, FailsOverWithoutDeadlockOrTerminate) {
  const auto& c = GetParam();
  FaultPlan plan;
  plan.arm(c.spec);
  run_injected(plan, /*expect_fire=*/true, c.spec.rank);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, FaultMatrix, ::testing::ValuesIn(kMatrix),
    [](const ::testing::TestParamInfo<MatrixCase>& pi) {
      return std::string(pi.param.name);
    });

// Seeded plans: the acceptance bar is ≥8 replayable schedules with zero
// deadlocks and zero std::terminate, whether or not the drawn site fires.
class SeededFaults : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededFaults, RunsToCorrectValuesUnderSeededPlan) {
  const auto plan = FaultPlan::from_seed(GetParam(), kSupersteps - 1);
  run_injected(plan, /*expect_fire=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededFaults,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

// ---- k-shot firing semantics ------------------------------------------------

// A spec fires on reaches [occurrence, occurrence + shots), then goes quiet
// — the property the transient-retry tests lean on: a replayed superstep
// re-fires until the shots run out, after which the retry genuinely
// succeeds.
TEST(FaultShots, FiresForShotsConsecutiveReachesThenStops) {
  FaultPlan plan;
  plan.arm({Point::kEngineGenerate, /*rank=*/0, /*superstep=*/3,
            /*occurrence=*/2, fault::FaultKind::kTransient, /*shots=*/2});
  fault::ScopedPlan armed(plan);
  int fires = 0;
  for (int reach = 1; reach <= 6; ++reach) {
    try {
      PG_FAULT_POINT(kEngineGenerate, 0, 3);
    } catch (const fault::FaultInjected& e) {
      ++fires;
      EXPECT_TRUE(reach == 2 || reach == 3) << "fired on reach " << reach;
      EXPECT_EQ(e.kind, fault::FaultKind::kTransient);
    }
  }
  EXPECT_EQ(fires, 2);
  // Different (rank, superstep) coordinates never fire.
  EXPECT_NO_THROW(PG_FAULT_POINT(kEngineGenerate, 1, 3));
  EXPECT_NO_THROW(PG_FAULT_POINT(kEngineGenerate, 0, 4));
}

// ---- crash-consistent file checkpoints --------------------------------------

// A crash between the fsynced temp write and the atomic rename
// (checkpoint.rename) must leave BOTH existing slots valid — the torn write
// can invalidate neither — and once the fault clears the same superstep can
// be rewritten successfully.
TEST_F(FileCheckpointTest, RenameFaultCannotInvalidateEitherSlot) {
  CheckpointConfig cfg;
  cfg.interval = 2;
  cfg.file_backed = true;
  cfg.dir = dir_;
  CheckpointStore store(cfg, /*rank=*/0);
  store.write(make_frame(2));
  store.write(make_frame(4));
  {
    FaultPlan plan;
    plan.arm({Point::kCheckpointRename, /*rank=*/0, /*superstep=*/6, 1});
    fault::ScopedPlan armed(plan);
    EXPECT_THROW(store.write(make_frame(6)), fault::FaultInjected);
  }
  // The aborted write may not have touched either published slot, and its
  // temp file must have been cleaned up.
  EXPECT_EQ(store.valid_supersteps(), (std::vector<int>{4, 2}));
  for (const auto& entry : std::filesystem::directory_iterator(dir_))
    EXPECT_NE(entry.path().extension(), ".tmp")
        << "stray temp file: " << entry.path();
  // Fault cleared: the rewrite publishes normally.
  store.write(make_frame(6));
  EXPECT_EQ(store.valid_supersteps(), (std::vector<int>{6, 4}));
}

#endif  // PG_FAULTS_ENABLED

}  // namespace
