// Unit tests for the observability layer: power-of-two histograms, the span
// collector, phase-table aggregation and the Chrome-trace exporter. The
// classes are compiled in every preset (only the PG_TRACE_* call sites are
// build-gated), so these tests guard the machinery even in builds where the
// engine records nothing.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/metrics/chrome_trace.hpp"
#include "src/metrics/histogram.hpp"
#include "src/metrics/trace.hpp"

namespace {

using namespace phigraph;
using metrics::Histogram;
using metrics::histogram_bucket;
using metrics::histogram_lower_bound;
using trace::Collector;
using trace::Phase;
using trace::Span;

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

TEST(Histogram, BucketMathIsPowerOfTwo) {
  EXPECT_EQ(histogram_bucket(0), 0);
  EXPECT_EQ(histogram_bucket(1), 1);
  EXPECT_EQ(histogram_bucket(2), 2);
  EXPECT_EQ(histogram_bucket(3), 2);
  EXPECT_EQ(histogram_bucket(4), 3);
  EXPECT_EQ(histogram_bucket(7), 3);
  EXPECT_EQ(histogram_bucket(8), 4);
  EXPECT_EQ(histogram_bucket(~std::uint64_t{0}), 64);

  EXPECT_EQ(histogram_lower_bound(0), 0u);
  EXPECT_EQ(histogram_lower_bound(1), 1u);
  EXPECT_EQ(histogram_lower_bound(2), 2u);
  EXPECT_EQ(histogram_lower_bound(3), 4u);
  // Round trip: every value lands in a bucket whose bound does not exceed it.
  for (std::uint64_t v : {1ull, 2ull, 3ull, 100ull, 65535ull, 1ull << 40}) {
    const int b = histogram_bucket(v);
    EXPECT_LE(histogram_lower_bound(b), v);
    EXPECT_GT(histogram_lower_bound(b + 1), v);
  }
}

TEST(Histogram, RecordAggregates) {
  Histogram h;
  for (std::uint64_t v : {0ull, 1ull, 1ull, 5ull, 100ull}) h.record(v);
  const auto d = h.snapshot();
  EXPECT_EQ(d.count, 5u);
  EXPECT_EQ(d.sum, 107u);
  EXPECT_EQ(d.max, 100u);
  EXPECT_DOUBLE_EQ(d.mean(), 107.0 / 5.0);
  EXPECT_EQ(d.buckets[0], 1u);                      // the zero
  EXPECT_EQ(d.buckets[1], 2u);                      // the ones
  EXPECT_EQ(d.buckets[histogram_bucket(5)], 1u);    // 4..7
  EXPECT_EQ(d.buckets[histogram_bucket(100)], 1u);  // 64..127
  EXPECT_EQ(d.used_buckets(), histogram_bucket(100) + 1);

  h.clear();
  const auto e = h.snapshot();
  EXPECT_EQ(e.count, 0u);
  EXPECT_EQ(e.max, 0u);
  EXPECT_EQ(e.used_buckets(), 0);
  EXPECT_EQ(e.quantile_bound(0.5), 0u);
}

TEST(Histogram, QuantileBoundsAreBucketResolution) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(1);
  for (int i = 0; i < 10; ++i) h.record(1024);
  const auto d = h.snapshot();
  EXPECT_EQ(d.quantile_bound(0.5), 1u);
  EXPECT_EQ(d.quantile_bound(0.89), 1u);
  EXPECT_EQ(d.quantile_bound(0.95), 1024u);
}

TEST(Histogram, ToJsonIsCompact) {
  Histogram h;
  h.record(3);
  h.record(3);
  const std::string j = h.snapshot().to_json();
  EXPECT_NE(j.find("\"count\": 2"), std::string::npos) << j;
  EXPECT_NE(j.find("\"sum\": 6"), std::string::npos) << j;
  EXPECT_NE(j.find("\"max\": 3"), std::string::npos) << j;
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

// Concurrent recording is the production mode (worker threads share the
// scheduler-chunk histogram); under TSan this doubles as a race check.
TEST(Histogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(i % 17);
    });
  for (auto& t : ts) t.join();
  const auto d = h.snapshot();
  EXPECT_EQ(d.count, kThreads * kPerThread);
  EXPECT_EQ(d.max, 16u);
  std::uint64_t want_sum = 0;
  for (std::uint64_t i = 0; i < kPerThread; ++i) want_sum += i % 17;
  EXPECT_EQ(d.sum, kThreads * want_sum);
}

// ---------------------------------------------------------------------------
// Span collector and phase-table aggregation.
// ---------------------------------------------------------------------------

// The Collector is a process-global singleton shared with any
// PHIGRAPH_TRACE-instrumented engine code in this binary, so every test
// clears it first and runs on dedicated threads with explicit names.
TEST(Trace, CollectorGathersSpansAcrossThreads) {
  auto& c = Collector::instance();
  c.clear();
  const std::size_t before = c.total_spans();

  std::thread t1([&c] {
    c.set_thread_name("unit-a");
    c.record(Phase::kGenerate, 0, 0, 100, 400);
    c.record(Phase::kProcess, 0, 0, 400, 600);
  });
  t1.join();
  std::thread t2([&c] {
    c.set_thread_name("unit-b");
    c.record(Phase::kPipelineDrain, 0, 0, 120, 380);
  });
  t2.join();

  EXPECT_EQ(c.total_spans(), before + 3);
  bool saw_a = false, saw_b = false;
  for (const auto& tt : c.snapshot()) {
    if (tt.name == "unit-a") {
      saw_a = true;
      ASSERT_EQ(tt.spans.size(), 2u);
      EXPECT_EQ(tt.spans[0].phase, Phase::kGenerate);
      EXPECT_DOUBLE_EQ(tt.spans[0].seconds(), 300e-9);
    }
    if (tt.name == "unit-b") saw_b = true;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);

  c.clear();
  EXPECT_EQ(c.total_spans(), 0u);
}

TEST(Trace, ScopedSpanRespectsRuntimeSwitch) {
  auto& c = Collector::instance();
  c.clear();
  std::thread t([&c] {
    c.set_enabled(false);
    { trace::ScopedSpan off(Phase::kUpdate, 3, 1); }
    c.set_enabled(true);
    { trace::ScopedSpan on(Phase::kUpdate, 3, 1); }
  });
  t.join();
  std::size_t spans = 0;
  for (const auto& tt : c.snapshot()) spans += tt.spans.size();
  EXPECT_EQ(spans, 1u);
  c.clear();
}

TEST(Trace, PhaseTableAggregatesByRankAndSuperstep) {
  std::vector<Collector::ThreadTrace> threads(2);
  // Rank 0, superstep 0: envelope 0..1000 split into generate + process,
  // with a nested drain span that must NOT count toward the exclusive sum.
  threads[0].name = "cpu";
  threads[0].spans = {
      {Phase::kSuperstep, 0, 0, 0, 1000},
      {Phase::kGenerate, 0, 0, 0, 700},
      {Phase::kProcess, 0, 0, 700, 1000},
      {Phase::kPipelineDrain, 0, 0, 100, 600},
      {Phase::kSuperstep, 1, 0, 1000, 1400},
      {Phase::kGenerate, 1, 0, 1000, 1400},
  };
  // Rank 1 interleaved from another thread; spans with superstep -1 (store
  // checkpoints, exchange waits) stay out of the table entirely.
  threads[1].name = "mic";
  threads[1].spans = {
      {Phase::kSuperstep, 0, 1, 0, 900},
      {Phase::kUpdate, 0, 1, 0, 900},
      {Phase::kExchangeWait, -1, 1, 0, 500},
      {Phase::kCheckpoint, -1, 0, 0, 400},
  };

  const auto rows = trace::phase_table(threads);
  ASSERT_EQ(rows.size(), 3u);
  // Sorted by (rank, superstep).
  EXPECT_EQ(rows[0].rank, 0);
  EXPECT_EQ(rows[0].superstep, 0);
  EXPECT_EQ(rows[1].rank, 0);
  EXPECT_EQ(rows[1].superstep, 1);
  EXPECT_EQ(rows[2].rank, 1);
  EXPECT_EQ(rows[2].superstep, 0);

  EXPECT_DOUBLE_EQ(rows[0].superstep_wall, 1000e-9);
  EXPECT_DOUBLE_EQ(rows[0].seconds[static_cast<int>(Phase::kGenerate)], 700e-9);
  EXPECT_DOUBLE_EQ(rows[0].exclusive_sum(), 1000e-9);  // drain excluded
  EXPECT_DOUBLE_EQ(rows[1].exclusive_sum(), 400e-9);
  EXPECT_DOUBLE_EQ(rows[2].exclusive_sum(), 900e-9);
}

TEST(Trace, ExclusivePhasePredicateMatchesEnum) {
  int exclusive = 0;
  for (int p = 0; p < trace::kNumPhases; ++p)
    if (trace::is_exclusive_phase(static_cast<Phase>(p))) ++exclusive;
  EXPECT_EQ(exclusive, 7);
  EXPECT_FALSE(trace::is_exclusive_phase(Phase::kSuperstep));
  EXPECT_FALSE(trace::is_exclusive_phase(Phase::kPipelineDrain));
  EXPECT_FALSE(trace::is_exclusive_phase(Phase::kExchangeWait));
  EXPECT_FALSE(trace::is_exclusive_phase(Phase::kRecovery));
  // Every phase has a printable name.
  for (int p = 0; p < trace::kNumPhases; ++p)
    EXPECT_STRNE(trace::phase_name(static_cast<Phase>(p)), "?");
}

// ---------------------------------------------------------------------------
// Chrome-trace export.
// ---------------------------------------------------------------------------

// Minimal JSON well-formedness check: balanced braces/brackets outside
// strings. Catches emitter bugs (trailing commas are caught by the substring
// assertions; unbalanced nesting by this).
void expect_balanced(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{' || ch == '[') ++depth;
    else if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Trace, ChromeTraceJsonStructure) {
  std::vector<Collector::ThreadTrace> threads(1);
  threads[0].name = "cpu-orchestrator";
  threads[0].spans = {
      {Phase::kSuperstep, 0, 0, 0, 5000},
      {Phase::kGenerate, 0, 0, 0, 3000},
      {Phase::kExchangeWait, -1, 1, 100, 200},
  };
  const std::string json = trace::chrome_trace_json(threads);
  expect_balanced(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("cpu-orchestrator"), std::string::npos);
  EXPECT_NE(json.find("\"generate\""), std::string::npos);
  EXPECT_NE(json.find("\"exchange-wait\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_EQ(json.find(",]"), std::string::npos) << "trailing comma";
  EXPECT_EQ(json.find(",}"), std::string::npos) << "trailing comma";
}

TEST(Trace, ChromeTraceJsonEmptyIsStillValid) {
  const std::string json = trace::chrome_trace_json({});
  expect_balanced(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
