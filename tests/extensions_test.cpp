// Tests for the extension features beyond the paper's evaluation:
// Connected Components (additional application) and the auto-tuner (the
// paper's named future work).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>

#include "src/apps/connected_components.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/reference.hpp"
#include "src/apps/sssp.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/tune/autotune.hpp"

namespace {

using namespace phigraph;

/// Union-find ground truth for component labels (min vertex id).
std::vector<std::int32_t> classic_components(const graph::Csr& g) {
  std::vector<vid_t> parent(g.num_vertices());
  std::iota(parent.begin(), parent.end(), vid_t{0});
  std::function<vid_t(vid_t)> find = [&](vid_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u)) {
      const vid_t ru = find(u), rv = find(v);
      if (ru != rv) parent[std::max(ru, rv)] = std::min(ru, rv);
    }
  std::vector<std::int32_t> label(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    label[v] = static_cast<std::int32_t>(find(v));
  return label;
}

core::EngineConfig cc_cfg(core::ExecMode mode, int simd_bytes) {
  core::EngineConfig cfg;
  cfg.mode = mode;
  cfg.simd_bytes = simd_bytes;
  cfg.threads = 3;
  cfg.movers = 2;
  return cfg;
}

TEST(ConnectedComponents, MatchesUnionFindOnCommunityGraph) {
  // dblp_like is symmetric by construction (undirected edges duplicated).
  const auto g = gen::dblp_like(3000, 5000, 15);
  const auto truth = classic_components(g);
  for (auto mode : {core::ExecMode::kOmpStyle, core::ExecMode::kLocking,
                    core::ExecMode::kPipelining}) {
    for (int simd_bytes : {16, 64}) {
      if (mode == core::ExecMode::kOmpStyle && simd_bytes == 64) continue;
      const auto res = core::run_single(g, apps::ConnectedComponents{},
                                        cc_cfg(mode, simd_bytes));
      for (vid_t v = 0; v < g.num_vertices(); ++v)
        ASSERT_EQ(res.values[v], truth[v])
            << "vertex " << v << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(ConnectedComponents, HeterogeneousMatchesSingleDevice) {
  const auto g = gen::dblp_like(2000, 4000, 16);
  const auto truth = classic_components(g);
  auto owner = partition::round_robin_partition(g, {1, 1});
  core::HeteroEngine<apps::ConnectedComponents> he(
      g, std::move(owner), apps::ConnectedComponents{},
      cc_cfg(core::ExecMode::kLocking, 16),
      cc_cfg(core::ExecMode::kPipelining, 64));
  auto res = he.run();
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.global_values[v], truth[v]);
}

TEST(ConnectedComponents, IsolatedVerticesKeepOwnLabel) {
  const auto g = graph::Csr::from_edges(
      5, std::vector<std::pair<vid_t, vid_t>>{{0, 1}, {1, 0}});
  const auto res = core::run_single(g, apps::ConnectedComponents{},
                                    cc_cfg(core::ExecMode::kLocking, 64));
  EXPECT_EQ(res.values[0], 0);
  EXPECT_EQ(res.values[1], 0);
  EXPECT_EQ(res.values[2], 2);
  EXPECT_EQ(res.values[3], 3);
  EXPECT_EQ(res.values[4], 4);
}

// ---------------------------------------------------------------------------
// Auto-tuner.
// ---------------------------------------------------------------------------

TEST(AutoTune, MoverSplitPicksAValidOptimum) {
  // Probe run: SSSP on a skewed graph, pipelined.
  auto g = gen::pokec_like(5000, 80000, 20);
  gen::add_random_weights(g, 4);
  core::DeviceEngine<apps::Sssp> engine(
      core::LocalGraph::whole(g), apps::Sssp{0},
      cc_cfg(core::ExecMode::kPipelining, 64));
  const auto run = engine.run();

  sim::ExecProfile profile;
  profile.lanes = 16;
  profile.num_vertices = g.num_vertices();
  const auto choice =
      tune::tune_mover_split(run.trace, sim::xeon_phi_se10p(), profile, 240,
                             /*step=*/10);
  EXPECT_EQ(choice.workers + choice.movers, 240);
  EXPECT_GE(choice.movers, 1);
  EXPECT_GT(choice.modeled_seconds, 0.0);

  // The chosen split must beat both extremes.
  auto cost_of = [&](int movers) {
    sim::ExecProfile p = profile;
    p.mode = core::ExecMode::kPipelining;
    p.threads = 240 - movers;
    p.movers = movers;
    return sim::model_run(run.trace, sim::xeon_phi_se10p(), p).execution();
  };
  EXPECT_LE(choice.modeled_seconds, cost_of(1) + 1e-12);
  EXPECT_LE(choice.modeled_seconds, cost_of(231) + 1e-12);
}

TEST(AutoTune, RatioSweepPrefersBalanceMatchingDeviceSpeeds) {
  auto g = gen::pokec_like(8000, 120000, 22);
  const apps::PageRank prog;

  tune::TuneDevice cpu;
  cpu.engine = cc_cfg(core::ExecMode::kLocking, 16);
  cpu.engine.max_supersteps = 5;
  cpu.spec = sim::xeon_e5_2680();
  cpu.profile.mode = core::ExecMode::kLocking;
  cpu.profile.threads = 16;
  cpu.profile.lanes = 4;

  tune::TuneDevice mic;
  mic.engine = cc_cfg(core::ExecMode::kPipelining, 64);
  mic.engine.max_supersteps = 5;
  mic.spec = sim::xeon_phi_se10p();
  mic.profile.mode = core::ExecMode::kPipelining;
  mic.profile.threads = 180;
  mic.profile.movers = 60;
  mic.profile.lanes = 16;

  const auto bp = partition::blocked_min_cut(g, {.num_blocks = 64, .seed = 2});
  const std::vector<partition::Ratio> candidates = {
      {1, 15}, {1, 3}, {1, 1}, {3, 1}, {15, 1}};
  const auto choice =
      tune::tune_partition_ratio(g, prog, bp, candidates, cpu, mic);

  // Both devices are within ~2x of each other for PageRank, so the extreme
  // one-sided splits must not win.
  const bool extreme =
      (choice.ratio.cpu == 1 && choice.ratio.mic == 15) ||
      (choice.ratio.cpu == 15 && choice.ratio.mic == 1);
  EXPECT_FALSE(extreme) << choice.ratio.cpu << ":" << choice.ratio.mic;
  EXPECT_GT(choice.modeled_seconds, 0.0);
}

}  // namespace
