// SPSC queue and worker/mover pipeline tests.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "src/pipeline/message_pipeline.hpp"
#include "src/pipeline/spsc_queue.hpp"

namespace {

using namespace phigraph;
using pipeline::Envelope;
using pipeline::MessagePipeline;
using pipeline::SpscQueue;

TEST(SpscQueue, FifoSingleThread) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
}

TEST(SpscQueue, FullAndWrapAround) {
  SpscQueue<int> q(8);  // 8 slots, 7 usable (one sentinel slot)
  EXPECT_EQ(q.capacity(), 7u);
  int pushed = 0;
  while (q.try_push(pushed)) ++pushed;
  EXPECT_EQ(pushed, 7);
  int out = -1;
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.try_push(100));  // space freed by the pop
  // Drain and confirm order.
  std::vector<int> drained;
  while (q.try_pop(out)) drained.push_back(out);
  EXPECT_EQ(drained.back(), 100);
}

TEST(SpscQueue, TwoThreadStress) {
  SpscQueue<std::uint64_t> q(64);
  constexpr std::uint64_t kCount = 200'000;
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t got = 0, v = 0;
    while (got < kCount) {
      if (q.try_pop(v)) {
        sum += v;
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i)
    while (!q.try_push(i)) std::this_thread::yield();
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(MessagePipeline, RoutesByDestinationModulo) {
  MessagePipeline<float> pipe(/*workers=*/2, /*movers=*/3, 64);
  pipe.reset();
  // Push from "worker 0" and "worker 1", then drain each mover class on this
  // thread and verify dst % movers routing.
  for (vid_t dst = 0; dst < 30; ++dst) pipe.push(0, dst, 1.0f);
  for (vid_t dst = 0; dst < 30; ++dst) pipe.push(1, dst, 2.0f);
  pipe.worker_done();
  pipe.worker_done();
  std::uint64_t total = 0;
  for (int m = 0; m < 3; ++m) {
    const auto moved = pipe.mover_loop(m, [&](const Envelope<float>& env) {
      EXPECT_EQ(env.dst % 3, static_cast<vid_t>(m));
    });
    EXPECT_EQ(moved, 20u);  // 10 destinations per class, from 2 workers
    total += moved;
  }
  EXPECT_EQ(total, 60u);
}

TEST(MessagePipeline, ConcurrentWorkersAndMoversLoseNothing) {
  constexpr int kWorkers = 3;
  constexpr int kMovers = 2;
  constexpr int kPerWorker = 50'000;
  MessagePipeline<std::uint32_t> pipe(kWorkers, kMovers, 128);
  pipe.reset();

  std::atomic<std::uint64_t> moved{0};
  std::atomic<std::uint64_t> value_sum{0};
  std::vector<std::thread> movers;
  for (int m = 0; m < kMovers; ++m)
    movers.emplace_back([&, m] {
      std::uint64_t local = 0;
      pipe.mover_loop(m, [&](const Envelope<std::uint32_t>& env) {
        local += env.value;
      });
      value_sum.fetch_add(local);
      moved.fetch_add(1);
    });
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w)
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerWorker; ++i)
        pipe.push(w, static_cast<vid_t>(i * 7 + w), 1u);
      pipe.worker_done();
    });
  for (auto& t : workers) t.join();
  for (auto& t : movers) t.join();
  EXPECT_EQ(value_sum.load(),
            static_cast<std::uint64_t>(kWorkers) * kPerWorker);
}

TEST(MessagePipeline, ReusableAcrossPhases) {
  MessagePipeline<int> pipe(1, 1, 16);
  for (int phase = 0; phase < 5; ++phase) {
    pipe.reset();
    for (vid_t d = 0; d < 10; ++d) pipe.push(0, d, phase);
    pipe.worker_done();
    int count = 0;
    pipe.mover_loop(0, [&](const Envelope<int>& env) {
      EXPECT_EQ(env.value, phase);
      ++count;
    });
    EXPECT_EQ(count, 10);
  }
}

}  // namespace
