// Graph IO round-trip tests for all three formats.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/gen/generators.hpp"
#include "src/graph/io.hpp"
#include "src/graph/paper_example.hpp"

namespace {

using namespace phigraph;

std::string tmp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : cleanup_) std::filesystem::remove(p);
  }
  std::string track(std::string p) {
    cleanup_.push_back(p);
    return p;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(IoTest, AdjacencyListRoundTripUnweighted) {
  const auto g = graph::paper_example_graph();
  const auto path = track(tmp_path("pg_adj_unweighted.txt"));
  graph::save_adjacency_list(g, path);
  EXPECT_EQ(graph::load_adjacency_list(path), g);
}

TEST_F(IoTest, AdjacencyListRoundTripWeighted) {
  auto g = gen::pokec_like(200, 1500, 3);
  gen::add_random_weights(g, 5);
  const auto path = track(tmp_path("pg_adj_weighted.txt"));
  graph::save_adjacency_list(g, path);
  const auto loaded = graph::load_adjacency_list(path);
  EXPECT_EQ(loaded.offsets(), g.offsets());
  EXPECT_EQ(loaded.targets(), g.targets());
  ASSERT_EQ(loaded.edge_values().size(), g.edge_values().size());
  for (std::size_t i = 0; i < g.edge_values().size(); ++i)
    EXPECT_NEAR(loaded.edge_values()[i], g.edge_values()[i], 1e-4f);
}

TEST_F(IoTest, BinaryRoundTripExact) {
  auto g = gen::dblp_like(300, 900, 7);
  const auto path = track(tmp_path("pg_binary.bin"));
  graph::save_binary(g, path);
  EXPECT_EQ(graph::load_binary(path), g);
}

TEST_F(IoTest, EdgeListRoundTrip) {
  const auto g = graph::paper_example_graph();
  const auto path = track(tmp_path("pg_edges.txt"));
  graph::save_edge_list(g, path);
  const auto loaded = graph::load_edge_list(path, g.num_vertices());
  EXPECT_EQ(loaded, g);
}

TEST_F(IoTest, EdgeListWithCommentsAndWeights) {
  const auto path = track(tmp_path("pg_edges_manual.txt"));
  {
    std::ofstream out(path);
    out << "# a comment line\n"
        << "0 1 2.5\n"
        << "\n"
        << "1 2 1.25\n"
        << "0 2 0.5\n";
  }
  const auto g = graph::load_edge_list(path);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  ASSERT_TRUE(g.has_edge_values());
  // CSR order: 0->1 (2.5), 0->2 (0.5), 1->2 (1.25).
  EXPECT_FLOAT_EQ(g.out_edge_values(0)[0], 2.5f);
  EXPECT_FLOAT_EQ(g.out_edge_values(0)[1], 0.5f);
  EXPECT_FLOAT_EQ(g.out_edge_values(1)[0], 1.25f);
}

TEST_F(IoTest, BinaryRejectsForeignFile) {
  const auto path = track(tmp_path("pg_not_a_graph.bin"));
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a phigraph file at all, padded to enough bytes....";
  }
  EXPECT_DEATH((void)graph::load_binary(path), "not a PhiGraph binary");
}

TEST_F(IoTest, MissingFileAborts) {
  EXPECT_DEATH((void)graph::load_binary("/nonexistent/path/graph.bin"),
               "failed to open");
}

// ---- loader hardening: malformed text inputs --------------------------------
//
// Each rejection names the file, the 1-based line, and the offending token.
// Before the hardening, `stream >> id` quietly turned "abc" into vertex 0 —
// a typo became a silent self-loop instead of a diagnostic.

TEST_F(IoTest, EdgeListRejectsNonNumericToken) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto path = track(tmp_path("pg_edges_bad_token.txt"));
  {
    std::ofstream out(path);
    out << "0 1\n2 abc\n";
  }
  EXPECT_DEATH((void)graph::load_edge_list(path),
               ":2: non-numeric target token 'abc'");
}

TEST_F(IoTest, EdgeListRejectsOutOfRangeVertexId) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto path = track(tmp_path("pg_edges_oob.txt"));
  {
    std::ofstream out(path);
    out << "0 1\n3 9\n";
  }
  EXPECT_DEATH((void)graph::load_edge_list(path, /*num_vertices=*/5),
               ":2: target id 9 out of range");
}

TEST_F(IoTest, EdgeListRejectsWrongTokenCount) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto path = track(tmp_path("pg_edges_extra.txt"));
  {
    std::ofstream out(path);
    out << "0 1 2.5 7\n";
  }
  EXPECT_DEATH((void)graph::load_edge_list(path), ":1: expected 'u v");
}

TEST_F(IoTest, EdgeListRejectsMixedWeightedness) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto path = track(tmp_path("pg_edges_mixed.txt"));
  {
    std::ofstream out(path);
    out << "0 1 2.5\n1 2\n";
  }
  EXPECT_DEATH((void)graph::load_edge_list(path),
               ":2: unweighted line in a weighted edge list");
}

TEST_F(IoTest, AdjacencyListRejectsTruncatedFile) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto path = track(tmp_path("pg_adj_truncated.txt"));
  {
    std::ofstream out(path);
    out << "3 4 0\n0 2 1 2\n1 1 2\n";  // vertex 2's line is missing
  }
  EXPECT_DEATH((void)graph::load_adjacency_list(path),
               "truncated after line 3: expected a vertex line");
}

TEST_F(IoTest, AdjacencyListRejectsNonNumericDegree) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto path = track(tmp_path("pg_adj_bad_degree.txt"));
  {
    std::ofstream out(path);
    out << "2 1 0\n0 x 1\n1 0\n";
  }
  EXPECT_DEATH((void)graph::load_adjacency_list(path),
               ":2: non-numeric degree token 'x'");
}

TEST_F(IoTest, AdjacencyListRejectsOutOfRangeTarget) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto path = track(tmp_path("pg_adj_oob_target.txt"));
  {
    std::ofstream out(path);
    out << "2 2 0\n0 2 1 5\n1 0\n";
  }
  EXPECT_DEATH((void)graph::load_adjacency_list(path),
               ":2: target id 5 out of range");
}

TEST_F(IoTest, AdjacencyListRejectsDegreeTokenMismatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto path = track(tmp_path("pg_adj_degree_mismatch.txt"));
  {
    std::ofstream out(path);
    out << "2 2 0\n0 2 1\n1 0\n";  // declares degree 2, provides one target
  }
  EXPECT_DEATH((void)graph::load_adjacency_list(path),
               "declares degree 2 but the line holds 1 edge token");
}

TEST_F(IoTest, AdjacencyListRejectsBadHeader) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto path = track(tmp_path("pg_adj_bad_header.txt"));
  {
    std::ofstream out(path);
    out << "2 two 0\n0 0\n1 0\n";
  }
  EXPECT_DEATH((void)graph::load_adjacency_list(path),
               ":1: non-numeric edge-count token 'two'");
}

}  // namespace
