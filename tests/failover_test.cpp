// Heterogeneous failover tests that need no fault build: a vertex program
// that throws mid-run stands in for a device failure. These pin down the
// contracts the fault-injection matrix relies on:
//
//  * HeteroEngine::run() survives an exception on either device thread — the
//    scope-guard joiner means no std::terminate with a joinable thread — and
//    finishes CPU-only instead of crashing;
//  * checkpointed recovery is exact: BFS levels after a mid-run MIC failure
//    are bit-identical to a fault-free single-device run (min-combine is
//    reduction-order independent);
//  * from-scratch recovery re-runs the full computation, so with a
//    deterministic (single-thread) config PageRank floats are bit-identical
//    to the same-config single-device reference;
//  * lost work is bounded by the checkpoint interval;
//  * single-device runs keep the historical contract: user exceptions
//    propagate to the caller.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/apps/bfs.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/reference.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/fault/fault.hpp"
#include "src/gen/generators.hpp"
#include "src/graph/paper_example.hpp"
#include "tests/watchdog.hpp"

namespace {

using namespace phigraph;
using core::EngineConfig;
using core::ExecMode;

/// Wraps a vertex program; update_vertex throws exactly once, process-wide,
/// when updating a vertex owned by `device` during `superstep`. Because
/// update runs on the owning engine only, this kills precisely that rank.
/// The one-shot latch keeps the throw out of the recovery run (which covers
/// both partitions and would otherwise die at the same superstep again).
template <typename Base>
class ThrowOn : public Base {
 public:
  ThrowOn(Base base, std::shared_ptr<const std::vector<Device>> owner,
          Device device, int superstep)
      : Base(std::move(base)),
        owner_(std::move(owner)),
        device_(device),
        superstep_(superstep),
        fired_(std::make_shared<std::atomic<bool>>(false)) {}

  template <typename View>
  bool update_vertex(const typename Base::message_t& msg, View& g,
                     vid_t u) const {
    if (g.superstep == superstep_ && (*owner_)[g.global_id[u]] == device_ &&
        !fired_->exchange(true))
      throw std::runtime_error("synthetic device failure");
    return Base::update_vertex(msg, g, u);
  }

 private:
  std::shared_ptr<const std::vector<Device>> owner_;
  Device device_;
  int superstep_;
  std::shared_ptr<std::atomic<bool>> fired_;
};

std::shared_ptr<const std::vector<Device>> round_robin_owner(vid_t n) {
  auto owner = std::make_shared<std::vector<Device>>(n);
  for (vid_t v = 0; v < n; ++v)
    (*owner)[v] = v % 2 == 0 ? Device::Cpu : Device::Mic;
  return owner;
}

EngineConfig cpu_cfg() {
  EngineConfig c;
  c.mode = ExecMode::kLocking;
  c.simd_bytes = simd::kCpuSimdBytes;
  c.threads = 3;
  c.sched_chunk = 16;
  return c;
}

EngineConfig mic_cfg() {
  EngineConfig c;
  c.mode = ExecMode::kPipelining;
  c.simd_bytes = simd::kMicSimdBytes;
  c.threads = 3;
  c.movers = 2;
  c.sched_chunk = 16;
  c.queue_capacity = 256;
  return c;
}

graph::Csr test_graph() { return gen::pokec_like(3000, 30000, 7); }

TEST(HeteroFailover, ThrowingProgramFailsOverInsteadOfTerminating) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));
  const auto g = test_graph();
  auto owner = round_robin_owner(g.num_vertices());
  const ThrowOn<apps::PageRank> prog(apps::PageRank(), owner, Device::Mic,
                                     /*superstep=*/2);
  auto cc = cpu_cfg();
  auto mc = mic_cfg();
  cc.max_supersteps = mc.max_supersteps = 10;
  core::HeteroEngine<ThrowOn<apps::PageRank>> he(g, *owner, prog, cc, mc);
  const auto res = he.run();

  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  EXPECT_EQ(res.fault.rank, 1);
  EXPECT_EQ(res.fault.superstep, 2);
  EXPECT_EQ(res.fault.phase, "update");
  // No checkpointing: recovery restarted from superstep 0.
  EXPECT_EQ(res.failover.lost_supersteps, 2u);
  const auto classic = apps::classic_pagerank(g, 10);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(res.global_values[v], classic[v], 1e-3f * (1.0f + classic[v]))
        << "vertex " << v;
}

TEST(HeteroFailover, BfsCheckpointRecoveryIsBitIdenticalToSingleDevice) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));
  const auto g = test_graph();
  auto owner = round_robin_owner(g.num_vertices());
  const ThrowOn<apps::Bfs> prog(apps::Bfs(0), owner, Device::Mic,
                                /*superstep=*/2);
  auto cc = cpu_cfg();
  auto mc = mic_cfg();
  cc.checkpoint.interval = mc.checkpoint.interval = 2;
  core::HeteroEngine<ThrowOn<apps::Bfs>> he(g, *owner, prog, cc, mc);
  const auto res = he.run();

  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  EXPECT_EQ(res.fault.rank, 1);
  EXPECT_LT(res.failover.lost_supersteps, 2u);

  // BFS levels reduce with min — order-independent — so the recovered values
  // must be *bit-identical* to a fault-free single-device run.
  const auto ref = core::run_single(g, apps::Bfs(0), cpu_cfg());
  ASSERT_EQ(res.global_values.size(), ref.values.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.global_values[v], ref.values[v]) << "vertex " << v;
}

TEST(HeteroFailover, PageRankFromScratchRecoveryIsBitIdentical) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));
  const auto g = graph::paper_example_graph();
  auto owner = round_robin_owner(g.num_vertices());
  // Single-threaded locking config: float reduction order is deterministic,
  // so a from-scratch CPU-only recovery must reproduce the single-device
  // run bit for bit (the recovery config is the CPU config).
  EngineConfig det;
  det.mode = ExecMode::kLocking;
  det.simd_bytes = simd::kCpuSimdBytes;
  det.threads = 1;
  det.max_supersteps = 12;
  // The ladder sizes the recovery engine from the COMBINED rank budgets by
  // default (2 threads here), which would change float reduction order; pin
  // it back to one thread so bit-identity against run_single holds.
  det.recovery_threads = 1;
  const ThrowOn<apps::PageRank> prog(apps::PageRank(), owner, Device::Mic,
                                     /*superstep=*/3);
  core::HeteroEngine<ThrowOn<apps::PageRank>> he(g, *owner, prog, det, det);
  const auto res = he.run();

  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  const auto ref = core::run_single(g, apps::PageRank(), det);
  ASSERT_EQ(res.global_values.size(), ref.values.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.global_values[v], ref.values[v]) << "vertex " << v;
}

TEST(HeteroFailover, LostSuperstepsAreBoundedByTheCheckpointInterval) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));
  const auto g = test_graph();
  auto owner = round_robin_owner(g.num_vertices());
  constexpr int kInterval = 3;
  constexpr int kFaultAt = 7;  // checkpoints at 3, 6 -> resume 6, lose 1
  const ThrowOn<apps::PageRank> prog(apps::PageRank(), owner, Device::Mic,
                                     kFaultAt);
  auto cc = cpu_cfg();
  auto mc = mic_cfg();
  cc.max_supersteps = mc.max_supersteps = 10;
  cc.checkpoint.interval = mc.checkpoint.interval = kInterval;
  core::HeteroEngine<ThrowOn<apps::PageRank>> he(g, *owner, prog, cc, mc);
  const auto res = he.run();

  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  EXPECT_EQ(res.failover.lost_supersteps, 1u);
  EXPECT_LT(res.failover.lost_supersteps,
            static_cast<std::uint64_t>(kInterval));
  EXPECT_GE(res.failover.recovery_ms, 0.0);
  const auto classic = apps::classic_pagerank(g, 10);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(res.global_values[v], classic[v], 1e-3f * (1.0f + classic[v]))
        << "vertex " << v;
}

TEST(HeteroFailover, CpuFaultAlsoFailsOver) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));
  const auto g = test_graph();
  auto owner = round_robin_owner(g.num_vertices());
  const ThrowOn<apps::Bfs> prog(apps::Bfs(0), owner, Device::Cpu,
                                /*superstep=*/1);
  core::HeteroEngine<ThrowOn<apps::Bfs>> he(g, *owner, prog, cpu_cfg(),
                                            mic_cfg());
  const auto res = he.run();
  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  EXPECT_EQ(res.fault.rank, 0);
  const auto classic = apps::classic_bfs(g, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.global_values[v], classic[v]) << "vertex " << v;
}

// ---- N-rank kill matrix -----------------------------------------------------

/// Rank-generalized ThrowOn: kills a specific rank of an N-rank cluster by
/// throwing once while updating a vertex that rank owns. (fault::FaultPlan
/// stays device-indexed, so the N-rank matrix injects through the program.)
template <typename Base>
class ThrowOnRank : public Base {
 public:
  ThrowOnRank(Base base, std::shared_ptr<const std::vector<int>> owner,
              int rank, int superstep)
      : Base(std::move(base)),
        owner_(std::move(owner)),
        rank_(rank),
        superstep_(superstep),
        fired_(std::make_shared<std::atomic<bool>>(false)) {}

  template <typename View>
  bool update_vertex(const typename Base::message_t& msg, View& g,
                     vid_t u) const {
    if (g.superstep == superstep_ && (*owner_)[g.global_id[u]] == rank_ &&
        !fired_->exchange(true))
      throw std::runtime_error("synthetic rank failure");
    return Base::update_vertex(msg, g, u);
  }

 private:
  std::shared_ptr<const std::vector<int>> owner_;
  int rank_;
  int superstep_;
  std::shared_ptr<std::atomic<bool>> fired_;
};

/// K-shot thrower: fires at most `shots` times, process-wide, while updating
/// a vertex owned (in the ORIGINAL owner map) by `rank` during `superstep`.
/// A CAS loop caps the total fire count exactly, so a retried epoch re-hits
/// the fault until the shots run out — a transient fault that eventually
/// clears (transient=true, fault::TransientError) or a permanent one that
/// follows its vertices through a repartition (transient=false). Give the
/// firing rank a single-threaded config when a test needs exactly one fire
/// per epoch.
template <typename Base>
class ShotThrowOnRank : public Base {
 public:
  ShotThrowOnRank(Base base, std::shared_ptr<const std::vector<int>> owner,
                  int rank, int superstep, int shots, bool transient)
      : Base(std::move(base)),
        owner_(std::move(owner)),
        rank_(rank),
        superstep_(superstep),
        shots_(shots),
        transient_(transient),
        fired_(std::make_shared<std::atomic<int>>(0)) {}

  template <typename View>
  bool update_vertex(const typename Base::message_t& msg, View& g,
                     vid_t u) const {
    if (g.superstep == superstep_ && (*owner_)[g.global_id[u]] == rank_) {
      int n = fired_->load();
      bool won = false;
      while (n < shots_ && !(won = fired_->compare_exchange_weak(n, n + 1))) {
      }
      if (won) {
        if (transient_)
          throw fault::TransientError("synthetic transient fault");
        throw std::runtime_error("synthetic permanent fault");
      }
    }
    return Base::update_vertex(msg, g, u);
  }

 private:
  std::shared_ptr<const std::vector<int>> owner_;
  int rank_;
  int superstep_;
  int shots_;
  bool transient_;
  std::shared_ptr<std::atomic<int>> fired_;
};

// ---- recovery ladder rungs in isolation -------------------------------------

// Rung 1: a one-shot transient fault respawns the failed rank from the
// newest common checkpoint frame and resumes ALL THREE ranks — no
// repartition, no single-device rerun — and the resumed run's BFS levels
// are bit-identical to the fault-free answer.
TEST(RecoveryLadder, TransientFaultRespawnsAllRanks) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(300));
  const auto g = test_graph();
  constexpr int kRanks = 3;
  constexpr int kInterval = 2;
  constexpr int kVictim = 1;
  auto owner = std::make_shared<std::vector<int>>(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    (*owner)[v] = static_cast<int>(v % kRanks);
  const ShotThrowOnRank<apps::Bfs> prog(apps::Bfs(0), owner, kVictim,
                                        /*superstep=*/3, /*shots=*/1,
                                        /*transient=*/true);
  std::vector<EngineConfig> cfgs;
  for (int r = 0; r < kRanks; ++r) {
    auto c = cpu_cfg();
    if (r == kVictim) c.threads = 1;  // exactly one fire per epoch
    c.checkpoint.interval = kInterval;
    c.retry.backoff_ms = 0;  // keep the test fast
    cfgs.push_back(c);
  }
  core::ClusterEngine<ShotThrowOnRank<apps::Bfs>> ce(g, *owner, prog, cfgs);
  const auto res = ce.run();

  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  EXPECT_EQ(res.fault.rank, kVictim);
  EXPECT_EQ(res.fault.kind, fault::FaultKind::kTransient);
  EXPECT_EQ(res.failover.rung, 1u);
  EXPECT_EQ(res.failover.attempts, 1u);
  EXPECT_EQ(res.failover.epochs, 1u);
  EXPECT_EQ(res.failover.epoch_recovery_ms.size(), 1u);
  EXPECT_LT(res.failover.lost_supersteps,
            static_cast<std::uint64_t>(kInterval));
  // The resumed epoch ran on the FULL rank set: no survivor traces, no
  // single-device rerun, and every rank's final trace completed.
  EXPECT_TRUE(res.recovery_ranks.empty());
  EXPECT_EQ(res.recovery.supersteps, 0);
  ASSERT_EQ(res.ranks.size(), static_cast<std::size_t>(kRanks));
  for (const auto& rr : res.ranks) EXPECT_FALSE(rr.failed);

  const auto classic = apps::classic_bfs(g, 0);
  ASSERT_EQ(res.global_values.size(), classic.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(res.global_values[v], classic[v]) << "vertex " << v;
}

// Retry budget: a transient fault that re-fires on every respawn exhausts
// RetryPolicy::max_attempts and falls down the ladder. With only two ranks
// rung 2 is impossible (no survivor pair), so the run finishes on rung 3's
// single-device engine.
TEST(RecoveryLadder, ExhaustedRetryBudgetFallsToSingleDevice) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(300));
  const auto g = test_graph();
  constexpr int kRanks = 2;
  constexpr int kVictim = 1;
  constexpr int kMaxAttempts = 2;
  auto owner = std::make_shared<std::vector<int>>(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    (*owner)[v] = static_cast<int>(v % kRanks);
  // One more shot than the budget: both respawned epochs re-fault, the
  // budget runs dry, and the last shot is consumed before rung 3 runs.
  const ShotThrowOnRank<apps::Bfs> prog(apps::Bfs(0), owner, kVictim,
                                        /*superstep=*/2,
                                        /*shots=*/kMaxAttempts + 1,
                                        /*transient=*/true);
  std::vector<EngineConfig> cfgs;
  for (int r = 0; r < kRanks; ++r) {
    auto c = cpu_cfg();
    if (r == kVictim) c.threads = 1;
    c.retry.max_attempts = kMaxAttempts;
    c.retry.backoff_ms = 0;
    cfgs.push_back(c);
  }
  core::ClusterEngine<ShotThrowOnRank<apps::Bfs>> ce(g, *owner, prog, cfgs);
  const auto res = ce.run();

  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  EXPECT_EQ(res.failover.attempts, static_cast<std::uint64_t>(kMaxAttempts));
  EXPECT_EQ(res.failover.rung, 3u);
  // Two rung-1 respawns + the final rung-3 epoch.
  EXPECT_EQ(res.failover.epochs, 3u);
  EXPECT_EQ(res.failover.epoch_recovery_ms.size(), 3u);
  EXPECT_GT(res.recovery.supersteps, 0);

  const auto classic = apps::classic_bfs(g, 0);
  ASSERT_EQ(res.global_values.size(), classic.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(res.global_values[v], classic[v]) << "vertex " << v;
}

// Rung 2 -> rung 3 handoff: a permanent fault repartitions onto the
// survivors, a SECOND permanent fault (following the dead rank's vertices to
// their new owner) kills the survivor run too, and rung 3 finishes the job
// from the SURVIVORS' checkpoint stores.
TEST(RecoveryLadder, RepartitionFaultFallsToSingleDevice) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(300));
  const auto g = test_graph();
  constexpr int kRanks = 4;
  constexpr int kInterval = 2;
  constexpr int kVictim = 2;
  auto owner = std::make_shared<std::vector<int>>(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    (*owner)[v] = static_cast<int>(v % kRanks);
  const ShotThrowOnRank<apps::Bfs> prog(apps::Bfs(0), owner, kVictim,
                                        /*superstep=*/3, /*shots=*/2,
                                        /*transient=*/false);
  std::vector<EngineConfig> cfgs;
  for (int r = 0; r < kRanks; ++r) {
    auto c = cpu_cfg();
    if (r == kVictim) c.threads = 1;
    c.checkpoint.interval = kInterval;
    c.retry.backoff_ms = 0;
    cfgs.push_back(c);
  }
  core::ClusterEngine<ShotThrowOnRank<apps::Bfs>> ce(g, *owner, prog, cfgs);
  const auto res = ce.run();

  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  EXPECT_EQ(res.fault.kind, fault::FaultKind::kPermanent);
  EXPECT_EQ(res.failover.attempts, 0u);  // permanent faults get no retries
  EXPECT_EQ(res.failover.rung, 3u);
  EXPECT_EQ(res.failover.epochs, 2u);  // rung-2 epoch + rung-3 epoch
  EXPECT_EQ(res.recovery_ranks.size(), static_cast<std::size_t>(kRanks - 1));
  EXPECT_GT(res.recovery.supersteps, 0);
  EXPECT_LT(res.failover.lost_supersteps,
            static_cast<std::uint64_t>(kInterval));

  const auto classic = apps::classic_bfs(g, 0);
  ASSERT_EQ(res.global_values.size(), classic.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(res.global_values[v], classic[v]) << "vertex " << v;
}

// The rung-3 engine's thread team is sized from the COMBINED rank budgets
// (the dead cluster's whole allotment is free), unless recovery_threads pins
// it explicitly.
TEST(RecoveryLadder, RecoveryEngineSizesThreadsFromCombinedBudgets) {
  const auto g = graph::paper_example_graph();
  auto owner = std::make_shared<std::vector<int>>(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    (*owner)[v] = static_cast<int>(v % 2);
  // cpu_cfg: 3 threads (locking); mic_cfg: 3 workers + 2 movers (pipelining)
  // -> combined budget 8. Rank 0 is locking, so the recovery engine gets all
  // 8 as workers.
  {
    core::ClusterEngine<apps::Bfs> ce(g, *owner, apps::Bfs(0),
                                      {cpu_cfg(), mic_cfg()});
    EXPECT_EQ(ce.recovery_config().threads, 8);
    EXPECT_EQ(ce.recovery_config().checkpoint.interval, 0);
  }
  {
    auto cc = cpu_cfg();
    cc.recovery_threads = 1;  // explicit pin wins (deterministic recoveries)
    core::ClusterEngine<apps::Bfs> ce(g, *owner, apps::Bfs(0),
                                      {cc, mic_cfg()});
    EXPECT_EQ(ce.recovery_config().threads, 1);
  }
}

// Kill each rank of a 4-rank cluster exactly once with a PERMANENT fault.
// The ladder's rung 2 writes the victim off: its vertices are repartitioned
// over the three survivors, which restore from the newest superstep present
// in *all* checkpoint stores and finish the run on N-1 ranks. Lost work
// stays under the checkpoint interval, and BFS levels (min-combine,
// order-independent) are bit-identical to the fault-free answer.
TEST(ClusterFailover, KillEachRankRecoversBitIdentical) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(300));
  const auto g = test_graph();
  constexpr int kRanks = 4;
  constexpr int kInterval = 2;
  constexpr int kFaultAt = 3;  // checkpoint at 2 -> resume 2, lose 1
  auto owner = std::make_shared<std::vector<int>>(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    (*owner)[v] = static_cast<int>(v % kRanks);
  const auto classic = apps::classic_bfs(g, 0);

  for (int victim = 0; victim < kRanks; ++victim) {
    const ThrowOnRank<apps::Bfs> prog(apps::Bfs(0), owner, victim, kFaultAt);
    std::vector<EngineConfig> cfgs;
    for (int r = 0; r < kRanks; ++r) {
      auto c = r % 2 == 0 ? cpu_cfg() : mic_cfg();
      c.checkpoint.interval = kInterval;
      cfgs.push_back(c);
    }
    core::ClusterEngine<ThrowOnRank<apps::Bfs>> ce(g, *owner, prog, cfgs);
    const auto res = ce.run();

    ASSERT_TRUE(res.completed)
        << "victim " << victim << ": " << res.fault.to_string();
    EXPECT_EQ(res.failover.failed_over, 1u) << "victim " << victim;
    EXPECT_EQ(res.fault.rank, victim) << "origin report names wrong rank";
    EXPECT_EQ(res.fault.superstep, kFaultAt) << "victim " << victim;
    EXPECT_EQ(res.fault.phase, "update") << "victim " << victim;
    // A permanent fault with a known culprit and 3 survivors stops at rung 2
    // (survivor repartition); no retry attempts are spent on it.
    EXPECT_EQ(res.failover.rung, 2u) << "victim " << victim;
    EXPECT_EQ(res.failover.attempts, 0u) << "victim " << victim;
    EXPECT_EQ(res.failover.epochs, 1u) << "victim " << victim;
    EXPECT_EQ(res.recovery_ranks.size(), static_cast<std::size_t>(kRanks - 1))
        << "victim " << victim;
    for (const auto& rr : res.recovery_ranks)
      EXPECT_FALSE(rr.failed) << "victim " << victim;
    EXPECT_LT(res.failover.lost_supersteps,
              static_cast<std::uint64_t>(kInterval))
        << "victim " << victim;
    ASSERT_EQ(res.global_values.size(), classic.size());
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(res.global_values[v], classic[v])
          << "victim " << victim << " vertex " << v;
  }
}

TEST(SingleDeviceFaults, UserExceptionsStillPropagateToTheCaller) {
  // run_single keeps its historical contract: no peer to poison, so the
  // user-program exception surfaces on the calling thread.
  const auto g = graph::paper_example_graph();
  auto owner = std::make_shared<std::vector<Device>>(g.num_vertices(),
                                                     Device::Cpu);
  const ThrowOn<apps::PageRank> prog(apps::PageRank(), owner, Device::Cpu,
                                     /*superstep=*/1);
  EngineConfig cfg = cpu_cfg();
  cfg.max_supersteps = 5;
  EXPECT_THROW((void)core::run_single(g, prog, cfg), std::runtime_error);
}

}  // namespace
