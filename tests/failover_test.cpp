// Heterogeneous failover tests that need no fault build: a vertex program
// that throws mid-run stands in for a device failure. These pin down the
// contracts the fault-injection matrix relies on:
//
//  * HeteroEngine::run() survives an exception on either device thread — the
//    scope-guard joiner means no std::terminate with a joinable thread — and
//    finishes CPU-only instead of crashing;
//  * checkpointed recovery is exact: BFS levels after a mid-run MIC failure
//    are bit-identical to a fault-free single-device run (min-combine is
//    reduction-order independent);
//  * from-scratch recovery re-runs the full computation, so with a
//    deterministic (single-thread) config PageRank floats are bit-identical
//    to the same-config single-device reference;
//  * lost work is bounded by the checkpoint interval;
//  * single-device runs keep the historical contract: user exceptions
//    propagate to the caller.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/apps/bfs.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/reference.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/graph/paper_example.hpp"
#include "tests/watchdog.hpp"

namespace {

using namespace phigraph;
using core::EngineConfig;
using core::ExecMode;

/// Wraps a vertex program; update_vertex throws exactly once, process-wide,
/// when updating a vertex owned by `device` during `superstep`. Because
/// update runs on the owning engine only, this kills precisely that rank.
/// The one-shot latch keeps the throw out of the recovery run (which covers
/// both partitions and would otherwise die at the same superstep again).
template <typename Base>
class ThrowOn : public Base {
 public:
  ThrowOn(Base base, std::shared_ptr<const std::vector<Device>> owner,
          Device device, int superstep)
      : Base(std::move(base)),
        owner_(std::move(owner)),
        device_(device),
        superstep_(superstep),
        fired_(std::make_shared<std::atomic<bool>>(false)) {}

  template <typename View>
  bool update_vertex(const typename Base::message_t& msg, View& g,
                     vid_t u) const {
    if (g.superstep == superstep_ && (*owner_)[g.global_id[u]] == device_ &&
        !fired_->exchange(true))
      throw std::runtime_error("synthetic device failure");
    return Base::update_vertex(msg, g, u);
  }

 private:
  std::shared_ptr<const std::vector<Device>> owner_;
  Device device_;
  int superstep_;
  std::shared_ptr<std::atomic<bool>> fired_;
};

std::shared_ptr<const std::vector<Device>> round_robin_owner(vid_t n) {
  auto owner = std::make_shared<std::vector<Device>>(n);
  for (vid_t v = 0; v < n; ++v)
    (*owner)[v] = v % 2 == 0 ? Device::Cpu : Device::Mic;
  return owner;
}

EngineConfig cpu_cfg() {
  EngineConfig c;
  c.mode = ExecMode::kLocking;
  c.simd_bytes = simd::kCpuSimdBytes;
  c.threads = 3;
  c.sched_chunk = 16;
  return c;
}

EngineConfig mic_cfg() {
  EngineConfig c;
  c.mode = ExecMode::kPipelining;
  c.simd_bytes = simd::kMicSimdBytes;
  c.threads = 3;
  c.movers = 2;
  c.sched_chunk = 16;
  c.queue_capacity = 256;
  return c;
}

graph::Csr test_graph() { return gen::pokec_like(3000, 30000, 7); }

TEST(HeteroFailover, ThrowingProgramFailsOverInsteadOfTerminating) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));
  const auto g = test_graph();
  auto owner = round_robin_owner(g.num_vertices());
  const ThrowOn<apps::PageRank> prog(apps::PageRank(), owner, Device::Mic,
                                     /*superstep=*/2);
  auto cc = cpu_cfg();
  auto mc = mic_cfg();
  cc.max_supersteps = mc.max_supersteps = 10;
  core::HeteroEngine<ThrowOn<apps::PageRank>> he(g, *owner, prog, cc, mc);
  const auto res = he.run();

  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  EXPECT_EQ(res.fault.rank, 1);
  EXPECT_EQ(res.fault.superstep, 2);
  EXPECT_EQ(res.fault.phase, "update");
  // No checkpointing: recovery restarted from superstep 0.
  EXPECT_EQ(res.failover.lost_supersteps, 2u);
  const auto classic = apps::classic_pagerank(g, 10);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(res.global_values[v], classic[v], 1e-3f * (1.0f + classic[v]))
        << "vertex " << v;
}

TEST(HeteroFailover, BfsCheckpointRecoveryIsBitIdenticalToSingleDevice) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));
  const auto g = test_graph();
  auto owner = round_robin_owner(g.num_vertices());
  const ThrowOn<apps::Bfs> prog(apps::Bfs(0), owner, Device::Mic,
                                /*superstep=*/2);
  auto cc = cpu_cfg();
  auto mc = mic_cfg();
  cc.checkpoint.interval = mc.checkpoint.interval = 2;
  core::HeteroEngine<ThrowOn<apps::Bfs>> he(g, *owner, prog, cc, mc);
  const auto res = he.run();

  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  EXPECT_EQ(res.fault.rank, 1);
  EXPECT_LT(res.failover.lost_supersteps, 2u);

  // BFS levels reduce with min — order-independent — so the recovered values
  // must be *bit-identical* to a fault-free single-device run.
  const auto ref = core::run_single(g, apps::Bfs(0), cpu_cfg());
  ASSERT_EQ(res.global_values.size(), ref.values.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.global_values[v], ref.values[v]) << "vertex " << v;
}

TEST(HeteroFailover, PageRankFromScratchRecoveryIsBitIdentical) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));
  const auto g = graph::paper_example_graph();
  auto owner = round_robin_owner(g.num_vertices());
  // Single-threaded locking config: float reduction order is deterministic,
  // so a from-scratch CPU-only recovery must reproduce the single-device
  // run bit for bit (the recovery config is the CPU config).
  EngineConfig det;
  det.mode = ExecMode::kLocking;
  det.simd_bytes = simd::kCpuSimdBytes;
  det.threads = 1;
  det.max_supersteps = 12;
  const ThrowOn<apps::PageRank> prog(apps::PageRank(), owner, Device::Mic,
                                     /*superstep=*/3);
  core::HeteroEngine<ThrowOn<apps::PageRank>> he(g, *owner, prog, det, det);
  const auto res = he.run();

  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  const auto ref = core::run_single(g, apps::PageRank(), det);
  ASSERT_EQ(res.global_values.size(), ref.values.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.global_values[v], ref.values[v]) << "vertex " << v;
}

TEST(HeteroFailover, LostSuperstepsAreBoundedByTheCheckpointInterval) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));
  const auto g = test_graph();
  auto owner = round_robin_owner(g.num_vertices());
  constexpr int kInterval = 3;
  constexpr int kFaultAt = 7;  // checkpoints at 3, 6 -> resume 6, lose 1
  const ThrowOn<apps::PageRank> prog(apps::PageRank(), owner, Device::Mic,
                                     kFaultAt);
  auto cc = cpu_cfg();
  auto mc = mic_cfg();
  cc.max_supersteps = mc.max_supersteps = 10;
  cc.checkpoint.interval = mc.checkpoint.interval = kInterval;
  core::HeteroEngine<ThrowOn<apps::PageRank>> he(g, *owner, prog, cc, mc);
  const auto res = he.run();

  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  EXPECT_EQ(res.failover.lost_supersteps, 1u);
  EXPECT_LT(res.failover.lost_supersteps,
            static_cast<std::uint64_t>(kInterval));
  EXPECT_GE(res.failover.recovery_ms, 0.0);
  const auto classic = apps::classic_pagerank(g, 10);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(res.global_values[v], classic[v], 1e-3f * (1.0f + classic[v]))
        << "vertex " << v;
}

TEST(HeteroFailover, CpuFaultAlsoFailsOver) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(120));
  const auto g = test_graph();
  auto owner = round_robin_owner(g.num_vertices());
  const ThrowOn<apps::Bfs> prog(apps::Bfs(0), owner, Device::Cpu,
                                /*superstep=*/1);
  core::HeteroEngine<ThrowOn<apps::Bfs>> he(g, *owner, prog, cpu_cfg(),
                                            mic_cfg());
  const auto res = he.run();
  ASSERT_TRUE(res.completed) << res.fault.to_string();
  EXPECT_EQ(res.failover.failed_over, 1u);
  EXPECT_EQ(res.fault.rank, 0);
  const auto classic = apps::classic_bfs(g, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.global_values[v], classic[v]) << "vertex " << v;
}

// ---- N-rank kill matrix -----------------------------------------------------

/// Rank-generalized ThrowOn: kills a specific rank of an N-rank cluster by
/// throwing once while updating a vertex that rank owns. (fault::FaultPlan
/// stays device-indexed, so the N-rank matrix injects through the program.)
template <typename Base>
class ThrowOnRank : public Base {
 public:
  ThrowOnRank(Base base, std::shared_ptr<const std::vector<int>> owner,
              int rank, int superstep)
      : Base(std::move(base)),
        owner_(std::move(owner)),
        rank_(rank),
        superstep_(superstep),
        fired_(std::make_shared<std::atomic<bool>>(false)) {}

  template <typename View>
  bool update_vertex(const typename Base::message_t& msg, View& g,
                     vid_t u) const {
    if (g.superstep == superstep_ && (*owner_)[g.global_id[u]] == rank_ &&
        !fired_->exchange(true))
      throw std::runtime_error("synthetic rank failure");
    return Base::update_vertex(msg, g, u);
  }

 private:
  std::shared_ptr<const std::vector<int>> owner_;
  int rank_;
  int superstep_;
  std::shared_ptr<std::atomic<bool>> fired_;
};

// Kill each rank of a 4-rank cluster exactly once. Whichever rank dies, the
// survivors' checkpoint stores recombine to the newest superstep present in
// *all* of them, the recovery run finishes the job, lost work stays under
// the checkpoint interval, and BFS levels (min-combine, order-independent)
// are bit-identical to the fault-free answer.
TEST(ClusterFailover, KillEachRankRecoversBitIdentical) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(300));
  const auto g = test_graph();
  constexpr int kRanks = 4;
  constexpr int kInterval = 2;
  constexpr int kFaultAt = 3;  // checkpoint at 2 -> resume 2, lose 1
  auto owner = std::make_shared<std::vector<int>>(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    (*owner)[v] = static_cast<int>(v % kRanks);
  const auto classic = apps::classic_bfs(g, 0);

  for (int victim = 0; victim < kRanks; ++victim) {
    const ThrowOnRank<apps::Bfs> prog(apps::Bfs(0), owner, victim, kFaultAt);
    std::vector<EngineConfig> cfgs;
    for (int r = 0; r < kRanks; ++r) {
      auto c = r % 2 == 0 ? cpu_cfg() : mic_cfg();
      c.checkpoint.interval = kInterval;
      cfgs.push_back(c);
    }
    core::ClusterEngine<ThrowOnRank<apps::Bfs>> ce(g, *owner, prog, cfgs);
    const auto res = ce.run();

    ASSERT_TRUE(res.completed)
        << "victim " << victim << ": " << res.fault.to_string();
    EXPECT_EQ(res.failover.failed_over, 1u) << "victim " << victim;
    EXPECT_EQ(res.fault.rank, victim) << "origin report names wrong rank";
    EXPECT_EQ(res.fault.superstep, kFaultAt) << "victim " << victim;
    EXPECT_EQ(res.fault.phase, "update") << "victim " << victim;
    EXPECT_LT(res.failover.lost_supersteps,
              static_cast<std::uint64_t>(kInterval))
        << "victim " << victim;
    ASSERT_EQ(res.global_values.size(), classic.size());
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(res.global_values[v], classic[v])
          << "victim " << victim << " vertex " << v;
  }
}

TEST(SingleDeviceFaults, UserExceptionsStillPropagateToTheCaller) {
  // run_single keeps its historical contract: no peer to poison, so the
  // user-program exception surfaces on the calling thread.
  const auto g = graph::paper_example_graph();
  auto owner = std::make_shared<std::vector<Device>>(g.num_vertices(),
                                                     Device::Cpu);
  const ThrowOn<apps::PageRank> prog(apps::PageRank(), owner, Device::Cpu,
                                     /*superstep=*/1);
  EngineConfig cfg = cpu_cfg();
  cfg.max_supersteps = 5;
  EXPECT_THROW((void)core::run_single(g, prog, cfg), std::runtime_error);
}

}  // namespace
