// Property tests for the SIMD vector types: every intrinsic specialization
// must agree with scalar lane-by-lane semantics on random inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "src/common/rng.hpp"
#include "src/simd/simd.hpp"

namespace {

using namespace phigraph;
using namespace phigraph::simd;

template <typename T>
T random_value(Rng& rng);

template <>
float random_value<float>(Rng& rng) {
  return rng.uniform(-100.0f, 100.0f);
}
template <>
double random_value<double>(Rng& rng) {
  return static_cast<double>(rng.uniform(-100.0f, 100.0f));
}
template <>
std::int32_t random_value<std::int32_t>(Rng& rng) {
  return static_cast<std::int32_t>(rng.below(20001)) - 10000;
}

template <typename T, int W>
void check_semantics(std::uint64_t seed) {
  using V = Vec<T, W>;
  Rng rng(seed);
  for (int rep = 0; rep < 200; ++rep) {
    alignas(64) T a[W], b[W];
    for (int i = 0; i < W; ++i) {
      a[i] = random_value<T>(rng);
      b[i] = random_value<T>(rng);
      if (b[i] == T{0}) b[i] = T{1};  // keep division defined
    }
    const V va = V::load(a), vb = V::load(b);

    for (int i = 0; i < W; ++i) {
      EXPECT_EQ((va + vb)[i], static_cast<T>(a[i] + b[i]));
      EXPECT_EQ((va - vb)[i], static_cast<T>(a[i] - b[i]));
      EXPECT_EQ((va * vb)[i], static_cast<T>(a[i] * b[i]));
      EXPECT_EQ((va / vb)[i], static_cast<T>(a[i] / b[i]));
      EXPECT_EQ(min(va, vb)[i], std::min(a[i], b[i]));
      EXPECT_EQ(max(va, vb)[i], std::max(a[i], b[i]));
      EXPECT_EQ((-va)[i], static_cast<T>(-a[i]));
      EXPECT_EQ(abs(va)[i], a[i] < T{0} ? static_cast<T>(-a[i]) : a[i]);
    }

    // Comparisons -> masks.
    const auto lt = va < vb;
    const auto le = va <= vb;
    const auto eq = va == vb;
    const auto gt = va > vb;
    for (int i = 0; i < W; ++i) {
      EXPECT_EQ(lt[i], a[i] < b[i]);
      EXPECT_EQ(le[i], a[i] <= b[i]);
      EXPECT_EQ(eq[i], a[i] == b[i]);
      EXPECT_EQ(gt[i], a[i] > b[i]);
    }

    // blend keeps a where mask set, b elsewhere.
    const V bl = blend(lt, va, vb);
    for (int i = 0; i < W; ++i) EXPECT_EQ(bl[i], a[i] < b[i] ? a[i] : b[i]);

    // Horizontal reductions.
    T sum{0}, mn = a[0], mx = a[0];
    for (int i = 0; i < W; ++i) {
      sum = static_cast<T>(sum + a[i]);
      mn = std::min(mn, a[i]);
      mx = std::max(mx, a[i]);
    }
    EXPECT_EQ(reduce_min(va), mn);
    EXPECT_EQ(reduce_max(va), mx);
    if constexpr (std::is_integral_v<T>) {
      EXPECT_EQ(reduce_add(va), sum);
    } else {
      EXPECT_NEAR(reduce_add(va), sum, std::abs(static_cast<double>(sum)) * 1e-4 + 1e-3);
    }

    // Broadcast + compound assignment.
    V c(T{3});
    c += va;
    for (int i = 0; i < W; ++i) EXPECT_EQ(c[i], static_cast<T>(a[i] + T{3}));

    // Store round-trip.
    alignas(64) T out[W];
    va.store(out);
    for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i]);
    va.storeu(out);
    for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i]);
  }
}

TEST(SimdVec, FloatW4MatchesScalar) { check_semantics<float, 4>(1); }
TEST(SimdVec, FloatW8MatchesScalar) { check_semantics<float, 8>(2); }
TEST(SimdVec, FloatW16MatchesScalar) { check_semantics<float, 16>(3); }
TEST(SimdVec, Int32W4MatchesScalar) { check_semantics<std::int32_t, 4>(4); }
TEST(SimdVec, Int32W8MatchesScalar) { check_semantics<std::int32_t, 8>(5); }
TEST(SimdVec, Int32W16MatchesScalar) { check_semantics<std::int32_t, 16>(6); }
TEST(SimdVec, DoubleW2MatchesScalar) { check_semantics<double, 2>(7); }
TEST(SimdVec, DoubleW4MatchesScalar) { check_semantics<double, 4>(8); }
TEST(SimdVec, DoubleW8MatchesScalar) { check_semantics<double, 8>(9); }
// Odd widths exercise the generic template.
TEST(SimdVec, FloatW2Generic) { check_semantics<float, 2>(10); }
TEST(SimdVec, Int32W32Generic) { check_semantics<std::int32_t, 32>(11); }

TEST(SimdVec, BackendSelection) {
#if defined(__AVX512F__)
  EXPECT_EQ((backend_of<float, 16>()), Backend::Avx512);
#endif
#if defined(__AVX2__)
  EXPECT_EQ((backend_of<float, 8>()), Backend::Avx2);
#endif
#if defined(__SSE4_2__)
  EXPECT_EQ((backend_of<float, 4>()), Backend::Sse);
#endif
  EXPECT_EQ((backend_of<float, 2>()), Backend::Generic);
}

TEST(SimdVec, LanesForDeviceProfiles) {
  // The paper: 16 floats on MIC, 4 on CPU; 8 (4) doubles respectively.
  EXPECT_EQ(lanes_for<float>(kMicSimdBytes), 16);
  EXPECT_EQ(lanes_for<float>(kCpuSimdBytes), 4);
  EXPECT_EQ(lanes_for<double>(kMicSimdBytes), 8);
  EXPECT_EQ(lanes_for<double>(kCpuSimdBytes), 2);
  EXPECT_EQ(lanes_for<std::int32_t>(kMicSimdBytes), 16);
  // Non-basic message types always fall back to scalar columns.
  struct Fat {
    char bytes[80];
  };
  EXPECT_EQ(lanes_for<Fat>(kMicSimdBytes), 1);
}

TEST(SimdMask, Basics) {
  auto m = Mask<16>::first_n(5);
  EXPECT_EQ(m.count(), 5);
  EXPECT_TRUE(m[0]);
  EXPECT_TRUE(m[4]);
  EXPECT_FALSE(m[5]);
  EXPECT_TRUE(m.any());
  EXPECT_FALSE(m.all_set());
  EXPECT_TRUE(Mask<16>::all().all_set());
  EXPECT_FALSE(Mask<16>::none().any());
  EXPECT_EQ((~m).count(), 11);
  EXPECT_EQ((m & ~m).count(), 0);
  EXPECT_EQ((m | ~m).count(), 16);
  m.set(5, true);
  EXPECT_TRUE(m[5]);
  m.set(5, false);
  EXPECT_FALSE(m[5]);
}

TEST(SimdVec, AlignmentAndSize) {
  static_assert(sizeof(Vec<float, 16>) == 64);
  static_assert(alignof(Vec<float, 16>) == 64);
  static_assert(sizeof(Vec<float, 4>) == 16);
  static_assert(alignof(Vec<float, 4>) == 16);
  static_assert(sizeof(Vec<double, 8>) == 64);
  static_assert(sizeof(Vec<std::int32_t, 8>) == 32);
  SUCCEED();
}

}  // namespace
