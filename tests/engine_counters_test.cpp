// Deep counter-accounting tests: the performance model is only as good as
// the counters, so the counters themselves are pinned down here across
// execution modes and device profiles.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/apps/bfs.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/sssp.hpp"
#include "src/apps/toposort.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/graph/io.hpp"
#include "src/partition/partition.hpp"

namespace {

using namespace phigraph;
using core::EngineConfig;
using core::ExecMode;

EngineConfig cfg(ExecMode mode, int simd_bytes = 64) {
  EngineConfig c;
  c.mode = mode;
  c.simd_bytes = simd_bytes;
  c.threads = 3;
  c.movers = 2;
  return c;
}

graph::Csr weighted_graph() {
  auto g = gen::pokec_like(4000, 60000, 31);
  gen::add_random_weights(g, 6);
  return g;
}

TEST(EngineCounters, StructuralCountersAreModeIndependent) {
  // Messages, destinations, conflicts, active vertices and updates are
  // functions of graph + algorithm, not of the execution scheme — the
  // property the auto-tuner and the bench methodology rely on.
  const auto g = weighted_graph();
  const apps::Sssp prog(0);
  const auto lock = core::run_single(g, prog, cfg(ExecMode::kLocking));
  const auto pipe = core::run_single(g, prog, cfg(ExecMode::kPipelining));
  const auto omp = core::run_single(g, prog, cfg(ExecMode::kOmpStyle, 16));

  ASSERT_EQ(lock.run.trace.size(), pipe.run.trace.size());
  ASSERT_EQ(lock.run.trace.size(), omp.run.trace.size());
  for (std::size_t s = 0; s < lock.run.trace.size(); ++s) {
    const auto& a = lock.run.trace[s];
    const auto& b = pipe.run.trace[s];
    const auto& c = omp.run.trace[s];
    EXPECT_EQ(a.active_vertices, b.active_vertices);
    EXPECT_EQ(a.active_vertices, c.active_vertices);
    EXPECT_EQ(a.edges_scanned, b.edges_scanned);
    EXPECT_EQ(a.msgs_local, b.msgs_local);
    EXPECT_EQ(a.msgs_local, c.msgs_local);
    EXPECT_EQ(a.columns_allocated, b.columns_allocated);
    EXPECT_EQ(a.columns_allocated, c.columns_allocated);
    EXPECT_EQ(a.column_conflicts, b.column_conflicts);
    EXPECT_EQ(a.verts_updated, b.verts_updated);
    EXPECT_EQ(a.verts_updated, c.verts_updated);
  }
}

TEST(EngineCounters, LaneWidthChangesRowsNotMessages) {
  const auto g = weighted_graph();
  const apps::Sssp prog(0);
  // Push pinned: lane-width accounting of the CSB reduction is the subject;
  // pull supersteps would bypass the CSB entirely.
  auto cpu_cfg = cfg(ExecMode::kLocking, 16);
  auto mic_cfg = cfg(ExecMode::kLocking, 64);
  cpu_cfg.direction_mode = core::DirectionMode::kForcePush;
  mic_cfg.direction_mode = core::DirectionMode::kForcePush;
  const auto cpu = core::run_single(g, prog, cpu_cfg);
  const auto mic = core::run_single(g, prog, mic_cfg);
  const auto tc = metrics::totals(cpu.run.trace);
  const auto tm = metrics::totals(mic.run.trace);
  EXPECT_EQ(tc.msgs_local, tm.msgs_local);
  // Wider lanes -> fewer rows to reduce, but more padded bubble cells.
  EXPECT_GT(tc.vector_rows, tm.vector_rows);
  EXPECT_LT(tc.padded_cells, tm.padded_cells);
}

TEST(EngineCounters, BfsSkipsReductionEntirely) {
  const auto g = gen::pokec_like(3000, 30000, 12);
  const auto res = core::run_single(g, apps::Bfs{0}, cfg(ExecMode::kLocking));
  const auto t = metrics::totals(res.run.trace);
  EXPECT_EQ(t.vector_rows, 0u);   // no SIMD reduction sub-step
  EXPECT_EQ(t.scalar_msgs, 0u);   // no scalar reduction either
  EXPECT_GT(t.msgs_local, 0u);
}

TEST(EngineCounters, PageRankScansEveryEdgeEverySuperstep) {
  const auto g = gen::pokec_like(2000, 24000, 14);
  auto c = cfg(ExecMode::kLocking);
  c.max_supersteps = 4;
  const auto res = core::run_single(g, apps::PageRank{}, c);
  for (const auto& step : res.run.trace) {
    EXPECT_EQ(step.active_vertices, g.num_vertices());
    EXPECT_EQ(step.edges_scanned, g.num_edges());
    EXPECT_EQ(step.msgs_local, g.num_edges());
  }
}

TEST(EngineCounters, TopoSortMessageTotalEqualsEdges) {
  // Every edge delivers exactly one "decrement" message over the whole run.
  const auto g = gen::dag_like(600, 40000, 15, 12);
  const auto res = core::run_single(g, apps::TopoSort{}, cfg(ExecMode::kPipelining));
  EXPECT_EQ(metrics::totals(res.run.trace).msgs_local, g.num_edges());
}

TEST(EngineCounters, HeteroSplitsMessagesByOwnership) {
  const auto g = weighted_graph();
  const apps::Sssp prog(0);
  // Single-device totals for comparison — push pinned, because the split
  // run below always pushes (pull needs local in-neighbor values) and
  // msgs_local counts pushed messages only.
  auto solo_cfg = cfg(ExecMode::kLocking);
  solo_cfg.direction_mode = core::DirectionMode::kForcePush;
  const auto solo = core::run_single(g, prog, solo_cfg);
  const auto solo_msgs = metrics::totals(solo.run.trace).msgs_local;

  auto owner = partition::round_robin_partition(g, {1, 1});
  core::HeteroEngine<apps::Sssp> he(g, std::move(owner), prog,
                                    cfg(ExecMode::kLocking, 16),
                                    cfg(ExecMode::kLocking, 64));
  auto res = he.run();
  const auto tc = metrics::totals(res.cpu.trace);
  const auto tm = metrics::totals(res.mic.trace);

  // Local + remote generation covers every edge-message exactly once.
  EXPECT_EQ(tc.msgs_local + tc.msgs_remote + tm.msgs_local + tm.msgs_remote,
            solo_msgs);
  // Remote messages are combined: fewer arrive than were deposited.
  EXPECT_LE(tc.msgs_received, tm.msgs_remote);
  EXPECT_LE(tm.msgs_received, tc.msgs_remote);
  EXPECT_GT(tc.msgs_received, 0u);
  // Each device updated only its own vertices.
  EXPECT_GT(tc.verts_updated, 0u);
  EXPECT_GT(tm.verts_updated, 0u);
}

TEST(EngineCounters, LockAccountingPerMode) {
  const auto g = weighted_graph();
  const apps::Sssp prog(0);
  const auto lock = core::run_single(g, prog, cfg(ExecMode::kLocking));
  const auto pipe = core::run_single(g, prog, cfg(ExecMode::kPipelining));
  const auto tl = metrics::totals(lock.run.trace);
  const auto tp = metrics::totals(pipe.run.trace);
  // Locking: >= one column-lock acquisition per message (+ allocations).
  EXPECT_GE(tl.lock_acquisitions, tl.msgs_local);
  // Pipelining: locks only for column allocation — far fewer.
  EXPECT_LT(tp.lock_acquisitions, tp.msgs_local / 2);
  EXPECT_EQ(tp.queue_pushes, tp.msgs_local);
}

TEST(EngineCounters, FileRoundTripProducesIdenticalRun) {
  // Save to the binary format (bit-exact weights), reload, rerun: identical
  // trace and results (the whole-pipeline determinism guarantee).
  const auto g = weighted_graph();
  const auto path =
      (std::filesystem::temp_directory_path() / "pg_counters_rt.pgb").string();
  graph::save_binary(g, path);
  const auto g2 = graph::load_binary(path);
  std::filesystem::remove(path);

  const apps::Sssp prog(0);
  const auto a = core::run_single(g, prog, cfg(ExecMode::kLocking));
  const auto b = core::run_single(g2, prog, cfg(ExecMode::kLocking));
  EXPECT_EQ(a.values, b.values);
  ASSERT_EQ(a.run.trace.size(), b.run.trace.size());
  for (std::size_t s = 0; s < a.run.trace.size(); ++s)
    EXPECT_EQ(a.run.trace[s].msgs_local, b.run.trace[s].msgs_local);
}

}  // namespace
