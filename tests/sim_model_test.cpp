// Performance-model tests: the model is calibrated, but its *structure* must
// obey sanity invariants (monotonicity, device relationships, accounting).
#include <gtest/gtest.h>

#include "src/metrics/counters.hpp"
#include "src/sim/device_spec.hpp"
#include "src/sim/model.hpp"

namespace {

using namespace phigraph;
using core::ExecMode;
using metrics::SuperstepCounters;
using sim::DeviceSpec;
using sim::ExecProfile;

SuperstepCounters pagerank_like_superstep() {
  SuperstepCounters c;
  c.active_vertices = 100'000;
  c.edges_scanned = 2'000'000;
  c.msgs_local = 2'000'000;
  c.columns_allocated = 100'000;
  c.column_conflicts = 1'900'000;
  c.vector_rows = 160'000;
  c.padded_cells = 500'000;
  c.verts_updated = 100'000;
  c.sched_retrievals = 2'000;
  return c;
}

ExecProfile profile(ExecMode mode, int threads, int movers = 0) {
  ExecProfile p;
  p.mode = mode;
  p.threads = threads;
  p.movers = movers;
  p.lanes = 16;
  p.num_vertices = 100'000;
  return p;
}

TEST(DeviceSpec, EffectiveParallelismShape) {
  const auto mic = sim::xeon_phi_se10p();
  // More threads never reduce throughput; 240 threads = 60 core-equivalents.
  double prev = 0;
  for (int t : {1, 60, 120, 180, 240}) {
    const double p = mic.effective_parallelism(t);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(mic.effective_parallelism(240), 60.0);
  // One in-order thread achieves well under half a core.
  EXPECT_LT(mic.effective_parallelism(1), 0.5);

  const auto cpu = sim::xeon_e5_2680();
  EXPECT_DOUBLE_EQ(cpu.effective_parallelism(16), 16.0);
}

TEST(DeviceSpec, SequentialGapMatchesPaperBand) {
  // "even though the clock frequency of a CPU core is only 2.4 times faster
  //  than a core on MIC, a CPU core runs the same sequential code around
  //  11x faster" — our constants must land in that neighbourhood (5-16x).
  const auto cpu = sim::xeon_e5_2680();
  const auto mic = sim::xeon_phi_se10p();
  metrics::RunTrace trace{pagerank_like_superstep()};
  ExecProfile p = profile(ExecMode::kLocking, 1);
  const double tc = sim::model_sequential(trace, cpu, p);
  const double tm = sim::model_sequential(trace, mic, p);
  EXPECT_GT(tm / tc, 5.0);
  EXPECT_LT(tm / tc, 16.0);
}

TEST(Model, MoreThreadsNeverSlower) {
  const auto mic = sim::xeon_phi_se10p();
  const auto c = pagerank_like_superstep();
  double prev = 1e30;
  for (int t : {8, 32, 60, 120, 240}) {
    const double sec =
        sim::model_superstep(c, mic, profile(ExecMode::kLocking, t)).execution();
    EXPECT_LE(sec, prev * 1.0001) << t << " threads";
    prev = sec;
  }
}

TEST(Model, ContentionGrowsWithHotness) {
  const auto mic = sim::xeon_phi_se10p();
  auto cold = pagerank_like_superstep();
  cold.columns_allocated = cold.msgs_local;  // h = 1
  cold.column_conflicts = 0;
  auto hot = pagerank_like_superstep();
  hot.columns_allocated = 500;  // h = 4000 (TopoSort-like funnel)

  const auto p = profile(ExecMode::kLocking, 240);
  EXPECT_GT(sim::model_superstep(hot, mic, p).generation,
            1.5 * sim::model_superstep(cold, mic, p).generation);
}

TEST(Model, PipeliningBeatsLockingUnderContention) {
  const auto mic = sim::xeon_phi_se10p();
  const auto c = pagerank_like_superstep();
  const double lock =
      sim::model_superstep(c, mic, profile(ExecMode::kLocking, 240))
          .generation;
  const double pipe =
      sim::model_superstep(c, mic, profile(ExecMode::kPipelining, 180, 60))
          .generation;
  EXPECT_GT(lock, pipe);
}

TEST(Model, OmpPaysMoreThanFrameworkLockingAtHighHotness) {
  const auto mic = sim::xeon_phi_se10p();
  auto c = pagerank_like_superstep();
  c.columns_allocated = 500;  // funnel
  const double lock =
      sim::model_superstep(c, mic, profile(ExecMode::kLocking, 240))
          .generation;
  const double omp =
      sim::model_superstep(c, mic, profile(ExecMode::kOmpStyle, 240))
          .generation;
  EXPECT_GT(omp, lock);
}

TEST(Model, ExchangeOnlyWithLinkAndTraffic) {
  const auto cpu = sim::xeon_e5_2680();
  auto c = pagerank_like_superstep();
  const auto p = profile(ExecMode::kLocking, 16);
  EXPECT_EQ(sim::model_superstep(c, cpu, p, nullptr).exchange, 0.0);
  sim::LinkSpec link;
  EXPECT_EQ(sim::model_superstep(c, cpu, p, &link).exchange, 0.0);  // no bytes
  c.bytes_sent = 8'000'000;
  c.msgs_received = 200'000;
  c.bytes_received = 1'600'000;
  const double ex = sim::model_superstep(c, cpu, p, &link).exchange;
  EXPECT_GT(ex, 8e6 / (link.bandwidth_gbs * 1e9));  // at least the wire time
}

TEST(Model, HeteroLockstepTakesTheSlowerDevice) {
  const auto cpu = sim::xeon_e5_2680();
  const auto mic = sim::xeon_phi_se10p();
  metrics::RunTrace big{pagerank_like_superstep()};
  SuperstepCounters tiny_c;
  tiny_c.msgs_local = 10;
  tiny_c.columns_allocated = 10;
  tiny_c.active_vertices = 10;
  tiny_c.edges_scanned = 10;
  metrics::RunTrace tiny{tiny_c};

  const auto est = sim::model_hetero(big, cpu, profile(ExecMode::kLocking, 16),
                                     tiny, mic,
                                     profile(ExecMode::kPipelining, 180, 60),
                                     sim::LinkSpec{});
  const auto cpu_alone =
      sim::model_run(big, cpu, profile(ExecMode::kLocking, 16));
  // All the work is on the CPU: lockstep time ~= CPU execution time.
  EXPECT_NEAR(est.execution_seconds, cpu_alone.execution(),
              0.1 * cpu_alone.execution());
}

TEST(Model, SimdProfileSpeedsUpProcessing) {
  const auto mic = sim::xeon_phi_se10p();
  // Vectorized trace: rows instead of scalar messages.
  auto vec = pagerank_like_superstep();
  auto novec = pagerank_like_superstep();
  novec.vector_rows = 0;
  novec.padded_cells = 0;
  novec.scalar_msgs = novec.msgs_local;
  const auto p = profile(ExecMode::kLocking, 240);
  const double tv = sim::model_superstep(vec, mic, p).processing;
  const double ts = sim::model_superstep(novec, mic, p).processing;
  EXPECT_GT(ts / tv, 3.0);  // paper: 5.16-7.85x on MIC
}

TEST(Model, BranchyAppsPenalizedMoreOnMic) {
  const auto cpu = sim::xeon_e5_2680();
  const auto mic = sim::xeon_phi_se10p();
  auto c = pagerank_like_superstep();
  c.scalar_msgs = c.msgs_local;
  c.vector_rows = c.padded_cells = 0;

  auto plain = profile(ExecMode::kLocking, 240);
  auto branchy = plain;
  branchy.combine_weight = 20;
  branchy.branchy = true;
  auto plain_cpu = profile(ExecMode::kLocking, 16);
  auto branchy_cpu = plain_cpu;
  branchy_cpu.combine_weight = 20;
  branchy_cpu.branchy = true;

  const double mic_ratio = sim::model_superstep(c, mic, branchy).processing /
                           sim::model_superstep(c, mic, plain).processing;
  const double cpu_ratio =
      sim::model_superstep(c, cpu, branchy_cpu).processing /
      sim::model_superstep(c, cpu, plain_cpu).processing;
  EXPECT_GT(mic_ratio, cpu_ratio);  // in-order core suffers more
}

TEST(Model, PhaseTimesAccumulate) {
  sim::PhaseTimes a;
  a.generation = 1;
  a.processing = 2;
  a.update = 3;
  a.overhead = 4;
  a.exchange = 5;
  sim::PhaseTimes b = a;
  b += a;
  EXPECT_DOUBLE_EQ(a.execution(), 10.0);
  EXPECT_DOUBLE_EQ(a.total(), 15.0);
  EXPECT_DOUBLE_EQ(b.total(), 30.0);
}

}  // namespace
