// Scheduling substrate tests: spinlock, dynamic chunk scheduler, thread team.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "src/sched/dynamic_scheduler.hpp"
#include "src/sched/spinlock.hpp"
#include "src/sched/thread_team.hpp"

namespace {

using namespace phigraph;

TEST(SpinLock, MutualExclusion) {
  sched::SpinLock lock;
  std::int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        sched::LockGuard<sched::SpinLock> g(lock);
        ++counter;  // non-atomic: any lost update fails the final check
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(SpinLock, TryLock) {
  sched::SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(DynamicScheduler, CoversEveryTaskExactlyOnce) {
  constexpr std::size_t kTasks = 100'000;
  sched::DynamicScheduler sched(kTasks, 17);  // odd chunk: ragged tail
  std::vector<std::atomic<int>> seen(kTasks);
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t)
    threads.emplace_back([&] {
      while (auto r = sched.next_chunk())
        for (std::size_t i = r->begin; i < r->end; ++i)
          seen[i].fetch_add(1, std::memory_order_relaxed);
    });
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i < kTasks; ++i)
    ASSERT_EQ(seen[i].load(), 1) << "task " << i;
}

TEST(DynamicScheduler, RetrievalCountMatchesChunking) {
  sched::DynamicScheduler sched(1000, 64);
  std::size_t total = 0;
  while (auto r = sched.next_chunk()) total += r->size();
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(sched.retrievals(), (1000 + 63) / 64);
}

TEST(DynamicScheduler, EmptyAndReset) {
  sched::DynamicScheduler sched(0, 8);
  EXPECT_FALSE(sched.next_chunk().has_value());
  sched.reset(5, 8);
  auto r = sched.next_chunk();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), 5u);
  EXPECT_FALSE(sched.next_chunk().has_value());
}

TEST(ThreadTeam, RunsJobOnEveryThread) {
  sched::ThreadTeam team(5);
  std::vector<std::atomic<int>> hits(5);
  team.run([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadTeam, SequentialRunsObserveEachOther) {
  sched::ThreadTeam team(4);
  std::atomic<int> sum{0};
  for (int round = 0; round < 50; ++round) {
    team.run([&](int) { sum.fetch_add(1); });
    // run() is a full barrier: all 4 increments of this round are visible.
    EXPECT_EQ(sum.load(), 4 * (round + 1));
  }
}

TEST(ThreadTeam, DistinctThreadIds) {
  sched::ThreadTeam team(6);
  std::vector<std::thread::id> ids(6);
  team.run([&](int tid) { ids[static_cast<std::size_t>(tid)] = std::this_thread::get_id(); });
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace
