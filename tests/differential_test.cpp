// Randomized differential battery: hundreds of seeded engine runs compared
// bit-for-bit against the sequential reference across the full configuration
// matrix {locking, pipelining} x {one-to-one, dynamic columns} x {dense,
// sparse frontier} x {single-device, heterogeneous} x {auto, forced-push,
// forced-pull traversal direction; single-device only — split partitions
// always push} on generated graphs of five shapes (uniform, power-law,
// disconnected, self-loops/parallel edges, edgeless). The min-combine
// applications (BFS, SSSP, CC) are order-independent, so every configuration
// must reproduce the reference exactly; PageRank's float sums are
// order-dependent and is therefore pinned to a single worker, where the
// engine's insertion and reduction order matches the reference's and the
// comparison is still bit-exact.
//
// The same battery checks the bookkeeping invariants the metrics layer
// promises: message-counter conservation (satellite: every generated message
// is accounted for exactly once) and phase-time coverage (the per-superstep
// phase table is parallel to the counter trace and its sum tracks the
// superstep wall clock).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/bfs.hpp"
#include "src/apps/connected_components.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/reference.hpp"
#include "src/apps/sssp.hpp"
#include "src/common/rng.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/graph/csr.hpp"
#include "src/partition/partition.hpp"
#include "watchdog.hpp"

// Sanitized builds run the same battery at reduced depth: the instrumentation
// slows each run by an order of magnitude and the extra rounds only re-roll
// seeds, they do not reach new code paths.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PG_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PG_TEST_SANITIZED 1
#endif
#endif
#ifndef PG_TEST_SANITIZED
#define PG_TEST_SANITIZED 0
#endif

namespace {

using namespace phigraph;
using buffer::ColumnMode;
using core::EngineConfig;
using core::ExecMode;

constexpr int kRounds = PG_TEST_SANITIZED ? 4 : 12;

// ---------------------------------------------------------------------------
// Graph families.
// ---------------------------------------------------------------------------

enum class Family {
  kUniform,       // Erdos-Renyi: flat degree distribution
  kPowerLaw,      // preferential attachment: heavy-tailed in-degrees
  kDisconnected,  // two islands + isolated vertices
  kSelfLoops,     // self-loops and parallel edges mixed into random edges
  kEmpty,         // vertices, no edges at all
};

constexpr Family kFamilies[] = {Family::kUniform, Family::kPowerLaw,
                                Family::kDisconnected, Family::kSelfLoops,
                                Family::kEmpty};

const char* family_name(Family f) {
  switch (f) {
    case Family::kUniform: return "uniform";
    case Family::kPowerLaw: return "power-law";
    case Family::kDisconnected: return "disconnected";
    case Family::kSelfLoops: return "self-loops";
    case Family::kEmpty: return "empty";
  }
  return "?";
}

graph::Csr make_graph(Family f, std::uint64_t seed) {
  Rng rng(seed);
  graph::Csr g;
  switch (f) {
    case Family::kUniform: {
      const vid_t n = 200 + static_cast<vid_t>(rng.below(600));
      const std::uint64_t m = n * (2 + rng.below(6));
      g = gen::erdos_renyi(n, m, seed ^ 0x9e3779b9ull);
      break;
    }
    case Family::kPowerLaw: {
      const vid_t n = 300 + static_cast<vid_t>(rng.below(900));
      const std::uint64_t m = n * (3 + rng.below(5));
      g = gen::pokec_like(n, m, seed ^ 0xc2b2ae35ull);
      break;
    }
    case Family::kDisconnected: {
      // Two random islands and a tail of isolated vertices; exercises
      // components/frontiers that never touch part of the id space.
      const vid_t island = 100 + static_cast<vid_t>(rng.below(200));
      const vid_t isolated = 10 + static_cast<vid_t>(rng.below(40));
      const vid_t n = 2 * island + isolated;
      std::vector<std::pair<vid_t, vid_t>> edges;
      const std::uint64_t per_island = island * 4ull;
      for (std::uint64_t i = 0; i < per_island; ++i) {
        edges.emplace_back(static_cast<vid_t>(rng.below(island)),
                           static_cast<vid_t>(rng.below(island)));
        edges.emplace_back(island + static_cast<vid_t>(rng.below(island)),
                           island + static_cast<vid_t>(rng.below(island)));
      }
      g = graph::Csr::from_edges(n, edges);
      break;
    }
    case Family::kSelfLoops: {
      const vid_t n = 150 + static_cast<vid_t>(rng.below(350));
      std::vector<std::pair<vid_t, vid_t>> edges;
      const std::uint64_t m = n * 3ull;
      for (std::uint64_t i = 0; i < m; ++i) {
        const auto u = static_cast<vid_t>(rng.below(n));
        if (rng.below(5) == 0) {
          edges.emplace_back(u, u);  // self-loop
        } else {
          const auto v = static_cast<vid_t>(rng.below(n));
          edges.emplace_back(u, v);
          if (rng.below(4) == 0) edges.emplace_back(u, v);  // parallel edge
        }
      }
      g = graph::Csr::from_edges(n, edges);
      break;
    }
    case Family::kEmpty: {
      const vid_t n = 1 + static_cast<vid_t>(rng.below(64));
      g = graph::Csr::from_edges(n, {});
      break;
    }
  }
  gen::add_random_weights(g, seed ^ 0x94d049bbull);
  return g;
}

// ---------------------------------------------------------------------------
// Configuration matrix.
// ---------------------------------------------------------------------------

struct Cell {
  ExecMode mode;
  ColumnMode col;
  double density;  // sparse_iteration_threshold: 0.0 = stay dense, 1.0 = sparse
  bool hetero;
  core::DirectionMode dir = core::DirectionMode::kAuto;
};

std::vector<Cell> full_matrix() {
  std::vector<Cell> cells;
  for (ExecMode mode : {ExecMode::kLocking, ExecMode::kPipelining})
    for (ColumnMode col : {ColumnMode::kOneToOne, ColumnMode::kDynamic})
      for (double density : {0.0, 1.0})
        for (core::DirectionMode dir :
             {core::DirectionMode::kAuto, core::DirectionMode::kForcePush,
              core::DirectionMode::kForcePull})
          for (bool hetero : {false, true}) {
            // Split partitions always push (no local in-neighbor values);
            // forced directions only distinguish single-device cells.
            if (hetero && dir != core::DirectionMode::kAuto) continue;
            cells.push_back({mode, col, density, hetero, dir});
          }
  return cells;
}

std::string cell_name(const Cell& c) {
  std::string s = core::exec_mode_name(c.mode);
  s += c.col == ColumnMode::kOneToOne ? "/1to1" : "/dyn";
  s += c.density == 0.0 ? "/dense" : "/sparse";
  s += c.hetero ? "/hetero" : "/single";
  s += "/";
  s += core::direction_mode_name(c.dir);
  return s;
}

EngineConfig cell_cfg(const Cell& c, int simd_bytes, std::uint64_t salt) {
  EngineConfig e;
  e.mode = c.mode;
  e.column_mode = c.col;
  e.sparse_iteration_threshold = c.density;
  e.direction_mode = c.dir;
  e.simd_bytes = simd_bytes;
  e.use_simd = true;
  e.threads = 2 + static_cast<int>(salt % 3);
  e.movers = 1 + static_cast<int>(salt % 2);
  e.sched_chunk = 8 + 24 * static_cast<int>((salt >> 2) % 2);
  e.queue_capacity = 256;
  e.csb_k = 2 + static_cast<int>((salt >> 3) % 2);
  return e;
}

std::vector<Device> round_robin_owner(vid_t n, int a, int b) {
  std::vector<Device> owner(n);
  for (vid_t v = 0; v < n; ++v)
    owner[v] = (static_cast<int>(v % static_cast<vid_t>(a + b)) < a)
                   ? Device::Cpu
                   : Device::Mic;
  return owner;
}

// Runs `prog` under one matrix cell and compares every vertex value
// bit-for-bit against the sequential reference.
template <typename Program>
void check_cell(const graph::Csr& g, const Program& prog, const Cell& c,
                std::uint64_t salt, const std::string& what) {
  const auto ref = apps::reference_run(g, prog);
  if (c.hetero) {
    const int a = 1 + static_cast<int>(salt % 3);
    const int b = 1 + static_cast<int>((salt >> 1) % 3);
    core::HeteroEngine<Program> he(g, round_robin_owner(g.num_vertices(), a, b),
                                   prog, cell_cfg(c, simd::kCpuSimdBytes, salt),
                                   cell_cfg(c, simd::kMicSimdBytes, salt + 1));
    const auto res = he.run();
    ASSERT_EQ(res.global_values.size(), ref.size()) << what;
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(res.global_values[v], ref[v]) << what << " vertex " << v;
  } else {
    const auto res =
        core::run_single(g, prog, cell_cfg(c, simd::kCpuSimdBytes, salt));
    ASSERT_EQ(res.values.size(), ref.size()) << what;
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(res.values[v], ref[v]) << what << " vertex " << v;
  }
}

// ---------------------------------------------------------------------------
// The battery: min-combine apps across the whole matrix.
// ---------------------------------------------------------------------------

TEST(DifferentialBattery, MinCombineAppsBitExactAcrossMatrix) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(PG_TEST_SANITIZED ? 900 : 300));
  const auto matrix = full_matrix();
  for (int round = 0; round < kRounds; ++round) {
    const Family fam = kFamilies[round % std::size(kFamilies)];
    const auto seed = static_cast<std::uint64_t>(0xd1f0 + 0x101 * round);
    const auto g = make_graph(fam, seed);
    Rng pick(seed ^ 0x2545f491ull);
    const auto src = g.num_vertices() == 0
                         ? 0
                         : static_cast<vid_t>(pick.below(g.num_vertices()));
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      const Cell& c = matrix[i];
      const std::uint64_t salt = seed + i;
      const std::string what = std::string(family_name(fam)) + " round " +
                               std::to_string(round) + " " + cell_name(c);
      switch (round % 3) {
        case 0:
          check_cell(g, apps::Bfs(src), c, salt, what + " bfs");
          break;
        case 1:
          check_cell(g, apps::Sssp(src), c, salt, what + " sssp");
          break;
        default:
          check_cell(g, apps::ConnectedComponents(), c, salt, what + " cc");
          break;
      }
    }
  }
}

// PageRank sums float messages, so its result depends on reduction order.
// With one worker and one mover the engine inserts messages in ascending
// source order — exactly the reference's combine order — and the SIMD row
// reduction degenerates to the same left fold, so the comparison is still
// bit-exact. Heterogeneous runs interleave local and remote messages and are
// covered (approximately) by engine_test's EXPECT_NEAR checks instead.
TEST(DifferentialBattery, PageRankBitExactSingleWorker) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(PG_TEST_SANITIZED ? 900 : 300));
  for (int round = 0; round < kRounds; ++round) {
    const Family fam = kFamilies[round % std::size(kFamilies)];
    const auto seed = static_cast<std::uint64_t>(0xabc0 + 0x101 * round);
    const auto g = make_graph(fam, seed);
    const apps::PageRank prog;
    const auto ref = apps::reference_run(g, prog, /*max_supersteps=*/8);
    for (const Cell& c : full_matrix()) {
      // PageRank is not pullable (kAllActive), so the forced-direction cells
      // would only re-run the push path; auto covers it.
      if (c.hetero || c.dir != core::DirectionMode::kAuto) continue;
      auto cfg = cell_cfg(c, simd::kCpuSimdBytes, seed);
      cfg.threads = 1;
      cfg.movers = 1;
      cfg.max_supersteps = 8;
      const auto res = core::run_single(g, prog, cfg);
      for (vid_t v = 0; v < g.num_vertices(); ++v)
        ASSERT_EQ(res.values[v], ref[v])
            << family_name(fam) << " round " << round << " " << cell_name(c)
            << " vertex " << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Forced-pull battery (satellite): every pull superstep must reproduce the
// reference bit-for-bit. Kept as its own test so the sanitized CI job can
// gtest-filter the pull kernel specifically (the full matrix above already
// covers pull cells at lower per-app depth).
// ---------------------------------------------------------------------------

TEST(DifferentialDirection, ForcedPullBitExact) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 900 : 300));
  for (int round = 0; round < kRounds; ++round) {
    const Family fam = kFamilies[round % std::size(kFamilies)];
    const auto seed = static_cast<std::uint64_t>(0x9011 + 0x101 * round);
    const auto g = make_graph(fam, seed);
    Rng pick(seed ^ 0x2545f491ull);
    const auto src = g.num_vertices() == 0
                         ? 0
                         : static_cast<vid_t>(pick.below(g.num_vertices()));
    int cell_idx = 0;
    for (ExecMode mode :
         {ExecMode::kOmpStyle, ExecMode::kLocking, ExecMode::kPipelining})
      for (double density : {0.0, 1.0}) {
        const Cell c{mode, ColumnMode::kDynamic, density, false,
                     core::DirectionMode::kForcePull};
        const std::uint64_t salt = seed + static_cast<std::uint64_t>(cell_idx++);
        const std::string what = std::string(family_name(fam)) + " round " +
                                 std::to_string(round) + " " + cell_name(c);
        check_cell(g, apps::Bfs(src), c, salt, what + " bfs");
        check_cell(g, apps::Sssp(src), c, salt + 1, what + " sssp");
        check_cell(g, apps::ConnectedComponents(), c, salt + 2, what + " cc");
      }
  }
}

// ---------------------------------------------------------------------------
// Rank-matrix battery: the same programs over N-rank clusters. Every rank
// count must reproduce the sequential reference bit-for-bit (the min-combine
// apps are order-independent), and the all-to-all exchange must conserve
// bytes pairwise: what rank a ships to rank b is exactly what rank b drains
// from rank a, for every ordered (a, b) pair.
// ---------------------------------------------------------------------------

constexpr int kRankCounts[] = {1, 2, 3, 4};

std::vector<EngineConfig> cluster_cfgs(const Cell& c, int nranks,
                                       std::uint64_t salt) {
  std::vector<EngineConfig> cfgs;
  cfgs.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    cfgs.push_back(cell_cfg(
        c, r % 2 == 0 ? simd::kCpuSimdBytes : simd::kMicSimdBytes,
        salt + static_cast<std::uint64_t>(r)));
  return cfgs;
}

// Runs the cluster and asserts bit-exactness vs. the sequential reference
// plus pairwise byte conservation — shared by the round-robin rank matrix
// and the partition-scheme battery below.
template <typename Program>
void expect_cluster_bit_exact(const graph::Csr& g, const Program& prog,
                              core::ClusterEngine<Program>& ce, int nranks,
                              const std::string& what) {
  const auto ref = apps::reference_run(g, prog);
  const auto res = ce.run();
  ASSERT_TRUE(res.completed) << what;
  ASSERT_FALSE(res.fault.valid()) << what << ": " << res.fault.what;
  ASSERT_EQ(res.global_values.size(), ref.size()) << what;
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(res.global_values[v], ref[v]) << what << " vertex " << v;
  for (int a = 0; a < nranks; ++a) {
    const auto& io = res.ranks[static_cast<std::size_t>(a)].io;
    ASSERT_EQ(io.bytes_to.size(), static_cast<std::size_t>(nranks)) << what;
    ASSERT_EQ(io.bytes_from.size(), static_cast<std::size_t>(nranks)) << what;
    EXPECT_EQ(io.bytes_to[static_cast<std::size_t>(a)], 0u)
        << what << ": rank " << a << " shipped bytes to itself";
    for (int b = 0; b < nranks; ++b)
      EXPECT_EQ(io.bytes_to[static_cast<std::size_t>(b)],
                res.ranks[static_cast<std::size_t>(b)]
                    .io.bytes_from[static_cast<std::size_t>(a)])
          << what << ": bytes " << a << " -> " << b << " not conserved";
  }
}

template <typename Program>
void check_cluster_cell(const graph::Csr& g, const Program& prog,
                        const Cell& c, int nranks, std::uint64_t salt,
                        const std::string& what) {
  std::vector<int> owner = partition::round_robin_partition_k(
      g, partition::RankWeights(static_cast<std::size_t>(nranks), 1));
  core::ClusterEngine<Program> ce(g, std::move(owner), prog,
                                  cluster_cfgs(c, nranks, salt));
  expect_cluster_bit_exact(g, prog, ce, nranks, what);
}

// Partition-scheme axis: the cluster is built through the scheme-deriving
// constructor (no explicit owner map), exercising the EngineConfig →
// make_partition_k → ClusterEngine wiring end-to-end.
template <typename Program>
void check_scheme_cell(const graph::Csr& g, const Program& prog, const Cell& c,
                       partition::Scheme scheme, int nranks,
                       std::uint64_t salt, const std::string& what) {
  auto cfgs = cluster_cfgs(c, nranks, salt);
  for (auto& cfg : cfgs) {
    cfg.partition_scheme = scheme;
    cfg.stream_partition.seed = salt | 1;
  }
  core::ClusterEngine<Program> ce(g, prog, cfgs);
  expect_cluster_bit_exact(g, prog, ce, nranks, what);
}

TEST(DifferentialBattery, RankMatrixBitExactAcrossRanks) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 900 : 300));
  int round = 0;
  for (Family fam : {Family::kPowerLaw, Family::kDisconnected}) {
    const auto seed = static_cast<std::uint64_t>(0x7a11 + 0x101 * round);
    const auto g = make_graph(fam, seed);
    Rng pick(seed ^ 0x2545f491ull);
    const auto src = static_cast<vid_t>(pick.below(g.num_vertices()));
    int cell_idx = 0;
    for (int nranks : kRankCounts)
      for (ExecMode mode : {ExecMode::kLocking, ExecMode::kPipelining})
        for (double density : {0.0, 1.0}) {
          const Cell c{mode, ColumnMode::kDynamic, density, true};
          const std::uint64_t salt =
              seed + static_cast<std::uint64_t>(17 * cell_idx++);
          const std::string what = std::string(family_name(fam)) + " ranks=" +
                                   std::to_string(nranks) + " " + cell_name(c);
          check_cluster_cell(g, apps::Bfs(src), c, nranks, salt,
                             what + " bfs");
          check_cluster_cell(g, apps::Sssp(src), c, nranks, salt + 1,
                             what + " sssp");
          check_cluster_cell(g, apps::ConnectedComponents(), c, nranks,
                             salt + 2, what + " cc");
        }
    ++round;
  }
}

// ---------------------------------------------------------------------------
// Partition-scheme battery (satellite): BFS/SSSP/CC over HDRF- and DBH-
// partitioned clusters, bit-exact vs. the sequential reference across ranks
// {2, 3, 4} x direction {auto, push} x density {dense, sparse}, with the
// same pairwise byte conservation the round-robin matrix enforces. The
// vertex-cut master map is just another owner map to the engine — any value
// difference here is a partitioner handing out an inconsistent assignment.
// ---------------------------------------------------------------------------

TEST(DifferentialBattery, PartitionSchemeMatrixBitExactAcrossRanks) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 900 : 300));
  const auto seed = static_cast<std::uint64_t>(0x8d0f);
  const auto g = make_graph(Family::kPowerLaw, seed);
  Rng pick(seed ^ 0x2545f491ull);
  const auto src = static_cast<vid_t>(pick.below(g.num_vertices()));
  int cell_idx = 0;
  for (int nranks : {2, 3, 4})
    for (partition::Scheme scheme :
         {partition::Scheme::kHdrf, partition::Scheme::kDbh})
      for (core::DirectionMode dir :
           {core::DirectionMode::kAuto, core::DirectionMode::kForcePush})
        for (double density : {0.0, 1.0}) {
          const Cell c{ExecMode::kLocking, ColumnMode::kDynamic, density, true,
                       dir};
          const std::uint64_t salt =
              seed + static_cast<std::uint64_t>(17 * cell_idx++);
          const std::string what = std::string(partition::scheme_name(scheme)) +
                                   " ranks=" + std::to_string(nranks) + " " +
                                   cell_name(c);
          check_scheme_cell(g, apps::Bfs(src), c, scheme, nranks, salt,
                            what + " bfs");
          check_scheme_cell(g, apps::Sssp(src), c, scheme, nranks, salt + 1,
                            what + " sssp");
          check_scheme_cell(g, apps::ConnectedComponents(), c, scheme, nranks,
                            salt + 2, what + " cc");
        }
}

// PageRank's float sums depend on fold order, and a different rank count is
// a different fold order — bit-equality against the reference only holds for
// the degenerate 1-rank/1-worker case. What every rank count must still
// deliver: determinism (the same cluster twice is bit-identical) and
// closeness to the reference sums.
TEST(DifferentialBattery, RankMatrixPageRankDeterministicAndNearReference) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 900 : 300));
  const auto g = make_graph(Family::kPowerLaw, 0x9a9e);
  const apps::PageRank prog;
  const auto ref = apps::reference_run(g, prog, /*max_supersteps=*/8);
  for (int nranks : kRankCounts) {
    const Cell c{ExecMode::kLocking, ColumnMode::kDynamic, 0.0, true};
    auto cfgs = cluster_cfgs(c, nranks, 0x51u);
    for (auto& cfg : cfgs) {
      cfg.threads = 1;  // one worker per rank: deterministic fold order
      cfg.movers = 1;
      cfg.max_supersteps = 8;
    }
    const auto owner = partition::round_robin_partition_k(
        g, partition::RankWeights(static_cast<std::size_t>(nranks), 1));
    core::ClusterEngine<apps::PageRank> a(g, owner, prog, cfgs);
    core::ClusterEngine<apps::PageRank> b(g, owner, prog, cfgs);
    const auto ra = a.run();
    const auto rb = b.run();
    ASSERT_TRUE(ra.completed && rb.completed) << "ranks=" << nranks;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(ra.global_values[v], rb.global_values[v])
          << "ranks=" << nranks << " vertex " << v << ": rerun diverged";
      EXPECT_NEAR(ra.global_values[v], ref[v], 1e-3f * (1.0f + ref[v]))
          << "ranks=" << nranks << " vertex " << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Counter conservation (satellite): every generated message is accounted for
// exactly once, across both execution schemes and the device boundary.
// ---------------------------------------------------------------------------

metrics::SuperstepCounters totals_of(const metrics::RunTrace& trace) {
  metrics::SuperstepCounters t;
  for (const auto& c : trace) t += c;
  return t;
}

TEST(DifferentialConservation, SingleDeviceMessageCounters) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(120));
  const auto g = make_graph(Family::kPowerLaw, 0x5eed);
  for (ExecMode mode : {ExecMode::kLocking, ExecMode::kPipelining}) {
    Cell c{mode, ColumnMode::kDynamic, 0.0, false};
    const auto res = core::run_single(g, apps::Bfs(0), cell_cfg(c, 16, 7));
    const auto t = totals_of(res.run.trace);
    // No peer: nothing may cross the device boundary.
    EXPECT_EQ(t.msgs_remote, 0u);
    EXPECT_EQ(t.msgs_received, 0u);
    EXPECT_EQ(t.bytes_sent, 0u);
    EXPECT_EQ(t.bytes_received, 0u);
    EXPECT_GT(t.msgs_local, 0u);
    if (mode == ExecMode::kPipelining) {
      // Pipelining routes every local message through an SPSC queue; each
      // push is drained and inserted exactly once.
      EXPECT_EQ(t.queue_pushes, t.msgs_local) << "pipelined conservation";
    } else {
      EXPECT_EQ(t.queue_pushes, 0u) << "locking scheme must not touch queues";
    }
  }

  // Starve the pipeline with a near-minimal ring: messages are still
  // conserved and the backpressure counter proves the full-queue path ran.
  // Push pinned — pull supersteps bypass the queues, and auto direction
  // would take exactly the dense bursts this test needs out of the ring.
  Cell c{ExecMode::kPipelining, ColumnMode::kDynamic, 0.0, false,
         core::DirectionMode::kForcePush};
  auto cfg = cell_cfg(c, 16, 9);
  cfg.queue_capacity = 8;
  const auto res = core::run_single(g, apps::Bfs(0), cfg);
  const auto t = totals_of(res.run.trace);
  EXPECT_EQ(t.queue_pushes, t.msgs_local);
  EXPECT_GT(t.queue_full_spins, 0u)
      << "an 8-slot ring under BFS bursts must hit backpressure";
}

TEST(DifferentialConservation, HeteroExchangeCountersMatchAcrossRanks) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(120));
  const auto g = make_graph(Family::kUniform, 0xfeed);
  Cell c{ExecMode::kPipelining, ColumnMode::kDynamic, 0.0, true};
  core::HeteroEngine<apps::Bfs> he(g, round_robin_owner(g.num_vertices(), 2, 3),
                                   apps::Bfs(0), cell_cfg(c, 16, 3),
                                   cell_cfg(c, 64, 4));
  const auto res = he.run();
  const auto cpu = totals_of(res.cpu.trace);
  const auto mic = totals_of(res.mic.trace);
  // Conservation across the exchange: what one rank ships, the other drains.
  EXPECT_EQ(cpu.bytes_sent, mic.bytes_received);
  EXPECT_EQ(mic.bytes_sent, cpu.bytes_received);
  EXPECT_GT(cpu.msgs_remote + mic.msgs_remote, 0u)
      << "partitioned BFS must cross the boundary at least once";
  // Remote messages are combined per destination before the send, so the
  // receive-side insert count can only shrink, never grow.
  EXPECT_LE(mic.msgs_received, cpu.msgs_remote);
  EXPECT_LE(cpu.msgs_received, mic.msgs_remote);
}

// ---------------------------------------------------------------------------
// Phase-table invariants (satellite): the always-on per-superstep phase
// timing is parallel to the counter trace, non-negative, and its sum tracks
// the superstep wall clock.
// ---------------------------------------------------------------------------

TEST(DifferentialPhases, PhaseTableParallelToTraceAndBounded) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(120));
  const auto g = make_graph(Family::kPowerLaw, 0x9a5e);
  for (ExecMode mode : {ExecMode::kLocking, ExecMode::kPipelining}) {
    Cell c{mode, ColumnMode::kDynamic, 0.0, false};
    const auto res = core::run_single(g, apps::Sssp(0), cell_cfg(c, 16, 5));
    ASSERT_EQ(res.run.phases.size(), res.run.trace.size());
    ASSERT_EQ(res.run.phases.size(),
              static_cast<std::size_t>(res.run.supersteps));
    double wall_total = 0, sum_total = 0;
    for (const auto& ps : res.run.phases) {
      for (double f : {ps.prepare, ps.generate, ps.exchange, ps.process,
                       ps.update, ps.terminate, ps.checkpoint}) {
        EXPECT_GE(f, 0.0);
      }
      EXPECT_GT(ps.wall, 0.0);
      // The phases partition the superstep minus a little bookkeeping
      // (buffer swap, counter collection, frontier advance): their sum can
      // never exceed the wall clock by more than timer noise.
      EXPECT_LE(ps.phase_sum(), ps.wall + 1e-3);
      wall_total += ps.wall;
      sum_total += ps.phase_sum();
    }
    // ...and the bookkeeping between phases is small: the phases must cover
    // the bulk of the run even at this tiny scale.
    EXPECT_GE(sum_total, 0.3 * wall_total) << core::exec_mode_name(mode);
    // The legacy per-phase totals are now derived from the same table.
    const auto tot = metrics::phase_totals(res.run.phases);
    EXPECT_DOUBLE_EQ(res.run.gen_seconds, tot.generate);
    EXPECT_DOUBLE_EQ(res.run.exchange_seconds, tot.exchange);
    EXPECT_DOUBLE_EQ(res.run.process_seconds, tot.process);
    EXPECT_DOUBLE_EQ(res.run.update_seconds, tot.update);
  }
}

}  // namespace
