// Device-partition tests: LocalGraph::split must conserve every edge and
// expose correct ownership maps.
#include <gtest/gtest.h>

#include <set>

#include "src/core/local_graph.hpp"
#include "src/gen/generators.hpp"
#include "src/partition/partition.hpp"

namespace {

using namespace phigraph;
using core::LocalGraph;

TEST(LocalGraph, WholeKeepsEverything) {
  const auto g = gen::pokec_like(500, 5000, 3);
  const auto lg = LocalGraph::whole(g, Device::Mic);
  EXPECT_EQ(lg.device, Device::Mic);
  EXPECT_EQ(lg.num_local_vertices(), g.num_vertices());
  EXPECT_EQ(lg.local.num_edges(), g.num_edges());
  EXPECT_EQ(lg.in_degree, g.in_degrees());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(lg.global_id[v], v);
    EXPECT_EQ((*lg.local_of)[v], v);
  }
}

TEST(LocalGraph, SplitConservesEdgesAndValues) {
  auto g = gen::pokec_like(800, 8000, 5);
  gen::add_random_weights(g, 9);
  auto owner = partition::round_robin_partition(g, {2, 3});
  const auto parts = LocalGraph::split(g, owner);

  EXPECT_EQ(parts[0].device, Device::Cpu);
  EXPECT_EQ(parts[1].device, Device::Mic);
  EXPECT_EQ(parts[0].num_local_vertices() + parts[1].num_local_vertices(),
            g.num_vertices());
  EXPECT_EQ(parts[0].local.num_edges() + parts[1].local.num_edges(),
            g.num_edges());

  // Every local vertex's out-edges match the global graph exactly,
  // including weights.
  for (const auto& lg : parts) {
    for (vid_t u = 0; u < lg.num_local_vertices(); ++u) {
      const vid_t gu = lg.global_id[u];
      const auto local_nbrs = lg.local.out_neighbors(u);
      const auto global_nbrs = g.out_neighbors(gu);
      ASSERT_EQ(local_nbrs.size(), global_nbrs.size());
      for (std::size_t i = 0; i < local_nbrs.size(); ++i) {
        EXPECT_EQ(local_nbrs[i], global_nbrs[i]);
        EXPECT_EQ(lg.local.out_edge_values(u)[i], g.out_edge_values(gu)[i]);
      }
      // In-degree comes from the FULL graph, not the local one.
      EXPECT_EQ(lg.in_degree[u], g.in_degrees()[gu]);
    }
  }
}

TEST(LocalGraph, OwnershipMapsAreConsistent) {
  const auto g = gen::erdos_renyi(300, 2000, 7);
  auto owner = partition::continuous_partition(g, {1, 2});
  const auto parts = LocalGraph::split(g, owner);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto& lg = parts[device_index(owner[v])];
    const vid_t local = (*lg.local_of)[v];
    ASSERT_LT(local, lg.num_local_vertices());
    EXPECT_EQ(lg.global_id[local], v);
    EXPECT_EQ((*lg.owner)[v], owner[v]);
  }
}

TEST(LocalGraph, EmptySideIsFine) {
  const auto g = gen::erdos_renyi(100, 500, 2);
  std::vector<Device> owner(g.num_vertices(), Device::Cpu);
  const auto parts = LocalGraph::split(g, owner);
  EXPECT_EQ(parts[0].num_local_vertices(), 100u);
  EXPECT_EQ(parts[1].num_local_vertices(), 0u);
  EXPECT_EQ(parts[1].local.num_edges(), 0u);
}

TEST(LocalGraph, CrossEdgeCount) {
  const auto g = graph::Csr::from_edges(
      4, std::vector<std::pair<vid_t, vid_t>>{{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  std::vector<Device> owner = {Device::Cpu, Device::Cpu, Device::Mic,
                               Device::Mic};
  // Cross: 1->2 and 3->0.
  EXPECT_EQ(LocalGraph::count_cross_edges(g, owner), 2u);
}

}  // namespace
