// Generator structure tests: each synthetic workload must exhibit the
// property the paper's corresponding experiment depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "src/gen/generators.hpp"

namespace {

using namespace phigraph;

TEST(PokecLike, SizeAndDeterminism) {
  const auto g1 = gen::pokec_like(5000, 60000, 42);
  const auto g2 = gen::pokec_like(5000, 60000, 42);
  const auto g3 = gen::pokec_like(5000, 60000, 43);
  EXPECT_EQ(g1.num_vertices(), 5000u);
  EXPECT_EQ(g1.num_edges(), 60000u);
  EXPECT_EQ(g1, g2);         // same seed, same graph
  EXPECT_FALSE(g1 == g3);    // different seed, different graph
}

TEST(PokecLike, FrontLoadedOutDegrees) {
  const auto g = gen::pokec_like(10000, 150000, 7);
  eid_t front = 0, back = 0;
  for (vid_t v = 0; v < 1000; ++v) front += g.out_degree(v);
  for (vid_t v = 9000; v < 10000; ++v) back += g.out_degree(v);
  // The first 10% of ids must carry far more edges than the last 10% —
  // this is what breaks continuous partitioning in Fig. 6.
  EXPECT_GT(front, 5 * back);
}

TEST(PokecLike, HeadIsSoftened) {
  const auto g = gen::pokec_like(10000, 150000, 7);
  eid_t max_out = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    max_out = std::max(max_out, g.out_degree(v));
  // No single vertex owns a macroscopic share (real Pokec: < 0.05%).
  EXPECT_LT(static_cast<double>(max_out) / g.num_edges(), 0.02);
}

TEST(PokecLike, InDegreesAreSkewed) {
  const auto g = gen::pokec_like(10000, 150000, 7);
  auto in = g.in_degrees();
  std::sort(in.begin(), in.end(), std::greater<>());
  // Top 1% of receivers get many times their proportional share.
  eid_t top = std::accumulate(in.begin(), in.begin() + 100, eid_t{0});
  EXPECT_GT(static_cast<double>(top) / g.num_edges(), 0.05);
}

TEST(PokecLike, HasIdLocality) {
  const auto g = gen::pokec_like(10000, 150000, 7);
  eid_t local = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u))
      if ((v > u ? v - u : u - v) <= 50) ++local;
  // p_local = 0.6 by default; allow generous slack.
  EXPECT_GT(static_cast<double>(local) / g.num_edges(), 0.4);
}

TEST(DblpLike, UndirectedByDuplication) {
  const auto g = gen::dblp_like(2000, 6000, 5);
  EXPECT_EQ(g.num_edges(), 12000u);  // each undirected edge twice
  ASSERT_TRUE(g.has_edge_values());
  // Symmetric: for every u->v with weight w there is v->u with weight w.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.out_neighbors(u);
    const auto w = g.out_edge_values(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t v = nbrs[i];
      const auto back = g.out_neighbors(v);
      const auto back_w = g.out_edge_values(v);
      bool found = false;
      for (std::size_t j = 0; j < back.size(); ++j)
        if (back[j] == u && back_w[j] == w[i]) found = true;
      EXPECT_TRUE(found) << u << "->" << v;
    }
  }
}

TEST(DblpLike, CommunityStructure) {
  const auto g = gen::dblp_like(2000, 6000, 5, /*p_intra=*/0.9);
  // Most edges stay within a small id window (communities are contiguous).
  eid_t close = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u))
      if ((v > u ? v - u : u - v) <= 64) ++close;
  EXPECT_GT(static_cast<double>(close) / g.num_edges(), 0.7);
}

TEST(DblpLike, PositiveWeights) {
  const auto g = gen::dblp_like(500, 1500, 9);
  for (float w : g.edge_values()) {
    EXPECT_GT(w, 0.0f);
    EXPECT_LT(w, 1.0f);
  }
}

TEST(DagLike, IsAcyclicWithBoundedDepth) {
  const int levels = 20;
  const auto g = gen::dag_like(1000, 50000, 3, levels);
  EXPECT_EQ(g.num_edges(), 50000u);
  // Kahn's algorithm consumes every vertex iff the graph is acyclic, and
  // the level count bounds the depth.
  auto remaining = g.in_degrees();
  std::deque<vid_t> q;
  std::vector<int> depth(g.num_vertices(), 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    if (remaining[v] == 0) q.push_back(v);
  vid_t seen = 0;
  int max_depth = 0;
  while (!q.empty()) {
    const vid_t u = q.front();
    q.pop_front();
    ++seen;
    max_depth = std::max(max_depth, depth[u]);
    for (vid_t v : g.out_neighbors(u)) {
      depth[v] = std::max(depth[v], depth[u] + 1);
      if (--remaining[v] == 0) q.push_back(v);
    }
  }
  EXPECT_EQ(seen, g.num_vertices());
  EXPECT_LT(max_depth, levels);
}

TEST(DagLike, OutDegreeDeclinesAlongIds) {
  const auto g = gen::dag_like(2000, 100000, 3, 16);
  eid_t front = 0, back = 0;
  for (vid_t v = 0; v < 200; ++v) front += g.out_degree(v);
  for (vid_t v = 1800; v < 2000; ++v) back += g.out_degree(v);
  // Vertex ids follow topological order, so early ids emit far more edges —
  // the skew behind Fig. 6's TopoSort continuous-partitioning collapse.
  EXPECT_GT(front, 4 * back);
}

TEST(Rmat, ShapeAndSkew) {
  const auto g = gen::rmat(12, 40000, 17);
  EXPECT_EQ(g.num_vertices(), 4096u);
  EXPECT_EQ(g.num_edges(), 40000u);
  auto in = g.in_degrees();
  std::sort(in.begin(), in.end(), std::greater<>());
  EXPECT_GT(in[0], 40u);  // scale-free head
}

TEST(ErdosRenyi, NoSelfLoops) {
  const auto g = gen::erdos_renyi(500, 5000, 21);
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u)) EXPECT_NE(u, v);
}

TEST(RandomWeights, RangeAndDeterminism) {
  auto g1 = gen::erdos_renyi(100, 1000, 2);
  auto g2 = gen::erdos_renyi(100, 1000, 2);
  gen::add_random_weights(g1, 5, 1.0f, 10.0f);
  gen::add_random_weights(g2, 5, 1.0f, 10.0f);
  EXPECT_EQ(g1.edge_values(), g2.edge_values());
  for (float w : g1.edge_values()) {
    EXPECT_GE(w, 1.0f);
    EXPECT_LT(w, 10.0f);
  }
}

}  // namespace
