// Condensed Static Buffer tests, including the paper's Fig. 1 / Fig. 3 /
// Table I worked example.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/buffer/csb.hpp"
#include "src/common/rng.hpp"
#include "src/graph/paper_example.hpp"

namespace {

using namespace phigraph;
using buffer::ColumnMode;
using buffer::Csb;
using buffer::InsertStats;

Csb<float>::Config cfg(int lanes, int k, ColumnMode mode) {
  Csb<float>::Config c;
  c.lanes = lanes;
  c.k = k;
  c.mode = mode;
  return c;
}

// ---------------------------------------------------------------------------
// The paper's worked example: 16-vertex graph, w/msg_size = 4, k = 2.
// ---------------------------------------------------------------------------

class PaperExampleCsb : public ::testing::Test {
 protected:
  PaperExampleCsb()
      : g_(graph::paper_example_graph()),
        in_deg_(g_.in_degrees()),
        csb_(in_deg_, cfg(4, 2, ColumnMode::kDynamic)) {}

  graph::Csr g_;
  std::vector<vid_t> in_deg_;
  Csb<float> csb_;
};

TEST_F(PaperExampleCsb, InDegreesMatchFigure1) {
  const std::vector<vid_t> expected = {2, 0, 4, 1, 2, 5, 2, 2,
                                       3, 3, 1, 1, 1, 1, 0, 0};
  EXPECT_EQ(in_deg_, expected);
}

TEST_F(PaperExampleCsb, SortedOrderMatchesFigure3) {
  // Fig. 3: sorted vertex IDs 5 2 8 9 0 4 6 7 | 3 10 11 12 13 1 14 15
  const std::vector<vid_t> expected = {5, 2, 8,  9,  0,  4, 6,  7,
                                       3, 10, 11, 12, 13, 1, 14, 15};
  for (vid_t pos = 0; pos < 16; ++pos)
    EXPECT_EQ(csb_.sorted_vertex(pos), expected[pos]) << "pos " << pos;
  // Redirection is the inverse map (Fig. 3 shows redirection[2] = 1, etc.).
  EXPECT_EQ(csb_.redirection(2), 1u);
  EXPECT_EQ(csb_.redirection(0), 4u);
  EXPECT_EQ(csb_.redirection(13), 12u);
  for (vid_t v = 0; v < 16; ++v)
    EXPECT_EQ(csb_.sorted_vertex(csb_.redirection(v)), v);
}

TEST_F(PaperExampleCsb, GroupGeometryMatchesFigure3) {
  // Two vertex groups of 8 = 2 x 4 vertices; max in-degrees 5 and 1.
  EXPECT_EQ(csb_.group_width(), 8u);
  EXPECT_EQ(csb_.num_groups(), 2u);
  EXPECT_EQ(csb_.group_max_degree(0), 5u);
  EXPECT_EQ(csb_.group_max_degree(1), 1u);
  EXPECT_EQ(csb_.num_array_tasks(), 4u);
}

TEST_F(PaperExampleCsb, CondensedFootprintBeatsWorstCase) {
  // CSB allocates (5+1)*8 + (1+1)*8 = 64 slots; a max-degree-uniform buffer
  // would need (5+1)*16 = 96.
  EXPECT_EQ(csb_.storage_slots(), 64u);
  EXPECT_LT(csb_.storage_slots(), std::size_t{96});
}

TEST_F(PaperExampleCsb, TableIMessagesDynamicInsertion) {
  // Active vertices {6,7,11,13,14,15} send the Table I messages.
  const std::vector<std::pair<vid_t, float>> messages = {
      {2, 6.f}, {2, 7.f}, {6, 11.f}, {9, 11.f},
      {9, 13.f}, {12, 13.f}, {10, 14.f}, {7, 15.f}};
  csb_.reset_all();
  InsertStats st;
  for (const auto& [dst, val] : messages) csb_.insert(dst, val, st);

  EXPECT_EQ(st.inserted, 8u);
  EXPECT_EQ(st.columns_allocated, 6u);  // distinct destinations
  EXPECT_EQ(st.conflicts, 2u);          // second msgs for 2 and 9

  // Fig. 3(b): group 0 receives messages for vertices 2, 9, 6, 7 -> its
  // first four columns; group 1 for 10, 12 -> its first two columns.
  EXPECT_EQ(csb_.columns_used(0), 4u);
  EXPECT_EQ(csb_.columns_used(1), 2u);

  // Dynamic allocation condenses: all used columns are in the first vector
  // array of each group, so the second arrays have no rows to process.
  EXPECT_EQ(csb_.array_rows(0, 1), 0u);
  EXPECT_EQ(csb_.array_rows(1, 1), 0u);
  EXPECT_EQ(csb_.array_rows(0, 0), 2u);  // vertices 2 and 9 got 2 msgs each
  EXPECT_EQ(csb_.array_rows(1, 0), 1u);

  // Per-destination contents are exact.
  auto column_of = [&](vid_t v) {
    for (std::size_t g = 0; g < csb_.num_groups(); ++g)
      for (vid_t c = 0; c < csb_.group_width(); ++c)
        if (csb_.column_vertex(g, c) == v) return std::pair<std::size_t, vid_t>{g, c};
    ADD_FAILURE() << "no column for vertex " << v;
    return std::pair<std::size_t, vid_t>{0, 0};
  };
  auto [g2, c2] = column_of(2);
  EXPECT_EQ(csb_.column_count(g2, c2), 2u);
  std::multiset<float> got{csb_.cell(g2, c2, 0), csb_.cell(g2, c2, 1)};
  EXPECT_EQ(got, (std::multiset<float>{6.f, 7.f}));
  auto [g10, c10] = column_of(10);
  EXPECT_EQ(g10, 1u);
  EXPECT_EQ(csb_.column_count(g10, c10), 1u);
  EXPECT_EQ(csb_.cell(g10, c10, 0), 14.f);
}

TEST_F(PaperExampleCsb, OneToOneMappingWastesLanes) {
  // Fig. 3(a): with the predetermined mapping the same six destinations
  // scatter across columns, so both vector arrays of group 0 hold messages.
  Csb<float> one2one(in_deg_, cfg(4, 2, ColumnMode::kOneToOne));
  InsertStats st;
  const std::vector<std::pair<vid_t, float>> messages = {
      {2, 6.f}, {2, 7.f}, {6, 11.f}, {9, 11.f},
      {9, 13.f}, {12, 13.f}, {10, 14.f}, {7, 15.f}};
  for (const auto& [dst, val] : messages) one2one.insert(dst, val, st);

  // Destination sorted positions: 2->1, 9->3 (array 0); 6->6, 7->7 (array 1).
  EXPECT_GT(one2one.array_rows(0, 0), 0u);
  EXPECT_GT(one2one.array_rows(0, 1), 0u);
  // Dynamic mode fit the same messages into array 0 only (see test above) —
  // that is the lane-efficiency win of dynamic column allocation.
}

// ---------------------------------------------------------------------------
// Randomized properties.
// ---------------------------------------------------------------------------

struct CsbParam {
  int lanes;
  int k;
  ColumnMode mode;
};

class CsbProperty : public ::testing::TestWithParam<CsbParam> {};

TEST_P(CsbProperty, MessagesAreConservedAndPlacedPerDestination) {
  const auto p = GetParam();
  Rng rng(42);
  const vid_t n = 500;
  // Random in-degree budget per vertex; messages respect it.
  std::vector<vid_t> budget(n);
  for (auto& b : budget) b = static_cast<vid_t>(rng.below(20));

  Csb<float> csb(budget, {p.lanes, p.k, p.mode});
  csb.reset_all();

  std::map<vid_t, std::multiset<float>> expected;
  InsertStats st;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t count = static_cast<vid_t>(rng.below(budget[v] + 1));
    for (vid_t i = 0; i < count; ++i) {
      const float val = rng.uniform(0.f, 1.f);
      expected[v].insert(val);
      csb.insert(v, val, st);
    }
  }

  // Walk the buffer: every occupied column maps to a distinct vertex and
  // holds exactly that vertex's messages.
  std::map<vid_t, std::multiset<float>> found;
  for (std::size_t g = 0; g < csb.num_groups(); ++g) {
    for (vid_t c = 0; c < csb.group_width(); ++c) {
      const vid_t v = csb.column_vertex(g, c);
      if (v == kInvalidVertex) continue;
      const auto cnt = csb.column_count(g, c);
      if (cnt == 0) continue;
      EXPECT_EQ(found.count(v), 0u) << "vertex in two columns";
      for (std::uint32_t r = 0; r < cnt; ++r) found[v].insert(csb.cell(g, c, r));
    }
  }
  // Drop empty expected entries (vertices that got zero messages).
  std::erase_if(expected, [](const auto& kv) { return kv.second.empty(); });
  EXPECT_EQ(found, expected);

  std::uint64_t total = 0;
  for (const auto& [v, ms] : expected) total += ms.size();
  EXPECT_EQ(st.inserted, total);
  EXPECT_EQ(st.conflicts, total - expected.size());
  if (p.mode == ColumnMode::kDynamic) {
    EXPECT_EQ(st.columns_allocated, expected.size());
  }
}

TEST_P(CsbProperty, ResetClearsEverything) {
  const auto p = GetParam();
  std::vector<vid_t> budget(100, 8);
  Csb<float> csb(budget, {p.lanes, p.k, p.mode});
  csb.reset_all();
  InsertStats st;
  for (vid_t v = 0; v < 100; ++v) csb.insert(v, 1.f, st);
  csb.reset_all();
  for (std::size_t g = 0; g < csb.num_groups(); ++g) {
    EXPECT_EQ(csb.columns_used(g), 0u);
    for (int a = 0; a < p.k; ++a) EXPECT_EQ(csb.array_rows(g, a), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CsbProperty,
    ::testing::Values(CsbParam{4, 2, ColumnMode::kDynamic},
                      CsbParam{4, 2, ColumnMode::kOneToOne},
                      CsbParam{16, 2, ColumnMode::kDynamic},
                      CsbParam{16, 4, ColumnMode::kDynamic},
                      CsbParam{8, 1, ColumnMode::kDynamic},
                      CsbParam{1, 2, ColumnMode::kDynamic},
                      CsbParam{16, 2, ColumnMode::kOneToOne}));

TEST(CsbConcurrency, ParallelLockingInsertIsLossless) {
  const vid_t n = 256;
  std::vector<vid_t> budget(n, 64);
  Csb<std::int32_t> csb(budget, {16, 2, ColumnMode::kDynamic});
  csb.reset_all();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 2048;  // 8 * 2048 / 256 = 64 messages per vertex
  std::vector<std::thread> threads;
  std::vector<InsertStats> stats(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        // 64-message budget per vertex, 8 threads: at most 8 per thread/vertex.
        const vid_t dst = static_cast<vid_t>((t * kPerThread + i) % n);
        csb.insert(dst, t, stats[t]);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::uint64_t inserted = 0;
  for (const auto& s : stats) inserted += s.inserted;
  EXPECT_EQ(inserted, static_cast<std::uint64_t>(kThreads) * kPerThread);

  std::uint64_t stored = 0;
  for (std::size_t g = 0; g < csb.num_groups(); ++g)
    for (vid_t c = 0; c < csb.group_width(); ++c) stored += csb.column_count(g, c);
  EXPECT_EQ(stored, inserted);

  // Each vertex got exactly kThreads*kPerThread/n messages.
  for (std::size_t g = 0; g < csb.num_groups(); ++g)
    for (vid_t c = 0; c < csb.group_width(); ++c) {
      const vid_t v = csb.column_vertex(g, c);
      if (v == kInvalidVertex) continue;
      EXPECT_EQ(csb.column_count(g, c),
                static_cast<std::uint32_t>(kThreads * kPerThread / n));
    }
}

TEST(CsbPadding, PadFillsBubblesOnly) {
  std::vector<vid_t> budget = {5, 3, 1, 0, 0, 0, 0, 0};
  Csb<float> csb(budget, {4, 2, ColumnMode::kDynamic});
  csb.reset_all();
  InsertStats st;
  for (int i = 0; i < 5; ++i) csb.insert(0, 1.f, st);
  for (int i = 0; i < 3; ++i) csb.insert(1, 2.f, st);
  csb.insert(2, 3.f, st);

  const auto rows = csb.array_rows(0, 0);
  EXPECT_EQ(rows, 5u);
  const auto padded = csb.pad_array(0, 0, rows, -1.f);
  // Lane 0: 5/5 msgs, lane 1: 3/5, lane 2: 1/5, lane 3: 0/5 -> 0+2+4+5 = 11.
  EXPECT_EQ(padded, 11u);
  // Messages survive padding.
  EXPECT_EQ(csb.cell(0, 0, 4), 1.f);
  EXPECT_EQ(csb.cell(0, 1, 2), 2.f);
  EXPECT_EQ(csb.cell(0, 1, 3), -1.f);
  EXPECT_EQ(csb.cell(0, 3, 0), -1.f);
}

// ---------------------------------------------------------------------------
// Dirty-group tracking (sparse-frontier execution).
// ---------------------------------------------------------------------------

TEST(CsbDirtyGroups, OnlyTouchedGroupsRegister) {
  // 4 groups of width 4 (lanes 2, k 2), all with capacity for 3 messages.
  std::vector<vid_t> budget(16, 2);
  Csb<float> csb(budget, cfg(2, 2, ColumnMode::kDynamic));
  EXPECT_EQ(csb.num_groups(), 4u);
  EXPECT_EQ(csb.num_dirty_groups(), 0u);
  EXPECT_EQ(csb.num_dirty_array_tasks(), 0u);

  InsertStats st;
  csb.insert(0, 1.f, st);   // group of sorted position of vertex 0
  csb.insert(0, 2.f, st);   // same group: must not register twice
  EXPECT_EQ(csb.num_dirty_groups(), 1u);
  EXPECT_EQ(csb.num_dirty_array_tasks(), 2u);
  const std::size_t g0 = csb.redirection(0) / csb.group_width();
  EXPECT_EQ(csb.dirty_group(0), g0);

  csb.insert(15, 3.f, st);  // a vertex in a different group
  const std::size_t g1 = csb.redirection(15) / csb.group_width();
  ASSERT_NE(g0, g1);
  EXPECT_EQ(csb.num_dirty_groups(), 2u);

  // reset_all clears the groups and the dirty list; re-insertion re-marks.
  csb.reset_all();
  EXPECT_EQ(csb.num_dirty_groups(), 0u);
  csb.insert_owned(15, 4.f, st);
  EXPECT_EQ(csb.num_dirty_groups(), 1u);
  EXPECT_EQ(csb.dirty_group(0), g1);
}

TEST(CsbDirtyGroups, ConcurrentInsertersRegisterEachGroupOnce) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  const vid_t n = 64;
  std::vector<vid_t> budget(n, static_cast<vid_t>(kThreads * kPerThread));
  Csb<float> csb(budget, cfg(4, 2, ColumnMode::kDynamic));

  std::vector<std::thread> threads;
  std::vector<InsertStats> stats(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < kPerThread; ++i)
        csb.insert(static_cast<vid_t>(rng.below(n)), 1.f, stats[t]);
    });
  for (auto& th : threads) th.join();

  // Every group received messages; each appears exactly once in the list.
  EXPECT_EQ(csb.num_dirty_groups(), csb.num_groups());
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < csb.num_dirty_groups(); ++i)
    seen.insert(csb.dirty_group(i));
  EXPECT_EQ(seen.size(), csb.num_groups());
}

TEST(CsbDirtyGroups, OneToOneModeAlsoTracksDirtyGroups) {
  std::vector<vid_t> budget(16, 2);
  Csb<float> csb(budget, cfg(2, 2, ColumnMode::kOneToOne));
  InsertStats st;
  csb.insert(3, 1.f, st);
  EXPECT_EQ(csb.num_dirty_groups(), 1u);
  EXPECT_EQ(csb.dirty_group(0), csb.redirection(3) / csb.group_width());
}

}  // namespace
