// Tests for the common utilities: RNG, aligned allocation, contracts,
// metrics accumulation, and the vmsg_array view.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>

#include "src/buffer/vmsg_array.hpp"
#include "src/common/aligned.hpp"
#include "src/common/expect.hpp"
#include "src/common/rng.hpp"
#include "src/common/timer.hpp"
#include "src/common/types.hpp"
#include "src/metrics/counters.hpp"
#include "src/simd/simd.hpp"

namespace {

using namespace phigraph;

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i)
    if (a2.next() != c.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.below(13);
    ASSERT_LT(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u);  // all residues hit
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(8)];
  for (const auto& [v, c] : counts)
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1) << "value " << v;
}

TEST(Rng, UniformRanges) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const float f = rng.uniform(2.0f, 5.0f);
    EXPECT_GE(f, 2.0f);
    EXPECT_LT(f, 5.0f);
  }
}

TEST(Aligned, VectorDataIs64ByteAligned) {
  for (std::size_t n : {1, 3, 17, 1000}) {
    aligned_vector<float> v(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kSimdAlign, 0u);
    aligned_vector<std::uint8_t> b(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kSimdAlign, 0u);
  }
}

TEST(Aligned, AllocatorEquality) {
  AlignedAllocator<int> a, b;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.allocate(0), nullptr);
}

TEST(Expect, CheckAbortsWithMessage) {
  EXPECT_DEATH(PG_CHECK_MSG(1 == 2, "the message"), "the message");
  EXPECT_DEATH(PG_CHECK(false), "check failed");
  PG_CHECK(true);  // no-op
}

TEST(Types, DeviceHelpers) {
  EXPECT_EQ(other_device(Device::Cpu), Device::Mic);
  EXPECT_EQ(other_device(Device::Mic), Device::Cpu);
  EXPECT_STREQ(device_name(Device::Cpu), "CPU");
  EXPECT_STREQ(device_name(Device::Mic), "MIC");
  EXPECT_EQ(device_index(Device::Mic), 1);
}

TEST(Timer, StopWatchAccumulates) {
  StopWatch w;
  w.start();
  w.stop();
  w.start();
  w.stop();
  EXPECT_GE(w.total_seconds(), 0.0);
  w.clear();
  EXPECT_EQ(w.total_seconds(), 0.0);
}

TEST(Metrics, CountersAccumulate) {
  metrics::SuperstepCounters a;
  a.msgs_local = 10;
  a.vector_rows = 3;
  a.bytes_sent = 100;
  metrics::SuperstepCounters b;
  b.msgs_local = 5;
  b.column_conflicts = 2;
  a += b;
  EXPECT_EQ(a.msgs_local, 15u);
  EXPECT_EQ(a.column_conflicts, 2u);
  EXPECT_EQ(a.vector_rows, 3u);

  metrics::RunTrace trace{a, b};
  const auto t = metrics::totals(trace);
  EXPECT_EQ(t.msgs_local, 20u);
  EXPECT_EQ(t.bytes_sent, 100u);
}

TEST(VMsgArray, ViewsRowsInPlace) {
  using V = simd::Vec<float, 4>;
  aligned_vector<float> storage(12);
  for (std::size_t i = 0; i < 12; ++i) storage[i] = static_cast<float>(i);
  buffer::VMsgArray<V> arr(reinterpret_cast<V*>(storage.data()), 3);
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0][0], 0.0f);
  EXPECT_EQ(arr[1][2], 6.0f);
  EXPECT_EQ(arr[2][3], 11.0f);
  // Paper-style reduction writes back through the view.
  auto res = arr[0];
  for (std::size_t i = 1; i < arr.size(); ++i) res = res + arr[i];
  arr[0] = res;
  EXPECT_EQ(storage[0], 0.0f + 4.0f + 8.0f);
  EXPECT_EQ(storage[3], 3.0f + 7.0f + 11.0f);
}

TEST(VMsgArray, ScalarElementType) {
  float data[4] = {5, 1, 3, 2};
  buffer::VMsgArray<float> arr(data, 4);
  float mn = arr[0];
  for (std::size_t i = 1; i < arr.size(); ++i) mn = std::min(mn, arr[i]);
  arr[0] = mn;
  EXPECT_EQ(data[0], 1.0f);
}

}  // namespace
