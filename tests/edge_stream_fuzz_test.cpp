// Fuzz battery for the streaming edge reader (DESIGN.md §14): seeded random
// graphs with duplicate edges and self-loops, streamed at random chunk
// boundaries and through the mmap-backed PGE1 file, must all yield the same
// partitioner assignment as a one-shot pass. Runs under the suite watchdog —
// a reader that loses or repeats a chunk shows up as a value diff, a reader
// that never drains shows up as a loud abort.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/graph/edge_stream.hpp"
#include "src/partition/stream_partition.hpp"
#include "watchdog.hpp"

namespace {

using namespace phigraph;
using graph::MemoryEdgeStream;
using graph::MmapEdgeStream;
using graph::StreamEdge;
using partition::Dbh;
using partition::Hdrf;
using partition::RankWeights;
using partition::StreamOptions;
using partition::VertexCut;

constexpr int kRounds = 24;

/// Random edge list with intentional pathologies: ~10% duplicated edges,
/// ~5% self-loops, possibly empty.
std::vector<StreamEdge> fuzz_edges(Rng& rng, vid_t n) {
  const std::size_t m = static_cast<std::size_t>(rng.below(3000));
  std::vector<StreamEdge> edges;
  edges.reserve(m + m / 8);
  for (std::size_t i = 0; i < m; ++i) {
    StreamEdge e{static_cast<vid_t>(rng.below(n)),
                 static_cast<vid_t>(rng.below(n))};
    if (rng.below(20) == 0) e.v = e.u;  // self-loop
    edges.push_back(e);
    if (rng.below(10) == 0) edges.push_back(e);  // duplicate
  }
  return edges;
}

void expect_same_cut(const VertexCut& got, const VertexCut& want,
                     const std::string& what) {
  EXPECT_EQ(got.edge_rank, want.edge_rank) << what;
  EXPECT_EQ(got.master, want.master) << what;
  EXPECT_EQ(got.replicas, want.replicas) << what;
  EXPECT_EQ(got.edge_load, want.edge_load) << what;
}

TEST(EdgeStreamFuzz, RandomChunkBoundariesMatchOneShot) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(120));
  Rng rng(0xfeedbeef);
  for (int round = 0; round < kRounds; ++round) {
    const vid_t n = static_cast<vid_t>(1 + rng.below(400));
    const auto edges = fuzz_edges(rng, n);
    const int k = static_cast<int>(2 + rng.below(4));
    RankWeights w(static_cast<std::size_t>(k), 1);
    if (rng.below(3) == 0) w[static_cast<std::size_t>(rng.below(k))] = 0;
    StreamOptions opt;
    opt.seed = rng.next();

    // One-shot pass: the whole list in a single chunk (the "truncated final
    // chunk" degenerate case is the chunked run's last partial batch).
    MemoryEdgeStream whole(n, edges, edges.size() + 1);
    const VertexCut hdrf_ref = Hdrf::partition(whole, w, opt);
    const VertexCut dbh_ref = Dbh::partition(whole, w, opt);

    for (int trial = 0; trial < 4; ++trial) {
      const std::size_t chunk = 1 + rng.below(edges.size() + 7);
      const std::string what = "round " + std::to_string(round) + " chunk " +
                               std::to_string(chunk);
      MemoryEdgeStream chunked(n, edges, chunk);
      expect_same_cut(Hdrf::partition(chunked, w, opt), hdrf_ref,
                      "hdrf " + what);
      expect_same_cut(Dbh::partition(chunked, w, opt), dbh_ref, "dbh " + what);
    }
  }
}

TEST(EdgeStreamFuzz, MmapStreamMatchesMemoryStream) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(120));
  Rng rng(0xc0ffee11);
  const auto dir = std::filesystem::temp_directory_path();
  for (int round = 0; round < 8; ++round) {
    const vid_t n = static_cast<vid_t>(1 + rng.below(300));
    const auto edges = fuzz_edges(rng, n);
    const auto path =
        (dir / ("pg_fuzz_edges_" + std::to_string(round) + ".pge")).string();
    graph::save_edge_binary(n, edges, path);

    const RankWeights w{1, 2, 1};
    StreamOptions opt;
    opt.seed = rng.next();
    MemoryEdgeStream mem(n, edges, edges.size() + 1);
    const VertexCut hdrf_ref = Hdrf::partition(mem, w, opt);
    const VertexCut dbh_ref = Dbh::partition(mem, w, opt);

    const std::size_t chunk = 1 + rng.below(edges.size() + 7);
    MmapEdgeStream mapped(path, chunk);
    ASSERT_EQ(mapped.num_vertices(), n);
    ASSERT_EQ(mapped.num_edges(), edges.size());
    const std::string what = "round " + std::to_string(round);
    expect_same_cut(Hdrf::partition(mapped, w, opt), hdrf_ref, "hdrf " + what);
    expect_same_cut(Dbh::partition(mapped, w, opt), dbh_ref, "dbh " + what);
    std::filesystem::remove(path);
  }
}

TEST(EdgeStreamFuzz, TornFileIsRejectedNotShortStreamed) {
  // A file whose size disagrees with its header must die loudly up front —
  // a silent short stream would partition a prefix of the graph.
  Rng rng(0xdead1234);
  const vid_t n = 50;
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 100; ++i)
    edges.push_back({static_cast<vid_t>(rng.below(n)),
                     static_cast<vid_t>(rng.below(n))});
  const auto path =
      (std::filesystem::temp_directory_path() / "pg_fuzz_torn.pge").string();
  graph::save_edge_binary(n, edges, path);
  // Chop off half of the final record.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - sizeof(StreamEdge) / 2);
  EXPECT_DEATH((void)MmapEdgeStream(path), "truncated or padded");
  std::filesystem::remove(path);
}

}  // namespace
