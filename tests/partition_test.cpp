// Partitioning tests: the three schemes' balance/communication trade-offs
// (the mechanism behind Fig. 6) plus blocked-partitioner quality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <set>

#include "src/gen/generators.hpp"
#include "src/partition/partition.hpp"

namespace {

using namespace phigraph;
using partition::BlockedOptions;
using partition::Ratio;

graph::Csr skewed_graph() {
  // Pokec-like: hubs at the front — what breaks continuous partitioning.
  return gen::pokec_like(/*n=*/20000, /*m=*/200000, /*seed=*/17);
}

TEST(Partition, ContinuousSplitsByVertexCount) {
  const auto g = skewed_graph();
  const auto owner = partition::continuous_partition(g, {3, 5});
  const auto s = partition::evaluate_partition(g, owner);
  EXPECT_NEAR(static_cast<double>(s.verts[0]) / g.num_vertices(), 3.0 / 8, 1e-3);
  // ... but the EDGE split is far off the requested 3:5 because the hubs
  // cluster in the CPU's range (the paper's §IV-E observation).
  EXPECT_GT(s.balance_error({3, 5}), 0.5);
}

TEST(Partition, RoundRobinBalancesEdgesButCutsEverything) {
  const auto g = skewed_graph();
  const auto rr = partition::round_robin_partition(g, {1, 1});
  const auto s = partition::evaluate_partition(g, rr);
  EXPECT_LT(std::abs(s.balance_error({1, 1})), 0.05);
  // Interleaved vertices cut roughly half of all edges at 1:1.
  EXPECT_GT(static_cast<double>(s.cross_edges) / g.num_edges(), 0.4);
}

TEST(Partition, HybridIsBalancedAndCutsLessThanRoundRobin) {
  const auto g = skewed_graph();
  BlockedOptions opt;
  opt.num_blocks = 64;
  const auto bp = partition::blocked_min_cut(g, opt);
  for (Ratio r : {Ratio{1, 1}, Ratio{3, 5}, Ratio{2, 1}, Ratio{1, 4}}) {
    const auto hy = partition::hybrid_partition(bp, r);
    const auto rr = partition::round_robin_partition(g, r);
    const auto sh = partition::evaluate_partition(g, hy);
    const auto sr = partition::evaluate_partition(g, rr);
    EXPECT_LT(std::abs(sh.balance_error(r)), 0.2)  // 64 lumpy blocks: coarse granularity
        << "ratio " << r.cpu << ":" << r.mic;
    EXPECT_LT(sh.cross_edges, sr.cross_edges)
        << "ratio " << r.cpu << ":" << r.mic;
  }
}

TEST(Partition, BlockedPartitionReusableAcrossRatios) {
  // The paper: "Our method is able to reuse the blocked partitioning results
  // of Metis for different partitioning ratios."
  const auto g = gen::dblp_like(5000, 15000, 3);
  const auto bp = partition::blocked_min_cut(g, {.num_blocks = 32, .seed = 5});
  const auto o1 = partition::hybrid_partition(bp, {1, 1});
  const auto o2 = partition::hybrid_partition(bp, {1, 3});
  const auto s1 = partition::evaluate_partition(g, o1);
  const auto s2 = partition::evaluate_partition(g, o2);
  EXPECT_LT(std::abs(s1.balance_error({1, 1})), 0.2);
  EXPECT_LT(std::abs(s2.balance_error({1, 3})), 0.2);
}

TEST(Partition, BlockedMinCutQualityOnCommunityGraph) {
  // On a strong community graph the multilevel partitioner should cut far
  // fewer edges than a random blocking of equal arity.
  const auto g = gen::dblp_like(4000, 12000, 9, /*p_intra=*/0.95);
  BlockedOptions opt;
  opt.num_blocks = 16;
  const auto bp = partition::blocked_min_cut(g, opt);

  eid_t random_cut = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u))
      if (u % 16 != v % 16) ++random_cut;

  EXPECT_LT(bp.cut_edges, random_cut / 2);

  // Every vertex has a block; block sizes respect the balance tolerance
  // loosely (initial growing + refinement can overshoot slightly).
  vid_t total = 0;
  for (int b = 0; b < bp.num_blocks; ++b) total += bp.block_verts[b];
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Partition, DegenerateSmallGraph) {
  const auto g = gen::erdos_renyi(10, 20, 1);
  const auto bp = partition::blocked_min_cut(g, {.num_blocks = 16});
  // One vertex per block when blocks >= vertices.
  std::set<vid_t> used(bp.block_of.begin(), bp.block_of.end());
  EXPECT_EQ(used.size(), 10u);
  const auto owner = partition::hybrid_partition(bp, {1, 1});
  const auto s = partition::evaluate_partition(g, owner);
  EXPECT_EQ(s.verts[0] + s.verts[1], 10u);
}

TEST(Partition, FileRoundTrip) {
  const auto g = gen::erdos_renyi(100, 300, 2);
  const auto owner = partition::round_robin_partition(g, {2, 3});
  const auto path =
      (std::filesystem::temp_directory_path() / "pg_part_test.txt").string();
  partition::save_partition(owner, path);
  const auto loaded = partition::load_partition(path);
  EXPECT_EQ(owner, loaded);
  std::filesystem::remove(path);
}

// ---- k-way (N-rank) schemes -------------------------------------------------

TEST(PartitionKway, TwoRankFormsMatchTheRatioSchemes) {
  const auto g = gen::pokec_like(2000, 16000, 9);
  for (auto [a, b] : {std::pair{1, 1}, std::pair{2, 3}, std::pair{3, 5}}) {
    const partition::RankWeights w{a, b};
    const auto as_rank = [](const std::vector<Device>& o) {
      std::vector<int> r(o.size());
      for (std::size_t i = 0; i < o.size(); ++i)
        r[i] = o[i] == Device::Cpu ? 0 : 1;
      return r;
    };
    EXPECT_EQ(partition::continuous_partition_k(g, w),
              as_rank(partition::continuous_partition(g, {a, b})));
    EXPECT_EQ(partition::round_robin_partition_k(g, w),
              as_rank(partition::round_robin_partition(g, {a, b})));
    const auto bp = partition::blocked_min_cut(g, {.num_blocks = 64, .seed = 3});
    EXPECT_EQ(partition::hybrid_partition_k(bp, w),
              as_rank(partition::hybrid_partition(bp, {a, b})));
  }
}

// The k-way properties the cluster engine relies on: for every rank count,
// round-robin balances vertices within 5% of each rank's share (its actual,
// degree-oblivious guarantee — on a flat-degree graph that makes the edge
// shares land within 5% too), and the hybrid min-cut assignment never cuts
// more edges than plain round-robin.
TEST(PartitionKway, RoundRobinBalancedAndHybridCutsNoWorse) {
  const auto uniform = gen::erdos_renyi(4000, 40000, 17);
  const auto power = gen::pokec_like(4000, 40000, 11);
  for (int k : {2, 3, 4, 8}) {
    const partition::RankWeights w(static_cast<std::size_t>(k), 1);
    const auto vertex_balance_error = [&](const partition::KwayStats& s) {
      double worst = 0;
      for (vid_t c : s.verts) {
        const double want =
            static_cast<double>(power.num_vertices()) / static_cast<double>(k);
        worst = std::max(worst, std::abs(static_cast<double>(c) - want) / want);
      }
      return worst;
    };

    const auto us = partition::evaluate_partition_k(
        uniform, partition::round_robin_partition_k(uniform, w), k);
    EXPECT_LE(us.balance_error(w), 0.05) << "k=" << k << " (uniform degrees)";

    const auto rr = partition::round_robin_partition_k(power, w);
    const auto rs = partition::evaluate_partition_k(power, rr, k);
    EXPECT_LE(vertex_balance_error(rs), 0.05) << "k=" << k;
    // Preferential attachment front-loads the hubs onto small ids, which
    // alias with the deal period, so the edge shares are only loosely
    // balanced — bound the skew rather than pretend it isn't there.
    EXPECT_LE(rs.balance_error(w), 0.10) << "k=" << k << " (power-law)";
    vid_t verts = 0;
    for (vid_t c : rs.verts) verts += c;
    EXPECT_EQ(verts, power.num_vertices()) << "k=" << k;

    const auto hy = partition::hybrid_partition_k(
        power, w, {.num_blocks = 256, .seed = 42});
    const auto hs = partition::evaluate_partition_k(power, hy, k);
    EXPECT_LE(hs.cross_edges, rs.cross_edges)
        << "k=" << k << ": min-cut blocks must not cut more than round-robin";
    eid_t edges = 0;
    for (eid_t c : hs.edges) edges += c;
    EXPECT_EQ(edges, power.num_edges()) << "k=" << k;
  }
}

TEST(PartitionKway, HybridRespectsUnequalWeights) {
  const auto g = gen::pokec_like(4000, 40000, 13);
  const partition::RankWeights w{3, 1, 1, 3};
  const auto hy = partition::hybrid_partition_k(
      g, w, {.num_blocks = 256, .seed = 7});
  const auto s =
      partition::evaluate_partition_k(g, hy, static_cast<int>(w.size()));
  // 256 blocks over 4 ranks: LPT gets each rank's edge share within ~15% of
  // its weight even on a heavy-tailed block-size distribution.
  EXPECT_LE(s.balance_error(w), 0.15);
}

TEST(PartitionKway, ZeroWeightRankReceivesNothing) {
  const auto g = gen::erdos_renyi(500, 2500, 21);
  const partition::RankWeights w{1, 0, 1};
  for (const auto& owner :
       {partition::continuous_partition_k(g, w),
        partition::round_robin_partition_k(g, w),
        partition::hybrid_partition_k(g, w, {.num_blocks = 32})}) {
    const auto s = partition::evaluate_partition_k(g, owner, 3);
    EXPECT_EQ(s.edges[1], 0u);
  }
}

TEST(Partition, ExtremeRatios) {
  const auto g = gen::erdos_renyi(1000, 5000, 4);
  const auto all_cpu = partition::continuous_partition(g, {1, 0});
  for (Device d : all_cpu) EXPECT_EQ(d, Device::Cpu);
  const auto all_mic = partition::continuous_partition(g, {0, 1});
  for (Device d : all_mic) EXPECT_EQ(d, Device::Mic);
  const auto hy = partition::hybrid_partition(g, {1, 0}, {.num_blocks = 8});
  for (Device d : hy) EXPECT_EQ(d, Device::Cpu);
}

}  // namespace
