// Partitioning tests: the three schemes' balance/communication trade-offs
// (the mechanism behind Fig. 6) plus blocked-partitioner quality.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "src/gen/generators.hpp"
#include "src/partition/partition.hpp"

namespace {

using namespace phigraph;
using partition::BlockedOptions;
using partition::Ratio;

graph::Csr skewed_graph() {
  // Pokec-like: hubs at the front — what breaks continuous partitioning.
  return gen::pokec_like(/*n=*/20000, /*m=*/200000, /*seed=*/17);
}

TEST(Partition, ContinuousSplitsByVertexCount) {
  const auto g = skewed_graph();
  const auto owner = partition::continuous_partition(g, {3, 5});
  const auto s = partition::evaluate_partition(g, owner);
  EXPECT_NEAR(static_cast<double>(s.verts[0]) / g.num_vertices(), 3.0 / 8, 1e-3);
  // ... but the EDGE split is far off the requested 3:5 because the hubs
  // cluster in the CPU's range (the paper's §IV-E observation).
  EXPECT_GT(s.balance_error({3, 5}), 0.5);
}

TEST(Partition, RoundRobinBalancesEdgesButCutsEverything) {
  const auto g = skewed_graph();
  const auto rr = partition::round_robin_partition(g, {1, 1});
  const auto s = partition::evaluate_partition(g, rr);
  EXPECT_LT(std::abs(s.balance_error({1, 1})), 0.05);
  // Interleaved vertices cut roughly half of all edges at 1:1.
  EXPECT_GT(static_cast<double>(s.cross_edges) / g.num_edges(), 0.4);
}

TEST(Partition, HybridIsBalancedAndCutsLessThanRoundRobin) {
  const auto g = skewed_graph();
  BlockedOptions opt;
  opt.num_blocks = 64;
  const auto bp = partition::blocked_min_cut(g, opt);
  for (Ratio r : {Ratio{1, 1}, Ratio{3, 5}, Ratio{2, 1}, Ratio{1, 4}}) {
    const auto hy = partition::hybrid_partition(bp, r);
    const auto rr = partition::round_robin_partition(g, r);
    const auto sh = partition::evaluate_partition(g, hy);
    const auto sr = partition::evaluate_partition(g, rr);
    EXPECT_LT(std::abs(sh.balance_error(r)), 0.2)  // 64 lumpy blocks: coarse granularity
        << "ratio " << r.cpu << ":" << r.mic;
    EXPECT_LT(sh.cross_edges, sr.cross_edges)
        << "ratio " << r.cpu << ":" << r.mic;
  }
}

TEST(Partition, BlockedPartitionReusableAcrossRatios) {
  // The paper: "Our method is able to reuse the blocked partitioning results
  // of Metis for different partitioning ratios."
  const auto g = gen::dblp_like(5000, 15000, 3);
  const auto bp = partition::blocked_min_cut(g, {.num_blocks = 32, .seed = 5});
  const auto o1 = partition::hybrid_partition(bp, {1, 1});
  const auto o2 = partition::hybrid_partition(bp, {1, 3});
  const auto s1 = partition::evaluate_partition(g, o1);
  const auto s2 = partition::evaluate_partition(g, o2);
  EXPECT_LT(std::abs(s1.balance_error({1, 1})), 0.2);
  EXPECT_LT(std::abs(s2.balance_error({1, 3})), 0.2);
}

TEST(Partition, BlockedMinCutQualityOnCommunityGraph) {
  // On a strong community graph the multilevel partitioner should cut far
  // fewer edges than a random blocking of equal arity.
  const auto g = gen::dblp_like(4000, 12000, 9, /*p_intra=*/0.95);
  BlockedOptions opt;
  opt.num_blocks = 16;
  const auto bp = partition::blocked_min_cut(g, opt);

  eid_t random_cut = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u))
      if (u % 16 != v % 16) ++random_cut;

  EXPECT_LT(bp.cut_edges, random_cut / 2);

  // Every vertex has a block; block sizes respect the balance tolerance
  // loosely (initial growing + refinement can overshoot slightly).
  vid_t total = 0;
  for (int b = 0; b < bp.num_blocks; ++b) total += bp.block_verts[b];
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Partition, DegenerateSmallGraph) {
  const auto g = gen::erdos_renyi(10, 20, 1);
  const auto bp = partition::blocked_min_cut(g, {.num_blocks = 16});
  // One vertex per block when blocks >= vertices.
  std::set<vid_t> used(bp.block_of.begin(), bp.block_of.end());
  EXPECT_EQ(used.size(), 10u);
  const auto owner = partition::hybrid_partition(bp, {1, 1});
  const auto s = partition::evaluate_partition(g, owner);
  EXPECT_EQ(s.verts[0] + s.verts[1], 10u);
}

TEST(Partition, FileRoundTrip) {
  const auto g = gen::erdos_renyi(100, 300, 2);
  const auto owner = partition::round_robin_partition(g, {2, 3});
  const auto path =
      (std::filesystem::temp_directory_path() / "pg_part_test.txt").string();
  partition::save_partition(owner, path);
  const auto loaded = partition::load_partition(path);
  EXPECT_EQ(owner, loaded);
  std::filesystem::remove(path);
}

TEST(Partition, ExtremeRatios) {
  const auto g = gen::erdos_renyi(1000, 5000, 4);
  const auto all_cpu = partition::continuous_partition(g, {1, 0});
  for (Device d : all_cpu) EXPECT_EQ(d, Device::Cpu);
  const auto all_mic = partition::continuous_partition(g, {0, 1});
  for (Device d : all_mic) EXPECT_EQ(d, Device::Mic);
  const auto hy = partition::hybrid_partition(g, {1, 0}, {.num_blocks = 8});
  for (Device d : hy) EXPECT_EQ(d, Device::Cpu);
}

}  // namespace
