// Mutant-kill suite for the model checker (PHIGRAPH_MODEL build).
//
// Every verified happens-before edge in the lock-free core is tagged at its
// call site with PG_SYNC_ORDER("tag", order). Each test here weakens exactly
// one tag to relaxed through the mutant registry (model::ScopedMutant) and
// asserts the schedule explorer reports a data race within the budget — the
// proof that the race detector actually covers that edge, rather than
// passing vacuously. A checker that cannot kill these mutants would also
// miss the real regression the tag guards against.
#include <gtest/gtest.h>

#include "src/common/sync.hpp"

#if PG_MODEL_ENABLED

#include <memory>
#include <string>
#include <vector>

#include "src/fault/checkpoint.hpp"
#include "src/model/model.hpp"
#include "src/pipeline/spsc_queue.hpp"
#include "src/sched/spinlock.hpp"

namespace {

using namespace phigraph;

model::ExploreStats explore_mutant(const char* tag,
                                   model::TestCase (*make)()) {
  model::ScopedMutant weaken(tag, sync::relaxed);
  model::Options opt;
  opt.iterations = 3000;
  opt.preemption_bound = 4;
  opt.stop_on_failure = true;  // the first kill is the proof
  return model::explore(opt, make);
}

void expect_killed(const char* tag, const model::ExploreStats& stats) {
  EXPECT_GT(stats.failures, 0)
      << "mutant '" << tag << "' (order weakened to relaxed) survived "
      << stats.executions << " executions over " << stats.distinct_schedules
      << " distinct schedules";
  EXPECT_NE(stats.first_failure.find("data race"), std::string::npos)
      << "mutant '" << tag << "' was caught, but not as a data race: "
      << stats.first_failure;
}

// Capacity-2 queue (one usable slot) with three items: every execution
// wraps, so both the publish edge (producer -> consumer, buf_[i] visibility)
// and the slot-reuse edge (consumer -> producer, overwrite ordering) are
// exercised on every run.
model::TestCase spsc_case() {
  struct State {
    pipeline::SpscQueue<int> q{2};
  };
  auto st = std::make_shared<State>();
  model::TestCase tc;
  tc.threads.push_back([st] {
    for (int i = 0; i < 3; ++i)
      while (!st->q.try_push(i)) sync::thread_yield();
  });
  tc.threads.push_back([st] {
    int out = -1;
    for (int i = 0; i < 3; ++i)
      while (!st->q.try_pop(out)) sync::thread_yield();
  });
  return tc;
}

TEST(ModelMutant, SpscHeadPublishRelaxedIsKilled) {
  expect_killed("spsc.head.publish",
                explore_mutant("spsc.head.publish", spsc_case));
}

TEST(ModelMutant, SpscHeadAcquireRelaxedIsKilled) {
  expect_killed("spsc.head.acquire",
                explore_mutant("spsc.head.acquire", spsc_case));
}

TEST(ModelMutant, SpscTailFreeRelaxedIsKilled) {
  expect_killed("spsc.tail.free",
                explore_mutant("spsc.tail.free", spsc_case));
}

TEST(ModelMutant, SpscTailAcquireRelaxedIsKilled) {
  expect_killed("spsc.tail.acquire",
                explore_mutant("spsc.tail.acquire", spsc_case));
}

// Two threads increment a plain counter under the production SpinLock; with
// either side of the lock's edge weakened, the counter accesses lose their
// ordering and the detector reports them.
model::TestCase spinlock_case() {
  struct State {
    sched::SpinLock lock;
    int counter = 0;
  };
  auto st = std::make_shared<State>();
  auto body = [st] {
    for (int i = 0; i < 2; ++i) {
      sched::LockGuard<sched::SpinLock> g(st->lock);
      sync::plain_read(&st->counter, "spinlock-guarded counter");
      const int c = st->counter;
      sync::plain_write(&st->counter, "spinlock-guarded counter");
      st->counter = c + 1;
    }
  };
  model::TestCase tc;
  tc.threads.push_back(body);
  tc.threads.push_back(body);
  return tc;
}

TEST(ModelMutant, SpinlockAcquireRelaxedIsKilled) {
  expect_killed("spinlock.acquire",
                explore_mutant("spinlock.acquire", spinlock_case));
}

TEST(ModelMutant, SpinlockReleaseRelaxedIsKilled) {
  expect_killed("spinlock.release",
                explore_mutant("spinlock.release", spinlock_case));
}

// Checkpoint seqlock: a writer races a latest_valid() poller. Weakening the
// publication store (or the reader's validating loads) to relaxed severs the
// frame-visibility edge, so the reader's validated copy is flagged.
model::TestCase checkpoint_case() {
  struct State {
    fault::CheckpointStore store{fault::CheckpointConfig{1, false, ""}, 0};
    sync::Atomic<int> done{0};
  };
  auto st = std::make_shared<State>();
  model::TestCase tc;
  tc.threads.push_back([st] {
    for (int s = 1; s <= 3; ++s) {
      fault::CheckpointFrame f;
      f.superstep = s;
      f.values.assign(8, static_cast<std::uint8_t>(s));
      f.seal();
      st->store.write(f);
    }
    st->done.store(1, sync::release);
  });
  tc.threads.push_back([st] {
    while (st->done.load(sync::acquire) == 0) {
      (void)st->store.latest_valid();
      sync::thread_yield();
    }
  });
  return tc;
}

TEST(ModelMutant, CheckpointPublishRelaxedIsKilled) {
  expect_killed("ckpt.publish",
                explore_mutant("ckpt.publish", checkpoint_case));
}

TEST(ModelMutant, CheckpointReadAcquireRelaxedIsKilled) {
  expect_killed("ckpt.read.acquire",
                explore_mutant("ckpt.read.acquire", checkpoint_case));
}

}  // namespace

#else  // !PG_MODEL_ENABLED

TEST(ModelMutant, RequiresModelPreset) {
  GTEST_SKIP() << "mutant-kill tests run under the `model` preset "
                  "(PHIGRAPH_MODEL=ON); this build has it off";
}

#endif  // PG_MODEL_ENABLED
