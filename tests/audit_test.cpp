// Concurrency-audit layer tests.
//
// The seeded-violation tests are death tests: each one commits a deliberate
// contract violation — a second mover writing an owned CSB column, an SPSC
// pop from a foreign thread, an out-of-phase user callback — and asserts the
// audit layer aborts with a diagnostic naming the violated invariant. They
// only run when the audit layer is compiled in (the `audit` preset); in
// default builds they GTEST_SKIP so one test list serves every
// configuration. The always-on contract checks (SPSC capacity rejection,
// drained-destructor DCHECK) are exercised here too.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/buffer/csb.hpp"
#include "src/common/audit.hpp"
#include "src/pipeline/message_pipeline.hpp"
#include "src/pipeline/spsc_queue.hpp"

namespace {

using namespace phigraph;

// ---- always-on contract checks ---------------------------------------------

TEST(SpscQueueContract, RejectsNonPowerOfTwoCapacity) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(pipeline::SpscQueue<int>(3), "power of two");
  EXPECT_DEATH(pipeline::SpscQueue<int>(0), "power of two");
  EXPECT_DEATH(pipeline::SpscQueue<int>(1), "power of two");
  EXPECT_DEATH(pipeline::SpscQueue<int>(100), "power of two");
}

TEST(SpscQueueContract, AcceptsPowerOfTwoCapacity) {
  pipeline::SpscQueue<int> q2(2);
  EXPECT_EQ(q2.capacity(), 1u);
  pipeline::SpscQueue<int> q1k(1024);
  EXPECT_EQ(q1k.capacity(), 1023u);
}

TEST(SpscQueueContract, DestructorChecksQueueDrained) {
#ifdef NDEBUG
  GTEST_SKIP() << "PG_DCHECK is compiled out in NDEBUG builds";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        pipeline::SpscQueue<int> q(8);
        q.try_push(1);
      },
      "undrained");
#endif
}

// ---- seeded-violation death tests (audit builds) ----------------------------

#if PG_AUDIT_ENABLED

TEST(AuditLayer, ThreadIdsAreStableAndDistinct) {
  const int me = audit::thread_id();
  EXPECT_EQ(me, audit::thread_id());
  int other = -1;
  std::thread t([&] { other = audit::thread_id(); });
  t.join();
  EXPECT_NE(me, other);
}

// A second mover inserting into a column already owned this superstep must
// abort naming the column-ownership invariant and both thread ids.
TEST(AuditLayer, TwoMoverColumnWriteAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        const std::vector<vid_t> deg(32, 4);
        buffer::Csb<float>::Config bc;
        bc.lanes = 4;
        bc.k = 2;
        buffer::Csb<float> csb(deg, bc);
        buffer::InsertStats stats;
        csb.insert_owned(5, 1.0f, stats);  // this thread claims the column
        std::thread second([&] { csb.insert_owned(5, 2.0f, stats); });
        second.join();
      },
      "csb-column-ownership");
}

// The same destination class re-inserted by its owning thread is legal.
TEST(AuditLayer, SameMoverMayTouchItsColumnRepeatedly) {
  const std::vector<vid_t> deg(32, 4);
  buffer::Csb<float>::Config bc;
  bc.lanes = 4;
  bc.k = 2;
  buffer::Csb<float> csb(deg, bc);
  buffer::InsertStats stats;
  csb.insert_owned(5, 1.0f, stats);
  csb.insert_owned(5, 2.0f, stats);
  EXPECT_EQ(stats.inserted, 2u);
  // reset_group releases the claim: a different thread may own it next
  // superstep.
  csb.reset_group(csb.redirection(5) / csb.group_width());
  std::thread next_owner([&] { csb.insert_owned(5, 3.0f, stats); });
  next_owner.join();
}

// A pop from a thread other than the bound consumer must abort naming the
// SPSC contract.
TEST(AuditLayer, CrossThreadSpscPopAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        pipeline::SpscQueue<int> q(8);
        q.try_push(1);
        q.try_push(2);
        int out = 0;
        q.try_pop(out);  // binds this thread as the consumer
        std::thread thief([&] { q.try_pop(out); });
        thief.join();
        // drain so the destructor check does not fire first
        while (q.try_pop(out)) {
        }
      },
      "spsc-single-consumer");
}

TEST(AuditLayer, CrossThreadSpscPushAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        pipeline::SpscQueue<int> q(8);
        q.try_push(1);  // binds this thread as the producer
        std::thread intruder([&] { q.try_push(2); });
        intruder.join();
        int out = 0;
        while (q.try_pop(out)) {
        }
      },
      "spsc-single-producer");
}

// MessagePipeline::reset() releases the role bindings, so the same pipeline
// may be driven by different threads across phases but not within one.
TEST(AuditLayer, PipelineWorkerSlotReboundAcrossPhases) {
  pipeline::MessagePipeline<int> pipe(1, 1, 16);
  for (int phase = 0; phase < 2; ++phase) {
    pipe.reset();
    std::thread phase_thread([&] {
      for (vid_t d = 0; d < 4; ++d) pipe.push(0, d, 7);
      pipe.worker_done();
      pipe.mover_loop(0, [](const pipeline::Envelope<int>&) {});
    });
    phase_thread.join();
  }
}

TEST(AuditLayer, PipelineWorkerSlotStolenWithinPhaseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        pipeline::MessagePipeline<int> pipe(1, 1, 16);
        pipe.reset();
        pipe.push(0, 0, 7);  // binds worker slot 0 to this thread
        std::thread thief([&] { pipe.push(0, 1, 8); });
        thief.join();
      },
      "pipeline-worker-affinity");
}

// The BSP state machine: an update_vertex() guard hit outside the update
// phase must abort naming the callback, and out-of-order phase transitions
// must abort naming both phases. This drives the exact guard the engine
// places before every prog_.update_vertex() call.
TEST(AuditLayer, OutOfPhaseUpdateVertexAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        audit::PhaseMachine pm;
        pm.enter(audit::BspPhase::kPrepare, __FILE__, __LINE__);
        pm.enter(audit::BspPhase::kGenerate, __FILE__, __LINE__);
        // update_vertex() during generation — the violation iPregel-style
        // runtimes silently tolerate.
        pm.expect(audit::BspPhase::kUpdate, "update_vertex()", __FILE__,
                  __LINE__);
      },
      "update_vertex");
}

TEST(AuditLayer, PhaseOrderViolationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        audit::PhaseMachine pm;
        pm.enter(audit::BspPhase::kPrepare, __FILE__, __LINE__);
        // process before generate: illegal.
        pm.enter(audit::BspPhase::kProcess, __FILE__, __LINE__);
      },
      "bsp-phase-order");
}

TEST(AuditLayer, LegalSuperstepSequencesPass) {
  audit::PhaseMachine pm;
  using P = audit::BspPhase;
  // Two supersteps: one full (with exchange + process), one minimal.
  for (const P p : {P::kPrepare, P::kGenerate, P::kExchange, P::kProcess,
                    P::kUpdate, P::kPrepare, P::kGenerate, P::kUpdate,
                    P::kIdle})
    pm.enter(p, __FILE__, __LINE__);
  EXPECT_EQ(pm.current(), P::kIdle);
}

#else  // !PG_AUDIT_ENABLED

TEST(AuditLayer, SkippedWithoutAuditBuild) {
  GTEST_SKIP()
      << "audit layer compiled out; configure with -DPHIGRAPH_AUDIT=ON "
         "(the 'audit' preset) to run the seeded-violation death tests";
}

#endif  // PG_AUDIT_ENABLED

}  // namespace
