// SemiClustering unit tests: the cluster algebra must be a commutative,
// associative, idempotent merge for parallel execution to be deterministic.
#include <gtest/gtest.h>

#include <vector>

#include "src/apps/semiclustering.hpp"
#include "src/common/rng.hpp"

namespace {

using namespace phigraph;
using apps::ClusterList;
using apps::SemiCluster;
using apps::SemiClustering;

SemiCluster make_cluster(std::initializer_list<vid_t> members, float score) {
  SemiCluster c;
  c.size = 0;
  for (vid_t m : members) c.members[c.size++] = m;
  c.score = score;
  c.inner = score;  // arbitrary but member-determined in these tests
  c.wsum = 2 * score;
  return c;
}

ClusterList list_of(std::initializer_list<SemiCluster> cs) {
  ClusterList l;
  for (const auto& c : cs) l.clusters[l.count++] = c;
  return l;
}

TEST(SemiCluster, ContainsAndMembers) {
  const auto c = make_cluster({3, 7, 12}, 1.0f);
  EXPECT_TRUE(c.contains(3));
  EXPECT_TRUE(c.contains(12));
  EXPECT_FALSE(c.contains(5));
  EXPECT_TRUE(c.same_members(make_cluster({3, 7, 12}, 9.0f)));
  EXPECT_FALSE(c.same_members(make_cluster({3, 7}, 1.0f)));
  EXPECT_FALSE(c.same_members(make_cluster({3, 7, 13}, 1.0f)));
}

TEST(SemiCluster, TotalOrderIsStrict) {
  const auto a = make_cluster({1, 2}, 2.0f);
  const auto b = make_cluster({1, 3}, 2.0f);  // tie on score -> members
  const auto c = make_cluster({9}, 1.0f);
  EXPECT_TRUE(a.better_than(b));
  EXPECT_FALSE(b.better_than(a));
  EXPECT_TRUE(a.better_than(c));
  EXPECT_FALSE(a.better_than(a));  // irreflexive
}

TEST(SemiClusteringCombine, KeepsTopScorersDedupedBySameMembers) {
  const SemiClustering prog;
  const auto best = make_cluster({1, 2, 3}, 5.0f);
  const auto mid = make_cluster({4, 5}, 3.0f);
  const auto low = make_cluster({6}, 1.0f);
  const auto merged = prog.combine(list_of({low, best}), list_of({mid, best}));
  ASSERT_EQ(merged.count, 2u);  // kScMaxClusters == 2
  EXPECT_TRUE(merged.clusters[0].same_members(best));
  EXPECT_TRUE(merged.clusters[1].same_members(mid));
}

TEST(SemiClusteringCombine, IdentityIsNeutral) {
  const SemiClustering prog;
  const auto l = list_of({make_cluster({1, 2}, 4.0f), make_cluster({3}, 2.0f)});
  const auto left = prog.combine(prog.identity(), l);
  const auto right = prog.combine(l, prog.identity());
  ASSERT_EQ(left.count, l.count);
  ASSERT_EQ(right.count, l.count);
  for (std::uint32_t i = 0; i < l.count; ++i) {
    EXPECT_TRUE(left.clusters[i].same_members(l.clusters[i]));
    EXPECT_TRUE(right.clusters[i].same_members(l.clusters[i]));
  }
}

bool lists_identical(const ClusterList& a, const ClusterList& b) {
  if (a.count != b.count) return false;
  for (std::uint32_t i = 0; i < a.count; ++i)
    if (!a.clusters[i].same_members(b.clusters[i]) ||
        a.clusters[i].score != b.clusters[i].score)
      return false;
  return true;
}

TEST(SemiClusteringCombine, CommutativeAndAssociativeOnRandomInputs) {
  const SemiClustering prog;
  Rng rng(77);
  auto random_list = [&] {
    ClusterList l;
    l.count = 1 + static_cast<std::uint32_t>(rng.below(apps::kScMaxClusters));
    for (std::uint32_t i = 0; i < l.count; ++i) {
      SemiCluster c;
      c.size = 1 + static_cast<std::uint32_t>(
                       rng.below(apps::kScMaxClusterSize));
      vid_t base = static_cast<vid_t>(rng.below(20));
      for (std::uint32_t m = 0; m < c.size; ++m) c.members[m] = base + 2 * m;
      c.score = static_cast<float>(rng.below(8)) / 2.0f;
      c.inner = c.score;
      c.wsum = 2 * c.score;
      l.clusters[i] = c;
    }
    return l;
  };
  for (int rep = 0; rep < 300; ++rep) {
    const auto a = random_list(), b = random_list(), c = random_list();
    EXPECT_TRUE(lists_identical(prog.combine(a, b), prog.combine(b, a)));
    EXPECT_TRUE(lists_identical(prog.combine(prog.combine(a, b), c),
                                prog.combine(a, prog.combine(b, c))));
    // Idempotent: merging a list with itself changes nothing.
    EXPECT_TRUE(lists_identical(prog.combine(a, a), prog.combine(a, prog.identity())));
  }
}

TEST(SemiCluster, BoundaryFormula) {
  SemiCluster c;
  c.inner = 3.0f;
  c.wsum = 10.0f;
  // B = sum of member incident weight - 2 * internal (each internal edge is
  // counted from both endpoints in the duplicated-undirected representation).
  EXPECT_FLOAT_EQ(c.boundary(), 4.0f);
}

}  // namespace
