// Serving differential battery: every lane of a batched multi-source run
// must be bit-identical to the same query run sequentially single-source.
//
// The battery drives the bit-parallel programs (apps/multi_source.hpp) and
// the QueryEngine admission layer (core/query_engine.hpp) across the rank
// matrix {1, 2, 4} x {dense, sparse frontier} x {auto, forced-push,
// forced-pull} (forced directions single-rank only — split partitions
// always push) and compares lane-by-lane against the classic sequential
// algorithms: MsBfs levels against classic_bfs, MsSssp distances against
// classic_dijkstra (both min-combines, so exact equality is required), and
// MsBfs seen-bits against connected-component membership on symmetrized
// graphs (on a directed graph the bits mean reachability, not components —
// the DESIGN.md honest limit).
//
// Satellites riding along:
//   * counter conservation: one batched run scans no more edges than the 64
//     sequential runs it replaces, summed;
//   * frontier tail-word regression: batch sizes 1/63/64/65 and vertex
//     counts straddling the 64-bit word boundary, including forced-pull
//     (the bitmap path), must never light lanes or vertices nobody asked
//     for — plus a direct DenseBitset tail-masking round-trip.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/bfs.hpp"
#include "src/apps/connected_components.hpp"
#include "src/apps/multi_source.hpp"
#include "src/apps/reference.hpp"
#include "src/apps/sssp.hpp"
#include "src/common/rng.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/core/query_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/graph/csr.hpp"
#include "src/partition/partition.hpp"
#include "src/simd/bitset.hpp"
#include "watchdog.hpp"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PG_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PG_TEST_SANITIZED 1
#endif
#endif
#ifndef PG_TEST_SANITIZED
#define PG_TEST_SANITIZED 0
#endif

namespace {

using namespace phigraph;
using core::EngineConfig;
using core::ExecMode;

constexpr int kRounds = PG_TEST_SANITIZED ? 2 : 3;

// ---------------------------------------------------------------------------
// Graph + batch helpers.
// ---------------------------------------------------------------------------

enum class Family { kUniform, kPowerLaw, kDisconnected };

const char* family_name(Family f) {
  switch (f) {
    case Family::kUniform: return "uniform";
    case Family::kPowerLaw: return "power-law";
    case Family::kDisconnected: return "disconnected";
  }
  return "?";
}

graph::Csr make_graph(Family f, std::uint64_t seed) {
  Rng rng(seed);
  graph::Csr g;
  switch (f) {
    case Family::kUniform: {
      const vid_t n = 150 + static_cast<vid_t>(rng.below(300));
      g = gen::erdos_renyi(n, n * (2 + rng.below(4)), seed ^ 0x9e3779b9ull);
      break;
    }
    case Family::kPowerLaw: {
      const vid_t n = 200 + static_cast<vid_t>(rng.below(400));
      g = gen::pokec_like(n, n * (3 + rng.below(4)), seed ^ 0xc2b2ae35ull);
      break;
    }
    case Family::kDisconnected: {
      const vid_t island = 80 + static_cast<vid_t>(rng.below(120));
      const vid_t n = 2 * island + 20;
      std::vector<std::pair<vid_t, vid_t>> edges;
      for (std::uint64_t i = 0; i < island * 4ull; ++i) {
        edges.emplace_back(static_cast<vid_t>(rng.below(island)),
                           static_cast<vid_t>(rng.below(island)));
        edges.emplace_back(island + static_cast<vid_t>(rng.below(island)),
                           island + static_cast<vid_t>(rng.below(island)));
      }
      g = graph::Csr::from_edges(n, edges);
      break;
    }
  }
  gen::add_random_weights(g, seed ^ 0x94d049bbull);
  return g;
}

/// Symmetrized variant of a family graph (every edge in both directions), on
/// which reachability-from-source IS connected-component membership.
graph::Csr make_symmetric_graph(Family f, std::uint64_t seed) {
  const graph::Csr d = make_graph(f, seed);
  std::vector<std::pair<vid_t, vid_t>> edges;
  for (vid_t u = 0; u < d.num_vertices(); ++u)
    for (eid_t i = d.offsets()[u]; i < d.offsets()[u + 1]; ++i) {
      edges.emplace_back(u, d.targets()[i]);
      edges.emplace_back(d.targets()[i], u);
    }
  graph::Csr g = graph::Csr::from_edges(d.num_vertices(), edges);
  gen::add_random_weights(g, seed ^ 0x94d049bbull);
  return g;
}

apps::SourceBatch pick_sources(const graph::Csr& g, int count,
                               std::uint64_t seed) {
  Rng rng(seed);
  apps::SourceBatch b;
  b.count = count;
  for (int l = 0; l < count; ++l)
    b.source[static_cast<std::size_t>(l)] =
        static_cast<vid_t>(rng.below(g.num_vertices()));
  return b;
}

EngineConfig base_cfg(double density, core::DirectionMode dir,
                      std::uint64_t salt) {
  EngineConfig e;
  e.mode = salt % 2 == 0 ? ExecMode::kLocking : ExecMode::kPipelining;
  e.sparse_iteration_threshold = density;
  e.direction_mode = dir;
  e.simd_bytes = simd::kCpuSimdBytes;
  e.threads = 2 + static_cast<int>(salt % 3);
  e.movers = 1 + static_cast<int>(salt % 2);
  return e;
}

/// Run a batch program over `nranks` and return the gathered global values.
template <typename Program>
std::vector<typename Program::vertex_value_t> run_batched(
    const graph::Csr& g, const Program& prog, int nranks, double density,
    core::DirectionMode dir, std::uint64_t salt,
    metrics::SuperstepCounters* totals_out = nullptr) {
  if (nranks == 1) {
    const auto res = core::run_single(g, prog, base_cfg(density, dir, salt));
    if (totals_out != nullptr) *totals_out = metrics::totals(res.run.trace);
    return res.values;
  }
  std::vector<EngineConfig> cfgs;
  for (int r = 0; r < nranks; ++r)
    cfgs.push_back(base_cfg(density, dir, salt + static_cast<std::uint64_t>(r)));
  auto owner = partition::round_robin_partition_k(
      g, partition::RankWeights(static_cast<std::size_t>(nranks), 1));
  core::ClusterEngine<Program> ce(g, std::move(owner), prog, std::move(cfgs));
  auto res = ce.run();
  EXPECT_TRUE(res.completed);
  if (totals_out != nullptr) {
    *totals_out = metrics::SuperstepCounters{};
    for (const auto& r : res.ranks) *totals_out += metrics::totals(r.trace);
  }
  return std::move(res.global_values);
}

struct ServeCell {
  int nranks;
  double density;
  core::DirectionMode dir;
};

std::vector<ServeCell> serve_matrix() {
  std::vector<ServeCell> cells;
  for (int nranks : {1, 2, 4})
    for (double density : {0.0, 1.0})
      for (core::DirectionMode dir :
           {core::DirectionMode::kAuto, core::DirectionMode::kForcePush,
            core::DirectionMode::kForcePull}) {
        // Split partitions always push; forced directions only distinguish
        // single-rank cells (same convention as the engine battery).
        if (nranks > 1 && dir != core::DirectionMode::kAuto) continue;
        cells.push_back({nranks, density, dir});
      }
  return cells;
}

std::string cell_name(const ServeCell& c) {
  return "ranks=" + std::to_string(c.nranks) +
         (c.density == 0.0 ? "/dense" : "/sparse") + "/" +
         core::direction_mode_name(c.dir);
}

// ---------------------------------------------------------------------------
// Lane-exactness: batched BFS and SSSP across the rank/direction matrix.
// ---------------------------------------------------------------------------

TEST(QueryDifferential, BatchedBfsSsspLaneExactAcrossMatrix) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 900 : 300));
  constexpr Family kFams[] = {Family::kUniform, Family::kPowerLaw,
                              Family::kDisconnected};
  for (int round = 0; round < kRounds; ++round) {
    const Family fam = kFams[round % std::size(kFams)];
    const auto seed = static_cast<std::uint64_t>(0x51e0 + 0x101 * round);
    const auto g = make_graph(fam, seed);
    const auto batch =
        pick_sources(g, apps::kMaxQueryLanes, seed ^ 0x2545f491ull);

    std::vector<std::vector<std::int32_t>> bfs_ref;
    std::vector<std::vector<float>> sssp_ref;
    for (int l = 0; l < batch.count; ++l) {
      const vid_t src = batch.source[static_cast<std::size_t>(l)];
      bfs_ref.push_back(apps::classic_bfs(g, src));
      sssp_ref.push_back(apps::classic_dijkstra(g, src));
    }

    for (const ServeCell& c : serve_matrix()) {
      const std::uint64_t salt = seed + static_cast<std::uint64_t>(c.nranks);
      const std::string what = std::string(family_name(fam)) + " round " +
                               std::to_string(round) + " " + cell_name(c);

      const auto bfs = run_batched(g, apps::MsBfs(batch), c.nranks, c.density,
                                   c.dir, salt);
      ASSERT_EQ(bfs.size(), g.num_vertices()) << what;
      for (int l = 0; l < batch.count; ++l)
        for (vid_t v = 0; v < g.num_vertices(); ++v)
          ASSERT_EQ(bfs[v].level[static_cast<std::size_t>(l)],
                    bfs_ref[static_cast<std::size_t>(l)][v])
              << what << " bfs lane " << l << " vertex " << v;

      const auto sssp = run_batched(g, apps::MsSssp(batch), c.nranks,
                                    c.density, c.dir, salt + 7);
      for (int l = 0; l < batch.count; ++l)
        for (vid_t v = 0; v < g.num_vertices(); ++v) {
          const float ref = sssp_ref[static_cast<std::size_t>(l)][v];
          const float got = sssp[v].v[static_cast<std::size_t>(l)];
          // classic_dijkstra reports unreached as +inf-like FLT_MAX too;
          // min-combine over identical float expressions must be bit-exact.
          ASSERT_EQ(got, ref) << what << " sssp lane " << l << " vertex " << v;
        }
    }
  }
}

// Seen-bits on a symmetrized graph are component membership: lane l's bit at
// v is set iff v shares a connected component with source l.
TEST(QueryDifferential, SeenBitsMatchComponentMembershipOnSymmetricGraphs) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 600 : 200));
  for (Family fam : {Family::kPowerLaw, Family::kDisconnected}) {
    const auto seed = static_cast<std::uint64_t>(
        0xc0de + (fam == Family::kPowerLaw ? 0 : 0x101));
    const auto g = make_symmetric_graph(fam, seed);
    const auto labels = apps::reference_run(g, apps::ConnectedComponents());
    const auto batch =
        pick_sources(g, apps::kMaxQueryLanes, seed ^ 0x2545f491ull);
    const auto values =
        run_batched(g, apps::MsBfs(batch), 1, 0.0,
                    core::DirectionMode::kAuto, seed);
    for (int l = 0; l < batch.count; ++l) {
      const vid_t src = batch.source[static_cast<std::size_t>(l)];
      for (vid_t v = 0; v < g.num_vertices(); ++v) {
        const bool member = ((values[v].seen >> l) & 1u) != 0;
        ASSERT_EQ(member, labels[v] == labels[src])
            << family_name(fam) << " lane " << l << " src " << src
            << " vertex " << v;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Conservation satellite: the shared scan must not exceed the sum of the
// sequential scans it replaces.
// ---------------------------------------------------------------------------

// Push pinned on both sides: sharing guarantees batched <= sequential only
// in push direction (an active vertex is rescanned once per distinct arrival
// level, never once per reaching query). Pull candidacy lasts until ALL
// lanes resolve, so a 64-lane pull can legitimately scan more in-edges than
// 64 short sequential runs — that axis belongs to the direction bench.
TEST(QueryDifferential, BatchedEdgeScansConservedAgainstSequential) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 600 : 200));
  const auto g = make_graph(Family::kPowerLaw, 0xba7c);
  const auto batch = pick_sources(g, apps::kMaxQueryLanes, 0x5eed);

  std::uint64_t sequential = 0;
  for (int l = 0; l < batch.count; ++l) {
    const auto res = core::run_single(
        g, apps::Bfs(batch.source[static_cast<std::size_t>(l)]),
        base_cfg(0.0, core::DirectionMode::kForcePush, 3));
    const auto t = metrics::totals(res.run.trace);
    sequential += t.edges_scanned + t.pull_edges_scanned;
  }

  metrics::SuperstepCounters batched;
  run_batched(g, apps::MsBfs(batch), 1, 0.0, core::DirectionMode::kForcePush,
              3, &batched);
  const std::uint64_t shared =
      batched.edges_scanned + batched.pull_edges_scanned;
  EXPECT_GT(shared, 0u);
  EXPECT_LE(shared, sequential)
      << "one shared 64-lane scan must not exceed 64 sequential scans";
}

// ---------------------------------------------------------------------------
// Tail-word regression satellite: batch sizes and vertex counts straddling
// the 64-bit word boundary.
// ---------------------------------------------------------------------------

TEST(QueryTail, ShortBatchesKeepTailLanesDead) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 600 : 200));
  const auto g = make_graph(Family::kUniform, 0x7a17);
  for (int count : {1, 63, 64}) {
    const auto batch = pick_sources(g, count, 0x7a17u + count);
    std::vector<std::vector<std::int32_t>> refs;
    for (int l = 0; l < count; ++l)
      refs.push_back(
          apps::classic_bfs(g, batch.source[static_cast<std::size_t>(l)]));
    for (core::DirectionMode dir :
         {core::DirectionMode::kForcePush, core::DirectionMode::kForcePull}) {
      const auto values = run_batched(g, apps::MsBfs(batch), 1, 0.0, dir,
                                      static_cast<std::uint64_t>(count));
      const std::uint64_t mask = apps::lane_mask(count);
      for (vid_t v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(values[v].seen & ~mask, 0u)
            << "batch of " << count << " lit an unused lane at vertex " << v;
        for (int l = 0; l < count; ++l)
          ASSERT_EQ(values[v].level[static_cast<std::size_t>(l)],
                    refs[static_cast<std::size_t>(l)][v])
              << "batch " << count << " lane " << l << " vertex " << v;
        for (int l = count; l < apps::kMaxQueryLanes; ++l)
          ASSERT_EQ(values[v].level[static_cast<std::size_t>(l)], -1)
              << "unused lane " << l << " got a level at vertex " << v;
      }
    }
  }
}

// |V| straddling the word boundary under forced pull: the frontier bitmap's
// last word is partially used and its tail bits must stay dead (the audit
// build aborts if not; this regression holds in every build).
TEST(QueryTail, VertexCountsStraddlingWordBoundaryUnderPull) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(120));
  for (vid_t n : {vid_t{63}, vid_t{64}, vid_t{65}}) {
    // A path 0 -> 1 -> ... -> n-1 reaches every vertex, so every level is
    // determined and the last word's live bits all matter.
    std::vector<std::pair<vid_t, vid_t>> edges;
    for (vid_t v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
    auto g = graph::Csr::from_edges(n, edges);
    gen::add_random_weights(g, 0x600d ^ n);
    apps::SourceBatch batch;
    batch.count = 1;
    batch.source[0] = 0;
    for (core::DirectionMode dir :
         {core::DirectionMode::kForcePush, core::DirectionMode::kForcePull}) {
      const auto values = run_batched(g, apps::MsBfs(batch), 1, 0.0, dir,
                                      static_cast<std::uint64_t>(n));
      for (vid_t v = 0; v < n; ++v)
        ASSERT_EQ(values[v].level[0], static_cast<std::int32_t>(v))
            << "|V|=" << n << " dir=" << core::direction_mode_name(dir)
            << " vertex " << v;
    }
  }
}

TEST(QueryTail, DenseBitsetMasksTailOnAssign) {
  for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                        std::size_t{65}, std::size_t{130}}) {
    simd::DenseBitset bs(n);
    // An all-ones byte map is the worst case: every representable bit of the
    // last word wants to be set; the bits past n must still come out dead.
    std::vector<std::uint8_t> bytes(n, 1);
    bs.assign_bytes(bytes.data(), n);
    EXPECT_EQ(bs.tail_bits(), 0u) << "n=" << n;
    EXPECT_EQ(bs.count(), n) << "n=" << n;
    std::vector<std::uint8_t> out(n, 0);
    bs.to_bytes(out.data(), n);
    EXPECT_EQ(out, bytes) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// QueryEngine end-to-end: the admission layer must deliver the same answers
// the programs do, across batch splits (65 jobs > one 64-lane batch) and
// mixed kinds, and its serving statistics must add up.
// ---------------------------------------------------------------------------

TEST(QueryEngineServing, SixtyFiveJobsSplitAcrossBatchesStayExact) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 600 : 200));
  const auto g = make_graph(Family::kPowerLaw, 0xace5);
  EngineConfig cfg = base_cfg(0.0, core::DirectionMode::kAuto, 5);
  cfg.serve_batch_max = 64;
  cfg.serve_batch_wait_ms = 20;  // let the queue fill: first batch takes 64
  core::QueryEngine qe(g, cfg);

  Rng rng(0x65);
  std::vector<vid_t> sources;
  std::vector<std::shared_ptr<core::QueryTicket>> tickets;
  for (int i = 0; i < 65; ++i) {
    const auto src = static_cast<vid_t>(rng.below(g.num_vertices()));
    sources.push_back(src);
    tickets.push_back(qe.submit({core::QueryKind::kBfs, src}));
    ASSERT_NE(tickets.back(), nullptr);
  }
  for (int i = 0; i < 65; ++i) {
    const auto& r = tickets[static_cast<std::size_t>(i)]->get();
    EXPECT_EQ(r.kind, core::QueryKind::kBfs);
    EXPECT_EQ(r.source, sources[static_cast<std::size_t>(i)]);
    EXPECT_LE(r.batch_lanes, 64);
    const auto ref = apps::classic_bfs(g, r.source);
    ASSERT_EQ(r.level.size(), ref.size());
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(r.level[v], ref[v]) << "job " << i << " vertex " << v;
  }
  qe.shutdown();
  const auto s = qe.stats();
  EXPECT_EQ(s.jobs, 65u);
  EXPECT_EQ(s.lanes, 65u);
  EXPECT_GE(s.batches, 2u) << "65 jobs cannot fit one 64-lane batch";
  EXPECT_GT(s.edges_scanned, 0u);
  EXPECT_EQ(s.latency_us.count, 65u);
  EXPECT_GE(s.max_queue_depth, 1u);
}

TEST(QueryEngineServing, MixedKindsGroupByKindAndAnswerCorrectly) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 600 : 200));
  const auto g = make_symmetric_graph(Family::kDisconnected, 0x3355);
  const auto labels = apps::reference_run(g, apps::ConnectedComponents());
  EngineConfig cfg = base_cfg(0.0, core::DirectionMode::kAuto, 9);
  cfg.serve_batch_max = 8;
  cfg.serve_batch_wait_ms = 5;
  core::QueryEngine qe(g, cfg);

  Rng rng(0x3355);
  struct Submitted {
    core::QueryJob job;
    std::shared_ptr<core::QueryTicket> ticket;
  };
  std::vector<Submitted> subs;
  for (int i = 0; i < 24; ++i) {
    const auto src = static_cast<vid_t>(rng.below(g.num_vertices()));
    const core::QueryKind kind =
        i % 3 == 0 ? core::QueryKind::kBfs
                   : (i % 3 == 1 ? core::QueryKind::kSssp
                                 : core::QueryKind::kComponent);
    subs.push_back({{kind, src}, nullptr});
    subs.back().ticket = qe.submit(subs.back().job);
    ASSERT_NE(subs.back().ticket, nullptr);
  }
  for (const auto& s : subs) {
    const auto& r = s.ticket->get();
    EXPECT_EQ(r.kind, s.job.kind);
    EXPECT_EQ(r.source, s.job.source);
    switch (s.job.kind) {
      case core::QueryKind::kBfs: {
        const auto ref = apps::classic_bfs(g, s.job.source);
        for (vid_t v = 0; v < g.num_vertices(); ++v)
          ASSERT_EQ(r.level[v], ref[v]);
        break;
      }
      case core::QueryKind::kSssp: {
        const auto ref = apps::classic_dijkstra(g, s.job.source);
        for (vid_t v = 0; v < g.num_vertices(); ++v)
          ASSERT_EQ(r.dist[v], ref[v]);
        break;
      }
      case core::QueryKind::kComponent: {
        for (vid_t v = 0; v < g.num_vertices(); ++v)
          ASSERT_EQ(r.member[v] != 0, labels[v] == labels[s.job.source]);
        break;
      }
      case core::QueryKind::kPpr: break;
    }
  }
}

// PPR answers are fold-order-dependent floats, so the contract is weaker:
// two jobs with the same personalization source in one batch are
// bit-identical, every rank is finite and non-negative, and the
// personalization source of a lane with edges holds positive mass.
TEST(QueryEngineServing, PprLanesDeterministicWithinABatch) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 600 : 200));
  const auto g = make_graph(Family::kPowerLaw, 0x99a1);
  EngineConfig cfg = base_cfg(0.0, core::DirectionMode::kAuto, 2);
  cfg.serve_batch_max = 8;
  cfg.serve_batch_wait_ms = 20;
  core::QueryEngine qe(g, cfg);

  const vid_t src = 1;
  auto a = qe.submit({core::QueryKind::kPpr, src});
  auto b = qe.submit({core::QueryKind::kPpr, src});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  const auto& ra = a->get();
  const auto& rb = b->get();
  ASSERT_EQ(ra.batch_lanes, rb.batch_lanes)
      << "both jobs must ride the same batch for lane determinism";
  ASSERT_EQ(ra.rank.size(), g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(ra.rank[v], rb.rank[v]) << "duplicate-source lanes diverged";
    ASSERT_GE(ra.rank[v], 0.0f);
  }
  EXPECT_GT(ra.rank[src], 0.0f);
}

TEST(QueryEngineServing, MultiRankServingMatchesSequential) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 600 : 200));
  const auto g = make_graph(Family::kUniform, 0x2bad);
  std::vector<EngineConfig> cfgs;
  for (int r = 0; r < 2; ++r)
    cfgs.push_back(base_cfg(0.0, core::DirectionMode::kAuto, 11 + r));
  cfgs.front().serve_batch_max = 16;
  cfgs.front().serve_batch_wait_ms = 10;
  core::QueryEngine qe(g, cfgs);
  EXPECT_EQ(qe.num_ranks(), 2);

  Rng rng(0x2bad);
  std::vector<std::pair<vid_t, std::shared_ptr<core::QueryTicket>>> subs;
  for (int i = 0; i < 16; ++i) {
    const auto src = static_cast<vid_t>(rng.below(g.num_vertices()));
    subs.emplace_back(src, qe.submit({core::QueryKind::kBfs, src}));
    ASSERT_NE(subs.back().second, nullptr);
  }
  for (const auto& [src, ticket] : subs) {
    const auto& r = ticket->get();
    const auto ref = apps::classic_bfs(g, src);
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(r.level[v], ref[v]) << "src " << src << " vertex " << v;
  }
}

}  // namespace
